module Mmu = Rio_vm.Mmu
module Phys_mem = Rio_mem.Phys_mem

type trap =
  | Illegal_address of int
  | Protection_violation of int
  | Illegal_instruction of int
  | Consistency_panic of int

type state = Running | Halted | Trapped of trap

(* One page's worth of pre-decoded instructions. [dver] is the Phys_mem
   page version the decode is valid for: any store into the page bumps the
   version, and the next fetch from it re-decodes — which is exactly the
   semantics of fetching through the data bytes, just cached. *)
type dslot = Empty | Ill | I of Isa.t

type dpage = {
  mutable dver : int;
  dslots : dslot array;
}

let words_per_page = Phys_mem.page_size / Isa.word_bytes

type t = {
  mem : Phys_mem.t;
  mmu : Mmu.t;
  regs : int array;
  mutable pc : int;
  mutable state : state;
  mutable instructions : int;
  mutable stores : int;
  mutable on_store : (paddr:int -> width:int -> unit) option;
  fast : bool;
  dcache : dpage option array; (* by pfn, filled lazily *)
}

let create ~mem ~mmu =
  {
    mem;
    mmu;
    regs = Array.make 32 0;
    pc = 0;
    state = Running;
    instructions = 0;
    stores = 0;
    on_store = None;
    fast = Rio_util.Fastpath.on ();
    dcache = Array.make (Phys_mem.page_count mem) None;
  }

let mem t = t.mem
let mmu t = t.mmu
let pc t = t.pc
let set_pc t pc = t.pc <- pc

let reg t n =
  assert (n >= 0 && n < 32);
  if n = 0 then 0 else t.regs.(n)

let set_reg t n v =
  assert (n >= 0 && n < 32);
  if n <> 0 then t.regs.(n) <- v

let sp_reg = 30
let ra_reg = 31

let state t = t.state
let instructions_retired t = t.instructions
let stores_retired t = t.stores

let set_on_store t f = t.on_store <- Some f
let clear_on_store t = t.on_store <- None

let trap t trap_value =
  t.state <- Trapped trap_value;
  t.state

(* ---- world-template rewind ---- *)

type checkpoint = { ck_regs : int array; ck_pc : int; ck_state : state }

let checkpoint t = { ck_regs = Array.copy t.regs; ck_pc = t.pc; ck_state = t.state }

let restore t ck =
  Array.blit ck.ck_regs 0 t.regs 0 (Array.length t.regs);
  t.pc <- ck.ck_pc;
  t.state <- ck.ck_state

(* ---------------- the reference interpreter ----------------

   One instruction at a time, straightforwardly: decode the fetched word,
   dispatch through small closures. [step] stays on this path — it is the
   semantics of record; the fast loop below must be indistinguishable
   from iterating it. *)

(* Translate an access of [width] bytes starting at [vaddr]. Both end bytes
   must translate; identity mapping keeps the physical range contiguous. *)
let translate_span t vaddr width access =
  match Mmu.translate t.mmu ~vaddr ~access with
  | Mmu.Fault (Mmu.Unmapped a) -> Error (Illegal_address a)
  | Mmu.Fault (Mmu.Write_protected a) -> Error (Protection_violation a)
  | Mmu.Ok paddr ->
    if width = 1 || (vaddr mod Phys_mem.page_size) + width <= Phys_mem.page_size then Ok paddr
    else begin
      match Mmu.translate t.mmu ~vaddr:(vaddr + width - 1) ~access with
      | Mmu.Fault (Mmu.Unmapped a) -> Error (Illegal_address a)
      | Mmu.Fault (Mmu.Write_protected a) -> Error (Protection_violation a)
      | Mmu.Ok _ -> Ok paddr
    end

let load t vaddr width =
  match translate_span t vaddr width Mmu.Read with
  | Error e -> Error e
  | Ok paddr ->
    if not (Phys_mem.in_range t.mem paddr ~len:width) then Error (Illegal_address vaddr)
    else
      Ok
        (match width with
        | 1 -> Phys_mem.read_u8 t.mem paddr
        | 4 -> Phys_mem.read_u32 t.mem paddr
        | 8 -> Phys_mem.read_u64 t.mem paddr
        | _ -> assert false)

let store t vaddr width v =
  match translate_span t vaddr width Mmu.Write with
  | Error e -> Error e
  | Ok paddr ->
    if not (Phys_mem.in_range t.mem paddr ~len:width) then Error (Illegal_address vaddr)
    else begin
      (match width with
      | 1 -> Phys_mem.write_u8 t.mem paddr v
      | 4 -> Phys_mem.write_u32 t.mem paddr v
      | 8 -> Phys_mem.write_u64 t.mem paddr v
      | _ -> assert false);
      t.stores <- t.stores + 1;
      (match t.on_store with Some f -> f ~paddr ~width | None -> ());
      Ok ()
    end

let step t =
  match t.state with
  | Halted | Trapped _ -> t.state
  | Running ->
    let pc = t.pc in
    (match translate_span t pc Isa.word_bytes Mmu.Exec with
    | Error e -> trap t e
    | Ok paddr ->
      if not (Phys_mem.in_range t.mem paddr ~len:4) then trap t (Illegal_address pc)
      else begin
        let word = Phys_mem.read_u32 t.mem paddr in
        match Isa.decode word with
        | None -> trap t (Illegal_instruction word)
        | Some instr ->
          t.instructions <- t.instructions + 1;
          let next = pc + Isa.word_bytes in
          let rr = reg t in
          let continue_at target =
            t.pc <- target;
            t.state
          in
          let alu rd v =
            set_reg t rd v;
            continue_at next
          in
          let do_load rd addr width =
            match load t addr width with
            | Error e -> trap t e
            | Ok v ->
              set_reg t rd v;
              continue_at next
          in
          let do_store v addr width =
            match store t addr width v with
            | Error e -> trap t e
            | Ok () -> continue_at next
          in
          let branch cond off =
            if cond then continue_at (pc + (off * Isa.word_bytes)) else continue_at next
          in
          (match instr with
          | Isa.Nop -> continue_at next
          | Isa.Halt ->
            t.state <- Halted;
            t.state
          | Isa.Add (d, a, b) -> alu d (rr a + rr b)
          | Isa.Sub (d, a, b) -> alu d (rr a - rr b)
          | Isa.And (d, a, b) -> alu d (rr a land rr b)
          | Isa.Or (d, a, b) -> alu d (rr a lor rr b)
          | Isa.Xor (d, a, b) -> alu d (rr a lxor rr b)
          | Isa.Sll (d, a, b) -> alu d (rr a lsl (rr b land 0x3F))
          | Isa.Srl (d, a, b) -> alu d (rr a lsr (rr b land 0x3F))
          | Isa.Mul (d, a, b) -> alu d (rr a * rr b)
          | Isa.Slt (d, a, b) -> alu d (if rr a < rr b then 1 else 0)
          | Isa.Addi (d, a, i) -> alu d (rr a + i)
          | Isa.Andi (d, a, i) -> alu d (rr a land (i land 0xFFFF))
          | Isa.Ori (d, a, i) -> alu d (rr a lor (i land 0xFFFF))
          | Isa.Xori (d, a, i) -> alu d (rr a lxor (i land 0xFFFF))
          | Isa.Slti (d, a, i) -> alu d (if rr a < i then 1 else 0)
          | Isa.Lui (d, i) -> alu d ((i land 0xFFFF) lsl 16)
          | Isa.Kseg (d, a) -> alu d (Mmu.kseg_addr (rr a))
          | Isa.Ld (d, a, i) -> do_load d (rr a + i) 8
          | Isa.Ldw (d, a, i) -> do_load d (rr a + i) 4
          | Isa.Ldb (d, a, i) -> do_load d (rr a + i) 1
          | Isa.St (v, a, i) -> do_store (rr v) (rr a + i) 8
          | Isa.Stw (v, a, i) -> do_store (rr v) (rr a + i) 4
          | Isa.Stb (v, a, i) -> do_store (rr v) (rr a + i) 1
          | Isa.Beq (a, b, o) -> branch (rr a = rr b) o
          | Isa.Bne (a, b, o) -> branch (rr a <> rr b) o
          | Isa.Blt (a, b, o) -> branch (rr a < rr b) o
          | Isa.Bge (a, b, o) -> branch (rr a >= rr b) o
          | Isa.Jmp o -> continue_at (pc + (o * Isa.word_bytes))
          | Isa.Jal (d, o) ->
            set_reg t d next;
            continue_at (pc + (o * Isa.word_bytes))
          | Isa.Jr a -> continue_at (rr a)
          | Isa.Assert_nz (a, msg) ->
            if rr a = 0 then trap t (Consistency_panic msg) else continue_at next)
      end)

let run_slow t ~max_instructions =
  let budget = t.instructions + max_instructions in
  let rec loop () =
    match t.state with
    | Running when t.instructions < budget ->
      ignore (step t);
      loop ()
    | s -> s
  in
  loop ()

(* ---------------- the fast loop ----------------

   The same semantics with the per-step costs hoisted out:

   - fetches hit the pre-decoded page cache (decode each word once per
     page version) instead of running [Isa.decode];
   - fetch translation is cached per virtual page for the duration of one
     [run] — nothing can change the page table mid-run (the page table is
     a host structure no ISA instruction reaches, and the only mid-run
     hook, [on_store], observes);
   - loads and stores translate through [Mmu.translate_code], so the loop
     allocates nothing: no closures, no [Ok]/[Error]/[Some] boxes.

   Stores still translate on every access (a mid-run protection toggle
   cannot exist, but a store's writability genuinely varies by page), and
   the per-fetch page-version compare catches self-modifying (or
   fault-flipped) text.

   Rare shapes — an unaligned pc, an access or fetch spanning a page — are
   delegated per-instruction to the reference [step]. *)

let page_mask = Phys_mem.page_size - 1

let page_shift = 13 (* log2 page_size *)

let dpage_at t pfn =
  match Array.unsafe_get t.dcache pfn with
  | Some dp -> dp
  | None ->
    let dp = { dver = -1; dslots = Array.make words_per_page Empty } in
    t.dcache.(pfn) <- Some dp;
    dp

let run_fast t ~max_instructions =
  let budget = t.instructions + max_instructions in
  let mem = t.mem and mmu = t.mmu and regs = t.regs in
  let mem_size = Phys_mem.size mem in
  let rr n = if n = 0 then 0 else Array.unsafe_get regs n in
  let wr n v = if n <> 0 then Array.unsafe_set regs n v in
  (* Per-run fetch-translation cache: virtual page -> physical base. *)
  let fetch_vpn = ref (-1) in
  let fetch_pbase = ref 0 in
  let fetch_dp = ref (dpage_at t 0) in
  let trap_code code vaddr =
    if code = Mmu.code_write_protected then
      t.state <- Trapped (Protection_violation (Mmu.fault_vaddr mmu vaddr))
    else t.state <- Trapped (Illegal_address (Mmu.fault_vaddr mmu vaddr))
  in
  (* Memory helpers return [true] to continue; [false] means the access
     trapped and [t.state] is set. They leave [t.pc] alone — the loop
     below carries the pc (and the retired count) in its own arguments
     and writes the fields back only when something can observe them:
     a trap, a store (whose [on_store] callback is arbitrary code), a
     delegated reference [step], or run exit. *)
  let do_load d addr width =
    let code = Mmu.translate_code mmu ~vaddr:addr ~access:Mmu.Read in
    if code < 0 then begin
      trap_code code addr;
      false
    end
    else if width > 1 && (addr land page_mask) + width > Phys_mem.page_size then begin
      let code2 = Mmu.translate_code mmu ~vaddr:(addr + width - 1) ~access:Mmu.Read in
      if code2 < 0 then begin
        trap_code code2 (addr + width - 1);
        false
      end
      else if code + width > mem_size then begin
        t.state <- Trapped (Illegal_address addr);
        false
      end
      else begin
        wr d
          (match width with
          | 4 -> Phys_mem.read_u32 mem code
          | _ -> Phys_mem.read_u64 mem code);
        true
      end
    end
    else if code + width > mem_size then begin
      t.state <- Trapped (Illegal_address addr);
      false
    end
    else begin
      wr d
        (match width with
        | 1 -> Phys_mem.read_u8 mem code
        | 4 -> Phys_mem.read_u32 mem code
        | _ -> Phys_mem.read_u64 mem code);
      true
    end
  in
  (* The decoded page is validated against the live page version lazily:
     [fetch_ok] means the cached (dpage, version) pair is known fresh.  It
     is cleared whenever memory can have changed under the loop — a store,
     an [on_store] callback, or a delegated reference [step] — so straight
     store-free runs skip the per-instruction version lookup entirely. *)
  let fetch_ok = ref false in
  let commit_store v paddr width =
    (match width with
    | 1 -> Phys_mem.write_u8 mem paddr v
    | 4 -> Phys_mem.write_u32 mem paddr v
    | _ -> Phys_mem.write_u64 mem paddr v);
    t.stores <- t.stores + 1;
    (match t.on_store with Some f -> f ~paddr ~width | None -> ());
    fetch_ok := false;
    true
  in
  let do_store v addr width =
    let code = Mmu.translate_code mmu ~vaddr:addr ~access:Mmu.Write in
    if code < 0 then begin
      trap_code code addr;
      false
    end
    else if width > 1 && (addr land page_mask) + width > Phys_mem.page_size then begin
      let code2 = Mmu.translate_code mmu ~vaddr:(addr + width - 1) ~access:Mmu.Write in
      if code2 < 0 then begin
        trap_code code2 (addr + width - 1);
        false
      end
      else if code + width > mem_size then begin
        t.state <- Trapped (Illegal_address addr);
        false
      end
      else commit_store v code width
    end
    else if code + width > mem_size then begin
      t.state <- Trapped (Illegal_address addr);
      false
    end
    else commit_store v code width
  in
  (* [pc] and [icount] live in loop arguments (registers), not in [t]:
     straight-line execution touches no mutable field at all. Every exit
     and every externally-observable point syncs them back first. *)
  let rec loop pc icount =
    if icount >= budget then begin
      t.pc <- pc;
      t.instructions <- icount;
      Running
    end
    else begin
      let off = pc land page_mask in
      if off land 3 <> 0 || off > Phys_mem.page_size - 4 then begin
        (* Unaligned or page-spanning fetch: reference semantics. *)
        t.pc <- pc;
        t.instructions <- icount;
        ignore (step t);
        fetch_ok := false;
        match t.state with
        | Running -> loop t.pc t.instructions
        | s -> s
      end
      else begin
        let vpn = pc lsr page_shift in
        if vpn <> !fetch_vpn then begin
          let code = Mmu.translate_code mmu ~vaddr:pc ~access:Mmu.Exec in
          if code < 0 then trap_code code pc
          else if code + 4 > mem_size then t.state <- Trapped (Illegal_address pc)
          else begin
            fetch_vpn := vpn;
            fetch_pbase := code - off;
            fetch_dp := dpage_at t (code lsr page_shift);
            fetch_ok := false
          end
        end;
        if !fetch_vpn <> vpn then begin
          (* Fetch translation failed; [t.state] holds the trap. *)
          t.pc <- pc;
          t.instructions <- icount;
          t.state
        end
        else begin
          let paddr = !fetch_pbase + off in
          let dp = !fetch_dp in
          if not !fetch_ok then begin
            let ver = Phys_mem.page_version mem (paddr lsr page_shift) in
            if dp.dver <> ver then begin
              Array.fill dp.dslots 0 words_per_page Empty;
              dp.dver <- ver
            end;
            fetch_ok := true
          end;
          let widx = off lsr 2 in
          let slot =
            match Array.unsafe_get dp.dslots widx with
            | Empty ->
              let s =
                match Isa.decode (Phys_mem.read_u32 mem paddr) with
                | None -> Ill
                | Some instr -> I instr
              in
              Array.unsafe_set dp.dslots widx s;
              s
            | s -> s
          in
          match slot with
          | Empty -> assert false
          | Ill ->
            t.pc <- pc;
            t.instructions <- icount;
            trap t (Illegal_instruction (Phys_mem.read_u32 mem paddr))
          | I instr ->
            let icount = icount + 1 in
            let next = pc + 4 in
            (match instr with
            | Isa.Nop -> loop next icount
            | Isa.Halt ->
              t.pc <- pc;
              t.instructions <- icount;
              t.state <- Halted;
              Halted
            | Isa.Add (d, a, b) ->
              wr d (rr a + rr b);
              loop next icount
            | Isa.Sub (d, a, b) ->
              wr d (rr a - rr b);
              loop next icount
            | Isa.And (d, a, b) ->
              wr d (rr a land rr b);
              loop next icount
            | Isa.Or (d, a, b) ->
              wr d (rr a lor rr b);
              loop next icount
            | Isa.Xor (d, a, b) ->
              wr d (rr a lxor rr b);
              loop next icount
            | Isa.Sll (d, a, b) ->
              wr d (rr a lsl (rr b land 0x3F));
              loop next icount
            | Isa.Srl (d, a, b) ->
              wr d (rr a lsr (rr b land 0x3F));
              loop next icount
            | Isa.Mul (d, a, b) ->
              wr d (rr a * rr b);
              loop next icount
            | Isa.Slt (d, a, b) ->
              wr d (if rr a < rr b then 1 else 0);
              loop next icount
            | Isa.Addi (d, a, i) ->
              wr d (rr a + i);
              loop next icount
            | Isa.Andi (d, a, i) ->
              wr d (rr a land (i land 0xFFFF));
              loop next icount
            | Isa.Ori (d, a, i) ->
              wr d (rr a lor (i land 0xFFFF));
              loop next icount
            | Isa.Xori (d, a, i) ->
              wr d (rr a lxor (i land 0xFFFF));
              loop next icount
            | Isa.Slti (d, a, i) ->
              wr d (if rr a < i then 1 else 0);
              loop next icount
            | Isa.Lui (d, i) ->
              wr d ((i land 0xFFFF) lsl 16);
              loop next icount
            | Isa.Kseg (d, a) ->
              wr d (Mmu.kseg_addr (rr a));
              loop next icount
            | Isa.Ld (d, a, i) ->
              if do_load d (rr a + i) 8 then loop next icount
              else begin
                t.pc <- pc;
                t.instructions <- icount;
                t.state
              end
            | Isa.Ldw (d, a, i) ->
              if do_load d (rr a + i) 4 then loop next icount
              else begin
                t.pc <- pc;
                t.instructions <- icount;
                t.state
              end
            | Isa.Ldb (d, a, i) ->
              if do_load d (rr a + i) 1 then loop next icount
              else begin
                t.pc <- pc;
                t.instructions <- icount;
                t.state
              end
            | Isa.St (v, a, i) ->
              (* Sync before the store: the [on_store] callback is arbitrary
                 code and must observe the same [pc]/[instructions] as under
                 the reference interpreter (pc of the store, count already
                 bumped). *)
              t.pc <- pc;
              t.instructions <- icount;
              if do_store (rr v) (rr a + i) 8 then loop next icount else t.state
            | Isa.Stw (v, a, i) ->
              t.pc <- pc;
              t.instructions <- icount;
              if do_store (rr v) (rr a + i) 4 then loop next icount else t.state
            | Isa.Stb (v, a, i) ->
              t.pc <- pc;
              t.instructions <- icount;
              if do_store (rr v) (rr a + i) 1 then loop next icount else t.state
            | Isa.Beq (a, b, o) -> loop (if rr a = rr b then pc + (o * 4) else next) icount
            | Isa.Bne (a, b, o) -> loop (if rr a <> rr b then pc + (o * 4) else next) icount
            | Isa.Blt (a, b, o) -> loop (if rr a < rr b then pc + (o * 4) else next) icount
            | Isa.Bge (a, b, o) -> loop (if rr a >= rr b then pc + (o * 4) else next) icount
            | Isa.Jmp o -> loop (pc + (o * 4)) icount
            | Isa.Jal (d, o) ->
              wr d next;
              loop (pc + (o * 4)) icount
            | Isa.Jr a -> loop (rr a) icount
            | Isa.Assert_nz (a, msg) ->
              if rr a = 0 then begin
                t.pc <- pc;
                t.instructions <- icount;
                t.state <- Trapped (Consistency_panic msg);
                t.state
              end
              else loop next icount)
        end
      end
    end
  in
  match t.state with
  | (Halted | Trapped _) as s -> s
  | Running -> loop t.pc t.instructions

let run t ~max_instructions =
  if t.fast then run_fast t ~max_instructions else run_slow t ~max_instructions

let resume t = t.state <- Running

let reset t =
  Array.fill t.regs 0 32 0;
  t.pc <- 0;
  t.state <- Running;
  t.instructions <- 0;
  t.stores <- 0

let trap_to_string = function
  | Illegal_address a -> Printf.sprintf "illegal address %#x" a
  | Protection_violation a -> Printf.sprintf "protection violation at %#x" a
  | Illegal_instruction w -> Printf.sprintf "illegal instruction %#010x" w
  | Consistency_panic m -> Printf.sprintf "kernel consistency check #%d failed" m

let pp_trap ppf t = Format.pp_print_string ppf (trap_to_string t)
