(* Tests for the fast data path: copy-on-write snapshots, the dirty-page
   bitmap, decoded-dispatch invalidation on self-modifying text,
   incremental checksums, and fast/reference equivalence of both the bare
   interpreter and a scaled-down campaign at -j1/-j4. *)

module Isa = Rio_cpu.Isa
module Machine = Rio_cpu.Machine
module Mmu = Rio_vm.Mmu
module Phys_mem = Rio_mem.Phys_mem
module Checksum = Rio_util.Checksum
module Pattern = Rio_util.Pattern
module Fastpath = Rio_util.Fastpath
module Reliability = Rio_harness.Reliability
module Run = Rio_harness.Run
module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let with_fastpath b f =
  Fastpath.set b;
  Fun.protect ~finally:(fun () -> Fastpath.set true) f

(* ---------------- copy-on-write snapshots ---------------- *)

let random_mutation rng mem =
  let size = Phys_mem.size mem in
  match Random.State.int rng 6 with
  | 0 -> Phys_mem.write_u8 mem (Random.State.int rng size) (Random.State.int rng 256)
  | 1 -> Phys_mem.write_u32 mem (Random.State.int rng (size - 4)) (Random.State.int rng 0x3FFF_FFFF)
  | 2 -> Phys_mem.write_u64 mem (Random.State.int rng (size - 8)) (Random.State.full_int rng max_int)
  | 3 ->
    let len = 1 + Random.State.int rng 300 in
    let addr = Random.State.int rng (size - len) in
    Phys_mem.fill mem addr ~len (Char.chr (Random.State.int rng 256))
  | 4 ->
    (* Long enough to span page boundaries. *)
    let len = 1 + Random.State.int rng (Phys_mem.page_size + 1000) in
    let src = Random.State.int rng (size - len) in
    let dst = Random.State.int rng (size - len) in
    Phys_mem.blit_within mem ~src ~dst ~len
  | _ -> Phys_mem.flip_bit mem (Random.State.int rng size) ~bit:(Random.State.int rng 8)

let test_snapshot_equals_dump () =
  let rng = Random.State.make [| 42 |] in
  let mem = Phys_mem.create ~bytes_total:(16 * Phys_mem.page_size) in
  for _ = 1 to 50 do
    random_mutation rng mem
  done;
  let before = Phys_mem.dump mem in
  let snap = Phys_mem.snapshot mem in
  for _ = 1 to 200 do
    random_mutation rng mem
  done;
  let through = Phys_mem.snap_blit_out mem snap 0 ~len:(Phys_mem.size mem) in
  check Alcotest.bool "snapshot view = dump taken at snapshot time" true
    (Bytes.equal through before);
  check Alcotest.int "snapshot checksum = dump crc"
    (Checksum.crc32 before ~pos:0 ~len:(Bytes.length before))
    (Phys_mem.snap_checksum_range mem snap 0 ~len:(Phys_mem.size mem));
  check Alcotest.bool "COW saved only touched pages" true
    (Phys_mem.snap_saved_pages snap <= Phys_mem.page_count mem);
  Phys_mem.restore mem snap;
  check Alcotest.bool "restore returns memory to snapshot state" true
    (Bytes.equal (Phys_mem.dump mem) before)

let test_overlapping_snapshots () =
  let rng = Random.State.make [| 7; 9 |] in
  let mem = Phys_mem.create ~bytes_total:(8 * Phys_mem.page_size) in
  for _ = 1 to 30 do
    random_mutation rng mem
  done;
  let snap1 = Phys_mem.snapshot mem in
  let at1 = Phys_mem.dump mem in
  for _ = 1 to 60 do
    random_mutation rng mem
  done;
  let snap2 = Phys_mem.snapshot mem in
  let at2 = Phys_mem.dump mem in
  for _ = 1 to 60 do
    random_mutation rng mem
  done;
  Phys_mem.restore mem snap2;
  check Alcotest.bool "inner restore" true (Bytes.equal (Phys_mem.dump mem) at2);
  Phys_mem.restore mem snap1;
  check Alcotest.bool "outer restore" true (Bytes.equal (Phys_mem.dump mem) at1)

(* ---------------- dirty bitmap ---------------- *)

let test_dirty_bitmap () =
  let psz = Phys_mem.page_size in
  let mem = Phys_mem.create ~bytes_total:(8 * psz) in
  check Alcotest.int "fresh memory clean" 0 (Phys_mem.dirty_count mem);
  Phys_mem.write_u8 mem ((2 * psz) + 5) 7;
  check Alcotest.bool "page 2 dirty" true (Phys_mem.is_dirty mem 2);
  check Alcotest.bool "page 1 clean" false (Phys_mem.is_dirty mem 1);
  check Alcotest.int "one dirty page" 1 (Phys_mem.dirty_count mem);
  (* A blit whose destination straddles the page 4/5 boundary. *)
  Phys_mem.blit_within mem ~src:0 ~dst:((5 * psz) - 4) ~len:8;
  check Alcotest.bool "page 4 dirty after straddling blit" true (Phys_mem.is_dirty mem 4);
  check Alcotest.bool "page 5 dirty after straddling blit" true (Phys_mem.is_dirty mem 5);
  Phys_mem.flip_bit mem (6 * psz) ~bit:3;
  check Alcotest.bool "page 6 dirty after bit flip" true (Phys_mem.is_dirty mem 6);
  check Alcotest.bool "page 3 still clean" false (Phys_mem.is_dirty mem 3);
  let seen = ref [] in
  Phys_mem.iter_dirty mem (fun p -> seen := p :: !seen);
  check (Alcotest.list Alcotest.int) "iter_dirty ascending" [ 2; 4; 5; 6 ] (List.rev !seen);
  let v3 = Phys_mem.page_version mem 3 in
  Phys_mem.power_cycle mem;
  check Alcotest.int "power cycle dirties every page" (Phys_mem.page_count mem)
    (Phys_mem.dirty_count mem);
  check Alcotest.bool "power cycle bumps versions of clean pages" true
    (Phys_mem.page_version mem 3 > v3)

(* ---------------- decode-cache invalidation ---------------- *)

(* Patch an instruction the machine has already executed (and therefore
   decoded and cached), then execute it again. The pre-decoded dispatch
   must notice the page-version bump and re-decode.

   Layout (word / byte):
     0/0   Ori  r2, r0, 32        ; r2 = address of the target slot
     1/4   Lui  r1, hi(new)       ; r1 = patched instruction word
     2/8   Ori  r1, r1, lo(new)
     3/12  Ori  r4, r0, 1         ; first-pass flag
     4/16  Jmp  +4                ; -> target
     5/20  Stw  r1, 0(r2)         ; patch the target in place
     6/24  Ori  r4, r0, 0
     7/28  Jmp  +1                ; -> target
     8/32  Addi r5, r5, 1         ; TARGET: becomes Addi r5, r5, 100
     9/36  Bne  r4, r0, -4        ; first pass: back to the patch
     10/40 Halt *)
let self_modifying_program () =
  let patched = Isa.encode (Isa.Addi (5, 5, 100)) in
  let signed16 v = if v land 0x8000 <> 0 then v - 0x10000 else v in
  [
    Isa.Ori (2, 0, 32);
    Isa.Lui (1, signed16 (patched lsr 16));
    Isa.Ori (1, 1, signed16 (patched land 0xFFFF));
    Isa.Ori (4, 0, 1);
    Isa.Jmp 4;
    Isa.Stw (1, 2, 0);
    Isa.Ori (4, 0, 0);
    Isa.Jmp 1;
    Isa.Addi (5, 5, 1);
    Isa.Bne (4, 0, -4);
    Isa.Halt;
  ]

let run_with_fastpath fast instrs =
  with_fastpath fast @@ fun () ->
  let mem = Phys_mem.create ~bytes_total:(32 * Phys_mem.page_size) in
  let mmu = Mmu.create ~mem_pages:(Phys_mem.page_count mem) ~tlb_entries:16 () in
  let m = Machine.create ~mem ~mmu in
  List.iteri (fun i instr -> Phys_mem.write_u32 mem (i * 4) (Isa.encode instr)) instrs;
  let state = Machine.run m ~max_instructions:10_000 in
  (state, m)

let test_self_modifying_text () =
  let state, m = run_with_fastpath true (self_modifying_program ()) in
  check Alcotest.bool "halts" true (state = Machine.Halted);
  check Alcotest.int "patched instruction executed (1 + 100)" 101 (Machine.reg m 5);
  let state_ref, m_ref = run_with_fastpath false (self_modifying_program ()) in
  check Alcotest.bool "reference halts" true (state_ref = Machine.Halted);
  check Alcotest.int "reference agrees" (Machine.reg m_ref 5) (Machine.reg m 5);
  check Alcotest.int "instruction counts agree" (Machine.instructions_retired m_ref)
    (Machine.instructions_retired m)

(* ---------------- fast ≡ reference on random programs ---------------- *)

let gen_instr rng =
  let r () = Random.State.int rng 32 in
  let moff () = Random.State.int rng 64 * 8 in
  match Random.State.int rng 18 with
  | 0 -> Isa.Add (r (), r (), r ())
  | 1 -> Isa.Sub (r (), r (), r ())
  | 2 -> Isa.Mul (r (), r (), r ())
  | 3 -> Isa.Addi (r (), r (), Random.State.int rng 512 - 256)
  | 4 -> Isa.Ori (r (), r (), Random.State.int rng 32768)
  | 5 -> Isa.Lui (r (), Random.State.int rng 32768)
  | 6 -> Isa.Ld (r (), 20, moff ())
  | 7 -> Isa.Ldw (r (), 20, moff ())
  | 8 -> Isa.Ldb (r (), 20, moff ())
  | 9 -> Isa.St (r (), 20, moff ())
  | 10 -> Isa.Stw (r (), 20, moff ())
  | 11 -> Isa.Stb (r (), 20, moff ())
  | 12 -> Isa.Beq (r (), r (), Random.State.int rng 9 - 4)
  | 13 -> Isa.Bne (r (), r (), Random.State.int rng 9 - 4)
  | 14 -> Isa.Slt (r (), r (), r ())
  | 15 -> Isa.Jal (31, Random.State.int rng 7 - 2)
  | 16 -> Isa.Jr (r ())
  | _ -> Isa.Assert_nz (r (), Random.State.int rng 100)

(* Run the same random program under both interpreters and demand the
   whole observable machine — state, pc, counters, registers, memory, and
   the [on_store] event stream — comes out identical. Wild programs trap,
   loop, and self-modify; the invariant is not "no trap" but "the same
   trap at the same instruction". *)
let run_one_side fast seed =
  with_fastpath fast @@ fun () ->
  let rng = Random.State.make [| seed; 0x5107 |] in
  let mem = Phys_mem.create ~bytes_total:(8 * Phys_mem.page_size) in
  let mmu = Mmu.create ~mem_pages:(Phys_mem.page_count mem) ~tlb_entries:16 () in
  let m = Machine.create ~mem ~mmu in
  (* r20 = data base two pages up; programs load/store around it. *)
  Machine.set_reg m 20 (2 * Phys_mem.page_size);
  Phys_mem.blit_in mem (2 * Phys_mem.page_size) (Pattern.fill ~seed ~len:1024);
  let n = 8 + Random.State.int rng 56 in
  for i = 0 to n - 1 do
    Phys_mem.write_u32 mem (i * 4) (Isa.encode (gen_instr rng))
  done;
  let events = ref [] in
  Machine.set_on_store m (fun ~paddr ~width -> events := (paddr, width) :: !events);
  let state = Machine.run m ~max_instructions:400 in
  let regs = List.init 32 (Machine.reg m) in
  ( state,
    Machine.pc m,
    Machine.instructions_retired m,
    Machine.stores_retired m,
    regs,
    Phys_mem.dump mem,
    List.rev !events )

let prop_fast_matches_reference =
  QCheck.Test.make ~name:"fast interpreter = reference on random programs" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed -> run_one_side true seed = run_one_side false seed)

(* ---------------- incremental checksums ---------------- *)

let test_checksum_range_matches_crc () =
  let rng = Random.State.make [| 77 |] in
  let psz = Phys_mem.page_size in
  let mem = Phys_mem.create ~bytes_total:(4 * psz) in
  let check_range what addr len =
    let direct =
      let b = Phys_mem.blit_out mem addr ~len in
      Checksum.crc32 b ~pos:0 ~len
    in
    check Alcotest.int what direct (Phys_mem.checksum_range mem addr ~len)
  in
  check_range "all-zero page" psz psz;
  (* Small writes take the O(written) incremental-update path; the value
     must match a from-scratch CRC every time. *)
  for i = 1 to 40 do
    Phys_mem.write_u64 mem (psz + Random.State.int rng (psz - 8)) (Random.State.full_int rng max_int);
    check_range (Printf.sprintf "after small write %d" i) psz psz
  done;
  (* A big write crosses the recompute threshold. *)
  Phys_mem.fill mem psz ~len:4096 'x';
  check_range "after bulk fill" psz psz;
  check_range "sub-page range" (psz + 8) 100;
  check_range "multi-page range" 0 (4 * psz)

let prop_crc_incremental_algebra =
  (* The identity the incremental path relies on: patching a range of M
     shifts the CRC by the raw CRC of the xor-difference, carried over the
     tail zeros. *)
  QCheck.Test.make ~name:"crc32_raw/shift_zeros patch identity" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xC4C |] in
      let n = 1 + Random.State.int rng 4000 in
      let m = Bytes.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
      let l = 1 + Random.State.int rng n in
      let p = Random.State.int rng (n - l + 1) in
      let m' = Bytes.copy m in
      let d = Bytes.create l in
      for i = 0 to l - 1 do
        let nb = Random.State.int rng 256 in
        Bytes.set d i (Char.chr (nb lxor Char.code (Bytes.get m (p + i))));
        Bytes.set m' (p + i) (Char.chr nb)
      done;
      let zeros = n - (p + l) in
      Checksum.crc32 m' ~pos:0 ~len:n
      = Checksum.crc32 m ~pos:0 ~len:n
        lxor Checksum.shift_zeros (Checksum.crc32_raw d ~pos:0 ~len:l) ~zeros)

(* ---------------- pattern stream ---------------- *)

let test_pattern_fill_at () =
  List.iter
    (fun seed ->
      let whole = Pattern.fill ~seed ~len:5000 in
      let part = Pattern.fill_at ~seed ~offset:1234 ~len:999 in
      for i = 0 to 998 do
        if Bytes.get part i <> Bytes.get whole (1234 + i) then
          Alcotest.failf "fill_at mismatch at %d (seed %d)" i seed
      done;
      for i = 0 to 200 do
        if Pattern.byte_at ~seed (i * 17) <> Bytes.get whole (i * 17) then
          Alcotest.failf "byte_at mismatch at %d (seed %d)" (i * 17) seed
      done)
    [ 1; 2; 42; 1000 ]

(* ---------------- harness: fast/reference at -j1/-j4 ---------------- *)

let quick_config =
  {
    Campaign.default_config with
    Campaign.warmup_steps = 15;
    max_steps = 70;
    memtest_files = 10;
    memtest_file_bytes = 16 * 1024;
    background_andrew = 1;
    andrew_scale = 0.02;
  }

let test_fast_reference_parallel_agree () =
  let run fast domains =
    with_fastpath fast @@ fun () ->
    Reliability.run ~campaign:quick_config
      ~systems:[ Campaign.Rio_with_protection; Campaign.Disk_based ]
      ~faults:[ Fault_type.Kernel_text; Fault_type.Copy_overrun ]
      { Run.default with Run.trials = 2; seed = 31; domains }
  in
  let fast1 = run true 1 in
  let fast4 = run true 4 in
  let ref1 = run false 1 in
  let ref4 = run false 4 in
  check Alcotest.bool "fast -j1 = fast -j4" true (fast1 = fast4);
  check Alcotest.bool "fast -j1 = reference -j1" true (fast1 = ref1);
  check Alcotest.bool "fast -j1 = reference -j4" true (fast1 = ref4)

let () =
  Alcotest.run "rio_fastpath"
    [
      ( "snapshot",
        [
          Alcotest.test_case "COW snapshot = dump/restore" `Quick test_snapshot_equals_dump;
          Alcotest.test_case "overlapping snapshots" `Quick test_overlapping_snapshots;
        ] );
      ("dirty", [ Alcotest.test_case "dirty bitmap semantics" `Quick test_dirty_bitmap ]);
      ( "decode-cache",
        [ Alcotest.test_case "self-modifying text re-decodes" `Quick test_self_modifying_text ]
      );
      ("equivalence", [ qtest prop_fast_matches_reference ]);
      ( "checksum",
        [
          Alcotest.test_case "checksum_range = direct CRC" `Quick test_checksum_range_matches_crc;
          qtest prop_crc_incremental_algebra;
        ] );
      ("pattern", [ Alcotest.test_case "fill_at/byte_at slices" `Quick test_pattern_fill_at ]);
      ( "harness",
        [
          Alcotest.test_case "fast/reference agree at -j1/-j4" `Slow
            test_fast_reference_parallel_agree;
        ] );
    ]
