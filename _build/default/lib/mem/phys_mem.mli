(** Simulated physical memory.

    One flat byte array divided into 8 KB pages (the Digital Unix page size
    the paper's registry is keyed to). Physical addresses are byte offsets.

    Crash semantics are the heart of Rio: [reset] models a warm reboot (the
    machine resets but DRAM keeps its contents, as the DEC Alpha allows,
    paper §5) and is a no-op on the data; [power_cycle] models a cold boot
    and scrubs everything. [dump] / [restore_dump] support the warm-reboot
    crash dump to the swap partition (§2.2). *)

type t

type paddr = int
(** A physical byte address. *)

val page_size : int
(** 8192 bytes. *)

val create : bytes_total:int -> t
(** [create ~bytes_total] makes zeroed memory; the size is rounded up to a
    whole number of pages. *)

val size : t -> int
(** Total bytes. *)

val page_count : t -> int

val page_base : int -> paddr
(** [page_base pfn] is the first address of physical frame [pfn]. *)

val pfn_of_addr : paddr -> int
(** Physical frame number containing an address. *)

val in_range : t -> paddr -> len:int -> bool
(** Whether [\[addr, addr+len)] lies inside memory. *)

(** {1 Access}

    All accessors raise [Invalid_argument] on out-of-range addresses —
    callers (the MMU) are expected to have validated addresses; the kernel
    model maps such violations to machine checks. *)

val read_u8 : t -> paddr -> int
val write_u8 : t -> paddr -> int -> unit

val read_u32 : t -> paddr -> int
(** Little-endian, result in [\[0, 2^32)]. *)

val write_u32 : t -> paddr -> int -> unit

val read_u64 : t -> paddr -> int
(** Little-endian, truncated to OCaml's 63-bit int (addresses and kernel
    integers in this model all fit). *)

val write_u64 : t -> paddr -> int -> unit

val blit_in : t -> paddr -> bytes -> unit
(** Copy bytes into memory at an address. *)

val blit_out : t -> paddr -> len:int -> bytes
(** Copy a range of memory out. *)

val blit_within : t -> src:paddr -> dst:paddr -> len:int -> unit
(** memmove semantics within simulated memory. *)

val fill : t -> paddr -> len:int -> char -> unit

val checksum_range : t -> paddr -> len:int -> int
(** CRC-32 of the range, used by the Rio checksum guard. *)

(** {1 Fault-injection hooks} *)

val flip_bit : t -> paddr -> bit:int -> unit
(** Flip bit [bit] (0-7) of the byte at [addr]. *)

(** {1 Crash and reboot semantics} *)

val reset : t -> unit
(** Warm reset: contents survive (no-op on data). *)

val power_cycle : t -> unit
(** Cold boot: all bytes zeroed. *)

val dump : t -> bytes
(** A full copy of memory — the §2.2 crash dump taken early in the warm
    reboot, before VM initialization can touch anything. *)

val restore_dump : t -> bytes -> unit
(** Overwrite memory from a dump of the same size. *)

val unsafe_raw : t -> bytes
(** The underlying storage, exposed for the interpreted CPU's hot path and
    for checksumming; mutating it bypasses nothing (there is nothing to
    bypass at this layer). *)
