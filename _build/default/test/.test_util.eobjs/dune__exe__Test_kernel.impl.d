test/test_kernel.ml: Alcotest Bytes Option Rio_cpu Rio_disk Rio_fs Rio_kernel Rio_mem Rio_sim Rio_util
