(** The kernel heap's data structures.

    A fixed arrangement of the structures the synthetic kernel activity
    operates on — a free list of nodes, a pointer-chase chain, lock words,
    counters, an allocation bitmap, and a ring buffer — living at stable
    offsets inside the kernel-heap region of simulated memory, where the
    heap bit-flip faults can hit them. *)

type t

val node_size : int
(** 64 bytes; the intrusive next pointer is the first word. *)

val init : mem:Rio_mem.Phys_mem.t -> region:Rio_mem.Layout.region -> t
(** Lay out and initialize all structures. *)

val reinit : t -> unit
(** Rebuild pristine structures (kernel reboot). *)

(** {1 Addresses (mapped virtual = physical, identity)} *)

val free_head_addr : t -> int
val chase_head_addr : t -> int
val ring_index_addr : t -> int
val lock_addr : t -> int -> int
(** 8 locks, index 0-7. *)

val counter_addr : t -> int -> int
(** 8 counters, index 0-7. *)

val bitmap_addr : t -> int
val bitmap_bytes : int
val ring_base_addr : t -> int
val ring_capacity : int
val node_count : int
val chase_count : int

val node_addr : t -> int -> int
(** Address of free-list node [i]. *)

val dlist_head_addr : t -> int
(** Anchor of the doubly-linked list (next at +0, prev at +8 in nodes). *)

val dlist_node_addr : t -> int -> int
val dlist_count : int

val hash_table_addr : t -> int
(** 64 bucket heads of 8 bytes each. *)

val hash_key_addr : t -> int -> int
val hash_buckets : int

val reset_dlist : t -> unit
(** Re-zero the doubly-linked list (periodic recycle by the dispatcher). *)

val scratch_addr : t -> int
(** A [scratch_bytes]-byte scratch area for kernel copies staged in the
    heap. *)

val scratch_bytes : int
(** 8192. *)

(** {1 Native accessors (fault injection and bookkeeping)} *)

val read_word : t -> int -> int
val write_word : t -> int -> int -> unit

val native_list_insert : t -> node:int -> unit
(** Push a node onto the free list natively — the premature free of the
    allocation-fault model (§3.1). No consistency checks: the fault is the
    point. *)

val reset_bitmap : t -> unit
(** Clear the allocation bitmap (the kernel's periodic recycle). *)

val reset_counters : t -> unit
