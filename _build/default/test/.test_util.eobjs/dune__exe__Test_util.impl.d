test/test_util.ml: Alcotest Array Bytes Char List QCheck QCheck_alcotest Rio_util String
