module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Phys_mem = Rio_mem.Phys_mem
module Disk = Rio_disk.Disk
module Rio_cache = Rio_core.Rio_cache
module Trace = Rio_obs.Trace

(* The frozen template: one O(1) copy-on-write memory snapshot plus a
   host-side checkpoint of every mutable structure the stack owns. The
   page and disk-sector *contents* are covered by [snap] and the disk
   checkpoint's deep copy; everything else is cursors, counters, caches,
   and PRNG state. *)
type template = {
  snap : Phys_mem.snapshot;
  eng_ck : Engine.checkpoint;
  disk_ck : Disk.checkpoint;
  kern_ck : Kernel.checkpoint;
  rio_ck : Rio_cache.checkpoint option;
  fs_ck : Fs.checkpoint;
}

type t = {
  seed : int;
  config : Kernel.config;
  costs : Costs.t;
  engine : Engine.t;
  kernel : Kernel.t;
  rio : Rio_cache.t option; (* [None]: a disk-based world, no Rio cache *)
  fs : Fs.t;
  mutable template : template option;
  mutable resets : (unit -> unit) list; (* registration order *)
  mutable restores : int;
  mutable pages_restored : int;
}

(* The --reference escape hatch: when off, clients build every trial
   world from scratch instead of restoring templates. Set once before
   any worker domain spawns (domain spawn publishes the write). *)
let templates = Atomic.make true
let set_use_templates b = Atomic.set templates b
let templates_on () = Atomic.get templates

let create ?(obs = Trace.null) ?config ?(rio = true) ?(protection = true) ?(shadow = true)
    ?(registry = true) ?(policy = Fs.Rio_policy) ?backend ?(wb_unordered = false) ~seed () =
  let engine = Engine.create ~obs () in
  let costs = Costs.default in
  let config =
    match config with
    | Some c -> { c with Kernel.seed }
    | None -> Kernel.config_with_seed seed
  in
  let config =
    match backend with
    | Some b -> { config with Kernel.disk_backend = b }
    | None -> config
  in
  let kernel = Kernel.boot ~engine ~costs config in
  Kernel.format kernel;
  let rio =
    if rio then
      Some
        (Rio_cache.create ~shadow ~registry ~mem:(Kernel.mem kernel)
           ~layout:(Kernel.layout kernel) ~mmu:(Kernel.mmu kernel) ~engine ~costs
           ~hooks:(Kernel.hooks kernel) ~pool_alloc:(Kernel.pool_alloc kernel) ~protection
           ~dev:1 ())
    else None
  in
  let fs = Kernel.mount ~wb_unordered kernel ~policy in
  {
    seed;
    config;
    costs;
    engine;
    kernel;
    rio;
    fs;
    template = None;
    resets = [];
    restores = 0;
    pages_restored = 0;
  }

let seed t = t.seed
let config t = t.config
let costs t = t.costs
let engine t = t.engine
let kernel t = t.kernel
let rio t =
  match t.rio with
  | Some r -> r
  | None -> invalid_arg "World.rio: world built without a Rio cache"
let fs t = t.fs
let mem t = Kernel.mem t.kernel
let disk t = Kernel.disk t.kernel
let hooks t = Kernel.hooks t.kernel
let layout t = Kernel.layout t.kernel

let on_restore t f = t.resets <- t.resets @ [ f ]

let frozen t = t.template <> None

let freeze t =
  if t.template <> None then invalid_arg "World.freeze: already frozen";
  (* Disk.checkpoint refuses a non-empty request queue (an async write
     between issue and completion has no well-defined rewind point), so
     retire anything still in flight from the setup workload first. The
     drain advances the simulated clock, which is fine: the template IS
     the post-setup instant, and every restore rewinds to it exactly. *)
  Disk.drain (Kernel.disk t.kernel);
  t.template <-
    Some
      {
        snap = Phys_mem.snapshot (Kernel.mem t.kernel);
        eng_ck = Engine.checkpoint t.engine;
        disk_ck = Disk.checkpoint (Kernel.disk t.kernel);
        kern_ck = Kernel.checkpoint t.kernel;
        rio_ck = Option.map Rio_cache.checkpoint t.rio;
        fs_ck = Fs.checkpoint t.fs;
      }

let restore t =
  match t.template with
  | None -> invalid_arg "World.restore: not frozen"
  | Some tpl ->
    (* Client resets first (drop stray probe captures, rewind payload
       cursors): they must not depend on the rewound state. *)
    List.iter (fun f -> f ()) t.resets;
    let pages = Phys_mem.restore_keep (Kernel.mem t.kernel) tpl.snap in
    (* Engine first: it clears the event queue, so Fs.restore (inside the
       kernel's fs handle) can re-schedule the update daemon at its
       checkpointed absolute due time. *)
    Engine.restore t.engine tpl.eng_ck;
    Disk.restore (Kernel.disk t.kernel) tpl.disk_ck;
    Kernel.restore t.kernel tpl.kern_ck;
    (match (t.rio, tpl.rio_ck) with
    | Some r, Some ck -> Rio_cache.restore r ck
    | None, None -> ()
    | Some _, None | None, Some _ -> assert false);
    Fs.restore t.fs tpl.fs_ck;
    t.restores <- t.restores + 1;
    t.pages_restored <- t.pages_restored + pages;
    pages

let restores t = t.restores
let pages_restored t = t.pages_restored

let dispose t =
  (match t.template with
  | Some tpl -> Phys_mem.release (Kernel.mem t.kernel) tpl.snap
  | None -> ());
  t.template <- None;
  Phys_mem.retire (Kernel.mem t.kernel)
