(** A minimal JSON representation (no external deps).

    One shared emitter for every machine-readable artifact the repo
    produces — [riobench --json], the flight-recorder JSONL and Chrome
    [trace_event] exports — plus a small strict parser so tests and smoke
    checks can assert that those artifacts actually parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escape a string's content for inclusion between double quotes. *)

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) serialization. *)

val to_string : t -> string
(** Compact serialization. Deterministic: fields print in construction
    order. *)

val pretty : ?indent:int -> t -> string
(** Multi-line serialization with [indent] spaces (default 2) per level.
    Scalars-only arrays and empty containers stay on one line. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Strict recursive-descent parse of a complete JSON document. Numbers
    without [.]/[e] parse as [Int]. [Error] carries a message with the
    offending byte offset. *)

(** {1 Accessors (for tests and smoke checks)} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_list : t -> t list
(** Elements of an [Arr]; [[]] otherwise. *)
