lib/harness/performance.mli: Rio_fs Rio_util
