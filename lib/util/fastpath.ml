(* One global knob, set once by the CLI before any worlds (or domains) are
   built. The fast and reference paths are byte-identical by construction;
   the knob exists so the harness can prove it. *)

let enabled = ref true

let set b = enabled := b

let on () = !enabled
