(* Tests for the ISA encoding and the interpreted machine. *)

module Isa = Rio_cpu.Isa
module Machine = Rio_cpu.Machine
module Mmu = Rio_vm.Mmu
module Page_table = Rio_vm.Page_table
module Phys_mem = Rio_mem.Phys_mem

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- ISA encode/decode ---------------- *)

let sample_instructions =
  [
    Isa.Nop;
    Isa.Halt;
    Isa.Add (1, 2, 3);
    Isa.Sub (31, 30, 29);
    Isa.And (0, 1, 2);
    Isa.Or (5, 5, 5);
    Isa.Xor (9, 10, 11);
    Isa.Sll (1, 2, 3);
    Isa.Srl (4, 5, 6);
    Isa.Mul (7, 8, 9);
    Isa.Slt (1, 2, 3);
    Isa.Addi (1, 2, -32768);
    Isa.Addi (1, 2, 32767);
    Isa.Andi (3, 4, 255);
    Isa.Ori (5, 6, 0xFFFF - 65536) (* -1 as signed: round trips as sign-extended *);
    Isa.Xori (7, 8, 1);
    Isa.Slti (9, 10, -5);
    Isa.Lui (11, 4096);
    Isa.Kseg (12, 13);
    Isa.Ld (1, 2, 8);
    Isa.St (3, 4, -8);
    Isa.Ldw (5, 6, 4);
    Isa.Stw (7, 8, 0);
    Isa.Ldb (9, 10, 1);
    Isa.Stb (11, 12, 2);
    Isa.Beq (1, 2, -4);
    Isa.Bne (3, 4, 4);
    Isa.Blt (5, 6, 100);
    Isa.Bge (7, 8, -100);
    Isa.Jmp 50;
    Isa.Jal (31, -50);
    Isa.Jr 31;
    Isa.Assert_nz (6, 17);
  ]

let test_roundtrip_samples () =
  List.iter
    (fun instr ->
      match Isa.decode (Isa.encode instr) with
      | Some back ->
        check Alcotest.string "roundtrip" (Isa.to_string instr) (Isa.to_string back)
      | None -> Alcotest.failf "failed to decode %s" (Isa.to_string instr))
    sample_instructions

let test_decode_illegal () =
  (* Opcodes 32-63 are unassigned. *)
  check Alcotest.bool "high opcode illegal" true (Isa.decode 0x3F = None);
  (* R-type with junk in the immediate field. *)
  let add = Isa.encode (Isa.Add (1, 2, 3)) in
  check Alcotest.bool "R-type junk bits illegal" true (Isa.decode (add lor (1 lsl 21)) = None)

let test_is_store_branch () =
  check Alcotest.bool "st is store" true (Isa.is_store (Isa.St (1, 2, 0)));
  check Alcotest.bool "ld is not" false (Isa.is_store (Isa.Ld (1, 2, 0)));
  check Alcotest.bool "beq is branch" true (Isa.is_branch (Isa.Beq (1, 2, 0)));
  check Alcotest.bool "jr is branch" true (Isa.is_branch (Isa.Jr 31));
  check Alcotest.bool "add is not" false (Isa.is_branch (Isa.Add (1, 2, 3)))

let test_reads_writes () =
  check (Alcotest.list Alcotest.int) "add reads" [ 2; 3 ] (Isa.reads (Isa.Add (1, 2, 3)));
  check (Alcotest.option Alcotest.int) "add writes" (Some 1) (Isa.writes (Isa.Add (1, 2, 3)));
  check (Alcotest.list Alcotest.int) "store reads value+base" [ 1; 2 ]
    (Isa.reads (Isa.St (1, 2, 0)));
  check (Alcotest.option Alcotest.int) "store writes none" None (Isa.writes (Isa.St (1, 2, 0)))

let test_with_rd_rs1 () =
  check Alcotest.string "with_rd" (Isa.to_string (Isa.Add (9, 2, 3)))
    (Isa.to_string (Isa.with_rd (Isa.Add (1, 2, 3)) 9));
  check Alcotest.string "with_rs1" (Isa.to_string (Isa.Add (1, 9, 3)))
    (Isa.to_string (Isa.with_rs1 (Isa.Add (1, 2, 3)) 9));
  check Alcotest.string "with_rd on jmp is identity" (Isa.to_string (Isa.Jmp 5))
    (Isa.to_string (Isa.with_rd (Isa.Jmp 5) 9))

let arbitrary_word = QCheck.int_range 0 0xFFFF_FFFF

let prop_decode_encode_fixpoint =
  QCheck.Test.make ~name:"decode-then-encode is a fixpoint" ~count:2000 arbitrary_word
    (fun word ->
      match Isa.decode word with
      | None -> true
      | Some instr ->
        (* Encoding may canonicalize (sign bits), but re-decoding must agree. *)
        Isa.decode (Isa.encode instr) = Some instr)

(* ---------------- machine ---------------- *)

let build_machine () =
  let mem = Phys_mem.create ~bytes_total:(32 * 8192) in
  let mmu = Mmu.create ~mem_pages:(Phys_mem.page_count mem) ~tlb_entries:16 () in
  (mem, mmu, Machine.create ~mem ~mmu)

let load_program mem origin instrs =
  List.iteri
    (fun i instr -> Phys_mem.write_u32 mem (origin + (i * 4)) (Isa.encode instr))
    instrs

let run_program ?(origin = 0) instrs =
  let mem, mmu, m = build_machine () in
  load_program mem origin instrs;
  Machine.set_pc m origin;
  let state = Machine.run m ~max_instructions:10_000 in
  (mem, mmu, m, state)

let state_testable =
  Alcotest.testable
    (fun ppf -> function
      | Machine.Running -> Format.fprintf ppf "Running"
      | Machine.Halted -> Format.fprintf ppf "Halted"
      | Machine.Trapped t -> Format.fprintf ppf "Trapped(%s)" (Machine.trap_to_string t))
    ( = )

let test_arithmetic () =
  let _, _, m, state =
    run_program
      [ Isa.Ori (1, 0, 20); Isa.Addi (2, 1, 22); Isa.Add (3, 1, 2); Isa.Halt ]
  in
  check state_testable "halts" Machine.Halted state;
  check Alcotest.int "r3 = 62" 62 (Machine.reg m 3)

let test_r0_hardwired () =
  let _, _, m, state = run_program [ Isa.Ori (0, 0, 99); Isa.Halt ] in
  check state_testable "halts" Machine.Halted state;
  check Alcotest.int "r0 stays zero" 0 (Machine.reg m 0)

let test_loop () =
  (* Sum 1..5 with a countdown loop. *)
  let _, _, m, state =
    run_program
      [
        Isa.Ori (1, 0, 5);
        (* loop: *) Isa.Add (2, 2, 1);
        Isa.Addi (1, 1, -1);
        Isa.Bne (1, 0, -2);
        Isa.Halt;
      ]
  in
  check state_testable "halts" Machine.Halted state;
  check Alcotest.int "sum" 15 (Machine.reg m 2)

let test_memory_ops () =
  let mem, _, m, state =
    run_program
      [
        Isa.Ori (1, 0, 0x1234);
        Isa.Ori (2, 0, 4096);
        Isa.St (1, 2, 0);
        Isa.Ld (3, 2, 0);
        Isa.Stb (1, 2, 8);
        Isa.Ldb (4, 2, 8);
        Isa.Halt;
      ]
  in
  check state_testable "halts" Machine.Halted state;
  check Alcotest.int "ld=st" 0x1234 (Machine.reg m 3);
  check Alcotest.int "byte truncated" 0x34 (Machine.reg m 4);
  check Alcotest.int "memory updated" 0x1234 (Phys_mem.read_u64 mem 4096)

let test_jal_jr () =
  (* call a routine at word 4 that doubles r1 *)
  let _, _, m, state =
    run_program
      [
        Isa.Ori (1, 0, 21);
        Isa.Jal (31, 3) (* -> word 4 *);
        Isa.Halt;
        Isa.Nop;
        (* sub: *) Isa.Add (1, 1, 1);
        Isa.Jr 31;
      ]
  in
  check state_testable "halts" Machine.Halted state;
  check Alcotest.int "doubled" 42 (Machine.reg m 1)

let test_illegal_address_trap () =
  let _, _, _, state = run_program [ Isa.Lui (1, 0x7FFF); Isa.Ld (2, 1, 0); Isa.Halt ] in
  match state with
  | Machine.Trapped (Machine.Illegal_address _) -> ()
  | Machine.Halted -> Alcotest.fail "expected illegal address, got halt"
  | Machine.Running -> Alcotest.fail "expected illegal address, still running"
  | Machine.Trapped t -> Alcotest.failf "expected illegal address, got %s" (Machine.trap_to_string t)

let test_illegal_instruction_trap () =
  let mem, _, m = build_machine () in
  Phys_mem.write_u32 mem 0 0xFFFF_FFFF;
  (match Machine.run m ~max_instructions:10 with
  | Machine.Trapped (Machine.Illegal_instruction _) -> ()
  | _ -> Alcotest.fail "expected illegal instruction")

let test_assert_panic () =
  let _, _, _, state = run_program [ Isa.Assert_nz (5, 7); Isa.Halt ] in
  check state_testable "panics with message id" (Machine.Trapped (Machine.Consistency_panic 7))
    state

let test_assert_passes () =
  let _, _, _, state = run_program [ Isa.Ori (5, 0, 1); Isa.Assert_nz (5, 7); Isa.Halt ] in
  check state_testable "no panic when nonzero" Machine.Halted state

let test_protection_trap () =
  let mem, mmu, m = build_machine () in
  load_program mem 0 [ Isa.Ori (1, 0, 1); Isa.Lui (2, 1) (* 64 KB = page 8 *); Isa.St (1, 2, 0); Isa.Halt ];
  Page_table.set_writable (Mmu.page_table mmu) ~vpn:8 false;
  (match Machine.run m ~max_instructions:10 with
  | Machine.Trapped (Machine.Protection_violation _) -> ()
  | _ -> Alcotest.fail "expected protection trap");
  check Alcotest.bool "no store retired" true (Machine.stores_retired m = 0)

let test_kseg_instruction () =
  let _, _, m, state = run_program [ Isa.Ori (1, 0, 4096); Isa.Kseg (2, 1); Isa.Halt ] in
  check state_testable "halts" Machine.Halted state;
  check Alcotest.int "kseg alias" (Mmu.kseg_addr 4096) (Machine.reg m 2)

let test_hang_budget () =
  let _, _, _, state = run_program [ Isa.Jmp 0 ] in
  check state_testable "budget exhausted leaves Running" Machine.Running state

let test_on_store_hook () =
  let mem, _, m = build_machine () in
  load_program mem 0 [ Isa.Ori (1, 0, 7); Isa.Ori (2, 0, 4096); Isa.St (1, 2, 0); Isa.Halt ];
  let seen = ref [] in
  Machine.set_on_store m (fun ~paddr ~width -> seen := (paddr, width) :: !seen);
  ignore (Machine.run m ~max_instructions:10);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "hook saw the store" [ (4096, 8) ] !seen

let test_disasm () =
  let mem, _, _ = build_machine () in
  load_program mem 0 [ Isa.Add (1, 2, 3); Isa.Halt ];
  Phys_mem.write_u32 mem 8 0xFFFF_FFFF;
  let lines = Rio_cpu.Disasm.disassemble mem ~addr:0 ~words:3 in
  (match lines with
  | [ a; b; c ] ->
    check Alcotest.string "first" "add r1, r2, r3"
      (match a.Rio_cpu.Disasm.instr with Some i -> Isa.to_string i | None -> "?");
    check Alcotest.string "second" "halt"
      (match b.Rio_cpu.Disasm.instr with Some i -> Isa.to_string i | None -> "?");
    check Alcotest.bool "third illegal" true (c.Rio_cpu.Disasm.instr = None)
  | _ -> Alcotest.fail "expected three lines");
  (* diff finds a mutation *)
  let pristine = Phys_mem.blit_out mem 0 ~len:12 in
  Phys_mem.write_u32 mem 0 (Isa.encode (Isa.Sub (1, 2, 3)));
  (match Rio_cpu.Disasm.diff ~before:pristine ~after:mem ~base:0 ~words:3 with
  | [ l ] ->
    check Alcotest.int "mutation address" 0 l.Rio_cpu.Disasm.addr;
    check Alcotest.string "mutated instr" "sub r1, r2, r3"
      (match l.Rio_cpu.Disasm.instr with Some i -> Isa.to_string i | None -> "?")
  | _ -> Alcotest.fail "expected exactly one diff")

let test_reset () =
  let _, _, m, _ = run_program [ Isa.Ori (1, 0, 9); Isa.Halt ] in
  Machine.reset m;
  check Alcotest.int "regs cleared" 0 (Machine.reg m 1);
  check Alcotest.int "pc cleared" 0 (Machine.pc m);
  check state_testable "running" Machine.Running (Machine.state m)

let () =
  Alcotest.run "rio_cpu"
    [
      ( "isa",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
          Alcotest.test_case "illegal decode" `Quick test_decode_illegal;
          Alcotest.test_case "is_store/is_branch" `Quick test_is_store_branch;
          Alcotest.test_case "reads/writes" `Quick test_reads_writes;
          Alcotest.test_case "with_rd/with_rs1" `Quick test_with_rd_rs1;
          qtest prop_decode_encode_fixpoint;
        ] );
      ( "machine",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "r0 hardwired" `Quick test_r0_hardwired;
          Alcotest.test_case "loop" `Quick test_loop;
          Alcotest.test_case "memory ops" `Quick test_memory_ops;
          Alcotest.test_case "jal/jr" `Quick test_jal_jr;
          Alcotest.test_case "illegal address" `Quick test_illegal_address_trap;
          Alcotest.test_case "illegal instruction" `Quick test_illegal_instruction_trap;
          Alcotest.test_case "assert panic" `Quick test_assert_panic;
          Alcotest.test_case "assert passes" `Quick test_assert_passes;
          Alcotest.test_case "protection trap" `Quick test_protection_trap;
          Alcotest.test_case "kseg instruction" `Quick test_kseg_instruction;
          Alcotest.test_case "hang on budget" `Quick test_hang_budget;
          Alcotest.test_case "on_store hook" `Quick test_on_store_hook;
          Alcotest.test_case "disassembler" `Quick test_disasm;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
    ]
