module Trace = Rio_obs.Trace

type config = {
  seed : int;
  trials : int;
  scale : float;
  domains : int;
  backend : Rio_disk.Backend.kind;
  trace_dir : string option;
  coverage : bool;
  obs_capacity : int option;
  obs_buckets : int array option;
  progress : Progress.t -> unit;
}

let default =
  {
    seed = 1;
    trials = 50;
    scale = 1.0;
    domains = 1;
    backend = Rio_disk.Backend.Scsi;
    trace_dir = None;
    coverage = false;
    obs_capacity = None;
    obs_buckets = None;
    progress = (fun (_ : Progress.t) -> ());
  }

(* Clamp the observability knobs into Trace's supported ranges once, and
   remember what was clamped so the CLI can tell the user. Pure in the
   config, so every call site sees the same sanitized values. *)
let sanitize_obs cfg =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let capacity =
    match cfg.obs_capacity with
    | None -> Trace.default_capacity
    | Some c ->
      let c' = max 0 (min Trace.max_capacity c) in
      if c' <> c then
        warn "trace-ring capacity %d out of range, clamped to %d" c c';
      c'
  in
  let buckets =
    match cfg.obs_buckets with
    | None -> None
    | Some edges ->
      let kept =
        List.sort_uniq compare (List.filter (fun e -> e >= 0) (Array.to_list edges))
      in
      if List.length kept < Array.length edges then
        warn
          "histogram bucket edges: %d of %d kept (negatives and duplicates dropped, \
           edges sorted)"
          (List.length kept) (Array.length edges);
      let kept =
        if List.length kept > Trace.max_bucket_edges then begin
          warn "histogram bucket edges truncated to %d" Trace.max_bucket_edges;
          List.filteri (fun i _ -> i < Trace.max_bucket_edges) kept
        end
        else kept
      in
      (match kept with
      | [] ->
        warn "histogram bucket edges empty after sanitizing, ignored";
        None
      | kept -> Some (Array.of_list kept))
  in
  (capacity, buckets, List.rev !warnings)

let obs_capacity cfg =
  let c, _, _ = sanitize_obs cfg in
  c

let obs_buckets cfg =
  let _, b, _ = sanitize_obs cfg in
  b

let obs_warnings cfg =
  let _, _, w = sanitize_obs cfg in
  w

let recorder cfg () = Trace.create ~capacity:(obs_capacity cfg) ()

let progress_sink cfg =
  if cfg.domains > 1 then Rio_parallel.Pool.sink cfg.progress else cfg.progress

let reporter cfg ~total =
  let completed = Atomic.make 0 in
  let sink = progress_sink cfg in
  fun ~label ~detail ->
    let c = 1 + Atomic.fetch_and_add completed 1 in
    sink { Progress.completed = c; total; label; detail }
