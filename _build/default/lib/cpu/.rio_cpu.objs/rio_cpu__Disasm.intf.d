lib/cpu/disasm.mli: Format Isa Rio_mem
