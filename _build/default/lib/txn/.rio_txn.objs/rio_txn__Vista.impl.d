lib/txn/vista.ml: Bytes Int32 List Rio_fs Rio_util
