module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Kcrash = Rio_kernel.Kcrash
module Fs = Rio_fs.Fs
module Fsck = Rio_fs.Fsck
module Machine = Rio_cpu.Machine
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Memtest = Rio_workload.Memtest
module Andrew = Rio_workload.Andrew
module Script = Rio_workload.Script
module Prng = Rio_util.Prng
module Pattern = Rio_util.Pattern
module Trace = Rio_obs.Trace
module Forensics = Rio_obs.Forensics
module World = Rio_world.World

type system =
  | Disk_based
  | Rio_without_protection
  | Rio_with_protection

let all_systems = [ Disk_based; Rio_without_protection; Rio_with_protection ]

let system_name = function
  | Disk_based -> "disk-based (write-through)"
  | Rio_without_protection -> "rio without protection"
  | Rio_with_protection -> "rio with protection"

let system_slug = function
  | Disk_based -> "disk-based"
  | Rio_without_protection -> "rio-noprot"
  | Rio_with_protection -> "rio-prot"

type config = {
  warmup_steps : int;
  max_steps : int;
  faults_per_run : int;
  activity_per_step : int;
  memtest_files : int;
  memtest_file_bytes : int;
  background_andrew : int;
  andrew_scale : float;
  kernel_config : Kernel.config;
}

let default_config =
  {
    warmup_steps = 40;
    max_steps = 260;
    faults_per_run = 20;
    activity_per_step = 2;
    memtest_files = 24;
    memtest_file_bytes = 32 * 1024;
    background_andrew = 2;
    andrew_scale = 0.03;
    kernel_config = Kernel.default_config;
  }

type outcome = {
  discarded : bool;
  crash : Kcrash.info option;
  crash_message : string option;
  protection_trap : bool;
  corrupted : bool;
  corrupt_paths : int;
  discrepancies : string list;
  checksum_detected : bool;
  changing_buffers : int;
  static_files_ok : bool;
  memtest_steps : int;
  sim_time_us : int;
  registry_corrupt_slots : int;
  wild_filecache_stores : int;
      (** Post-injection stores by interpreted kernel code into file-cache
          pages the kernel does not own — direct corruption in the act
          (the propagation tracing the paper's footnote 2 left open). *)
  injected_at_us : int;  (** When the faults went in. *)
  forensics : Forensics.t option;
      (** Present when the trial ran with a live recorder: the distilled
          injection → wild store → crash → recovery chain. *)
}

let static_seed = 0x57A7

let make_static_files fs =
  Fs.mkdir fs "/static";
  let data = Pattern.fill ~seed:static_seed ~len:24_000 in
  Fs.write_file fs "/static/copy-a" data;
  Fs.write_file fs "/static/copy-b" data

let static_files_match fs =
  match (Fs.read_file fs "/static/copy-a", Fs.read_file fs "/static/copy-b") with
  | a, b ->
    Bytes.equal a b && Bytes.equal a (Pattern.fill ~seed:static_seed ~len:24_000)
  | exception Rio_fs.Fs_types.Fs_error _ -> false

let make_rio kernel ~protection =
  Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
    ~mmu:(Kernel.mmu kernel) ~engine:(Kernel.engine kernel) ~costs:(Kernel.costs kernel)
    ~hooks:(Kernel.hooks kernel) ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ()

let is_protection_trap = function
  | Some { Kcrash.cause = Kcrash.Trap (Machine.Protection_violation _); _ } -> true
  | Some _ | None -> false

let run_one ?(obs = Trace.null) cfg system fault ~seed =
  (* Extra memories booted during the trial (the Disk_based recovery path
     boots a second one), recycled at the end alongside the world itself.
     Retiring is skipped when the trial escapes with an exception — the GC
     reclaims as before. *)
  let trial_mems = ref [] in
  let policy, protection, fsync_writes =
    match system with
    | Disk_based -> (Fs.Ufs_default, None, true)
    | Rio_without_protection -> (Fs.Rio_policy, Some false, false)
    | Rio_with_protection -> (Fs.Rio_policy, Some true, false)
  in
  (* The pristine post-mount world, via the same construction path the
     campaign engines template. No freeze here: every attempt's seed feeds
     the kernel PRNG at boot, so reliability trials never share a
     template — the win is the single world-building code path (and the
     retire-pooled memory). *)
  let w =
    World.create ~obs ~config:cfg.kernel_config ~rio:(protection <> None)
      ~protection:(protection = Some true) ~policy ~seed ()
  in
  let outcome =
  let engine = World.engine w in
  let costs = World.costs w in
  let kcfg = World.config w in
  let kernel = World.kernel w in
  let fs = World.fs w in
  make_static_files fs;
  let mt_config =
    {
      Memtest.default_config with
      Memtest.seed = seed lxor 0x77;
      max_files = cfg.memtest_files;
      max_file_bytes = cfg.memtest_file_bytes;
      fsync_every_write = fsync_writes;
    }
  in
  let mt = Memtest.create mt_config in
  let andrews =
    List.init cfg.background_andrew (fun i ->
        Andrew.runner
          (Andrew.create ~scale:cfg.andrew_scale ~seed:(200 + i)
             ~root:(Printf.sprintf "/bg%d" i) ()))
  in
  (* One combined workload step: memTest, a slice of each background
     Andrew, and the interleaved kernel activity. *)
  let one_step () =
    Memtest.step mt ~fs ();
    List.iter (fun r -> ignore (Script.step r fs)) andrews;
    for _ = 1 to cfg.activity_per_step do
      Kernel.run_activity kernel
    done
  in
  (* Warmup (any exception here is a real bug, not a crash). *)
  for _ = 1 to cfg.warmup_steps do
    one_step ()
  done;
  (* Inject the run's faults, and from this moment watch for interpreted
     stores landing in file-cache pages the kernel does not own — direct
     corruption caught red-handed. *)
  let inj_prng = Prng.create ~seed:(seed lxor 0xFA17) in
  Injector.inject_many kernel ~prng:inj_prng fault ~count:cfg.faults_per_run;
  let injected_at = Engine.now engine in
  let wild_stores = ref 0 in
  let layout = Kernel.layout kernel in
  let note_wild ~paddr ~width region =
    incr wild_stores;
    if Trace.enabled obs then
      Trace.emit obs Trace.Kernel (Trace.Wild_store { paddr; width; region })
  in
  (* Memo for the pool-ownership test: interpreted copies hit the same
     page store after store, and the owned-page list is rebuilt (new
     cells) whenever it changes, so physical equality detects
     staleness. *)
  let owned_memo_list = ref [] and owned_memo_page = ref (-1) and owned_memo_ok = ref false in
  Rio_cpu.Machine.set_on_store (Kernel.machine kernel) (fun ~paddr ~width ->
      match Rio_mem.Layout.kind_of_addr layout paddr with
      | Some Rio_mem.Layout.Buffer_cache -> note_wild ~paddr ~width "buffer_cache"
      | Some Rio_mem.Layout.Page_pool ->
        let page = paddr - (paddr mod Rio_mem.Phys_mem.page_size) in
        let owned = Kernel.owned_pool_pages kernel in
        let ok =
          if owned == !owned_memo_list && page = !owned_memo_page then !owned_memo_ok
          else begin
            let r = List.mem page owned in
            owned_memo_list := owned;
            owned_memo_page := page;
            owned_memo_ok := r;
            r
          end
        in
        if not ok then note_wild ~paddr ~width "page_pool"
      | Some
          ( Rio_mem.Layout.Kernel_text | Rio_mem.Layout.Kernel_heap
          | Rio_mem.Layout.Kernel_stack | Rio_mem.Layout.Page_tables
          | Rio_mem.Layout.Registry )
      | None -> ());
  (* Run until crash or watchdog. *)
  let crash = ref None in
  (try
     for _ = 1 to cfg.max_steps do
       one_step ()
     done
   with
  | Kcrash.Crashed info -> crash := Some info
  | Rio_fs.Fs_types.Fs_error msg ->
    crash :=
      Some
        { Kcrash.cause = Kcrash.Panic msg; during = "file system"; at_us = Engine.now engine }
  | Invalid_argument msg ->
    crash :=
      Some
        {
          Kcrash.cause = Kcrash.Panic ("machine check: " ^ msg);
          during = "kernel";
          at_us = Engine.now engine;
        });
  match !crash with
  | None ->
    (* The system survived its faults: the run is discarded (§3.1, about
       half the time). *)
    {
      discarded = true;
      crash = None;
      crash_message = None;
      protection_trap = false;
      corrupted = false;
      corrupt_paths = 0;
      discrepancies = [];
      checksum_detected = false;
      changing_buffers = 0;
      static_files_ok = true;
      memtest_steps = Memtest.steps_done mt;
      sim_time_us = Engine.now engine;
      registry_corrupt_slots = 0;
      wild_filecache_stores = !wild_stores + Kernel.overrun_filecache_bytes kernel;
      injected_at_us = injected_at;
      forensics = (if Trace.enabled obs then Some (Forensics.summarize obs) else None);
    }
  | Some info ->
    Kernel.crash_system kernel info;
    (* Recovery. *)
    let checksum_detected = ref false in
    let changing = ref 0 in
    let registry_corrupt = ref 0 in
    let recovered_fs =
      match system with
      | Disk_based ->
        ignore (Fsck.run ~disk:(Kernel.disk kernel));
        let kernel2 = Kernel.boot_on_disk ~engine ~costs kcfg ~disk:(Kernel.disk kernel) in
        trial_mems := Kernel.mem kernel2 :: !trial_mems;
        Kernel.mount kernel2 ~policy:Fs.Ufs_default
      | Rio_without_protection | Rio_with_protection ->
        let prot = system = Rio_with_protection in
        let fs_ref = ref None in
        let report =
          Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
            ~layout:(Kernel.layout kernel) ~engine
            ~reboot:(fun () ->
              let kernel2 =
                Kernel.boot_warm ~engine ~costs kcfg ~mem:(Kernel.mem kernel)
                  ~disk:(Kernel.disk kernel)
              in
              ignore (make_rio kernel2 ~protection:prot);
              let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
              fs_ref := Some fs2;
              fs2)
        in
        checksum_detected :=
          report.Warm_reboot.meta_verify.Warm_reboot.mismatched > 0
          || report.Warm_reboot.data_verify.Warm_reboot.mismatched > 0;
        changing :=
          report.Warm_reboot.meta_verify.Warm_reboot.changing
          + report.Warm_reboot.data_verify.Warm_reboot.changing;
        registry_corrupt := report.Warm_reboot.corrupt_registry_slots;
        (match !fs_ref with Some fs2 -> fs2 | None -> assert false)
    in
    (* memTest reconstruction and comparison (§3.2). *)
    let replayed = Memtest.replay mt_config ~steps:(Memtest.steps_done mt) in
    let exempt = Memtest.touched_by_next_step replayed in
    let discrepancies =
      match Memtest.compare_with_fs replayed recovered_fs ~exempt with
      | d -> List.map Memtest.discrepancy_to_string d
      | exception Rio_fs.Fs_types.Fs_error msg -> [ "comparison failed: " ^ msg ]
    in
    let static_ok = static_files_match recovered_fs in
    let corrupt_paths = List.length discrepancies + if static_ok then 0 else 1 in
    {
      discarded = false;
      crash = Some info;
      crash_message = Some (Kcrash.message_of info);
      protection_trap = is_protection_trap (Some info);
      (* A run is corrupt if memTest's reconstruction disagrees, the static
         twin files diverged, or the checksums caught direct corruption in
         any file-cache buffer (the only check covering the background
         Andrew files, as in §3.2). *)
      corrupted = discrepancies <> [] || (not static_ok) || !checksum_detected;
      corrupt_paths;
      discrepancies;
      checksum_detected = !checksum_detected;
      changing_buffers = !changing;
      static_files_ok = static_ok;
      memtest_steps = Memtest.steps_done mt;
      sim_time_us = Engine.now engine;
      registry_corrupt_slots = !registry_corrupt;
      wild_filecache_stores = !wild_stores + Kernel.overrun_filecache_bytes kernel;
      injected_at_us = injected_at;
      forensics = (if Trace.enabled obs then Some (Forensics.summarize obs) else None);
    }
  in
  List.iter Rio_mem.Phys_mem.retire !trial_mems;
  World.dispose w;
  outcome

let pp_outcome ppf o =
  if o.discarded then Format.fprintf ppf "discarded (no crash, %d steps)" o.memtest_steps
  else
    Format.fprintf ppf "%s%s%s"
      (match o.crash_message with Some m -> m | None -> "?")
      (if o.corrupted then Format.asprintf " | CORRUPTED %d path(s)" o.corrupt_paths else " | intact")
      (if o.protection_trap then " | protection trap" else "")
