let block_bytes = 8192
let sectors_per_block = block_bytes / 512
let ndirect = 96
let name_max = 60
let root_ino = 1

type ftype = Regular | Directory | Symlink

type fid = {
  dev : int;
  ino : int;
}

type owner =
  | Meta
  | Data of { ino : int; offset : int }

exception Fs_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Fs_error s)) fmt

let ftype_name = function
  | Regular -> "regular"
  | Directory -> "directory"
  | Symlink -> "symlink"
