(* Tests for the simulated disk: storage, timing, asynchronous queue, crash
   semantics. *)

module Disk = Rio_disk.Disk
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs

let check = Alcotest.check

let fresh () =
  let engine = Engine.create () in
  (engine, Disk.create ~engine ~costs:Costs.default ~sectors:4096 ~seed:5 ())

let sector_of_string s =
  let b = Bytes.make Disk.sector_bytes '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let test_peek_poke () =
  let _, d = fresh () in
  Disk.poke d ~sector:7 (Bytes.of_string "hello");
  let got = Disk.peek d ~sector:7 in
  check Alcotest.string "contents" "hello" (Bytes.sub_string got 0 5);
  check Alcotest.int "padded" 0 (Char.code (Bytes.get got 5))

let test_fresh_sectors_zero () =
  let _, d = fresh () in
  check Alcotest.bytes "zero filled" (Bytes.make Disk.sector_bytes '\000') (Disk.peek d ~sector:0)

let test_write_read_sync () =
  let engine, d = fresh () in
  Disk.write_sync d ~sector:10 (sector_of_string "abc");
  let t1 = Engine.now engine in
  check Alcotest.bool "sync write takes time" true (t1 > 0);
  let got = Disk.read_sync d ~sector:10 ~count:1 in
  check Alcotest.string "roundtrip" "abc" (Bytes.sub_string got 0 3);
  check Alcotest.bool "read takes time too" true (Engine.now engine > t1)

let test_sequential_cheaper () =
  let engine, d = fresh () in
  Disk.write_sync d ~sector:0 (sector_of_string "a");
  let t0 = Engine.now engine in
  Disk.write_sync d ~sector:1 (sector_of_string "b") (* head continues *);
  let sequential = Engine.now engine - t0 in
  Disk.write_sync d ~sector:2000 (sector_of_string "c") (* far seek *);
  let t1 = Engine.now engine in
  Disk.write_sync d ~sector:100 (sector_of_string "d") (* seek back *);
  let seeky = Engine.now engine - t1 in
  check Alcotest.bool "sequential is cheaper than seeking" true (sequential < seeky)

let test_rewrite_pays_rotation () =
  let engine, d = fresh () in
  Disk.write_sync d ~sector:50 (sector_of_string "a");
  let t0 = Engine.now engine in
  Disk.write_sync d ~sector:50 (sector_of_string "b") (* missed revolution *);
  let rewrite = Engine.now engine - t0 in
  check Alcotest.bool "rewrite costs a revolution" true
    (rewrite >= 2 * Costs.default.Costs.disk_rotation_us)

let test_async_commits_later () =
  let engine, d = fresh () in
  Disk.write_async d ~sector:20 (sector_of_string "later");
  check Alcotest.int "not yet committed" 0 (Char.code (Bytes.get (Disk.peek d ~sector:20) 0));
  check Alcotest.int "pending" 1 (Disk.pending_writes d);
  Disk.drain d;
  check Alcotest.string "committed after drain" "later"
    (Bytes.sub_string (Disk.peek d ~sector:20) 0 5);
  check Alcotest.int "no pending" 0 (Disk.pending_writes d);
  ignore engine

let test_async_zero_caller_time () =
  let engine, d = fresh () in
  let t0 = Engine.now engine in
  Disk.write_async d ~sector:20 (sector_of_string "x");
  check Alcotest.int "caller does not wait" t0 (Engine.now engine)

let test_crash_loses_queue () =
  let _, d = fresh () in
  Disk.poke d ~sector:30 (sector_of_string "old");
  Disk.write_async d ~sector:30 (sector_of_string "new");
  (* The request has not started (disk idle? it starts immediately at now);
     in-flight tearing applies. Crash right away. *)
  Disk.crash d;
  check Alcotest.int "queue cleared" 0 (Disk.pending_writes d);
  let got = Bytes.sub_string (Disk.peek d ~sector:30) 0 3 in
  check Alcotest.bool "data is either old or torn, not new" true (got <> "new")

let test_crash_tears_inflight () =
  let engine, d = fresh () in
  (* Start a long multi-sector write and crash midway. *)
  let big = Bytes.make (64 * Disk.sector_bytes) 'W' in
  Disk.write_async d ~sector:100 big;
  Engine.advance_by engine (Costs.default.Costs.disk_seek_us + 2_000);
  Disk.crash d;
  (* Some prefix committed; at least one sector is not 'W'-filled. *)
  let all_w = ref true in
  for s = 100 to 163 do
    if Disk.peek d ~sector:s <> Bytes.make Disk.sector_bytes 'W' then all_w := false
  done;
  check Alcotest.bool "not all sectors survived" false !all_w

let test_bounded_queue_blocks () =
  let engine, d = fresh () in
  let t0 = Engine.now engine in
  for i = 0 to 40 do
    Disk.write_async d ~sector:(i * 16) (sector_of_string "q")
  done;
  (* More than the queue depth: the caller must have waited for room. *)
  check Alcotest.bool "caller throttled" true (Engine.now engine > t0)

let test_read_after_queued_write () =
  let _, d = fresh () in
  Disk.write_async d ~sector:40 (sector_of_string "queued");
  (* A FIFO read behind the write sees its result. *)
  let got = Disk.read_sync d ~sector:40 ~count:1 in
  check Alcotest.string "read sees earlier queued write" "queued" (Bytes.sub_string got 0 6)

let test_stats () =
  let _, d = fresh () in
  Disk.write_sync d ~sector:0 (sector_of_string "a");
  ignore (Disk.read_sync d ~sector:0 ~count:1);
  let s = Disk.stats d in
  check Alcotest.int "writes" 1 s.Disk.writes;
  check Alcotest.int "reads" 1 s.Disk.reads;
  Disk.reset_stats d;
  check Alcotest.int "reset" 0 (Disk.stats d).Disk.reads

let test_out_of_range () =
  let _, d = fresh () in
  Alcotest.check_raises "read past capacity"
    (Invalid_argument "Disk: sectors [4096,+1) outside capacity 4096") (fun () ->
      ignore (Disk.read_sync d ~sector:4096 ~count:1))

let test_deterministic_tear () =
  (* Same seed, same crash point -> identical torn bytes. *)
  let run () =
    let engine = Engine.create () in
    let d = Disk.create ~engine ~costs:Costs.default ~sectors:4096 ~seed:99 () in
    Disk.write_async d ~sector:5 (sector_of_string "x");
    Engine.advance_by engine 1_000;
    Disk.crash d;
    Disk.peek d ~sector:5
  in
  check Alcotest.bytes "deterministic" (run ()) (run ())

(* ---------------- nonzero-bitmap invariant + checkpoint guards ---------------- *)

let test_invariant_after_poke () =
  let _, d = fresh () in
  Disk.poke d ~sector:3 (sector_of_string "abc");
  Disk.check_invariant d;
  (* Poking an all-zero buffer must clear the entry, not leave an all-zero
     platter entry behind the set bit. *)
  Disk.poke d ~sector:3 (Bytes.make Disk.sector_bytes '\000');
  Disk.check_invariant d;
  check Alcotest.bytes "reads back zero" (Bytes.make Disk.sector_bytes '\000')
    (Disk.peek d ~sector:3)

let test_invariant_after_crash () =
  let engine, d = fresh () in
  Disk.poke d ~sector:100 (sector_of_string "old");
  Disk.write_async d ~sector:100 (Bytes.make (8 * Disk.sector_bytes) 'W');
  Engine.advance_by engine 1_000;
  Disk.crash d;
  (* Whatever the tear left (garbage, prefix, or zeros), the bitmap must
     still match the entries exactly. *)
  Disk.check_invariant d

let test_invariant_after_zeros () =
  let _, d = fresh () in
  Disk.write_sync d ~sector:60 (sector_of_string "full");
  Disk.write_zeros_sync d ~sector:60 ~count:4;
  Disk.check_invariant d;
  check Alcotest.bytes "zeroed" (Bytes.make Disk.sector_bytes '\000') (Disk.peek d ~sector:60)

let test_invariant_after_restore () =
  let engine, d = fresh () in
  Disk.write_sync d ~sector:8 (sector_of_string "kept");
  let ck = Disk.checkpoint d in
  Disk.write_sync d ~sector:8 (sector_of_string "overwritten");
  Disk.write_sync d ~sector:9 (sector_of_string "new");
  Disk.restore d ck;
  Disk.check_invariant d;
  check Alcotest.string "restored" "kept" (Bytes.sub_string (Disk.peek d ~sector:8) 0 4);
  check Alcotest.bytes "sector 9 back to zero" (Bytes.make Disk.sector_bytes '\000')
    (Disk.peek d ~sector:9);
  ignore engine

let test_checkpoint_refuses_queued () =
  let _, d = fresh () in
  Disk.write_async d ~sector:12 (sector_of_string "queued");
  (match Disk.checkpoint d with
  | (_ : Disk.checkpoint) ->
    Alcotest.fail "checkpoint accepted a non-empty queue (the rewind would lose the write)"
  | exception Invalid_argument _ -> ());
  (* After a drain the same checkpoint succeeds. *)
  Disk.drain d;
  ignore (Disk.checkpoint d : Disk.checkpoint)

let () =
  Alcotest.run "rio_disk"
    [
      ( "storage",
        [
          Alcotest.test_case "peek/poke" `Quick test_peek_poke;
          Alcotest.test_case "fresh sectors zero" `Quick test_fresh_sectors_zero;
          Alcotest.test_case "sync roundtrip" `Quick test_write_read_sync;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
        ] );
      ( "timing",
        [
          Alcotest.test_case "sequential cheaper" `Quick test_sequential_cheaper;
          Alcotest.test_case "rewrite pays rotation" `Quick test_rewrite_pays_rotation;
          Alcotest.test_case "async is free for caller" `Quick test_async_zero_caller_time;
          Alcotest.test_case "bounded queue throttles" `Quick test_bounded_queue_blocks;
        ] );
      ( "queue+crash",
        [
          Alcotest.test_case "async commits later" `Quick test_async_commits_later;
          Alcotest.test_case "crash loses queue" `Quick test_crash_loses_queue;
          Alcotest.test_case "crash tears in-flight" `Quick test_crash_tears_inflight;
          Alcotest.test_case "read sees queued write" `Quick test_read_after_queued_write;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "deterministic tear" `Quick test_deterministic_tear;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "after poke (incl. all-zero)" `Quick test_invariant_after_poke;
          Alcotest.test_case "after crash tear" `Quick test_invariant_after_crash;
          Alcotest.test_case "after write_zeros_sync" `Quick test_invariant_after_zeros;
          Alcotest.test_case "after checkpoint/restore" `Quick test_invariant_after_restore;
          Alcotest.test_case "checkpoint refuses queued writes" `Quick
            test_checkpoint_refuses_queued;
        ] );
    ]
