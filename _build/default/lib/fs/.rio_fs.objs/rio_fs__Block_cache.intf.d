lib/fs/block_cache.mli: Format Fs_types Hooks Rio_disk Rio_mem
