(** The platter: committed sector contents, shared by every backend.

    Absent sectors read as zeros. The per-sector [nonzero] bitmap is kept
    {e exact}: a bit is set iff the store holds an entry for that sector,
    and an entry is only ever present for non-zero contents. This is what
    lets {!commit_zeros} prove whole ranges already read as zeros in
    O(count/8), and what {!check_invariant} audits. *)

type t

val sector_bytes : int
(** 512. *)

val create : sectors:int -> t

val capacity : t -> int

val entries : t -> int
(** Number of sectors currently holding an entry. *)

val peek : t -> sector:int -> bytes
(** Copy of one sector's committed contents (zeros when absent). *)

val blit_to : t -> sector:int -> bytes -> pos:int -> unit
(** Copy one sector's committed contents into [bytes] at [pos]. *)

val commit_from : t -> sector:int -> bytes -> pos:int -> unit
(** Commit one sector from the source buffer at byte offset [pos]. An
    all-zero sector drops the entry (and its bitmap bit) instead of
    storing zeros — committing never leaves a stale [nonzero] bit. *)

val commit_zeros : t -> sector:int -> count:int -> unit
(** Make [count] sectors read as zeros by dropping any entries in the
    range; sweeps the bitmap rather than probing the table per sector. *)

val check_invariant : t -> unit
(** Audit that the bitmap exactly matches the entries: every set bit has
    an entry, every entry has its bit, and no entry is all-zero.
    @raise Failure describing the first drifted sector found. *)

type state

val checkpoint : t -> state
(** Deep copy of the committed contents. *)

val restore : t -> state -> unit
