(** An assembler eDSL for {!Rio_cpu.Isa} programs.

    Kernel routines are written as OCaml functions emitting instructions
    into a buffer; labels support forward references and are patched at
    [assemble] time. The result is a binary image the kernel loader copies
    into the kernel-text region — which is precisely what the text-targeting
    faults then mutate. *)

type t
(** An assembler buffer. *)

type label

val create : unit -> t

val fresh_label : t -> string -> label
(** A new, unbound label (name used in error messages only). *)

val bind : t -> label -> unit
(** Bind a label to the current position. Binding twice is an error. *)

val here : t -> int
(** Current offset in bytes from the program origin. *)

val emit : t -> Rio_cpu.Isa.t -> unit
(** Append one instruction. Branch/jump instructions emitted this way use
    their raw numeric offsets; prefer the label-based helpers. *)

(** {1 Label-based control flow} *)

val beq : t -> int -> int -> label -> unit
val bne : t -> int -> int -> label -> unit
val blt : t -> int -> int -> label -> unit
val bge : t -> int -> int -> label -> unit
val jmp : t -> label -> unit
val jal : t -> label -> unit
(** Call: link register is r31. *)

(** {1 Pseudo-instructions} *)

val li : t -> int -> int -> unit
(** [li t rd v] materializes a constant up to 32 bits (lui/ori or addi). *)

val mv : t -> int -> int -> unit
(** Register move. *)

val ret : t -> unit
(** [jr r31]. *)

val halt : t -> unit

val nop : t -> unit

(** {1 Subroutines} *)

val global : t -> string -> unit
(** Mark the current position as a named entry point. *)

type program = {
  origin : int;  (** Virtual (mapped) load address. *)
  code : bytes;  (** Encoded instructions. *)
  symbols : (string * int) list;  (** Entry-point name -> virtual address. *)
}

val assemble : t -> origin:int -> program
(** Resolve labels and produce the image. Raises [Failure] on unbound labels
    or immediate/offset overflow. *)

val load : program -> Rio_mem.Phys_mem.t -> unit
(** Copy the image into simulated memory at its origin (identity-mapped, so
    the origin is also the physical address). *)

val symbol : program -> string -> int
(** Entry-point address. Raises [Not_found]. *)

val instruction_count : program -> int
