lib/fs/fsck.ml: Array Bytes Char Format Fs_types Hashtbl List Ondisk Option Printf Rio_disk
