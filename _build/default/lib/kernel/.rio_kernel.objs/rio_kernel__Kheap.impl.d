lib/kernel/kheap.ml: Rio_mem
