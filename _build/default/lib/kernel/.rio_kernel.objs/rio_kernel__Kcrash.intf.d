lib/kernel/kcrash.mli: Format Rio_cpu
