module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types
module Vista = Rio_txn.Vista
module Pattern = Rio_util.Pattern
module Script = Rio_workload.Script
module Gen = Rio_workload.Script.Gen
module Model = Rio_workload.Script.Gen.Model
module Task = Rio_task.Task
module Sched = Rio_task.Sched

let root = "/fuzz"
let keep_path = "/fuzz/keep"
let keep_seed = 0xbeef
let keep_len = 2000
let ledger_path = "/fuzz/ledger"
let ledger_size = 1024
let ledger_setup_seed = 0x1ed9e5

let gen_spec = Gen.default_spec ~root

let ledger_pattern seed = Pattern.fill ~seed ~len:ledger_size

type world = { fs : Fs.t; store : Vista.t }

let setup fs =
  Fs.mkdir fs root;
  Fs.write_file fs keep_path (Pattern.fill ~seed:keep_seed ~len:keep_len);
  let store = Vista.create fs ~path:ledger_path ~size:ledger_size in
  let txn = Vista.begin_txn store in
  Vista.write txn ~offset:0 (ledger_pattern ledger_setup_seed);
  Vista.commit txn;
  { fs; store }

(* Write [len] pattern bytes of stream [seed] through [fd], in the same
   chunk windows real programs use, with the stream's origin at file
   position [base] (so appends/overwrites continue the pattern from 0). *)
let write_stream fs fd ~base ~seed ~len =
  let rec go off =
    if off < len then begin
      let n = min Script.chunk_size (len - off) in
      Fs.pwrite fs fd ~offset:(base + off) (Pattern.fill_at ~seed ~offset:off ~len:n);
      go (off + n)
    end
  in
  go 0

let exec w (op : Gen.op) =
  match op with
  | Creat { path; seed; len } ->
    let fd = Fs.create w.fs path in
    write_stream w.fs fd ~base:0 ~seed ~len;
    Fs.close w.fs fd
  | Append { path; seed; len } ->
    let fd = Fs.open_file w.fs path in
    let base = Fs.fd_size w.fs fd in
    write_stream w.fs fd ~base ~seed ~len;
    Fs.close w.fs fd
  | Overwrite { path; offset; seed; len } ->
    let fd = Fs.open_file w.fs path in
    write_stream w.fs fd ~base:offset ~seed ~len;
    Fs.close w.fs fd
  | Mkdir path -> Fs.mkdir w.fs path
  | Unlink path -> Fs.unlink w.fs path
  | Rename { src; dst } -> Fs.rename w.fs src dst
  | Vista_txn { seed } ->
    let txn = Vista.begin_txn w.store in
    let half = ledger_size / 2 in
    Vista.write txn ~offset:0 (Pattern.fill_at ~seed ~offset:0 ~len:half);
    Vista.write txn ~offset:half (Pattern.fill_at ~seed ~offset:half ~len:(ledger_size - half));
    Vista.commit txn
  | Sync -> Fs.sync w.fs

(* ---------------- the multi-task world ---------------- *)

(* Each task owns a disjoint subtree /fuzz/t<i> with its own Vista
   ledger, so every task's expected state stays exact under any
   interleaving; what the tasks share — and what the interleaving
   fuzzer stresses — is the machinery underneath the namespace: the
   block caches, allocation bitmaps, shared inode sectors, the Rio
   registry, and the single shadow page. *)

let task_root i = Printf.sprintf "%s/t%d" root i
let task_ledger i = task_root i ^ "/ledger"
let task_gen_spec i = Gen.default_spec ~root:(task_root i)

type tworld = { tfs : Fs.t; stores : Vista.t array }

let setup_tasks fs ~tasks =
  Fs.mkdir fs root;
  Fs.write_file fs keep_path (Pattern.fill ~seed:keep_seed ~len:keep_len);
  let stores =
    Array.init tasks (fun i ->
        Fs.mkdir fs (task_root i);
        let store = Vista.create fs ~path:(task_ledger i) ~size:ledger_size in
        let txn = Vista.begin_txn store in
        Vista.write txn ~offset:0 (ledger_pattern ledger_setup_seed);
        Vista.commit txn;
        store)
  in
  { tfs = fs; stores }

(* One op, issued as [task] through the task-scoped syscall entry:
   paths are made cwd-relative (the fiber chdirs to its subtree), fds
   go through the task's local descriptor table, and — when [locking]
   — mutating calls hold the ownership lock. A Vista transaction holds
   it across the whole transaction: the undo-log protocol is one
   logical metadata update. *)
let exec_task sched ~locking ~task tw ~store (op : Gen.op) =
  let fs = tw.tfs in
  let sys call = Sched.syscall sched ~locking task fs call in
  let rel p =
    let cw = Task.cwd task ^ "/" in
    let n = String.length cw in
    if String.length p > n && String.sub p 0 n = cw then String.sub p n (String.length p - n)
    else p
  in
  let write_stream_sys gfd ~base ~seed ~len =
    let rec go off =
      if off < len then begin
        let n = min Script.chunk_size (len - off) in
        ignore
          (sys
             (Fs.Syscall.Pwrite
                { fd = gfd; offset = base + off; data = Pattern.fill_at ~seed ~offset:off ~len:n }));
        go (off + n)
      end
    in
    go 0
  in
  match op with
  | Creat { path; seed; len } ->
    let lfd = Task.install_fd task (Fs.Syscall.fd_exn (sys (Fs.Syscall.Creat (rel path)))) in
    let gfd = Task.global_fd task lfd in
    write_stream_sys gfd ~base:0 ~seed ~len;
    ignore (sys (Fs.Syscall.Close gfd));
    Task.release_fd task lfd
  | Append { path; seed; len } ->
    let lfd = Task.install_fd task (Fs.Syscall.fd_exn (sys (Fs.Syscall.Open (rel path)))) in
    let gfd = Task.global_fd task lfd in
    let base = Fs.fd_size fs gfd in
    write_stream_sys gfd ~base ~seed ~len;
    ignore (sys (Fs.Syscall.Close gfd));
    Task.release_fd task lfd
  | Overwrite { path; offset; seed; len } ->
    let lfd = Task.install_fd task (Fs.Syscall.fd_exn (sys (Fs.Syscall.Open (rel path)))) in
    let gfd = Task.global_fd task lfd in
    write_stream_sys gfd ~base:offset ~seed ~len;
    ignore (sys (Fs.Syscall.Close gfd));
    Task.release_fd task lfd
  | Mkdir path -> ignore (sys (Fs.Syscall.Mkdir (rel path)))
  | Unlink path -> ignore (sys (Fs.Syscall.Unlink (rel path)))
  | Rename { src; dst } -> ignore (sys (Fs.Syscall.Rename { src = rel src; dst = rel dst }))
  | Vista_txn { seed } ->
    let body () =
      let txn = Vista.begin_txn store in
      let half = ledger_size / 2 in
      Vista.write txn ~offset:0 (Pattern.fill_at ~seed ~offset:0 ~len:half);
      Vista.write txn ~offset:half
        (Pattern.fill_at ~seed ~offset:half ~len:(ledger_size - half));
      Vista.commit txn
    in
    if locking then Sched.with_lock sched ~key:Sched.fs_lock body else body ()
  | Sync -> ignore (sys Fs.Syscall.Sync)

(* ---------------- post-crash contracts ---------------- *)

(* What recovery owes us, per op state:
   - ops before the in-flight one: their whole effect, exactly;
   - the in-flight op: atomic-or-absent for metadata, prefix-for-data
     (unwritten tail bytes may read back as zero, never garbage);
   - everything untouched (the keep file, other files, directories): exact.
   The Vista store must hold exactly the last committed transaction —
   old-or-new when the crash interrupted one. *)

let problem fmt = Printf.ksprintf (fun s -> s) fmt

let check_exact fs ~path ~expect acc =
  if not (Fs.exists fs path) then problem "%s vanished" path :: acc
  else
    let b = Fs.read_file fs path in
    if Bytes.equal b expect then acc
    else if Bytes.length b <> Bytes.length expect then
      problem "%s has size %d, expected %d" path (Bytes.length b) (Bytes.length expect) :: acc
    else problem "%s contents corrupted" path :: acc

(* In-flight data write into [\[base, base+len)] over [old] toward
   [expect]: prefix of the file must be durable, bytes inside the window
   must each be old, new, or zero (an open store window the crash caught
   mid-copy), nothing outside the window may move. *)
let check_inflight_write fs ~path ~old ~expect acc =
  if not (Fs.exists fs path) then problem "%s vanished mid-write" path :: acc
  else begin
    let b = Fs.read_file fs path in
    let blen = Bytes.length b in
    if blen < Bytes.length old then
      problem "%s shrank mid-write: %d of %d bytes" path blen (Bytes.length old) :: acc
    else if blen > Bytes.length expect then
      problem "%s has impossible size %d (writing toward %d)" path blen (Bytes.length expect)
      :: acc
    else begin
      let bad = ref None in
      for i = blen - 1 downto 0 do
        let got = Bytes.get b i in
        let was = if i < Bytes.length old then Some (Bytes.get old i) else None in
        let target = Bytes.get expect i in
        let ok =
          got = target || Some got = was || (was = None && got = '\000')
        in
        if not ok then bad := Some i
      done;
      match !bad with
      | Some i -> problem "%s byte %d is neither old nor new nor zero" path i :: acc
      | None -> acc
    end
  end

let check_dir fs ~path acc =
  match Fs.readdir fs path with
  | _ -> acc
  | exception Fs_types.Fs_error m -> problem "directory %s unreadable: %s" path m :: acc

let touched (op : Gen.op) =
  match op with
  | Creat { path; _ } | Append { path; _ } | Overwrite { path; _ } | Unlink path -> [ path ]
  | Rename { src; dst } -> [ src; dst ]
  | Mkdir _ | Vista_txn _ | Sync -> []

let check_vista fs ~ledger ~in_flight_seed ~committed acc =
  if not (Fs.exists fs ledger) then problem "vista store %s vanished" ledger :: acc
  else begin
    let rolled_back = Vista.recover fs ~path:ledger in
    ignore (rolled_back : int);
    let store = Vista.open_existing fs ~path:ledger in
    let b = Vista.read store ~offset:0 ~len:ledger_size in
    let states =
      committed :: (match in_flight_seed with Some s -> [ s ] | None -> [])
    in
    let acc =
      if List.exists (fun s -> Bytes.equal b (ledger_pattern s)) states then acc
      else
        problem "vista store is neither the last committed state nor the in-flight one" :: acc
    in
    let undo = ledger ^ ".undo" in
    if Fs.exists fs undo && (Fs.stat fs undo).Fs.st_size <> 0 then
      problem "vista undo log not empty after recovery" :: acc
    else acc
  end

(* How far one program got when the crash hit. *)
type progress =
  | Completed of int  (** the first [n] ops ran to completion; the rest never started *)
  | Interrupted of int  (** ops [0..k-1] completed; op [k] was in flight *)

(* Audit one program's subtree against its model. Shared by the
   single-task [check] and the per-task legs of [check_tasks]; problems
   accumulate onto [acc] (reversed, like every checker here). *)
let check_core fs ~root:rt ~ledger ~ops ~progress acc =
  let arr = Array.of_list ops in
  let ncompleted, inflight =
    match progress with
    | Completed n -> (n, None)
    | Interrupted k -> (k, Some arr.(k))
  in
  let before = Model.create ~root:rt in
  for i = 0 to ncompleted - 1 do
    Model.apply before arr.(i)
  done;
  let after = Model.copy before in
  Option.iter (Model.apply after) inflight;
  let hot = match inflight with Some op -> touched op | None -> [] in
  (* Directories created by completed ops stay listable; an in-flight
     mkdir is atomic: absent, or present and listable. *)
  let acc = List.fold_left (fun acc d -> check_dir fs ~path:d acc) acc before.Model.dirs in
  let acc =
    match inflight with
    | Some (Gen.Mkdir d) when Fs.exists fs d -> check_dir fs ~path:d acc
    | _ -> acc
  in
  (* Files owned by completed ops and untouched by the in-flight one. *)
  let acc =
    List.fold_left
      (fun acc (path, expect) ->
        if List.mem path hot then acc else check_exact fs ~path ~expect acc)
      acc
      (Model.sorted_files before)
  in
  (* The in-flight op's own contract. *)
  let acc =
    match inflight with
    | None -> acc
    | Some op -> (
      match op with
      | Gen.Creat { path; _ } ->
        if not (Fs.exists fs path) then acc
        else
          check_inflight_write fs ~path ~old:Bytes.empty
            ~expect:(Hashtbl.find after.Model.files path) acc
      | Gen.Append { path; _ } | Gen.Overwrite { path; _ } ->
        check_inflight_write fs ~path
          ~old:(Hashtbl.find before.Model.files path)
          ~expect:(Hashtbl.find after.Model.files path)
          acc
      | Gen.Unlink path ->
        if not (Fs.exists fs path) then acc
        else check_exact fs ~path ~expect:(Hashtbl.find before.Model.files path) acc
      | Gen.Rename { src; dst } ->
        let expect = Hashtbl.find before.Model.files src in
        let s = Fs.exists fs src and d = Fs.exists fs dst in
        if not (s || d) then problem "rename lost %s: neither name exists" src :: acc
        else begin
          (* Cross-directory renames legitimately pass through a both-names
             state (insert before remove); whichever name exists must carry
             the full old contents. *)
          let acc = if s then check_exact fs ~path:src ~expect acc else acc in
          if d then check_exact fs ~path:dst ~expect acc else acc
        end
      | Gen.Mkdir _ | Gen.Vista_txn _ | Gen.Sync -> acc)
  in
  let in_flight_seed =
    match inflight with Some (Gen.Vista_txn { seed }) -> Some seed | _ -> None
  in
  let committed = Option.value before.Model.vista ~default:ledger_setup_seed in
  check_vista fs ~ledger ~in_flight_seed ~committed acc

(* Audit the recovered file system against the model. [ops] is the whole
   program; [in_flight] the index of the op the crash interrupted. *)
let check fs ~ops ~in_flight =
  (* Bystander planted before the program ran: must never move. *)
  let acc =
    check_exact fs ~path:keep_path ~expect:(Pattern.fill ~seed:keep_seed ~len:keep_len) []
  in
  List.rev (check_core fs ~root ~ledger:ledger_path ~ops ~progress:(Interrupted in_flight) acc)

(* The cold-recovery contract: the crash is recovered WITHOUT a warm
   reboot — the memory image is lost, fsck repairs the committed disk
   state, and only what a durability barrier pushed out is owed. Find
   the last completed Sync; files fully established before it and
   untouched by any later (completed or in-flight) op must read back
   with their exact contents. Leniency everywhere the disk's tear model
   can legitimately bite: a torn metadata sector can make fsck free an
   inode or truncate a directory, so a missing file or a size mismatch
   is forgiven. What is NEVER forgiven is a size-correct file with wrong
   bytes — metadata durable, data not — which is exactly how a
   write-behind pipeline that reorders around the sync barrier fails. *)
let check_cold fs ~ops ~in_flight =
  let arr = Array.of_list ops in
  let last_sync = ref (-1) in
  for i = 0 to min (in_flight - 1) (Array.length arr - 1) do
    if arr.(i) = Gen.Sync then last_sync := i
  done;
  if !last_sync < 0 then []
  else begin
    let model = Model.create ~root in
    for i = 0 to !last_sync - 1 do
      Model.apply model arr.(i)
    done;
    let dirty = Hashtbl.create 16 in
    for i = !last_sync + 1 to min in_flight (Array.length arr - 1) do
      List.iter (fun p -> Hashtbl.replace dirty p ()) (touched arr.(i))
    done;
    let audit acc path expect =
      if Hashtbl.mem dirty path then acc
      else
        match Fs.read_file fs path with
        | b ->
          if Bytes.length b <> Bytes.length expect || Bytes.equal b expect then acc
          else problem "%s: synced contents corrupted after cold recovery" path :: acc
        | exception Fs_types.Fs_error _ -> acc
    in
    (* The bystander predates every op and no generated op touches it, so
       a completed sync owes its bytes too — and its setup-time blocks are
       exactly what an out-of-order pipeline tends to hold back (they are
       the oldest staged segments). *)
    let acc = audit [] keep_path (Pattern.fill ~seed:keep_seed ~len:keep_len) in
    List.fold_left
      (fun acc (path, expect) -> audit acc path expect)
      acc (Model.sorted_files model)
    |> List.rev
  end

(* The multi-task audit: the shared bystander once, then each task's
   subtree against its own model and progress. Problems are tagged with
   the owning task ("t0: ...") so a report attributes every violation. *)
let check_tasks fs ~progs ~progress =
  let acc =
    ref
      (check_exact fs ~path:keep_path ~expect:(Pattern.fill ~seed:keep_seed ~len:keep_len) [])
  in
  Array.iteri
    (fun i ops ->
      let sub =
        check_core fs ~root:(task_root i) ~ledger:(task_ledger i) ~ops ~progress:progress.(i) []
      in
      let tag = Printf.sprintf "t%d: " i in
      List.iter (fun p -> acc := (tag ^ p) :: !acc) (List.rev sub))
    progs;
  List.rev !acc
