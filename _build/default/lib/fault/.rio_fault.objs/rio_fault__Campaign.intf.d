lib/fault/campaign.mli: Fault_type Format Rio_kernel
