lib/cpu/isa.ml: Format Printf
