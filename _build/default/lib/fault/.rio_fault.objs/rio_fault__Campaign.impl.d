lib/fault/campaign.ml: Bytes Format Injector List Printf Rio_core Rio_cpu Rio_fs Rio_kernel Rio_mem Rio_sim Rio_util Rio_workload
