examples/database_commit.mli:
