test/test_fs.ml: Alcotest Array Bytes Char List Printf QCheck QCheck_alcotest Rio_disk Rio_fs Rio_mem Rio_sim Rio_util Rio_workload String
