module Phys_mem = Rio_mem.Phys_mem
module Trace = Rio_obs.Trace

type t = {
  page_table : Page_table.t;
  tlb : Tlb.t;
  obs : Trace.t;
  c_traps : Trace.counter;
  mutable kseg_through_tlb : bool;
  mutable protection_faults : int;
  mutable unmapped_faults : int;
}

type access = Read | Write | Exec

type fault =
  | Unmapped of int
  | Write_protected of int

type result = Ok of Phys_mem.paddr | Fault of fault

let kseg_base = 1 lsl 40

let kseg_addr paddr = kseg_base + paddr

let is_kseg vaddr = vaddr >= kseg_base

let create ?(obs = Trace.null) ~mem_pages ~tlb_entries () =
  {
    page_table = Page_table.create ~pages:mem_pages;
    tlb = Tlb.create ~entries:tlb_entries;
    obs;
    c_traps = Trace.counter obs "vm.protection_traps";
    kseg_through_tlb = false;
    protection_faults = 0;
    unmapped_faults = 0;
  }

let page_table t = t.page_table
let tlb t = t.tlb
let kseg_through_tlb t = t.kseg_through_tlb
let set_kseg_through_tlb t b = t.kseg_through_tlb <- b

let note_unmapped t = t.unmapped_faults <- t.unmapped_faults + 1

let note_protected t vaddr =
  t.protection_faults <- t.protection_faults + 1;
  if Trace.enabled t.obs then begin
    Trace.incr t.c_traps;
    (* In the mapped (and KSEG-through-TLB) identity layout, the faulting
       virtual address is the physical address. *)
    Trace.emit t.obs Trace.Vm (Trace.Protection_trap { paddr = vaddr })
  end

(* The allocation-free translation core used by the CPU's inner loop:
   a non-negative return is the physical address; the negative codes name
   the fault. The fault's payload address is reconstructed by the caller
   (or by the boxing [translate] wrapper below) from the input [vaddr],
   which is exactly what the boxed constructors carried. *)

let code_unmapped = -1
let code_write_protected = -2

let translate_mapped_code t ~vaddr ~access =
  if vaddr < 0 then begin
    note_unmapped t;
    code_unmapped
  end
  else begin
    let vpn = vaddr / Phys_mem.page_size in
    let entries = Page_table.entries t.page_table in
    if vpn >= Array.length entries then begin
      note_unmapped t;
      code_unmapped
    end
    else begin
      let pte = Array.unsafe_get entries vpn in
      if not pte.Pte.valid then begin
        note_unmapped t;
        code_unmapped
      end
      else begin
        Tlb.access t.tlb ~vpn pte;
        match access with
        | Write when not pte.Pte.writable ->
          note_protected t vaddr;
          code_write_protected
        | Read | Write | Exec ->
          Phys_mem.page_base pte.Pte.pfn + (vaddr mod Phys_mem.page_size)
      end
    end
  end

let translate_code t ~vaddr ~access =
  if is_kseg vaddr then begin
    let paddr = vaddr - kseg_base in
    if t.kseg_through_tlb then translate_mapped_code t ~vaddr:paddr ~access
    else if paddr / Phys_mem.page_size < Page_table.pages t.page_table then paddr
    else begin
      note_unmapped t;
      code_unmapped
    end
  end
  else translate_mapped_code t ~vaddr ~access

(* The fault payload [translate] would have boxed for [vaddr]: mapped
   accesses fault on the virtual address itself; KSEG accesses routed
   through the TLB fault on the stripped (physical) address, while
   out-of-range KSEG bypasses fault on the full KSEG address. *)
let fault_vaddr t vaddr =
  if is_kseg vaddr && t.kseg_through_tlb then vaddr - kseg_base else vaddr

let translate t ~vaddr ~access =
  let code = translate_code t ~vaddr ~access in
  if code >= 0 then Ok code
  else if code = code_write_protected then Fault (Write_protected (fault_vaddr t vaddr))
  else Fault (Unmapped (fault_vaddr t vaddr))

let protection_faults t = t.protection_faults
let unmapped_faults t = t.unmapped_faults

let reset_stats t =
  t.protection_faults <- 0;
  t.unmapped_faults <- 0;
  Tlb.reset_stats t.tlb

(* ---- world-template rewind ---- *)

type checkpoint = {
  ck_valid : Bytes.t; (* one byte per pte *)
  ck_writable : Bytes.t;
  ck_tlb : Tlb.checkpoint;
  ck_kseg : bool;
  ck_prot_faults : int;
  ck_unmapped_faults : int;
}

let checkpoint t =
  let entries = Page_table.entries t.page_table in
  let n = Array.length entries in
  let ck_valid = Bytes.create n and ck_writable = Bytes.create n in
  Array.iteri
    (fun i (p : Pte.t) ->
      Bytes.unsafe_set ck_valid i (if p.Pte.valid then '\001' else '\000');
      Bytes.unsafe_set ck_writable i (if p.Pte.writable then '\001' else '\000'))
    entries;
  { ck_valid; ck_writable; ck_tlb = Tlb.checkpoint t.tlb; ck_kseg = t.kseg_through_tlb;
    ck_prot_faults = t.protection_faults; ck_unmapped_faults = t.unmapped_faults }

let restore t ck =
  let entries = Page_table.entries t.page_table in
  Array.iteri
    (fun i (p : Pte.t) ->
      p.Pte.valid <- Bytes.unsafe_get ck.ck_valid i <> '\000';
      p.Pte.writable <- Bytes.unsafe_get ck.ck_writable i <> '\000')
    entries;
  Tlb.restore t.tlb ck.ck_tlb;
  t.kseg_through_tlb <- ck.ck_kseg;
  t.protection_faults <- ck.ck_prot_faults;
  t.unmapped_faults <- ck.ck_unmapped_faults

let pp_fault ppf = function
  | Unmapped a -> Format.fprintf ppf "unmapped address %#x" a
  | Write_protected a -> Format.fprintf ppf "write to protected address %#x" a
