(** Trace exporters.

    Two formats, both deterministic (byte-identical for the same trial
    seed at any [-j N]):

    - {b JSONL}: one JSON object per line — a header, one line per
      retained event, a final metrics line. Greppable per-trial artifact.
    - {b Chrome [trace_event]}: a JSON object loadable in Perfetto /
      [chrome://tracing], with simulated microseconds as the timeline and
      one named "thread" per subsystem. *)

val event_json : Trace.event -> Rio_util.Json.t
(** The JSONL representation of one event. *)

val jsonl_lines : ?header:Rio_util.Json.t -> Trace.t -> string list
(** Header line (if given), then events oldest-first, then a
    [{"metrics": ...}] line and a [{"recorder": ...}] line with
    total/dropped counts. *)

val write_jsonl : file:string -> ?header:Rio_util.Json.t -> Trace.t -> unit

val chrome_json : ?meta:(string * Rio_util.Json.t) list -> Trace.t -> Rio_util.Json.t
(** The full [{"traceEvents": [...], ...}] document. Spans become ["X"]
    (complete) events at their own start time, instants become ["i"],
    the clock sample becomes a ["C"] counter track, and each subsystem
    gets a thread-name metadata record. [meta] fields are appended to the
    top-level object (seed, system, fault, ...). *)

val write_chrome :
  file:string -> ?meta:(string * Rio_util.Json.t) list -> Trace.t -> unit
