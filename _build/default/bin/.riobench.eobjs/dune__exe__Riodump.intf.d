bin/riodump.mli:
