(* Tests for the VM layer: PTEs, page table, TLB model, MMU with KSEG
   semantics and write protection — the heart of Rio's §2.1. *)

module Pte = Rio_vm.Pte
module Page_table = Rio_vm.Page_table
module Tlb = Rio_vm.Tlb
module Mmu = Rio_vm.Mmu
module Phys_mem = Rio_mem.Phys_mem

let check = Alcotest.check

let fresh_mmu () = Mmu.create ~mem_pages:64 ~tlb_entries:16 ()

(* ---------------- page table ---------------- *)

let test_page_table_defaults () =
  let pt = Page_table.create ~pages:8 in
  check Alcotest.int "pages" 8 (Page_table.pages pt);
  check Alcotest.bool "writable by default" true (Page_table.is_writable pt ~vpn:3);
  check Alcotest.int "nothing protected" 0 (Page_table.protected_count pt)

let test_page_table_protection () =
  let pt = Page_table.create ~pages:8 in
  Page_table.set_writable pt ~vpn:2 false;
  check Alcotest.bool "read-only" false (Page_table.is_writable pt ~vpn:2);
  check Alcotest.int "one protected" 1 (Page_table.protected_count pt);
  Page_table.set_valid pt ~vpn:3 false;
  check Alcotest.bool "invalid is not writable" false (Page_table.is_writable pt ~vpn:3)

let test_page_table_out_of_range () =
  let pt = Page_table.create ~pages:4 in
  check Alcotest.bool "lookup out of range" true (Page_table.lookup pt ~vpn:99 = None);
  check Alcotest.bool "negative vpn" true (Page_table.lookup pt ~vpn:(-1) = None)

(* ---------------- tlb ---------------- *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~entries:4 in
  let pte = Pte.make ~pfn:0 ~valid:true ~writable:true in
  Tlb.access tlb ~vpn:1 pte;
  Tlb.access tlb ~vpn:1 pte;
  check Alcotest.int "one miss" 1 (Tlb.misses tlb);
  check Alcotest.int "one hit" 1 (Tlb.hits tlb)

let test_tlb_conflict () =
  let tlb = Tlb.create ~entries:4 in
  let pte = Pte.make ~pfn:0 ~valid:true ~writable:true in
  Tlb.access tlb ~vpn:1 pte;
  Tlb.access tlb ~vpn:5 pte (* same slot: 5 mod 4 = 1 *);
  Tlb.access tlb ~vpn:1 pte;
  check Alcotest.int "conflict evicts" 3 (Tlb.misses tlb)

let test_tlb_shootdown () =
  let tlb = Tlb.create ~entries:4 in
  let pte = Pte.make ~pfn:0 ~valid:true ~writable:true in
  Tlb.access tlb ~vpn:2 pte;
  Tlb.shootdown tlb ~vpn:2;
  check Alcotest.int "shootdown counted" 1 (Tlb.shootdowns tlb);
  Tlb.access tlb ~vpn:2 pte;
  check Alcotest.int "re-fill is a miss" 2 (Tlb.misses tlb)

let test_tlb_bad_size () =
  Alcotest.check_raises "power of two required"
    (Invalid_argument "Tlb.create: entries must be a positive power of two") (fun () ->
      ignore (Tlb.create ~entries:3))

(* ---------------- mmu ---------------- *)

let paddr_of = function
  | Mmu.Ok p -> p
  | Mmu.Fault f -> Alcotest.failf "unexpected fault: %a" Mmu.pp_fault f

let test_mapped_identity () =
  let mmu = fresh_mmu () in
  let va = (3 * Phys_mem.page_size) + 100 in
  check Alcotest.int "identity map" va (paddr_of (Mmu.translate mmu ~vaddr:va ~access:Mmu.Read))

let test_unmapped_fault () =
  let mmu = fresh_mmu () in
  let va = 1000 * Phys_mem.page_size in
  (match Mmu.translate mmu ~vaddr:va ~access:Mmu.Read with
  | Mmu.Fault (Mmu.Unmapped a) -> check Alcotest.int "fault address" va a
  | Mmu.Fault (Mmu.Write_protected _) | Mmu.Ok _ -> Alcotest.fail "expected unmapped fault");
  check Alcotest.int "counted" 1 (Mmu.unmapped_faults mmu)

let test_invalid_page_fault () =
  let mmu = fresh_mmu () in
  Page_table.set_valid (Mmu.page_table mmu) ~vpn:2 false;
  match Mmu.translate mmu ~vaddr:(2 * Phys_mem.page_size) ~access:Mmu.Read with
  | Mmu.Fault (Mmu.Unmapped _) -> ()
  | Mmu.Fault (Mmu.Write_protected _) | Mmu.Ok _ -> Alcotest.fail "expected unmapped fault"

let test_write_protection () =
  let mmu = fresh_mmu () in
  Page_table.set_writable (Mmu.page_table mmu) ~vpn:5 false;
  let va = 5 * Phys_mem.page_size in
  check Alcotest.int "reads still fine" va (paddr_of (Mmu.translate mmu ~vaddr:va ~access:Mmu.Read));
  (match Mmu.translate mmu ~vaddr:va ~access:Mmu.Write with
  | Mmu.Fault (Mmu.Write_protected a) -> check Alcotest.int "trap address" va a
  | Mmu.Fault (Mmu.Unmapped _) | Mmu.Ok _ -> Alcotest.fail "expected protection trap");
  check Alcotest.int "counted" 1 (Mmu.protection_faults mmu)

let test_kseg_bypass () =
  (* The danger the paper describes: with the ABOX bit clear, KSEG stores
     ignore page protection entirely. *)
  let mmu = fresh_mmu () in
  Page_table.set_writable (Mmu.page_table mmu) ~vpn:5 false;
  let pa = 5 * Phys_mem.page_size in
  match Mmu.translate mmu ~vaddr:(Mmu.kseg_addr pa) ~access:Mmu.Write with
  | Mmu.Ok p -> check Alcotest.int "bypasses protection" pa p
  | Mmu.Fault _ -> Alcotest.fail "KSEG must bypass when not mapped through TLB"

let test_kseg_through_tlb () =
  (* Rio's fix: the ABOX bit makes KSEG respect the PTEs. *)
  let mmu = fresh_mmu () in
  Mmu.set_kseg_through_tlb mmu true;
  Page_table.set_writable (Mmu.page_table mmu) ~vpn:5 false;
  let pa = 5 * Phys_mem.page_size in
  (match Mmu.translate mmu ~vaddr:(Mmu.kseg_addr pa) ~access:Mmu.Write with
  | Mmu.Fault (Mmu.Write_protected _) -> ()
  | Mmu.Fault (Mmu.Unmapped _) | Mmu.Ok _ -> Alcotest.fail "expected protection trap");
  (* Reads still work. *)
  match Mmu.translate mmu ~vaddr:(Mmu.kseg_addr pa) ~access:Mmu.Read with
  | Mmu.Ok p -> check Alcotest.int "read maps" pa p
  | Mmu.Fault _ -> Alcotest.fail "reads must succeed"

let test_kseg_out_of_range () =
  let mmu = fresh_mmu () in
  match Mmu.translate mmu ~vaddr:(Mmu.kseg_addr (10_000 * Phys_mem.page_size)) ~access:Mmu.Read with
  | Mmu.Fault (Mmu.Unmapped _) -> ()
  | Mmu.Fault (Mmu.Write_protected _) | Mmu.Ok _ -> Alcotest.fail "expected unmapped"

let test_negative_vaddr () =
  let mmu = fresh_mmu () in
  match Mmu.translate mmu ~vaddr:(-8) ~access:Mmu.Read with
  | Mmu.Fault (Mmu.Unmapped _) -> ()
  | Mmu.Fault (Mmu.Write_protected _) | Mmu.Ok _ -> Alcotest.fail "expected unmapped"

let test_is_kseg () =
  check Alcotest.bool "kseg addr" true (Mmu.is_kseg (Mmu.kseg_addr 0));
  check Alcotest.bool "mapped addr" false (Mmu.is_kseg 4096)

let test_reset_stats () =
  let mmu = fresh_mmu () in
  ignore (Mmu.translate mmu ~vaddr:(1000 * Phys_mem.page_size) ~access:Mmu.Read);
  Mmu.reset_stats mmu;
  check Alcotest.int "cleared" 0 (Mmu.unmapped_faults mmu)

let () =
  Alcotest.run "rio_vm"
    [
      ( "page_table",
        [
          Alcotest.test_case "defaults" `Quick test_page_table_defaults;
          Alcotest.test_case "protection bits" `Quick test_page_table_protection;
          Alcotest.test_case "out of range" `Quick test_page_table_out_of_range;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "conflict" `Quick test_tlb_conflict;
          Alcotest.test_case "shootdown" `Quick test_tlb_shootdown;
          Alcotest.test_case "bad size" `Quick test_tlb_bad_size;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "identity mapping" `Quick test_mapped_identity;
          Alcotest.test_case "unmapped fault" `Quick test_unmapped_fault;
          Alcotest.test_case "invalid page" `Quick test_invalid_page_fault;
          Alcotest.test_case "write protection" `Quick test_write_protection;
          Alcotest.test_case "KSEG bypasses protection (ABOX off)" `Quick test_kseg_bypass;
          Alcotest.test_case "KSEG through TLB (ABOX on)" `Quick test_kseg_through_tlb;
          Alcotest.test_case "KSEG out of range" `Quick test_kseg_out_of_range;
          Alcotest.test_case "negative vaddr" `Quick test_negative_vaddr;
          Alcotest.test_case "is_kseg" `Quick test_is_kseg;
          Alcotest.test_case "reset stats" `Quick test_reset_stats;
        ] );
    ]
