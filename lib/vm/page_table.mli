(** The kernel's page table.

    The simulated kernel runs identity-mapped: virtual page [n] maps to
    physical frame [n] when valid. What matters for Rio is not fancy address
    spaces but the per-page [valid] and [writable] bits — they are what turn
    wild stores into traps (paper §2.1). *)

type t

val create : pages:int -> t
(** All entries valid and writable initially (a permissive monolithic
    kernel), identity-mapped. *)

val pages : t -> int

val entries : t -> Pte.t array
(** The backing entry array, indexed by vpn — exposed so the translation
    fast path can skip the option boxing of {!lookup}. Do not resize. *)

val lookup : t -> vpn:int -> Pte.t option
(** [None] when [vpn] is outside the table — an illegal address. *)

val set_valid : t -> vpn:int -> bool -> unit
val set_writable : t -> vpn:int -> bool -> unit

val is_writable : t -> vpn:int -> bool
(** [false] also when invalid or out of range. *)

val protected_count : t -> int
(** Number of valid, non-writable entries (for tests and reports). *)
