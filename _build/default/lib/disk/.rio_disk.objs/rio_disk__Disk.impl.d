lib/disk/disk.ml: Bytes Format Hashtbl Lazy List Printf Rio_sim Rio_util
