test/test_harness.ml: Alcotest Float List Rio_fault Rio_harness Rio_util String
