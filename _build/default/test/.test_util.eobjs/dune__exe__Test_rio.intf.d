test/test_rio.mli:
