lib/vm/page_table.mli: Pte
