(* Tests for the Rio core: registry, protection, checksums, shadow paging,
   and the warm reboot. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Layout = Rio_mem.Layout
module Phys_mem = Rio_mem.Phys_mem
module Page_alloc = Rio_mem.Page_alloc
module Mmu = Rio_vm.Mmu
module Machine = Rio_cpu.Machine
module Isa = Rio_cpu.Isa
module Fs = Rio_fs.Fs
module Registry = Rio_core.Registry
module Protect = Rio_core.Protect
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Pattern = Rio_util.Pattern

let check = Alcotest.check

(* A fully wired Rio system on the small machine. *)
let rio_system ?(seed = 1) ~protection () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  let rio =
    Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
      ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
      ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ()
  in
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  (engine, kernel, rio, fs)

(* ---------------- registry ---------------- *)

let registry_fixture () =
  let mem = Phys_mem.create ~bytes_total:(4 * 1024 * 1024) in
  let layout = Layout.create Layout.default_config in
  (mem, layout, Registry.create ~mem ~region:(Layout.region layout Layout.Registry))

let test_registry_register_find () =
  let _, _, reg = registry_fixture () in
  Registry.register reg ~home_paddr:8192 ~dev:1 ~ino:5 ~offset:0 ~size:8192 ~blkno:10
    ~kind:Registry.Data_buffer ~checksum:0xABCD;
  (match Registry.find reg ~home_paddr:8192 with
  | Some e ->
    check Alcotest.int "ino" 5 e.Registry.ino;
    check Alcotest.int "blkno" 10 e.Registry.blkno;
    check Alcotest.int "checksum" 0xABCD e.Registry.checksum;
    check Alcotest.bool "not changing" false e.Registry.changing
  | None -> Alcotest.fail "entry missing");
  check Alcotest.int "live" 1 (Registry.live_entries reg)

let test_registry_update_in_place () =
  let _, _, reg = registry_fixture () in
  Registry.register reg ~home_paddr:8192 ~dev:1 ~ino:5 ~offset:0 ~size:8192 ~blkno:10
    ~kind:Registry.Data_buffer ~checksum:1;
  Registry.register reg ~home_paddr:8192 ~dev:1 ~ino:5 ~offset:0 ~size:4096 ~blkno:10
    ~kind:Registry.Data_buffer ~checksum:2;
  check Alcotest.int "still one entry" 1 (Registry.live_entries reg);
  match Registry.find reg ~home_paddr:8192 with
  | Some e -> check Alcotest.int "updated size" 4096 e.Registry.size
  | None -> Alcotest.fail "entry missing"

let test_registry_unregister () =
  let _, _, reg = registry_fixture () in
  Registry.register reg ~home_paddr:8192 ~dev:1 ~ino:5 ~offset:0 ~size:8192 ~blkno:10
    ~kind:Registry.Meta_buffer ~checksum:1;
  Registry.unregister reg ~home_paddr:8192;
  check Alcotest.int "empty" 0 (Registry.live_entries reg);
  check Alcotest.bool "gone" true (Registry.find reg ~home_paddr:8192 = None);
  (* Idempotent. *)
  Registry.unregister reg ~home_paddr:8192

let test_registry_changing_and_redirect () =
  let _, _, reg = registry_fixture () in
  Registry.register reg ~home_paddr:8192 ~dev:1 ~ino:5 ~offset:0 ~size:8192 ~blkno:10
    ~kind:Registry.Meta_buffer ~checksum:1;
  Registry.set_changing reg ~home_paddr:8192 true;
  Registry.redirect reg ~home_paddr:8192 ~paddr:16384;
  (match Registry.find reg ~home_paddr:8192 with
  | Some e ->
    check Alcotest.bool "changing" true e.Registry.changing;
    check Alcotest.int "redirected" 16384 e.Registry.paddr;
    check Alcotest.int "home stays" 8192 e.Registry.home_paddr
  | None -> Alcotest.fail "entry missing");
  Registry.redirect reg ~home_paddr:8192 ~paddr:8192;
  Registry.set_changing reg ~home_paddr:8192 false;
  match Registry.find reg ~home_paddr:8192 with
  | Some e -> check Alcotest.bool "restored" true (e.Registry.paddr = 8192 && not e.Registry.changing)
  | None -> Alcotest.fail "entry missing"

let test_registry_survives_in_memory () =
  (* The registry's bytes live in simulated memory: parse them back from a
     raw dump, as the warm reboot does. *)
  let mem, layout, reg = registry_fixture () in
  Registry.register reg ~home_paddr:8192 ~dev:1 ~ino:5 ~offset:16384 ~size:100 ~blkno:10
    ~kind:Registry.Data_buffer ~checksum:77;
  let image = Phys_mem.dump mem in
  let parsed =
    Registry.parse_image ~image ~region:(Layout.region layout Layout.Registry)
      ~mem_bytes:(Bytes.length image)
  in
  check Alcotest.int "one entry" 1 (List.length parsed.Registry.entries);
  check Alcotest.int "no corruption" 0 parsed.Registry.corrupt_slots;
  let e = List.hd parsed.Registry.entries in
  check Alcotest.int "offset" 16384 e.Registry.offset;
  check Alcotest.int "checksum" 77 e.Registry.checksum

let test_registry_dev_bounds () =
  let _, _, reg = registry_fixture () in
  (* The slot stores dev in 16 bits; widths the slot cannot hold must be
     rejected at register time, not silently truncated onto the wrong
     volume. *)
  Registry.register reg ~home_paddr:8192 ~dev:0xFFFF ~ino:5 ~offset:0 ~size:8192 ~blkno:10
    ~kind:Registry.Data_buffer ~checksum:1;
  (match Registry.find reg ~home_paddr:8192 with
  | Some e -> check Alcotest.int "widest 16-bit dev survives" 0xFFFF e.Registry.dev
  | None -> Alcotest.fail "entry missing");
  List.iter
    (fun dev ->
      match
        Registry.register reg ~home_paddr:16384 ~dev ~ino:5 ~offset:0 ~size:8192 ~blkno:11
          ~kind:Registry.Data_buffer ~checksum:1
      with
      | () -> Alcotest.failf "dev %d accepted" dev
      | exception Rio_fs.Fs_types.Fs_error _ -> ())
    [ 0x10000; -1 ];
  check Alcotest.int "rejected registrations left no entry" 1 (Registry.live_entries reg)

let test_registry_plausible_checks_dev () =
  let mem_bytes = 4 * 1024 * 1024 in
  let e =
    {
      Registry.paddr = 8192;
      home_paddr = 8192;
      dev = 1;
      ino = 5;
      offset = 0;
      size = 100;
      blkno = 10;
      kind = Registry.Data_buffer;
      changing = false;
      checksum = 1;
    }
  in
  check Alcotest.bool "sane entry plausible" true (Registry.plausible ~mem_bytes e);
  check Alcotest.bool "dev past 16 bits is corrupt" false
    (Registry.plausible ~mem_bytes { e with Registry.dev = 0x10000 });
  check Alcotest.bool "negative dev is corrupt" false
    (Registry.plausible ~mem_bytes { e with Registry.dev = -1 })

let test_registry_parse_rejects_garbage () =
  let mem, layout, reg = registry_fixture () in
  Registry.register reg ~home_paddr:8192 ~dev:1 ~ino:5 ~offset:0 ~size:8192 ~blkno:10
    ~kind:Registry.Data_buffer ~checksum:1;
  (* Smash the slot with a wild store pattern. *)
  let region = Layout.region layout Layout.Registry in
  Phys_mem.fill mem region.Layout.base ~len:40 '\137';
  let image = Phys_mem.dump mem in
  let parsed =
    Registry.parse_image ~image ~region ~mem_bytes:(Bytes.length image)
  in
  check Alcotest.int "no entries" 0 (List.length parsed.Registry.entries);
  check Alcotest.int "slot counted corrupt" 1 parsed.Registry.corrupt_slots

let prop_registry_parse_never_crashes =
  QCheck.Test.make ~name:"parse_image survives arbitrary garbage" ~count:100
    QCheck.(pair small_int (list (pair (int_range 0 2000) (int_range 0 255))))
    (fun (_, writes) ->
      let mem, layout, _reg = registry_fixture () in
      let region = Layout.region layout Layout.Registry in
      List.iter
        (fun (off, v) ->
          if off < region.Layout.bytes then
            Phys_mem.write_u8 mem (region.Layout.base + off) v)
        writes;
      let image = Phys_mem.dump mem in
      let parsed = Registry.parse_image ~image ~region ~mem_bytes:(Bytes.length image) in
      (* Whatever the garbage, parsing terminates and every surviving entry
         is plausible. *)
      List.for_all
        (fun e ->
          e.Registry.size >= 0
          && e.Registry.size <= Phys_mem.page_size
          && e.Registry.home_paddr mod Phys_mem.page_size = 0)
        parsed.Registry.entries)

(* ---------------- protection ---------------- *)

let test_protect_disabled_is_noop () =
  let engine = Engine.create () in
  let mmu = Mmu.create ~mem_pages:16 ~tlb_entries:4 () in
  let p = Protect.create ~mmu ~engine ~costs:Costs.default ~enabled:false in
  Protect.protect_page p ~paddr:8192;
  check Alcotest.bool "kseg still bypasses" false (Mmu.kseg_through_tlb mmu);
  check Alcotest.int "no toggles" 0 (Protect.toggles p);
  check Alcotest.bool "page still writable" true
    (Rio_vm.Page_table.is_writable (Mmu.page_table mmu) ~vpn:1)

let test_protect_enabled () =
  let engine = Engine.create () in
  let mmu = Mmu.create ~mem_pages:16 ~tlb_entries:4 () in
  let p = Protect.create ~mmu ~engine ~costs:Costs.default ~enabled:true in
  check Alcotest.bool "abox bit set" true (Mmu.kseg_through_tlb mmu);
  Protect.protect_page p ~paddr:8192;
  check Alcotest.bool "write-protected" false
    (Rio_vm.Page_table.is_writable (Mmu.page_table mmu) ~vpn:1);
  Protect.unprotect_page p ~paddr:8192;
  check Alcotest.bool "writable again" true
    (Rio_vm.Page_table.is_writable (Mmu.page_table mmu) ~vpn:1);
  check Alcotest.int "toggles counted" 2 (Protect.toggles p)

let test_code_patching_model () =
  check Alcotest.bool "overhead grows with stores" true
    (Protect.code_patching_overhead ~costs:Costs.default ~stores:1_000_000
    > Protect.code_patching_overhead ~costs:Costs.default ~stores:1_000)

(* ---------------- rio cache hooks ---------------- *)

let test_pages_registered_on_write () =
  let _, _, rio, fs = rio_system ~protection:false () in
  Fs.write_file fs "/f" (Pattern.fill ~seed:1 ~len:20_000);
  let stats = Rio_cache.stats rio in
  check Alcotest.bool "data + metadata registered" true (stats.Rio_cache.registered_pages > 3);
  check Alcotest.bool "checksums maintained" true (stats.Rio_cache.checksum_updates > 0)

let test_checksums_all_valid_after_writes () =
  let _, _, rio, fs = rio_system ~protection:false () in
  Fs.write_file fs "/a" (Pattern.fill ~seed:1 ~len:30_000);
  Fs.write_file fs "/b" (Pattern.fill ~seed:2 ~len:5_000);
  Fs.unlink fs "/a";
  check Alcotest.int "zero mismatches" 0 (Rio_cache.verify_all_checksums rio)

let test_checksum_detects_direct_corruption () =
  let _, kernel, rio, fs = rio_system ~protection:false () in
  Fs.write_file fs "/victim" (Pattern.fill ~seed:3 ~len:8192);
  (* Simulate a wild store into a registered data page. *)
  let corrupted = ref false in
  Registry.iter (Rio_cache.registry rio) (fun e ->
      if (not !corrupted) && e.Registry.kind = Registry.Data_buffer then begin
        Phys_mem.write_u8 (Kernel.mem kernel) (e.Registry.home_paddr + 17) 0xEE;
        corrupted := true
      end);
  check Alcotest.bool "a page was corrupted" true !corrupted;
  check Alcotest.bool "checksum catches it" true (Rio_cache.verify_all_checksums rio > 0)

let test_protection_blocks_interpreted_wild_store () =
  let _, kernel, rio, fs = rio_system ~protection:true () in
  Fs.write_file fs "/protected" (Pattern.fill ~seed:4 ~len:8192);
  (* Find the data page and attack it with an interpreted KSEG store. *)
  let target = ref 0 in
  Registry.iter (Rio_cache.registry rio) (fun e ->
      if !target = 0 && e.Registry.kind = Registry.Data_buffer then
        target := e.Registry.home_paddr);
  let m = Kernel.machine kernel in
  let mem = Kernel.mem kernel in
  let org = (Layout.region (Kernel.layout kernel) Layout.Kernel_text).Layout.base + 4096 in
  List.iteri
    (fun i instr -> Phys_mem.write_u32 mem (org + (4 * i)) (Isa.encode instr))
    [ Isa.Kseg (2, 1); Isa.St (3, 2, 0); Isa.Halt ];
  Machine.resume m;
  Machine.set_reg m 1 !target;
  Machine.set_reg m 3 0xBAD;
  Machine.set_pc m org;
  (match Machine.run m ~max_instructions:10 with
  | Machine.Trapped (Machine.Protection_violation _) -> ()
  | _ -> Alcotest.fail "expected protection violation");
  check Alcotest.int "page content untouched" 0 (Rio_cache.verify_all_checksums rio)

let test_no_protection_wild_store_succeeds () =
  let _, kernel, rio, fs = rio_system ~protection:false () in
  Fs.write_file fs "/unprotected" (Pattern.fill ~seed:4 ~len:8192);
  let target = ref 0 in
  Registry.iter (Rio_cache.registry rio) (fun e ->
      if !target = 0 && e.Registry.kind = Registry.Data_buffer then
        target := e.Registry.home_paddr);
  let m = Kernel.machine kernel in
  let mem = Kernel.mem kernel in
  let org = (Layout.region (Kernel.layout kernel) Layout.Kernel_text).Layout.base + 4096 in
  List.iteri
    (fun i instr -> Phys_mem.write_u32 mem (org + (4 * i)) (Isa.encode instr))
    [ Isa.Kseg (2, 1); Isa.St (3, 2, 0); Isa.Halt ];
  Machine.resume m;
  Machine.set_reg m 1 !target;
  Machine.set_reg m 3 0xBAD;
  Machine.set_pc m org;
  (match Machine.run m ~max_instructions:10 with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "expected the store to land silently");
  check Alcotest.bool "corruption happened and is detectable" true
    (Rio_cache.verify_all_checksums rio > 0)

let test_note_map_remap_refreshes_checksum () =
  let _, kernel, rio, fs = rio_system ~protection:false () in
  Fs.write_file fs "/a" (Pattern.fill ~seed:9 ~len:16_384);
  let entry = ref None in
  Registry.iter (Rio_cache.registry rio) (fun e ->
      if
        !entry = None
        && e.Registry.kind = Registry.Data_buffer
        && e.Registry.size = Phys_mem.page_size
      then entry := Some e);
  let e = match !entry with Some e -> e | None -> Alcotest.fail "no full data page" in
  check Alcotest.int "clean before the remap" 0 (Rio_cache.verify_all_checksums rio);
  (* The cache recycles the buffer for a different block: same page, same
     valid byte count, but new content under a new (ino, offset, blkno).
     The registry must re-checksum the fresh content — reusing the cached
     checksum (the size still matches and nothing is mid-write) would
     brand the recycled page a corruption. *)
  Phys_mem.fill (Kernel.mem kernel) e.Registry.home_paddr ~len:Phys_mem.page_size 'Q';
  (Kernel.hooks kernel).Rio_fs.Hooks.note_map ~paddr:e.Registry.home_paddr
    ~blkno:(e.Registry.blkno + 1000)
    ~owner:(Rio_fs.Fs_types.Data { ino = e.Registry.ino + 7; offset = e.Registry.offset + 8192 })
    ~valid:Phys_mem.page_size;
  check Alcotest.int "remap refreshed the checksum" 0 (Rio_cache.verify_all_checksums rio)

let test_shadow_update_counted () =
  let _, _, rio, fs = rio_system ~protection:true () in
  Fs.mkdir fs "/dir";
  Fs.write_file fs "/dir/f" (Bytes.of_string "x");
  check Alcotest.bool "shadow metadata updates happened" true
    ((Rio_cache.stats rio).Rio_cache.shadow_updates > 0)

(* ---------------- warm reboot ---------------- *)

let warm_reboot_cycle ~protection ~mutate_after_capture =
  let engine, kernel, _, fs = rio_system ~protection () in
  Fs.mkdir fs "/docs";
  let payload = Pattern.fill ~seed:11 ~len:40_000 in
  Fs.write_file fs "/docs/thesis" payload;
  Fs.write_file fs "/docs/note" (Bytes.of_string "short note");
  (* Crash out of nowhere. *)
  (match Kernel.fs kernel with Some f -> Fs.crash f | None -> ());
  mutate_after_capture kernel;
  let fs_ref = ref None in
  let report =
    Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
      ~layout:(Kernel.layout kernel) ~engine
      ~reboot:(fun () ->
        let kernel2 =
          Kernel.boot_warm ~engine ~costs:Costs.default (Kernel.config_with_seed 1)
            ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
        in
        ignore
          (Rio_cache.create ~mem:(Kernel.mem kernel2) ~layout:(Kernel.layout kernel2)
             ~mmu:(Kernel.mmu kernel2) ~engine ~costs:Costs.default
             ~hooks:(Kernel.hooks kernel2) ~pool_alloc:(Kernel.pool_alloc kernel2) ~protection
             ~dev:1 ());
        let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
        fs_ref := Some fs2;
        fs2)
  in
  (report, Option.get !fs_ref, payload)

let test_warm_reboot_recovers_everything () =
  let report, fs2, payload = warm_reboot_cycle ~protection:true ~mutate_after_capture:(fun _ -> ()) in
  check Alcotest.bool "metadata restored" true (report.Warm_reboot.meta_restored > 0);
  check Alcotest.bool "data restored" true (report.Warm_reboot.data_restored > 0);
  check Alcotest.int "no checksum mismatches" 0
    (report.Warm_reboot.meta_verify.Warm_reboot.mismatched
    + report.Warm_reboot.data_verify.Warm_reboot.mismatched);
  check Alcotest.bytes "big file back" payload (Fs.read_file fs2 "/docs/thesis");
  check Alcotest.bytes "small file back" (Bytes.of_string "short note")
    (Fs.read_file fs2 "/docs/note")

let test_warm_reboot_detects_corruption () =
  (* Corrupt a registered data page after the crash but before recovery:
     the verify pass must notice. *)
  let report, _, _ =
    warm_reboot_cycle ~protection:false ~mutate_after_capture:(fun kernel ->
        let layout = Kernel.layout kernel in
        let pool = Layout.region layout Layout.Page_pool in
        (* Flip bytes across the pool; some will hit registered pages. *)
        for i = 0 to 200 do
          Phys_mem.write_u8 (Kernel.mem kernel) (pool.Layout.base + (i * 4099)) 0x5A
        done)
  in
  check Alcotest.bool "checksums flag the damage" true
    (report.Warm_reboot.data_verify.Warm_reboot.mismatched > 0)

let test_warm_reboot_dump_written_to_swap () =
  let engine, kernel, _, fs = rio_system ~protection:false () in
  Fs.write_file fs "/x" (Bytes.of_string "dumped");
  (match Kernel.fs kernel with Some f -> Fs.crash f | None -> ());
  let image = Warm_reboot.capture (Kernel.mem kernel) in
  let t0 = Engine.now engine in
  let dumped, truncated = Warm_reboot.dump_to_swap ~disk:(Kernel.disk kernel) ~image in
  check Alcotest.bool "dump takes disk time" true (Engine.now engine > t0);
  check Alcotest.int "whole image dumped" (Bytes.length image) dumped;
  check Alcotest.int "nothing truncated" 0 truncated;
  (* Spot-check: the first swap sector holds the first bytes of memory. *)
  let sb = Rio_fs.Ondisk.read_superblock (Rio_disk.Disk.peek (Kernel.disk kernel) ~sector:0) in
  let sector = Rio_disk.Disk.peek (Kernel.disk kernel) ~sector:sb.Rio_fs.Ondisk.swap_start in
  check Alcotest.bytes "swap holds the image prefix" (Bytes.sub image 0 512) sector

let test_warm_reboot_dump_truncation_reported () =
  let _, kernel, _, fs = rio_system ~protection:false () in
  Fs.write_file fs "/x" (Bytes.of_string "dumped");
  (match Kernel.fs kernel with Some f -> Fs.crash f | None -> ());
  (* An image bigger than the swap partition: the dump must say exactly
     how much was written and how much fell off the end, not pretend the
     crash dump is whole. *)
  let sb = Rio_fs.Ondisk.read_superblock (Rio_disk.Disk.peek (Kernel.disk kernel) ~sector:0) in
  let swap_bytes = sb.Rio_fs.Ondisk.swap_sectors * Rio_disk.Disk.sector_bytes in
  let image = Bytes.make (swap_bytes + 4096) 'Z' in
  let dumped, truncated = Warm_reboot.dump_to_swap ~disk:(Kernel.disk kernel) ~image in
  check Alcotest.int "dump fills the swap" swap_bytes dumped;
  check Alcotest.int "overflow accounted" 4096 truncated

let () =
  Alcotest.run "rio_core"
    [
      ( "registry",
        [
          Alcotest.test_case "register/find" `Quick test_registry_register_find;
          Alcotest.test_case "update in place" `Quick test_registry_update_in_place;
          Alcotest.test_case "unregister" `Quick test_registry_unregister;
          Alcotest.test_case "changing + redirect" `Quick test_registry_changing_and_redirect;
          Alcotest.test_case "parse from image" `Quick test_registry_survives_in_memory;
          Alcotest.test_case "dev bounds enforced" `Quick test_registry_dev_bounds;
          Alcotest.test_case "plausible checks dev" `Quick test_registry_plausible_checks_dev;
          Alcotest.test_case "parse rejects garbage" `Quick test_registry_parse_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_registry_parse_never_crashes;
        ] );
      ( "protect",
        [
          Alcotest.test_case "disabled no-op" `Quick test_protect_disabled_is_noop;
          Alcotest.test_case "enabled" `Quick test_protect_enabled;
          Alcotest.test_case "code patching model" `Quick test_code_patching_model;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "pages registered" `Quick test_pages_registered_on_write;
          Alcotest.test_case "checksums valid" `Quick test_checksums_all_valid_after_writes;
          Alcotest.test_case "checksum detects corruption" `Quick
            test_checksum_detects_direct_corruption;
          Alcotest.test_case "protection blocks wild store" `Quick
            test_protection_blocks_interpreted_wild_store;
          Alcotest.test_case "no protection lets it through" `Quick
            test_no_protection_wild_store_succeeds;
          Alcotest.test_case "shadow updates counted" `Quick test_shadow_update_counted;
          Alcotest.test_case "remap refreshes checksum" `Quick
            test_note_map_remap_refreshes_checksum;
        ] );
      ( "warm_reboot",
        [
          Alcotest.test_case "recovers everything" `Quick test_warm_reboot_recovers_everything;
          Alcotest.test_case "detects corruption" `Quick test_warm_reboot_detects_corruption;
          Alcotest.test_case "dump to swap" `Quick test_warm_reboot_dump_written_to_swap;
          Alcotest.test_case "dump truncation reported" `Quick
            test_warm_reboot_dump_truncation_reported;
        ] );
    ]
