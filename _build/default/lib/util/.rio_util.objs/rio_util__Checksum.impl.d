lib/util/checksum.ml: Array Bytes Char Lazy
