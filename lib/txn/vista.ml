module Fs = Rio_fs.Fs
open Rio_fs.Fs_types

let record_magic = 0x554E444F (* "UNDO" *)

type event =
  | Undo_append of { offset : int; len : int }
  | Data_write of { offset : int; len : int }
  | Commit_start
  | Committed

type t = {
  fs : Fs.t;
  path : string;
  log_path : string;
  data_fd : Fs.fd;
  log_fd : Fs.fd;
  size : int;
  mutable log_pos : int;
  mutable open_txn : bool;
  mutable records_logged : int;
  mutable observer : event -> unit;
}

type txn = {
  store : t;
  mutable undo : (int * bytes) list; (* newest first *)
  mutable live : bool;
}

let log_path_of path = path ^ ".undo"

let size t = t.size
let path t = t.path
let in_txn t = t.open_txn
let undo_records_logged t = t.records_logged
let set_observer t f = t.observer <- f

let create fs ~path ~size =
  if size <= 0 then err "vista: store size must be positive";
  let data_fd = Fs.create fs path in
  (* Zero-fill by writing the last byte: everything before is a hole that
     reads as zeros. *)
  Fs.pwrite fs data_fd ~offset:(size - 1) (Bytes.make 1 '\000');
  let log_fd = Fs.create fs (log_path_of path) in
  {
    fs;
    path;
    log_path = log_path_of path;
    data_fd;
    log_fd;
    size;
    log_pos = 0;
    open_txn = false;
    records_logged = 0;
    observer = (fun (_ : event) -> ());
  }

let open_existing fs ~path =
  let data_fd = Fs.open_file fs path in
  let size = Fs.fd_size fs data_fd in
  let log_fd =
    if Fs.exists fs (log_path_of path) then Fs.open_file fs (log_path_of path)
    else Fs.create fs (log_path_of path)
  in
  {
    fs;
    path;
    log_path = log_path_of path;
    data_fd;
    log_fd;
    size;
    log_pos = Fs.fd_size fs log_fd;
    open_txn = false;
    records_logged = 0;
    observer = (fun (_ : event) -> ());
  }

let read t ~offset ~len =
  if offset < 0 || len < 0 || offset + len > t.size then err "vista: read out of range";
  Fs.pread t.fs t.data_fd ~offset ~len

(* ---------------- undo log records ---------------- *)

let encode_record ~offset old =
  let len = Bytes.length old in
  let b = Bytes.create (12 + len + 4) in
  Bytes.set_int32_le b 0 (Int32.of_int record_magic);
  Bytes.set_int32_le b 4 (Int32.of_int offset);
  Bytes.set_int32_le b 8 (Int32.of_int len);
  Bytes.blit old 0 b 12 len;
  let crc = Rio_util.Checksum.crc32 b ~pos:0 ~len:(12 + len) in
  Bytes.set_int32_le b (12 + len) (Int32.of_int crc);
  b

(* Parse all complete, checksummed records; a torn tail ends the scan. *)
let parse_records log =
  let total = Bytes.length log in
  let u32 pos = Int32.to_int (Bytes.get_int32_le log pos) land 0xFFFF_FFFF in
  let rec scan pos acc =
    if pos + 16 > total then List.rev acc
    else if u32 pos <> record_magic then List.rev acc
    else begin
      let offset = u32 (pos + 4) in
      let len = u32 (pos + 8) in
      if len < 0 || pos + 12 + len + 4 > total then List.rev acc
      else begin
        let crc = Rio_util.Checksum.crc32 log ~pos ~len:(12 + len) in
        if crc <> u32 (pos + 12 + len) then List.rev acc
        else scan (pos + 16 + len) ((offset, Bytes.sub log (pos + 12) len) :: acc)
      end
    end
  in
  scan 0 []

(* ---------------- transactions ---------------- *)

let begin_txn t =
  if t.open_txn then err "vista: a transaction is already open";
  t.open_txn <- true;
  { store = t; undo = []; live = true }

let require_live txn = if not txn.live then err "vista: transaction is finished"

let write txn ~offset data =
  require_live txn;
  let t = txn.store in
  let len = Bytes.length data in
  if offset < 0 || offset + len > t.size then err "vista: write out of range";
  if len > 0 then begin
    (* Write-ahead: the old image goes to the (instantly permanent) undo
       log before the data changes. *)
    let old = Fs.pread t.fs t.data_fd ~offset ~len in
    let record = encode_record ~offset old in
    Fs.pwrite t.fs t.log_fd ~offset:t.log_pos record;
    t.log_pos <- t.log_pos + Bytes.length record;
    t.records_logged <- t.records_logged + 1;
    txn.undo <- (offset, old) :: txn.undo;
    (* The write-ahead window: the old image is logged, the data is not yet
       written. A crash signalled here must recover to the old state. *)
    t.observer (Undo_append { offset; len });
    Fs.pwrite t.fs t.data_fd ~offset data;
    t.observer (Data_write { offset; len })
  end

let read_txn txn ~offset ~len =
  require_live txn;
  read txn.store ~offset ~len

let clear_log t =
  Fs.truncate t.fs t.log_path 0;
  t.log_pos <- 0

let commit txn =
  require_live txn;
  (* The data writes are already permanent; discarding the undo log IS the
     commit point. *)
  txn.store.observer Commit_start;
  clear_log txn.store;
  txn.live <- false;
  txn.store.open_txn <- false;
  txn.store.observer Committed

let abort txn =
  require_live txn;
  let t = txn.store in
  List.iter (fun (offset, old) -> Fs.pwrite t.fs t.data_fd ~offset old) txn.undo;
  clear_log t;
  txn.live <- false;
  t.open_txn <- false

(* ---------------- world-template rewind ---------------- *)

type state = { v_log_pos : int; v_open_txn : bool; v_records : int }

let save t = { v_log_pos = t.log_pos; v_open_txn = t.open_txn; v_records = t.records_logged }

let restore t s =
  t.log_pos <- s.v_log_pos;
  t.open_txn <- s.v_open_txn;
  t.records_logged <- s.v_records;
  (* Observers are installed per attempt; never leak one across a rewind. *)
  t.observer <- (fun (_ : event) -> ())

(* ---------------- recovery ---------------- *)

let recover fs ~path =
  let log_path = log_path_of path in
  if not (Fs.exists fs log_path) then 0
  else begin
    let log = Fs.read_file fs log_path in
    let records = parse_records log in
    if records <> [] then begin
      let data_fd = Fs.open_file fs path in
      (* Newest record last in the log; undo must apply newest-first. *)
      List.iter
        (fun (offset, old) -> Fs.pwrite fs data_fd ~offset old)
        (List.rev records);
      Fs.close fs data_fd
    end;
    Fs.truncate fs log_path 0;
    List.length records
  end
