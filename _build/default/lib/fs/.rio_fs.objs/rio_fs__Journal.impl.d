lib/fs/journal.ml: Buffer Bytes Fs_types Int32 Rio_disk Rio_util
