lib/fs/fs_types.ml: Printf
