(** Ablations for the design choices the paper discusses in prose.

    - {b Protection overhead} (§4): Rio with vs without protection on a
      write-heavy workload, plus the raw toggle counts — the paper's
      "essentially no overhead" claim.
    - {b Code patching} (§2.1): the software-only alternative for CPUs that
      cannot map KSEG through the TLB, which the paper measured at 20-50%
      slower. We measure the store density of the interpreted kernel corpus
      and model one inserted check sequence per (unproven-safe) store.
    - {b Registry cost} (§2.2): bytes and time spent maintaining the
      registry under memTest.
    - {b Delay-period sweep} (§1): the delayed-write spectrum — longer
      delays buy performance and lose more data in a crash; Rio sits at
      (fast, zero loss).

    Every ablation boots fresh machines from its seed, so the multi-point
    sweeps accept [?domains] and run their points on a domain pool
    ({!Rio_parallel.Pool}); results keep presentation order and are
    byte-identical to the serial ([domains = 1], default) run. *)

type protection_result = {
  noprot_s : float;
  prot_s : float;
  overhead_pct : float;
  toggles : int;
  checksum_updates : int;
  shadow_updates : int;
}

val protection_overhead : ?scale:float -> ?domains:int -> seed:int -> unit -> protection_result
(** cp+rm (write-heavy, worst case for protection) under both Rio modes. *)

type code_patching_result = {
  store_density : float;  (** Stores per instruction in the kernel corpus. *)
  checked_fraction : float;  (** Stores still checked after optimization. *)
  check_instructions : int;  (** Inserted instructions per checked store. *)
  slowdown_pct : float;
}

val code_patching : seed:int -> unit -> code_patching_result
(** Executes the kernel-activity corpus to measure store density, then
    applies the check-cost model. The paper's band is 20-50%. *)

type registry_result = {
  registry_updates : int;
  bytes_per_page : int;  (** 40. *)
  space_overhead_pct : float;  (** 40/8192. *)
  time_overhead_pct : float;  (** Registry time / total run time. *)
}

val registry_cost : ?steps:int -> seed:int -> unit -> registry_result

type idle_writeback_result = {
  rio_s : float;
  rio_idle_s : float;
  rio_evictions : int;
  rio_idle_evictions : int;
  rio_idle_daemon_writes : int;
}

val idle_writeback : ?domains:int -> seed:int -> unit -> idle_writeback_result
(** The paper's §2.3 future-work variant: Rio with idle-period write-back.
    A churn workload bigger than the page pool forces evictions; with idle
    write-back the victims are already clean, so the run does not stall on
    synchronous eviction writes. *)

type debit_credit_result = {
  noprot_txn_us : float;
  prot_txn_us : float;
  overhead_pct : float;
}

val debit_credit : ?transactions:int -> ?domains:int -> seed:int -> unit -> debit_credit_result
(** §6's comparison with Sullivan-Stonebraker's "expose page" (7% overhead
    on debit/credit): Rio's in-kernel, per-page protection toggles cost far
    less on the same transaction shape (run on Vista transactions). *)

type phoenix_point = {
  scheme : string;
  run_s : float;
  lost_bytes : int;
  lost_files : int;
  checkpoints : int;
}

val phoenix_comparison : ?steps:int -> ?domains:int -> seed:int -> unit -> phoenix_point list
(** Related-work comparison (§6): Phoenix-style periodic in-memory
    checkpointing loses the writes since the last checkpoint and pays a
    copy pass per checkpoint; Rio makes every write permanent for free. *)

type disk_sensitivity = {
  era : string;
  wt_write_s : float;
  rio_s : float;
  ratio : float;
}

val modern_disk_sensitivity : ?domains:int -> seed:int -> unit -> disk_sensitivity list
(** Re-run the Rio-vs-write-through comparison with a modern disk's
    parameters: the gap shrinks but does not close (seek+rotation still
    dwarf memory latency). *)

type delay_point = {
  delay : Rio_util.Units.usec option;  (** [None] = Rio (never). *)
  label : string;
  run_s : float;  (** Workload runtime. *)
  lost_bytes : int;  (** Data missing after crash + recovery. *)
  lost_files : int;
}

val delay_sweep : ?steps:int -> ?domains:int -> seed:int -> unit -> delay_point list
(** Sweep the update-daemon interval for UFS-delayed, crash at the end of
    the workload, recover, and count what was lost. Includes a Rio point
    (warm reboot: nothing lost). *)

val protection_table : protection_result -> Rio_util.Table.t
val idle_writeback_table : idle_writeback_result -> Rio_util.Table.t
val disk_sensitivity_table : disk_sensitivity list -> Rio_util.Table.t
val phoenix_table : phoenix_point list -> Rio_util.Table.t
val debit_credit_table : debit_credit_result -> Rio_util.Table.t
val code_patching_table : code_patching_result -> Rio_util.Table.t
val registry_table : registry_result -> Rio_util.Table.t
val delay_table : delay_point list -> Rio_util.Table.t

(** {1 The bundled entry point} *)

type results = {
  protection : protection_result;
  patching : code_patching_result;
  registry : registry_result;
  delay : delay_point list;
  idle : idle_writeback_result;
  disk : disk_sensitivity list;
  phoenix : phoenix_point list;
  debit : debit_credit_result;
}

val run : Run.config -> results
(** All eight ablations with their historical workload sizes, seeded and
    parallelized from the {!Run.config} ([seed], [domains], [progress];
    [scale] multiplies the protection ablation's workload, [trials] and
    [trace_dir] are unused). Equivalent to calling the eight functions
    above with their defaults. *)
