lib/mem/layout.mli: Format Phys_mem
