lib/workload/cp_rm.ml: File_tree List Rio_fs Script
