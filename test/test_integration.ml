(* End-to-end integration tests: the full crash → warm-reboot → verify
   cycle under many conditions, repeated crashes, and cross-system
   comparisons — the executable form of the paper's claims. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Kcrash = Rio_kernel.Kcrash
module Fs = Rio_fs.Fs
module Fsck = Rio_fs.Fsck
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Memtest = Rio_workload.Memtest
module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type
module Pattern = Rio_util.Pattern

let check = Alcotest.check

(* A Rio world we can crash and warm-reboot repeatedly. *)
type world = {
  engine : Engine.t;
  mutable kernel : Kernel.t;
  mutable fs : Fs.t;
  protection : bool;
}

let make_world ?(seed = 1) ~protection () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  ignore
    (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ());
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  { engine; kernel; fs; protection }

(* Crash the world and perform the full warm reboot; returns the report. *)
let crash_and_warm_reboot w =
  Fs.crash w.fs;
  let report =
    Warm_reboot.perform ~mem:(Kernel.mem w.kernel) ~disk:(Kernel.disk w.kernel)
      ~layout:(Kernel.layout w.kernel) ~engine:w.engine
      ~reboot:(fun () ->
        let kernel2 =
          Kernel.boot_warm ~engine:w.engine ~costs:Costs.default (Kernel.config_with_seed 1)
            ~mem:(Kernel.mem w.kernel) ~disk:(Kernel.disk w.kernel)
        in
        ignore
          (Rio_cache.create ~mem:(Kernel.mem kernel2) ~layout:(Kernel.layout kernel2)
             ~mmu:(Kernel.mmu kernel2) ~engine:w.engine ~costs:Costs.default
             ~hooks:(Kernel.hooks kernel2) ~pool_alloc:(Kernel.pool_alloc kernel2)
             ~protection:w.protection ~dev:1 ());
        let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
        w.kernel <- kernel2;
        w.fs <- fs2;
        fs2)
  in
  report

let test_every_write_survives_crash () =
  (* The headline: "all writes are synchronously and instantly permanent".
     Write, crash with NO sync of any kind, recover, verify. *)
  let w = make_world ~protection:true () in
  Fs.mkdir w.fs "/mail";
  let messages =
    List.init 25 (fun i -> (Printf.sprintf "/mail/msg%d" i, Pattern.fill ~seed:i ~len:(512 * (i + 1))))
  in
  List.iter (fun (p, data) -> Fs.write_file w.fs p data) messages;
  ignore (crash_and_warm_reboot w);
  List.iter
    (fun (p, data) -> check Alcotest.bytes ("survived: " ^ p) data (Fs.read_file w.fs p))
    messages

let test_repeated_crashes () =
  (* The departmental-file-server scenario: crash again and again; no data
     ever lost. *)
  let w = make_world ~protection:true () in
  Fs.mkdir w.fs "/server";
  let expected = Hashtbl.create 16 in
  for round = 1 to 6 do
    let path = Printf.sprintf "/server/gen%d" round in
    let data = Pattern.fill ~seed:(round * 31) ~len:(round * 3000) in
    Fs.write_file w.fs path data;
    Hashtbl.replace expected path data;
    let report = crash_and_warm_reboot w in
    check Alcotest.bool "fsck recoverable" false report.Warm_reboot.fsck.Fsck.unrecoverable;
    Hashtbl.iter
      (fun p d ->
        check Alcotest.bytes (Printf.sprintf "round %d: %s intact" round p) d
          (Fs.read_file w.fs p))
      expected
  done

let test_crash_mid_memtest () =
  (* Crash in the middle of a memTest stream, then reconstruct and compare
     — the paper's actual measurement procedure, minus fault injection. *)
  let w = make_world ~protection:true ~seed:3 () in
  let config = { Memtest.default_config with Memtest.seed = 77; max_files = 16 } in
  let mt = Memtest.create config in
  for _ = 1 to 150 do
    Memtest.step mt ~fs:w.fs ()
  done;
  ignore (crash_and_warm_reboot w);
  let replayed = Memtest.replay config ~steps:(Memtest.steps_done mt) in
  let exempt = Memtest.touched_by_next_step replayed in
  check (Alcotest.list Alcotest.string) "no corruption without faults" []
    (List.map Memtest.discrepancy_to_string (Memtest.compare_with_fs replayed w.fs ~exempt))

let test_metadata_heavy_crash () =
  (* Directories and renames (metadata) survive via the registry's
     disk-address restore + fsck. *)
  let w = make_world ~protection:true ~seed:5 () in
  Fs.mkdir w.fs "/a";
  Fs.mkdir w.fs "/a/b";
  Fs.mkdir w.fs "/a/b/c";
  Fs.write_file w.fs "/a/b/c/deep" (Bytes.of_string "deep file");
  Fs.rename w.fs "/a/b/c/deep" "/a/renamed";
  Fs.unlink w.fs "/a/renamed" |> ignore;
  Fs.write_file w.fs "/a/final" (Bytes.of_string "final state");
  ignore (crash_and_warm_reboot w);
  check Alcotest.bytes "final file" (Bytes.of_string "final state") (Fs.read_file w.fs "/a/final");
  check Alcotest.bool "deleted stays deleted" false (Fs.exists w.fs "/a/renamed");
  check (Alcotest.list Alcotest.string) "directory structure" [ "b"; "final" ]
    (Fs.readdir w.fs "/a")

let test_rio_vs_disk_loss_comparison () =
  (* Rio with no fsync keeps everything; UFS-delayed with no fsync loses
     the tail. Same workload, same crash point. *)
  let steps = 120 in
  (* Rio side. *)
  let w = make_world ~protection:false ~seed:9 () in
  let config = { Memtest.default_config with Memtest.seed = 55; max_files = 12 } in
  let mt_rio = Memtest.create config in
  for _ = 1 to steps do
    Memtest.step mt_rio ~fs:w.fs ()
  done;
  ignore (crash_and_warm_reboot w);
  let _, rio_lost = Memtest.loss_against_fs mt_rio w.fs in
  (* UFS-delayed side. *)
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 9) in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Ufs_delayed in
  let mt_ufs = Memtest.create config in
  for _ = 1 to steps do
    Memtest.step mt_ufs ~fs ()
  done;
  Fs.crash fs;
  ignore (Fsck.run ~disk:(Kernel.disk kernel));
  let kernel2 =
    Kernel.boot_on_disk ~engine ~costs:Costs.default (Kernel.config_with_seed 9)
      ~disk:(Kernel.disk kernel)
  in
  let fs2 = Kernel.mount kernel2 ~policy:Fs.Ufs_delayed in
  let _, ufs_lost = Memtest.loss_against_fs mt_ufs fs2 in
  check Alcotest.int "rio loses nothing" 0 rio_lost;
  check Alcotest.bool "delayed-write system loses data" true (ufs_lost > 0)

let test_cold_boot_loses_rio_cache () =
  (* Sanity check of the control: WITHOUT warm reboot (power cycle), Rio's
     unwritten data is gone — memory really was the only copy. *)
  let w = make_world ~protection:false ~seed:11 () in
  Fs.write_file w.fs "/only-in-memory" (Bytes.of_string "precious");
  Fs.crash w.fs;
  (* Cold boot: fresh memory, no dump/restore. *)
  ignore (Fsck.run ~disk:(Kernel.disk w.kernel));
  let kernel2 =
    Kernel.boot_on_disk ~engine:w.engine ~costs:Costs.default (Kernel.config_with_seed 11)
      ~disk:(Kernel.disk w.kernel)
  in
  let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
  check Alcotest.bool "data lost without warm reboot" false (Fs.exists fs2 "/only-in-memory")

let test_campaign_full_cycle_all_systems () =
  (* One complete campaign run per system exercises the whole machinery. *)
  let cfg =
    {
      Campaign.default_config with
      Campaign.warmup_steps = 10;
      max_steps = 60;
      memtest_files = 8;
      memtest_file_bytes = 8 * 1024;
      background_andrew = 1;
      andrew_scale = 0.02;
    }
  in
  List.iter
    (fun system ->
      let o = Campaign.run_one cfg system Fault_type.Pointer ~seed:21 in
      (* Whatever happened, the run must terminate with a coherent outcome. *)
      if o.Campaign.discarded then
        check Alcotest.bool "discarded runs report no crash" true (o.Campaign.crash = None)
      else check Alcotest.bool "crashed runs carry a message" true (o.Campaign.crash_message <> None))
    Campaign.all_systems

(* Crash-point fuzzing: crash at an arbitrary point in the memTest stream
   (no injected faults) and demand a byte-perfect recovery every time. *)
let test_crash_point_fuzz () =
  let prng = Pattern.fill ~seed:0 ~len:0 in
  ignore prng;
  List.iter
    (fun (seed, steps) ->
      let w = make_world ~protection:(seed mod 2 = 0) ~seed () in
      let config =
        { Memtest.default_config with Memtest.seed = seed * 13; max_files = 14;
          max_file_bytes = 24 * 1024 }
      in
      let mt = Memtest.create config in
      for _ = 1 to steps do
        Memtest.step mt ~fs:w.fs ()
      done;
      ignore (crash_and_warm_reboot w);
      let replayed = Memtest.replay config ~steps:(Memtest.steps_done mt) in
      let exempt = Memtest.touched_by_next_step replayed in
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "seed %d, crash after %d steps" seed steps)
        []
        (List.map Memtest.discrepancy_to_string
           (Memtest.compare_with_fs replayed w.fs ~exempt)))
    [ (1, 3); (2, 17); (3, 55); (4, 89); (5, 140); (6, 211); (7, 1); (8, 333) ]

let test_simulated_time_flows () =
  let w = make_world ~protection:true () in
  let t0 = Engine.now w.engine in
  Fs.write_file w.fs "/timed" (Pattern.fill ~seed:1 ~len:100_000);
  let t1 = Engine.now w.engine in
  check Alcotest.bool "writes cost time" true (t1 > t0);
  ignore (crash_and_warm_reboot w);
  check Alcotest.bool "warm reboot costs time (memory dump!)" true
    (Engine.now w.engine - t1 > Rio_util.Units.sec 1)

let () =
  Alcotest.run "integration"
    [
      ( "warm_reboot",
        [
          Alcotest.test_case "every write survives" `Quick test_every_write_survives_crash;
          Alcotest.test_case "repeated crashes" `Slow test_repeated_crashes;
          Alcotest.test_case "crash mid-memtest" `Slow test_crash_mid_memtest;
          Alcotest.test_case "metadata-heavy crash" `Quick test_metadata_heavy_crash;
        ] );
      ( "comparisons",
        [
          Alcotest.test_case "rio vs delayed-write loss" `Slow test_rio_vs_disk_loss_comparison;
          Alcotest.test_case "cold boot control" `Quick test_cold_boot_loses_rio_cache;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "full cycle all systems" `Slow test_campaign_full_cycle_all_systems;
          Alcotest.test_case "time flows" `Quick test_simulated_time_flows;
          Alcotest.test_case "crash-point fuzz" `Slow test_crash_point_fuzz;
        ] );
    ]
