(** The Table 1 experiment: crash each system until [crashes_per_cell]
    crash tests have completed for every fault type, and count how many
    corrupted file data.

    Discarded runs (no crash inside the watchdog window) do not count
    toward a cell, exactly as in §3.1 — only completed crash tests do. *)

type cell = {
  crashes : int;  (** Completed crash tests (the paper's 50). *)
  attempts : int;  (** Including discarded runs. *)
  corruptions : int;  (** Runs with any detected file corruption. *)
  corrupt_paths : int;  (** Total files/directories affected. *)
  protection_traps : int;
  checksum_detections : int;
}

type results = {
  crashes_per_cell : int;
  cells : (Rio_fault.Campaign.system * Rio_fault.Fault_type.t * cell) list;
  unique_messages : int;  (** Distinct crash console messages across all runs. *)
  unique_consistency_messages : int;
      (** Distinct kernel consistency-check messages among them. *)
  metrics : Rio_obs.Trace.snapshot option;
      (** Aggregated per-trial metrics (counters summed, histogram
          observations concatenated, in seed order); [Some] when the run
          traced ([trace_dir]) or collected coverage telemetry
          ([coverage]). *)
}

val run :
  ?campaign:Rio_fault.Campaign.config ->
  ?systems:Rio_fault.Campaign.system list ->
  ?faults:Rio_fault.Fault_type.t list ->
  Run.config ->
  results
(** The {!Run.config} fields map as: [trials] = crash tests per cell (the
    paper's 50), [seed] = the campaign's base seed, and [domains],
    [trace_dir], [progress] as documented on {!Run.config} ([scale] is
    unused here). Each (system, fault) cell derives its seeds from the
    base seed alone, so cells are independent tasks: [domains] > 1 runs
    them on a domain pool and merges the results back in seed order,
    byte-identical to the serial run.

    [trace_dir] turns the flight recorder on: every trial runs with its
    own recorder, every non-discarded (crashed) trial writes a
    [sys__fault__seedN.jsonl] trace into the directory (created if
    missing), and [results.metrics] carries the aggregated metric
    snapshot. Trace files and metrics are byte-identical at any
    [domains]. Without it, tracing is fully off — no overhead — unless
    [coverage] is set, in which case each trial gets a metrics-only
    recorder (capacity 0: counters and histograms, no event ring) so the
    campaign still rolls telemetry up into [results.metrics]. *)

val message_census :
  ?config:Rio_fault.Campaign.config ->
  crashes:int ->
  seed_base:int ->
  unit ->
  (string * int) list
(** Crash until [crashes] crashes happen (cycling through all fault types on
    Rio without protection) and tally the distinct console messages, most
    frequent first — the paper's crash-diversity measurement (74 unique
    messages over 1950 crashes). *)

val cell : results -> Rio_fault.Campaign.system -> Rio_fault.Fault_type.t -> cell

val system_total : results -> Rio_fault.Campaign.system -> int * int
(** (corruptions, crashes) summed over fault types. *)

val corruption_rate : results -> Rio_fault.Campaign.system -> float

val mttf_years : corruption_rate:float -> float
(** §3.3's projection: a crash every two months, corruption only from
    crashes; MTTF = interval / rate. *)

val to_table : results -> Rio_util.Table.t
(** Rendered like the paper's Table 1 (blank cells for zero). *)

val comparison_table : results -> Rio_util.Table.t
(** Paper-vs-measured totals, rates, and MTTF projections. *)
