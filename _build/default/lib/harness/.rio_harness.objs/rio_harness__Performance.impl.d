lib/harness/performance.ml: Array List Paper_data Printf Rio_core Rio_fs Rio_kernel Rio_mem Rio_sim Rio_util Rio_workload
