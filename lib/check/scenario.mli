(** The scripted operations the checker crashes at every boundary of.

    Each scenario is a tiny three-act script against a freshly formatted
    Rio file system: [setup] builds the pre-state (always including an
    innocent-bystander file whose corruption any scenario flags), [op] is
    the operation under test — the only part run with the probe armed —
    and [check] audits the recovered file system and returns violation
    messages (empty = this crash point is safe).

    Checks encode the crash-consistency contract, not exact outcomes: a
    created file may exist or not, but its bytes must come from the write
    (or be zero); a renamed file must be reachable under exactly one of
    its names with intact contents; a Vista ledger must be entirely the
    old or entirely the new committed state with an empty undo log. *)

type t = {
  name : string;  (** Human description for reports. *)
  slug : string;  (** Stable id used by [--scenario] and test output. *)
  setup : Rio_fs.Fs.t -> unit;
  op : vista_hook:(Rio_txn.Vista.event -> unit) -> Rio_fs.Fs.t -> unit;
      (** The probed operation. [vista_hook] must be installed as the
          observer on any Vista store the scenario opens. *)
  check : Rio_fs.Fs.t -> string list;  (** Violations found post-recovery. *)
}

val all : t list
(** creat, write, rename, vista — in that (report) order. *)

val find : string -> t option
(** Look up by slug. *)

(** {1 Multi-task scenarios}

    Scripted interleaving checks: one body per task, each issuing its
    steps through {!Rio_task.Sched.syscall} with locking on (the safe
    protocol). The explorer runs them under several seeded schedules and
    crashes at every boundary of each; [m_check] must therefore be
    interleaving-independent — per-op atomicity contracts only, no
    assumptions about which task got how far. Kept out of {!all} so
    single-task campaigns are untouched; enabled by the explorer's
    [interleave] parameter. *)

type multi = {
  m_name : string;
  m_slug : string;
  m_setup : Rio_fs.Fs.t -> unit;
  m_tasks : (Rio_task.Sched.t -> Rio_task.Task.t -> Rio_fs.Fs.t -> unit) list;
  m_check : Rio_fs.Fs.t -> string list;
}

val multis : multi list
(** Currently just [two_task]: a chunked create racing a rename + mkdir. *)

val find_multi : string -> multi option
