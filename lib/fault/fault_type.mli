(** The thirteen fault types of §3.1, in the paper's three categories. *)

type t =
  (* bit flips *)
  | Kernel_text  (** Flip a bit in kernel code. *)
  | Kernel_heap  (** Flip a bit in the kernel heap. *)
  | Kernel_stack  (** Flip a bit in the kernel stack. *)
  (* low-level software faults: instruction mutations *)
  | Destination_reg  (** Change an instruction's destination register. *)
  | Source_reg  (** Change an instruction's source register. *)
  | Delete_branch  (** Remove a branch/jump. *)
  | Delete_instruction  (** Remove a random instruction. *)
  (* high-level software faults: programming-error mimics *)
  | Initialization  (** Delete a variable initialization at procedure entry. *)
  | Pointer
      (** Corrupt a pointer: delete the most recent instruction that
          computed a load/store base register. *)
  | Allocation  (** Premature free of an in-use allocation. *)
  | Copy_overrun  (** bcopy copies too many bytes. *)
  | Off_by_one  (** > becomes >=, < becomes <=, boundary constants shift. *)
  | Synchronization  (** Lock acquire/release silently skipped. *)

val all : t list
(** The 13, in Table 1's row order. *)

val id : t -> int
(** Stable 0-based index in [all]'s (Table 1's) order. Campaign seed
    derivation is built on these values, so they are frozen: new fault
    types must take fresh ids at the end, never renumber. *)

type category = Bit_flip | Low_level | High_level

val category : t -> category

val name : t -> string
(** Table 1's row label. *)

val of_name : string -> t option

val slug : t -> string
(** Lowercase, hyphenated identifier ("copy-overrun") — stable, used in
    trace output and trace filenames. *)

val of_slug : string -> t option

val category_name : category -> string
