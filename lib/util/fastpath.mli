(** The fast-data-path knob.

    The simulator has two implementations of its hottest paths: the fast
    one (pre-decoded dispatch, dirty-page sweeps, copy-on-write crash
    snapshots) and the straightforward reference one. Both must produce
    byte-identical tables, traces, and verdicts; this knob lets the
    harness run either side of that equation ([riobench --reference]).

    Set it once, before building any simulated worlds — the CPU and the
    crash probes consult it at creation time. *)

val set : bool -> unit

val on : unit -> bool
(** Defaults to [true]. *)
