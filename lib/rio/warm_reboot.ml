module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Disk = Rio_disk.Disk
module Engine = Rio_sim.Engine
module Fs = Rio_fs.Fs
module Fsck = Rio_fs.Fsck
module Ondisk = Rio_fs.Ondisk

type verify = {
  intact : int;
  mismatched : int;
  changing : int;
}

type report = {
  registry_entries : int;
  corrupt_registry_slots : int;
  swap_dumped_bytes : int;
  swap_truncated_bytes : int;
  meta_restored : int;
  meta_skipped : int;
  data_restored : int;
  data_failed : int;
  meta_verify : verify;
  data_verify : verify;
  fsck : Fsck.report;
  duration_us : int;
}

let capture mem = Phys_mem.dump mem

let read_superblock_opt disk =
  match Ondisk.read_superblock (Disk.peek disk ~sector:Ondisk.superblock_sector) with
  | sb -> Some sb
  | exception Rio_fs.Fs_types.Fs_error _ -> None

let dump_to_swap ~disk ~image =
  match read_superblock_opt disk with
  | None -> (0, Bytes.length image)
  | Some sb ->
    let swap_bytes = sb.Ondisk.swap_sectors * Disk.sector_bytes in
    let len = min (Bytes.length image) swap_bytes in
    (* Stream in 128 KB synchronous chunks — one long sequential write. *)
    let chunk = 128 * 1024 in
    let pos = ref 0 in
    while !pos < len do
      let n = min chunk (len - !pos) in
      Disk.write_sync disk
        ~sector:(sb.Ondisk.swap_start + (!pos / Disk.sector_bytes))
        (Bytes.sub image !pos n);
      pos := !pos + n
    done;
    (len, Bytes.length image - len)

let parse_registry ~image ~layout =
  Registry.parse_image ~image ~region:(Layout.region layout Layout.Registry)
    ~mem_bytes:(Bytes.length image)

let entry_image image (e : Registry.entry) =
  (* Read from the entry's current pointer: mid-shadow-update entries point
     at the consistent pre-image (§2.3). *)
  if e.Registry.paddr + e.Registry.size <= Bytes.length image then
    Some (Bytes.sub image e.Registry.paddr e.Registry.size)
  else None

let verify_entries ~image entries =
  List.fold_left
    (fun acc (e : Registry.entry) ->
      if e.Registry.changing then { acc with changing = acc.changing + 1 }
      else
        match entry_image image e with
        | None -> { acc with mismatched = acc.mismatched + 1 }
        | Some bytes ->
          let actual = Rio_util.Checksum.crc32 bytes ~pos:0 ~len:(Bytes.length bytes) in
          if actual = e.Registry.checksum then { acc with intact = acc.intact + 1 }
          else { acc with mismatched = acc.mismatched + 1 })
    { intact = 0; mismatched = 0; changing = 0 }
    entries

let split_entries entries =
  List.partition (fun (e : Registry.entry) -> e.Registry.kind = Registry.Meta_buffer) entries

let restore_metadata ~disk ~image entries =
  let sb = read_superblock_opt disk in
  let restored = ref 0 and skipped = ref 0 in
  List.iter
    (fun (e : Registry.entry) ->
      (* Metadata blkno is an absolute sector base; validate it against the
         device and keep it away from the superblock itself. *)
      let plausible =
        e.Registry.blkno > 0
        && e.Registry.blkno + Rio_fs.Fs_types.sectors_per_block <= Disk.capacity_sectors disk
        && (match sb with
           | Some sb -> e.Registry.blkno >= sb.Ondisk.ibitmap_start
           | None -> true)
      in
      match entry_image image e with
      | Some bytes when plausible ->
        Disk.write_sync disk ~sector:e.Registry.blkno bytes;
        incr restored
      | Some _ | None -> incr skipped)
    entries;
  (!restored, !skipped)

let restore_data ~fs ~image entries =
  let restored = ref 0 and failed = ref 0 in
  List.iter
    (fun (e : Registry.entry) ->
      match entry_image image e with
      | None -> incr failed
      | Some bytes ->
        (match Fs.write_by_ino fs ~ino:e.Registry.ino ~offset:e.Registry.offset bytes with
        | () -> incr restored
        | exception Rio_fs.Fs_types.Fs_error _ -> incr failed))
    entries;
  (!restored, !failed)

let perform ~mem ~disk ~layout ~engine ~reboot =
  let module Trace = Rio_obs.Trace in
  let obs = Engine.obs engine in
  let phase name f =
    if Trace.enabled obs then begin
      let start_us = Engine.now engine in
      let r = f () in
      Trace.emit obs Trace.Rio
        (Trace.Phase { name; start_us; end_us = Engine.now engine });
      r
    end
    else f ()
  in
  let t0 = Engine.now engine in
  let image = phase "warm-reboot: capture" (fun () -> capture mem) in
  let swap_dumped_bytes, swap_truncated_bytes =
    phase "warm-reboot: dump to swap" (fun () -> dump_to_swap ~disk ~image)
  in
  if Trace.enabled obs then
    Trace.emit obs Trace.Rio
      (Trace.Swap_dump { dumped = swap_dumped_bytes; truncated = swap_truncated_bytes });
  let parsed = phase "warm-reboot: parse registry" (fun () -> parse_registry ~image ~layout) in
  let meta_entries, data_entries = split_entries parsed.Registry.entries in
  let meta_verify, data_verify =
    phase "warm-reboot: verify checksums" (fun () ->
        (verify_entries ~image meta_entries, verify_entries ~image data_entries))
  in
  let meta_restored, meta_skipped =
    phase "warm-reboot: restore metadata" (fun () -> restore_metadata ~disk ~image meta_entries)
  in
  let fsck = phase "warm-reboot: fsck" (fun () -> Fsck.run ~disk) in
  let fs = phase "warm-reboot: reboot" (fun () -> reboot ()) in
  let data_restored, data_failed =
    phase "warm-reboot: restore data" (fun () ->
        if fsck.Fsck.unrecoverable then (0, List.length data_entries)
        else restore_data ~fs ~image data_entries)
  in
  {
    registry_entries = List.length parsed.Registry.entries;
    corrupt_registry_slots = parsed.Registry.corrupt_slots;
    swap_dumped_bytes;
    swap_truncated_bytes;
    meta_restored;
    meta_skipped;
    data_restored;
    data_failed;
    meta_verify;
    data_verify;
    fsck;
    duration_us = Engine.now engine - t0;
  }
