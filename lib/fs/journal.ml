module Disk = Rio_disk.Disk

(* Record layout: magic u32, seq u32, home-sector u32, len u32, payload,
   crc32 u32 — padded to whole sectors. *)

let record_magic = 0x4C4F4752 (* "LOGR" *)

type t = {
  disk : Disk.t;
  start_sector : int;
  sectors : int;
  mutable head : int; (* next free sector offset within the log *)
  mutable seq : int;
  mutable records : int;
  mutable bytes : int;
  mutable on_checkpoint : unit -> unit;
  mutable on_event : label:string -> unit;
  buffer : Buffer.t; (* group-commit staging *)
}

let group_commit_bytes = 64 * 1024

let create ~disk ~start_sector ~sectors =
  { disk; start_sector; sectors; head = 0; seq = 0; records = 0; bytes = 0;
    on_checkpoint = (fun () -> ()); on_event = (fun ~label:_ -> ());
    buffer = Buffer.create 4096 }

let set_on_checkpoint t f = t.on_checkpoint <- f

let set_on_event t f = t.on_event <- f

(* Group commit: push the staged records as one sequential write. The
   hand-off to the backend is an ordering point — a crash between staging
   and this write loses the whole group, so it is announced as a
   write-behind commit boundary. *)
let flush_group t =
  if Buffer.length t.buffer > 0 then begin
    let data = Buffer.to_bytes t.buffer in
    Buffer.clear t.buffer;
    let record_sectors = Bytes.length data / Disk.sector_bytes in
    if t.head + record_sectors > t.sectors then begin
      t.on_checkpoint ();
      t.head <- 0
    end;
    t.on_event
      ~label:
        (Printf.sprintf "wb-commit journal s%d x%d" (t.start_sector + t.head) record_sectors);
    Disk.write_async t.disk ~sector:(t.start_sector + t.head) data;
    t.head <- t.head + record_sectors
  end

let checkpoint t =
  flush_group t;
  t.on_checkpoint ();
  t.head <- 0;
  (* Invalidate stale records by bumping the sequence epoch and scrubbing the
     first sector so replay stops immediately. *)
  Disk.write_async t.disk ~sector:t.start_sector (Bytes.make Disk.sector_bytes '\000')

let encode_record ~seq ~sector payload =
  let len = Bytes.length payload in
  let body = 16 + len + 4 in
  let padded = (body + Disk.sector_bytes - 1) / Disk.sector_bytes * Disk.sector_bytes in
  let b = Bytes.make padded '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int record_magic);
  Bytes.set_int32_le b 4 (Int32.of_int seq);
  Bytes.set_int32_le b 8 (Int32.of_int sector);
  Bytes.set_int32_le b 12 (Int32.of_int len);
  Bytes.blit payload 0 b 16 len;
  let crc = Rio_util.Checksum.crc32 b ~pos:0 ~len:(16 + len) in
  Bytes.set_int32_le b (16 + len) (Int32.of_int crc);
  b

let append t ~sector payload =
  let record = encode_record ~seq:t.seq ~sector payload in
  if Bytes.length record > t.sectors * Disk.sector_bytes then
    Fs_types.err "journal: record larger than the whole log";
  Buffer.add_bytes t.buffer record;
  t.seq <- t.seq + 1;
  t.records <- t.records + 1;
  t.bytes <- t.bytes + Bytes.length record;
  if Buffer.length t.buffer >= group_commit_bytes then flush_group t

let records_logged t = t.records
let bytes_logged t = t.bytes

(* ---- world-template rewind ---- *)

type state = { ck_head : int; ck_seq : int; ck_records : int; ck_bytes : int; ck_buf : string }

let save t =
  { ck_head = t.head; ck_seq = t.seq; ck_records = t.records; ck_bytes = t.bytes;
    ck_buf = Buffer.contents t.buffer }

let restore t ck =
  t.head <- ck.ck_head;
  t.seq <- ck.ck_seq;
  t.records <- ck.ck_records;
  t.bytes <- ck.ck_bytes;
  Buffer.clear t.buffer;
  Buffer.add_string t.buffer ck.ck_buf

let replay ~disk ~start_sector ~sectors =
  let applied = ref 0 in
  let pos = ref 0 in
  let continue = ref true in
  while !continue && !pos < sectors do
    let header = Disk.peek disk ~sector:(start_sector + !pos) in
    let magic = Int32.to_int (Bytes.get_int32_le header 0) land 0xFFFF_FFFF in
    if magic <> record_magic then continue := false
    else begin
      let len = Int32.to_int (Bytes.get_int32_le header 12) land 0xFFFF_FFFF in
      let body = 16 + len + 4 in
      let record_sectors = (body + Disk.sector_bytes - 1) / Disk.sector_bytes in
      if !pos + record_sectors > sectors then continue := false
      else begin
        let record = Bytes.create (record_sectors * Disk.sector_bytes) in
        for i = 0 to record_sectors - 1 do
          let s = Disk.peek disk ~sector:(start_sector + !pos + i) in
          Bytes.blit s 0 record (i * Disk.sector_bytes) Disk.sector_bytes
        done;
        let stored_crc = Int32.to_int (Bytes.get_int32_le record (16 + len)) land 0xFFFF_FFFF in
        let crc = Rio_util.Checksum.crc32 record ~pos:0 ~len:(16 + len) in
        if stored_crc <> crc then continue := false
        else begin
          let home = Int32.to_int (Bytes.get_int32_le record 8) land 0xFFFF_FFFF in
          let payload = Bytes.sub record 16 len in
          let payload_sectors = (len + Disk.sector_bytes - 1) / Disk.sector_bytes in
          for i = 0 to payload_sectors - 1 do
            let chunk_len = min Disk.sector_bytes (len - (i * Disk.sector_bytes)) in
            let chunk = Bytes.make Disk.sector_bytes '\000' in
            Bytes.blit payload (i * Disk.sector_bytes) chunk 0 chunk_len;
            (* Partial trailing sector: merge with the existing contents so a
               512-byte-aligned home sector is not half-scrubbed. *)
            if chunk_len < Disk.sector_bytes then begin
              let existing = Disk.peek disk ~sector:(home + i) in
              Bytes.blit existing chunk_len chunk chunk_len (Disk.sector_bytes - chunk_len)
            end;
            Disk.poke disk ~sector:(home + i) chunk
          done;
          incr applied;
          pos := !pos + record_sectors
        end
      end
    end
  done;
  !applied
