type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.6g" f)

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> add_float b f
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        to_buffer b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\": ";
        to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let is_scalar = function
  | Null | Bool _ | Int _ | Float _ | Str _ -> true
  | Arr _ | Obj _ -> false

let pretty ?(indent = 2) v =
  let b = Buffer.create 1024 in
  let pad depth = Buffer.add_string b (String.make (depth * indent) ' ') in
  let rec go depth v =
    match v with
    | Null | Bool _ | Int _ | Float _ | Str _ -> to_buffer b v
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items when List.for_all is_scalar items -> to_buffer b v
    | Arr items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ---------------- parser ---------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let utf8_of_code b code =
    (* Encode a BMP code point (surrogates collapse to U+FFFD). *)
    let code = if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code in
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code ->
              pos := !pos + 4;
              utf8_of_code b code
            | None -> fail "bad \\u escape")
          | _ -> fail "unknown escape"));
        loop ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        advance ();
        Buffer.add_char b c;
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let consume_digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          saw := true;
          advance ();
          go ()
        | Some _ | None -> ()
      in
      go ();
      if not !saw then fail "expected digits"
    in
    if peek () = Some '-' then advance ();
    consume_digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      consume_digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | Some _ | None -> ());
      consume_digits ()
    | Some _ | None -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            more ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        more ();
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            more ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        more ();
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | Arr _ -> None

let to_list = function
  | Arr items -> items
  | Null | Bool _ | Int _ | Float _ | Str _ | Obj _ -> []
