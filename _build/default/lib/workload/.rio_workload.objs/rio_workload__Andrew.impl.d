lib/workload/andrew.ml: File_tree List Script
