(** A fixed-size domain pool for embarrassingly parallel campaign work.

    Every harness trial (one crash test, one Table 2 cell, one ablation
    point) builds its own engine, kernel, disk, and PRNG from a
    deterministic seed, so trials share no mutable state and can run on
    separate domains. The pool hands out chunks of an indexed task array
    to [domains] workers and writes each result back at its input index,
    so the merged output is always in input (seed) order — parallel runs
    are byte-identical to serial ones.

    No external dependencies: OCaml 5's [Domain], [Atomic], and [Mutex]
    only (domainslib is deliberately not used). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j] defaults to. *)

val map : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f items] applies [f] to every element, using up to
    [domains] worker domains (clamped to the task count), and returns the
    results in input order.

    [domains = 1] (the default) runs the plain sequential [Array.map] —
    today's serial code path, no domains spawned. [chunk] (default 1)
    controls how many consecutive tasks a worker claims at once; campaign
    trials are heavy, so fine-grained claiming is the right default.

    If any [f] raises, the first exception (in claim order) is re-raised
    in the calling domain with its original backtrace, after all workers
    have stopped; remaining unclaimed tasks are abandoned. *)

val map_list : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] for lists, preserving order. *)

val sink : ('a -> unit) -> 'a -> unit
(** [sink f] wraps an output callback (progress printing, accumulation
    into a list) in a fresh mutex so workers on different domains never
    interleave inside [f]. *)
