test/test_disk.ml: Alcotest Bytes Char Rio_disk Rio_sim String
