lib/workload/script.ml: Array Bytes Format List Rio_fs Rio_sim Rio_util
