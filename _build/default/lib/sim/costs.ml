type t = {
  syscall_overhead : Rio_util.Units.usec;
  cpu_byte_copy_ns : int;
  namei_cost : Rio_util.Units.usec;
  disk_seek_us : Rio_util.Units.usec;
  disk_rotation_us : Rio_util.Units.usec;
  disk_transfer_bytes_per_us : int;
  disk_sector_bytes : int;
  disk_track_sectors : int;
  protection_toggle_us_per_page : float;
  registry_update_us : float;
  checksum_byte_ns : int;
  page_copy_ns : int;
  code_patch_check_ns : int;
  update_interval : Rio_util.Units.usec;
}

let default =
  {
    syscall_overhead = 120;
    cpu_byte_copy_ns = 20; (* ~50 MB/s kernel bcopy of user data *)
    namei_cost = 40;
    disk_seek_us = 9_000;
    disk_rotation_us = 5_500; (* 5400 rpm, half rotation *)
    disk_transfer_bytes_per_us = 4; (* 4 MB/s media rate *)
    disk_sector_bytes = 512;
    disk_track_sectors = 64;
    protection_toggle_us_per_page = 1.0;
    registry_update_us = 0.5;
    checksum_byte_ns = 2; (* word-additive checksum, in-cache *)
    page_copy_ns = 3; (* in-cache page-to-page copy (shadowing) *)
    code_patch_check_ns = 4;
    update_interval = Rio_util.Units.sec 30;
  }

let fast_disk =
  {
    default with
    disk_seek_us = 4_000;
    disk_rotation_us = 2_000;
    disk_transfer_bytes_per_us = 150;
  }

let transfer_time t bytes =
  (bytes + t.disk_transfer_bytes_per_us - 1) / t.disk_transfer_bytes_per_us

let copy_time t bytes = bytes * t.cpu_byte_copy_ns / 1000

let checksum_time t bytes = bytes * t.checksum_byte_ns / 1000

let page_copy_time t bytes = bytes * t.page_copy_ns / 1000

let pp ppf t =
  Format.fprintf ppf
    "@[<v>syscall=%dus copy=%dns/B seek=%dus rot=%dus xfer=%dB/us update=%a@]" t.syscall_overhead
    t.cpu_byte_copy_ns t.disk_seek_us t.disk_rotation_us t.disk_transfer_bytes_per_us
    Rio_util.Units.pp_usec t.update_interval
