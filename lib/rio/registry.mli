(** The Rio registry (§2.2).

    "Instead of understanding and protecting all intermediate data
    structures, we keep and protect a separate area of memory ... that
    contains all information needed to find, identify, and restore files in
    memory. For each buffer in the file cache, the registry contains the
    physical memory address, file id (device number and inode number), file
    offset, and size."

    Entries are serialized into the registry region of simulated memory —
    they live there, not in OCaml, so kernel faults can corrupt them and
    Rio's protection must cover them. Each entry is 40 bytes per 8 KB page,
    matching the paper. The warm reboot parses entries back out of a raw
    memory image, defensively. *)

type kind = Meta_buffer | Data_buffer

type entry = {
  paddr : int;
      (** Where the buffer's current authoritative bytes live. During a
          shadow-paged metadata update this points at the shadow. *)
  home_paddr : int;  (** The buffer's permanent page (hash key). *)
  dev : int;
  ino : int;
  offset : int;  (** Byte offset of this buffer within the file. *)
  size : int;  (** Meaningful bytes in the buffer. *)
  blkno : int;  (** Disk block (data-area number, or sector base for metadata). *)
  kind : kind;
  changing : bool;  (** Mid-write: checksum cannot be trusted (§3.2). *)
  checksum : int;  (** CRC-32 of the buffer's first [size] bytes. *)
}

val entry_bytes : int
(** 40. *)

type t

val create : mem:Rio_mem.Phys_mem.t -> region:Rio_mem.Layout.region -> t
(** Manage entries within the registry region. Slots are zeroed. *)

val capacity : t -> int

val live_entries : t -> int

(** {1 Normal-operation updates}

    All of these serialize through to simulated memory immediately. *)

val register :
  t ->
  home_paddr:int ->
  dev:int ->
  ino:int ->
  offset:int ->
  size:int ->
  blkno:int ->
  kind:kind ->
  checksum:int ->
  unit
(** Add or update the entry for a page. Raises {!Rio_fs.Fs_types.Fs_error}
    if [dev] does not fit the slot's 16-bit field — truncating it would
    register the buffer under the wrong device. *)

val unregister : t -> home_paddr:int -> unit
(** Remove the entry for a page (no-op if absent). *)

val find : t -> home_paddr:int -> entry option

val set_changing : t -> home_paddr:int -> bool -> unit

val set_checksum : t -> home_paddr:int -> int -> unit

val set_closed : t -> home_paddr:int -> int -> unit
(** [set_closed t ~home_paddr c] records checksum [c] and clears the
    changing flag in one slot rewrite — the close-write commit. Final
    slot bytes are identical to [set_checksum] followed by
    [set_changing _ false]. *)

val redirect : t -> home_paddr:int -> paddr:int -> unit
(** Point the entry at a shadow page (or back) — the atomic flip of §2.3. *)

val iter : t -> (entry -> unit) -> unit
(** Live entries, in slot order. *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the host-side slot index and free list. The slot bytes live in
    simulated memory and rewind with the memory snapshot. *)

val restore : t -> checkpoint -> unit

(** {1 Warm-reboot parsing} *)

type parse_result = {
  entries : entry list;
  corrupt_slots : int;
      (** Slots that were neither free nor parseable — registry corruption. *)
}

val plausible : mem_bytes:int -> entry -> bool
(** Field-by-field validation of a parsed entry against the machine's
    geometry (page-aligned addresses in range, size within a page, [dev]
    within its 16-bit encoding, bounded ino/offset/blkno). Entries that
    fail are counted as corrupt slots by {!parse_image}. *)

val parse_image : image:bytes -> region:Rio_mem.Layout.region -> mem_bytes:int -> parse_result
(** Recover entries from a raw memory dump, validating every field against
    the machine's geometry with {!plausible}. *)

val parse_slice : slice:bytes -> region:Rio_mem.Layout.region -> mem_bytes:int -> parse_result
(** Like {!parse_image}, but [slice] holds just the registry region's
    bytes (slot 0 at offset 0) rather than a full-memory image — so the
    fast warm reboot can parse from a copy-on-write snapshot without
    materializing the 16 MB dump. [mem_bytes] remains the machine's
    memory size, for {!plausible}. *)
