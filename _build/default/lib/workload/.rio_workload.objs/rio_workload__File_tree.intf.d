lib/workload/file_tree.mli: Script
