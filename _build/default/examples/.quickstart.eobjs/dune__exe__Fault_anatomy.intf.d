examples/fault_anatomy.mli:
