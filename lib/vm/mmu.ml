module Phys_mem = Rio_mem.Phys_mem
module Trace = Rio_obs.Trace

type t = {
  page_table : Page_table.t;
  tlb : Tlb.t;
  obs : Trace.t;
  c_traps : Trace.counter;
  mutable kseg_through_tlb : bool;
  mutable protection_faults : int;
  mutable unmapped_faults : int;
}

type access = Read | Write | Exec

type fault =
  | Unmapped of int
  | Write_protected of int

type result = Ok of Phys_mem.paddr | Fault of fault

let kseg_base = 1 lsl 40

let kseg_addr paddr = kseg_base + paddr

let is_kseg vaddr = vaddr >= kseg_base

let create ?(obs = Trace.null) ~mem_pages ~tlb_entries () =
  {
    page_table = Page_table.create ~pages:mem_pages;
    tlb = Tlb.create ~entries:tlb_entries;
    obs;
    c_traps = Trace.counter obs "vm.protection_traps";
    kseg_through_tlb = false;
    protection_faults = 0;
    unmapped_faults = 0;
  }

let page_table t = t.page_table
let tlb t = t.tlb
let kseg_through_tlb t = t.kseg_through_tlb
let set_kseg_through_tlb t b = t.kseg_through_tlb <- b

let fault_unmapped t vaddr =
  t.unmapped_faults <- t.unmapped_faults + 1;
  Fault (Unmapped vaddr)

let fault_protected t vaddr =
  t.protection_faults <- t.protection_faults + 1;
  if Trace.enabled t.obs then begin
    Trace.incr t.c_traps;
    (* In the mapped (and KSEG-through-TLB) identity layout, the faulting
       virtual address is the physical address. *)
    Trace.emit t.obs Trace.Vm (Trace.Protection_trap { paddr = vaddr })
  end;
  Fault (Write_protected vaddr)

let translate_mapped t ~vaddr ~access =
  if vaddr < 0 then fault_unmapped t vaddr
  else begin
    let vpn = vaddr / Phys_mem.page_size in
    match Page_table.lookup t.page_table ~vpn with
    | None -> fault_unmapped t vaddr
    | Some pte ->
      if not pte.Pte.valid then fault_unmapped t vaddr
      else begin
        Tlb.access t.tlb ~vpn pte;
        match access with
        | Write when not pte.Pte.writable -> fault_protected t vaddr
        | Read | Write | Exec ->
          Ok (Phys_mem.page_base pte.Pte.pfn + (vaddr mod Phys_mem.page_size))
      end
  end

let translate t ~vaddr ~access =
  if is_kseg vaddr then begin
    let paddr = vaddr - kseg_base in
    if t.kseg_through_tlb then translate_mapped t ~vaddr:paddr ~access
    else if paddr / Phys_mem.page_size < Page_table.pages t.page_table then Ok paddr
    else fault_unmapped t vaddr
  end
  else translate_mapped t ~vaddr ~access

let protection_faults t = t.protection_faults
let unmapped_faults t = t.unmapped_faults

let reset_stats t =
  t.protection_faults <- 0;
  t.unmapped_faults <- 0;
  Tlb.reset_stats t.tlb

let pp_fault ppf = function
  | Unmapped a -> Format.fprintf ppf "unmapped address %#x" a
  | Write_protected a -> Format.fprintf ppf "write to protected address %#x" a
