module Json = Rio_util.Json

type outcome = Survived | Violated | Unreached

let outcome_name = function
  | Survived -> "survived"
  | Violated -> "violated"
  | Unreached -> "unreached"

let label_class l =
  match String.index_opt l ' ' with Some i -> String.sub l 0 i | None -> l

(* Power-of-two ordinal buckets: 0, 1, 2-3, 4-7, ..., 128-255, 256+. *)
let buckets = 10

let bucket_of_ordinal r =
  if r <= 0 then 0
  else begin
    let b = ref 0 and v = ref r in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min !b (buckets - 1)
  end

let bucket_name b =
  if b <= 0 then "0"
  else if b = 1 then "1"
  else begin
    let lo = 1 lsl (b - 1) in
    if b = buckets - 1 then Printf.sprintf "%d+" lo
    else Printf.sprintf "%d-%d" lo ((1 lsl b) - 1)
  end

type tally = { mutable survived : int; mutable violated : int; mutable unreached : int }

let tally_total y = y.survived + y.violated + y.unreached

type t = {
  mutable schedules : int;
  mutable boundaries : int;  (* enumerated across all noted schedules *)
  mutable trials : int;  (* crash trials recorded *)
  mutable shrink : int;
  enumerated : (string, int) Hashtbl.t;  (* class -> boundaries enumerated *)
  (* Keyed (class, op kind, task role, ordinal bucket). The task axis
     says who the crash happened to: "solo" (single-task campaigns),
     "crasher" (the task whose op tripped the boundary), "bystander"
     (another task with an op in flight at someone else's crash). *)
  cells : (string * string * string * int, tally) Hashtbl.t;
}

let create () =
  {
    schedules = 0;
    boundaries = 0;
    trials = 0;
    shrink = 0;
    enumerated = Hashtbl.create 32;
    cells = Hashtbl.create 64;
  }

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let note_schedule t ~labels =
  t.schedules <- t.schedules + 1;
  List.iter
    (fun l ->
      t.boundaries <- t.boundaries + 1;
      bump t.enumerated (label_class l) 1)
    labels

let cell_tally t key =
  match Hashtbl.find_opt t.cells key with
  | Some y -> y
  | None ->
    let y = { survived = 0; violated = 0; unreached = 0 } in
    Hashtbl.replace t.cells key y;
    y

let record t ?(task = "solo") ~cls ~op ~ordinal outcome =
  t.trials <- t.trials + 1;
  let y = cell_tally t (cls, op, task, bucket_of_ordinal ordinal) in
  match outcome with
  | Survived -> y.survived <- y.survived + 1
  | Violated -> y.violated <- y.violated + 1
  | Unreached -> y.unreached <- y.unreached + 1

let add_shrink t n = t.shrink <- t.shrink + n

let merge ~into src =
  into.schedules <- into.schedules + src.schedules;
  into.boundaries <- into.boundaries + src.boundaries;
  into.trials <- into.trials + src.trials;
  into.shrink <- into.shrink + src.shrink;
  Hashtbl.iter (fun cls n -> bump into.enumerated cls n) src.enumerated;
  Hashtbl.iter
    (fun key y ->
      let d = cell_tally into key in
      d.survived <- d.survived + y.survived;
      d.violated <- d.violated + y.violated;
      d.unreached <- d.unreached + y.unreached)
    src.cells

let merge_list ts =
  let acc = create () in
  List.iter (fun t -> merge ~into:acc t) ts;
  acc

(* ---------------- reading ---------------- *)

let schedules t = t.schedules
let crash_trials t = t.trials
let boundaries_enumerated t = t.boundaries
let shrink_attempts t = t.shrink

let fold_cells t f acc = Hashtbl.fold (fun key y acc -> f key y acc) t.cells acc

let violations t = fold_cells t (fun _ y acc -> acc + y.violated) 0
let unreached t = fold_cells t (fun _ y acc -> acc + y.unreached) 0

let classes t =
  let seen = Hashtbl.create 32 in
  Hashtbl.iter (fun cls _ -> Hashtbl.replace seen cls ()) t.enumerated;
  Hashtbl.iter (fun (cls, _, _, _) _ -> Hashtbl.replace seen cls ()) t.cells;
  List.sort compare (Hashtbl.fold (fun cls () acc -> cls :: acc) seen [])

let ops t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter (fun (_, op, _, _) _ -> Hashtbl.replace seen op ()) t.cells;
  List.sort compare (Hashtbl.fold (fun op () acc -> op :: acc) seen [])

let tasks t =
  let seen = Hashtbl.create 4 in
  Hashtbl.iter (fun (_, _, task, _) _ -> Hashtbl.replace seen task ()) t.cells;
  List.sort compare (Hashtbl.fold (fun task () acc -> task :: acc) seen [])

let enumerated_of_class t cls =
  Option.value ~default:0 (Hashtbl.find_opt t.enumerated cls)

let crashed_of_class t cls =
  fold_cells t (fun (c, _, _, _) y acc -> if c = cls then acc + tally_total y else acc) 0

let violated_of_class t cls =
  fold_cells t (fun (c, _, _, _) y acc -> if c = cls then acc + y.violated else acc) 0

let cell_count t ~cls ~op ~bucket =
  fold_cells t
    (fun (c, o, _, b) y acc ->
      if c = cls && o = op && b = bucket then acc + tally_total y else acc)
    0

let cell_by_op t ~cls ~op =
  fold_cells t
    (fun (c, o, _, _) y acc -> if c = cls && o = op then acc + tally_total y else acc)
    0

let cell_by_bucket t ~cls ~bucket =
  fold_cells t
    (fun (c, _, _, b) y acc -> if c = cls && b = bucket then acc + tally_total y else acc)
    0

let cell_by_task t ~cls ~task =
  fold_cells t
    (fun (c, _, k, _) y acc -> if c = cls && k = task then acc + tally_total y else acc)
    0

let unhit_classes t =
  List.filter (fun cls -> crashed_of_class t cls = 0) (classes t)

(* ---------------- json ---------------- *)

let sorted_cells t =
  List.sort
    (fun ((a : string * string * string * int), _) (b, _) -> compare a b)
    (fold_cells t (fun key y acc -> (key, y) :: acc) [])

let to_json t =
  let class_json cls =
    Json.Obj
      [
        ("class", Json.Str cls);
        ("enumerated", Json.Int (enumerated_of_class t cls));
        ("crashed", Json.Int (crashed_of_class t cls));
        ("violated", Json.Int (violated_of_class t cls));
      ]
  in
  let cell_json ((cls, op, task, bucket), y) =
    Json.Obj
      [
        ("class", Json.Str cls);
        ("op", Json.Str op);
        ("task", Json.Str task);
        ("bucket", Json.Str (bucket_name bucket));
        ("survived", Json.Int y.survived);
        ("violated", Json.Int y.violated);
        ("unreached", Json.Int y.unreached);
      ]
  in
  Json.Obj
    [
      ("schedules", Json.Int t.schedules);
      ("boundaries_enumerated", Json.Int t.boundaries);
      ("crash_trials", Json.Int t.trials);
      ("violations", Json.Int (violations t));
      ("unreached", Json.Int (unreached t));
      ("shrink_attempts", Json.Int t.shrink);
      ("classes", Json.Arr (List.map class_json (classes t)));
      ("cells", Json.Arr (List.map cell_json (sorted_cells t)));
      ("unhit_classes", Json.Arr (List.map (fun c -> Json.Str c) (unhit_classes t)));
    ]
