type t = {
  mutable note_map :
    paddr:int -> blkno:int -> owner:Fs_types.owner -> valid:int -> unit;
  mutable note_unmap : paddr:int -> unit;
  mutable open_write : paddr:int -> unit;
  mutable close_write : paddr:int -> unit;
  mutable metadata_update : paddr:int -> (unit -> unit) -> unit;
  mutable copy_in : bytes -> int -> paddr:int -> len:int -> unit;
  mutable copy_out : paddr:int -> bytes -> int -> len:int -> unit;
  mutable wb_event : label:string -> unit;
}

let defaults ~mem =
  {
    note_map = (fun ~paddr:_ ~blkno:_ ~owner:_ ~valid:_ -> ());
    note_unmap = (fun ~paddr:_ -> ());
    open_write = (fun ~paddr:_ -> ());
    close_write = (fun ~paddr:_ -> ());
    metadata_update = (fun ~paddr:_ f -> f ());
    copy_in =
      (fun src srcpos ~paddr ~len ->
        Rio_mem.Phys_mem.blit_from mem paddr src ~pos:srcpos ~len);
    copy_out =
      (fun ~paddr dst dstpos ~len ->
        Rio_mem.Phys_mem.blit_into mem paddr dst ~pos:dstpos ~len);
    wb_event = (fun ~label:_ -> ());
  }
