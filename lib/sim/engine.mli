(** Discrete-event simulation engine.

    The clock counts microseconds of simulated time. Workload code runs
    synchronously and charges elapsed time with [advance_by]; timed callbacks
    (the 30-second update daemon, asynchronous disk completions, the fault
    watchdog) are scheduled with [schedule_*] and fire whenever the clock
    passes their deadline. *)

type t

type handle = Event_queue.handle

val create : ?obs:Rio_obs.Trace.t -> unit -> t
(** [obs] defaults to {!Rio_obs.Trace.null} (tracing off, zero overhead).
    When a live recorder is supplied, the engine installs its clock as the
    recorder's time base and emits dispatch spans and sampled clock-advance
    counters. *)

val obs : t -> Rio_obs.Trace.t
(** The recorder wired in at {!create}; {!Rio_obs.Trace.null} when off. *)

val now : t -> Rio_util.Units.usec
(** Current simulated time. *)

val schedule_at : t -> time:Rio_util.Units.usec -> (t -> unit) -> handle
(** Run the callback when the clock reaches [time]. Scheduling in the past
    fires at the current time. *)

val schedule_after : t -> delay:Rio_util.Units.usec -> (t -> unit) -> handle

val cancel : t -> handle -> unit

val advance_by : t -> Rio_util.Units.usec -> unit
(** Move the clock forward, firing any events that become due (in timestamp
    order, each seeing the clock set to its own due time). *)

val advance_to : t -> Rio_util.Units.usec -> unit
(** Like [advance_by] with an absolute target; no-op if in the past. *)

val run_next : t -> bool
(** Jump the clock to the next pending event and fire it. Returns [false] if
    no event is pending. *)

val run_until_idle : t -> unit
(** Fire all pending events in order, jumping the clock along. *)

val pending : t -> int
(** Number of live scheduled events. *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Remember the current clock (take it with an empty event queue — the
    restore cannot replay discarded callbacks, only drop them). *)

val restore : t -> checkpoint -> unit
(** Rewind the clock to the checkpoint and cancel every pending event. *)
