(* Tests for the assembler and the synthetic kernel-routine corpus: each
   routine is executed on the interpreted machine and checked functionally. *)

module Asm = Rio_kasm.Asm
module Kprogs = Rio_kasm.Kprogs
module Isa = Rio_cpu.Isa
module Machine = Rio_cpu.Machine
module Mmu = Rio_vm.Mmu
module Phys_mem = Rio_mem.Phys_mem

let check = Alcotest.check

(* ---------------- assembler ---------------- *)

let test_forward_label () =
  let a = Asm.create () in
  let skip = Asm.fresh_label a "skip" in
  Asm.jmp a skip;
  Asm.emit a Isa.Halt;
  Asm.bind a skip;
  Asm.emit a Isa.Nop;
  let program = Asm.assemble a ~origin:0 in
  check Alcotest.int "three words" 3 (Asm.instruction_count program);
  check
    (Alcotest.option Alcotest.string)
    "forward jump resolved" (Some "jmp 2")
    (Option.map Isa.to_string
       (Isa.decode (Int32.to_int (Bytes.get_int32_le program.Asm.code 0) land 0xFFFF_FFFF)))

let test_backward_label () =
  let a = Asm.create () in
  let top = Asm.fresh_label a "top" in
  Asm.bind a top;
  Asm.emit a Isa.Nop;
  Asm.jmp a top;
  let program = Asm.assemble a ~origin:0 in
  check
    (Alcotest.option Alcotest.string)
    "backward jump" (Some "jmp -1")
    (Option.map Isa.to_string
       (Isa.decode (Int32.to_int (Bytes.get_int32_le program.Asm.code 4) land 0xFFFF_FFFF)))

let test_unbound_label () =
  let a = Asm.create () in
  let dangling = Asm.fresh_label a "dangling" in
  Asm.jmp a dangling;
  Alcotest.check_raises "unbound label" (Failure "Asm: unbound label dangling") (fun () ->
      ignore (Asm.assemble a ~origin:0))

let test_double_bind () =
  let a = Asm.create () in
  let l = Asm.fresh_label a "l" in
  Asm.bind a l;
  Alcotest.check_raises "double bind" (Failure "Asm: label l bound twice") (fun () -> Asm.bind a l)

let test_li_small_and_large () =
  let a = Asm.create () in
  Asm.li a 1 42;
  Asm.li a 2 0x12345678;
  Asm.li a 3 (-7);
  Asm.halt a;
  let program = Asm.assemble a ~origin:0 in
  let mem = Phys_mem.create ~bytes_total:8192 in
  Asm.load program mem;
  let mmu = Mmu.create ~mem_pages:1 ~tlb_entries:4 () in
  let m = Machine.create ~mem ~mmu in
  ignore (Machine.run m ~max_instructions:100);
  check Alcotest.int "small" 42 (Machine.reg m 1);
  check Alcotest.int "32-bit" 0x12345678 (Machine.reg m 2);
  check Alcotest.int "negative" (-7) (Machine.reg m 3)

let test_symbols () =
  let a = Asm.create () in
  Asm.global a "start";
  Asm.halt a;
  Asm.global a "second";
  Asm.halt a;
  let program = Asm.assemble a ~origin:4096 in
  check Alcotest.int "first symbol" 4096 (Asm.symbol program "start");
  check Alcotest.int "second symbol" 4100 (Asm.symbol program "second")

(* ---------------- kprogs: run each routine ---------------- *)

let setup () =
  let mem = Phys_mem.create ~bytes_total:(64 * 8192) in
  let kprogs = Kprogs.build ~origin:0 in
  Asm.load kprogs.Kprogs.program mem;
  let mmu = Mmu.create ~mem_pages:(Phys_mem.page_count mem) ~tlb_entries:16 () in
  let m = Machine.create ~mem ~mmu in
  (mem, m, kprogs)

(* Call convention mirror of the kernel dispatcher. *)
let call m kprogs name args =
  Machine.resume m;
  List.iteri (fun i v -> Machine.set_reg m (i + 1) v) args;
  Machine.set_reg m Machine.sp_reg (63 * 8192);
  Machine.set_reg m Machine.ra_reg kprogs.Kprogs.halt_pad;
  Machine.set_pc m (Kprogs.find kprogs name).Kprogs.entry;
  match Machine.run m ~max_instructions:100_000 with
  | Machine.Halted -> Ok (Machine.reg m 1)
  | Machine.Trapped t -> Error t
  | Machine.Running -> Alcotest.fail "routine hung"

let expect_ok = function
  | Ok v -> v
  | Error t -> Alcotest.failf "unexpected trap: %s" (Machine.trap_to_string t)

let heap_base = 20 * 8192

let test_bcopy () =
  let mem, m, kprogs = setup () in
  let src = heap_base and dst = heap_base + 4096 in
  Phys_mem.blit_in mem src (Bytes.of_string "rio file cache");
  ignore (expect_ok (call m kprogs "k_bcopy" [ src; dst; 14 ]));
  check Alcotest.bytes "copied" (Bytes.of_string "rio file cache")
    (Phys_mem.blit_out mem dst ~len:14)

let test_bcopy_null_asserts () =
  let _, m, kprogs = setup () in
  match call m kprogs "k_bcopy" [ 0; heap_base; 4 ] with
  | Error (Machine.Consistency_panic _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected consistency panic on null source"

let test_word_copy () =
  let mem, m, kprogs = setup () in
  let src = heap_base and dst = heap_base + 4096 in
  Phys_mem.write_u64 mem src 0xDEAD;
  Phys_mem.write_u64 mem (src + 8) 0xBEEF;
  ignore (expect_ok (call m kprogs "k_word_copy" [ src; dst; 2 ]));
  check Alcotest.int "word 0" 0xDEAD (Phys_mem.read_u64 mem dst);
  check Alcotest.int "word 1" 0xBEEF (Phys_mem.read_u64 mem (dst + 8))

let test_bzero () =
  let mem, m, kprogs = setup () in
  Phys_mem.fill mem heap_base ~len:64 'x';
  ignore (expect_ok (call m kprogs "k_bzero" [ heap_base; 32 ]));
  check Alcotest.int "zeroed" 0 (Phys_mem.read_u8 mem (heap_base + 31));
  check Alcotest.int "rest untouched" (Char.code 'x') (Phys_mem.read_u8 mem (heap_base + 32))

let test_checksum () =
  let mem, m, kprogs = setup () in
  Phys_mem.write_u8 mem heap_base 10;
  Phys_mem.write_u8 mem (heap_base + 1) 20;
  Phys_mem.write_u8 mem (heap_base + 2) 12;
  let sum = expect_ok (call m kprogs "k_checksum" [ heap_base; 3 ]) in
  check Alcotest.int "additive checksum" 42 sum

let test_list_insert_remove () =
  let mem, m, kprogs = setup () in
  let head = heap_base in
  let n1 = heap_base + 64 and n2 = heap_base + 128 in
  Phys_mem.write_u64 mem head 0;
  ignore (expect_ok (call m kprogs "k_list_insert" [ head; n1 ]));
  ignore (expect_ok (call m kprogs "k_list_insert" [ head; n2 ]));
  check Alcotest.int "head is n2" n2 (Phys_mem.read_u64 mem head);
  let popped = expect_ok (call m kprogs "k_list_remove" [ head ]) in
  check Alcotest.int "LIFO pop" n2 popped;
  check Alcotest.int "head back to n1" n1 (Phys_mem.read_u64 mem head)

let test_list_remove_empty_panics () =
  let mem, m, kprogs = setup () in
  Phys_mem.write_u64 mem heap_base 0;
  match call m kprogs "k_list_remove" [ heap_base ] with
  | Error (Machine.Consistency_panic 1) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected 'free list head is null' panic"

let test_list_double_insert_panics () =
  let mem, m, kprogs = setup () in
  let head = heap_base and n1 = heap_base + 64 in
  Phys_mem.write_u64 mem head 0;
  ignore (expect_ok (call m kprogs "k_list_insert" [ head; n1 ]));
  match call m kprogs "k_list_insert" [ head; n1 ] with
  | Error (Machine.Consistency_panic _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected double-insert panic"

let test_bitmap_alloc () =
  let mem, m, kprogs = setup () in
  let bm = heap_base in
  Phys_mem.fill mem bm ~len:8 '\001';
  Phys_mem.write_u8 mem (bm + 5) 0;
  let idx = expect_ok (call m kprogs "k_bitmap_alloc" [ bm; 8 ]) in
  check Alcotest.int "first free slot" 5 idx;
  check Alcotest.int "claimed" 1 (Phys_mem.read_u8 mem (bm + 5));
  let full = expect_ok (call m kprogs "k_bitmap_alloc" [ bm; 8 ]) in
  check Alcotest.int "full returns -1" (-1) full

let test_locks () =
  let mem, m, kprogs = setup () in
  let lock = heap_base in
  ignore (expect_ok (call m kprogs "k_lock_acquire" [ lock ]));
  check Alcotest.int "held" 1 (Phys_mem.read_u8 mem lock);
  ignore (expect_ok (call m kprogs "k_lock_release" [ lock ]));
  check Alcotest.int "released" 0 (Phys_mem.read_u8 mem lock)

let test_release_unheld_panics () =
  let mem, m, kprogs = setup () in
  Phys_mem.write_u8 mem heap_base 0;
  match call m kprogs "k_lock_release" [ heap_base ] with
  | Error (Machine.Consistency_panic 6) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected release-unheld panic"

let test_lock_garbage_panics () =
  let mem, m, kprogs = setup () in
  Phys_mem.write_u8 mem heap_base 77;
  match call m kprogs "k_lock_acquire" [ heap_base ] with
  | Error (Machine.Consistency_panic 5) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected lock-range panic"

let test_counter () =
  let mem, m, kprogs = setup () in
  Phys_mem.write_u64 mem heap_base 41;
  ignore (expect_ok (call m kprogs "k_counter_bump" [ heap_base; 1000 ]));
  check Alcotest.int "incremented" 42 (Phys_mem.read_u64 mem heap_base)

let test_counter_bound_panics () =
  let mem, m, kprogs = setup () in
  Phys_mem.write_u64 mem heap_base 1000;
  match call m kprogs "k_counter_bump" [ heap_base; 1000 ] with
  | Error (Machine.Consistency_panic 7) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected counter-bound panic"

let test_ptr_chase () =
  let mem, m, kprogs = setup () in
  let n1 = heap_base and n2 = heap_base + 64 and n3 = heap_base + 128 in
  Phys_mem.write_u64 mem n1 n2;
  Phys_mem.write_u64 mem n2 n3;
  Phys_mem.write_u64 mem n3 0;
  ignore (expect_ok (call m kprogs "k_ptr_chase" [ n1; 10 ]))

let test_ptr_chase_cycle_panics () =
  let mem, m, kprogs = setup () in
  let n1 = heap_base and n2 = heap_base + 64 in
  Phys_mem.write_u64 mem n1 n2;
  Phys_mem.write_u64 mem n2 n1;
  match call m kprogs "k_ptr_chase" [ n1; 10 ] with
  | Error (Machine.Consistency_panic 8) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected chase-budget panic"

let test_queue_put_wraps () =
  let mem, m, kprogs = setup () in
  let ring = heap_base and idx = heap_base + 1024 in
  Phys_mem.write_u64 mem idx 63;
  ignore (expect_ok (call m kprogs "k_queue_put" [ ring; idx; 777; 64 ]));
  check Alcotest.int "stored at slot 63" 777 (Phys_mem.read_u64 mem (ring + (63 * 8)));
  check Alcotest.int "index wrapped" 0 (Phys_mem.read_u64 mem idx)

let test_queue_bad_index_panics () =
  let mem, m, kprogs = setup () in
  let ring = heap_base and idx = heap_base + 1024 in
  Phys_mem.write_u64 mem idx 99;
  match call m kprogs "k_queue_put" [ ring; idx; 777; 64 ] with
  | Error (Machine.Consistency_panic 9) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected ring-range panic"

let test_mem_scan () =
  let _, m, kprogs = setup () in
  ignore (expect_ok (call m kprogs "k_mem_scan" [ heap_base; 512 ]))

let test_compound () =
  let mem, m, kprogs = setup () in
  let src = heap_base and dst = heap_base + 4096 in
  Phys_mem.write_u8 mem src 5;
  Phys_mem.write_u8 mem (src + 1) 6;
  let sum = expect_ok (call m kprogs "k_compound" [ src; dst; 2 ]) in
  check Alcotest.int "copy then checksum" 11 sum;
  check Alcotest.int "copied" 5 (Phys_mem.read_u8 mem dst)

let test_dlist_insert () =
  let mem, m, kprogs = setup () in
  let head = heap_base and n1 = heap_base + 64 and n2 = heap_base + 128 in
  Phys_mem.write_u64 mem head 0;
  ignore (expect_ok (call m kprogs "k_dlist_insert" [ head; n1 ]));
  check Alcotest.int "head -> n1" n1 (Phys_mem.read_u64 mem head);
  check Alcotest.int "n1.prev = anchor" head (Phys_mem.read_u64 mem (n1 + 8));
  ignore (expect_ok (call m kprogs "k_dlist_insert" [ head; n2 ]));
  check Alcotest.int "head -> n2" n2 (Phys_mem.read_u64 mem head);
  check Alcotest.int "n2.next = n1" n1 (Phys_mem.read_u64 mem n2);
  check Alcotest.int "n1.prev = n2" n2 (Phys_mem.read_u64 mem (n1 + 8))

let test_dlist_bad_back_pointer_panics () =
  let mem, m, kprogs = setup () in
  let head = heap_base and n1 = heap_base + 64 and n2 = heap_base + 128 in
  Phys_mem.write_u64 mem head 0;
  ignore (expect_ok (call m kprogs "k_dlist_insert" [ head; n1 ]));
  (* Corrupt n1's back pointer: the next insert's consistency check fires. *)
  Phys_mem.write_u64 mem (n1 + 8) 0xBAD;
  match call m kprogs "k_dlist_insert" [ head; n2 ] with
  | Error (Machine.Consistency_panic 18) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected bad-back-pointer panic"

let test_hash_insert () =
  let mem, m, kprogs = setup () in
  let table = heap_base in
  Phys_mem.fill mem table ~len:(64 * 8) '\000';
  let key = heap_base + 4096 in
  ignore (expect_ok (call m kprogs "k_hash_insert" [ table; key; 64 ]));
  let bucket = key land 63 in
  check Alcotest.int "chained into its bucket" key (Phys_mem.read_u64 mem (table + (bucket * 8)))

let test_message_texts () =
  check Alcotest.bool "known message" true (Kprogs.message_text 1 = "free list head is null");
  check Alcotest.bool "unknown message" true (String.length (Kprogs.message_text 9999) > 0);
  check Alcotest.bool "plenty of distinct checks" true (Kprogs.message_count >= 15)

let test_all_routines_present () =
  let _, _, kprogs = setup () in
  List.iter
    (fun name -> ignore (Kprogs.find kprogs name))
    [
      "k_bcopy"; "k_word_copy"; "k_bzero"; "k_checksum"; "k_list_insert"; "k_list_remove";
      "k_bitmap_alloc"; "k_lock_acquire"; "k_lock_release"; "k_counter_bump"; "k_ptr_chase";
      "k_queue_put"; "k_mem_scan"; "k_compound"; "k_dlist_insert"; "k_hash_insert";
    ]

let () =
  Alcotest.run "rio_kasm"
    [
      ( "asm",
        [
          Alcotest.test_case "forward label" `Quick test_forward_label;
          Alcotest.test_case "backward label" `Quick test_backward_label;
          Alcotest.test_case "unbound label" `Quick test_unbound_label;
          Alcotest.test_case "double bind" `Quick test_double_bind;
          Alcotest.test_case "li immediates" `Quick test_li_small_and_large;
          Alcotest.test_case "symbols" `Quick test_symbols;
        ] );
      ( "kprogs",
        [
          Alcotest.test_case "bcopy" `Quick test_bcopy;
          Alcotest.test_case "bcopy null panics" `Quick test_bcopy_null_asserts;
          Alcotest.test_case "word copy" `Quick test_word_copy;
          Alcotest.test_case "bzero" `Quick test_bzero;
          Alcotest.test_case "checksum" `Quick test_checksum;
          Alcotest.test_case "list insert/remove" `Quick test_list_insert_remove;
          Alcotest.test_case "list remove empty panics" `Quick test_list_remove_empty_panics;
          Alcotest.test_case "double insert panics" `Quick test_list_double_insert_panics;
          Alcotest.test_case "bitmap alloc" `Quick test_bitmap_alloc;
          Alcotest.test_case "locks" `Quick test_locks;
          Alcotest.test_case "release unheld panics" `Quick test_release_unheld_panics;
          Alcotest.test_case "garbage lock word panics" `Quick test_lock_garbage_panics;
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter bound panics" `Quick test_counter_bound_panics;
          Alcotest.test_case "pointer chase" `Quick test_ptr_chase;
          Alcotest.test_case "chase cycle panics" `Quick test_ptr_chase_cycle_panics;
          Alcotest.test_case "queue put wraps" `Quick test_queue_put_wraps;
          Alcotest.test_case "queue bad index panics" `Quick test_queue_bad_index_panics;
          Alcotest.test_case "mem scan" `Quick test_mem_scan;
          Alcotest.test_case "compound" `Quick test_compound;
          Alcotest.test_case "dlist insert" `Quick test_dlist_insert;
          Alcotest.test_case "dlist bad back panics" `Quick test_dlist_bad_back_pointer_panics;
          Alcotest.test_case "hash insert" `Quick test_hash_insert;
          Alcotest.test_case "message texts" `Quick test_message_texts;
          Alcotest.test_case "all routines present" `Quick test_all_routines_present;
        ] );
    ]
