lib/vm/tlb.ml: Array
