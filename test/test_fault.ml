(* Tests for fault types, the injector's mutation rules, and the crash
   campaign. *)

module Fault_type = Rio_fault.Fault_type
module Injector = Rio_fault.Injector
module Campaign = Rio_fault.Campaign
module Kernel = Rio_kernel.Kernel
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Isa = Rio_cpu.Isa
module Prng = Rio_util.Prng
module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- fault types ---------------- *)

let test_thirteen_types () =
  check Alcotest.int "the paper's 13 fault types" 13 (List.length Fault_type.all)

let test_stable_ids () =
  (* Seed derivation depends on id = position in [all]; both are frozen. *)
  List.iteri
    (fun i f -> check Alcotest.int (Fault_type.name f ^ " id") i (Fault_type.id f))
    Fault_type.all

let test_categories () =
  check Alcotest.int "three bit-flip types" 3
    (List.length (List.filter (fun f -> Fault_type.category f = Fault_type.Bit_flip) Fault_type.all));
  check Alcotest.int "four low-level types" 4
    (List.length (List.filter (fun f -> Fault_type.category f = Fault_type.Low_level) Fault_type.all));
  check Alcotest.int "six high-level types" 6
    (List.length
       (List.filter (fun f -> Fault_type.category f = Fault_type.High_level) Fault_type.all))

let test_names_roundtrip () =
  List.iter
    (fun f ->
      check Alcotest.bool (Fault_type.name f) true (Fault_type.of_name (Fault_type.name f) = Some f))
    Fault_type.all

let test_slugs_roundtrip () =
  (* Slugs are the stable CLI/trace vocabulary: distinct, exhaustive, and
     invertible for every fault type. *)
  List.iter
    (fun f ->
      check Alcotest.bool (Fault_type.slug f) true
        (Fault_type.of_slug (Fault_type.slug f) = Some f))
    Fault_type.all;
  check Alcotest.int "slugs are distinct" (List.length Fault_type.all)
    (List.length (List.sort_uniq compare (List.map Fault_type.slug Fault_type.all)));
  check Alcotest.bool "unknown slug rejected" true (Fault_type.of_slug "no-such-fault" = None)

(* ---------------- mutation rules ---------------- *)

let test_dest_reg_mutation () =
  let prng = Prng.create ~seed:1 in
  match Injector.mutate_instruction prng (Isa.Add (1, 2, 3)) Fault_type.Destination_reg with
  | Some (Isa.Add (_, 2, 3)) -> ()
  | Some other -> Alcotest.failf "unexpected mutation %s" (Isa.to_string other)
  | None -> Alcotest.fail "add has a destination"

let test_dest_reg_skips_branches () =
  let prng = Prng.create ~seed:1 in
  check Alcotest.bool "beq has no destination" true
    (Injector.mutate_instruction prng (Isa.Beq (1, 2, 3)) Fault_type.Destination_reg = None)

let test_delete_branch_only_branches () =
  let prng = Prng.create ~seed:1 in
  check Alcotest.bool "branch becomes nop" true
    (Injector.mutate_instruction prng (Isa.Jmp 5) Fault_type.Delete_branch = Some Isa.Nop);
  check Alcotest.bool "non-branch untouched" true
    (Injector.mutate_instruction prng (Isa.Add (1, 2, 3)) Fault_type.Delete_branch = None)

let test_delete_random_not_halt () =
  let prng = Prng.create ~seed:1 in
  check Alcotest.bool "halt protected" true
    (Injector.mutate_instruction prng Isa.Halt Fault_type.Delete_instruction = None);
  check Alcotest.bool "load deleted" true
    (Injector.mutate_instruction prng (Isa.Ld (1, 2, 0)) Fault_type.Delete_instruction
    = Some Isa.Nop)

let test_off_by_one_swaps_comparison () =
  let prng = Prng.create ~seed:1 in
  check Alcotest.bool "blt -> bge" true
    (Injector.mutate_instruction prng (Isa.Blt (1, 2, 3)) Fault_type.Off_by_one
    = Some (Isa.Bge (1, 2, 3)));
  match Injector.mutate_instruction prng (Isa.Addi (1, 2, 10)) Fault_type.Off_by_one with
  | Some (Isa.Addi (1, 2, v)) -> check Alcotest.bool "imm +-1" true (v = 9 || v = 11)
  | _ -> Alcotest.fail "addi is an off-by-one target"

let prop_mutations_produce_encodable_instructions =
  QCheck.Test.make ~name:"mutations survive encode/decode" ~count:500
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, which) ->
      let prng = Prng.create ~seed in
      let fault =
        List.nth
          [ Fault_type.Destination_reg; Fault_type.Source_reg; Fault_type.Delete_branch;
            Fault_type.Delete_instruction; Fault_type.Off_by_one ]
          which
      in
      let instrs =
        [ Isa.Add (1, 2, 3); Isa.Ld (4, 5, 8); Isa.St (6, 7, -8); Isa.Blt (1, 2, 3);
          Isa.Jmp 4; Isa.Addi (1, 2, 100) ]
      in
      List.for_all
        (fun i ->
          match Injector.mutate_instruction prng i fault with
          | None -> true
          | Some m -> Isa.decode (Isa.encode m) = Some m)
        instrs)

(* ---------------- injection into a kernel ---------------- *)

let booted () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 4) in
  Kernel.format kernel;
  ignore (Kernel.mount kernel ~policy:Rio_fs.Fs.Rio_policy);
  kernel

let text_image kernel =
  let text = Layout.region (Kernel.layout kernel) Layout.Kernel_text in
  Phys_mem.blit_out (Kernel.mem kernel) text.Layout.base ~len:4096

let test_text_faults_change_text () =
  List.iter
    (fun fault ->
      let kernel = booted () in
      let before = text_image kernel in
      Injector.inject_many kernel ~prng:(Prng.create ~seed:9) fault ~count:20;
      check Alcotest.bool (Fault_type.name fault ^ " mutates text") false
        (Bytes.equal before (text_image kernel)))
    [
      Fault_type.Kernel_text; Fault_type.Destination_reg; Fault_type.Source_reg;
      Fault_type.Delete_branch; Fault_type.Delete_instruction; Fault_type.Initialization;
      Fault_type.Pointer; Fault_type.Off_by_one;
    ]

let test_heap_fault_changes_heap_only () =
  let kernel = booted () in
  let before_text = text_image kernel in
  Injector.inject_many kernel ~prng:(Prng.create ~seed:9) Fault_type.Kernel_heap ~count:20;
  check Alcotest.bool "text untouched" true (Bytes.equal before_text (text_image kernel))

let test_behavioral_faults_do_not_touch_text () =
  List.iter
    (fun fault ->
      let kernel = booted () in
      let before = text_image kernel in
      Injector.inject kernel ~prng:(Prng.create ~seed:9) fault;
      check Alcotest.bool (Fault_type.name fault) true (Bytes.equal before (text_image kernel)))
    [ Fault_type.Allocation; Fault_type.Copy_overrun; Fault_type.Synchronization ]

(* ---------------- campaign ---------------- *)

(* Scaled-down config so the test suite stays fast. *)
let quick_config =
  {
    Campaign.default_config with
    Campaign.warmup_steps = 15;
    max_steps = 80;
    memtest_files = 12;
    memtest_file_bytes = 16 * 1024;
    background_andrew = 1;
    andrew_scale = 0.02;
  }

let test_campaign_deterministic () =
  let run () =
    Campaign.run_one quick_config Campaign.Rio_without_protection Fault_type.Kernel_text ~seed:3
  in
  let a = run () and b = run () in
  check Alcotest.bool "same crash" true (a.Campaign.crash_message = b.Campaign.crash_message);
  check Alcotest.bool "same corruption verdict" true (a.Campaign.corrupted = b.Campaign.corrupted);
  check Alcotest.int "same steps" a.Campaign.memtest_steps b.Campaign.memtest_steps

let test_campaign_text_faults_crash () =
  (* Most of the kernel text is cold (as in a real kernel), so a fair share
     of runs are discarded; enough must still crash. *)
  let cfg = { quick_config with Campaign.max_steps = 200 } in
  let crashes = ref 0 in
  for seed = 1 to 20 do
    let o = Campaign.run_one cfg Campaign.Rio_without_protection Fault_type.Kernel_text ~seed in
    if not o.Campaign.discarded then incr crashes
  done;
  check Alcotest.bool "text faults crash regularly" true (!crashes >= 4)

let test_campaign_overrun_trips_protection () =
  let cfg = { quick_config with Campaign.max_steps = 300 } in
  let traps = ref 0 in
  let seed = ref 0 in
  while !traps < 2 && !seed < 40 do
    incr seed;
    let o =
      Campaign.run_one cfg Campaign.Rio_with_protection Fault_type.Copy_overrun ~seed:!seed
    in
    if o.Campaign.protection_trap then incr traps
  done;
  check Alcotest.bool "protection traps fire" true (!traps >= 2)

let test_campaign_disk_system_mostly_intact () =
  (* Write-through plus fsck: most crashes leave memTest data intact. *)
  let cfg = { quick_config with Campaign.max_steps = 200 } in
  let corrupt = ref 0 and crashes = ref 0 in
  let seed = ref 0 in
  while !crashes < 6 && !seed < 40 do
    incr seed;
    let o = Campaign.run_one cfg Campaign.Disk_based Fault_type.Kernel_text ~seed:!seed in
    if not o.Campaign.discarded then begin
      incr crashes;
      if o.Campaign.corrupted then incr corrupt
    end
  done;
  check Alcotest.bool "some crashes happened" true (!crashes > 0);
  check Alcotest.bool "corruption is the exception" true (!corrupt * 2 <= !crashes)

let test_campaign_rio_mostly_intact () =
  let cfg = { quick_config with Campaign.max_steps = 200 } in
  let corrupt = ref 0 and crashes = ref 0 in
  let seed = ref 9 in
  while !crashes < 6 && !seed < 50 do
    incr seed;
    let o =
      Campaign.run_one cfg Campaign.Rio_without_protection Fault_type.Delete_branch ~seed:!seed
    in
    if not o.Campaign.discarded then begin
      incr crashes;
      if o.Campaign.corrupted then incr corrupt
    end
  done;
  check Alcotest.bool "crashes happened" true (!crashes > 0);
  check Alcotest.bool "warm reboot usually recovers" true (!corrupt * 2 <= !crashes)

let () =
  Alcotest.run "rio_fault"
    [
      ( "types",
        [
          Alcotest.test_case "thirteen" `Quick test_thirteen_types;
          Alcotest.test_case "stable ids" `Quick test_stable_ids;
          Alcotest.test_case "categories" `Quick test_categories;
          Alcotest.test_case "names" `Quick test_names_roundtrip;
          Alcotest.test_case "slugs" `Quick test_slugs_roundtrip;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "dest reg" `Quick test_dest_reg_mutation;
          Alcotest.test_case "dest reg skips branches" `Quick test_dest_reg_skips_branches;
          Alcotest.test_case "delete branch" `Quick test_delete_branch_only_branches;
          Alcotest.test_case "delete random spares halt" `Quick test_delete_random_not_halt;
          Alcotest.test_case "off by one" `Quick test_off_by_one_swaps_comparison;
          qtest prop_mutations_produce_encodable_instructions;
        ] );
      ( "injection",
        [
          Alcotest.test_case "text faults mutate text" `Quick test_text_faults_change_text;
          Alcotest.test_case "heap fault spares text" `Quick test_heap_fault_changes_heap_only;
          Alcotest.test_case "behavioral faults spare text" `Quick
            test_behavioral_faults_do_not_touch_text;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "text faults crash" `Quick test_campaign_text_faults_crash;
          Alcotest.test_case "overrun trips protection" `Quick test_campaign_overrun_trips_protection;
          Alcotest.test_case "disk system mostly intact" `Quick
            test_campaign_disk_system_mostly_intact;
          Alcotest.test_case "rio mostly intact" `Quick test_campaign_rio_mostly_intact;
        ] );
    ]
