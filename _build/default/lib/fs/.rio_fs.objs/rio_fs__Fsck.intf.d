lib/fs/fsck.mli: Format Rio_disk
