examples/quickstart.ml: Bytes Format Option Printf Rio_core Rio_disk Rio_fs Rio_kernel Rio_sim Rio_util
