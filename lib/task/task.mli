(** A task: one client of the file system, with its own identity,
    working directory, and descriptor table.

    The paper's reliability runs model a multi-user machine (Sdet, §3);
    a task is our unit of "user". Tasks own no kernel state — the
    kernel's fd table stays global — but every syscall issued through
    {!Sched.syscall} is attributed to a task, resolves relative paths
    against the task's cwd, and maps task-local descriptors to kernel
    fds, so two tasks can both hold "fd 3" and mean different files. *)

type t

val make : id:int -> name:string -> t
(** A fresh task rooted at ["/"], descriptor numbering starting at 3. *)

val id : t -> int
val name : t -> string
val cwd : t -> string

val resolve : t -> string -> string
(** Absolute paths pass through; relative paths join the task's cwd. *)

val chdir : t -> string -> unit

val install_fd : t -> Rio_fs.Fs.fd -> int
(** Bind a kernel fd into the task's table; returns the task-local
    descriptor. *)

val global_fd : t -> int -> Rio_fs.Fs.fd
(** Raises {!Rio_fs.Fs_types.Fs_error} when the task never opened it. *)

val release_fd : t -> int -> unit
val open_fds : t -> int list

val resolve_call : t -> Rio_fs.Fs.Syscall.call -> Rio_fs.Fs.Syscall.call
(** Rewrite the call's paths through {!resolve}. Fd-carrying calls pass
    through (the fd indirection happens at the call site). *)
