let sector_bytes = 512

type t = {
  sectors : int;
  tbl : (int, bytes) Hashtbl.t;
  nonzero : Bytes.t;
      (* Bit per sector, exact: set iff [tbl] holds an entry for the
         sector, and entries only ever hold non-zero contents. *)
}

let create ~sectors =
  {
    sectors;
    tbl = Hashtbl.create 4096;
    nonzero = Bytes.make ((sectors + 7) / 8) '\000';
  }

let capacity t = t.sectors

let entries t = Hashtbl.length t.tbl

let mark_nonzero t sector =
  let i = sector lsr 3 in
  Bytes.unsafe_set t.nonzero i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.nonzero i) lor (1 lsl (sector land 7))))

let clear_nonzero t sector =
  let i = sector lsr 3 in
  Bytes.unsafe_set t.nonzero i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.nonzero i) land lnot (1 lsl (sector land 7))))

let bit_set t sector =
  Char.code (Bytes.unsafe_get t.nonzero (sector lsr 3)) land (1 lsl (sector land 7)) <> 0

let sector_is_zero src pos =
  let rec go i = i >= sector_bytes || (Bytes.get_int64_le src (pos + i) = 0L && go (i + 8)) in
  go 0

let peek t ~sector =
  match Hashtbl.find_opt t.tbl sector with
  | Some b -> Bytes.copy b
  | None -> Bytes.make sector_bytes '\000'

let blit_to t ~sector dst ~pos =
  match Hashtbl.find_opt t.tbl sector with
  | Some b -> Bytes.blit b 0 dst pos sector_bytes
  | None -> Bytes.fill dst pos sector_bytes '\000'

(* Absent sectors read as zeros, so an all-zero commit needs no entry —
   this keeps the 16 MB swap dump from materializing a store entry per
   untouched memory page — and an all-zero commit over an existing entry
   must drop it, or the bitmap bit goes stale. *)
let commit_from t ~sector src ~pos =
  if sector_is_zero src pos then begin
    if Hashtbl.mem t.tbl sector then begin
      Hashtbl.remove t.tbl sector;
      clear_nonzero t sector
    end
  end
  else
    match Hashtbl.find_opt t.tbl sector with
    | Some dst -> Bytes.blit src pos dst 0 sector_bytes
    | None ->
      let b = Bytes.create sector_bytes in
      Bytes.blit src pos b 0 sector_bytes;
      Hashtbl.replace t.tbl sector b;
      mark_nonzero t sector

let commit_zeros t ~sector ~count =
  let last = sector + count - 1 in
  for i = sector lsr 3 to last lsr 3 do
    let byte = Char.code (Bytes.unsafe_get t.nonzero i) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then begin
          let s = (i lsl 3) lor bit in
          if s >= sector && s <= last then begin
            Hashtbl.remove t.tbl s;
            clear_nonzero t s
          end
        end
      done
  done

let check_invariant t =
  (* Entry side: every entry has its bit and non-zero contents. *)
  Hashtbl.iter
    (fun s b ->
      if not (bit_set t s) then
        failwith (Printf.sprintf "Store: sector %d has an entry but no nonzero bit" s);
      if sector_is_zero b 0 then
        failwith (Printf.sprintf "Store: sector %d holds an all-zero entry" s))
    t.tbl;
  (* Bitmap side: every set bit has an entry. *)
  for i = 0 to Bytes.length t.nonzero - 1 do
    let byte = Char.code (Bytes.unsafe_get t.nonzero i) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then begin
          let s = (i lsl 3) lor bit in
          if not (Hashtbl.mem t.tbl s) then
            failwith (Printf.sprintf "Store: sector %d has a nonzero bit but no entry" s)
        end
      done
  done

type state = (int, bytes) Hashtbl.t

let checkpoint t =
  let ck = Hashtbl.create (max 16 (Hashtbl.length t.tbl * 2)) in
  Hashtbl.iter (fun s b -> Hashtbl.replace ck s (Bytes.copy b)) t.tbl;
  ck

let restore t ck =
  Hashtbl.reset t.tbl;
  Bytes.fill t.nonzero 0 (Bytes.length t.nonzero) '\000';
  Hashtbl.iter
    (fun s b ->
      Hashtbl.replace t.tbl s (Bytes.copy b);
      mark_nonzero t s)
    ck
