examples/fault_anatomy.ml: Format List Printf Rio_fault Rio_kernel Rio_util
