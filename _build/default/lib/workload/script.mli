(** Workload scripts: flat operation streams executed against a file
    system.

    Operations are chunked the way real programs issue them (open, a
    sequence of 8 KB writes, close) because the write policies of Table 2
    key off exactly that structure — write-through-on-write pays per chunk,
    write-through-on-close per file. [Cpu] burns simulated computation time
    (the Andrew benchmark's compile phase). *)

type op =
  | Mkdir of string
  | Open_write of string  (** create/truncate and make current. *)
  | Open_read of string
  | Write_chunk of bytes
  | Read_chunk of int
  | Close
  | Fsync
  | Unlink of string
  | Rmdir of string
  | Stat of string
  | Rename of string * string
  | Read_whole of string
  | Cpu of int  (** µs of pure computation. *)

val chunk_size : int
(** 8192 — the stdio-ish buffer size scripts write in. *)

val write_file_ops : string -> seed:int -> len:int -> op list
(** open, chunked pattern writes, close. *)

type runner
(** Execution state for one script (current fd etc.). *)

val runner : op list -> runner

val finished : runner -> bool

val step : runner -> Rio_fs.Fs.t -> bool
(** Execute the next operation; [false] when the script is done. *)

val run_all : runner -> Rio_fs.Fs.t -> unit

val interleave : runner list -> Rio_fs.Fs.t -> unit
(** Round-robin the runners until all finish — Sdet's concurrent scripts,
    the reliability experiment's four Andrew instances. *)

val interleave_with : runner list -> Rio_fs.Fs.t -> every:int -> (unit -> unit) -> unit
(** Like {!interleave}, calling a callback every [every] operations (the
    crash campaign interposes kernel activity there). *)

val ops_total : runner -> int
val ops_done : runner -> int

(** {1 Workload characterization} *)

type stats = {
  operations : int;
  opens_write : int;
  opens_read : int;
  bytes_written : int;
  bytes_read_chunked : int;
  whole_file_reads : int;
  mkdirs : int;
  unlinks : int;
  rmdirs : int;
  stats_calls : int;
  renames : int;
  fsyncs : int;
  cpu_us : int;
}

val describe : op list -> stats
(** Static op-mix summary of a script — what makes Sdet metadata-heavy and
    Andrew CPU-heavy is visible right here. *)

val pp_stats : Format.formatter -> stats -> unit
