lib/sim/costs.mli: Format Rio_util
