examples/quickstart.mli:
