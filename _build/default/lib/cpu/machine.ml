module Mmu = Rio_vm.Mmu
module Phys_mem = Rio_mem.Phys_mem

type trap =
  | Illegal_address of int
  | Protection_violation of int
  | Illegal_instruction of int
  | Consistency_panic of int

type state = Running | Halted | Trapped of trap

type t = {
  mem : Phys_mem.t;
  mmu : Mmu.t;
  regs : int array;
  mutable pc : int;
  mutable state : state;
  mutable instructions : int;
  mutable stores : int;
  mutable on_store : (paddr:int -> width:int -> unit) option;
}

let create ~mem ~mmu =
  {
    mem;
    mmu;
    regs = Array.make 32 0;
    pc = 0;
    state = Running;
    instructions = 0;
    stores = 0;
    on_store = None;
  }

let mem t = t.mem
let mmu t = t.mmu
let pc t = t.pc
let set_pc t pc = t.pc <- pc

let reg t n =
  assert (n >= 0 && n < 32);
  if n = 0 then 0 else t.regs.(n)

let set_reg t n v =
  assert (n >= 0 && n < 32);
  if n <> 0 then t.regs.(n) <- v

let sp_reg = 30
let ra_reg = 31

let state t = t.state
let instructions_retired t = t.instructions
let stores_retired t = t.stores

let set_on_store t f = t.on_store <- Some f
let clear_on_store t = t.on_store <- None

let trap t trap_value =
  t.state <- Trapped trap_value;
  t.state

(* Translate an access of [width] bytes starting at [vaddr]. Both end bytes
   must translate; identity mapping keeps the physical range contiguous. *)
let translate_span t vaddr width access =
  match Mmu.translate t.mmu ~vaddr ~access with
  | Mmu.Fault (Mmu.Unmapped a) -> Error (Illegal_address a)
  | Mmu.Fault (Mmu.Write_protected a) -> Error (Protection_violation a)
  | Mmu.Ok paddr ->
    if width = 1 || (vaddr mod Phys_mem.page_size) + width <= Phys_mem.page_size then Ok paddr
    else begin
      match Mmu.translate t.mmu ~vaddr:(vaddr + width - 1) ~access with
      | Mmu.Fault (Mmu.Unmapped a) -> Error (Illegal_address a)
      | Mmu.Fault (Mmu.Write_protected a) -> Error (Protection_violation a)
      | Mmu.Ok _ -> Ok paddr
    end

let load t vaddr width =
  match translate_span t vaddr width Mmu.Read with
  | Error e -> Error e
  | Ok paddr ->
    if not (Phys_mem.in_range t.mem paddr ~len:width) then Error (Illegal_address vaddr)
    else
      Ok
        (match width with
        | 1 -> Phys_mem.read_u8 t.mem paddr
        | 4 -> Phys_mem.read_u32 t.mem paddr
        | 8 -> Phys_mem.read_u64 t.mem paddr
        | _ -> assert false)

let store t vaddr width v =
  match translate_span t vaddr width Mmu.Write with
  | Error e -> Error e
  | Ok paddr ->
    if not (Phys_mem.in_range t.mem paddr ~len:width) then Error (Illegal_address vaddr)
    else begin
      (match width with
      | 1 -> Phys_mem.write_u8 t.mem paddr v
      | 4 -> Phys_mem.write_u32 t.mem paddr v
      | 8 -> Phys_mem.write_u64 t.mem paddr v
      | _ -> assert false);
      t.stores <- t.stores + 1;
      (match t.on_store with Some f -> f ~paddr ~width | None -> ());
      Ok ()
    end

let step t =
  match t.state with
  | Halted | Trapped _ -> t.state
  | Running ->
    let pc = t.pc in
    (match translate_span t pc Isa.word_bytes Mmu.Exec with
    | Error e -> trap t e
    | Ok paddr ->
      if not (Phys_mem.in_range t.mem paddr ~len:4) then trap t (Illegal_address pc)
      else begin
        let word = Phys_mem.read_u32 t.mem paddr in
        match Isa.decode word with
        | None -> trap t (Illegal_instruction word)
        | Some instr ->
          t.instructions <- t.instructions + 1;
          let next = pc + Isa.word_bytes in
          let rr = reg t in
          let continue_at target =
            t.pc <- target;
            t.state
          in
          let alu rd v =
            set_reg t rd v;
            continue_at next
          in
          let do_load rd addr width =
            match load t addr width with
            | Error e -> trap t e
            | Ok v ->
              set_reg t rd v;
              continue_at next
          in
          let do_store v addr width =
            match store t addr width v with
            | Error e -> trap t e
            | Ok () -> continue_at next
          in
          let branch cond off =
            if cond then continue_at (pc + (off * Isa.word_bytes)) else continue_at next
          in
          (match instr with
          | Isa.Nop -> continue_at next
          | Isa.Halt ->
            t.state <- Halted;
            t.state
          | Isa.Add (d, a, b) -> alu d (rr a + rr b)
          | Isa.Sub (d, a, b) -> alu d (rr a - rr b)
          | Isa.And (d, a, b) -> alu d (rr a land rr b)
          | Isa.Or (d, a, b) -> alu d (rr a lor rr b)
          | Isa.Xor (d, a, b) -> alu d (rr a lxor rr b)
          | Isa.Sll (d, a, b) -> alu d (rr a lsl (rr b land 0x3F))
          | Isa.Srl (d, a, b) -> alu d (rr a lsr (rr b land 0x3F))
          | Isa.Mul (d, a, b) -> alu d (rr a * rr b)
          | Isa.Slt (d, a, b) -> alu d (if rr a < rr b then 1 else 0)
          | Isa.Addi (d, a, i) -> alu d (rr a + i)
          | Isa.Andi (d, a, i) -> alu d (rr a land (i land 0xFFFF))
          | Isa.Ori (d, a, i) -> alu d (rr a lor (i land 0xFFFF))
          | Isa.Xori (d, a, i) -> alu d (rr a lxor (i land 0xFFFF))
          | Isa.Slti (d, a, i) -> alu d (if rr a < i then 1 else 0)
          | Isa.Lui (d, i) -> alu d ((i land 0xFFFF) lsl 16)
          | Isa.Kseg (d, a) -> alu d (Mmu.kseg_addr (rr a))
          | Isa.Ld (d, a, i) -> do_load d (rr a + i) 8
          | Isa.Ldw (d, a, i) -> do_load d (rr a + i) 4
          | Isa.Ldb (d, a, i) -> do_load d (rr a + i) 1
          | Isa.St (v, a, i) -> do_store (rr v) (rr a + i) 8
          | Isa.Stw (v, a, i) -> do_store (rr v) (rr a + i) 4
          | Isa.Stb (v, a, i) -> do_store (rr v) (rr a + i) 1
          | Isa.Beq (a, b, o) -> branch (rr a = rr b) o
          | Isa.Bne (a, b, o) -> branch (rr a <> rr b) o
          | Isa.Blt (a, b, o) -> branch (rr a < rr b) o
          | Isa.Bge (a, b, o) -> branch (rr a >= rr b) o
          | Isa.Jmp o -> continue_at (pc + (o * Isa.word_bytes))
          | Isa.Jal (d, o) ->
            set_reg t d next;
            continue_at (pc + (o * Isa.word_bytes))
          | Isa.Jr a -> continue_at (rr a)
          | Isa.Assert_nz (a, msg) ->
            if rr a = 0 then trap t (Consistency_panic msg) else continue_at next)
      end)

let run t ~max_instructions =
  let budget = t.instructions + max_instructions in
  let rec loop () =
    match t.state with
    | Running when t.instructions < budget ->
      ignore (step t);
      loop ()
    | s -> s
  in
  loop ()

let resume t = t.state <- Running

let reset t =
  Array.fill t.regs 0 32 0;
  t.pc <- 0;
  t.state <- Running;
  t.instructions <- 0;
  t.stores <- 0

let trap_to_string = function
  | Illegal_address a -> Printf.sprintf "illegal address %#x" a
  | Protection_violation a -> Printf.sprintf "protection violation at %#x" a
  | Illegal_instruction w -> Printf.sprintf "illegal instruction %#010x" w
  | Consistency_panic m -> Printf.sprintf "kernel consistency check #%d failed" m

let pp_trap ppf t = Format.pp_print_string ppf (trap_to_string t)
