(* Tests for the kernel model: boot, activity stability, the bcopy fault
   envelope, and the crash lifecycle. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Kheap = Rio_kernel.Kheap
module Kcrash = Rio_kernel.Kcrash
module Machine = Rio_cpu.Machine
module Layout = Rio_mem.Layout
module Phys_mem = Rio_mem.Phys_mem
module Fs = Rio_fs.Fs
module Hooks = Rio_fs.Hooks
module Disk = Rio_disk.Disk

let check = Alcotest.check

let boot ?(seed = 1) () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
  (engine, kernel)

(* ---------------- kheap ---------------- *)

let test_kheap_init () =
  let mem = Phys_mem.create ~bytes_total:(4 * 1024 * 1024) in
  let layout = Layout.create Layout.default_config in
  let heap = Kheap.init ~mem ~region:(Layout.region layout Layout.Kernel_heap) in
  (* Free list: head points to node 0, chain terminates in null. *)
  check Alcotest.int "head is node 0" (Kheap.node_addr heap 0)
    (Kheap.read_word heap (Kheap.free_head_addr heap));
  let rec walk addr n = if addr = 0 then n else walk (Kheap.read_word heap addr) (n + 1) in
  check Alcotest.int "full chain" Kheap.node_count (walk (Kheap.read_word heap (Kheap.free_head_addr heap)) 0);
  check Alcotest.int "ring index zero" 0 (Kheap.read_word heap (Kheap.ring_index_addr heap))

let test_kheap_native_insert () =
  let mem = Phys_mem.create ~bytes_total:(4 * 1024 * 1024) in
  let layout = Layout.create Layout.default_config in
  let heap = Kheap.init ~mem ~region:(Layout.region layout Layout.Kernel_heap) in
  let head0 = Kheap.read_word heap (Kheap.free_head_addr heap) in
  let node = Kheap.scratch_addr heap (* any 8-byte slot works *) in
  Kheap.native_list_insert heap ~node;
  check Alcotest.int "node is head" node (Kheap.read_word heap (Kheap.free_head_addr heap));
  check Alcotest.int "links to old head" head0 (Kheap.read_word heap node)

let test_kheap_reinit () =
  let mem = Phys_mem.create ~bytes_total:(4 * 1024 * 1024) in
  let layout = Layout.create Layout.default_config in
  let heap = Kheap.init ~mem ~region:(Layout.region layout Layout.Kernel_heap) in
  Kheap.write_word heap (Kheap.free_head_addr heap) 0;
  Kheap.reinit heap;
  check Alcotest.int "rebuilt" (Kheap.node_addr heap 0)
    (Kheap.read_word heap (Kheap.free_head_addr heap))

(* ---------------- boot and activity ---------------- *)

let test_boot_loads_text () =
  let _, kernel = boot () in
  let text = Layout.region (Kernel.layout kernel) Layout.Kernel_text in
  (* The first word of kernel text is the halt pad. *)
  let word = Phys_mem.read_u32 (Kernel.mem kernel) text.Layout.base in
  check (Alcotest.option Alcotest.string) "halt pad" (Some "halt")
    (Option.map Rio_cpu.Isa.to_string (Rio_cpu.Isa.decode word))

let test_healthy_activity_never_crashes () =
  let _, kernel = boot () in
  (* 2000 bursts with no faults: the kernel model must be self-sustaining. *)
  for _ = 1 to 2000 do
    Kernel.run_activity kernel
  done;
  check Alcotest.int "all bursts ran" 2000 (Kernel.activity_bursts kernel);
  check Alcotest.bool "instructions retired" true
    (Machine.instructions_retired (Kernel.machine kernel) > 10_000)

let test_activity_charges_time () =
  let engine, kernel = boot () in
  let t0 = Engine.now engine in
  for _ = 1 to 50 do
    Kernel.run_activity kernel
  done;
  check Alcotest.bool "time advanced" true (Engine.now engine > t0)

let test_activity_deterministic () =
  let run seed =
    let _, kernel = boot ~seed () in
    for _ = 1 to 300 do
      Kernel.run_activity kernel
    done;
    Machine.instructions_retired (Kernel.machine kernel)
  in
  check Alcotest.int "same seed same instruction count" (run 7) (run 7);
  check Alcotest.bool "different seeds differ" true (run 7 <> run 8)

(* ---------------- fs integration ---------------- *)

let test_format_and_mount () =
  let _, kernel = boot () in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Ufs_default in
  Fs.write_file fs "/k" (Bytes.of_string "kernel mounted");
  check Alcotest.bytes "works" (Bytes.of_string "kernel mounted") (Fs.read_file fs "/k");
  check Alcotest.bool "kernel remembers fs" true (Kernel.fs kernel <> None)

let test_copy_in_hook_copies () =
  let _, kernel = boot () in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  (* Data path goes through the kernel's bcopy hook. *)
  let data = Rio_util.Pattern.fill ~seed:5 ~len:10_000 in
  Fs.write_file fs "/d" data;
  check Alcotest.bytes "hooked copies are correct" data (Fs.read_file fs "/d")

(* ---------------- behavioral faults ---------------- *)

let test_overrun_corrupts_without_protection () =
  let _, kernel = boot () in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  Kernel.arm_copy_overrun kernel ~period:1 (* fire on the first copy *);
  (* An 8 KB-aligned write: the overrun runs past the page into the
     neighbouring pool page. Without protection it corrupts silently. *)
  (try Fs.write_file fs "/victim" (Bytes.make 8192 'v')
   with Kcrash.Crashed _ -> Alcotest.fail "no protection: overrun must be silent");
  check Alcotest.bool "file itself intact" true
    (Bytes.equal (Bytes.make 8192 'v') (Fs.read_file fs "/victim"))

let test_sync_fault_eventually_panics () =
  let _, kernel = boot () in
  Kernel.format kernel;
  ignore (Kernel.mount kernel ~policy:Fs.Rio_policy);
  (* A period where usually only one of the acquire/release pair is
     skipped (skipping both is harmless). *)
  Kernel.arm_sync_fault kernel ~period:24;
  let crashed = ref false in
  (try
     for _ = 1 to 20_000 do
       Kernel.run_activity kernel
     done
   with Kcrash.Crashed info ->
     crashed := true;
     (* A skipped acquire makes the release panic. *)
     (match info.Kcrash.cause with
     | Kcrash.Trap (Machine.Consistency_panic _) -> ()
     | _ -> Alcotest.fail "expected consistency panic"));
  check Alcotest.bool "crashed" true !crashed

let test_alloc_fault_eventually_crashes () =
  let _, kernel = boot ~seed:5 () in
  Kernel.format kernel;
  ignore (Kernel.mount kernel ~policy:Fs.Rio_policy);
  Kernel.arm_allocation_fault kernel ~period:1;
  let crashed = ref false in
  (try
     for _ = 1 to 5000 do
       Kernel.run_activity kernel
     done
   with Kcrash.Crashed _ -> crashed := true);
  check Alcotest.bool "premature frees eventually crash" true !crashed

let test_disarm () =
  let _, kernel = boot () in
  Kernel.arm_copy_overrun kernel ~period:1;
  Kernel.disarm_faults kernel;
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  (* No overrun fires once disarmed. *)
  Fs.write_file fs "/ok" (Bytes.make 8192 'o');
  check Alcotest.bool "clean" true (Bytes.equal (Bytes.make 8192 'o') (Fs.read_file fs "/ok"))

(* ---------------- crash lifecycle ---------------- *)

let test_crash_system_records () =
  let engine, kernel = boot () in
  Kernel.format kernel;
  ignore (Kernel.mount kernel ~policy:Fs.Ufs_default);
  let info =
    { Kcrash.cause = Kcrash.Hang; during = "test"; at_us = Engine.now engine }
  in
  Kernel.crash_system kernel info;
  check Alcotest.bool "recorded" true (Kernel.crash_info kernel <> None);
  check Alcotest.bool "fs detached" true (Kernel.fs kernel = None)

let test_warm_boot_preserves_memory () =
  let engine, kernel = boot () in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  Fs.write_file fs "/still-here" (Bytes.of_string "memory survives");
  let pool = Layout.region (Kernel.layout kernel) Layout.Page_pool in
  let snapshot = Phys_mem.blit_out (Kernel.mem kernel) pool.Layout.base ~len:65536 in
  let kernel2 =
    Kernel.boot_warm ~engine ~costs:Costs.default (Kernel.config_with_seed 1)
      ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
  in
  let snapshot2 = Phys_mem.blit_out (Kernel.mem kernel2) pool.Layout.base ~len:65536 in
  check Alcotest.bytes "pool region untouched by warm boot" snapshot snapshot2

let test_panic_flush_propagates_dirty_data () =
  (* A UFS-delayed system's panic path pushes dirty buffers out. *)
  let engine, kernel = boot () in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Ufs_delayed in
  Fs.write_file fs "/flushed-on-panic" (Bytes.of_string "made it");
  Kernel.crash_system kernel
    { Kcrash.cause = Kcrash.Hang; during = "test"; at_us = Engine.now engine };
  (* Remount from disk: the panic flush should have pushed the file out. *)
  let kernel2 =
    Kernel.boot_on_disk ~engine ~costs:Costs.default (Kernel.config_with_seed 1)
      ~disk:(Kernel.disk kernel)
  in
  ignore (Rio_fs.Fsck.run ~disk:(Kernel.disk kernel2));
  let fs2 = Kernel.mount kernel2 ~policy:Fs.Ufs_delayed in
  check Alcotest.bool "panic-flushed file present" true (Fs.exists fs2 "/flushed-on-panic")

let () =
  Alcotest.run "rio_kernel"
    [
      ( "kheap",
        [
          Alcotest.test_case "init" `Quick test_kheap_init;
          Alcotest.test_case "native insert" `Quick test_kheap_native_insert;
          Alcotest.test_case "reinit" `Quick test_kheap_reinit;
        ] );
      ( "activity",
        [
          Alcotest.test_case "boot loads text" `Quick test_boot_loads_text;
          Alcotest.test_case "healthy activity stable" `Quick test_healthy_activity_never_crashes;
          Alcotest.test_case "charges time" `Quick test_activity_charges_time;
          Alcotest.test_case "deterministic" `Quick test_activity_deterministic;
        ] );
      ( "fs",
        [
          Alcotest.test_case "format + mount" `Quick test_format_and_mount;
          Alcotest.test_case "copy_in hook" `Quick test_copy_in_hook_copies;
        ] );
      ( "faults",
        [
          Alcotest.test_case "overrun silent w/o protection" `Quick
            test_overrun_corrupts_without_protection;
          Alcotest.test_case "sync fault panics" `Quick test_sync_fault_eventually_panics;
          Alcotest.test_case "alloc fault crashes" `Quick test_alloc_fault_eventually_crashes;
          Alcotest.test_case "disarm" `Quick test_disarm;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash_system records" `Quick test_crash_system_records;
          Alcotest.test_case "warm boot preserves memory" `Quick test_warm_boot_preserves_memory;
          Alcotest.test_case "panic flush" `Quick test_panic_flush_propagates_dirty_data;
        ] );
    ]
