lib/harness/vista_experiment.mli: Rio_fault Rio_util
