let crc_table =
  lazy
    (let table = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
       done;
       table.(n) <- !c
     done;
     table)

let crc32 ?(init = 0) b ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length b);
  let table = Lazy.force crc_table in
  let c = ref (init lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32_string s =
  let b = Bytes.unsafe_of_string s in
  crc32 b ~pos:0 ~len:(Bytes.length b)

let fletcher32 b ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length b);
  let sum1 = ref 0xFFFF and sum2 = ref 0xFFFF in
  for i = pos to pos + len - 1 do
    sum1 := !sum1 + Char.code (Bytes.unsafe_get b i);
    sum2 := !sum2 + !sum1;
    if !sum1 >= 65535 then sum1 := !sum1 - 65535;
    if !sum2 >= 65535 then sum2 := !sum2 - 65535
  done;
  (!sum2 lsl 16) lor !sum1

type algorithm = Crc32 | Fletcher32

let compute algo b ~pos ~len =
  match algo with
  | Crc32 -> crc32 b ~pos ~len
  | Fletcher32 -> fletcher32 b ~pos ~len

let algorithm_name = function Crc32 -> "crc32" | Fletcher32 -> "fletcher32"
