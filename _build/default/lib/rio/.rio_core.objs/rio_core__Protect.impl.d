lib/rio/protect.ml: Rio_mem Rio_sim Rio_util Rio_vm
