(* Tests for Rio_check: the exhaustive crash-schedule explorer. The key
   properties are (a) rio-prot survives every enumerated crash point, (b)
   the report is byte-identical at any domain count, and (c) the checker
   catches the known-unsafe ablations — a checker that cannot catch a
   planted hole proves nothing by finding no violations. *)

module Boundary = Rio_check.Boundary
module Scenario = Rio_check.Scenario
module Explorer = Rio_check.Explorer
module Run = Rio_harness.Run

let check = Alcotest.check

let cfg ~domains = { Run.default with Run.seed = 7; domains }

(* ---------------- boundary enumeration ---------------- *)

let test_enumeration_classes () =
  let scenarios = Scenario.all in
  check Alcotest.int "five scenarios" 5 (List.length scenarios);
  let r = Explorer.run ~spec:Explorer.rio_prot (cfg ~domains:1) in
  List.iter
    (fun (s : Explorer.scenario_result) ->
      if s.Explorer.slug = "sync" then
        (* Rio's sync returns immediately (§2.3): nothing to crash inside. *)
        check Alcotest.int "sync is boundary-free under rio" 0 s.Explorer.crash_points
      else if
        (* The same-directory rename collapses to one atomic metadata update,
           so its schedule is short — but never trivial. *)
        s.Explorer.crash_points < 5
      then
        Alcotest.failf "scenario %s enumerated only %d crash points" s.Explorer.slug
          s.Explorer.crash_points)
    r.Explorer.scenarios;
  (* Under idle write-back the same barrier routes through the write-behind
     pipeline, so the sync scenario contributes wb-queue/wb-flush/wb-commit
     crash points of its own — and survives all of them. *)
  let r = Explorer.run ~spec:Explorer.rio_idle ~only:[ "sync" ] (cfg ~domains:1) in
  (match r.Explorer.scenarios with
  | [ s ] ->
    if s.Explorer.crash_points < 3 then
      Alcotest.failf "sync under rio-idle enumerated only %d crash points"
        s.Explorer.crash_points
  | _ -> Alcotest.fail "expected exactly the sync scenario");
  check Alcotest.int "sync survives under rio-idle" 0 (Explorer.violation_count r)

let test_rio_prot_safe () =
  let r = Explorer.run ~spec:Explorer.rio_prot (cfg ~domains:1) in
  (match
     List.concat_map
       (fun (s : Explorer.scenario_result) -> s.Explorer.violations)
       r.Explorer.scenarios
   with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "rio-prot violated at crash point %d (%s): %s" v.Explorer.ordinal
      v.Explorer.label
      (String.concat "; " v.Explorer.problems));
  check Alcotest.int "zero violations" 0 (Explorer.violation_count r)

let test_parallel_determinism () =
  (* One scenario is enough to prove the merge is in boundary order. *)
  let only = Some [ "creat" ] in
  let r1 = Explorer.run ~spec:Explorer.rio_prot ?only (cfg ~domains:1) in
  let r2 = Explorer.run ~spec:Explorer.rio_prot ?only (cfg ~domains:2) in
  check Alcotest.string "byte-identical render at -j 1 and -j 2" (Explorer.render r1)
    (Explorer.render r2)

let test_shadow_off_flagged () =
  let r = Explorer.run ~spec:Explorer.shadow_off (cfg ~domains:1) in
  if Explorer.violation_count r = 0 then
    Alcotest.fail "shadow-off produced no violations: the checker cannot catch a planted hole";
  (* Violations must come with a forensics counterexample narrative. *)
  let v =
    List.concat_map
      (fun (s : Explorer.scenario_result) -> s.Explorer.violations)
      r.Explorer.scenarios
    |> List.hd
  in
  if v.Explorer.narrative = [] then Alcotest.fail "violation lacks a counterexample narrative"

let test_registry_off_flagged () =
  let r =
    Explorer.run ~spec:Explorer.registry_off ~only:[ "creat" ] (cfg ~domains:1)
  in
  if Explorer.violation_count r = 0 then
    Alcotest.fail "registry-off produced no violations"

let test_matrix_verdicts () =
  let entries =
    Explorer.run_matrix ~only:[ "rename" ] (cfg ~domains:1)
  in
  check Alcotest.int "five configurations" 5 (List.length entries);
  List.iter
    (fun (e : Explorer.matrix_entry) ->
      let spec = e.Explorer.entry_report.Explorer.spec in
      if not e.Explorer.ok then
        Alcotest.failf "matrix verdict mismatch for %s" spec.Explorer.label)
    entries;
  Alcotest.(check bool) "matrix_ok" true (Explorer.matrix_ok entries)

let test_unknown_scenario_rejected () =
  match Explorer.run ~only:[ "no-such" ] (cfg ~domains:1) with
  | (_ : Explorer.report) -> Alcotest.fail "unknown slug accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "check"
    [
      ( "explorer",
        [
          Alcotest.test_case "enumeration covers each scenario" `Slow test_enumeration_classes;
          Alcotest.test_case "rio-prot survives every crash point" `Slow test_rio_prot_safe;
          Alcotest.test_case "parallel run is byte-identical" `Slow test_parallel_determinism;
          Alcotest.test_case "shadow-off is flagged with a narrative" `Slow test_shadow_off_flagged;
          Alcotest.test_case "registry-off is flagged" `Slow test_registry_off_flagged;
          Alcotest.test_case "matrix verdicts all hold" `Slow test_matrix_verdicts;
          Alcotest.test_case "unknown scenario slug rejected" `Quick test_unknown_scenario_rejected;
        ] );
    ]
