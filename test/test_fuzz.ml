(* Tests for Rio_fuzz: the randomized crash-schedule fuzzer. The key
   properties are (a) generation and the whole fuzz loop are seed-
   deterministic at any domain count, (b) rio-prot fuzzes clean at a fixed
   seed, and (c) the fuzzer catches the planted unsafe ablations AND
   shrinks them to small repros — a fuzzer whose shrinker cannot reach a
   readable counterexample proves little by flagging one. *)

module Gen = Rio_workload.Script.Gen
module Program = Rio_fuzz.Program
module Fuzzer = Rio_fuzz.Fuzzer
module Explorer = Rio_check.Explorer
module Run = Rio_harness.Run
module Prng = Rio_util.Prng

let check = Alcotest.check

let cfg ?(seed = 1) ?(trials = 6) ~domains () =
  { Run.default with Run.seed; trials; domains }

(* ---------------- the generator ---------------- *)

let test_gen_deterministic () =
  let gen () =
    Gen.generate ~prng:(Prng.create ~seed:42) (Gen.default_spec ~root:"/fuzz") ~ops:20
  in
  let a = gen () and b = gen () in
  check Alcotest.int "same length" (List.length a) (List.length b);
  List.iter2
    (fun x y -> check Alcotest.string "same op" (Gen.describe x) (Gen.describe y))
    a b

let test_gen_programs_are_valid () =
  (* Valid-by-construction: the model (which raises [Not_found] on any
     dangling reference) must fold every generated program cleanly. *)
  for seed = 1 to 50 do
    let ops =
      Gen.generate ~prng:(Prng.create ~seed) (Gen.default_spec ~root:"/fuzz") ~ops:30
    in
    let m = Gen.Model.after ~root:"/fuzz" ops in
    ignore (Gen.Model.sorted_files m)
  done

let test_gen_covers_op_kinds () =
  let ops =
    Gen.generate ~prng:(Prng.create ~seed:3) (Gen.default_spec ~root:"/fuzz") ~ops:200
  in
  let seen tag =
    List.exists
      (fun (op : Gen.op) ->
        match (op, tag) with
        | Gen.Creat _, `Creat
        | Gen.Append _, `Append
        | Gen.Overwrite _, `Overwrite
        | Gen.Mkdir _, `Mkdir
        | Gen.Unlink _, `Unlink
        | Gen.Rename _, `Rename
        | Gen.Vista_txn _, `Vista ->
          true
        | _ -> false)
      ops
  in
  List.iter
    (fun tag -> check Alcotest.bool "op kind generated" true (seen tag))
    [ `Creat; `Append; `Overwrite; `Mkdir; `Unlink; `Rename; `Vista ]

(* ---------------- single attempts ---------------- *)

let test_attempt_op_starts () =
  let ops =
    Gen.generate ~prng:(Prng.create ~seed:11) Program.gen_spec ~ops:4
  in
  let a = Fuzzer.run_attempt ~spec:Explorer.rio_prot ~seed:1 ~ops ~trip:(-1) () in
  check Alcotest.int "op_starts spans all ops" (List.length ops + 1)
    (Array.length a.Fuzzer.op_starts);
  check Alcotest.bool "boundaries enumerated" true (a.Fuzzer.boundaries > 0);
  check Alcotest.int "labels cover the schedule" a.Fuzzer.boundaries
    (List.length a.Fuzzer.labels);
  check Alcotest.int "first op starts at 0" 0 a.Fuzzer.op_starts.(0);
  check Alcotest.int "last entry closes the schedule" a.Fuzzer.boundaries
    a.Fuzzer.op_starts.(List.length ops);
  Array.iteri
    (fun i s ->
      if i > 0 && s < a.Fuzzer.op_starts.(i - 1) then
        Alcotest.failf "op_starts not monotone at %d" i)
    a.Fuzzer.op_starts

(* ---------------- the fuzz loop ---------------- *)

let test_rio_prot_fuzzes_clean () =
  let r = Fuzzer.run ~spec:Explorer.rio_prot (cfg ~trials:8 ~domains:2 ()) in
  (match r.Fuzzer.counterexamples with
  | [] -> ()
  | c :: _ ->
    Alcotest.failf "rio-prot violated at boundary %d (%s): %s" c.Fuzzer.ordinal
      c.Fuzzer.label
      (String.concat "; " c.Fuzzer.problems));
  check Alcotest.int "zero violations" 0 r.Fuzzer.violations

let test_parallel_determinism () =
  (* Seed 1, 6 trials of shadow-off: trial 5 violates and gets shrunk, so
     this exercises the whole pipeline including the shrinker and the
     forensics replay. *)
  let r1 = Fuzzer.run ~spec:Explorer.shadow_off (cfg ~domains:1 ()) in
  let r4 = Fuzzer.run ~spec:Explorer.shadow_off (cfg ~domains:4 ()) in
  check Alcotest.string "byte-identical render at -j 1 and -j 4" (Fuzzer.render r1)
    (Fuzzer.render r4)

let expect_shrunk_catch ~name r =
  if r.Fuzzer.violations = 0 then
    Alcotest.failf "%s produced no violations: the fuzzer cannot catch a planted hole" name;
  match r.Fuzzer.counterexamples with
  | [] -> Alcotest.failf "%s violations were not shrunk" name
  | c :: _ ->
    if List.length c.Fuzzer.ops > Fuzzer.max_repro_ops then
      Alcotest.failf "%s repro has %d ops (max %d)" name (List.length c.Fuzzer.ops)
        Fuzzer.max_repro_ops;
    check Alcotest.bool "shrunk repro keeps its problems" true (c.Fuzzer.problems <> []);
    check Alcotest.bool "shrunk repro shed ops" true
      (List.length c.Fuzzer.ops <= c.Fuzzer.original_ops);
    check Alcotest.bool "ordinal did not grow" true
      (c.Fuzzer.ordinal <= c.Fuzzer.original_ordinal);
    check Alcotest.bool "narrative present" true (c.Fuzzer.narrative <> [])

let test_shadow_off_caught_and_shrunk () =
  expect_shrunk_catch ~name:"shadow-off"
    (Fuzzer.run ~spec:Explorer.shadow_off (cfg ~domains:2 ()))

let test_registry_off_caught_and_shrunk () =
  expect_shrunk_catch ~name:"registry-off"
    (Fuzzer.run ~spec:Explorer.registry_off (cfg ~trials:2 ~domains:2 ()))

let () =
  Alcotest.run "rio_fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "programs valid by construction" `Quick
            test_gen_programs_are_valid;
          Alcotest.test_case "covers all op kinds" `Quick test_gen_covers_op_kinds;
        ] );
      ( "attempt",
        [ Alcotest.test_case "op_starts attribution" `Quick test_attempt_op_starts ] );
      ( "fuzz",
        [
          Alcotest.test_case "rio-prot fuzzes clean" `Slow test_rio_prot_fuzzes_clean;
          Alcotest.test_case "parallel determinism (with shrink)" `Slow
            test_parallel_determinism;
          Alcotest.test_case "shadow-off caught and shrunk" `Slow
            test_shadow_off_caught_and_shrunk;
          Alcotest.test_case "registry-off caught and shrunk" `Slow
            test_registry_off_caught_and_shrunk;
        ] );
    ]
