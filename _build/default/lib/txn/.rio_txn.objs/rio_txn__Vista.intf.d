lib/txn/vista.mli: Rio_fs
