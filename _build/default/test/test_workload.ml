(* Tests for workloads: scripts, file trees, memTest (replay determinism is
   the critical property), Andrew, Sdet, cp+rm. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Script = Rio_workload.Script
module File_tree = Rio_workload.File_tree
module Memtest = Rio_workload.Memtest
module Andrew = Rio_workload.Andrew
module Sdet = Rio_workload.Sdet
module Cp_rm = Rio_workload.Cp_rm

let check = Alcotest.check

let fresh_fs ?(policy = Fs.Mfs) () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 2) in
  Kernel.format kernel;
  Kernel.mount kernel ~policy

(* ---------------- script ---------------- *)

let test_script_runner () =
  let fs = fresh_fs () in
  let ops =
    [
      Script.Mkdir "/w";
      Script.Open_write "/w/f";
      Script.Write_chunk (Bytes.of_string "chunk1");
      Script.Write_chunk (Bytes.of_string "chunk2");
      Script.Close;
      Script.Stat "/w/f";
      Script.Read_whole "/w/f";
      Script.Rename ("/w/f", "/w/g");
      Script.Unlink "/w/g";
      Script.Rmdir "/w";
    ]
  in
  let r = Script.runner ops in
  check Alcotest.int "ops counted" 10 (Script.ops_total r);
  Script.run_all r fs;
  check Alcotest.bool "finished" true (Script.finished r);
  check Alcotest.bool "cleaned up" false (Fs.exists fs "/w")

let test_script_write_file_ops () =
  let fs = fresh_fs () in
  let ops = Script.write_file_ops "/f" ~seed:5 ~len:20_000 in
  Script.run_all (Script.runner ops) fs;
  check Alcotest.bytes "pattern written in chunks" (Rio_util.Pattern.fill ~seed:5 ~len:20_000)
    (Fs.read_file fs "/f")

let test_script_interleave () =
  let fs = fresh_fs () in
  let mk i =
    Script.runner
      (Script.Mkdir (Printf.sprintf "/s%d" i)
      :: Script.write_file_ops (Printf.sprintf "/s%d/f" i) ~seed:i ~len:100)
  in
  Script.interleave [ mk 1; mk 2; mk 3 ] fs;
  List.iter
    (fun i -> check Alcotest.bool "all scripts ran" true (Fs.exists fs (Printf.sprintf "/s%d/f" i)))
    [ 1; 2; 3 ]

let test_script_interleave_with_callback () =
  let fs = fresh_fs () in
  let calls = ref 0 in
  let r = Script.runner (Script.Mkdir "/cb" :: Script.write_file_ops "/cb/f" ~seed:1 ~len:30_000) in
  Script.interleave_with [ r ] fs ~every:2 (fun () -> incr calls);
  check Alcotest.bool "callback interposed" true (!calls >= 2)

let test_script_describe () =
  let ops =
    [
      Script.Mkdir "/d";
      Script.Open_write "/d/f";
      Script.Write_chunk (Bytes.make 100 'x');
      Script.Write_chunk (Bytes.make 50 'y');
      Script.Close;
      Script.Read_whole "/d/f";
      Script.Stat "/d/f";
      Script.Unlink "/d/f";
      Script.Rmdir "/d";
      Script.Cpu 500;
    ]
  in
  let s = Script.describe ops in
  check Alcotest.int "ops" 10 s.Script.operations;
  check Alcotest.int "bytes written" 150 s.Script.bytes_written;
  check Alcotest.int "creates" 1 s.Script.opens_write;
  check Alcotest.int "whole reads" 1 s.Script.whole_file_reads;
  check Alcotest.int "cpu" 500 s.Script.cpu_us

let test_sdet_scripts_accessor () =
  let sdet = Sdet.create ~scripts:2 ~ops_per_script:15 () in
  check Alcotest.int "two scripts" 2 (List.length (Sdet.scripts sdet));
  List.iter
    (fun ops -> check Alcotest.bool "non-trivial" true (List.length ops > 10))
    (Sdet.scripts sdet)

(* ---------------- file tree ---------------- *)

let test_tree_respects_budget () =
  let spec = File_tree.default ~root:"/src" ~total_bytes:500_000 in
  let t = File_tree.generate spec in
  let total = File_tree.total_bytes t in
  check Alcotest.bool "near the budget" true (total > 250_000 && total <= 500_000)

let test_tree_deterministic () =
  let spec = File_tree.default ~root:"/src" ~total_bytes:200_000 in
  check Alcotest.bool "same spec same tree" true
    (File_tree.generate spec = File_tree.generate spec)

let test_tree_parents_first () =
  let t = File_tree.generate (File_tree.default ~root:"/src" ~total_bytes:300_000) in
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen "/src" ();
  List.iter
    (fun d ->
      (match String.rindex_opt d '/' with
      | Some i when i > 0 ->
        let parent = String.sub d 0 i in
        if parent <> "" && parent <> "/src" then
          check Alcotest.bool (Printf.sprintf "parent of %s first" d) true (Hashtbl.mem seen parent)
      | _ -> ());
      Hashtbl.replace seen d ())
    t.File_tree.dirs

let test_tree_create_and_copy_ops_run () =
  let fs = fresh_fs () in
  let t = File_tree.generate (File_tree.default ~root:"/src" ~total_bytes:150_000) in
  Script.run_all (Script.runner (File_tree.create_ops t)) fs;
  List.iter
    (fun (path, seed, len) ->
      check Alcotest.bytes ("tree file " ^ path) (Rio_util.Pattern.fill ~seed ~len)
        (Fs.read_file fs path))
    t.File_tree.files;
  Script.run_all (Script.runner (File_tree.copy_ops t ~src_root:"/src" ~dst_root:"/dst")) fs;
  let copy = File_tree.rebase t ~src_root:"/src" ~dst_root:"/dst" in
  List.iter
    (fun (path, seed, len) ->
      check Alcotest.bytes ("copied " ^ path) (Rio_util.Pattern.fill ~seed ~len)
        (Fs.read_file fs path))
    copy.File_tree.files;
  Script.run_all (Script.runner (File_tree.remove_ops copy)) fs;
  check Alcotest.bool "copy removed" false (Fs.exists fs "/dst");
  check Alcotest.bool "source intact" true (Fs.exists fs "/src")

(* ---------------- memtest ---------------- *)

let test_memtest_replay_matches_live () =
  (* THE property §3.2 depends on: replaying N steps without a file system
     reconstructs the live model exactly. *)
  let fs = fresh_fs () in
  let config = { Memtest.default_config with Memtest.seed = 123 } in
  let live = Memtest.create config in
  for _ = 1 to 300 do
    Memtest.step live ~fs ()
  done;
  let replayed = Memtest.replay config ~steps:300 in
  check Alcotest.int "file counts agree" (Memtest.file_count live) (Memtest.file_count replayed);
  check Alcotest.int "byte totals agree" (Memtest.total_model_bytes live)
    (Memtest.total_model_bytes replayed);
  (* And both agree with the file system. *)
  check (Alcotest.list Alcotest.string) "no discrepancies" []
    (List.map Memtest.discrepancy_to_string
       (Memtest.compare_with_fs replayed fs ~exempt:[]))

let test_memtest_live_verify_clean () =
  let fs = fresh_fs () in
  let mt = Memtest.create { Memtest.default_config with Memtest.seed = 5 } in
  for _ = 1 to 400 do
    Memtest.step mt ~fs ()
  done;
  check Alcotest.int "no live mismatches on a healthy fs" 0 (Memtest.live_mismatches mt)

let test_memtest_detects_missing_file () =
  let fs = fresh_fs () in
  let mt = Memtest.create { Memtest.default_config with Memtest.seed = 5 } in
  for _ = 1 to 100 do
    Memtest.step mt ~fs ()
  done;
  (* Sabotage: delete a file behind memTest's back. *)
  let victim =
    match Fs.readdir fs "/memtest" with
    | name :: _ when Fs.stat fs ("/memtest/" ^ name) |> fun st -> st.Fs.st_ftype = Rio_fs.Fs_types.Regular ->
      Some ("/memtest/" ^ name)
    | _ -> None
  in
  match victim with
  | None -> () (* unlucky listing order; nothing to assert *)
  | Some path ->
    Fs.unlink fs path;
    let d = Memtest.compare_with_fs mt fs ~exempt:[] in
    check Alcotest.bool "missing file reported" true (d <> [])

let test_memtest_detects_content_change () =
  let fs = fresh_fs () in
  let mt = Memtest.create { Memtest.default_config with Memtest.seed = 6 } in
  for _ = 1 to 100 do
    Memtest.step mt ~fs ()
  done;
  (* Corrupt one file through the fs interface. *)
  let files = Fs.readdir fs "/memtest" in
  let victim =
    List.find_map
      (fun n ->
        let p = "/memtest/" ^ n in
        let st = Fs.stat fs p in
        if st.Fs.st_ftype = Rio_fs.Fs_types.Regular && st.Fs.st_size > 0 then Some p else None)
      files
  in
  match victim with
  | None -> ()
  | Some path ->
    let fd = Fs.open_file fs path in
    Fs.pwrite fs fd ~offset:0 (Bytes.of_string "\xFF");
    Fs.close fs fd;
    let d = Memtest.compare_with_fs mt fs ~exempt:[] in
    check Alcotest.bool "content mismatch reported" true
      (List.exists (function Memtest.Content_mismatch _ -> true | _ -> false) d);
    (* The same file exempted is not reported. *)
    let d' = Memtest.compare_with_fs mt fs ~exempt:[ path ] in
    check Alcotest.bool "exemption honoured" false
      (List.exists
         (function Memtest.Content_mismatch p -> p = path | _ -> false)
         d')

let test_memtest_touched_does_not_advance () =
  let config = { Memtest.default_config with Memtest.seed = 9 } in
  let mt = Memtest.replay config ~steps:50 in
  let t1 = Memtest.touched_by_next_step mt in
  let t2 = Memtest.touched_by_next_step mt in
  check (Alcotest.list Alcotest.string) "idempotent peek" t1 t2;
  check Alcotest.int "steps unchanged" 50 (Memtest.steps_done mt)

let test_memtest_loss_zero_on_healthy () =
  let fs = fresh_fs () in
  let mt = Memtest.create { Memtest.default_config with Memtest.seed = 7 } in
  for _ = 1 to 200 do
    Memtest.step mt ~fs ()
  done;
  check (Alcotest.pair Alcotest.int Alcotest.int) "nothing lost" (0, 0)
    (Memtest.loss_against_fs mt fs)

let test_memtest_fsync_flag_writes_through () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 2) in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Ufs_default in
  let mt =
    Memtest.create { Memtest.default_config with Memtest.seed = 8; fsync_every_write = true }
  in
  for _ = 1 to 30 do
    Memtest.step mt ~fs ()
  done;
  check Alcotest.int "nothing pending after fsynced steps" 0
    (Rio_disk.Disk.pending_writes (Kernel.disk kernel))

let test_memtest_loss_between () =
  let config = { Memtest.default_config with Memtest.seed = 41 } in
  let earlier = Memtest.replay config ~steps:50 in
  let later = Memtest.replay config ~steps:120 in
  let files, bytes = Memtest.loss_between ~earlier ~later in
  check Alcotest.bool "rollback loses something" true (files > 0 && bytes > 0);
  let f0, b0 = Memtest.loss_between ~earlier:later ~later in
  check (Alcotest.pair Alcotest.int Alcotest.int) "self rollback loses nothing" (0, 0) (f0, b0)

(* ---------------- table 2 workloads ---------------- *)

let test_andrew_runs () =
  let fs = fresh_fs () in
  let a = Andrew.create ~scale:0.05 () in
  Andrew.run a fs;
  check Alcotest.bool "link output produced" true (Fs.exists fs "/andrew/a.out");
  check Alcotest.bool "copy phase ran" true (Fs.exists fs "/andrew/copy")

let test_sdet_runs () =
  let fs = fresh_fs () in
  let s = Sdet.create ~scripts:3 ~ops_per_script:40 () in
  check Alcotest.int "script count" 3 (Sdet.script_count s);
  Sdet.run s fs;
  List.iter
    (fun i -> check Alcotest.bool "script dir exists" true (Fs.exists fs (Printf.sprintf "/sdet%d" i)))
    [ 0; 1; 2 ]

let test_cp_rm_phases () =
  let fs = fresh_fs () in
  let w = Cp_rm.create ~total_bytes:200_000 () in
  Cp_rm.setup w fs;
  check Alcotest.bool "source exists" true (Fs.exists fs (Cp_rm.source_root w));
  Cp_rm.run_cp w fs;
  check Alcotest.bool "copy exists" true (Fs.exists fs (Cp_rm.dest_root w));
  Cp_rm.run_rm w fs;
  check Alcotest.bool "copy removed" false (Fs.exists fs (Cp_rm.dest_root w));
  check Alcotest.bool "source still there" true (Fs.exists fs (Cp_rm.source_root w))

let () =
  Alcotest.run "rio_workload"
    [
      ( "script",
        [
          Alcotest.test_case "runner" `Quick test_script_runner;
          Alcotest.test_case "write_file_ops" `Quick test_script_write_file_ops;
          Alcotest.test_case "interleave" `Quick test_script_interleave;
          Alcotest.test_case "interleave callback" `Quick test_script_interleave_with_callback;
          Alcotest.test_case "describe" `Quick test_script_describe;
          Alcotest.test_case "sdet scripts" `Quick test_sdet_scripts_accessor;
        ] );
      ( "file_tree",
        [
          Alcotest.test_case "budget" `Quick test_tree_respects_budget;
          Alcotest.test_case "deterministic" `Quick test_tree_deterministic;
          Alcotest.test_case "parents first" `Quick test_tree_parents_first;
          Alcotest.test_case "create/copy/remove ops" `Quick test_tree_create_and_copy_ops_run;
        ] );
      ( "memtest",
        [
          Alcotest.test_case "replay == live" `Quick test_memtest_replay_matches_live;
          Alcotest.test_case "live verify clean" `Quick test_memtest_live_verify_clean;
          Alcotest.test_case "detects missing file" `Quick test_memtest_detects_missing_file;
          Alcotest.test_case "detects content change" `Quick test_memtest_detects_content_change;
          Alcotest.test_case "peek does not advance" `Quick test_memtest_touched_does_not_advance;
          Alcotest.test_case "zero loss healthy" `Quick test_memtest_loss_zero_on_healthy;
          Alcotest.test_case "fsync flag" `Quick test_memtest_fsync_flag_writes_through;
          Alcotest.test_case "loss between models" `Quick test_memtest_loss_between;
        ] );
      ( "table2_workloads",
        [
          Alcotest.test_case "andrew" `Quick test_andrew_runs;
          Alcotest.test_case "sdet" `Quick test_sdet_runs;
          Alcotest.test_case "cp+rm" `Quick test_cp_rm_phases;
        ] );
    ]
