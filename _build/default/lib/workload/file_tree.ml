module Prng = Rio_util.Prng

type spec = {
  seed : int;
  root : string;
  total_bytes : int;
  files_per_dir : int;
  dirs_per_level : int;
  depth : int;
}

let default ~root ~total_bytes =
  { seed = 7; root; total_bytes; files_per_dir = 12; dirs_per_level = 4; depth = 3 }

type t = {
  dirs : string list;
  files : (string * int * int) list;
}

(* Source-file size: mostly a few KB, occasional large file — a clipped
   geometric mix resembling measured source trees. *)
let file_size prng =
  let roll = Prng.int prng 100 in
  if roll < 60 then Prng.int_in prng 512 4096
  else if roll < 90 then Prng.int_in prng 4096 10_240
  else Prng.int_in prng 10_240 40_960

(* Budget by 8 KB-block footprint (what du reports), since the simulated
   FS has no sub-block fragments. *)
let footprint size = (size + 8191) / 8192 * 8192

let generate spec =
  let prng = Prng.create ~seed:spec.seed in
  let dirs = ref [] and files = ref [] in
  let budget = ref spec.total_bytes in
  let rec build dir level =
    dirs := dir :: !dirs;
    let n_files = spec.files_per_dir + Prng.int prng (max 1 (spec.files_per_dir / 2)) in
    for i = 0 to n_files - 1 do
      if !budget > 0 then begin
        let size = max 1 (min (file_size prng) !budget) in
        budget := !budget - footprint size;
        let name = Printf.sprintf "%s/f%02d.c" dir i in
        files := (name, Prng.int prng 1_000_000, size) :: !files
      end
    done;
    if level < spec.depth && !budget > 0 then
      for d = 0 to spec.dirs_per_level - 1 do
        if !budget > 0 then build (Printf.sprintf "%s/d%d" dir d) (level + 1)
      done
  in
  build spec.root 0;
  (* Keep generating wider trees until the byte budget is met. *)
  let extra = ref 0 in
  while !budget > 0 do
    let dir = Printf.sprintf "%s/x%d" spec.root !extra in
    incr extra;
    dirs := dir :: !dirs;
    let n = 16 in
    for i = 0 to n - 1 do
      if !budget > 0 then begin
        let size = max 1 (min (file_size prng) !budget) in
        budget := !budget - footprint size;
        files := (Printf.sprintf "%s/f%02d.c" dir i, Prng.int prng 1_000_000, size) :: !files
      end
    done
  done;
  { dirs = List.rev !dirs; files = List.rev !files }

let total_bytes t = List.fold_left (fun acc (_, _, size) -> acc + size) 0 t.files

let create_ops t =
  List.map (fun d -> Script.Mkdir d) t.dirs
  @ List.concat_map (fun (path, seed, len) -> Script.write_file_ops path ~seed ~len) t.files

let swap_root path ~src_root ~dst_root =
  if String.length path >= String.length src_root
     && String.sub path 0 (String.length src_root) = src_root
  then dst_root ^ String.sub path (String.length src_root) (String.length path - String.length src_root)
  else path

let rebase t ~src_root ~dst_root =
  {
    dirs = List.map (fun d -> swap_root d ~src_root ~dst_root) t.dirs;
    files = List.map (fun (p, s, n) -> (swap_root p ~src_root ~dst_root, s, n)) t.files;
  }

let copy_ops t ~src_root ~dst_root =
  let dst = rebase t ~src_root ~dst_root in
  List.map (fun d -> Script.Mkdir d) dst.dirs
  @ List.concat_map
      (fun ((src_path, _, len), (dst_path, seed, _)) ->
        (* cp reads the source then writes the destination in chunks. *)
        (Script.Read_whole src_path :: Script.write_file_ops dst_path ~seed ~len))
      (List.combine t.files dst.files)

let remove_ops t =
  List.map (fun (path, _, _) -> Script.Unlink path) t.files
  @ List.rev_map (fun d -> Script.Rmdir d) t.dirs
