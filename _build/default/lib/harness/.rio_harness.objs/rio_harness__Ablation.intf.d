lib/harness/ablation.mli: Rio_util
