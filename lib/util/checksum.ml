(* Slicing-by-16: table k (1-15) holds the CRC of byte n followed by k
   zero bytes, so sixteen bytes fold into the accumulator per iteration —
   two independent 8-byte halves keep the load-xor chains short. Values
   are identical to the classic one-byte-at-a-time loop (table 0), which
   still handles the unaligned tail. *)
let crc_tables =
  lazy
    (let t = Array.make_matrix 16 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
       done;
       t.(0).(n) <- !c
     done;
     for n = 0 to 255 do
       let c = ref t.(0).(n) in
       for k = 1 to 15 do
         c := t.(0).(!c land 0xFF) lxor (!c lsr 8);
         t.(k).(n) <- !c
       done
     done;
     t)

(* The 16-byte folding step shared by [crc32] and [crc32_raw]: feed the
   register [c] and the block at [i] through the sliced tables. All reads
   are 32-bit little-endian so everything stays inside OCaml's immediate
   int range; the register always fits in 32 bits. *)
let[@inline] fold16 t c b i =
  let w0 = Int32.to_int (Bytes.get_int32_le b i) land 0xFFFF_FFFF lxor c in
  let w1 = Int32.to_int (Bytes.get_int32_le b (i + 4)) land 0xFFFF_FFFF in
  let w2 = Int32.to_int (Bytes.get_int32_le b (i + 8)) land 0xFFFF_FFFF in
  let w3 = Int32.to_int (Bytes.get_int32_le b (i + 12)) land 0xFFFF_FFFF in
  Array.unsafe_get (Array.unsafe_get t 15) (w0 land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 14) ((w0 lsr 8) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 13) ((w0 lsr 16) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 12) ((w0 lsr 24) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 11) (w1 land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 10) ((w1 lsr 8) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 9) ((w1 lsr 16) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 8) ((w1 lsr 24) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 7) (w2 land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 6) ((w2 lsr 8) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 5) ((w2 lsr 16) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 4) ((w2 lsr 24) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 3) (w3 land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 2) ((w3 lsr 8) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 1) ((w3 lsr 16) land 0xFF)
  lxor Array.unsafe_get (Array.unsafe_get t 0) ((w3 lsr 24) land 0xFF)

let crc32 ?(init = 0) b ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length b);
  let t = Lazy.force crc_tables in
  let t0 = t.(0) in
  let c = ref (init lxor 0xFFFFFFFF) in
  let i = ref pos in
  let last = pos + len in
  while last - !i >= 16 do
    c := fold16 t !c b !i;
    i := !i + 16
  done;
  while !i < last do
    c := Array.unsafe_get t0 ((!c lxor Char.code (Bytes.unsafe_get b !i)) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let crc32_string s =
  let b = Bytes.unsafe_of_string s in
  crc32 b ~pos:0 ~len:(Bytes.length b)

(* ---- incremental support ----

   The CRC register is a linear function (over GF(2)) of the initial
   register and the message bits.  Two consequences used by
   [Phys_mem]'s incremental checksum maintenance:

     crc(M')  =  crc(M)  xor  shift (raw D) (trailing zero bytes)

   where M and M' differ only in a range whose old-xor-new bytes are D:
   the init/xorout constants cancel in the difference, leading zero
   bytes fix the register at 0, and the trailing zero bytes are a
   linear operator applied with the matrix trick below. *)

(* Raw register: process [len] bytes starting from register 0, no
   init / final xor.  Same tables and folding as [crc32]. *)
let crc32_raw b ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length b);
  let t = Lazy.force crc_tables in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let c = ref 0 in
  let i = ref pos in
  let last = pos + len in
  while last - !i >= 8 do
    let lo = Int32.to_int (Bytes.get_int32_le b !i) land 0xFFFF_FFFF lxor !c in
    let hi = Int32.to_int (Bytes.get_int32_le b (!i + 4)) land 0xFFFF_FFFF in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (hi land 0xFF)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((hi lsr 24) land 0xFF);
    i := !i + 8
  done;
  while !i < last do
    c := Array.unsafe_get t0 ((!c lxor Char.code (Bytes.unsafe_get b !i)) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c

let apply_mat m c =
  let r = ref 0 and c = ref c and i = ref 0 in
  while !c <> 0 do
    if !c land 1 = 1 then r := !r lxor Array.unsafe_get m !i;
    incr i;
    c := !c lsr 1
  done;
  !r

(* mats.(k).(i): the register after feeding 2^k zero bytes starting from
   register [1 lsl i] — the linear operator as its images of the basis. *)
let zero_mats =
  lazy
    (let t0 = (Lazy.force crc_tables).(0) in
     let mats = Array.make 26 [||] in
     mats.(0) <-
       Array.init 32 (fun i ->
           let c = 1 lsl i in
           t0.(c land 0xFF) lxor (c lsr 8));
     for k = 1 to 25 do
       let prev = mats.(k - 1) in
       mats.(k) <- Array.init 32 (fun i -> apply_mat prev prev.(i))
     done;
     mats)

(* The register after feeding [zeros] zero bytes starting from register
   [c] (square-and-multiply over the per-power-of-two operators). *)
let shift_zeros c ~zeros =
  assert (zeros >= 0);
  if c = 0 || zeros = 0 then c
  else begin
    let mats = Lazy.force zero_mats in
    let c = ref c and z = ref zeros and k = ref 0 in
    while !z <> 0 && !c <> 0 do
      if !z land 1 = 1 then c := apply_mat mats.(!k) !c;
      incr k;
      z := !z lsr 1
    done;
    !c
  end

let fletcher32 b ~pos ~len =
  assert (pos >= 0 && len >= 0 && pos + len <= Bytes.length b);
  let sum1 = ref 0xFFFF and sum2 = ref 0xFFFF in
  for i = pos to pos + len - 1 do
    sum1 := !sum1 + Char.code (Bytes.unsafe_get b i);
    sum2 := !sum2 + !sum1;
    if !sum1 >= 65535 then sum1 := !sum1 - 65535;
    if !sum2 >= 65535 then sum2 := !sum2 - 65535
  done;
  (!sum2 lsl 16) lor !sum1

type algorithm = Crc32 | Fletcher32

let compute algo b ~pos ~len =
  match algo with
  | Crc32 -> crc32 b ~pos ~len
  | Fletcher32 -> fletcher32 b ~pos ~len

let algorithm_name = function Crc32 -> "crc32" | Fletcher32 -> "fletcher32"
