test/test_workload.ml: Alcotest Bytes Hashtbl List Printf Rio_disk Rio_fs Rio_kernel Rio_sim Rio_util Rio_workload String
