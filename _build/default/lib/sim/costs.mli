(** Cost-model constants for the performance experiments (Table 2).

    Calibrated against the paper's platform: a DEC 3000/600 (Alpha 21064,
    175 MHz, 128 MB) with an early-1990s SCSI disk. We claim shape, not
    absolute numbers; every constant can be overridden to test sensitivity. *)

type t = {
  syscall_overhead : Rio_util.Units.usec;
      (** Fixed cost to enter/exit the kernel for one file operation. *)
  cpu_byte_copy_ns : int;
      (** CPU cost to move one byte memory-to-memory, in nanoseconds
          (kernel bcopy, ~50 MB/s on the 21064). *)
  namei_cost : Rio_util.Units.usec;
      (** Pathname lookup over in-core directories. *)
  disk_seek_us : Rio_util.Units.usec;  (** Average seek. *)
  disk_rotation_us : Rio_util.Units.usec;  (** Average rotational delay. *)
  disk_transfer_bytes_per_us : int;
      (** Media transfer rate (bytes per µs; 5 = 5 MB/s). *)
  disk_sector_bytes : int;
  disk_track_sectors : int;
      (** Sectors per track: contiguous requests within a track pay transfer
          only. *)
  protection_toggle_us_per_page : float;
      (** Cost to flip a page's write-permission PTE bit and shoot the TLB
          entry (Rio is in-kernel: no system call, paper §6). *)
  registry_update_us : float;
      (** Cost to update one registry entry (40 bytes, paper §2.2). *)
  checksum_byte_ns : int;
      (** Per-byte cost of the file-cache checksum maintenance (a
          word-additive checksum over cache-resident data). *)
  page_copy_ns : int;
      (** Per-byte cost of an in-cache page-to-page copy (Rio's shadow
          paging). *)
  code_patch_check_ns : int;
      (** Cost of one inserted address check (code-patching protection). *)
  update_interval : Rio_util.Units.usec;
      (** Period of the update daemon (30 s in Digital Unix). *)
}

val default : t
(** DEC 3000/600-flavoured calibration. *)

val fast_disk : t
(** A modern-disk variant used by sensitivity ablations. *)

val transfer_time : t -> int -> Rio_util.Units.usec
(** [transfer_time t bytes] is media transfer time for [bytes]. *)

val copy_time : t -> int -> Rio_util.Units.usec
(** [copy_time t bytes] is CPU time to copy [bytes] memory-to-memory. *)

val checksum_time : t -> int -> Rio_util.Units.usec

val page_copy_time : t -> int -> Rio_util.Units.usec

val pp : Format.formatter -> t -> unit
