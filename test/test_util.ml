(* Unit and property tests for Rio_util: PRNG, checksums, stats, tables,
   patterns, units. *)

module Prng = Rio_util.Prng
module Checksum = Rio_util.Checksum
module Stats = Rio_util.Stats
module Table = Rio_util.Table
module Pattern = Rio_util.Pattern
module Units = Rio_util.Units

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- PRNG ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let xs = List.init 10 (fun _ -> Prng.next a) in
  let ys = List.init 10 (fun _ -> Prng.next b) in
  check Alcotest.bool "different streams" true (xs <> ys)

let test_prng_copy () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.next a);
  let b = Prng.copy a in
  check Alcotest.int "copy continues identically" (Prng.next a) (Prng.next b)

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.next a) in
  let ys = List.init 20 (fun _ -> Prng.next b) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_prng_bool_varies () =
  let a = Prng.create ~seed:3 in
  let flips = List.init 200 (fun _ -> Prng.bool a) in
  check Alcotest.bool "both outcomes appear" true
    (List.mem true flips && List.mem false flips)

let test_prng_chance_extremes () =
  let a = Prng.create ~seed:3 in
  check Alcotest.bool "p=0 never" false (Prng.chance a 0.);
  check Alcotest.bool "p=1 always" true (Prng.chance a 1.)

let test_prng_choose_weighted () =
  let a = Prng.create ~seed:3 in
  for _ = 1 to 50 do
    let v = Prng.choose_weighted a [| ("x", 0.0); ("y", 1.0) |] in
    check Alcotest.string "zero-weight never chosen" "y" v
  done

let prop_int_in_range =
  QCheck.Test.make ~name:"Prng.int within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let prop_int_in_inclusive =
  QCheck.Test.make ~name:"Prng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range 0 100) (int_range 0 100))
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let p = Prng.create ~seed in
      let v = Prng.int_in p lo hi in
      v >= lo && v <= hi)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Prng.shuffle (Prng.create ~seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* ---------------- checksums ---------------- *)

let test_crc32_known_vector () =
  (* CRC-32 of "123456789" is 0xCBF43926. *)
  check Alcotest.int "standard check value" 0xCBF43926 (Checksum.crc32_string "123456789")

let test_crc32_empty () = check Alcotest.int "empty" 0 (Checksum.crc32_string "")

let test_fletcher_differs_on_change () =
  let b = Bytes.of_string "hello world" in
  let c1 = Checksum.fletcher32 b ~pos:0 ~len:(Bytes.length b) in
  Bytes.set b 4 'x';
  let c2 = Checksum.fletcher32 b ~pos:0 ~len:(Bytes.length b) in
  check Alcotest.bool "changed byte changes sum" true (c1 <> c2)

let prop_crc_detects_single_bit_flip =
  QCheck.Test.make ~name:"crc32 detects any single bit flip" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 64)) (int_range 0 1000))
    (fun (s, r) ->
      QCheck.assume (String.length s > 0);
      let b = Bytes.of_string s in
      let len = Bytes.length b in
      let before = Checksum.crc32 b ~pos:0 ~len in
      let pos = r mod len and bit = r mod 8 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      Checksum.crc32 b ~pos:0 ~len <> before)

let prop_crc_slice_consistent =
  QCheck.Test.make ~name:"crc32 of a slice equals crc32 of the copy" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 4 80))
    (fun s ->
      let b = Bytes.of_string s in
      let mid = Bytes.length b / 2 in
      Checksum.crc32 b ~pos:mid ~len:(Bytes.length b - mid)
      = Checksum.crc32_string (String.sub s mid (String.length s - mid)))

(* ---------------- stats ---------------- *)

let feq = Alcotest.float 1e-9

let test_mean () = check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stddev () =
  check (Alcotest.float 1e-6) "sample stddev" 1.290994 (Stats.stddev [| 1.; 2.; 3.; 4. |])

let test_percentile_median () =
  check feq "median odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  check feq "median even" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |]);
  check feq "p0 is min" 1. (Stats.percentile [| 3.; 1.; 2. |] 0.);
  check feq "p100 is max" 3. (Stats.percentile [| 3.; 1.; 2. |] 100.)

let test_percentile_edges () =
  check feq "singleton, any p" 7. (Stats.percentile [| 7. |] 33.);
  check feq "interpolates" 1.5 (Stats.percentile [| 1.; 2. |] 50.);
  check feq "p100 lands exactly on the last rank" 4. (Stats.percentile [| 4.; 2.; 1.; 3. |] 100.);
  (* Already-sorted input must not be mutated. *)
  let xs = [| 1.; 2.; 3. |] in
  ignore (Stats.percentile xs 50.);
  check (Alcotest.array feq) "input untouched" [| 1.; 2.; 3. |] xs

let test_percentile_nan () =
  (* Float.compare gives NaN a definite place (it sorts first), so a NaN
     sample cannot scramble the order of the real values the way
     polymorphic compare could: upper percentiles stay meaningful. *)
  check feq "p100 ignores the NaN" 3. (Stats.percentile [| nan; 3.; 1.; 2. |] 100.);
  (* Sorted: [nan; 1; 2; 3] — the median interpolates between 1 and 2. *)
  check feq "median of 3 reals + NaN" 1.5 (Stats.percentile [| 2.; nan; 3.; 1. |] 50.);
  check Alcotest.bool "p0 is the NaN itself" true
    (Float.is_nan (Stats.percentile [| nan; 3.; 1.; 2. |] 0.))

let test_wilson () =
  let lo, hi = Stats.wilson_interval 0 0 in
  check feq "empty lo" 0. lo;
  check feq "empty hi" 1. hi;
  let lo, hi = Stats.wilson_interval 5 10 in
  check Alcotest.bool "contains the point estimate" true (lo < 0.5 && hi > 0.5)

let test_summarize () =
  let s = Stats.summarize [| 2.; 4.; 6. |] in
  check Alcotest.int "n" 3 s.Stats.n;
  check feq "mean" 4. s.Stats.mean;
  check feq "min" 2. s.Stats.min;
  check feq "max" 6. s.Stats.max

(* ---------------- tables ---------------- *)

let test_table_render () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "long-cell" ];
  let s = Table.render t in
  check Alcotest.bool "has header" true
    (String.length s > 0 && String.index_opt s 'a' <> None);
  check Alcotest.bool "pads short rows" true (String.index_opt s 'x' <> None)

let test_table_cells () =
  check Alcotest.string "zero renders blank" "" (Table.cell_int 0);
  check Alcotest.string "nonzero renders" "7" (Table.cell_int 7);
  check Alcotest.string "float default" "1.5" (Table.cell_float 1.5)

let test_table_too_many_cells () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "overfull row rejected" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

(* ---------------- pattern ---------------- *)

let test_pattern_deterministic () =
  check Alcotest.bytes "same seed same bytes" (Pattern.fill ~seed:9 ~len:64)
    (Pattern.fill ~seed:9 ~len:64)

let test_pattern_seed_differs () =
  check Alcotest.bool "different seeds differ" true
    (not (Bytes.equal (Pattern.fill ~seed:1 ~len:64) (Pattern.fill ~seed:2 ~len:64)))

let prop_pattern_fill_at_consistent =
  QCheck.Test.make ~name:"fill_at slices the fill stream" ~count:200
    QCheck.(triple small_int (int_range 0 100) (int_range 1 100))
    (fun (seed, off, len) ->
      let whole = Pattern.fill ~seed ~len:(off + len) in
      Bytes.equal (Bytes.sub whole off len) (Pattern.fill_at ~seed ~offset:off ~len))

(* ---------------- units ---------------- *)

let test_units () =
  check Alcotest.int "sec" 1_000_000 (Units.sec 1);
  check Alcotest.int "msec" 2_000 (Units.msec 2);
  check Alcotest.int "minutes" 60_000_000 (Units.minutes 1);
  check feq "roundtrip" 1.5 (Units.sec_of_usec (Units.usec_of_sec_f 1.5));
  check Alcotest.int "mb" (1024 * 1024) (Units.mb 1)

let () =
  Alcotest.run "rio_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "bool varies" `Quick test_prng_bool_varies;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "choose_weighted skips zero weight" `Quick test_prng_choose_weighted;
          qtest prop_int_in_range;
          qtest prop_int_in_inclusive;
          qtest prop_shuffle_permutation;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "crc32 known vector" `Quick test_crc32_known_vector;
          Alcotest.test_case "crc32 empty" `Quick test_crc32_empty;
          Alcotest.test_case "fletcher detects change" `Quick test_fletcher_differs_on_change;
          qtest prop_crc_detects_single_bit_flip;
          qtest prop_crc_slice_consistent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentiles" `Quick test_percentile_median;
          Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
          Alcotest.test_case "percentile with NaN" `Quick test_percentile_nan;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
          Alcotest.test_case "summarize" `Quick test_summarize;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "overfull row" `Quick test_table_too_many_cells;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "deterministic" `Quick test_pattern_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_pattern_seed_differs;
          qtest prop_pattern_fill_at_consistent;
        ] );
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
    ]
