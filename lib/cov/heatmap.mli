(** Text heatmaps over a merged {!Cov.t} coverage map.

    Two grids, both rows-by-boundary-class: class x crash-ordinal bucket
    (where in the schedule crashes landed) and class x operation kind
    (what was in flight). Cells print their crash-trial count, ['.'] for
    an empty cell; each row ends with the class's enumerated / crashed /
    violated totals and an [UNHIT] flag when a campaign never crashed
    inside a class it enumerated. Output is a pure function of the map,
    so campaigns that merge deterministically render byte-identically at
    any [-j N]. *)

val render : Cov.t -> string
(** The full report: a summary head, both grids, and the unhit-class
    line ("unhit label classes: none" when coverage is full). *)

val summary : Cov.t -> string
(** The one-line summary head only. *)
