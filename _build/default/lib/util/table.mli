(** ASCII table rendering for experiment reports (Table 1, Table 2, ...). *)

type align = Left | Right

type t
(** A table under construction. *)

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given headers. *)

val add_row : t -> string list -> unit
(** Append a data row. Rows shorter than the header are padded with empty
    cells; longer rows are an error. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render with box-drawing in plain ASCII. *)

val pp : Format.formatter -> t -> unit

val cell_int : int -> string
(** An integer cell; 0 renders as an empty cell (matching the paper's blank
    entries for fault types with no corruptions). *)

val cell_float : ?decimals:int -> float -> string
