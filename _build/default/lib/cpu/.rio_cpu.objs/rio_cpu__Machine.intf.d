lib/cpu/machine.mli: Format Rio_mem Rio_vm
