examples/file_server.ml: Bytes Format List Printf Rio_core Rio_fs Rio_kernel Rio_sim Rio_util Rio_workload
