lib/vm/mmu.mli: Format Page_table Rio_mem Tlb
