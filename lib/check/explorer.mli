(** The crash-schedule explorer: checking instead of sampling.

    The paper's reliability numbers come from {e sampling} crash times
    (§3.1). The explorer instead runs each {!Scenario} once to {e count}
    its crash boundaries, then re-runs it once per boundary — identical
    seed, fresh world — crashing exactly there, warm-rebooting (memory
    restore + fsck), and auditing the recovered file system. Every
    reachable crash schedule of the scripted operation is checked; zero
    violations is a proof over the enumeration, not a statistical
    estimate.

    Trials shard across domains via {!Rio_parallel.Pool} and merge in
    boundary order, so {!render} output is byte-identical at any
    [domains]. Violations are re-run with the flight recorder live and
    reported as minimal counterexample narratives
    ({!Rio_obs.Forensics}). *)

(** The Rio configuration under test. The two unsafe configurations exist
    to validate the checker itself: a checker that cannot catch a known
    hole proves nothing by finding no violations. *)
type spec = {
  label : string;
  protection : bool;  (** MMU write protection (orthogonal to atomicity). *)
  shadow : bool;  (** §2.3 shadow-paged metadata updates. *)
  registry : bool;  (** §2.2 registry maintenance. *)
  policy : Rio_fs.Fs.policy;  (** Mount policy (default [Rio_policy]). *)
  backend : Rio_disk.Backend.kind;  (** Persistence backend under the world. *)
  wb_unordered : bool;  (** Plant the write-behind ordering bug. *)
  cold : bool;
      (** Audit crashes with {e cold} recovery (fsck + remount, no warm
          reboot) against the sync-durability contract. Fuzzer only; the
          explorer's scenario checks assume the warm path. *)
  expect_safe : bool;  (** What the matrix asserts about this config. *)
}

val rio_prot : spec
val rio_noprot : spec
val shadow_off : spec
val registry_off : spec

val rio_idle : spec
(** Rio with idle write-back ([Fs.Rio_idle]): the update daemon and sync
    route through the write-behind pipeline, so its wb-queue/wb-flush/
    wb-commit orderings become crash points. Safe under warm reboot. *)

val wb_cold : spec
(** [rio_idle] audited with cold recovery: synced data must survive on
    disk alone. Safe — the ordered pipeline honors the barrier. *)

val wb_order : spec
(** [wb_cold] with the planted write-behind ordering bug
    ([wb_unordered]): known-unsafe, the fuzz matrix must catch it. *)

val matrix_specs : spec list
(** The four classic ablations plus {!rio_idle}, in report order. *)

val fuzz_specs : spec list
(** {!matrix_specs} plus the cold-recovery pair ({!wb_cold},
    {!wb_order}) — the fuzzer's default matrix. *)

type violation = {
  ordinal : int;  (** Which crash point (index into the boundary order). *)
  label : string;  (** The boundary's stable label. *)
  problems : string list;  (** What {!Scenario.check} found. *)
  narrative : string list;  (** Forensics counterexample (re-run, traced). *)
}

type scenario_result = {
  slug : string;
  name : string;
  crash_points : int;
  violations : violation list;
}

type report = {
  spec : spec;
  scenarios : scenario_result list;
  coverage : Rio_cov.Cov.t option;
      (** The campaign's crash-space coverage map ([config.coverage]):
          every schedule noted, every trip recorded as a
          (class, scenario, ordinal-bucket) cell. Deterministic at any
          [domains]. *)
}

val run :
  ?spec:spec -> ?only:string list -> ?interleave:int -> Rio_harness.Run.config -> report
(** Explore every crash point of every scenario (or just the [only]
    slugs). Uses [config.seed], [config.domains], and [config.coverage];
    [trials] and [scale] are ignored — the schedule is exhaustive, not
    sampled. Raises [Invalid_argument] on an unknown slug.

    With [interleave = n > 0], each multi-task scenario
    ({!Scenario.multis}) additionally contributes [n] jobs — one per
    deterministic scheduler seed, reported under the slug
    ["<slug>#i<j>"] — exploring the cross product of task interleavings
    and crash points. Crash-point enumeration within a job is exhaustive
    as always; the interleavings are sampled by seed. Coverage cells from
    multi jobs carry the ["crasher"] task role when the crash landed
    inside a task's syscall ([solo] otherwise), feeding the task axis of
    {!Rio_cov.Heatmap}. Default [0]: no multi jobs, output unchanged. *)

val crash_points : report -> int
val violation_count : report -> int

val render : report -> string
(** Deterministic plain-text report: per-scenario table plus one
    counterexample block per violation. *)

val spec_json : spec -> Rio_util.Json.t
(** The configuration under test, as JSON (shared with the fuzzer). *)

val report_json : report -> Rio_util.Json.t
(** Machine-readable verdicts (spec, per-scenario crash points and
    counterexamples, totals, coverage when collected). Deterministic:
    byte-identical at any [domains]. *)

type matrix_entry = {
  entry_report : report;
  ok : bool;  (** The verdict matched the spec's [expect_safe]. *)
}

val run_matrix :
  ?specs:spec list -> ?only:string list -> Rio_harness.Run.config -> matrix_entry list

val matrix_ok : matrix_entry list -> bool

val matrix_json : matrix_entry list -> Rio_util.Json.t
(** One entry per configuration: its verdict plus {!report_json}. *)

val render_matrix : matrix_entry list -> string
(** Verdict table plus, for each unsafe configuration that was caught,
    its first counterexample narrative. *)
