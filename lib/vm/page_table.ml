type t = { entries : Pte.t array }

let create ~pages =
  { entries = Array.init pages (fun pfn -> Pte.make ~pfn ~valid:true ~writable:true) }

let pages t = Array.length t.entries

let entries t = t.entries

let lookup t ~vpn =
  if vpn >= 0 && vpn < Array.length t.entries then Some t.entries.(vpn) else None

let set_valid t ~vpn v =
  match lookup t ~vpn with
  | Some pte -> pte.Pte.valid <- v
  | None -> invalid_arg "Page_table.set_valid: vpn out of range"

let set_writable t ~vpn w =
  match lookup t ~vpn with
  | Some pte -> pte.Pte.writable <- w
  | None -> invalid_arg "Page_table.set_writable: vpn out of range"

let is_writable t ~vpn =
  match lookup t ~vpn with
  | Some pte -> pte.Pte.valid && pte.Pte.writable
  | None -> false

let protected_count t =
  Array.fold_left
    (fun acc (pte : Pte.t) -> if pte.valid && not pte.writable then acc + 1 else acc)
    0 t.entries
