module Isa = Rio_cpu.Isa

type arg_spec =
  | Copy
  | Zero
  | Checksum
  | List_insert
  | List_remove
  | Bitmap_alloc
  | Lock_acquire
  | Lock_release
  | Counter_bump
  | Ptr_chase
  | Queue_put
  | Mem_scan
  | Word_copy
  | Compound
  | Dlist_insert
  | Hash_insert

type routine = {
  name : string;
  entry : int;
  spec : arg_spec;
}

type t = {
  program : Asm.program;
  routines : routine list;
  halt_pad : int;
}

let halt_pad_symbol = "k_halt_pad"

(* Consistency messages, in the spirit of the 59 distinct kernel messages the
   paper observed. Ids are stable: tests and crash classification key on
   them. *)
let messages =
  [|
    "unused";
    "free list head is null";
    "free list next pointer is null";
    "inserting null node into free list";
    "inserting node that is already list head";
    "lock word out of range";
    "releasing lock that is not held";
    "counter exceeded sanity bound";
    "pointer chase step budget exhausted (cycle?)";
    "ring buffer index out of range";
    "bitmap scan found no free slot";
    "buffer length is negative";
    "copy source is null";
    "copy destination is null";
    "scan address is null";
    "checksum source is null";
    "queue value is null";
    "list node points to itself";
    "doubly-linked node has a bad back pointer";
    "hash bucket index out of range";
  |]

let message_count = Array.length messages - 1

let message_text id =
  if id >= 1 && id < Array.length messages then messages.(id)
  else Printf.sprintf "unknown consistency check #%d" id

(* message ids *)
let msg_free_head_null = 1
let msg_free_next_null = 2
let msg_insert_null = 3
let msg_insert_head = 4
let msg_lock_range = 5
let msg_release_unheld = 6
let msg_counter_bound = 7
let msg_chase_budget = 8
let msg_ring_range = 9
let _msg_bitmap_full = 10
let msg_len_negative = 11
let msg_copy_src_null = 12
let msg_copy_dst_null = 13
let msg_scan_null = 14
let msg_cksum_null = 15
let msg_queue_val_null = 16
let msg_self_loop = 17
let msg_dlist_bad_back = 18
let msg_hash_bucket_range = 19

(* Emit an in-loop backstop: panic if the countdown register [r] has gone
   negative — the overrun guard production loops carry, and one of the
   "multitude of consistency checks" that stop a mutated kernel quickly
   (§3.3). Uses r14/r15 as scratch. *)
let emit_negative_guard a r =
  Asm.emit a (Isa.Slti (14, r, 0));
  Asm.emit a (Isa.Xori (14, 14, 1));
  Asm.emit a (Isa.Assert_nz (14, msg_len_negative))

(* Registers: args r1..r5, temps r6..r15. *)
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9

let emit_bcopy a ~entry =
  Asm.bind a entry;
  Asm.global a "k_bcopy";
  (* (src=r1, dst=r2, len=r3): byte copy with null/negative checks. *)
  Asm.emit a (Isa.Assert_nz (r1, msg_copy_src_null));
  Asm.emit a (Isa.Assert_nz (r2, msg_copy_dst_null));
  Asm.emit a (Isa.Slti (r6, r3, 0));
  Asm.emit a (Isa.Xori (r6, r6, 1));
  Asm.emit a (Isa.Assert_nz (r6, msg_len_negative));
  let loop = Asm.fresh_label a "bcopy_loop" in
  let done_ = Asm.fresh_label a "bcopy_done" in
  Asm.bind a loop;
  Asm.beq a r3 0 done_;
  emit_negative_guard a r3;
  Asm.emit a (Isa.Ldb (r6, r1, 0));
  Asm.emit a (Isa.Stb (r6, r2, 0));
  Asm.emit a (Isa.Addi (r1, r1, 1));
  Asm.emit a (Isa.Addi (r2, r2, 1));
  Asm.emit a (Isa.Addi (r3, r3, -1));
  Asm.jmp a loop;
  Asm.bind a done_;
  Asm.ret a

let emit_word_copy a =
  Asm.global a "k_word_copy";
  (* (src=r1, dst=r2, words=r3): the hot 8-bytes-at-a-time bcopy. *)
  Asm.emit a (Isa.Assert_nz (r1, msg_copy_src_null));
  Asm.emit a (Isa.Assert_nz (r2, msg_copy_dst_null));
  let loop = Asm.fresh_label a "wcopy_loop" in
  let done_ = Asm.fresh_label a "wcopy_done" in
  Asm.bind a loop;
  Asm.beq a r3 0 done_;
  emit_negative_guard a r3;
  Asm.emit a (Isa.Ld (r6, r1, 0));
  Asm.emit a (Isa.St (r6, r2, 0));
  Asm.emit a (Isa.Addi (r1, r1, 8));
  Asm.emit a (Isa.Addi (r2, r2, 8));
  Asm.emit a (Isa.Addi (r3, r3, -1));
  Asm.jmp a loop;
  Asm.bind a done_;
  Asm.ret a

let emit_bzero a =
  Asm.global a "k_bzero";
  (* (dst=r1, len=r2) *)
  Asm.emit a (Isa.Assert_nz (r1, msg_copy_dst_null));
  let loop = Asm.fresh_label a "bzero_loop" in
  let done_ = Asm.fresh_label a "bzero_done" in
  Asm.bind a loop;
  Asm.beq a r2 0 done_;
  emit_negative_guard a r2;
  Asm.emit a (Isa.Stb (0, r1, 0));
  Asm.emit a (Isa.Addi (r1, r1, 1));
  Asm.emit a (Isa.Addi (r2, r2, -1));
  Asm.jmp a loop;
  Asm.bind a done_;
  Asm.ret a

let emit_checksum a ~entry =
  Asm.bind a entry;
  Asm.global a "k_checksum";
  (* (src=r1, len=r2) -> r1: additive byte checksum. *)
  Asm.emit a (Isa.Assert_nz (r1, msg_cksum_null));
  Asm.emit a (Isa.Or (r6, 0, 0));
  let loop = Asm.fresh_label a "cksum_loop" in
  let done_ = Asm.fresh_label a "cksum_done" in
  Asm.bind a loop;
  Asm.beq a r2 0 done_;
  emit_negative_guard a r2;
  Asm.emit a (Isa.Ldb (r7, r1, 0));
  Asm.emit a (Isa.Add (r6, r6, r7));
  Asm.emit a (Isa.Addi (r1, r1, 1));
  Asm.emit a (Isa.Addi (r2, r2, -1));
  Asm.jmp a loop;
  Asm.bind a done_;
  Asm.mv a r1 r6;
  Asm.ret a

let emit_list_insert a =
  Asm.global a "k_list_insert";
  (* (head_addr=r1, node=r2): push node on an intrusive singly linked list
     whose next pointer is at offset 0. *)
  Asm.emit a (Isa.Assert_nz (r2, msg_insert_null));
  Asm.emit a (Isa.Ld (r6, r1, 0));
  (* node must not already be the head (double insert) *)
  Asm.emit a (Isa.Sub (r7, r6, r2));
  Asm.emit a (Isa.Assert_nz (r7, msg_insert_head));
  Asm.emit a (Isa.St (r6, r2, 0));
  Asm.emit a (Isa.St (r2, r1, 0));
  Asm.ret a

let emit_list_remove a =
  Asm.global a "k_list_remove";
  (* (head_addr=r1) -> r1 = removed node. *)
  Asm.emit a (Isa.Ld (r6, r1, 0));
  Asm.emit a (Isa.Assert_nz (r6, msg_free_head_null));
  Asm.emit a (Isa.Ld (r7, r6, 0));
  (* a node pointing to itself means a corrupt list *)
  Asm.emit a (Isa.Sub (r8, r7, r6));
  Asm.emit a (Isa.Assert_nz (r8, msg_self_loop));
  Asm.emit a (Isa.St (r7, r1, 0));
  (* scrub the removed node's next field, and require it was not null when
     the list claimed more nodes *)
  Asm.emit a (Isa.St (0, r6, 0));
  Asm.emit a (Isa.Ori (r9, 0, 1));
  Asm.emit a (Isa.Assert_nz (r9, msg_free_next_null));
  Asm.mv a r1 r6;
  Asm.ret a

let emit_bitmap_alloc a =
  Asm.global a "k_bitmap_alloc";
  (* (bitmap=r1, nbytes=r2) -> r1 = index of claimed slot, or -1. *)
  Asm.emit a (Isa.Or (r6, 0, 0));
  let loop = Asm.fresh_label a "bm_loop" in
  let found = Asm.fresh_label a "bm_found" in
  let full = Asm.fresh_label a "bm_full" in
  Asm.bind a loop;
  Asm.beq a r6 r2 full;
  Asm.emit a (Isa.Add (r7, r1, r6));
  Asm.emit a (Isa.Ldb (r8, r7, 0));
  Asm.beq a r8 0 found;
  Asm.emit a (Isa.Addi (r6, r6, 1));
  Asm.jmp a loop;
  Asm.bind a found;
  Asm.emit a (Isa.Ori (r8, 0, 1));
  Asm.emit a (Isa.Stb (r8, r7, 0));
  Asm.mv a r1 r6;
  Asm.ret a;
  Asm.bind a full;
  Asm.emit a (Isa.Addi (r1, 0, -1));
  Asm.ret a

let emit_lock_acquire a =
  Asm.global a "k_lock_acquire";
  (* (lock=r1): sanity-check the lock word and take it. *)
  Asm.emit a (Isa.Ldb (r6, r1, 0));
  Asm.emit a (Isa.Slti (r7, r6, 2));
  Asm.emit a (Isa.Assert_nz (r7, msg_lock_range));
  Asm.emit a (Isa.Ori (r8, 0, 1));
  Asm.emit a (Isa.Stb (r8, r1, 0));
  Asm.ret a

let emit_lock_release a =
  Asm.global a "k_lock_release";
  (* (lock=r1): must currently be held. *)
  Asm.emit a (Isa.Ldb (r6, r1, 0));
  Asm.emit a (Isa.Assert_nz (r6, msg_release_unheld));
  Asm.emit a (Isa.Slti (r7, r6, 2));
  Asm.emit a (Isa.Assert_nz (r7, msg_lock_range));
  Asm.emit a (Isa.Stb (0, r1, 0));
  Asm.ret a

let emit_counter_bump a =
  Asm.global a "k_counter_bump";
  (* (counter=r1, limit=r2) *)
  Asm.emit a (Isa.Ld (r6, r1, 0));
  Asm.emit a (Isa.Slt (r7, r6, r2));
  Asm.emit a (Isa.Assert_nz (r7, msg_counter_bound));
  Asm.emit a (Isa.Addi (r6, r6, 1));
  Asm.emit a (Isa.St (r6, r1, 0));
  Asm.ret a

let emit_ptr_chase a =
  Asm.global a "k_ptr_chase";
  (* (head=r1, budget=r2): walk next pointers to the null terminator. *)
  let loop = Asm.fresh_label a "chase_loop" in
  let done_ = Asm.fresh_label a "chase_done" in
  Asm.bind a loop;
  Asm.beq a r1 0 done_;
  Asm.emit a (Isa.Assert_nz (r2, msg_chase_budget));
  Asm.emit a (Isa.Ld (r1, r1, 0));
  Asm.emit a (Isa.Addi (r2, r2, -1));
  Asm.jmp a loop;
  Asm.bind a done_;
  Asm.ret a

let emit_queue_put a =
  Asm.global a "k_queue_put";
  (* (base=r1, idx_addr=r2, value=r3, capacity=r4): ring-buffer put. *)
  Asm.emit a (Isa.Assert_nz (r3, msg_queue_val_null));
  Asm.emit a (Isa.Ld (r6, r2, 0));
  Asm.emit a (Isa.Slt (r7, r6, r4));
  Asm.emit a (Isa.Assert_nz (r7, msg_ring_range));
  Asm.emit a (Isa.Ori (r8, 0, 3));
  Asm.emit a (Isa.Sll (r9, r6, r8));
  Asm.emit a (Isa.Add (r9, r1, r9));
  Asm.emit a (Isa.St (r3, r9, 0));
  (* advance index modulo capacity *)
  Asm.emit a (Isa.Addi (r6, r6, 1));
  let wrap = Asm.fresh_label a "qp_wrap" in
  let store = Asm.fresh_label a "qp_store" in
  Asm.beq a r6 r4 wrap;
  Asm.jmp a store;
  Asm.bind a wrap;
  Asm.emit a (Isa.Or (r6, 0, 0));
  Asm.bind a store;
  Asm.emit a (Isa.St (r6, r2, 0));
  Asm.ret a

let emit_compound a ~bcopy_entry ~checksum_entry =
  Asm.global a "k_compound";
  (* (src=r1, dst=r2, len=r3): copy then verify — a call-tree routine that
     spills to the kernel stack, so stack bit-flips corrupt saved state. *)
  let sp = Rio_cpu.Machine.sp_reg and ra = Rio_cpu.Machine.ra_reg in
  Asm.emit a (Isa.Addi (sp, sp, -32));
  Asm.emit a (Isa.St (ra, sp, 0));
  Asm.emit a (Isa.St (r2, sp, 8));
  Asm.emit a (Isa.St (r3, sp, 16));
  Asm.jal a bcopy_entry;
  Asm.emit a (Isa.Ld (r1, sp, 8));
  Asm.emit a (Isa.Ld (r2, sp, 16));
  Asm.jal a checksum_entry;
  Asm.emit a (Isa.Ld (ra, sp, 0));
  Asm.emit a (Isa.Addi (sp, sp, 32));
  Asm.emit a (Isa.Jr ra)

let emit_dlist_insert a =
  Asm.global a "k_dlist_insert";
  (* (head_addr=r1, node=r2): push onto a doubly-linked list; next at
     offset 0, prev at offset 8. Checks the head's back pointer first — a
     classic place where corruption shows. *)
  Asm.emit a (Isa.Assert_nz (r2, msg_insert_null));
  Asm.emit a (Isa.Ld (r6, r1, 0));
  let empty = Asm.fresh_label a "dl_empty" in
  Asm.beq a r6 0 empty;
  (* old head's prev must point back at the head anchor *)
  Asm.emit a (Isa.Ld (r7, r6, 8));
  Asm.emit a (Isa.Sub (r8, r7, r1));
  Asm.emit a (Isa.Beq (r8, 0, 2));
  Asm.emit a (Isa.Assert_nz (0, msg_dlist_bad_back));
  (* link old head's prev to the new node *)
  Asm.emit a (Isa.St (r2, r6, 8));
  Asm.bind a empty;
  Asm.emit a (Isa.St (r6, r2, 0));
  Asm.emit a (Isa.St (r1, r2, 8));
  Asm.emit a (Isa.St (r2, r1, 0));
  Asm.ret a

let emit_hash_insert a =
  Asm.global a "k_hash_insert";
  (* (table=r1, key=r2, buckets=r3): chain [key] into bucket
     [key mod buckets] (buckets must be a power of two, passed as mask+1).
     Table slots are 8-byte heads; nodes are keys' own addresses. *)
  Asm.emit a (Isa.Assert_nz (r2, msg_insert_null));
  Asm.emit a (Isa.Addi (r6, r3, -1));
  Asm.emit a (Isa.And (r7, r2, r6));
  (* bucket index must be < buckets *)
  Asm.emit a (Isa.Slt (r8, r7, r3));
  Asm.emit a (Isa.Assert_nz (r8, msg_hash_bucket_range));
  Asm.emit a (Isa.Ori (r9, 0, 3));
  Asm.emit a (Isa.Sll (r9, r7, r9));
  Asm.emit a (Isa.Add (r9, r1, r9));
  (* push node onto the chain *)
  Asm.emit a (Isa.Ld (r6, r9, 0));
  Asm.emit a (Isa.St (r6, r2, 0));
  Asm.emit a (Isa.St (r2, r9, 0));
  Asm.ret a

let emit_mem_scan a =
  Asm.global a "k_mem_scan";
  (* (addr=r1, len=r2): read-only sweep, e.g. page-list aging. *)
  Asm.emit a (Isa.Assert_nz (r1, msg_scan_null));
  let loop = Asm.fresh_label a "scan_loop" in
  let done_ = Asm.fresh_label a "scan_done" in
  Asm.bind a loop;
  Asm.beq a r2 0 done_;
  emit_negative_guard a r2;
  Asm.emit a (Isa.Ldb (r6, r1, 0));
  Asm.emit a (Isa.Addi (r1, r1, 1));
  Asm.emit a (Isa.Addi (r2, r2, -1));
  Asm.jmp a loop;
  Asm.bind a done_;
  Asm.ret a

let specs =
  [
    ("k_bcopy", Copy);
    ("k_word_copy", Word_copy);
    ("k_bzero", Zero);
    ("k_checksum", Checksum);
    ("k_list_insert", List_insert);
    ("k_list_remove", List_remove);
    ("k_bitmap_alloc", Bitmap_alloc);
    ("k_lock_acquire", Lock_acquire);
    ("k_lock_release", Lock_release);
    ("k_counter_bump", Counter_bump);
    ("k_ptr_chase", Ptr_chase);
    ("k_queue_put", Queue_put);
    ("k_mem_scan", Mem_scan);
    ("k_compound", Compound);
    ("k_dlist_insert", Dlist_insert);
    ("k_hash_insert", Hash_insert);
  ]

(* Cold filler: plausible routine bodies that are never dispatched. They
   give the kernel text realistic bulk so that randomly-placed faults mostly
   land in code that does not run before the crash — as in a real
   multi-megabyte kernel, where 20 faults rarely all hit the hot path. *)
let emit_filler a ~index =
  let base = 16 + (index mod 8) in
  Asm.emit a (Isa.Addi (base, 0, index land 0x7FF));
  Asm.emit a (Isa.Ori ((base + 1) mod 24 + 4, 0, (index * 7) land 0xFFF));
  Asm.emit a (Isa.Add (base, base, (base + 1) mod 24 + 4));
  Asm.emit a (Isa.Ld (6, 30, -8));
  Asm.emit a (Isa.Slt (7, 6, base));
  Asm.emit a (Isa.Assert_nz (7, msg_counter_bound));
  let loop = Asm.fresh_label a (Printf.sprintf "fill%d_loop" index) in
  let done_ = Asm.fresh_label a (Printf.sprintf "fill%d_done" index) in
  Asm.emit a (Isa.Ori (8, 0, (index land 15) + 2));
  Asm.bind a loop;
  Asm.beq a 8 0 done_;
  Asm.emit a (Isa.Ldb (9, 30, -16));
  Asm.emit a (Isa.Stb (9, 30, -24));
  Asm.emit a (Isa.Addi (8, 8, -1));
  Asm.jmp a loop;
  Asm.bind a done_;
  Asm.emit a (Isa.Xor (6, 6, 7));
  Asm.emit a (Isa.Srl (6, 6, 8));
  Asm.ret a

let filler_count = 400

let build_fresh ~origin =
  let a = Asm.create () in
  (* The halt pad comes first so its address is stable across corpus edits. *)
  Asm.global a halt_pad_symbol;
  Asm.halt a;
  let bcopy_entry = Asm.fresh_label a "k_bcopy" in
  let checksum_entry = Asm.fresh_label a "k_checksum" in
  emit_bcopy a ~entry:bcopy_entry;
  emit_word_copy a;
  emit_bzero a;
  emit_checksum a ~entry:checksum_entry;
  emit_list_insert a;
  emit_list_remove a;
  emit_bitmap_alloc a;
  emit_lock_acquire a;
  emit_lock_release a;
  emit_counter_bump a;
  emit_ptr_chase a;
  emit_queue_put a;
  emit_mem_scan a;
  emit_compound a ~bcopy_entry ~checksum_entry;
  emit_dlist_insert a;
  emit_hash_insert a;
  for i = 1 to filler_count do
    emit_filler a ~index:i
  done;
  let program = Asm.assemble a ~origin in
  let routines =
    List.map (fun (name, spec) -> { name; entry = Asm.symbol program name; spec }) specs
  in
  { program; routines; halt_pad = Asm.symbol program halt_pad_symbol }

(* Assembly is deterministic in [origin], and a campaign boots a fresh
   kernel per trial at the same origin — cache the built image. The value
   is immutable once constructed (loading blits [program.code] into
   memory; nothing writes it back), so sharing one copy across domains is
   safe under the mutex. *)
let build_cache : (int, t) Hashtbl.t = Hashtbl.create 4
let build_lock = Mutex.create ()

let build ~origin =
  Mutex.protect build_lock (fun () ->
      match Hashtbl.find_opt build_cache origin with
      | Some cached -> cached
      | None ->
        let fresh = build_fresh ~origin in
        Hashtbl.add build_cache origin fresh;
        fresh)

let find t name =
  match List.find_opt (fun r -> r.name = name) t.routines with
  | Some r -> r
  | None -> raise Not_found
