module Phys_mem = Rio_mem.Phys_mem
module Hooks = Rio_fs.Hooks
module Trace = Rio_obs.Trace
module Vista = Rio_txn.Vista

exception Crash_here

(* What the probe froze at the tripped boundary. The reference path keeps
   the full 16 MB image; the fast path keeps a copy-on-write snapshot
   (O(1) to take, O(pages dirtied afterwards) to restore) plus the
   composed torn page, if the boundary was a torn variant. *)
type capture =
  | Image of bytes
  | Snap of { snap : Phys_mem.snapshot; torn : (int * bytes) option }

(* A torn boundary half-applies one page's pending stores; [None] is an
   intact crash. *)
type torn_spec = { ts_page : int; ts_pre : bytes; ts_keep_first : bool }

type t = {
  mem : Phys_mem.t;
  obs : Trace.t;
  fast : bool;
  mutable armed : bool;
  mutable next : int;
  mutable trip_at : int;
  mutable labels_rev : string list;
  mutable capture : capture option;
  mutable tripped : string option;
  (* Fired after every counted, non-tripping boundary: the task
     scheduler's preemption hook (boundaries are the preemption points). *)
  mutable on_emit : string -> unit;
  (* Page pre-images captured at open_write, for torn-store composition. *)
  pre_images : (int, bytes) Hashtbl.t;
  (* Pages written through copy_in since their open_write (data pages;
     metadata mutates via blit_in and gets its torn variants from the
     shadow window instead). *)
  copied : (int, unit) Hashtbl.t;
}

let create ?(fast = Rio_util.Fastpath.on ()) ~mem ~obs () =
  {
    mem;
    obs;
    fast;
    armed = false;
    next = 0;
    trip_at = -1;
    labels_rev = [];
    capture = None;
    tripped = None;
    on_emit = ignore;
    pre_images = Hashtbl.create 16;
    copied = Hashtbl.create 16;
  }

let drop_capture t =
  (match t.capture with
  | Some (Snap { snap; _ }) -> Phys_mem.release t.mem snap
  | Some (Image _) | None -> ());
  t.capture <- None

let arm t ~trip_at =
  t.armed <- true;
  t.next <- 0;
  t.trip_at <- trip_at;
  t.labels_rev <- [];
  drop_capture t;
  t.tripped <- None;
  Hashtbl.reset t.pre_images;
  Hashtbl.reset t.copied

let disarm t = t.armed <- false
let set_on_emit t f = t.on_emit <- f
let emitted t = t.next
let labels t = List.rev t.labels_rev
let has_crash_image t = t.capture <> None
let tripped_label t = t.tripped

(* Half-apply the page's pending stores: of the bytes that differ between
   the pre-image and the current content [cur], [/lo] keeps the first half
   new (reverting the rest), [/hi] keeps the second half. Mutates [cur]
   into the composed page. *)
let compose_torn_page ~pre ~keep_first cur =
  let changed = ref [] in
  for i = Phys_mem.page_size - 1 downto 0 do
    if Bytes.get pre i <> Bytes.get cur i then changed := i :: !changed
  done;
  let changed = Array.of_list !changed in
  let half = (Array.length changed + 1) / 2 in
  Array.iteri
    (fun k idx ->
      let revert = if keep_first then k >= half else k < half in
      if revert then Bytes.set cur idx (Bytes.get pre idx))
    changed

(* One boundary. The capture happens before the raise so unwind-path
   cleanup (Rio's shadow disengage) cannot launder the crash state. *)
let emit t label torn =
  if t.armed then begin
    let i = t.next in
    t.next <- i + 1;
    t.labels_rev <- label :: t.labels_rev;
    if Trace.enabled t.obs then
      Trace.emit t.obs Trace.Harness (Trace.Mark (Printf.sprintf "crashpoint %d %s" i label));
    if i = t.trip_at then begin
      (if t.fast then begin
         (* Compose the torn page against live memory (the snapshot has
            no writes yet, so live memory is the snapshot content). *)
         let torn =
           match torn with
           | None -> None
           | Some { ts_page; ts_pre; ts_keep_first } ->
             let cur = Phys_mem.blit_out t.mem ts_page ~len:Phys_mem.page_size in
             compose_torn_page ~pre:ts_pre ~keep_first:ts_keep_first cur;
             Some (ts_page, cur)
         in
         t.capture <- Some (Snap { snap = Phys_mem.snapshot t.mem; torn })
       end
       else begin
         let image = Phys_mem.dump t.mem in
         (match torn with
         | None -> ()
         | Some { ts_page; ts_pre; ts_keep_first } ->
           let cur = Bytes.sub image ts_page Phys_mem.page_size in
           compose_torn_page ~pre:ts_pre ~keep_first:ts_keep_first cur;
           Bytes.blit cur 0 image ts_page Phys_mem.page_size);
         t.capture <- Some (Image image)
       end);
      t.tripped <- Some label;
      raise Crash_here
    end
    else t.on_emit label
  end

let hit t label = emit t label None
let point t label = hit t label

let hit_torn t label ~page ~pre =
  emit t (label ^ "/lo") (Some { ts_page = page; ts_pre = pre; ts_keep_first = true });
  emit t (label ^ "/hi") (Some { ts_page = page; ts_pre = pre; ts_keep_first = false })

(* Put memory into the captured crash state (what the old full-image
   restore_dump did, in O(pages dirtied since the trip) on the fast
   path). Single-shot: the fast capture is consumed by restoring it. *)
let restore_crash_image t =
  match t.capture with
  | None -> invalid_arg "Boundary.restore_crash_image: no boundary tripped"
  | Some (Image image) -> Phys_mem.restore_dump t.mem image
  | Some (Snap { snap; torn }) ->
    Phys_mem.restore t.mem snap;
    (match torn with
    | Some (page, composed) -> Phys_mem.blit_in t.mem page composed
    | None -> ());
    t.capture <- None

let page_of paddr = paddr - (paddr mod Phys_mem.page_size)

let instrument_hooks t (hooks : Hooks.t) =
  let rio_note_map = hooks.Hooks.note_map in
  let rio_open = hooks.Hooks.open_write in
  let rio_close = hooks.Hooks.close_write in
  let rio_meta = hooks.Hooks.metadata_update in
  let kernel_copy_in = hooks.Hooks.copy_in in
  let fs_wb_event = hooks.Hooks.wb_event in
  (* Write-behind pipeline orderings (wb-queue / wb-flush / wb-commit
     labels) become crash points: the explorer and fuzzer crash between
     staging, issue, and commit of the asynchronous write-back batches. *)
  hooks.Hooks.wb_event <-
    (fun ~label ->
      fs_wb_event ~label;
      hit t label);
  hooks.Hooks.note_map <-
    (fun ~paddr ~blkno ~owner ~valid ->
      rio_note_map ~paddr ~blkno ~owner ~valid;
      hit t (Printf.sprintf "registry-update p0x%x" (page_of paddr)));
  hooks.Hooks.open_write <-
    (fun ~paddr ->
      rio_open ~paddr;
      let page = page_of paddr in
      if t.armed && not (Hashtbl.mem t.pre_images page) then
        Hashtbl.replace t.pre_images page (Phys_mem.blit_out t.mem page ~len:Phys_mem.page_size);
      hit t (Printf.sprintf "store-open p0x%x" page));
  hooks.Hooks.copy_in <-
    (fun src pos ~paddr ~len ->
      kernel_copy_in src pos ~paddr ~len;
      let page = page_of paddr in
      if t.armed then Hashtbl.replace t.copied page ();
      hit t (Printf.sprintf "store-copy p0x%x+%d" page len));
  hooks.Hooks.close_write <-
    (fun ~paddr ->
      let page = page_of paddr in
      (* Torn variants first: the stores are still "in flight" until the
         close refreshes the checksum. Only for pages the data path wrote
         via copy_in — metadata stores physically happen inside the shadow
         window and get their torn variants there. *)
      (if t.armed && Hashtbl.mem t.copied page then
         match Hashtbl.find_opt t.pre_images page with
         | Some pre -> hit_torn t (Printf.sprintf "store-torn p0x%x" page) ~page ~pre
         | None -> ());
      rio_close ~paddr;
      Hashtbl.remove t.pre_images page;
      Hashtbl.remove t.copied page;
      hit t (Printf.sprintf "store-close p0x%x" page));
  hooks.Hooks.metadata_update <-
    (fun ~paddr f ->
      let page = page_of paddr in
      hit t (Printf.sprintf "meta-begin p0x%x" page);
      let pre =
        if t.armed then Some (Phys_mem.blit_out t.mem page ~len:Phys_mem.page_size) else None
      in
      rio_meta ~paddr (fun () ->
          f ();
          (* Inside the (possible) shadow window: the home page has been
             mutated, the registry may still point at the shadow. *)
          (match pre with
          | Some pre -> hit_torn t (Printf.sprintf "meta-torn p0x%x" page) ~page ~pre
          | None -> ());
          hit t (Printf.sprintf "meta-mutated p0x%x" page));
      hit t (Printf.sprintf "meta-done p0x%x" page))

let instrument_disk t disk =
  Rio_disk.Disk.set_on_complete disk (fun ~sector ~count ~write ->
      hit t (Printf.sprintf "disk-complete %s s%d x%d" (if write then "w" else "r") sector count))

let vista_event t = function
  | Vista.Undo_append { offset; len } ->
    hit t (Printf.sprintf "vista-undo-append @%d+%d" offset len)
  | Vista.Data_write { offset; len } ->
    hit t (Printf.sprintf "vista-data-write @%d+%d" offset len)
  | Vista.Commit_start -> hit t "vista-commit-start"
  | Vista.Committed -> hit t "vista-committed"
