(** The memory-management unit: address translation with KSEG semantics.

    Two classes of kernel addresses exist, as on the DEC Alpha (§2.1):

    - {b Mapped} addresses (below [kseg_base]) are translated through the
      page table; invalid pages fault and write-protected pages trap on
      stores. Identity mapping: virtual page n = physical frame n.
    - {b KSEG} addresses ([kseg_base + phys]) address physical memory
      directly. By default they {e bypass} the TLB and all protection — the
      hole that makes the UBC corruptible. Rio's protection flips the ABOX
      control-register bit ([set_kseg_through_tlb true]) so KSEG accesses are
      mapped through the page table and respect write-protection, at
      essentially no cost. *)

type t

type access = Read | Write | Exec

type fault =
  | Unmapped of int  (** Invalid or out-of-range translation (illegal address). *)
  | Write_protected of int
      (** Store to a page whose PTE denies writes — Rio's protection trap. *)

type result = Ok of Rio_mem.Phys_mem.paddr | Fault of fault

val kseg_base : int
(** 2^40 — well above any mapped virtual address in this model. *)

val kseg_addr : Rio_mem.Phys_mem.paddr -> int
(** The KSEG alias of a physical address. *)

val is_kseg : int -> bool

val create : ?obs:Rio_obs.Trace.t -> mem_pages:int -> tlb_entries:int -> unit -> t
(** [obs] (default {!Rio_obs.Trace.null}) receives a [Protection_trap] event
    and a ["vm.protection_traps"] counter tick for every write-protection
    fault. *)

val page_table : t -> Page_table.t

val tlb : t -> Tlb.t

val kseg_through_tlb : t -> bool

val set_kseg_through_tlb : t -> bool -> unit
(** The ABOX CPU-control-register bit: when on, KSEG addresses translate
    through the page table (protection applies); when off, they bypass it. *)

val translate : t -> vaddr:int -> access:access -> result
(** Translate one byte address. Accesses that span pages must be translated
    per page by the caller (the CPU splits them). *)

val protection_faults : t -> int
(** Count of [Write_protected] faults returned so far. *)

val unmapped_faults : t -> int

val reset_stats : t -> unit

val pp_fault : Format.formatter -> fault -> unit
