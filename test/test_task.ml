(* Tests for Rio_task and the interleaving campaigns built on it. The key
   properties are (a) the scheduler is a pure function of its seed — same
   seed, same interleaving, byte-identical multi-task reports at any
   domain count, (b) the ownership lock actually serializes critical
   sections (and its absence visibly does not), (c) tasks isolate cwd and
   descriptor tables, and (d) the interleaving fuzzer catches the planted
   lock-off lost-update ablation AND shrinks it to a tiny repro, while
   rio-prot with locking fuzzes clean. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Page_alloc = Rio_mem.Page_alloc
module Disk = Rio_disk.Disk
module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types
module Hooks = Rio_fs.Hooks
module Block_cache = Rio_fs.Block_cache
module Syscall = Rio_fs.Fs.Syscall
module Task = Rio_task.Task
module Sched = Rio_task.Sched
module Fuzzer = Rio_fuzz.Fuzzer
module Explorer = Rio_check.Explorer
module Run = Rio_harness.Run

let check = Alcotest.check

(* A small mounted file system (same fixture shape as test_fs). *)
let make_fs () =
  let engine = Engine.create () in
  let layout = Layout.create Layout.default_config in
  let mem = Phys_mem.create ~bytes_total:Layout.default_config.Layout.total_bytes in
  let disk = Disk.create ~engine ~costs:Costs.default ~sectors:(64 * 1024) ~seed:3 () in
  let geom = Fs.default_geometry ~disk_sectors:(64 * 1024) ~mem_bytes:(Phys_mem.size mem) in
  Fs.mkfs ~disk geom;
  Fs.mount ~engine ~costs:Costs.default ~mem ~wb_unordered:false
    ~meta_alloc:(Page_alloc.create ~region:(Layout.region layout Layout.Buffer_cache))
    ~pool_alloc:(Page_alloc.create ~region:(Layout.region layout Layout.Page_pool))
    ~disk ~policy:Fs.Ufs_default ~hooks:(Hooks.defaults ~mem)

(* ---------------- the scheduler ---------------- *)

let trace_for ~seed =
  let sched = Sched.create ~seed in
  for i = 0 to 2 do
    Sched.spawn sched
      (Task.make ~id:i ~name:(Printf.sprintf "t%d" i))
      (fun _ ->
        for _ = 1 to 5 do
          Sched.preempt sched
        done)
  done;
  Sched.run sched;
  (Sched.trace sched, Sched.switches sched)

let test_sched_deterministic () =
  let t1, s1 = trace_for ~seed:42 in
  let t2, s2 = trace_for ~seed:42 in
  check (Alcotest.list Alcotest.string) "same seed, same interleaving" t1 t2;
  check Alcotest.int "same switch count" s1 s2;
  check Alcotest.bool "switches happened" true (s1 > 3);
  let t3, _ = trace_for ~seed:43 in
  check Alcotest.bool "different seed, different interleaving" true (t1 <> t3)

let test_lock_serializes_rmw () =
  (* Three tasks doing read-yield-write increments: the lock must make
     the interleaved sum exact, and dropping it must visibly lose
     updates (this is the ablation the fuzzer hunts, in miniature). *)
  let rmw ~locked ~seed =
    let sched = Sched.create ~seed in
    let cell = ref 0 in
    for i = 0 to 2 do
      Sched.spawn sched
        (Task.make ~id:i ~name:(Printf.sprintf "t%d" i))
        (fun _ ->
          for _ = 1 to 8 do
            let step () =
              let v = !cell in
              Sched.preempt sched;
              cell := v + 1
            in
            if locked then Sched.with_lock sched ~key:Sched.fs_lock step else step ()
          done)
    done;
    Sched.run sched;
    !cell
  in
  check Alcotest.int "locked RMW is exact" 24 (rmw ~locked:true ~seed:5);
  check Alcotest.bool "unlocked RMW loses updates" true (rmw ~locked:false ~seed:5 < 24)

let test_lock_holder_visible () =
  let sched = Sched.create ~seed:1 in
  let saw = ref None in
  Sched.spawn sched (Task.make ~id:0 ~name:"t0") (fun _ ->
      Sched.with_lock sched ~key:Sched.fs_lock (fun () ->
          saw := Sched.holder sched ~key:Sched.fs_lock));
  Sched.run sched;
  match !saw with
  | Some t -> check Alcotest.string "holder is the caller" "t0" (Task.name t)
  | None -> Alcotest.fail "holder not visible inside the critical section"

(* ---------------- per-task cwd and descriptors ---------------- *)

let test_task_cwd_and_fd_isolation () =
  let fs = make_fs () in
  ignore (Syscall.run fs (Syscall.Mkdir "/a"));
  ignore (Syscall.run fs (Syscall.Mkdir "/b"));
  let ta = Task.make ~id:0 ~name:"ta" and tb = Task.make ~id:1 ~name:"tb" in
  Task.chdir ta "/a";
  Task.chdir tb "/b";
  check Alcotest.string "relative paths resolve through cwd" "/a/f" (Task.resolve ta "f");
  check Alcotest.string "absolute paths pass through" "/x" (Task.resolve tb "/x");
  let sched = Sched.create ~seed:2 in
  let local = Array.make 2 (-1) in
  let body text task =
    let fd =
      Syscall.fd_exn (Sched.syscall sched ~locking:true task fs (Syscall.Creat "f"))
    in
    let d = Task.install_fd task fd in
    local.(Task.id task) <- d;
    ignore
      (Sched.syscall sched ~locking:true task fs
         (Syscall.Pwrite
            { fd = Task.global_fd task d; offset = 0; data = Bytes.of_string text }));
    ignore (Sched.syscall sched ~locking:true task fs (Syscall.Close (Task.global_fd task d)));
    Task.release_fd task d
  in
  Sched.spawn sched ta (body "alpha");
  Sched.spawn sched tb (body "bravo");
  Sched.run sched;
  check Alcotest.int "both tasks hold the same local descriptor number" local.(0) local.(1);
  check Alcotest.string "ta wrote its own subtree" "alpha"
    (Bytes.to_string (Fs.read_file fs "/a/f"));
  check Alcotest.string "tb wrote its own subtree" "bravo"
    (Bytes.to_string (Fs.read_file fs "/b/f"));
  check (Alcotest.list Alcotest.int) "descriptor tables drained" [] (Task.open_fds ta)

(* ---------------- syscall entry vs the wrappers ---------------- *)

let test_syscall_entry_matches_wrappers () =
  (* The decoded Fs.Syscall entry must be observationally identical to
     the per-op wrappers it subsumed. *)
  let fs = make_fs () in
  let fd = Syscall.fd_exn (Syscall.run fs (Syscall.Creat "/a")) in
  ignore (Syscall.run fs (Syscall.Pwrite { fd; offset = 0; data = Bytes.of_string "hello" }));
  ignore (Syscall.run fs (Syscall.Close fd));
  check Alcotest.string "wrapper read sees syscall write" "hello"
    (Bytes.to_string (Fs.read_file fs "/a"));
  Fs.write_file fs "/b" (Bytes.of_string "world");
  check Alcotest.string "syscall read sees wrapper write" "world"
    (Bytes.to_string (Syscall.data_exn (Syscall.run fs (Syscall.Read_file "/b"))));
  ignore (Syscall.run fs (Syscall.Mkdir "/d"));
  ignore (Syscall.run fs (Syscall.Rename { src = "/b"; dst = "/d/b" }));
  check Alcotest.bool "rename via syscall visible" true
    (Syscall.bool_exn (Syscall.run fs (Syscall.Exists "/d/b")));
  check Alcotest.int "stat agrees with the wrapper"
    (Fs.stat fs "/a").Fs.st_size
    (Syscall.stat_exn (Syscall.run fs (Syscall.Stat "/a"))).Fs.st_size;
  check Alcotest.bool "mutates classifies reads as shared-safe" false
    (Syscall.mutates (Syscall.Read_file "/a"));
  check Alcotest.bool "mutates classifies writes as exclusive" true
    (Syscall.mutates (Syscall.Unlink "/a"))

(* ---------------- block cache flush early-out ---------------- *)

let test_flush_dirty_early_out () =
  let engine = Engine.create () in
  let layout = Layout.create Layout.default_config in
  let mem = Phys_mem.create ~bytes_total:Layout.default_config.Layout.total_bytes in
  let disk = Disk.create ~engine ~costs:Costs.default ~sectors:(64 * 1024) ~seed:3 () in
  let cache =
    Block_cache.create ~name:"flush-test" ~mem ~disk
      ~alloc:(Page_alloc.create ~region:(Layout.region layout Layout.Page_pool))
      ~hooks:(Hooks.defaults ~mem)
      ~sector_of_blkno:(fun b -> 2048 + (b * Fs_types.sectors_per_block))
      ~backed:true
  in
  (* Populate with clean entries: the early-out must not depend on the
     table being empty, only on nothing being dirty. *)
  for b = 0 to 7 do
    ignore (Block_cache.get cache ~blkno:b ~owner:Fs_types.Meta ~fill:Block_cache.Zero)
  done;
  check Alcotest.int "clean cache" 0 (Block_cache.dirty_count cache);
  let before = Block_cache.stats cache in
  check Alcotest.int "flush of a clean cache flushes nothing" 0
    (Block_cache.flush_dirty cache ~sync:true ());
  let after = Block_cache.stats cache in
  check Alcotest.int "early-out does no write-backs" before.Block_cache.writebacks
    after.Block_cache.writebacks;
  for b = 2 to 4 do
    let e = Block_cache.get cache ~blkno:b ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
    Block_cache.mark_dirty cache e
  done;
  check Alcotest.int "dirty blocks counted" 3 (Block_cache.dirty_count cache);
  check Alcotest.int "dirty blocks flushed" 3 (Block_cache.flush_dirty cache ~sync:true ());
  check Alcotest.int "count retired exactly" 0 (Block_cache.dirty_count cache)

(* ---------------- the interleaving campaigns ---------------- *)

let tcfg ?(seed = 1) ?(trials = 5) ~domains () = { Run.default with Run.seed; trials; domains }

let test_run_tasks_parallel_determinism () =
  (* lock-off so the pipeline exercises the multi-task shrinker and the
     final-state audit, not just clean trials. *)
  let r1 = Fuzzer.run_tasks ~locking:false ~tasks:2 (tcfg ~domains:1 ()) in
  let r4 = Fuzzer.run_tasks ~locking:false ~tasks:2 (tcfg ~domains:4 ()) in
  check Alcotest.string "byte-identical render at -j 1 and -j 4"
    (Fuzzer.render_tasks r1) (Fuzzer.render_tasks r4);
  check Alcotest.string "byte-identical json at -j 1 and -j 4"
    (Rio_util.Json.pretty (Fuzzer.treport_json r1))
    (Rio_util.Json.pretty (Fuzzer.treport_json r4))

let test_rio_prot_tasks_fuzz_clean () =
  let r = Fuzzer.run_tasks ~tasks:3 (tcfg ~domains:2 ()) in
  (match r.Fuzzer.tr_counterexamples with
  | [] -> ()
  | c :: _ ->
    Alcotest.failf "rio-prot violated under interleaving: %s"
      (String.concat "; " c.Fuzzer.tc_problems));
  check Alcotest.int "zero violations with locking on" 0 r.Fuzzer.tr_violations

let test_lock_off_caught_and_shrunk () =
  let r = Fuzzer.run_tasks ~locking:false ~tasks:2 (tcfg ~trials:6 ~domains:2 ()) in
  if r.Fuzzer.tr_violations = 0 then
    Alcotest.fail "lock-off produced no violations: the ablation is invisible";
  check Alcotest.bool "caught and shrunk to a small repro" true (Fuzzer.tasks_caught r);
  match r.Fuzzer.tr_counterexamples with
  | [] -> Alcotest.fail "violations were not shrunk"
  | c :: _ ->
    check Alcotest.bool "repro fits the readability bar" true
      (Fuzzer.total_ops c.Fuzzer.tc_progs <= Fuzzer.max_repro_ops);
    check Alcotest.bool "at most two tasks left" true
      (Fuzzer.nonempty_tasks c.Fuzzer.tc_progs <= 2);
    check Alcotest.bool "shrunk repro keeps its problems" true (c.Fuzzer.tc_problems <> [])

let test_explorer_interleave_determinism () =
  let cfg domains = { Run.default with Run.seed = 2; domains } in
  let r1 = Explorer.run ~only:[ "creat" ] ~interleave:2 (cfg 1) in
  let r4 = Explorer.run ~only:[ "creat" ] ~interleave:2 (cfg 4) in
  check Alcotest.string "byte-identical render at -j 1 and -j 4" (Explorer.render r1)
    (Explorer.render r4);
  check Alcotest.int "rio-prot survives every interleaved crash point" 0
    (Explorer.violation_count r1);
  check Alcotest.bool "interleaving jobs reported under #i<j> slugs" true
    (List.exists
       (fun s -> s.Explorer.slug = "two-task#i1" && s.Explorer.crash_points > 0)
       r1.Explorer.scenarios)

let () =
  Alcotest.run "rio_task"
    [
      ( "sched",
        [
          Alcotest.test_case "seeded determinism" `Quick test_sched_deterministic;
          Alcotest.test_case "lock serializes RMW" `Quick test_lock_serializes_rmw;
          Alcotest.test_case "lock holder visible" `Quick test_lock_holder_visible;
        ] );
      ( "task",
        [
          Alcotest.test_case "cwd and fd isolation" `Quick test_task_cwd_and_fd_isolation;
          Alcotest.test_case "syscall entry = wrappers" `Quick
            test_syscall_entry_matches_wrappers;
          Alcotest.test_case "flush_dirty early-out" `Quick test_flush_dirty_early_out;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "fuzz -j determinism" `Slow test_run_tasks_parallel_determinism;
          Alcotest.test_case "rio-prot fuzzes clean" `Slow test_rio_prot_tasks_fuzz_clean;
          Alcotest.test_case "lock-off caught and shrunk" `Slow
            test_lock_off_caught_and_shrunk;
          Alcotest.test_case "explorer interleave determinism" `Slow
            test_explorer_interleave_determinism;
        ] );
    ]
