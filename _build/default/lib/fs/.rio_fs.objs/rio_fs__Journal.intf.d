lib/fs/journal.mli: Rio_disk
