lib/fs/fs.ml: Array Block_cache Bytes Fs_types Hashtbl Hooks Journal List Ondisk Rio_disk Rio_mem Rio_sim String
