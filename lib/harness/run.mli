(** The unified harness Run API.

    Every harness entry point ({!Reliability.run}, {!Performance.run},
    {!Ablation.run}, {!Vista_experiment.run}, {!Rio_check}'s explorer, and
    {!Rio_fuzz}'s fuzzer) takes one {!config} record instead of a
    per-function spread of optional arguments. The fields mean the same
    thing everywhere:

    - [seed] — base seed; every run is a pure function of it.
    - [trials] — how many completed crash tests (or transactions, sweep
      steps, fuzz programs, ...) each cell needs. Exhaustive experiments
      ignore it.
    - [scale] — workload scale factor (1.0 = the paper's sizes).
    - [domains] — worker domains for {!Rio_parallel.Pool}; results are
      merged in seed order, so any value yields byte-identical output.
    - [backend] — the persistence backend worlds are built on
      ({!Rio_disk.Backend.Scsi} by default, or [Nvmm] for the
      battery-backed append-log tier). Campaigns that fix their own
      backends per spec (the check/fuzz matrices) ignore it.
    - [trace_dir] — when set, the flight recorder is on and per-trial
      traces land here; [None] means zero-overhead tracing-off.
    - [coverage] — when true, the campaign also accounts which slices of
      the crash space it exercised: check/fuzz runs carry a merged
      [Rio_cov.Cov.t] map in their reports (and the fuzzer's stratified
      sampler biases toward unhit boundary classes), and table1-style
      fault campaigns roll per-trial {!Rio_obs.Trace} metrics up even
      with tracing off (metrics-only recorders, no ring).
    - [obs_capacity] — trace-ring capacity override for recorders the
      campaign creates; out-of-range values are clamped into
      [\[0, Trace.max_capacity\]] (see {!obs_warnings}).
    - [obs_buckets] — histogram bucket edges for metric rollups
      ({!Rio_obs.Trace.snapshot_json}); sanitized (sorted, deduplicated,
      truncated) with the clamps reported.
    - [progress] — per-cell progress callback (wrapped in a mutex sink
      when [domains > 1]). *)

type config = {
  seed : int;
  trials : int;
  scale : float;
  domains : int;
  backend : Rio_disk.Backend.kind;
  trace_dir : string option;
  coverage : bool;
  obs_capacity : int option;
  obs_buckets : int array option;
  progress : Progress.t -> unit;
}

val default : config
(** [seed 1; trials 50; scale 1.0; domains 1; backend Scsi;
    trace_dir None; coverage false; obs_capacity None; obs_buckets None;
    progress ignore]. Build variations with functional update:
    [{ Run.default with seed = 7; domains = 4 }]. *)

(** {1 Observability knobs}

    The trace-ring capacity and histogram bucket edges used to be
    compile-time defaults; they now ride in the config, clamped into
    supported ranges with every clamp reported. *)

val obs_capacity : config -> int
(** The sanitized trace-ring capacity ({!Rio_obs.Trace.default_capacity}
    when unset, else clamped into [\[0, Trace.max_capacity\]]). *)

val obs_buckets : config -> int array option
(** The sanitized histogram bucket edges: sorted ascending, negatives
    and duplicates dropped, truncated to
    {!Rio_obs.Trace.max_bucket_edges}; [None] when unset or empty after
    sanitizing. *)

val obs_warnings : config -> string list
(** Human-readable descriptions of every clamp {!obs_capacity} and
    {!obs_buckets} applied — empty when the config was in range. CLIs
    print these on stderr. *)

val recorder : config -> unit -> Rio_obs.Trace.t
(** A fresh live recorder sized by {!obs_capacity} — what campaigns use
    for per-trial recorders when [trace_dir] (or a counterexample
    replay) wants events. *)

val progress_sink : config -> Progress.t -> unit
(** The config's progress callback, wrapped in {!Rio_parallel.Pool.sink}
    when [domains > 1] so worker domains may call it concurrently. *)

val reporter : config -> total:int -> (label:string -> detail:string -> unit)
(** A ready-made per-cell completion reporter: counts completions with an
    atomic (globally monotonic at any [domains]) and forwards to the
    progress sink. *)
