lib/kernel/kheap.mli: Rio_mem
