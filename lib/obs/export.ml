module Json = Rio_util.Json

let args_of_kind (kind : Trace.kind) =
  match kind with
  | Trace.Dispatch { due_us; end_us; queue_depth } ->
    [ ("due_us", Json.Int due_us); ("end_us", Json.Int end_us);
      ("queue_depth", Json.Int queue_depth) ]
  | Trace.Clock { advances } -> [ ("advances", Json.Int advances) ]
  | Trace.Disk_request { sector; sectors; write; sync; issued_us; done_us } ->
    [
      ("sector", Json.Int sector);
      ("sectors", Json.Int sectors);
      ("op", Json.Str (if write then "write" else "read"));
      ("sync", Json.Bool sync);
      ("issued_us", Json.Int issued_us);
      ("done_us", Json.Int done_us);
      ("latency_us", Json.Int (done_us - issued_us));
    ]
  | Trace.Protection_trap { paddr } -> [ ("paddr", Json.Int paddr) ]
  | Trace.Protection_toggle { paddr; writable } ->
    [ ("paddr", Json.Int paddr); ("writable", Json.Bool writable) ]
  | Trace.Fault_injected { fault; site } ->
    [ ("fault", Json.Str fault); ("site", Json.Str site) ]
  | Trace.Wild_store { paddr; width; region } ->
    [ ("paddr", Json.Int paddr); ("width", Json.Int width); ("region", Json.Str region) ]
  | Trace.Registry_update { paddr; ino; size } ->
    [ ("paddr", Json.Int paddr); ("ino", Json.Int ino); ("size", Json.Int size) ]
  | Trace.Checksum_mismatch { paddr; expected; actual } ->
    [ ("paddr", Json.Int paddr); ("expected", Json.Int expected); ("actual", Json.Int actual) ]
  | Trace.Shadow_flip { paddr; engaged } ->
    [ ("paddr", Json.Int paddr); ("engaged", Json.Bool engaged) ]
  | Trace.Activity { name; start_us; end_us } ->
    [ ("name", Json.Str name); ("start_us", Json.Int start_us); ("end_us", Json.Int end_us) ]
  | Trace.Crash { message; during } ->
    [ ("message", Json.Str message); ("during", Json.Str during) ]
  | Trace.Crash_flush { data; meta } ->
    [ ("data", Json.Int data); ("meta", Json.Int meta) ]
  | Trace.Phase { name; start_us; end_us } ->
    [ ("name", Json.Str name); ("start_us", Json.Int start_us); ("end_us", Json.Int end_us) ]
  | Trace.Swap_dump { dumped; truncated } ->
    [ ("dumped", Json.Int dumped); ("truncated", Json.Int truncated) ]
  | Trace.Mark note -> [ ("note", Json.Str note) ]

let event_json (e : Trace.event) =
  Json.Obj
    (("ts_us", Json.Int e.Trace.ts_us)
    :: ("sub", Json.Str (Trace.subsystem_name e.Trace.sub))
    :: ("kind", Json.Str (Trace.kind_label e.Trace.kind))
    :: args_of_kind e.Trace.kind)

let jsonl_lines ?header t =
  let header_lines = match header with None -> [] | Some h -> [ Json.to_string h ] in
  let event_lines = List.map (fun e -> Json.to_string (event_json e)) (Trace.events t) in
  let metrics_line =
    Json.to_string (Json.Obj [ ("metrics", Trace.snapshot_json (Trace.snapshot t)) ])
  in
  let recorder_line =
    Json.to_string
      (Json.Obj
         [
           ( "recorder",
             Json.Obj
               [
                 ("total_events", Json.Int (Trace.total t));
                 ("dropped_events", Json.Int (Trace.dropped t));
                 ("capacity", Json.Int (Trace.capacity t));
               ] );
         ])
  in
  header_lines @ event_lines @ [ metrics_line; recorder_line ]

let write_jsonl ~file ?header t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (jsonl_lines ?header t))

(* ---------------- Chrome trace_event ---------------- *)

let tid_of_sub (s : Trace.subsystem) =
  match s with
  | Trace.Engine -> 1
  | Trace.Disk -> 2
  | Trace.Vm -> 3
  | Trace.Rio -> 4
  | Trace.Fault -> 5
  | Trace.Kernel -> 6
  | Trace.Fs -> 7
  | Trace.Harness -> 8

let all_subsystems =
  [
    Trace.Engine; Trace.Disk; Trace.Vm; Trace.Rio; Trace.Fault; Trace.Kernel; Trace.Fs;
    Trace.Harness;
  ]

let base ~name ~ph (e : Trace.event) extra =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str (Trace.subsystem_name e.Trace.sub));
       ("ph", Json.Str ph);
       ("pid", Json.Int 1);
       ("tid", Json.Int (tid_of_sub e.Trace.sub));
     ]
    @ extra
    @ [ ("args", Json.Obj (args_of_kind e.Trace.kind)) ])

let chrome_event (e : Trace.event) =
  let span name start_us end_us =
    base ~name ~ph:"X" e
      [ ("ts", Json.Int start_us); ("dur", Json.Int (max 0 (end_us - start_us))) ]
  in
  let instant name =
    base ~name ~ph:"i" e [ ("ts", Json.Int e.Trace.ts_us); ("s", Json.Str "t") ]
  in
  match e.Trace.kind with
  | Trace.Dispatch { due_us; end_us; _ } -> span "dispatch" due_us end_us
  | Trace.Clock { advances } ->
    (* A counter track: the value lives in args. *)
    Json.Obj
      [
        ("name", Json.Str "clock advances");
        ("cat", Json.Str (Trace.subsystem_name e.Trace.sub));
        ("ph", Json.Str "C");
        ("pid", Json.Int 1);
        ("tid", Json.Int (tid_of_sub e.Trace.sub));
        ("ts", Json.Int e.Trace.ts_us);
        ("args", Json.Obj [ ("advances", Json.Int advances) ]);
      ]
  | Trace.Disk_request { issued_us; done_us; write; _ } ->
    span (if write then "disk write" else "disk read") issued_us done_us
  | Trace.Protection_trap _ -> instant "protection trap"
  | Trace.Protection_toggle { writable; _ } ->
    instant (if writable then "unprotect page" else "protect page")
  | Trace.Fault_injected { fault; _ } -> instant ("inject: " ^ fault)
  | Trace.Wild_store _ -> instant "wild store"
  | Trace.Registry_update _ -> instant "registry update"
  | Trace.Checksum_mismatch _ -> instant "checksum mismatch"
  | Trace.Shadow_flip { engaged; _ } ->
    instant (if engaged then "shadow engage" else "shadow flip back")
  | Trace.Activity { name; start_us; end_us } -> span name start_us end_us
  | Trace.Crash { message; _ } -> instant ("CRASH: " ^ message)
  | Trace.Crash_flush { data; meta } ->
    instant (Printf.sprintf "panic flush: %d data + %d meta" data meta)
  | Trace.Phase { name; start_us; end_us } -> span name start_us end_us
  | Trace.Swap_dump { truncated; _ } ->
    instant (if truncated > 0 then "swap dump (truncated)" else "swap dump")
  | Trace.Mark note -> instant note

let thread_metadata sub =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int (tid_of_sub sub));
      ("args", Json.Obj [ ("name", Json.Str (Trace.subsystem_name sub)) ]);
    ]

let chrome_json ?(meta = []) t =
  let events = List.map chrome_event (Trace.events t) in
  Json.Obj
    ([
       ("displayTimeUnit", Json.Str "ms");
       ("traceEvents", Json.Arr (List.map thread_metadata all_subsystems @ events));
       ( "recorder",
         Json.Obj
           [
             ("total_events", Json.Int (Trace.total t));
             ("dropped_events", Json.Int (Trace.dropped t));
           ] );
       ("metrics", Trace.snapshot_json (Trace.snapshot t));
     ]
    @ meta)

let write_chrome ~file ?meta t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.pretty (chrome_json ?meta t));
      output_char oc '\n')
