open Fs_types

let magic = 0x52494F46 (* "RIOF" *)

let superblock_sector = 0

type superblock = {
  total_sectors : int;
  inode_count : int;
  swap_start : int;
  swap_sectors : int;
  journal_start : int;
  journal_sectors : int;
  ibitmap_start : int;
  ibitmap_sectors : int;
  bbitmap_start : int;
  bbitmap_sectors : int;
  itable_start : int;
  data_start : int;
  data_blocks : int;
  clean : bool;
}

let put_u32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)
let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFF_FFFF
let put_u64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)
let get_u64 b pos = Int64.to_int (Bytes.get_int64_le b pos)

let write_superblock sb =
  let b = Bytes.make 512 '\000' in
  put_u32 b 0 magic;
  put_u32 b 4 sb.total_sectors;
  put_u32 b 8 sb.inode_count;
  put_u32 b 12 sb.swap_start;
  put_u32 b 16 sb.swap_sectors;
  put_u32 b 20 sb.journal_start;
  put_u32 b 24 sb.journal_sectors;
  put_u32 b 28 sb.ibitmap_start;
  put_u32 b 32 sb.ibitmap_sectors;
  put_u32 b 36 sb.bbitmap_start;
  put_u32 b 40 sb.bbitmap_sectors;
  put_u32 b 44 sb.itable_start;
  put_u32 b 48 sb.data_start;
  put_u32 b 52 sb.data_blocks;
  put_u32 b 56 (if sb.clean then 1 else 0);
  b

let read_superblock b =
  if Bytes.length b < 512 then err "superblock: short sector";
  if get_u32 b 0 <> magic then err "superblock: bad magic %#x" (get_u32 b 0);
  let sb =
    {
      total_sectors = get_u32 b 4;
      inode_count = get_u32 b 8;
      swap_start = get_u32 b 12;
      swap_sectors = get_u32 b 16;
      journal_start = get_u32 b 20;
      journal_sectors = get_u32 b 24;
      ibitmap_start = get_u32 b 28;
      ibitmap_sectors = get_u32 b 32;
      bbitmap_start = get_u32 b 36;
      bbitmap_sectors = get_u32 b 40;
      itable_start = get_u32 b 44;
      data_start = get_u32 b 48;
      data_blocks = get_u32 b 52;
      clean = get_u32 b 56 = 1;
    }
  in
  if sb.inode_count <= 0 || sb.data_blocks <= 0 || sb.data_start <= 0 then
    err "superblock: nonsensical geometry";
  if sb.data_start + (sb.data_blocks * sectors_per_block) > sb.total_sectors then
    err "superblock: data region exceeds device";
  sb

let data_sector sb blkno =
  if blkno < 0 || blkno >= sb.data_blocks then err "data block %d out of range" blkno;
  sb.data_start + (blkno * sectors_per_block)

type inode = {
  mutable ftype : Fs_types.ftype;
  mutable nlink : int;
  mutable size : int;
  mutable mtime : int;
  blocks : int array;
}

let empty_inode ftype = { ftype; nlink = 0; size = 0; mtime = 0; blocks = Array.make ndirect 0 }

let inode_bytes = 512

let inode_sector sb ino =
  if ino < 1 || ino > sb.inode_count then err "inode %d out of range" ino;
  sb.itable_start + (ino - 1)

let type_tag = function Regular -> 1 | Directory -> 2 | Symlink -> 3

let write_inode inode b ~pos =
  Bytes.fill b pos inode_bytes '\000';
  put_u32 b pos (type_tag inode.ftype);
  put_u32 b (pos + 4) inode.nlink;
  put_u64 b (pos + 8) inode.size;
  put_u64 b (pos + 16) inode.mtime;
  Array.iteri (fun i blk -> put_u32 b (pos + 24 + (i * 4)) blk) inode.blocks

let read_inode b ~pos =
  let tag = get_u32 b pos in
  let ftype =
    match tag with
    | 1 -> Regular
    | 2 -> Directory
    | 3 -> Symlink
    | t -> err "inode: invalid type tag %d" t
  in
  let nlink = get_u32 b (pos + 4) in
  let size = get_u64 b (pos + 8) in
  let mtime = get_u64 b (pos + 16) in
  if size < 0 || size > ndirect * block_bytes then err "inode: size %d out of range" size;
  if nlink < 0 || nlink > 0xFFFF then err "inode: nlink %d out of range" nlink;
  let blocks = Array.init ndirect (fun i -> get_u32 b (pos + 24 + (i * 4))) in
  { ftype; nlink; size; mtime; blocks }

let inode_is_free b ~pos = get_u32 b pos = 0

let free_inode_image () = Bytes.make inode_bytes '\000'

let dir_entry_bytes name = 4 + 1 + String.length name

let dir_block_capacity = block_bytes - 4 (* room for the terminator *)

let dir_pack entries =
  let b = Bytes.make block_bytes '\000' in
  let pos = ref 0 in
  List.iter
    (fun (name, ino) ->
      let len = String.length name in
      if len = 0 || len > name_max then err "dir_pack: bad name length %d" len;
      if ino <= 0 then err "dir_pack: bad inode %d" ino;
      if !pos + dir_entry_bytes name > dir_block_capacity then err "dir_pack: block overflow";
      put_u32 b !pos ino;
      Bytes.set b (!pos + 4) (Char.chr len);
      Bytes.blit_string name 0 b (!pos + 5) len;
      pos := !pos + dir_entry_bytes name)
    entries;
  b

let dir_unpack b ~pos ~len =
  let stop = pos + len in
  let rec scan p acc =
    if p + 5 > stop then List.rev acc
    else begin
      let ino = get_u32 b p in
      if ino = 0 then List.rev acc
      else begin
        let namelen = Char.code (Bytes.get b (p + 4)) in
        if namelen = 0 || namelen > name_max then err "directory entry: bad name length %d" namelen;
        if p + 5 + namelen > stop then err "directory entry: runs past block end";
        let name = Bytes.sub_string b (p + 5) namelen in
        String.iter
          (fun c ->
            let code = Char.code c in
            if code < 0x20 || code > 0x7E || c = '/' then
              err "directory entry: invalid character %#x in name" code)
          name;
        scan (p + 5 + namelen) ((name, ino) :: acc)
      end
    end
  in
  scan pos []
