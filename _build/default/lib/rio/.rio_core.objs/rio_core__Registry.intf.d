lib/rio/registry.mli: Rio_mem
