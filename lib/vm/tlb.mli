(** A direct-mapped TLB model.

    Translations are always re-checked against the page table (entries cache
    the PTE itself), so the TLB exists to model *costs* and *shootdowns*:
    Rio's protection toggles must invalidate the entry for the page being
    opened or closed for writing, and the hit/miss counters feed the
    protection-overhead ablation. *)

type t

val create : entries:int -> t
(** [entries] must be a power of two (e.g. 64, matching small early-90s
    TLBs). *)

val access : t -> vpn:int -> Pte.t -> unit
(** Record a translation for [vpn]; counts a hit if the slot already holds
    this vpn, else a miss plus a fill. *)

val shootdown : t -> vpn:int -> unit
(** Invalidate any entry for [vpn] (protection change). *)

val flush : t -> unit
(** Invalidate everything (context switch / reboot). *)

val hits : t -> int
val misses : t -> int
val shootdowns : t -> int

val reset_stats : t -> unit

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture slot contents and hit/miss/shootdown counters. *)

val restore : t -> checkpoint -> unit
