(* Quickstart: build a Rio system, write a file, crash the OS without any
   sync, warm-reboot, and read the file back.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Units = Rio_util.Units

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* Wire up a complete machine: simulated memory + MMU + CPU + disk, the
   kernel model, the Rio cache (registry + protection + checksums), and a
   file system mounted with the Rio policy (no reliability disk writes). *)
let build_rio_system ~seed =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  let rio =
    Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
      ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
      ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ()
  in
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  (engine, kernel, rio, fs)

let () =
  say "== Rio quickstart ==";
  let engine, kernel, rio, fs = build_rio_system ~seed:42 in

  say "";
  say "1. Write files through the normal API. With the Rio policy there are";
  say "   no reliability-induced disk writes: every write is instantly as";
  say "   permanent as disk, at memory speed.";
  Fs.mkdir fs "/home";
  Fs.write_file fs "/home/paper.tex" (Bytes.of_string "\\title{The Rio File Cache}");
  let big = Rio_util.Pattern.fill ~seed:7 ~len:100_000 in
  Fs.write_file fs "/home/dataset.bin" big;
  let disk_writes = (Rio_disk.Disk.stats (Kernel.disk kernel)).Rio_disk.Disk.writes in
  say "   -> wrote 2 files; disk writes so far: %d" disk_writes;

  let stats = Rio_cache.stats rio in
  say "   -> registry tracks %d file-cache pages (40 bytes each, protected)"
    stats.Rio_cache.registered_pages;

  say "";
  say "2. Crash the operating system. No sync, no fsync, nothing: the sole";
  say "   copy of the data is in memory.";
  Fs.crash fs;
  say "   -> crashed at t=%s" (Format.asprintf "%a" Units.pp_usec (Engine.now engine));

  say "";
  say "3. Warm reboot (the paper's 2-step §2.2): dump memory to swap, restore";
  say "   metadata to disk from the registry, fsck, remount, then replay the";
  say "   file data through normal write calls.";
  let fs_after = ref None in
  let report =
    Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
      ~layout:(Kernel.layout kernel) ~engine
      ~reboot:(fun () ->
        let kernel2 =
          Kernel.boot_warm ~engine ~costs:Costs.default (Kernel.config_with_seed 42)
            ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
        in
        ignore
          (Rio_cache.create ~mem:(Kernel.mem kernel2) ~layout:(Kernel.layout kernel2)
             ~mmu:(Kernel.mmu kernel2) ~engine ~costs:Costs.default
             ~hooks:(Kernel.hooks kernel2) ~pool_alloc:(Kernel.pool_alloc kernel2)
             ~protection:true ~dev:1 ());
        let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
        fs_after := Some fs2;
        fs2)
  in
  say "   -> %d registry entries recovered (%d corrupt slots)" report.Warm_reboot.registry_entries
    report.Warm_reboot.corrupt_registry_slots;
  say "   -> %d metadata buffers written to disk, %d data buffers replayed"
    report.Warm_reboot.meta_restored report.Warm_reboot.data_restored;
  say "   -> checksums: %d intact, %d mismatched, %d mid-write"
    (report.Warm_reboot.meta_verify.Warm_reboot.intact
    + report.Warm_reboot.data_verify.Warm_reboot.intact)
    (report.Warm_reboot.meta_verify.Warm_reboot.mismatched
    + report.Warm_reboot.data_verify.Warm_reboot.mismatched)
    (report.Warm_reboot.meta_verify.Warm_reboot.changing
    + report.Warm_reboot.data_verify.Warm_reboot.changing);
  say "   -> warm reboot took %s of simulated time"
    (Format.asprintf "%a" Units.pp_usec report.Warm_reboot.duration_us);

  say "";
  say "4. Verify every byte survived.";
  let fs2 = Option.get !fs_after in
  let tex = Fs.read_file fs2 "/home/paper.tex" in
  let bin = Fs.read_file fs2 "/home/dataset.bin" in
  say "   -> /home/paper.tex   : %s"
    (if Bytes.to_string tex = "\\title{The Rio File Cache}" then "intact" else "CORRUPT");
  say "   -> /home/dataset.bin : %s (%d bytes)"
    (if Bytes.equal bin big then "intact" else "CORRUPT")
    (Bytes.length bin);
  say "";
  say "Memory with write-back performance, disk-level reliability. That is Rio."
