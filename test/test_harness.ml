(* Tests for the experiment harnesses: Table 1, Table 2, MTTF, ablations,
   and the paper-data constants. *)

module Reliability = Rio_harness.Reliability
module Performance = Rio_harness.Performance
module Ablation = Rio_harness.Ablation
module Paper_data = Rio_harness.Paper_data
module Run = Rio_harness.Run
module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type

let check = Alcotest.check

(* ---------------- paper data ---------------- *)

let test_table1_rows_sum_to_totals () =
  let d, n, p =
    List.fold_left
      (fun (d, n, p) (_, (a, b, c)) -> (d + a, n + b, p + c))
      (0, 0, 0) Paper_data.table1_corruptions
  in
  check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int) "rows sum to published totals"
    Paper_data.table1_totals (d, n, p)

let test_table1_thirteen_rows () =
  check Alcotest.int "13 rows" 13 (List.length Paper_data.table1_corruptions);
  List.iter
    (fun (label, _) ->
      check Alcotest.bool label true (Fault_type.of_name label <> None))
    Paper_data.table1_corruptions

let test_table2_has_eight_rows () =
  check Alcotest.int "8 systems" 8 (List.length Paper_data.table2);
  List.iter
    (fun (r : Paper_data.perf_row) ->
      check Alcotest.bool (r.Paper_data.label ^ " cp split") true
        (abs_float (r.Paper_data.cp +. r.Paper_data.rm -. r.Paper_data.cp_rm) < 0.6))
    Paper_data.table2

let test_table2_labels_match_configurations () =
  List.iter
    (fun (c : Performance.configuration) ->
      check Alcotest.bool c.Performance.label true
        (Paper_data.table2_row c.Performance.label <> None))
    Performance.configurations

(* ---------------- mttf ---------------- *)

let test_mttf_formula () =
  (* 7/650 at a crash every 2 months ~ 15.5 years. *)
  let rate = 7. /. 650. in
  let years = Reliability.mttf_years ~corruption_rate:rate in
  check Alcotest.bool "close to the paper's 15" true (years > 14. && years < 17.);
  check Alcotest.bool "zero rate is infinite" true
    (Reliability.mttf_years ~corruption_rate:0. = Float.infinity)

(* ---------------- reliability harness (scaled down) ---------------- *)

let quick_config =
  {
    Campaign.default_config with
    Campaign.warmup_steps = 15;
    max_steps = 70;
    memtest_files = 10;
    memtest_file_bytes = 16 * 1024;
    background_andrew = 1;
    andrew_scale = 0.02;
  }

let test_reliability_collects_requested_crashes () =
  let results =
    Reliability.run ~campaign:quick_config
      ~systems:[ Campaign.Rio_without_protection ]
      ~faults:[ Fault_type.Kernel_text; Fault_type.Delete_branch ]
      { Run.default with Run.trials = 3; seed = 100 }
  in
  check Alcotest.int "two cells" 2 (List.length results.Reliability.cells);
  List.iter
    (fun (_, _, c) ->
      check Alcotest.int "3 crashes per cell" 3 c.Reliability.crashes;
      check Alcotest.bool "attempts >= crashes" true (c.Reliability.attempts >= c.Reliability.crashes))
    results.Reliability.cells;
  let corr, crashes = Reliability.system_total results Campaign.Rio_without_protection in
  check Alcotest.int "totals add up" 6 crashes;
  check Alcotest.bool "corruptions bounded" true (corr <= crashes)

let test_reliability_tables_render () =
  let results =
    Reliability.run ~campaign:quick_config ~systems:[ Campaign.Rio_with_protection ]
      ~faults:[ Fault_type.Copy_overrun ]
      { Run.default with Run.trials = 2; seed = 200 }
  in
  let s = Rio_util.Table.render (Reliability.to_table results) in
  check Alcotest.bool "table mentions the fault" true
    (String.length s > 0
    &&
    let re = "copy overrun" in
    let found = ref false in
    for i = 0 to String.length s - String.length re do
      if String.sub s i (String.length re) = re then found := true
    done;
    !found);
  ignore (Rio_util.Table.render (Reliability.comparison_table results))

let test_parallel_run_matches_serial () =
  (* The tentpole guarantee: a campaign on a 4-domain pool produces a
     [results] value structurally equal to the serial run — same cells in
     the same order, same counts, same unique-message totals. *)
  let run domains =
    Reliability.run ~campaign:quick_config
      ~systems:[ Campaign.Disk_based; Campaign.Rio_without_protection ]
      ~faults:[ Fault_type.Kernel_text; Fault_type.Pointer ]
      { Run.default with Run.trials = 2; seed = 77; domains }
  in
  let serial = run 1 and parallel = run 4 in
  check Alcotest.bool "parallel results equal serial results" true (serial = parallel);
  check Alcotest.string "rendered tables byte-identical"
    (Rio_util.Table.render (Reliability.to_table serial))
    (Rio_util.Table.render (Reliability.to_table parallel))

(* ---------------- performance harness (scaled down) ---------------- *)

let test_performance_ordering () =
  let ms =
    Performance.run
      ~only:[ "memory-fs"; "ufs"; "wt-write"; "rio-prot" ]
      { Run.default with Run.scale = 0.04; seed = 1 }
  in
  let time label =
    match List.find_opt (fun m -> m.Performance.config_label = label) ms with
    | Some m -> m.Performance.cp_s +. m.Performance.rm_s
    | None -> Alcotest.failf "missing row %s" label
  in
  (* The paper's headline ordering must hold even at 4% scale. *)
  check Alcotest.bool "mfs <= rio" true (time "memory-fs" <= time "rio-prot");
  check Alcotest.bool "rio < ufs" true (time "rio-prot" < time "ufs");
  check Alcotest.bool "ufs <= wt-write" true (time "ufs" <= time "wt-write")

let test_performance_rio_beats_writethrough_on_sdet () =
  let ms =
    Performance.run ~only:[ "wt-write"; "rio-prot" ]
      { Run.default with Run.scale = 0.04; seed = 1 }
  in
  match Performance.speedup ms ~num:"wt-write" ~den:"rio-prot" with
  | [ _; sdet_ratio; _ ] -> check Alcotest.bool "substantially faster" true (sdet_ratio > 2.)
  | _ -> Alcotest.fail "expected three ratios"

let test_measure_workload_cp_rm_split () =
  let config = List.hd Performance.configurations in
  let cp, rm = Performance.measure_workload config ~scale:0.03 ~seed:1 `Cp_rm in
  check Alcotest.bool "both phases measured" true (cp > 0. && rm >= 0.)

(* ---------------- ablations (scaled down) ---------------- *)

let test_protection_overhead_small () =
  let r = Ablation.protection_overhead ~scale:0.05 ~seed:2 () in
  check Alcotest.bool "toggles happened" true (r.Ablation.toggles > 0);
  (* The paper's claim: essentially no overhead. Allow a lenient 10%. *)
  check Alcotest.bool "small overhead" true (r.Ablation.overhead_pct < 10.)

let test_code_patching_in_band () =
  let r = Ablation.code_patching ~seed:2 () in
  check Alcotest.bool "store density sane" true
    (r.Ablation.store_density > 0.01 && r.Ablation.store_density < 0.5);
  check Alcotest.bool "slowdown in a plausible band" true
    (r.Ablation.slowdown_pct > 5. && r.Ablation.slowdown_pct < 80.)

let test_registry_cost_small () =
  let r = Ablation.registry_cost ~steps:150 ~seed:2 () in
  check Alcotest.int "paper's 40 bytes" 40 r.Ablation.bytes_per_page;
  check Alcotest.bool "updates counted" true (r.Ablation.registry_updates > 0);
  check Alcotest.bool "sub-percent space" true (r.Ablation.space_overhead_pct < 1.);
  check Alcotest.bool "tiny time" true (r.Ablation.time_overhead_pct < 1.)

let test_idle_writeback_helps_under_churn () =
  let r = Ablation.idle_writeback ~seed:4 () in
  check Alcotest.bool "evictions happened" true (r.Ablation.rio_evictions > 0);
  check Alcotest.bool "idle write-back not slower" true
    (r.Ablation.rio_idle_s <= r.Ablation.rio_s *. 1.02)

let test_modern_disk_shrinks_gap () =
  match Ablation.modern_disk_sensitivity ~seed:4 () with
  | [ old_era; modern ] ->
    check Alcotest.bool "rio still wins on both" true
      (old_era.Ablation.ratio > 1.5 && modern.Ablation.ratio > 1.5);
    check Alcotest.bool "gap shrinks with a faster disk" true
      (modern.Ablation.ratio < old_era.Ablation.ratio)
  | _ -> Alcotest.fail "expected two eras"

let test_debit_credit_overhead_low () =
  let r = Ablation.debit_credit ~transactions:200 ~seed:5 () in
  check Alcotest.bool "overhead below Sullivan-Stonebraker's 7%" true
    (r.Ablation.overhead_pct < 7.)

let test_phoenix_loses_rio_does_not () =
  match Ablation.phoenix_comparison ~steps:150 ~seed:5 () with
  | [ p5; p30; rio ] ->
    check Alcotest.int "rio loses nothing" 0 rio.Ablation.lost_bytes;
    check Alcotest.bool "phoenix checkpointed" true (p5.Ablation.checkpoints > p30.Ablation.checkpoints);
    check Alcotest.bool "longer interval loses at least as much" true
      (p30.Ablation.lost_bytes >= p5.Ablation.lost_bytes)
  | _ -> Alcotest.fail "expected three schemes"

let test_vista_experiment_atomic_under_wild_stores () =
  let s =
    Rio_harness.Vista_experiment.run ~fault:Fault_type.Kernel_text ~protection:true
      { Run.default with Run.trials = 4; seed = 300 }
  in
  check Alcotest.int "four crashes collected" 4 s.Rio_harness.Vista_experiment.crashes;
  check Alcotest.bool "atomicity holds under text faults" true
    (s.Rio_harness.Vista_experiment.violations = 0)

let test_delay_sweep_shape () =
  let points = Ablation.delay_sweep ~steps:150 ~seed:2 () in
  let lost_of label =
    match List.find_opt (fun p -> p.Ablation.label = label) points with
    | Some p -> p.Ablation.lost_bytes
    | None -> Alcotest.failf "missing point %s" label
  in
  (* Rio loses nothing; a long delay loses at least as much as a short one. *)
  check Alcotest.int "rio loses nothing" 0 (lost_of "rio (warm reboot)");
  check Alcotest.bool "longer delay loses >= shorter" true
    (lost_of "delay 2.0min" >= lost_of "delay 1.00s")

let () =
  Alcotest.run "rio_harness"
    [
      ( "paper_data",
        [
          Alcotest.test_case "table1 sums" `Quick test_table1_rows_sum_to_totals;
          Alcotest.test_case "table1 rows" `Quick test_table1_thirteen_rows;
          Alcotest.test_case "table2 rows" `Quick test_table2_has_eight_rows;
          Alcotest.test_case "labels match" `Quick test_table2_labels_match_configurations;
        ] );
      ("mttf", [ Alcotest.test_case "formula" `Quick test_mttf_formula ]);
      ( "reliability",
        [
          Alcotest.test_case "collects crashes" `Slow test_reliability_collects_requested_crashes;
          Alcotest.test_case "tables render" `Slow test_reliability_tables_render;
          Alcotest.test_case "parallel matches serial" `Slow test_parallel_run_matches_serial;
        ] );
      ( "performance",
        [
          Alcotest.test_case "ordering" `Slow test_performance_ordering;
          Alcotest.test_case "rio vs write-through" `Slow
            test_performance_rio_beats_writethrough_on_sdet;
          Alcotest.test_case "cp/rm split" `Slow test_measure_workload_cp_rm_split;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "protection overhead" `Slow test_protection_overhead_small;
          Alcotest.test_case "code patching band" `Slow test_code_patching_in_band;
          Alcotest.test_case "registry cost" `Slow test_registry_cost_small;
          Alcotest.test_case "delay sweep shape" `Slow test_delay_sweep_shape;
          Alcotest.test_case "idle write-back" `Slow test_idle_writeback_helps_under_churn;
          Alcotest.test_case "modern disk" `Slow test_modern_disk_shrinks_gap;
          Alcotest.test_case "phoenix comparison" `Slow test_phoenix_loses_rio_does_not;
          Alcotest.test_case "debit/credit overhead" `Slow test_debit_credit_overhead_low;
          Alcotest.test_case "vista under fault injection" `Slow
            test_vista_experiment_atomic_under_wild_stores;
        ] );
    ]
