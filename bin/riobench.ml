(* riobench — regenerate the Rio paper's experiments.

   Subcommands: table1 (reliability), table2 (performance), mttf
   (projection), ablation (protection / code-patching / registry / delay
   sweep), trace (flight-recorder forensics of one crash trial), all. *)

module Reliability = Rio_harness.Reliability
module Run = Rio_harness.Run
module Explorer = Rio_check.Explorer
module Performance = Rio_harness.Performance
module Ablation = Rio_harness.Ablation
module Progress = Rio_harness.Progress
module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type
module Table = Rio_util.Table
module Json = Rio_util.Json
module Pool = Rio_parallel.Pool
module Trace = Rio_obs.Trace
module Export = Rio_obs.Export
module Forensics = Rio_obs.Forensics
module Cov = Rio_cov.Cov
module Heatmap = Rio_cov.Heatmap
open Cmdliner

(* Per-cell progress with an ETA extrapolated from completed cells. *)
let progress verbose =
  if not verbose then fun (_ : Progress.t) -> ()
  else begin
    let t0 = Unix.gettimeofday () in
    fun (p : Progress.t) ->
      let elapsed = Unix.gettimeofday () -. t0 in
      let line =
        if p.Progress.completed > 0 && p.Progress.completed < p.Progress.total then
          Progress.render
            ~eta_s:
              (elapsed /. float_of_int p.Progress.completed
              *. float_of_int (p.Progress.total - p.Progress.completed))
            p
        else Progress.render p
      in
      Printf.eprintf "  %s\n%!" line
  end

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print per-cell progress on stderr.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed (runs are deterministic).")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_domains ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the campaign executor (default: the number of \
           cores). Results are merged in seed order, so any N produces \
           byte-identical tables; -j 1 runs today's serial path.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write machine-readable timings and results to $(docv).")

let backend_arg =
  Arg.(
    value
    & opt
        (enum (List.map (fun b -> (Rio_disk.Backend.to_string b, b)) Rio_disk.Backend.all))
        Rio_disk.Backend.Scsi
    & info [ "backend" ] ~docv:"TIER"
        ~doc:
          "Persistence backend the worlds are built on: $(b,scsi) (the \
           paper's seek+rotation disk, garbage tears) or $(b,nvmm) (a \
           battery-backed append-log tier: near-zero latency, cache-line \
           tears). The check/fuzz configuration matrices fix their own \
           backends per spec and ignore this flag.")

let reference_arg =
  Arg.(
    value & flag
    & info [ "reference" ]
        ~doc:
          "Run the reference (slow) data path instead of the fast one: \
           per-step instruction decode, full-image crash captures, and \
           full-copy swap dumps. Results are byte-identical to the fast \
           path; only wall-clock time differs. For cross-validation.")

(* Both knobs are global and must be set before any worker domains spawn —
   every run_* entry point calls this first. Reference mode also rebuilds
   every trial world from scratch instead of restoring a frozen template,
   so it cross-validates the snapshot/restore path end to end. *)
let set_fastpath ~reference =
  Rio_util.Fastpath.set (not reference);
  Rio_world.World.set_use_templates (not reference)

let ring_capacity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "ring-capacity" ] ~docv:"N"
        ~doc:
          "Trace-ring capacity for the recorders the campaign creates \
           (default 65536; 0 = metrics only). Out-of-range values are \
           clamped and the clamp reported on stderr.")

let hist_buckets_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "hist-buckets" ] ~docv:"E1,E2,.."
        ~doc:
          "Histogram bucket edges (microseconds) for metric rollups in \
           --json output. Sanitized: sorted, deduplicated, negatives \
           dropped, truncated to 64 edges — every adjustment reported on \
           stderr.")

(* Fold the CLI observability knobs into the config and surface every
   clamp the sanitizer applied. *)
let with_obs cfg ~ring ~buckets =
  let cfg =
    { cfg with Run.obs_capacity = ring; obs_buckets = Option.map Array.of_list buckets }
  in
  List.iter (fun w -> Printf.eprintf "riobench: %s\n%!" w) (Run.obs_warnings cfg);
  cfg

let write_table1_json (file, oc) ~crashes ~seed ~jobs ~wall_s ~bucket_edges results =
  let cell_json (system, fault, c) =
    Json.Obj
      [
        ("system", Json.Str (Campaign.system_name system));
        ("fault", Json.Str (Fault_type.name fault));
        ("crashes", Json.Int c.Reliability.crashes);
        ("attempts", Json.Int c.Reliability.attempts);
        ("corruptions", Json.Int c.Reliability.corruptions);
        ("corrupt_paths", Json.Int c.Reliability.corrupt_paths);
        ("protection_traps", Json.Int c.Reliability.protection_traps);
        ("checksum_detections", Json.Int c.Reliability.checksum_detections);
      ]
  in
  let doc =
    Json.Obj
      ([
         ("benchmark", Json.Str "table1");
         ("crashes_per_cell", Json.Int crashes);
         ("seed", Json.Int seed);
         ("jobs", Json.Int jobs);
         ("wall_s", Json.Float wall_s);
         ("unique_messages", Json.Int results.Reliability.unique_messages);
         ( "unique_consistency_messages",
           Json.Int results.Reliability.unique_consistency_messages );
         ("cells", Json.Arr (List.map cell_json results.Reliability.cells));
       ]
      @
      match results.Reliability.metrics with
      | Some snap -> [ ("metrics", Trace.snapshot_json ?bucket_edges snap) ]
      | None -> [])
  in
  output_string oc (Json.pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s\n%!" file

(* ---------------- table1 ---------------- *)

let trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "Turn the flight recorder on: write one JSONL trace per crashed \
           trial into $(docv) (created if missing) and aggregate per-trial \
           metrics into --json output. Off by default (zero overhead).")

let run_table1 crashes seed jobs json trace_dir coverage ring buckets reference verbose =
  set_fastpath ~reference;
  (* Open the JSON sink before the campaign: a bad path must fail in
     milliseconds, not after a 30-minute run. *)
  let json_out =
    Option.map
      (fun file ->
        try (file, open_out file)
        with Sys_error msg ->
          Printf.eprintf "riobench: cannot open --json output: %s\n%!" msg;
          exit 1)
      json
  in
  Printf.printf "Table 1: corruption per fault type (%d crash tests per cell)\n\n%!" crashes;
  let cfg =
    with_obs ~ring ~buckets
      {
        Run.default with
        Run.seed = seed;
        trials = crashes;
        domains = jobs;
        trace_dir;
        coverage;
        progress = progress verbose;
      }
  in
  let t0 = Unix.gettimeofday () in
  let results = Reliability.run cfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  print_string (Table.render (Reliability.to_table results));
  print_newline ();
  print_string (Table.render (Reliability.comparison_table results));
  (* --coverage without --trace-dir rolls metrics up through ring-less
     recorders; either way, show the campaign telemetry when we have it. *)
  (match results.Reliability.metrics with
  | Some snap when coverage ->
    Printf.printf "\ncampaign telemetry (%d counters, %d histograms):\n"
      (List.length snap.Trace.counters)
      (List.length snap.Trace.histograms);
    List.iter (fun (name, v) -> Printf.printf "  %-32s %12d\n" name v) snap.Trace.counters;
    List.iter
      (fun (name, values) ->
        if Array.length values > 0 then
          Printf.printf "  %-32s n=%d p50=%.0f p99=%.0f max=%d us\n" name
            (Array.length values)
            (Trace.percentile values 50.0)
            (Trace.percentile values 99.0)
            (Array.fold_left max min_int values))
      snap.Trace.histograms
  | _ -> ());
  match json_out with
  | Some out ->
    write_table1_json out ~crashes ~seed ~jobs ~wall_s ~bucket_edges:(Run.obs_buckets cfg)
      results
  | None -> ()

let crashes_arg =
  Arg.(
    value
    & opt int 50
    & info [ "crashes" ] ~docv:"N"
        ~doc:"Crash tests per (system, fault type) cell. The paper used 50.")

let coverage_arg =
  Arg.(
    value & flag
    & info [ "coverage" ]
        ~doc:
          "Account campaign coverage/telemetry: check and fuzz runs append a \
           crash-space heatmap (and carry a coverage map in --json output); \
           table1 rolls per-trial metrics up even with tracing off.")

let table1_cmd =
  let doc = "Reproduce Table 1: how often crashes corrupt file data." in
  Cmd.v
    (Cmd.info "table1" ~doc)
    Term.(
      const run_table1 $ crashes_arg $ seed_arg $ jobs_arg $ json_arg $ trace_dir_arg
      $ coverage_arg $ ring_capacity_arg $ hist_buckets_arg $ reference_arg $ verbose_arg)

(* ---------------- table2 ---------------- *)

let run_table2 scale seed jobs backend verbose =
  Printf.printf "Table 2: running time by file-system configuration (scale %.2f, backend %s)\n\n%!"
    scale
    (Rio_disk.Backend.to_string backend);
  let ms =
    Performance.run
      {
        Run.default with
        Run.seed = seed;
        scale;
        domains = jobs;
        backend;
        progress = progress verbose;
      }
  in
  print_string (Table.render (Performance.to_table ms));
  print_newline ();
  print_string (Table.render (Performance.comparison_table ms))

let scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~docv:"S"
        ~doc:"Workload scale; 1.0 = the paper's 40 MB tree, 5 Sdet scripts, full Andrew.")

let table2_cmd =
  let doc = "Reproduce Table 2: performance of the eight file-system configurations." in
  Cmd.v (Cmd.info "table2" ~doc)
    Term.(const run_table2 $ scale_arg $ seed_arg $ jobs_arg $ backend_arg $ verbose_arg)

(* ---------------- mttf ---------------- *)

let run_mttf crashes seed jobs verbose =
  Printf.printf "MTTF projection (a crash every two months, as in the paper)\n\n%!";
  let results =
    Reliability.run
      ~systems:
        [ Rio_fault.Campaign.Disk_based; Rio_fault.Campaign.Rio_without_protection;
          Rio_fault.Campaign.Rio_with_protection ]
      {
        Run.default with
        Run.seed = seed;
        trials = crashes;
        domains = jobs;
        progress = progress verbose;
      }
  in
  print_string (Table.render (Reliability.comparison_table results))

let mttf_cmd =
  let doc = "Project MTTF from measured corruption rates (paper: disk 15y, Rio 11y)." in
  Cmd.v (Cmd.info "mttf" ~doc)
    Term.(const run_mttf $ crashes_arg $ seed_arg $ jobs_arg $ verbose_arg)

(* ---------------- ablation ---------------- *)

let run_ablation seed jobs verbose =
  let r =
    Ablation.run
      { Run.default with Run.seed = seed; domains = jobs; progress = progress verbose }
  in
  Printf.printf "Ablation: protection overhead (Table 2's last two rows)\n";
  print_string (Table.render (Ablation.protection_table r.Ablation.protection));
  Printf.printf "\nAblation: code-patching alternative (paper prose: 20-50%% slower)\n";
  print_string (Table.render (Ablation.code_patching_table r.Ablation.patching));
  Printf.printf "\nAblation: registry cost (paper: 40 bytes per 8 KB page)\n";
  print_string (Table.render (Ablation.registry_table r.Ablation.registry));
  Printf.printf "\nAblation: delayed-write window vs data loss (paper \194\1671)\n";
  print_string (Table.render (Ablation.delay_table r.Ablation.delay));
  Printf.printf "\nExtension: Rio with idle-period write-back (paper \194\1672.3 future work)\n";
  print_string (Table.render (Ablation.idle_writeback_table r.Ablation.idle));
  Printf.printf "\nExtension: sensitivity to disk speed (1996 vs modern)\n";
  print_string (Table.render (Ablation.disk_sensitivity_table r.Ablation.disk));
  Printf.printf "\nRelated work: Phoenix-style checkpointing vs Rio (paper \194\1676)\n";
  print_string (Table.render (Ablation.phoenix_table r.Ablation.phoenix));
  Printf.printf "\nRelated work: protection overhead on debit/credit (paper \194\1676)\n";
  print_string (Table.render (Ablation.debit_credit_table r.Ablation.debit))

let ablation_cmd =
  let doc = "Run the design-choice ablations from the paper's prose claims." in
  Cmd.v (Cmd.info "ablation" ~doc)
    Term.(const run_ablation $ seed_arg $ jobs_arg $ verbose_arg)

(* ---------------- messages ---------------- *)

let run_messages crashes seed _jobs _verbose =
  (* The census's stopping rule is inherently sequential (stop after the
     N-th crash over one interleaved fault cycle), so it stays serial;
     [-j] is accepted for CLI uniformity. *)
  Printf.printf
    "Crash-message census over %d crashes (mixed fault types, rio w/o protection)\n\n%!" crashes;
  let census = Reliability.message_census ~crashes ~seed_base:seed () in
  List.iter (fun (m, c) -> Printf.printf "%4d  %s\n" c m) census;
  Printf.printf "\n%d distinct messages (paper: 74 unique, 59 consistency, over 1950 crashes)\n"
    (List.length census)

let messages_cmd =
  let doc = "Census of distinct crash console messages (crash diversity, \194\1673.1)." in
  Cmd.v (Cmd.info "messages" ~doc)
    Term.(const run_messages $ crashes_arg $ seed_arg $ jobs_arg $ verbose_arg)

(* ---------------- trace ---------------- *)

let fault_arg =
  Arg.(
    value
    & opt string "copy-overrun"
    & info [ "fault" ] ~docv:"SLUG"
        ~doc:
          (Printf.sprintf "Fault type to inject: one of %s."
             (String.concat ", " (List.map Fault_type.slug Fault_type.all))))

let system_arg =
  Arg.(
    value
    & opt string "rio-noprot"
    & info [ "system" ] ~docv:"SLUG"
        ~doc:
          (Printf.sprintf "System under test: one of %s."
             (String.concat ", " (List.map Campaign.system_slug Campaign.all_systems))))

let out_arg =
  Arg.(
    value
    & opt string "trace.json"
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Chrome trace_event output (load in Perfetto or chrome://tracing).")

let jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE" ~doc:"Also dump the raw event stream as JSON Lines.")

let run_trace seed fault_slug system_slug out jsonl _verbose =
  let fault =
    match Fault_type.of_slug fault_slug with
    | Some f -> f
    | None ->
      Printf.eprintf "riobench: unknown fault type %S (see riobench trace --help)\n%!"
        fault_slug;
      exit 1
  in
  let system =
    match
      List.find_opt (fun s -> Campaign.system_slug s = system_slug) Campaign.all_systems
    with
    | Some s -> s
    | None ->
      Printf.eprintf "riobench: unknown system %S (see riobench trace --help)\n%!"
        system_slug;
      exit 1
  in
  let cfg = Campaign.default_config in
  (* Like the campaign's cells, seeds that never crash inside the watchdog
     window are discarded; walk forward from [seed] until a trial crashes.
     A generous ring keeps the injection event in the recorder even on
     long trials. *)
  let max_attempts = 50 in
  let rec attempt i =
    if i >= max_attempts then begin
      Printf.eprintf
        "riobench: no crashing trial in %d attempts from seed %d (try another seed)\n%!"
        max_attempts seed;
      exit 1
    end;
    let obs = Trace.create ~capacity:(1 lsl 20) () in
    let o = Campaign.run_one ~obs cfg system fault ~seed:(seed + i) in
    if o.Campaign.discarded then attempt (i + 1) else (obs, o, seed + i)
  in
  let obs, outcome, used_seed = attempt 0 in
  Printf.printf "crash trial: %s, %s, seed %d%s\n\n" (Campaign.system_name system)
    (Fault_type.name fault) used_seed
    (if used_seed = seed then ""
     else Printf.sprintf " (seeds %d..%d discarded: no crash in window)" seed (used_seed - 1));
  (match outcome.Campaign.forensics with
  | Some f -> List.iter print_endline (Forensics.narrative f)
  | None -> ());
  Printf.printf "\noutcome: %s\n\n" (Format.asprintf "%a" Campaign.pp_outcome outcome);
  let meta =
    [
      ("system", Json.Str (Campaign.system_slug system));
      ("fault", Json.Str (Fault_type.slug fault));
      ("seed", Json.Int used_seed);
    ]
  in
  Export.write_chrome ~file:out ~meta obs;
  Printf.printf "wrote %s (open in Perfetto / chrome://tracing)\n" out;
  match jsonl with
  | Some file ->
    Export.write_jsonl ~file ~header:(Json.Obj meta) obs;
    Printf.printf "wrote %s\n" file
  | None -> ()

let trace_cmd =
  let doc =
    "Flight-record one seeded crash trial: print the forensic narrative \
     (injection, wild stores, crash, recovery) and dump a Chrome trace."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run_trace $ seed_arg $ fault_arg $ system_arg $ out_arg $ jsonl_arg $ verbose_arg)

(* ---------------- vista ---------------- *)

let run_vista crashes seed jobs _verbose =
  let module V = Rio_harness.Vista_experiment in
  let module F = Rio_fault.Fault_type in
  Printf.printf
    "Fault injection against a database on Rio (the conclusions' promised experiment)\n\n%!";
  let tasks =
    List.concat_map
      (fun fault -> List.map (fun prot -> (fault, prot)) [ true; false ])
      [ F.Kernel_text; F.Pointer; F.Copy_overrun ]
  in
  let rows =
    Pool.map_list ~domains:jobs
      (fun (fault, prot) ->
        ( Printf.sprintf "%s, protection %s" (F.name fault) (if prot then "on" else "off"),
          V.run ~fault ~protection:prot
            { Run.default with Run.seed = seed; trials = crashes } ))
      tasks
  in
  print_string (Table.render (Rio_harness.Vista_experiment.summary_table rows));
  Printf.printf
    "\nA \"ledger violation\" is money not conserved after warm reboot + undo\n\
     recovery. Wild-store faults are stopped by protection; copy overruns\n\
     firing inside the database's own write window are the \194\1672.1 residual\n\
     vulnerability (shared by disks).\n"

let vista_cmd =
  let doc = "Fault-inject a Vista database on Rio and audit transaction atomicity." in
  Cmd.v (Cmd.info "vista" ~doc)
    Term.(const run_vista $ crashes_arg $ seed_arg $ jobs_arg $ verbose_arg)

(* ---------------- workloads ---------------- *)

let run_workloads scale _seed _jobs _verbose =
  let module Script = Rio_workload.Script in
  let module Andrew = Rio_workload.Andrew in
  let module Sdet = Rio_workload.Sdet in
  let module File_tree = Rio_workload.File_tree in
  Printf.printf "Workload characterization (scale %.2f)\n\n" scale;
  let show name ops =
    Format.printf "%-22s %a@.@." name Script.pp_stats (Script.describe ops)
  in
  let w = Rio_workload.Cp_rm.create ~total_bytes:(int_of_float (scale *. 40e6)) () in
  let tree =
    File_tree.generate
      (File_tree.default ~root:"/usr/src" ~total_bytes:(int_of_float (scale *. 40e6)))
  in
  show "cp+rm setup (source)" (File_tree.create_ops tree);
  show "cp phase" (File_tree.copy_ops tree ~src_root:"/usr/src" ~dst_root:"/tmp/copy");
  show "rm phase" (File_tree.remove_ops tree);
  ignore w;
  show "andrew (full)" (Andrew.ops (Andrew.create ~scale ()));
  let sdet = Sdet.create ~scripts:5 ~ops_per_script:(max 20 (int_of_float (scale *. 1200.))) () in
  (match Sdet.scripts sdet with
  | first :: _ -> show "sdet (one of 5 scripts)" first
  | [] -> ())

let workloads_cmd =
  let doc = "Describe the synthetic workloads' operation mixes." in
  Cmd.v (Cmd.info "workloads" ~doc)
    Term.(const run_workloads $ scale_arg $ seed_arg $ jobs_arg $ verbose_arg)

(* ---------------- check ---------------- *)

let scenario_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "scenario" ] ~docv:"SLUG"
        ~doc:
          (Printf.sprintf
             "Restrict to one scenario (repeatable): %s. Default: all of them."
             (String.concat ", "
                (List.map (fun s -> s.Rio_check.Scenario.slug) Rio_check.Scenario.all))))

let matrix_arg =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:
          "Run the configuration matrix: rio with and without protection must \
           survive every crash point; the shadow-copies-off and registry-off \
           ablations must be flagged. Exit status reflects whether every \
           verdict matched.")

(* Shared --json sink for check/fuzz/cov: open early (fail fast on a bad
   path), wrap the library document with the invocation header, write on
   completion. Wall-clock and job counts stay OUT of the cov document —
   they are telemetry, not results — so those wrappers pass [header]
   without them. *)
let open_json_sink json =
  Option.map
    (fun file ->
      try (file, open_out file)
      with Sys_error msg ->
        Printf.eprintf "riobench: cannot open --json output: %s\n%!" msg;
        exit 1)
    json

let write_json_doc (file, oc) ~header body =
  let doc = Json.Obj (header @ body) in
  output_string oc (Json.pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "wrote %s\n%!" file

let print_heatmap = function
  | Some cov ->
    print_newline ();
    print_string (Heatmap.render cov)
  | None -> ()

let interleave_arg =
  Arg.(
    value
    & opt int 0
    & info [ "interleave" ] ~docv:"N"
        ~doc:
          "Also explore $(docv) deterministic task interleavings of each \
           multi-task scenario: every crash point of every interleaving is \
           enumerated, reported under the slug <scenario>#i<j>. 0 (the \
           default) keeps the single-task campaign unchanged. Ignored with \
           --matrix.")

let run_check seed jobs backend scenarios matrix interleave json coverage ring buckets
    reference verbose =
  set_fastpath ~reference;
  let only = match scenarios with [] -> None | slugs -> Some slugs in
  let json_out = open_json_sink json in
  let cfg =
    with_obs ~ring ~buckets
      { Run.default with Run.seed; domains = jobs; coverage; progress = progress verbose }
  in
  let header wall_s =
    [
      ("benchmark", Json.Str "check");
      ("seed", Json.Int seed);
      ("jobs", Json.Int jobs);
      ("wall_s", Json.Float wall_s);
    ]
  in
  match
    let t0 = Unix.gettimeofday () in
    if matrix then begin
      Printf.printf "Exhaustive crash-schedule check, configuration matrix (seed %d)\n\n%!"
        seed;
      let entries = Explorer.run_matrix ?only cfg in
      let wall_s = Unix.gettimeofday () -. t0 in
      print_string (Explorer.render_matrix entries);
      if coverage then
        print_heatmap
          (Some
             (Cov.merge_list
                (List.filter_map
                   (fun e -> e.Explorer.entry_report.Explorer.coverage)
                   entries)));
      Option.iter
        (fun out ->
          write_json_doc out ~header:(header wall_s)
            [ ("matrix", Explorer.matrix_json entries) ])
        json_out;
      if Explorer.matrix_ok entries then `Ok else `Violations
    end
    else begin
      Printf.printf "Exhaustive crash-schedule check (seed %d, backend %s)\n\n%!" seed
        (Rio_disk.Backend.to_string backend);
      let report =
        Explorer.run ~spec:{ Explorer.rio_prot with Explorer.backend } ?only ~interleave cfg
      in
      let wall_s = Unix.gettimeofday () -. t0 in
      print_string (Explorer.render report);
      if coverage then print_heatmap report.Explorer.coverage;
      Option.iter
        (fun out ->
          write_json_doc out ~header:(header wall_s)
            [ ("report", Explorer.report_json report) ])
        json_out;
      if Explorer.violation_count report = 0 then `Ok else `Violations
    end
  with
  | `Ok -> ()
  | `Violations -> exit 1
  | exception Invalid_argument msg ->
    Printf.eprintf "riobench: %s (see riobench check --help)\n%!" msg;
    exit 2

let check_cmd =
  let doc =
    "Check every crash schedule of scripted operations: enumerate each crash \
     boundary (store windows, registry updates, shadow flips, disk \
     completions, Vista undo-log steps), crash exactly there, warm-reboot, \
     and verify the recovered file system. Zero violations is exhaustive over \
     the enumeration, not sampled."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run_check $ seed_arg $ jobs_arg $ backend_arg $ scenario_arg $ matrix_arg
      $ interleave_arg $ json_arg $ coverage_arg $ ring_capacity_arg $ hist_buckets_arg
      $ reference_arg $ verbose_arg)

(* ---------------- fuzz ---------------- *)

let trials_arg =
  Arg.(
    value
    & opt int 40
    & info [ "trials" ] ~docv:"N"
        ~doc:"Random programs to fuzz (each crashes at one random boundary).")

let max_ops_arg =
  Arg.(
    value
    & opt int Rio_fuzz.Fuzzer.default_max_ops
    & info [ "max-ops" ] ~docv:"K" ~doc:"Maximum operations per generated program.")

let config_arg =
  Arg.(
    value
    & opt string "rio-prot"
    & info [ "config" ] ~docv:"SLUG"
        ~doc:
          "Configuration to fuzz (without --matrix): one of rio-prot, \
           rio-noprot, shadow-off, registry-off, rio-idle, wb-cold, \
           wb-order; with --tasks, also lock-off (rio-prot with \
           block-ownership locking disabled — the planted lost-update \
           ablation). Known-unsafe configurations (wb-order) must be \
           caught $(i,and) shrunk: exit 2 when caught, 1 when missed.")

let tasks_fuzz_arg =
  Arg.(
    value
    & opt int 1
    & info [ "tasks" ] ~docv:"T"
        ~doc:
          "Interleaving fuzz: run $(docv) concurrent tasks per trial under \
           the deterministic scheduler, crossing task interleavings with \
           crash points. --config rio-prot must fuzz clean (exit 1 on a \
           violation); --config lock-off is the ablation the fuzzer must \
           catch $(i,and) shrink (exit 2 when caught, 1 when missed). \
           Default 1: the single-task fuzzer. Incompatible with --matrix.")

let fuzz_matrix_arg =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:
          "Fuzz the configuration matrix: rio with and without protection must \
           fuzz clean; the shadow-copies-off and registry-off ablations must \
           be caught $(i,and) shrunk to a readable repro. Exit status reflects \
           whether every verdict matched.")

let find_spec config ~cmd =
  match
    List.find_opt (fun (s : Explorer.spec) -> s.Explorer.label = config) Explorer.fuzz_specs
  with
  | Some s -> s
  | None ->
    Printf.eprintf "riobench: unknown --config %S (see riobench %s --help)\n%!" config cmd;
    exit 2

let run_fuzz trials max_ops seed jobs backend config tasks matrix json coverage ring buckets
    reference verbose =
  set_fastpath ~reference;
  let module Fuzzer = Rio_fuzz.Fuzzer in
  if trials <= 0 || max_ops <= 0 then begin
    Printf.eprintf "riobench: --trials and --max-ops must be positive\n%!";
    exit 2
  end;
  if tasks < 1 then begin
    Printf.eprintf "riobench: --tasks must be >= 1\n%!";
    exit 2
  end;
  if tasks > 1 && matrix then begin
    Printf.eprintf "riobench: --tasks and --matrix are incompatible\n%!";
    exit 2
  end;
  if config = "lock-off" && tasks < 2 then begin
    Printf.eprintf "riobench: --config lock-off needs --tasks >= 2\n%!";
    exit 2
  end;
  let json_out = open_json_sink json in
  let cfg =
    with_obs ~ring ~buckets
      {
        Run.default with
        Run.seed;
        trials;
        domains = jobs;
        coverage;
        progress = progress verbose;
      }
  in
  let header wall_s =
    [
      ("benchmark", Json.Str "fuzz");
      ("seed", Json.Int seed);
      ("jobs", Json.Int jobs);
      ("wall_s", Json.Float wall_s);
    ]
  in
  let t0 = Unix.gettimeofday () in
  if tasks > 1 then begin
    (* Interleaving mode: T concurrent tasks per trial. "lock-off" is
       rio-prot with the ownership lock disabled — the planted
       lost-update ablation the fuzzer must catch and shrink. *)
    let locking = config <> "lock-off" in
    let spec = if locking then find_spec config ~cmd:"fuzz" else Explorer.rio_prot in
    if spec.Explorer.cold then begin
      Printf.eprintf "riobench: cold-recovery configs (%s) are single-task only\n%!" config;
      exit 2
    end;
    let spec = { spec with Explorer.backend } in
    Printf.printf "Interleaving crash-schedule fuzz (seed %d, %d tasks, %s)\n\n%!" seed
      tasks config;
    let report = Fuzzer.run_tasks ~spec ~locking ~max_ops ~tasks cfg in
    let wall_s = Unix.gettimeofday () -. t0 in
    print_string (Fuzzer.render_tasks report);
    if coverage then print_heatmap report.Fuzzer.tr_coverage;
    (* Wall-clock and job count stay out of the document (stderr only):
       CI cmp's the -j 1 and -j 2 JSONs byte for byte. *)
    Printf.eprintf "fuzz: %d interleaved trials in %.1f s (-j %d)\n%!" trials wall_s jobs;
    Option.iter
      (fun out ->
        write_json_doc out
          ~header:
            [
              ("benchmark", Json.Str "fuzz-tasks");
              ("config", Json.Str config);
              ("seed", Json.Int seed);
            ]
          [ ("report", Fuzzer.treport_json report) ])
      json_out;
    if locking then begin
      if report.Fuzzer.tr_violations > 0 then exit 1
    end
    else if Fuzzer.tasks_caught report then begin
      (* The ablation run is SUPPOSED to find violations; exit 2 is the
         caught-and-shrunk verdict CI asserts on. *)
      Printf.eprintf "riobench: lock-off ablation caught and shrunk\n%!";
      exit 2
    end
    else begin
      Printf.eprintf
        "riobench: lock-off ablation was NOT caught (or the repro did not \
         shrink) — checker hole\n%!";
      exit 1
    end
  end
  else if matrix then begin
    Printf.printf "Randomized crash-schedule fuzz, configuration matrix (seed %d)\n\n%!" seed;
    let entries = Fuzzer.run_matrix ~max_ops cfg in
    let wall_s = Unix.gettimeofday () -. t0 in
    print_string (Fuzzer.render_matrix entries);
    if coverage then
      print_heatmap
        (Some
           (Cov.merge_list
              (List.filter_map (fun e -> e.Fuzzer.entry_report.Fuzzer.coverage) entries)));
    Option.iter
      (fun out ->
        write_json_doc out ~header:(header wall_s) [ ("matrix", Fuzzer.matrix_json entries) ])
      json_out;
    if not (Fuzzer.matrix_ok entries) then exit 1
  end
  else begin
    let spec = { (find_spec config ~cmd:"fuzz") with Explorer.backend } in
    Printf.printf "Randomized crash-schedule fuzz (seed %d, %s)\n\n%!" seed config;
    let report = Fuzzer.run ~spec ~max_ops cfg in
    let wall_s = Unix.gettimeofday () -. t0 in
    print_string (Fuzzer.render report);
    if coverage then print_heatmap report.Fuzzer.coverage;
    Option.iter
      (fun out ->
        write_json_doc out ~header:(header wall_s) [ ("report", Fuzzer.report_json report) ])
      json_out;
    if spec.Explorer.expect_safe then begin
      if report.Fuzzer.violations > 0 then exit 1
    end
    else if
      report.Fuzzer.violations > 0
      && List.exists
           (fun (c : Fuzzer.counterexample) ->
             List.length c.Fuzzer.ops <= Fuzzer.max_repro_ops && c.Fuzzer.problems <> [])
           report.Fuzzer.counterexamples
    then begin
      (* A known-unsafe config is SUPPOSED to find violations; exit 2 is
         the caught-and-shrunk verdict CI asserts on. *)
      Printf.eprintf "riobench: %s ablation caught and shrunk\n%!" config;
      exit 2
    end
    else begin
      Printf.eprintf
        "riobench: %s ablation was NOT caught (or the repro did not shrink) — checker hole\n%!"
        config;
      exit 1
    end
  end

let fuzz_cmd =
  let doc =
    "Fuzz crash schedules: run random operation programs (creat, append, \
     overwrite, mkdir, unlink, rename, Vista transactions) over a growing \
     tree, crash each at a random protocol boundary, warm-reboot, and audit \
     the atomicity contracts. Violations are delta-debugged down to a \
     minimal program + boundary and reported with a forensic trace. Output \
     is byte-identical at any -j."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run_fuzz $ trials_arg $ max_ops_arg $ seed_arg $ jobs_arg $ backend_arg
      $ config_arg $ tasks_fuzz_arg $ fuzz_matrix_arg $ json_arg $ coverage_arg
      $ ring_capacity_arg $ hist_buckets_arg $ reference_arg $ verbose_arg)

(* ---------------- cov ---------------- *)

let cov_only_arg =
  Arg.(
    value
    & opt (enum [ ("check", `Check); ("fuzz", `Fuzz); ("all", `All) ]) `All
    & info [ "only" ] ~docv:"WHICH"
        ~doc:"Which campaigns feed the map: $(b,check), $(b,fuzz), or $(b,all).")

let require_full_arg =
  Arg.(
    value & flag
    & info [ "require-full" ]
        ~doc:
          "Exit 3 if any enumerated boundary label class was never crashed \
           into — the CI coverage gate.")

let cov_json_arg =
  Arg.(
    value
    & opt string "BENCH_cov.json"
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Machine-readable coverage map (default $(b,BENCH_cov.json)). \
           Contains no wall-clock or job-count fields: equal campaigns \
           write byte-identical documents at any -j.")

let run_cov only require_full json config trials max_ops seed jobs backend ring buckets
    reference verbose =
  set_fastpath ~reference;
  if trials <= 0 || max_ops <= 0 then begin
    Printf.eprintf "riobench: --trials and --max-ops must be positive\n%!";
    exit 2
  end;
  let module Fuzzer = Rio_fuzz.Fuzzer in
  let spec = { (find_spec config ~cmd:"cov") with Explorer.backend } in
  let json_out = open_json_sink (Some json) in
  let cfg =
    with_obs ~ring ~buckets
      {
        Run.default with
        Run.seed = seed;
        trials;
        domains = jobs;
        coverage = true;
        progress = progress verbose;
      }
  in
  Printf.printf "Crash-space coverage, %s (seed %d)\n\n%!" config seed;
  let t0 = Unix.gettimeofday () in
  let check_report =
    match only with
    | `Fuzz -> None
    | `Check | `All ->
      let r = Explorer.run ~spec cfg in
      Printf.printf "[check] %d scenarios, %d crash points, %d violations\n%!"
        (List.length r.Explorer.scenarios)
        (Explorer.crash_points r) (Explorer.violation_count r);
      Some r
  in
  let fuzz_report =
    match only with
    | `Check -> None
    | `Fuzz | `All ->
      let r = Fuzzer.run ~spec ~max_ops cfg in
      Printf.printf "[fuzz] %d trials of <= %d ops, %d boundaries, %d violations\n%!"
        r.Fuzzer.trials r.Fuzzer.max_ops r.Fuzzer.boundaries r.Fuzzer.violations;
      Some r
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let covs =
    List.filter_map Fun.id
      [
        Option.bind check_report (fun r -> r.Explorer.coverage);
        Option.bind fuzz_report (fun r -> r.Fuzzer.coverage);
      ]
  in
  let merged = Cov.merge_list covs in
  print_newline ();
  print_string (Heatmap.render merged);
  (* Wall-clock telemetry goes to stderr only: stdout and the JSON stay
     byte-identical at any -j. *)
  Printf.eprintf "cov: %d crash trials in %.1f s (%.0f trials/s, -j %d)\n%!"
    (Cov.crash_trials merged) wall_s
    (float_of_int (Cov.crash_trials merged) /. Float.max wall_s 1e-9)
    jobs;
  let campaign_json =
    List.filter_map Fun.id
      [
        Option.map
          (fun r ->
            ( "check",
              Json.Obj
                [
                  ("crash_points", Json.Int (Explorer.crash_points r));
                  ("violations", Json.Int (Explorer.violation_count r));
                ] ))
          check_report;
        Option.map
          (fun (r : Fuzzer.report) ->
            ( "fuzz",
              Json.Obj
                [
                  ("trials", Json.Int r.Fuzzer.trials);
                  ("max_ops", Json.Int r.Fuzzer.max_ops);
                  ("boundaries", Json.Int r.Fuzzer.boundaries);
                  ("violations", Json.Int r.Fuzzer.violations);
                ] ))
          fuzz_report;
      ]
  in
  Option.iter
    (fun out ->
      write_json_doc out
        ~header:
          [
            ("benchmark", Json.Str "cov");
            ("config", Json.Str config);
            ("seed", Json.Int seed);
          ]
        (campaign_json @ [ ("coverage", Cov.to_json merged) ]))
    json_out;
  let violations =
    (match check_report with Some r -> Explorer.violation_count r | None -> 0)
    + match fuzz_report with Some r -> r.Fuzzer.violations | None -> 0
  in
  if violations > 0 then exit 1;
  if require_full && Cov.unhit_classes merged <> [] then begin
    Printf.eprintf "riobench: coverage gate failed: unhit label classes: %s\n%!"
      (String.concat ", " (Cov.unhit_classes merged));
    exit 3
  end

let cov_cmd =
  let doc =
    "Map what the crash campaigns actually covered: run the exhaustive \
     checker and/or the fuzzer with coverage accounting on, merge the \
     per-trial signatures deterministically, and print the crash-space \
     heatmap (boundary label class x crash-ordinal bucket, and x operation \
     kind). Writes BENCH_cov.json; stdout and the JSON are byte-identical \
     at any -j. --require-full turns the map into a CI gate."
  in
  Cmd.v (Cmd.info "cov" ~doc)
    Term.(
      const run_cov $ cov_only_arg $ require_full_arg $ cov_json_arg $ config_arg
      $ trials_arg $ max_ops_arg $ seed_arg $ jobs_arg $ backend_arg $ ring_capacity_arg
      $ hist_buckets_arg $ reference_arg $ verbose_arg)

(* ---------------- microbench ---------------- *)

(* The simulator's own profiler: no perf/gprof in this toolchain, so the
   fast-path work is measured by timing each hot phase directly — the
   interpreted CPU loop (fast and reference), a world build, a warm
   reboot, and an end-to-end fuzz crash trial. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* A representative instruction mix (2 ALU, 1 load, 1 store, 1 jump)
   spinning in a tight loop; the Machine's budget is the stop condition. *)
let cpu_probe_instrs = 4_000_000

let cpu_probe ~fast =
  let module Isa = Rio_cpu.Isa in
  let module Machine = Rio_cpu.Machine in
  let module Phys_mem = Rio_mem.Phys_mem in
  let was = Rio_util.Fastpath.on () in
  Rio_util.Fastpath.set fast;
  Fun.protect ~finally:(fun () -> Rio_util.Fastpath.set was) @@ fun () ->
  let mem = Phys_mem.create ~bytes_total:(32 * Phys_mem.page_size) in
  let mmu = Rio_vm.Mmu.create ~mem_pages:(Phys_mem.page_count mem) ~tlb_entries:16 () in
  let m = Machine.create ~mem ~mmu in
  List.iteri
    (fun i instr -> Phys_mem.write_u32 mem (i * 4) (Isa.encode instr))
    [
      Isa.Ori (10, 0, Phys_mem.page_size) (* r10 = scratch page *);
      Isa.Addi (1, 1, 1);
      Isa.St (1, 10, 0);
      Isa.Ld (3, 10, 0);
      Isa.Add (4, 4, 3);
      Isa.Jmp (-4);
    ];
  Machine.set_pc m 0;
  (* Warm up (fills the decode cache on the fast path). *)
  ignore (Machine.run m ~max_instructions:100_000);
  let before = Machine.instructions_retired m in
  let state, wall = time (fun () -> Machine.run m ~max_instructions:cpu_probe_instrs) in
  (match state with
  | Machine.Running -> ()
  | Machine.Halted -> failwith "microbench: cpu probe halted unexpectedly"
  | Machine.Trapped trap ->
    failwith ("microbench: cpu probe trapped: " ^ Machine.trap_to_string trap));
  let instrs = Machine.instructions_retired m - before in
  (instrs, wall)

(* Boot + format + Rio + mount + a little file population — the fixed
   cost every campaign trial pays before any fault goes in. Sub-phase
   timings accumulate into the caller's [detail] array (boot / format /
   mount / seed-files), which stays local to one probe run so concurrent
   runs never share an accumulator. *)
let build_world ?(detail = Array.make 4 0.0) ~seed () =
  let module Kernel = Rio_kernel.Kernel in
  let module Fs = Rio_fs.Fs in
  let sub i f =
    let r, s = time f in
    detail.(i) <- detail.(i) +. s;
    r
  in
  let engine = Rio_sim.Engine.create () in
  let costs = Rio_sim.Costs.default in
  let kcfg = Kernel.config_with_seed seed in
  let kernel = sub 0 (fun () -> Kernel.boot ~engine ~costs kcfg) in
  sub 1 (fun () -> Kernel.format kernel);
  let fs =
    sub 2 (fun () ->
        ignore
          (Rio_core.Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
             ~mmu:(Kernel.mmu kernel) ~engine ~costs ~hooks:(Kernel.hooks kernel)
             ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
        Kernel.mount kernel ~policy:Fs.Rio_policy)
  in
  sub 3 (fun () ->
      for i = 0 to 7 do
        Fs.write_file fs
          (Printf.sprintf "/f%d" i)
          (Rio_util.Pattern.fill ~seed:(seed + i) ~len:6000)
      done);
  (engine, costs, kcfg, kernel, fs)

let reboot_probe ~seed =
  let module Kernel = Rio_kernel.Kernel in
  let module Fs = Rio_fs.Fs in
  let engine, costs, kcfg, kernel, _fs = build_world ~seed () in
  time (fun () ->
      ignore
        (Rio_core.Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
           ~layout:(Kernel.layout kernel) ~engine
           ~reboot:(fun () ->
             let kernel2 =
               Kernel.boot_warm ~engine ~costs kcfg ~mem:(Kernel.mem kernel)
                 ~disk:(Kernel.disk kernel)
             in
             ignore
               (Rio_core.Rio_cache.create ~mem:(Kernel.mem kernel2)
                  ~layout:(Kernel.layout kernel2) ~mmu:(Kernel.mmu kernel2) ~engine ~costs
                  ~hooks:(Kernel.hooks kernel2) ~pool_alloc:(Kernel.pool_alloc kernel2)
                  ~protection:true ~dev:1 ());
             Kernel.mount kernel2 ~policy:Fs.Rio_policy)
          : Rio_core.Warm_reboot.report))

(* Snapshot-restore cost: freeze a populated world once, then repeatedly
   dirty it the way an attempt would (file writes plus a directory op)
   and rewind. Reports ms/restore and dirty pages blitted back per
   restore — what the template path pays instead of a full rebuild. *)
let restore_probe ~seed ~iters =
  let module World = Rio_world.World in
  let module Fs = Rio_fs.Fs in
  let w = World.create ~seed () in
  let fs = World.fs w in
  for i = 0 to 7 do
    Fs.write_file fs
      (Printf.sprintf "/f%d" i)
      (Rio_util.Pattern.fill ~seed:(seed + i) ~len:6000)
  done;
  World.freeze w;
  let (), wall =
    time (fun () ->
        for i = 1 to iters do
          Fs.write_file fs "/scratch"
            (Rio_util.Pattern.fill ~seed:(seed lxor i) ~len:24_000);
          Fs.mkdir fs "/dir";
          Fs.unlink fs "/scratch";
          ignore (World.restore w : int)
        done)
  in
  let pages = World.pages_restored w in
  World.dispose w;
  (wall, pages)

(* One campaign workload step, split into its three ingredients — where a
   table1 trial actually spends its time. *)
let step_probe ~seed ~steps =
  let module Kernel = Rio_kernel.Kernel in
  let module Memtest = Rio_workload.Memtest in
  let module Andrew = Rio_workload.Andrew in
  let module Script = Rio_workload.Script in
  let _engine, _costs, _kcfg, kernel, fs = build_world ~seed () in
  let mt =
    Memtest.create
      { Memtest.default_config with Memtest.seed = seed lxor 0x77; max_files = 24 }
  in
  let andrews =
    List.init 2 (fun i ->
        Andrew.runner
          (Andrew.create ~scale:0.03 ~seed:(200 + i) ~root:(Printf.sprintf "/bg%d" i) ()))
  in
  let (), memtest_s =
    time (fun () ->
        for _ = 1 to steps do
          Memtest.step mt ~fs ()
        done)
  in
  let (), andrew_s =
    time (fun () ->
        for _ = 1 to steps do
          List.iter (fun r -> ignore (Script.step r fs)) andrews
        done)
  in
  let (), activity_s =
    time (fun () ->
        for _ = 1 to 2 * steps do
          Kernel.run_activity kernel
        done)
  in
  (memtest_s, andrew_s, activity_s)

let fuzz_probe ~seed ~trials =
  let module Fuzzer = Rio_fuzz.Fuzzer in
  let spec =
    match
      List.find_opt (fun (s : Explorer.spec) -> s.Explorer.label = "rio-prot")
        Explorer.matrix_specs
    with
    | Some s -> s
    | None -> assert false
  in
  let cfg = { Run.default with Run.seed = seed; trials; domains = 1 } in
  time (fun () -> ignore (Fuzzer.run ~spec ~max_ops:Rio_fuzz.Fuzzer.default_max_ops cfg))

let run_microbench seed json reference _verbose =
  set_fastpath ~reference;
  let mode = if reference then "reference" else "fast" in
  Printf.printf "Microbenchmarks (%s data path, seed %d)\n\n%!" mode seed;
  (* CPU in both modes regardless of --reference: the ratio is the point. *)
  let cpu_fast_instrs, cpu_fast_s = cpu_probe ~fast:true in
  let cpu_ref_instrs, cpu_ref_s = cpu_probe ~fast:false in
  let world_iters = 3 in
  let detail = Array.make 4 0.0 in
  let (), world_s =
    time (fun () ->
        for i = 1 to world_iters do
          let _, _, _, kernel, _ = build_world ~detail ~seed:(seed + i) () in
          (* Recycle as a campaign trial would — steady-state boot cost. *)
          Rio_mem.Phys_mem.retire (Rio_kernel.Kernel.mem kernel)
        done)
  in
  let restore_iters = 50 in
  let restore_s, restore_pages = restore_probe ~seed ~iters:restore_iters in
  let reboot_iters = 3 in
  let reboot_s = ref 0.0 in
  for i = 1 to reboot_iters do
    let (), s = reboot_probe ~seed:(seed + i) in
    reboot_s := !reboot_s +. s
  done;
  let probe_steps = 100 in
  let memtest_s, andrew_s, activity_s = step_probe ~seed ~steps:probe_steps in
  let fuzz_trials = 12 in
  let (), fuzz_s = fuzz_probe ~seed ~trials:fuzz_trials in
  let module Campaign = Rio_fault.Campaign in
  let trial_iters = 8 in
  let (), trial_s =
    time (fun () ->
        for i = 1 to trial_iters do
          ignore
            (Campaign.run_one Campaign.default_config Campaign.Rio_with_protection
               Rio_fault.Fault_type.Kernel_heap ~seed:(seed + i)
              : Campaign.outcome)
        done)
  in
  let per denom v = v /. float_of_int denom in
  let ips instrs s = float_of_int instrs /. s in
  let cpu_fast_ips = ips cpu_fast_instrs cpu_fast_s in
  let cpu_ref_ips = ips cpu_ref_instrs cpu_ref_s in
  let ns_per_trial = per fuzz_trials fuzz_s *. 1e9 in
  Printf.printf "cpu (fast)        %10.0f instr/s  (%.1f ns/instr)\n" cpu_fast_ips
    (1e9 /. cpu_fast_ips);
  Printf.printf "cpu (reference)   %10.0f instr/s  (%.1f ns/instr)\n" cpu_ref_ips
    (1e9 /. cpu_ref_ips);
  Printf.printf "cpu speedup       %10.2fx\n" (cpu_fast_ips /. cpu_ref_ips);
  Printf.printf "world build       %10.1f ms\n" (per world_iters world_s *. 1e3);
  Printf.printf "  boot / format / mount / seed-files: %.1f / %.1f / %.1f / %.1f ms\n"
    (per world_iters detail.(0) *. 1e3)
    (per world_iters detail.(1) *. 1e3)
    (per world_iters detail.(2) *. 1e3)
    (per world_iters detail.(3) *. 1e3);
  Printf.printf "world restore     %10.3f ms  (%.1f dirty pages/restore)\n"
    (per restore_iters restore_s *. 1e3)
    (per restore_iters (float_of_int restore_pages));
  Printf.printf "warm reboot       %10.1f ms\n" (per reboot_iters !reboot_s *. 1e3);
  Printf.printf "memtest step      %10.3f ms\n" (per probe_steps memtest_s *. 1e3);
  Printf.printf "andrew step (x2)  %10.3f ms\n" (per probe_steps andrew_s *. 1e3);
  Printf.printf "kernel activity   %10.3f ms (per campaign step, x2)\n"
    (per probe_steps activity_s *. 1e3);
  Printf.printf "fuzz crash trial  %10.1f ms  (%.0f ns/trial, %.1f trials/s)\n"
    (ns_per_trial /. 1e6) ns_per_trial
    (float_of_int fuzz_trials /. fuzz_s);
  Printf.printf "campaign trial    %10.1f ms  (rio-prot, kernel-heap fault)\n"
    (per trial_iters trial_s *. 1e3);
  match json with
  | None -> ()
  | Some file ->
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "riobench: cannot open --json output: %s\n%!" msg;
        exit 1
    in
    let probe name extra wall_s =
      (name, Json.Obj (extra @ [ ("wall_s", Json.Float wall_s) ]))
    in
    let doc =
      Json.Obj
        [
          ("benchmark", Json.Str "microbench");
          ("mode", Json.Str mode);
          ("seed", Json.Int seed);
          probe "cpu_fast"
            [
              ("instructions", Json.Int cpu_fast_instrs);
              ("instr_per_s", Json.Float cpu_fast_ips);
              ("ns_per_instr", Json.Float (1e9 /. cpu_fast_ips));
            ]
            cpu_fast_s;
          probe "cpu_reference"
            [
              ("instructions", Json.Int cpu_ref_instrs);
              ("instr_per_s", Json.Float cpu_ref_ips);
              ("ns_per_instr", Json.Float (1e9 /. cpu_ref_ips));
            ]
            cpu_ref_s;
          ("cpu_speedup", Json.Float (cpu_fast_ips /. cpu_ref_ips));
          probe "world_build"
            [ ("iters", Json.Int world_iters);
              ("ms_per_build", Json.Float (per world_iters world_s *. 1e3)) ]
            world_s;
          probe "world_restore"
            [
              ("iters", Json.Int restore_iters);
              ("ms_per_restore", Json.Float (per restore_iters restore_s *. 1e3));
              ( "pages_per_restore",
                Json.Float (per restore_iters (float_of_int restore_pages)) );
              ( "restores_per_s",
                Json.Float (float_of_int restore_iters /. restore_s) );
            ]
            restore_s;
          probe "warm_reboot"
            [ ("iters", Json.Int reboot_iters);
              ("ms_per_reboot", Json.Float (per reboot_iters !reboot_s *. 1e3)) ]
            !reboot_s;
          probe "workload_step"
            [
              ("steps", Json.Int probe_steps);
              ("memtest_ms", Json.Float (per probe_steps memtest_s *. 1e3));
              ("andrew_ms", Json.Float (per probe_steps andrew_s *. 1e3));
              ("activity_ms", Json.Float (per probe_steps activity_s *. 1e3));
            ]
            (memtest_s +. andrew_s +. activity_s);
          probe "fuzz_trial"
            [
              ("trials", Json.Int fuzz_trials);
              ("ns_per_trial", Json.Float ns_per_trial);
              ("trials_per_s", Json.Float (float_of_int fuzz_trials /. fuzz_s));
            ]
            fuzz_s;
          probe "campaign_trial"
            [
              ("iters", Json.Int trial_iters);
              ("ms_per_trial", Json.Float (per trial_iters trial_s *. 1e3));
            ]
            trial_s;
        ]
    in
    output_string oc (Json.pretty doc);
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "wrote %s\n%!" file

let microbench_cmd =
  let doc =
    "Time the simulator's hot phases: the interpreted CPU loop (fast vs \
     reference decode), a world build, a template snapshot restore, a warm \
     reboot, and an end-to-end fuzz crash trial. Reports instr/s and \
     ns/trial; --json writes the numbers for the perf-smoke CI gate."
  in
  Cmd.v (Cmd.info "microbench" ~doc)
    Term.(const run_microbench $ seed_arg $ json_arg $ reference_arg $ verbose_arg)

(* ---------------- all ---------------- *)

let run_all crashes scale seed jobs verbose =
  run_table1 crashes seed jobs None None false None None false verbose;
  print_newline ();
  run_table2 scale seed jobs Rio_disk.Backend.Scsi verbose;
  print_newline ();
  run_ablation seed jobs verbose

let all_cmd =
  let doc = "Run every experiment (table1, table2, ablations)." in
  Cmd.v
    (Cmd.info "all" ~doc)
    Term.(const run_all $ crashes_arg $ scale_arg $ seed_arg $ jobs_arg $ verbose_arg)

let main_cmd =
  let doc = "Reproduce the experiments of 'The Rio File Cache' (ASPLOS 1996)." in
  let info = Cmd.info "riobench" ~version:"1.0" ~doc in
  Cmd.group info
    [
      table1_cmd; table2_cmd; mttf_cmd; ablation_cmd; messages_cmd; trace_cmd;
      workloads_cmd; vista_cmd; check_cmd; fuzz_cmd; cov_cmd; microbench_cmd; all_cmd;
    ]

let () =
  (* Campaign trials allocate short-lived buffers at a high rate (pattern
     slices, block images, decode pages); a larger minor heap keeps them
     out of the major heap and measurably cuts GC time on the long
     benchmark runs. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  exit (Cmd.eval main_cmd)
