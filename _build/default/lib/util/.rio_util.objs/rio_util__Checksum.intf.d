lib/util/checksum.mli:
