bin/riobench.mli:
