(** A page-table entry. *)

type t = {
  pfn : int;  (** Physical frame this entry maps to. *)
  mutable valid : bool;
  mutable writable : bool;
}

val make : pfn:int -> valid:bool -> writable:bool -> t

val pp : Format.formatter -> t -> unit
