(** The asynchronous write-behind pipeline between the block caches and
    the persistence backend: batching, adjacent-sector coalescing, group
    commit. The update daemon and [Fs.sync] stage dirty blocks here
    (via [Block_cache.flush_dirty ?via]) and then {!flush} the batch.

    Every ordering point fires {!Hooks.t.wb_event}:
    - ["wb-queue s<sector> x<count>"] — a dirty block staged into the queue;
    - ["wb-flush s<sector> x<count>"] — a coalesced segment issued to the
      backend as an asynchronous write;
    - ["wb-commit batch n<segments>"] — the batch hand-off completed.

    A crash between "wb-queue" and its "wb-flush" loses the staged block
    (it never reached the backend); a crash after "wb-flush" leaves the
    segment to the backend's own tear model. *)

type t

val create : disk:Rio_disk.Disk.t -> hooks:Hooks.t -> unordered:bool -> t
(** [unordered] plants the write-behind ordering bug: each flush of two
    or more segments holds its oldest segment back for the next batch, so
    a sync that triggered the flush returns with that segment not yet —
    possibly never — durable. For the fuzzer's ablation matrix only. *)

val unordered : t -> bool

val stage : t -> sector:int -> bytes -> unit
(** Queue one block's payload (whole sectors, ownership transferred). *)

val flush : t -> int
(** Coalesce and issue everything staged as asynchronous backend writes;
    returns the number of segments issued. Durability additionally needs
    [Disk.drain] (sync path) — flush alone only hands the batch off. *)

val pending : t -> int
(** Staged (plus ablation-held) segments not yet issued. *)

(** {1 World-template rewind} *)

type state

val save : t -> state

val restore : t -> state -> unit
