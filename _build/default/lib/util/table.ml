type align = Left | Right

type row = Cells of string list | Separator

type t = {
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~columns = { columns; rows = [] }

let add_row t cells =
  let n_cols = List.length t.columns in
  let n = List.length cells in
  if n > n_cols then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (n_cols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let aligns = Array.of_list (List.map snd t.columns) in
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length headers) in
  let note_row cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter (function Cells cells -> note_row cells | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let gap = w - String.length s in
    match aligns.(i) with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad i c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  hline ();
  emit headers;
  hline ();
  List.iter (function Cells cells -> emit cells | Separator -> hline ()) rows;
  hline ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

let cell_int n = if n = 0 then "" else string_of_int n

let cell_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x
