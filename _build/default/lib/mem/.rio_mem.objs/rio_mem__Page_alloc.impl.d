lib/mem/page_alloc.ml: Bytes Layout Phys_mem
