(* The early-90s SCSI mechanism: a head position, seek + rotation + transfer
   service times, and a garbage tear model — a sector caught mid-write by a
   crash ends up holding PRNG garbage (paper §2.1: disks share the
   being-written vulnerability, and a half-written sector fails its ECC). *)

module Costs = Rio_sim.Costs

let sector_bytes = Store.sector_bytes

type t = {
  mutable head : int; (* next sector position of the head *)
  prng : Rio_util.Prng.t; (* torn-sector garbage stream *)
}

let create ~seed = { head = 0; prng = Rio_util.Prng.create ~seed }

(* Service time for a request at [sector] given the head position: seek plus
   rotation unless the request continues where the head stopped. Returns the
   time and whether the arm seeked (for the front-end's statistics). *)
let service t ~costs ~sector ~count =
  let positioning, seeked =
    if sector = t.head then (0, false) (* sequential: the head is already there *)
    else if sector >= t.head - count && sector < t.head then
      (* Rewriting a sector just written: wait one full revolution. *)
      (2 * costs.Costs.disk_rotation_us, false)
    else (costs.Costs.disk_seek_us + costs.Costs.disk_rotation_us, true)
  in
  t.head <- sector + count;
  (positioning + Costs.transfer_time costs (count * sector_bytes), seeked)

(* The torn sector's contents: ECC-failed garbage, independent of both the
   old contents and the in-flight data. *)
let tear t ~old_sector:(_ : bytes) ~data:(_ : bytes) ~pos:(_ : int) =
  Rio_util.Prng.bytes t.prng sector_bytes

type state = {
  s_head : int;
  s_prng : int64;
}

let state t = { s_head = t.head; s_prng = Rio_util.Prng.state t.prng }

let set_state t s =
  t.head <- s.s_head;
  Rio_util.Prng.set_state t.prng s.s_prng
