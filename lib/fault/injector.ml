module Kernel = Rio_kernel.Kernel
module Isa = Rio_cpu.Isa
module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Asm = Rio_kasm.Asm
module Kprogs = Rio_kasm.Kprogs
module Prng = Rio_util.Prng
module Trace = Rio_obs.Trace

(* ---------------- pure instruction mutation rules ---------------- *)

let mutate_instruction prng instr (fault : Fault_type.t) =
  match fault with
  | Fault_type.Destination_reg ->
    (match Isa.writes instr with
    | None -> None
    | Some _ -> Some (Isa.with_rd instr (Prng.int prng 32)))
  | Fault_type.Source_reg ->
    (match Isa.reads instr with
    | [] -> None
    | _ :: _ -> Some (Isa.with_rs1 instr (Prng.int prng 32)))
  | Fault_type.Delete_branch -> if Isa.is_branch instr then Some Isa.Nop else None
  | Fault_type.Delete_instruction ->
    (match instr with Isa.Halt -> None | _ -> Some Isa.Nop)
  | Fault_type.Off_by_one ->
    (* Boundary-condition slips: comparison sense or constant off by one. *)
    (match instr with
    | Isa.Blt (a, b, o) -> Some (Isa.Bge (a, b, o))
    | Isa.Bge (a, b, o) -> Some (Isa.Blt (a, b, o))
    | Isa.Beq (a, b, o) -> Some (Isa.Bne (a, b, o))
    | Isa.Bne (a, b, o) -> Some (Isa.Beq (a, b, o))
    | Isa.Slti (d, a, i) -> Some (Isa.Slti (d, a, i + if Prng.bool prng then 1 else -1))
    | Isa.Addi (d, a, i) -> Some (Isa.Addi (d, a, i + if Prng.bool prng then 1 else -1))
    | Isa.Nop | Isa.Halt
    | Isa.Add (_, _, _) | Isa.Sub (_, _, _) | Isa.And (_, _, _) | Isa.Or (_, _, _)
    | Isa.Xor (_, _, _) | Isa.Sll (_, _, _) | Isa.Srl (_, _, _) | Isa.Mul (_, _, _)
    | Isa.Slt (_, _, _) | Isa.Andi (_, _, _) | Isa.Ori (_, _, _) | Isa.Xori (_, _, _)
    | Isa.Lui (_, _) | Isa.Kseg (_, _) | Isa.Ld (_, _, _) | Isa.St (_, _, _)
    | Isa.Ldw (_, _, _) | Isa.Stw (_, _, _) | Isa.Ldb (_, _, _) | Isa.Stb (_, _, _)
    | Isa.Jmp _ | Isa.Jal (_, _) | Isa.Jr _ | Isa.Assert_nz (_, _) -> None)
  | Fault_type.Kernel_text | Fault_type.Kernel_heap | Fault_type.Kernel_stack
  | Fault_type.Initialization | Fault_type.Pointer | Fault_type.Allocation
  | Fault_type.Copy_overrun | Fault_type.Synchronization -> None

(* ---------------- text-region helpers ---------------- *)

let text_geometry kernel =
  let text = Layout.region (Kernel.layout kernel) Layout.Kernel_text in
  let program = (Kernel.kprogs kernel).Kprogs.program in
  (text.Layout.base, Asm.instruction_count program)

let read_instr kernel idx =
  let base, _ = text_geometry kernel in
  Isa.decode (Phys_mem.read_u32 (Kernel.mem kernel) (base + (idx * Isa.word_bytes)))

let write_instr kernel idx instr =
  let base, _ = text_geometry kernel in
  Phys_mem.write_u32 (Kernel.mem kernel) (base + (idx * Isa.word_bytes)) (Isa.encode instr)

(* "k_bcopy+3"-style site label for a text address, from the symbol table. *)
let site_of_addr kernel addr =
  let program = (Kernel.kprogs kernel).Kprogs.program in
  let best =
    List.fold_left
      (fun acc (name, saddr) ->
        if saddr <= addr then
          match acc with
          | Some (_, prev) when prev >= saddr -> acc
          | Some _ | None -> Some (name, saddr)
        else acc)
      None program.Asm.symbols
  in
  match best with
  | Some (name, saddr) -> Printf.sprintf "%s+%d" name ((addr - saddr) / Isa.word_bytes)
  | None -> Printf.sprintf "text@%#x" addr

let site_of_index kernel idx =
  let base, _ = text_geometry kernel in
  site_of_addr kernel (base + (idx * Isa.word_bytes))

(* Routine boundaries from the symbol table, sorted by address. *)
let routine_ranges kernel =
  let base, count = text_geometry kernel in
  let program = (Kernel.kprogs kernel).Kprogs.program in
  let entries =
    List.sort compare (List.map (fun (_, addr) -> (addr - base) / Isa.word_bytes)
                         program.Asm.symbols)
  in
  let rec ranges = function
    | a :: (b :: _ as rest) -> (a, b) :: ranges rest
    | [ a ] -> [ (a, count) ]
    | [] -> []
  in
  ranges entries

(* Retry a probabilistic mutation until a target site accepts it. Returns
   the site label of the mutated instruction. *)
let rec try_sites kernel prng fault ~attempts =
  if attempts = 0 then "no eligible site"
  else begin
    let _, count = text_geometry kernel in
    let idx = Prng.int prng count in
    match read_instr kernel idx with
    | None -> try_sites kernel prng fault ~attempts:(attempts - 1)
    | Some instr ->
      (match mutate_instruction prng instr fault with
      | Some mutated ->
        write_instr kernel idx mutated;
        site_of_index kernel idx
      | None -> try_sites kernel prng fault ~attempts:(attempts - 1))
  end

let flip_random_bit kernel prng ~base ~bytes =
  let addr = base + Prng.int prng bytes in
  let bit = Prng.int prng 8 in
  Phys_mem.flip_bit (Kernel.mem kernel) addr ~bit;
  (addr, bit)

(* Initialization fault: delete an early register-writing instruction of a
   routine (§3.1, Kao93/Lee93). *)
let inject_initialization kernel prng =
  let ranges = routine_ranges kernel in
  let rec attempt n =
    if n = 0 then "no eligible site"
    else begin
      let lo, hi = List.nth ranges (Prng.int prng (List.length ranges)) in
      let prologue = min (lo + 6) hi in
      let candidates = ref [] in
      for idx = lo to prologue - 1 do
        match read_instr kernel idx with
        | Some instr when Isa.writes instr <> None && not (Isa.is_branch instr) ->
          candidates := idx :: !candidates
        | Some _ | None -> ()
      done;
      match !candidates with
      | [] -> attempt (n - 1)
      | c ->
        let idx = List.nth c (Prng.int prng (List.length c)) in
        write_instr kernel idx Isa.Nop;
        site_of_index kernel idx
    end
  in
  attempt 20

(* Pointer fault: find a load/store, then delete the most recent earlier
   instruction that modifies its base register (§3.1, Sullivan91b). The
   stack pointer is excluded, as in the paper. *)
let inject_pointer kernel prng =
  let _, count = text_geometry kernel in
  let is_mem_access = function
    | Isa.Ld (_, b, _) | Isa.St (_, b, _) | Isa.Ldw (_, b, _) | Isa.Stw (_, b, _)
    | Isa.Ldb (_, b, _) | Isa.Stb (_, b, _) ->
      if b = Rio_cpu.Machine.sp_reg then None else Some b
    | Isa.Nop | Isa.Halt
    | Isa.Add (_, _, _) | Isa.Sub (_, _, _) | Isa.And (_, _, _) | Isa.Or (_, _, _)
    | Isa.Xor (_, _, _) | Isa.Sll (_, _, _) | Isa.Srl (_, _, _) | Isa.Mul (_, _, _)
    | Isa.Slt (_, _, _) | Isa.Addi (_, _, _) | Isa.Andi (_, _, _) | Isa.Ori (_, _, _)
    | Isa.Xori (_, _, _) | Isa.Slti (_, _, _) | Isa.Lui (_, _) | Isa.Kseg (_, _)
    | Isa.Beq (_, _, _) | Isa.Bne (_, _, _) | Isa.Blt (_, _, _) | Isa.Bge (_, _, _)
    | Isa.Jmp _ | Isa.Jal (_, _) | Isa.Jr _ | Isa.Assert_nz (_, _) -> None
  in
  let rec attempt n =
    if n = 0 then "no eligible site"
    else begin
      let idx = Prng.int prng count in
      match read_instr kernel idx with
      | Some instr ->
        (match is_mem_access instr with
        | Some base_reg ->
          (* scan backwards for the defining instruction *)
          let rec back j =
            if j < 0 || idx - j > 16 then attempt (n - 1)
            else
              match read_instr kernel j with
              | Some def when Isa.writes def = Some base_reg ->
                write_instr kernel j Isa.Nop;
                site_of_index kernel j
              | Some _ | None -> back (j - 1)
          in
          back (idx - 1)
        | None -> attempt (n - 1))
      | None -> attempt (n - 1)
    end
  in
  attempt 40

let behavioral_period = 120
(* The paper triggers behavioral faults every 1000-4000 calls, i.e. roughly
   every 15 seconds, and crashes arrive within ~15 seconds of injection —
   so a typical run sees only a few triggers. The period is scaled so our
   runs see a comparably small number of triggers inside the watchdog
   window. *)

let bit_site name (addr, bit) = Printf.sprintf "%s: bit %d of byte %#x" name bit addr

let inject kernel ~prng (fault : Fault_type.t) =
  let layout = Kernel.layout kernel in
  let site =
    match fault with
    | Fault_type.Kernel_text ->
      let base, count = text_geometry kernel in
      let addr, bit = flip_random_bit kernel prng ~base ~bytes:(count * Isa.word_bytes) in
      Printf.sprintf "bit %d of instruction word at %s" bit (site_of_addr kernel addr)
    | Fault_type.Kernel_heap ->
      let region = Layout.region layout Layout.Kernel_heap in
      let heap = Kernel.heap kernel in
      (* Bias toward the live structures: the header words and the node and
         chase arenas (most of a real heap holds live allocations; most of
         this region is unused model slack). *)
      if Prng.chance prng 0.35 then
        bit_site "heap header" (flip_random_bit kernel prng ~base:region.Layout.base ~bytes:1024)
      else if Prng.chance prng 0.8 then begin
        let arena = Rio_kernel.Kheap.node_addr heap 0 in
        let span =
          (Rio_kernel.Kheap.node_count + Rio_kernel.Kheap.chase_count)
          * Rio_kernel.Kheap.node_size
        in
        bit_site "heap node arena" (flip_random_bit kernel prng ~base:arena ~bytes:span)
      end
      else
        bit_site "heap"
          (flip_random_bit kernel prng ~base:region.Layout.base ~bytes:region.Layout.bytes)
    | Fault_type.Kernel_stack ->
      let region = Layout.region layout Layout.Kernel_stack in
      (* The active frames sit at the top of the stack. *)
      if Prng.chance prng 0.8 then
        bit_site "stack (active frames)"
          (flip_random_bit kernel prng
             ~base:(region.Layout.base + region.Layout.bytes - 256)
             ~bytes:256)
      else
        bit_site "stack"
          (flip_random_bit kernel prng ~base:region.Layout.base ~bytes:region.Layout.bytes)
    | Fault_type.Destination_reg | Fault_type.Source_reg | Fault_type.Delete_branch
    | Fault_type.Delete_instruction | Fault_type.Off_by_one ->
      try_sites kernel prng fault ~attempts:60
    | Fault_type.Initialization -> inject_initialization kernel prng
    | Fault_type.Pointer -> inject_pointer kernel prng
    | Fault_type.Allocation ->
      Kernel.arm_allocation_fault kernel ~period:behavioral_period;
      Printf.sprintf "armed premature free every ~%d allocations" behavioral_period
    | Fault_type.Copy_overrun ->
      Kernel.arm_copy_overrun kernel ~period:behavioral_period;
      Printf.sprintf "armed bcopy length overrun every ~%d copies" behavioral_period
    | Fault_type.Synchronization ->
      Kernel.arm_sync_fault kernel ~period:behavioral_period;
      Printf.sprintf "armed skipped lock acquire/release every ~%d lock ops" behavioral_period
  in
  let obs = Kernel.obs kernel in
  if Trace.enabled obs then
    Trace.emit obs Trace.Fault
      (Trace.Fault_injected { fault = Fault_type.slug fault; site })

let inject_many kernel ~prng fault ~count =
  for _ = 1 to count do
    inject kernel ~prng fault
  done
