type kind =
  | Scsi
  | Nvmm

let all = [ Scsi; Nvmm ]

let to_string = function
  | Scsi -> "scsi"
  | Nvmm -> "nvmm"

let of_string = function
  | "scsi" -> Some Scsi
  | "nvmm" -> Some Nvmm
  | _ -> None

let pp ppf k = Format.pp_print_string ppf (to_string k)
