(** The conclusions' promised experiment: fault injection against a
    database system.

    "We plan to redo this study on a different operating system and to
    perform a similar fault-injection experiment on a database system. We
    believe these will show that our conclusions about memory's resistance
    to software crashes apply to other large software systems."

    Each run banks a fixed sum in a Vista store, runs transfer transactions
    interleaved with kernel activity, injects 20 faults of a chosen type,
    runs to the crash, warm-reboots, runs Vista recovery, and audits the
    ACID ledger: the money total must equal the initial funding (committed
    transfers move money around; an interrupted transfer must vanish
    atomically). A violated total is the database-level corruption
    measurement.

    The experiment also exposes the vulnerability the paper concedes in
    §2.1: a copy overrun that fires {e during} the database's own tiny
    record write corrupts the rest of the ledger page inside the open
    write window, where protection cannot help (disks share this window).
    Wild-store fault types, by contrast, are stopped cold by protection. *)

type outcome = {
  discarded : bool;
  crashed_during_txn : bool;
  transfers_committed : int;
  undo_records_recovered : int;
  total_expected : int;
  total_found : int;
  atomic : bool;  (** Money conserved. *)
}

type summary = {
  crashes : int;
  attempts : int;
  violations : int;  (** Runs where the ledger total was wrong. *)
  recovered_transactions : int;
      (** Runs where recovery had to roll back an in-flight transfer. *)
}

val run_one :
  Rio_fault.Fault_type.t -> protection:bool -> seed:int -> outcome

val run : ?fault:Rio_fault.Fault_type.t -> protection:bool -> Run.config -> summary
(** Crash tests until [config.trials] of them crash, seeding from
    [config.seed] (default fault: copy overrun, the file cache's worst
    enemy). The run is a sequential stopping rule, so [domains] is
    unused; parallelize across (fault, protection) combinations
    instead. *)

val summary_table : (string * summary) list -> Rio_util.Table.t
(** Render labelled summaries (e.g. per fault type and protection mode). *)
