lib/fault/fault_type.ml: List
