(** Crash forensics: distill a trial's flight-recorder contents into the
    propagation chain the paper could not see (footnote 2) — which fault
    went in, which wild store hit the file cache first, what the checksums
    caught, and when the system died. *)

type t = {
  injections : (int * string * string) list;
      (** (sim µs, fault type, site) — every fault instance applied. *)
  first_wild_store : (int * int * string) option;
      (** (sim µs, paddr, region) of the first post-injection store into a
          file-cache page the kernel did not own. *)
  wild_stores : int;
  first_protection_trap : (int * int) option;  (** (sim µs, paddr). *)
  protection_traps : int;
  checksum_mismatches : int;
  crash : (int * string * string) option;  (** (sim µs, message, during). *)
  crash_flush : (int * int * int) option;
      (** (sim µs, data buffers, meta buffers) the panic path flushed to
          disk while crashing — attributes corruption that propagated
          through the crash rather than preceding it. *)
  phases : (string * int * int) list;  (** Warm-reboot spans (name, start, end). *)
  swap_dump : (int * int * int) option;
      (** (sim µs, dumped bytes, truncated bytes) of the warm reboot's
          memory dump — [truncated > 0] explains a partial dump. *)
  snapshot : Trace.snapshot;
}

val summarize : Trace.t -> t
(** One pass over the retained events. If the ring dropped early events
    (tight capacity, long trial), "first" means first {e retained}. *)

val narrative : t -> string list
(** Human-readable chain, one line per step:
    injection → wild store → trap/crash → recovery phases → verdict. *)
