module Fs = Rio_fs.Fs
module Prng = Rio_util.Prng
module Pattern = Rio_util.Pattern

type config = {
  seed : int;
  dir : string;
  max_files : int;
  max_file_bytes : int;
  fsync_every_write : bool;
}

let default_config =
  { seed = 11; dir = "/memtest"; max_files = 48; max_file_bytes = 64 * 1024;
    fsync_every_write = false }

type t = {
  config : config;
  prng : Prng.t;
  files : (string, bytes ref) Hashtbl.t;
  mutable dirs : string list; (* creation order; config.dir first *)
  mutable counter : int;
  mutable steps : int;
  mutable live_mismatches : int;
  (* Memo of [file_list] (the sorted paths), dropped whenever the file
     set changes — the sort is per-step hot otherwise. *)
  mutable sorted : string list option;
}

let create config =
  {
    config;
    prng = Prng.create ~seed:config.seed;
    files = Hashtbl.create 64;
    dirs = [ config.dir ];
    counter = 0;
    steps = 0;
    live_mismatches = 0;
    sorted = None;
  }

let steps_done t = t.steps
let live_mismatches t = t.live_mismatches
let file_count t = Hashtbl.length t.files
let total_model_bytes t = Hashtbl.fold (fun _ b acc -> acc + Bytes.length !b) t.files 0

let file_list t =
  match t.sorted with
  | Some l -> l
  | None ->
    let l = List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.files []) in
    t.sorted <- Some l;
    l

let pick_file t =
  match file_list t with
  | [] -> None
  | files -> Some (List.nth files (Prng.int t.prng (List.length files)))

let pick_dir t = List.nth t.dirs (Prng.int t.prng (List.length t.dirs))

let fresh_name t prefix parent =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s/%s%d" parent prefix t.counter

(* The operation plan for one step: drawn from the PRNG and the model only,
   never from file-system results, so replay is exact. *)
type plan =
  | P_create of string * int * int (* path, pattern seed, len *)
  | P_overwrite of string * int * int * int (* path, offset, seed, len *)
  | P_append of string * int * int
  | P_delete of string
  | P_mkdir of string
  | P_rmdir of string
  | P_verify of string * int * int (* path, offset, len *)
  | P_rename of string * string
  | P_noop

let plan_step t =
  let roll = Prng.int t.prng 100 in
  let want_create = Hashtbl.length t.files < 3 in
  if want_create || roll < 18 then begin
    if Hashtbl.length t.files >= t.config.max_files then
      (* At the cap, recycle: delete instead. *)
      match pick_file t with Some p -> P_delete p | None -> P_noop
    else begin
      let parent = pick_dir t in
      let path = fresh_name t "f" parent in
      let len = Prng.int_in t.prng 1 t.config.max_file_bytes in
      P_create (path, Prng.int t.prng 1_000_000, len)
    end
  end
  else if roll < 36 then begin
    match pick_file t with
    | None -> P_noop
    | Some path ->
      let cur = Bytes.length !(Hashtbl.find t.files path) in
      if cur = 0 then P_noop
      else begin
        let offset = Prng.int t.prng cur in
        let len = 1 + Prng.int t.prng (max 1 (cur - offset)) in
        P_overwrite (path, offset, Prng.int t.prng 1_000_000, len)
      end
  end
  else if roll < 46 then begin
    match pick_file t with
    | None -> P_noop
    | Some path ->
      let cur = Bytes.length !(Hashtbl.find t.files path) in
      let len = Prng.int_in t.prng 1 (max 1 (t.config.max_file_bytes - cur)) in
      P_append (path, Prng.int t.prng 1_000_000, len)
  end
  else if roll < 56 then (match pick_file t with Some p -> P_delete p | None -> P_noop)
  else if roll < 62 then
    if List.length t.dirs < 8 then P_mkdir (fresh_name t "d" (List.hd t.dirs)) else P_noop
  else if roll < 66 then begin
    (* Remove an empty leaf directory (never the root test dir). *)
    let empties =
      List.filter
        (fun d ->
          d <> t.config.dir
          && not
               (Hashtbl.fold
                  (fun p _ acc -> acc || String.length p > String.length d
                                  && String.sub p 0 (String.length d + 1) = d ^ "/")
                  t.files false))
        t.dirs
    in
    match empties with
    | [] -> P_noop
    | ds -> P_rmdir (List.nth ds (Prng.int t.prng (List.length ds)))
  end
  else if roll < 88 then begin
    match pick_file t with
    | None -> P_noop
    | Some path ->
      let cur = Bytes.length !(Hashtbl.find t.files path) in
      if cur = 0 then P_noop
      else begin
        let offset = Prng.int t.prng cur in
        let len = 1 + Prng.int t.prng (max 1 (cur - offset)) in
        P_verify (path, offset, len)
      end
  end
  else begin
    match pick_file t with
    | None -> P_noop
    | Some src ->
      let dst = fresh_name t "r" (pick_dir t) in
      P_rename (src, dst)
  end

let plan_touches = function
  | P_create (p, _, _) | P_delete p | P_verify (p, _, _) -> [ p ]
  | P_overwrite (p, _, _, _) | P_append (p, _, _) -> [ p ]
  | P_mkdir d | P_rmdir d -> [ d ]
  | P_rename (a, b) -> [ a; b ]
  | P_noop -> []

(* Apply a plan to the model. *)
let apply_model t = function
  | P_create (path, seed, len) ->
    t.sorted <- None;
    Hashtbl.replace t.files path (ref (Pattern.fill ~seed ~len))
  | P_overwrite (path, offset, seed, len) ->
    let content = Hashtbl.find t.files path in
    Bytes.blit (Pattern.fill ~seed ~len) 0 !content offset len
  | P_append (path, seed, len) ->
    let content = Hashtbl.find t.files path in
    let grown = Bytes.create (Bytes.length !content + len) in
    Bytes.blit !content 0 grown 0 (Bytes.length !content);
    Bytes.blit (Pattern.fill ~seed ~len) 0 grown (Bytes.length !content) len;
    content := grown
  | P_delete path ->
    t.sorted <- None;
    Hashtbl.remove t.files path
  | P_mkdir d -> t.dirs <- t.dirs @ [ d ]
  | P_rmdir d -> t.dirs <- List.filter (fun x -> x <> d) t.dirs
  | P_verify (_, _, _) | P_noop -> ()
  | P_rename (src, dst) ->
    t.sorted <- None;
    let content = Hashtbl.find t.files src in
    Hashtbl.remove t.files src;
    Hashtbl.replace t.files dst content

(* Apply a plan to the live file system. *)
let apply_fs t fs plan =
  let maybe_fsync fd = if t.config.fsync_every_write then Fs.fsync fs fd in
  match plan with
  | P_create (path, seed, len) ->
    let fd = Fs.create fs path in
    Fs.write fs fd (Pattern.fill ~seed ~len);
    maybe_fsync fd;
    Fs.close fs fd
  | P_overwrite (path, offset, seed, len) ->
    let fd = Fs.open_file fs path in
    Fs.pwrite fs fd ~offset (Pattern.fill ~seed ~len);
    maybe_fsync fd;
    Fs.close fs fd
  | P_append (path, seed, len) ->
    let fd = Fs.open_file fs path in
    let size = Fs.fd_size fs fd in
    Fs.pwrite fs fd ~offset:size (Pattern.fill ~seed ~len);
    maybe_fsync fd;
    Fs.close fs fd
  | P_delete path -> Fs.unlink fs path
  | P_mkdir d -> Fs.mkdir fs d
  | P_rmdir d -> Fs.rmdir fs d
  | P_verify (path, offset, len) ->
    let fd = Fs.open_file fs path in
    let got = Fs.pread fs fd ~offset ~len in
    Fs.close fs fd;
    let expect = Bytes.sub !(Hashtbl.find t.files path) offset len in
    if not (Bytes.equal got expect) then t.live_mismatches <- t.live_mismatches + 1
  | P_rename (src, dst) -> Fs.rename fs src dst
  | P_noop -> ()

let step t ?fs () =
  let plan = plan_step t in
  (* Apply to the file system FIRST: a crash mid-operation must leave the
     model at the pre-step state (the status file is written after the
     step completes). *)
  (match fs with
  | Some fs ->
    if t.steps = 0 && not (Fs.exists fs t.config.dir) then Fs.mkdir fs t.config.dir;
    apply_fs t fs plan
  | None -> ());
  apply_model t plan;
  t.steps <- t.steps + 1

let replay config ~steps =
  let t = create config in
  for _ = 1 to steps do
    step t ()
  done;
  t

let touched_by_next_step t =
  (* Plan on a deep copy so [t]'s PRNG and counters do not advance. *)
  let copy =
    {
      t with
      prng = Prng.copy t.prng;
      files = Hashtbl.copy t.files;
    }
  in
  plan_touches (plan_step copy)

let loss_against_fs t fs =
  let files = ref 0 and bytes = ref 0 in
  List.iter
    (fun path ->
      let expect = !(Hashtbl.find t.files path) in
      match Fs.read_file fs path with
      | got ->
        let lost = ref 0 in
        let n = max (Bytes.length expect) (Bytes.length got) in
        for i = 0 to n - 1 do
          let a = if i < Bytes.length expect then Bytes.get expect i else '\255' in
          let b = if i < Bytes.length got then Bytes.get got i else '\255' in
          if a <> b then incr lost
        done;
        if !lost > 0 then begin
          incr files;
          bytes := !bytes + !lost
        end
      | exception Rio_fs.Fs_types.Fs_error _ ->
        incr files;
        bytes := !bytes + Bytes.length expect)
    (file_list t);
  (!files, !bytes)

(* Rolling back [later] to [earlier] (a checkpoint) loses everything written
   or created in between; count it. *)
let loss_between ~earlier ~later =
  let files = ref 0 and bytes = ref 0 in
  Hashtbl.iter
    (fun path content ->
      match Hashtbl.find_opt earlier.files path with
      | None ->
        incr files;
        bytes := !bytes + Bytes.length !content
      | Some old ->
        if not (Bytes.equal !old !content) then begin
          incr files;
          let n = max (Bytes.length !old) (Bytes.length !content) in
          let diff = ref 0 in
          for i = 0 to n - 1 do
            let a = if i < Bytes.length !old then Bytes.get !old i else '\255' in
            let b = if i < Bytes.length !content then Bytes.get !content i else '\255' in
            if a <> b then incr diff
          done;
          bytes := !bytes + !diff
        end)
    later.files;
  (!files, !bytes)

type discrepancy =
  | Missing_file of string
  | Extra_file of string
  | Content_mismatch of string
  | Missing_dir of string
  | Extra_dir of string
  | Unreadable of string * string

let discrepancy_to_string = function
  | Missing_file p -> Printf.sprintf "missing file %s" p
  | Extra_file p -> Printf.sprintf "unexpected file %s" p
  | Content_mismatch p -> Printf.sprintf "content mismatch in %s" p
  | Missing_dir p -> Printf.sprintf "missing directory %s" p
  | Extra_dir p -> Printf.sprintf "unexpected directory %s" p
  | Unreadable (p, e) -> Printf.sprintf "unreadable %s (%s)" p e

(* Recursively list the file system under [dir]. *)
let rec walk_fs fs dir acc_files acc_dirs =
  match Fs.readdir fs dir with
  | exception Rio_fs.Fs_types.Fs_error _ -> (acc_files, acc_dirs)
  | names ->
    List.fold_left
      (fun (fa, da) name ->
        let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
        match Fs.stat fs path with
        | exception Rio_fs.Fs_types.Fs_error _ -> (fa, da)
        | st ->
          (match st.Fs.st_ftype with
          | Rio_fs.Fs_types.Regular | Rio_fs.Fs_types.Symlink -> (path :: fa, da)
          | Rio_fs.Fs_types.Directory -> walk_fs fs path fa (path :: da)))
      (acc_files, acc_dirs) names

let compare_with_fs t fs ~exempt =
  let exempted p = List.mem p exempt in
  let out = ref [] in
  let note d = out := d :: !out in
  (* Model -> fs: every model file must exist with identical contents. *)
  List.iter
    (fun path ->
      if not (exempted path) then begin
        let expect = !(Hashtbl.find t.files path) in
        match Fs.read_file fs path with
        | got -> if not (Bytes.equal got expect) then note (Content_mismatch path)
        | exception Rio_fs.Fs_types.Fs_error msg ->
          if Fs.exists fs path then note (Unreadable (path, msg)) else note (Missing_file path)
      end)
    (file_list t);
  List.iter
    (fun d ->
      if not (exempted d) then
        match Fs.stat fs d with
        | st -> if st.Fs.st_ftype <> Rio_fs.Fs_types.Directory then note (Missing_dir d)
        | exception Rio_fs.Fs_types.Fs_error _ -> note (Missing_dir d))
    t.dirs;
  (* fs -> model: nothing unexpected inside the test directory. *)
  if Fs.exists fs t.config.dir then begin
    let fs_files, fs_dirs = walk_fs fs t.config.dir [] [ t.config.dir ] in
    List.iter
      (fun p -> if (not (Hashtbl.mem t.files p)) && not (exempted p) then note (Extra_file p))
      fs_files;
    List.iter
      (fun d -> if (not (List.mem d t.dirs)) && not (exempted d) then note (Extra_dir d))
      fs_dirs
  end;
  List.rev !out
