let mix seed i =
  let x = (seed * 0x9E3779B1) lxor (i * 0x85EBCA77) in
  let x = x lxor (x lsr 13) in
  let x = x * 0xC2B2AE35 in
  (x lsr 7) land 0xFF

let byte_at ~seed i = Char.unsafe_chr (mix seed i)

(* Pattern slices are pure functions of (seed, offset, len), and the
   campaign materializes each one several times — once for the live file
   system, once for the model, and again when the model is replayed after
   the crash — so a per-domain memo pays for itself. Cached buffers stay
   pristine; every caller gets a private copy it is free to mutate. *)
let memo_cap_bytes = 8 * 1024 * 1024

let memo_key =
  Domain.DLS.new_key (fun () ->
      ((Hashtbl.create 64 : (int * int * int, bytes) Hashtbl.t), ref 0))

let compute ~seed ~offset ~len =
  let b = Bytes.create len in
  (* Same arithmetic as [mix] with the per-byte multiply by 0x85EBCA77
     strength-reduced to a running sum (equal modulo OCaml's native int
     width, so the bytes are identical). The body is unrolled four ways —
     the four mixes are independent, so they overlap in the pipeline. *)
  let s = seed * 0x9E3779B1 in
  let k = 0x85EBCA77 in
  let mix1 ik =
    let x = s lxor ik in
    let x = x lxor (x lsr 13) in
    let x = x * 0xC2B2AE35 in
    (x lsr 7) land 0xFF
  in
  let ik = ref (offset * k) in
  let i = ref 0 in
  let n4 = len land lnot 3 in
  while !i < n4 do
    let ik0 = !ik in
    Bytes.unsafe_set b !i (Char.unsafe_chr (mix1 ik0));
    Bytes.unsafe_set b (!i + 1) (Char.unsafe_chr (mix1 (ik0 + k)));
    Bytes.unsafe_set b (!i + 2) (Char.unsafe_chr (mix1 (ik0 + (2 * k))));
    Bytes.unsafe_set b (!i + 3) (Char.unsafe_chr (mix1 (ik0 + (3 * k))));
    ik := ik0 + (4 * k);
    i := !i + 4
  done;
  while !i < len do
    Bytes.unsafe_set b !i (Char.unsafe_chr (mix1 !ik));
    ik := !ik + k;
    incr i
  done;
  b

let fill_at ~seed ~offset ~len =
  let tbl, cached = Domain.DLS.get memo_key in
  let key = (seed, offset, len) in
  match Hashtbl.find_opt tbl key with
  | Some b -> Bytes.copy b
  | None ->
    let b = compute ~seed ~offset ~len in
    if !cached + len > memo_cap_bytes then begin
      Hashtbl.reset tbl;
      cached := 0
    end;
    Hashtbl.add tbl key (Bytes.copy b);
    cached := !cached + len;
    b

let fill ~seed ~len = fill_at ~seed ~offset:0 ~len
