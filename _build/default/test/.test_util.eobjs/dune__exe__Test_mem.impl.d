test/test_mem.ml: Alcotest Bytes Fun List Option Printf QCheck QCheck_alcotest Rio_mem
