module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout

type kind = Meta_buffer | Data_buffer

type entry = {
  paddr : int;
  home_paddr : int;
  dev : int;
  ino : int;
  offset : int;
  size : int;
  blkno : int;
  kind : kind;
  changing : bool;
  checksum : int;
}

let entry_bytes = 40

(* Slot layout: paddr u64 @0, home u64 @8, ino u32 @16, offset u32 @20,
   size u32 @24, blkno u32 @28, dev u16 @32, kind u8 @34 (0 free / 1 meta /
   2 data), changing u8 @35, checksum u32 @36. *)

type t = {
  mem : Phys_mem.t;
  base : int;
  capacity : int;
  index : (int, int) Hashtbl.t; (* home_paddr -> slot *)
  mutable free : int list;
  mutable live : int;
  scratch : bytes; (* one slot, reused by read_slot's hot path *)
}

let create ~mem ~region =
  let capacity = region.Layout.bytes / entry_bytes in
  Phys_mem.fill mem region.Layout.base ~len:(capacity * entry_bytes) '\000';
  {
    mem;
    base = region.Layout.base;
    capacity;
    index = Hashtbl.create 256;
    free = List.init capacity (fun i -> i);
    live = 0;
    scratch = Bytes.create entry_bytes;
  }

let capacity t = t.capacity
let live_entries t = t.live

let slot_addr t slot = t.base + (slot * entry_bytes)

let kind_tag = function Meta_buffer -> 1 | Data_buffer -> 2

let write_slot t slot e =
  (* Serialize into the scratch buffer and land the slot with one blit:
     same final bytes as field-by-field stores, one write-path pass. *)
  let img = t.scratch in
  Bytes.set_int64_le img 0 (Int64.of_int e.paddr);
  Bytes.set_int64_le img 8 (Int64.of_int e.home_paddr);
  Bytes.set_int32_le img 16 (Int32.of_int e.ino);
  Bytes.set_int32_le img 20 (Int32.of_int e.offset);
  Bytes.set_int32_le img 24 (Int32.of_int e.size);
  Bytes.set_int32_le img 28 (Int32.of_int e.blkno);
  Bytes.set img 32 (Char.chr (e.dev land 0xFF));
  Bytes.set img 33 (Char.chr ((e.dev lsr 8) land 0xFF));
  Bytes.set img 34 (Char.chr (kind_tag e.kind));
  Bytes.set img 35 (if e.changing then '\001' else '\000');
  Bytes.set_int32_le img 36 (Int32.of_int e.checksum);
  Phys_mem.blit_from t.mem (slot_addr t slot) img ~pos:0 ~len:entry_bytes

let clear_slot t slot =
  Phys_mem.fill t.mem (slot_addr t slot) ~len:entry_bytes '\000'

let read_field_u64 img pos = Int64.to_int (Bytes.get_int64_le img pos)
let read_field_u32 img pos = Int32.to_int (Bytes.get_int32_le img pos) land 0xFFFF_FFFF

let read_slot_image img base slot =
  let pos = base + (slot * entry_bytes) in
  let kind_byte = Char.code (Bytes.get img (pos + 34)) in
  let all_zero =
    let rec check i = i >= entry_bytes || (Bytes.get img (pos + i) = '\000' && check (i + 1)) in
    check 0
  in
  if all_zero then `Free
  else if kind_byte <> 1 && kind_byte <> 2 then `Corrupt
  else
    `Entry
      {
        paddr = read_field_u64 img pos;
        home_paddr = read_field_u64 img (pos + 8);
        ino = read_field_u32 img (pos + 16);
        offset = read_field_u32 img (pos + 20);
        size = read_field_u32 img (pos + 24);
        blkno = read_field_u32 img (pos + 28);
        dev = Char.code (Bytes.get img (pos + 32)) lor (Char.code (Bytes.get img (pos + 33)) lsl 8);
        kind = (if kind_byte = 1 then Meta_buffer else Data_buffer);
        changing = Char.code (Bytes.get img (pos + 35)) <> 0;
        checksum = read_field_u32 img (pos + 36);
      }

(* Read a live slot back from simulated memory (normal operation; trusted
   because normal operation only reads slots it wrote). *)
let read_slot t slot =
  let a = slot_addr t slot in
  Phys_mem.blit_into t.mem a t.scratch ~pos:0 ~len:entry_bytes;
  match read_slot_image t.scratch 0 0 with
  | `Entry e -> Some e
  | `Free | `Corrupt -> None

let find t ~home_paddr =
  match Hashtbl.find_opt t.index home_paddr with
  | None -> None
  | Some slot -> read_slot t slot

let register t ~home_paddr ~dev ~ino ~offset ~size ~blkno ~kind ~checksum =
  (* The slot stores dev in 16 bits; silently truncating a wider value
     would register the buffer under the wrong device and make the
     warm-reboot restore it to the wrong volume. *)
  if dev < 0 || dev > 0xFFFF then
    Rio_fs.Fs_types.err "registry: dev %d out of 16-bit range" dev;
  let entry =
    { paddr = home_paddr; home_paddr; dev; ino; offset; size; blkno; kind;
      changing = false; checksum }
  in
  match Hashtbl.find_opt t.index home_paddr with
  | Some slot ->
    (* Keep the current paddr (a shadow redirect may be in flight). *)
    let paddr = match read_slot t slot with Some e -> e.paddr | None -> home_paddr in
    write_slot t slot { entry with paddr }
  | None ->
    (match t.free with
    | [] -> Rio_fs.Fs_types.err "registry full"
    | slot :: rest ->
      t.free <- rest;
      Hashtbl.replace t.index home_paddr slot;
      t.live <- t.live + 1;
      write_slot t slot entry)

let unregister t ~home_paddr =
  match Hashtbl.find_opt t.index home_paddr with
  | None -> ()
  | Some slot ->
    Hashtbl.remove t.index home_paddr;
    t.free <- slot :: t.free;
    t.live <- t.live - 1;
    clear_slot t slot

let update_slot t ~home_paddr f =
  match Hashtbl.find_opt t.index home_paddr with
  | None -> ()
  | Some slot ->
    (match read_slot t slot with
    | Some e -> write_slot t slot (f e)
    | None -> ())

let set_changing t ~home_paddr changing =
  update_slot t ~home_paddr (fun e -> { e with changing })

let set_checksum t ~home_paddr checksum =
  update_slot t ~home_paddr (fun e -> { e with checksum })

(* The close-write pair (new checksum + changing:=false) as one slot
   rewrite; final slot bytes identical to the two separate updates. *)
let set_closed t ~home_paddr checksum =
  update_slot t ~home_paddr (fun e -> { e with checksum; changing = false })

let redirect t ~home_paddr ~paddr = update_slot t ~home_paddr (fun e -> { e with paddr })

let iter t f =
  (* Only slots the index owns: free slots may hold stale bytes. *)
  let slots = Hashtbl.fold (fun _ slot acc -> slot :: acc) t.index [] in
  List.iter
    (fun slot ->
      match read_slot t slot with
      | Some e -> f e
      | None -> ())
    (List.sort compare slots)

(* ---- world-template rewind ---- *)

type checkpoint = { ck_index : (int * int) list; ck_free : int list; ck_live : int }

(* Slot bytes in simulated memory rewind with the memory snapshot; only the
   host-side index needs capturing. *)
let checkpoint t =
  { ck_index = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.index [];
    ck_free = t.free;
    ck_live = t.live }

let restore t ck =
  Hashtbl.reset t.index;
  List.iter (fun (k, v) -> Hashtbl.replace t.index k v) ck.ck_index;
  t.free <- ck.ck_free;
  t.live <- ck.ck_live

type parse_result = {
  entries : entry list;
  corrupt_slots : int;
}

let plausible ~mem_bytes e =
  let page_ok p = p >= 0 && p + Phys_mem.page_size <= mem_bytes && p mod Phys_mem.page_size = 0 in
  page_ok e.home_paddr && page_ok e.paddr
  && e.size >= 0
  && e.size <= Phys_mem.page_size
  && e.dev >= 0 && e.dev <= 0xFFFF
  && e.ino >= 0 && e.ino < 1 lsl 24
  && e.offset >= 0
  && e.offset < 1 lsl 30
  && e.blkno >= 0
  && e.blkno < 1 lsl 28

let parse_base ~buf ~base ~region ~mem_bytes =
  let capacity = region.Layout.bytes / entry_bytes in
  let entries = ref [] in
  let corrupt = ref 0 in
  for slot = 0 to capacity - 1 do
    match read_slot_image buf base slot with
    | `Free -> ()
    | `Corrupt -> incr corrupt
    | `Entry e -> if plausible ~mem_bytes e then entries := e :: !entries else incr corrupt
  done;
  { entries = List.rev !entries; corrupt_slots = !corrupt }

let parse_image ~image ~region ~mem_bytes =
  parse_base ~buf:image ~base:region.Layout.base ~region ~mem_bytes

let parse_slice ~slice ~region ~mem_bytes = parse_base ~buf:slice ~base:0 ~region ~mem_bytes
