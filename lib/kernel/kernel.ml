module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Page_alloc = Rio_mem.Page_alloc
module Mmu = Rio_vm.Mmu
module Machine = Rio_cpu.Machine
module Kprogs = Rio_kasm.Kprogs
module Asm = Rio_kasm.Asm
module Disk = Rio_disk.Disk
module Fs = Rio_fs.Fs
module Hooks = Rio_fs.Hooks
module Prng = Rio_util.Prng
module Trace = Rio_obs.Trace

type config = {
  layout_config : Layout.config;
  tlb_entries : int;
  disk_sectors : int;
  disk_backend : Rio_disk.Backend.kind;
  seed : int;
  instr_ns : int;
  activity_budget : int;
}

let default_config =
  {
    layout_config = Layout.default_config;
    tlb_entries = 64;
    disk_sectors = 64 * 1024;
    disk_backend = Rio_disk.Backend.Scsi;
    seed = 1;
    instr_ns = 6;
    activity_budget = 50_000;
  }

let config_with_seed seed = { default_config with seed }

type armed = { mutable period : int; mutable countdown : int }

type t = {
  config : config;
  engine : Engine.t;
  obs : Trace.t;
  c_activities : Trace.counter;
  c_wild_stores : Trace.counter;
  costs : Costs.t;
  mem : Phys_mem.t;
  layout : Layout.t;
  mmu : Mmu.t;
  machine : Machine.t;
  disk : Disk.t;
  kprogs : Kprogs.t;
  heap : Kheap.t;
  hooks : Hooks.t;
  pool_alloc : Page_alloc.t;
  meta_alloc : Page_alloc.t;
  prng : Prng.t;
  mutable fs : Fs.t option;
  mutable crash : Kcrash.info option;
  mutable bursts : int;
  (* kernel-owned page-pool buffers, interleaved with UBC pages *)
  mutable owned_pages : int list;
  (* nodes currently allocated from the interpreted free list *)
  mutable in_use : int list;
  (* the "request descriptor" whose corruption models indirect corruption *)
  desc_addr : int;
  (* the persistent interrupt frame at the top of the kernel stack *)
  frame_addr : int;
  (* armed behavioral faults *)
  mutable overrun : armed option;
  mutable alloc_fault : armed option;
  mutable sync_fault : armed option;
  mutable overrun_filecache_bytes : int;
  mutable dlist_next : int;
  mutable hash_next : int;
  (* Buffers the panic path pushed to disk before the crash finished —
     the channel through which memory corruption propagates (§3.2).
     Forensics uses these to attribute propagated corruption. *)
  mutable crash_flushed_data : int;
  mutable crash_flushed_meta : int;
}

let engine t = t.engine
let obs t = t.obs
let costs t = t.costs
let mem t = t.mem
let layout t = t.layout
let mmu t = t.mmu
let machine t = t.machine
let disk t = t.disk
let kprogs t = t.kprogs
let heap t = t.heap
let hooks t = t.hooks
let pool_alloc t = t.pool_alloc
let meta_alloc t = t.meta_alloc
let prng t = t.prng
let owned_pool_pages t = t.owned_pages
let overrun_filecache_bytes t = t.overrun_filecache_bytes
let fs t = t.fs
let crash_info t = t.crash
let activity_bursts t = t.bursts
let crash_flushed t = (t.crash_flushed_data, t.crash_flushed_meta)

let crash_now t cause ~during = Kcrash.crash cause ~during ~at_us:(Engine.now t.engine)

(* ---------------- behavioral fault helpers ---------------- *)

let arm period = Some { period; countdown = period }

(* Decrement an armed counter; true when the fault fires this call.
   [weight] is how many real kernel calls this call stands for — an
   interpreted activity burst compresses many kernel-internal operations,
   so it consumes more of the countdown than one file-write bcopy. *)
let triggered ?(weight = 1) t = function
  | None -> false
  | Some a ->
    a.countdown <- a.countdown - weight;
    if a.countdown <= 0 then begin
      (* Re-arm with jitter around the period, as the paper's every
         1000-4000 calls. *)
      a.countdown <- a.period + Prng.int t.prng (max 1 (3 * a.period));
      true
    end
    else false

let activity_weight = 10

(* Copy-overrun length distribution from §3.1: 50% one byte, 44% 2-1024
   bytes, 6% 2-4 KB. *)
let overrun_length t =
  let roll = Prng.int t.prng 100 in
  if roll < 50 then 1
  else if roll < 94 then Prng.int_in t.prng 2 1024
  else Prng.int_in t.prng 2048 4096

(* Write the overrun tail through the MMU so Rio's protection can trap it.
   The bytes written are whatever followed the source buffer, as a real
   overrun copies (approximated with the PRNG when the source is
   exhausted). *)
let do_overrun t ~paddr ~src ~srcpos ~len =
  let extra = overrun_length t in
  let during = "kernel bcopy overrun" in
  for i = 0 to extra - 1 do
    let dst = paddr + len + i in
    if not (Phys_mem.in_range t.mem dst ~len:1) then
      crash_now t (Kcrash.Trap (Machine.Illegal_address dst)) ~during;
    (match Mmu.translate t.mmu ~vaddr:(Mmu.kseg_addr dst) ~access:Mmu.Write with
    | Mmu.Ok pa ->
      let value =
        let p = srcpos + len + i in
        if p < Bytes.length src then Char.code (Bytes.get src p) else Prng.int t.prng 256
      in
      (match Layout.kind_of_addr t.layout pa with
      | Some ((Layout.Buffer_cache | Layout.Page_pool) as region) ->
        t.overrun_filecache_bytes <- t.overrun_filecache_bytes + 1;
        if Trace.enabled t.obs then begin
          Trace.incr t.c_wild_stores;
          Trace.emit t.obs Trace.Kernel
            (Trace.Wild_store
               {
                 paddr = pa;
                 width = 1;
                 region =
                   (match region with
                   | Layout.Buffer_cache -> "buffer_cache"
                   | _ -> "page_pool");
               })
        end
      | Some
          ( Layout.Kernel_text | Layout.Kernel_heap | Layout.Kernel_stack
          | Layout.Page_tables | Layout.Registry )
      | None -> ());
      Phys_mem.write_u8 t.mem pa value
    | Mmu.Fault (Mmu.Write_protected a) ->
      crash_now t (Kcrash.Trap (Machine.Protection_violation a)) ~during
    | Mmu.Fault (Mmu.Unmapped a) ->
      crash_now t (Kcrash.Trap (Machine.Illegal_address a)) ~during)
  done

(* ---------------- boot ---------------- *)

let boot_with_mem ~engine ~costs config ~disk ~mem =
  let obs = Engine.obs engine in
  let layout = Layout.create config.layout_config in
  let mmu =
    Mmu.create ~obs ~mem_pages:(Phys_mem.page_count mem) ~tlb_entries:config.tlb_entries ()
  in
  let machine = Machine.create ~mem ~mmu in
  let text = Layout.region layout Layout.Kernel_text in
  let kprogs = Kprogs.build ~origin:text.Layout.base in
  Asm.load kprogs.Kprogs.program mem;
  let heap = Kheap.init ~mem ~region:(Layout.region layout Layout.Kernel_heap) in
  let pool_alloc = Page_alloc.create ~region:(Layout.region layout Layout.Page_pool) in
  let meta_alloc = Page_alloc.create ~region:(Layout.region layout Layout.Buffer_cache) in
  let prng = Prng.create ~seed:config.seed in
  let hooks = Hooks.defaults ~mem in
  let desc_addr = Kheap.counter_addr heap 6 in
  let stack = Layout.region layout Layout.Kernel_stack in
  let frame_addr = stack.Layout.base + stack.Layout.bytes - 32 in
  let t =
    {
      config;
      engine;
      obs;
      c_activities = Trace.counter obs "kernel.activity_routines";
      c_wild_stores = Trace.counter obs "kernel.wild_filecache_stores";
      costs;
      mem;
      layout;
      mmu;
      machine;
      disk;
      kprogs;
      heap;
      hooks;
      pool_alloc;
      meta_alloc;
      prng;
      fs = None;
      crash = None;
      bursts = 0;
      owned_pages = [];
      in_use = [];
      desc_addr;
      frame_addr;

      overrun = None;
      alloc_fault = None;
      sync_fault = None;
      overrun_filecache_bytes = 0;
      dlist_next = 0;
      hash_next = 0;
      crash_flushed_data = 0;
      crash_flushed_meta = 0;
    }
  in
  (* The request descriptor normally targets the heap scratch buffer; only
     fault-induced corruption redirects it (indirect corruption, §3.2). *)
  Kheap.write_word heap desc_addr (Kheap.scratch_addr heap);
  Kheap.write_word heap (desc_addr + 8) 32;
  (* A persistent "interrupt frame" lives at the top of the kernel stack:
     a saved return target and spilled copy arguments that later kernel
     work reloads — the state kernel-stack bit flips corrupt. *)
  Phys_mem.write_u64 mem frame_addr kprogs.Kprogs.halt_pad;
  Phys_mem.write_u64 mem (frame_addr + 8) (Kheap.scratch_addr heap + 7 * 1024);
  Phys_mem.write_u64 mem (frame_addr + 16) 128;
  (* Kernel bcopy is the data path: hook it with the overrun envelope. *)
  t.hooks.Hooks.copy_in <-
    (fun src srcpos ~paddr ~len ->
      Phys_mem.blit_from t.mem paddr src ~pos:srcpos ~len;
      if triggered t t.overrun then do_overrun t ~paddr ~src ~srcpos ~len);
  t

let boot_on_disk ~engine ~costs config ~disk =
  let mem = Phys_mem.create ~bytes_total:config.layout_config.Layout.total_bytes in
  boot_with_mem ~engine ~costs config ~disk ~mem

let boot_warm ~engine ~costs config ~mem ~disk =
  (* Memory survives a warm reboot: reuse it. Reloading the kernel text and
     reinitializing the heap only touch their own regions; the file cache
     and registry regions are left exactly as the crash left them. *)
  boot_with_mem ~engine ~costs config ~disk ~mem

let boot ~engine ~costs config =
  let disk =
    Disk.create ~backend:config.disk_backend ~engine ~costs ~sectors:config.disk_sectors
      ~seed:(config.seed lxor 0x5EED) ()
  in
  boot_on_disk ~engine ~costs config ~disk

let format t =
  let geom =
    Fs.default_geometry ~disk_sectors:(Disk.capacity_sectors t.disk)
      ~mem_bytes:(Phys_mem.size t.mem)
  in
  Fs.mkfs ~disk:t.disk geom

let mount ?(wb_unordered = false) t ~policy =
  let fs =
    Fs.mount ~engine:t.engine ~costs:t.costs ~mem:t.mem ~meta_alloc:t.meta_alloc
      ~pool_alloc:t.pool_alloc ~disk:t.disk ~policy ~hooks:t.hooks ~wb_unordered
  in
  t.fs <- Some fs;
  fs

(* ---------------- fault arming ---------------- *)

(* Behavioral faults model ONE modified kernel procedure that fires
   periodically (§3.1: "malloc is set to inject this error every 1000-4000
   times it is called") — arming is idempotent. *)
let rearm slot period = match slot with None -> arm period | Some a -> Some a

let arm_copy_overrun t ~period = t.overrun <- rearm t.overrun period
let arm_allocation_fault t ~period = t.alloc_fault <- rearm t.alloc_fault period
let arm_sync_fault t ~period = t.sync_fault <- rearm t.sync_fault period

let disarm_faults t =
  t.overrun <- None;
  t.alloc_fault <- None;
  t.sync_fault <- None

(* ---------------- kernel activity ---------------- *)

let kseg = Mmu.kseg_addr

(* Run one interpreted routine and return the result register. Charges
   simulated time for the instructions retired. Raises on trap or hang. *)
let run_routine t ~name ~entry ~args =
  let m = t.machine in
  Machine.resume m;
  let start_us = Engine.now t.engine in
  let before = Machine.instructions_retired m in
  List.iteri (fun i v -> Machine.set_reg m (i + 1) v) args;
  let stack = Layout.region t.layout Layout.Kernel_stack in
  Machine.set_reg m Machine.sp_reg (stack.Layout.base + stack.Layout.bytes - 64);
  Machine.set_reg m Machine.ra_reg t.kprogs.Kprogs.halt_pad;
  Machine.set_pc m entry;
  let result = Machine.run m ~max_instructions:t.config.activity_budget in
  let retired = Machine.instructions_retired m - before in
  Engine.advance_by t.engine (retired * t.config.instr_ns / 1000);
  if Trace.enabled t.obs then begin
    Trace.incr t.c_activities;
    Trace.emit t.obs Trace.Kernel
      (Trace.Activity { name; start_us; end_us = Engine.now t.engine })
  end;
  match result with
  | Machine.Halted -> Machine.reg m 1
  | Machine.Trapped trap -> crash_now t (Kcrash.Trap trap) ~during:("activity:" ^ name)
  | Machine.Running -> crash_now t Kcrash.Hang ~during:("activity:" ^ name)

let entry_of t name = (Kprogs.find t.kprogs name).Kprogs.entry

(* A source address for copies: a kernel-owned pool buffer (KSEG) or the
   heap node arena. *)
(* A buffer with at least [room] writable bytes: half the time a kernel
   pool buffer (physically addressed via KSEG, as the UBC is), otherwise a
   staging offset in the heap scratch area. The upper scratch offsets sit
   close to the free-list arena, where an overrun does real damage. *)
let pick_buffer ?(room = 512) t =
  match t.owned_pages with
  | pages when pages <> [] && Prng.bool t.prng ->
    kseg (List.nth pages (Prng.int t.prng (List.length pages)))
  | _ ->
    let offsets =
      Array.of_list
        (List.filter
           (fun off -> off + room <= Kheap.scratch_bytes)
           [ 0; 2048; 4096; 6144; 7168 ])
    in
    Kheap.scratch_addr t.heap + Prng.choose t.prng offsets

let churn_owned_pages t =
  if List.length t.owned_pages < 4 || (Prng.chance t.prng 0.5 && List.length t.owned_pages < 12)
  then begin
    match Page_alloc.alloc t.pool_alloc with
    | Some p ->
      (* Fill freshly-grabbed kernel buffers with recognizable junk. *)
      Phys_mem.fill t.mem p ~len:Phys_mem.page_size 'K';
      t.owned_pages <- p :: t.owned_pages
    | None -> ()
  end
  else begin
    match t.owned_pages with
    | p :: rest ->
      t.owned_pages <- rest;
      Page_alloc.free t.pool_alloc p
    | [] -> ()
  end

(* A random page anywhere in the pool — possibly a file-cache page. Reads
   of it are legal; this is how the checksum/scan routines touch the UBC. *)
let pick_pool_page t =
  let pool = Layout.region t.layout Layout.Page_pool in
  let pages = pool.Layout.bytes / Phys_mem.page_size in
  pool.Layout.base + (Prng.int t.prng pages * Phys_mem.page_size)

let do_copy t ~name ~len_scale =
  let src = pick_buffer t and dst = pick_buffer t in
  let len = Prng.int_in t.prng 16 len_scale in
  (* The paper's copy-overrun fault perturbs the length of kernel bcopy
     calls; interpreted copies participate too. *)
  let len =
    if triggered ~weight:activity_weight t t.overrun then len + overrun_length t else len
  in
  ignore (run_routine t ~name ~entry:(entry_of t name) ~args:[ src; dst; len ])

let do_word_copy t =
  let src = pick_buffer ~room:2048 t and dst = pick_buffer ~room:2048 t in
  let words = Prng.int_in t.prng 8 256 in
  let words =
    if triggered ~weight:activity_weight t t.overrun then words + ((overrun_length t + 7) / 8)
    else words
  in
  ignore (run_routine t ~name:"k_word_copy" ~entry:(entry_of t "k_word_copy")
            ~args:[ src; dst; words ])

let do_list_insert t =
  match t.in_use with
  | [] -> ()
  | node :: rest ->
    t.in_use <- rest;
    ignore
      (run_routine t ~name:"k_list_insert" ~entry:(entry_of t "k_list_insert")
         ~args:[ Kheap.free_head_addr t.heap; node ])

let do_list_remove t =
  (* Keep a healthy reserve on the free list: a legitimately drained list
     would fire the empty-list consistency check without any fault. *)
  if List.length t.in_use >= Kheap.node_count - 32 then do_list_insert t
  else begin
    let node =
      run_routine t ~name:"k_list_remove" ~entry:(entry_of t "k_list_remove")
        ~args:[ Kheap.free_head_addr t.heap ]
    in
    t.in_use <- node :: t.in_use;
    if triggered ~weight:activity_weight t t.alloc_fault then begin
      (* Premature free 0-256 ms from now, while the node is still in use. *)
      let delay = Prng.int_in t.prng 0 256_000 in
      ignore
        (Engine.schedule_after t.engine ~delay (fun _ ->
             if List.mem node t.in_use then Kheap.native_list_insert t.heap ~node))
    end
  end

let do_node_use t =
  (* "Using" an allocated node: bump a counter stored in it. If the node was
     prematurely freed and relinked, this clobbers a live next pointer and
     the free list decays into wild loads/stores. *)
  match t.in_use with
  | [] -> ()
  | nodes ->
    let node = List.nth nodes (Prng.int t.prng (List.length nodes)) in
    ignore
      (run_routine t ~name:"k_counter_bump" ~entry:(entry_of t "k_counter_bump")
         ~args:[ node; max_int / 2 ])

let do_locks t =
  let lock = Kheap.lock_addr t.heap (Prng.int t.prng 8) in
  let skip_acquire = triggered ~weight:activity_weight t t.sync_fault in
  if not skip_acquire then
    ignore (run_routine t ~name:"k_lock_acquire" ~entry:(entry_of t "k_lock_acquire")
              ~args:[ lock ]);
  let skip_release = triggered ~weight:activity_weight t t.sync_fault in
  if not skip_release then
    ignore (run_routine t ~name:"k_lock_release" ~entry:(entry_of t "k_lock_release")
              ~args:[ lock ])

let do_bitmap t =
  let result =
    run_routine t ~name:"k_bitmap_alloc" ~entry:(entry_of t "k_bitmap_alloc")
      ~args:[ Kheap.bitmap_addr t.heap; Kheap.bitmap_bytes ]
  in
  if result = -1 then Kheap.reset_bitmap t.heap

let do_counter t =
  let idx = Prng.int t.prng 6 in
  let addr = Kheap.counter_addr t.heap idx in
  if Kheap.read_word t.heap addr > 900_000 then Kheap.write_word t.heap addr 0;
  ignore
    (run_routine t ~name:"k_counter_bump" ~entry:(entry_of t "k_counter_bump")
       ~args:[ addr; 1_000_000 ])

let do_chase t =
  let head = Kheap.read_word t.heap (Kheap.chase_head_addr t.heap) in
  ignore
    (run_routine t ~name:"k_ptr_chase" ~entry:(entry_of t "k_ptr_chase")
       ~args:[ head; 2 * Kheap.chase_count ])

let do_queue t =
  ignore
    (run_routine t ~name:"k_queue_put" ~entry:(entry_of t "k_queue_put")
       ~args:
         [
           Kheap.ring_base_addr t.heap;
           Kheap.ring_index_addr t.heap;
           1 + Prng.int t.prng 1000;
           Kheap.ring_capacity;
         ])

let do_scan t =
  let addr = kseg (pick_pool_page t) in
  let len = Prng.int_in t.prng 64 768 in
  ignore (run_routine t ~name:"k_mem_scan" ~entry:(entry_of t "k_mem_scan") ~args:[ addr; len ])

let do_checksum t =
  let addr =
    if Prng.bool t.prng then pick_buffer t else kseg (pick_pool_page t)
  in
  let len = Prng.int_in t.prng 32 512 in
  ignore (run_routine t ~name:"k_checksum" ~entry:(entry_of t "k_checksum") ~args:[ addr; len ])

let do_bzero t =
  let dst = pick_buffer t in
  let len = Prng.int_in t.prng 16 512 in
  ignore (run_routine t ~name:"k_bzero" ~entry:(entry_of t "k_bzero") ~args:[ dst; len ])

let do_compound t =
  let src = pick_buffer t and dst = pick_buffer t in
  let len = Prng.int_in t.prng 16 256 in
  let len =
    if triggered ~weight:activity_weight t t.overrun then len + overrun_length t else len
  in
  ignore (run_routine t ~name:"k_compound" ~entry:(entry_of t "k_compound") ~args:[ src; dst; len ])

(* Interrupt return: reload the saved continuation from the stack frame
   and jump to it. Intact, it lands on the halt pad; a flipped bit sends
   the CPU into the weeds. *)
let do_interrupt_return t =
  let m = t.machine in
  Machine.resume m;
  let before = Machine.instructions_retired m in
  let target = Phys_mem.read_u64 t.mem t.frame_addr in
  Machine.set_reg m Machine.ra_reg t.kprogs.Kprogs.halt_pad;
  Machine.set_pc m target;
  let result = Machine.run m ~max_instructions:t.config.activity_budget in
  Engine.advance_by t.engine
    ((Machine.instructions_retired m - before) * t.config.instr_ns / 1000);
  (match result with
  | Machine.Halted -> ()
  | Machine.Trapped trap -> crash_now t (Kcrash.Trap trap) ~during:"interrupt return"
  | Machine.Running -> crash_now t Kcrash.Hang ~during:"interrupt return")

(* Deferred copy: reload spilled destination and length from the stack
   frame and run the kernel bcopy with them. Flipped spills turn this into
   a wild store — possibly into the file cache. *)
let do_spilled_copy t =
  let dst = Phys_mem.read_u64 t.mem (t.frame_addr + 8) in
  let len = Phys_mem.read_u64 t.mem (t.frame_addr + 16) in
  ignore
    (run_routine t ~name:"k_bcopy" ~entry:(entry_of t "k_bcopy")
       ~args:[ Kheap.scratch_addr t.heap; dst; len ])

let do_dlist_insert t =
  if t.dlist_next >= Kheap.dlist_count then begin
    Kheap.reset_dlist t.heap;
    t.dlist_next <- 0
  end;
  let node = Kheap.dlist_node_addr t.heap t.dlist_next in
  t.dlist_next <- t.dlist_next + 1;
  ignore
    (run_routine t ~name:"k_dlist_insert" ~entry:(entry_of t "k_dlist_insert")
       ~args:[ Kheap.dlist_head_addr t.heap; node ])

let do_hash_insert t =
  let key = Kheap.hash_key_addr t.heap (t.hash_next mod Kheap.hash_buckets) in
  t.hash_next <- t.hash_next + 1;
  ignore
    (run_routine t ~name:"k_hash_insert" ~entry:(entry_of t "k_hash_insert")
       ~args:[ Kheap.hash_table_addr t.heap; key; Kheap.hash_buckets ])

(* The legitimate I/O write path driven by an in-heap request descriptor.
   Normally it targets the heap scratch buffer; if faults corrupted the
   descriptor, the legitimate interface happily writes elsewhere — indirect
   corruption, which bypasses protection (§3.2). *)
let do_descriptor_write t =
  let dst = Kheap.read_word t.heap t.desc_addr in
  let len = Kheap.read_word t.heap (t.desc_addr + 8) in
  let len = max 1 (min len 4096) in
  if not (Phys_mem.in_range t.mem dst ~len) then
    crash_now t (Kcrash.Trap (Machine.Illegal_address dst)) ~during:"io request"
  else begin
    let page = dst - (dst mod Phys_mem.page_size) in
    t.hooks.Hooks.open_write ~paddr:page;
    let len = min len (page + Phys_mem.page_size - dst) in
    Phys_mem.blit_in t.mem dst (Prng.bytes t.prng len);
    t.hooks.Hooks.close_write ~paddr:page
  end

(* Static so a burst does not rebuild nineteen closures per call; the
   weights and order are part of the workload's random schedule. *)
let activity_actions =
  [|
    ((fun t -> do_copy t ~name:"k_bcopy" ~len_scale:384), 12.);
    (do_word_copy, 12.);
    (do_compound, 6.);
    (do_bzero, 5.);
    (do_checksum, 8.);
    (do_scan, 8.);
    (do_list_remove, 8.);
    (do_list_insert, 8.);
    (do_node_use, 6.);
    (do_locks, 8.);
    (do_bitmap, 5.);
    (do_counter, 5.);
    (do_chase, 5.);
    (do_queue, 5.);
    (do_descriptor_write, 3.);
    (do_interrupt_return, 4.);
    (do_spilled_copy, 4.);
    (do_dlist_insert, 5.);
    (do_hash_insert, 5.);
  |]

let run_activity t =
  t.bursts <- t.bursts + 1;
  if Prng.chance t.prng 0.15 then churn_owned_pages t;
  let action = Prng.choose_weighted t.prng activity_actions in
  action t

(* ---------------- world-template rewind ---------------- *)

type checkpoint = {
  ck_prng : int64;
  ck_mmu : Mmu.checkpoint;
  ck_machine : Machine.checkpoint;
  ck_pool_alloc : Page_alloc.checkpoint;
  ck_meta_alloc : Page_alloc.checkpoint;
  ck_fs : Fs.t option;
  ck_bursts : int;
  ck_owned_pages : int list;
  ck_in_use : int list;
  ck_overrun : (int * int) option;
  ck_alloc_fault : (int * int) option;
  ck_sync_fault : (int * int) option;
  ck_overrun_bytes : int;
  ck_dlist_next : int;
  ck_hash_next : int;
  ck_crash_flushed : int * int;
}

let save_armed = function None -> None | Some a -> Some (a.period, a.countdown)
let load_armed = function None -> None | Some (p, c) -> Some { period = p; countdown = c }

let checkpoint t =
  {
    ck_prng = Prng.state t.prng;
    ck_mmu = Mmu.checkpoint t.mmu;
    ck_machine = Machine.checkpoint t.machine;
    ck_pool_alloc = Page_alloc.checkpoint t.pool_alloc;
    ck_meta_alloc = Page_alloc.checkpoint t.meta_alloc;
    ck_fs = t.fs;
    ck_bursts = t.bursts;
    ck_owned_pages = t.owned_pages;
    ck_in_use = t.in_use;
    ck_overrun = save_armed t.overrun;
    ck_alloc_fault = save_armed t.alloc_fault;
    ck_sync_fault = save_armed t.sync_fault;
    ck_overrun_bytes = t.overrun_filecache_bytes;
    ck_dlist_next = t.dlist_next;
    ck_hash_next = t.hash_next;
    ck_crash_flushed = (t.crash_flushed_data, t.crash_flushed_meta);
  }

let restore t ck =
  Prng.set_state t.prng ck.ck_prng;
  Mmu.restore t.mmu ck.ck_mmu;
  Machine.restore t.machine ck.ck_machine;
  Page_alloc.restore t.pool_alloc ck.ck_pool_alloc;
  Page_alloc.restore t.meta_alloc ck.ck_meta_alloc;
  t.fs <- ck.ck_fs;
  t.crash <- None;
  t.bursts <- ck.ck_bursts;
  t.owned_pages <- ck.ck_owned_pages;
  t.in_use <- ck.ck_in_use;
  t.overrun <- load_armed ck.ck_overrun;
  t.alloc_fault <- load_armed ck.ck_alloc_fault;
  t.sync_fault <- load_armed ck.ck_sync_fault;
  t.overrun_filecache_bytes <- ck.ck_overrun_bytes;
  t.dlist_next <- ck.ck_dlist_next;
  t.hash_next <- ck.ck_hash_next;
  let fd, fm = ck.ck_crash_flushed in
  t.crash_flushed_data <- fd;
  t.crash_flushed_meta <- fm

(* ---------------- crash handling ---------------- *)

let crash_system t info =
  t.crash <- Some info;
  if Trace.enabled t.obs then
    Trace.emit t.obs Trace.Kernel
      (Trace.Crash { message = Kcrash.message_of info; during = info.Kcrash.during });
  (match t.fs with
  | Some fs ->
    (match Fs.policy fs with
    | Fs.Rio_policy | Fs.Rio_idle ->
      (* Rio's panic is modified to NOT write dirty data back (§2.3). *)
      ()
    | Fs.Mfs -> ()
    | Fs.Ufs_default | Fs.Ufs_delayed | Fs.Wt_close | Fs.Wt_write | Fs.Advfs ->
      (* The default panic tries to push dirty buffers out — including any
         corrupted ones, which is how memory corruption reaches disk. Give
         the queue a moment, then cut the power to the I/O subsystem.
         Record how much each flush actually pushed: these counts are what
         lets forensics attribute corruption that PROPAGATED through the
         panic path rather than preceding it. *)
      (try
         let data = Rio_fs.Block_cache.flush_dirty (Fs.data_cache fs) ~sync:false () in
         let meta = Rio_fs.Block_cache.flush_dirty (Fs.meta_cache fs) ~sync:false () in
         t.crash_flushed_data <- t.crash_flushed_data + data;
         t.crash_flushed_meta <- t.crash_flushed_meta + meta;
         if Trace.enabled t.obs then
           Trace.emit t.obs Trace.Kernel (Trace.Crash_flush { data; meta });
         Engine.advance_by t.engine (Rio_util.Units.msec 200)
       with _ -> ()));
    Fs.crash fs
  | None -> Disk.crash t.disk);
  t.fs <- None
