test/test_vm.ml: Alcotest Rio_mem Rio_vm
