(** On-disk serialization: superblock, inodes, directory blocks.

    Everything is parsed defensively — after a crash these bytes may have
    been corrupted by a wild kernel store, and a parse failure is itself a
    corruption signal the reliability harness records. *)

(** {1 Superblock} *)

type superblock = {
  total_sectors : int;
  inode_count : int;
  swap_start : int;  (** First swap sector. *)
  swap_sectors : int;
  journal_start : int;
  journal_sectors : int;
  ibitmap_start : int;  (** Inode allocation bitmap sectors. *)
  ibitmap_sectors : int;
  bbitmap_start : int;  (** Data-block allocation bitmap sectors. *)
  bbitmap_sectors : int;
  itable_start : int;  (** One sector per inode. *)
  data_start : int;  (** First data sector; block-aligned region. *)
  data_blocks : int;
  clean : bool;  (** Unmounted cleanly (fsck fast-path). *)
}

val magic : int

val superblock_sector : int
(** 0. *)

val write_superblock : superblock -> bytes
(** Serialize into one 512-byte sector. *)

val read_superblock : bytes -> superblock
(** Raises {!Fs_types.Fs_error} on bad magic or nonsensical geometry. *)

val data_sector : superblock -> int -> int
(** [data_sector sb blkno] is the first sector of data block [blkno]. *)

(** {1 Inodes} *)

type inode = {
  mutable ftype : Fs_types.ftype;
  mutable nlink : int;
  mutable size : int;
  mutable mtime : int;  (** Simulated µs. *)
  blocks : int array;
      (** [ndirect] entries; 0 = hole, else data block number + 1. *)
}

val empty_inode : Fs_types.ftype -> inode

val inode_bytes : int
(** 512 — one sector per inode. *)

val inode_sector : superblock -> int -> int
(** Sector holding inode [ino]. *)

val write_inode : inode -> bytes -> pos:int -> unit
(** Serialize at [pos] in a buffer. *)

val read_inode : bytes -> pos:int -> inode
(** Raises {!Fs_types.Fs_error} on an invalid type tag or out-of-range
    fields. *)

val inode_is_free : bytes -> pos:int -> bool
(** Whether the slot holds a freed inode (type tag 0). *)

val free_inode_image : unit -> bytes
(** The 512-byte image of a free inode slot. *)

(** {1 Directory blocks}

    A directory's data is a sequence of blocks, each packed with entries
    [(ino: u32, namelen: u8, name)] and terminated by a 0 inode. *)

val dir_pack : (string * int) list -> bytes
(** Pack entries into one block. Raises {!Fs_types.Fs_error} if they do not
    fit. *)

val dir_unpack : bytes -> pos:int -> len:int -> (string * int) list
(** Parse a directory block slice. Raises {!Fs_types.Fs_error} on corrupt
    entries (zero-length or over-long names, non-ASCII garbage). *)

val dir_entry_bytes : string -> int
(** Packed size of one entry. *)

val dir_block_capacity : int
(** Usable payload bytes per directory block. *)
