(** Sdet: SPEC SDM's multi-user software-development workload (§4), "5
    scripts" in Table 2. Each script is a simulated developer in its own
    directory: creating, editing (read-modify-write), compiling, searching,
    and deleting files — a metadata-heavy mix, which is why synchronous-
    metadata file systems fare so badly on it. *)

type t

val create : ?scripts:int -> ?ops_per_script:int -> ?seed:int -> unit -> t
(** Defaults: 5 scripts, 1200 operation groups each. *)

val script_count : t -> int

val runners : t -> Script.runner list
(** One runner per concurrent script. *)

val scripts : t -> Script.op list list
(** The raw operation streams (for characterization). *)

val run : t -> Rio_fs.Fs.t -> unit
(** Interleave all scripts round-robin to completion. *)
