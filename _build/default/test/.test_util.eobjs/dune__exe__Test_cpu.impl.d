test/test_cpu.ml: Alcotest Format List QCheck QCheck_alcotest Rio_cpu Rio_mem Rio_vm
