type t = {
  tree : File_tree.t;
  src : string;
  dst : string;
}

let create ?(total_bytes = 40 * 1024 * 1024) ?(seed = 7) () =
  let src = "/usr/src" in
  let spec = { (File_tree.default ~root:src ~total_bytes) with File_tree.seed } in
  { tree = File_tree.generate spec; src; dst = "/tmp/src-copy" }

let source_root t = t.src
let dest_root t = t.dst

let run_ops ops fs = Script.run_all (Script.runner ops) fs

let setup t fs =
  Rio_fs.Fs.mkdir fs "/usr";
  Rio_fs.Fs.mkdir fs "/tmp";
  run_ops (File_tree.create_ops t.tree) fs

let run_cp t fs = run_ops (File_tree.copy_ops t.tree ~src_root:t.src ~dst_root:t.dst) fs

let run_rm t fs =
  let copy = File_tree.rebase t.tree ~src_root:t.src ~dst_root:t.dst in
  run_ops (File_tree.remove_ops copy) fs

let bytes t = File_tree.total_bytes t.tree
let file_count t = List.length t.tree.File_tree.files
