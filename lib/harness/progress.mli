(** Structured progress reports from the long-running harness experiments.

    Each completed cell (one (system, fault) reliability cell, one Table 2
    configuration) produces one report. [completed] counts cells finished so
    far across the whole run — under a domain pool the counter is shared, so
    reports arrive in completion order with a monotonically increasing
    [completed]. *)

type t = {
  completed : int;  (** Cells finished so far, including this one. *)
  total : int;  (** Cells in the whole run. *)
  label : string;  (** Short cell identifier, e.g. ["rio-prot/kernel-text"]. *)
  detail : string;  (** Free-form completion summary for verbose output. *)
}

val render : ?eta_s:float -> t -> string
(** ["[12/39] rio-prot/kernel-text eta 41s | 5 crashes in 23 attempts"].
    The ETA is omitted when absent, on the last cell, or under half a
    second. *)
