(* Tests for the domain pool behind the parallel campaign executor:
   result ordering, exception propagation, the -j 1 serial fallback, and
   the mutex-protected sink. *)

module Pool = Rio_parallel.Pool

let check = Alcotest.check

let test_map_matches_serial () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 7 in
  let serial = Array.map f input in
  List.iter
    (fun domains ->
      check
        Alcotest.(array int)
        (Printf.sprintf "domains=%d preserves order" domains)
        serial
        (Pool.map ~domains f input))
    [ 1; 2; 4; 8 ]

let test_map_list_matches_serial () =
  let input = List.init 33 (fun i -> string_of_int i) in
  check
    Alcotest.(list string)
    "list order preserved" input
    (Pool.map_list ~domains:4 (fun s -> s) input)

let test_chunked_claiming () =
  let input = Array.init 57 (fun i -> i) in
  check
    Alcotest.(array int)
    "chunk > 1 preserves order" input
    (Pool.map ~domains:3 ~chunk:8 (fun x -> x) input)

let test_empty_and_tiny_inputs () =
  check Alcotest.(array int) "empty input" [||] (Pool.map ~domains:4 (fun x -> x) [||]);
  (* More domains than tasks: clamped, no worker starves the result. *)
  check Alcotest.(array int) "one task, many domains" [| 42 |]
    (Pool.map ~domains:8 (fun x -> x * 2) [| 21 |])

let test_exception_propagates () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "failure re-raised at domains=%d" domains)
        (Failure "task 13 exploded")
        (fun () ->
          ignore
            (Pool.map ~domains
               (fun x -> if x = 13 then failwith "task 13 exploded" else x)
               (Array.init 40 (fun i -> i)))))
    [ 1; 4 ]

let test_serial_fallback_runs_in_order () =
  (* -j 1 must be today's code path: tasks executed sequentially, in
     input order, on the calling domain. *)
  let trace = ref [] in
  let caller = Domain.self () in
  let out =
    Pool.map ~domains:1
      (fun x ->
        check Alcotest.bool "runs on the calling domain" true (Domain.self () = caller);
        trace := x :: !trace;
        x)
      (Array.init 20 (fun i -> i))
  in
  check Alcotest.(list int) "sequential execution order" (List.init 20 (fun i -> i))
    (List.rev !trace);
  check Alcotest.(array int) "results intact" (Array.init 20 (fun i -> i)) out

let test_sink_serializes_writers () =
  (* Hammer a list-accumulating sink from several domains; without the
     mutex this write-write races. Every message must arrive exactly once. *)
  let acc = ref [] in
  let sink = Pool.sink (fun m -> acc := m :: !acc) in
  let n = 400 in
  ignore
    (Pool.map ~domains:4
       (fun i ->
         sink i;
         i)
       (Array.init n (fun i -> i)));
  check Alcotest.int "no lost updates" n (List.length !acc);
  check Alcotest.(list int) "every message arrived once"
    (List.init n (fun i -> i))
    (List.sort compare !acc)

let test_default_domains_positive () =
  check Alcotest.bool "at least one domain" true (Pool.default_domains () >= 1)

let () =
  Alcotest.run "rio_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
          Alcotest.test_case "map_list matches serial" `Quick test_map_list_matches_serial;
          Alcotest.test_case "chunked claiming" `Quick test_chunked_claiming;
          Alcotest.test_case "empty and tiny inputs" `Quick test_empty_and_tiny_inputs;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "-j 1 fallback order" `Quick test_serial_fallback_runs_in_order;
          Alcotest.test_case "sink serializes writers" `Quick test_sink_serializes_writers;
          Alcotest.test_case "default domains" `Quick test_default_domains_positive;
        ] );
    ]
