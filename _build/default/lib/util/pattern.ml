let mix seed i =
  let x = (seed * 0x9E3779B1) lxor (i * 0x85EBCA77) in
  let x = x lxor (x lsr 13) in
  let x = x * 0xC2B2AE35 in
  (x lsr 7) land 0xFF

let byte_at ~seed i = Char.unsafe_chr (mix seed i)

let fill_at ~seed ~offset ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (byte_at ~seed (offset + i))
  done;
  b

let fill ~seed ~len = fill_at ~seed ~offset:0 ~len
