lib/harness/reliability.ml: Array Float Hashtbl List Option Paper_data Printf Rio_fault Rio_util String
