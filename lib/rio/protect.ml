module Mmu = Rio_vm.Mmu
module Page_table = Rio_vm.Page_table
module Tlb = Rio_vm.Tlb
module Phys_mem = Rio_mem.Phys_mem
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Trace = Rio_obs.Trace

type t = {
  mmu : Mmu.t;
  engine : Engine.t;
  costs : Costs.t;
  obs : Trace.t;
  c_toggles : Trace.counter;
  enabled : bool;
  mutable toggles : int;
}

let create ~mmu ~engine ~costs ~enabled =
  if enabled then Mmu.set_kseg_through_tlb mmu true;
  let obs = Engine.obs engine in
  {
    mmu;
    engine;
    costs;
    obs;
    c_toggles = Trace.counter obs "rio.protection_toggles";
    enabled;
    toggles = 0;
  }

let enabled t = t.enabled

let charge t =
  t.toggles <- t.toggles + 1;
  Engine.advance_by t.engine
    (Rio_util.Units.usec_of_sec_f (t.costs.Costs.protection_toggle_us_per_page /. 1e6))

let set_writable t ~paddr w =
  if t.enabled then begin
    let vpn = Phys_mem.pfn_of_addr paddr in
    Page_table.set_writable (Mmu.page_table t.mmu) ~vpn w;
    Tlb.shootdown (Mmu.tlb t.mmu) ~vpn;
    charge t;
    if Trace.enabled t.obs then begin
      Trace.incr t.c_toggles;
      Trace.emit t.obs Trace.Rio (Trace.Protection_toggle { paddr; writable = w })
    end
  end

let protect_page t ~paddr = set_writable t ~paddr false

let unprotect_page t ~paddr = set_writable t ~paddr true

let protect_region t ~region =
  let pages = region.Rio_mem.Layout.bytes / Phys_mem.page_size in
  for i = 0 to pages - 1 do
    protect_page t ~paddr:(region.Rio_mem.Layout.base + (i * Phys_mem.page_size))
  done

let toggles t = t.toggles

(* World-template rewind: the only mutable state is the toggle counter
   (the ABOX bit and PTE bits belong to the MMU checkpoint). *)
let restore_toggles t n = t.toggles <- n

let code_patching_overhead ~costs ~stores = stores * costs.Costs.code_patch_check_ns / 1000
