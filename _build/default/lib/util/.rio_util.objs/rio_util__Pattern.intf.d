lib/util/pattern.mli:
