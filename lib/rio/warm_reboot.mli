(** Warm reboot (§2.2): recover the file cache from physical memory after an
    operating-system crash.

    The paper's two-step design, step by step so the crash campaign can
    interleave kernel re-boot and remount at the right points:

    + {!capture}/{!dump_to_swap} — early in the reboot, before anything can
      scribble on memory, dump all of physical memory to the swap partition
      ("performed on a healthy, booting system and will always work").
    + {!parse_registry} — recover the registry from the dump.
    + {!restore_metadata} — write metadata buffers to their home disk
      addresses "so that the file system is intact before being checked for
      consistency by fsck".
    + (caller) run {!Rio_fs.Fsck}, warm-boot the kernel on the same memory,
      mount a fresh Rio file system.
    + {!restore_data} — the user-level sweep that rewrites UBC contents
      through normal calls.

    Checksums are verified along the way (§3.2): [changing] buffers cannot
    be judged; everything else must match or is reported as a detected
    corruption. Restoration proceeds regardless — detection is the
    experiment's job, and memTest has the final word. *)

type verify = {
  intact : int;
  mismatched : int;  (** Checksum caught a direct corruption. *)
  changing : int;  (** Mid-write at crash time: unverifiable. *)
}

type report = {
  registry_entries : int;
  corrupt_registry_slots : int;
  swap_dumped_bytes : int;  (** Bytes of the memory image written to swap. *)
  swap_truncated_bytes : int;
      (** Bytes that did not fit the swap partition (0 = complete dump).
          A partial dump is survivable — recovery proceeds from the
          in-memory image — but it must be visible, not silent. *)
  meta_restored : int;
  meta_skipped : int;  (** Implausible disk address — not written. *)
  data_restored : int;
  data_failed : int;  (** write_by_ino rejected it (inode gone after fsck). *)
  meta_verify : verify;
  data_verify : verify;
  fsck : Rio_fs.Fsck.report;
  duration_us : int;
}

val capture : Rio_mem.Phys_mem.t -> bytes
(** Snapshot all of physical memory as a flat image. The step-by-step
    entry points below consume such an image; {!perform} itself uses a
    copy-on-write {!Rio_mem.Phys_mem.snapshot} instead when
    {!Rio_util.Fastpath} is on, which reads byte-identically but costs
    O(pages dirtied) rather than O(memory). *)

val dump_to_swap : disk:Rio_disk.Disk.t -> image:bytes -> int * int
(** Write the image to the swap partition (timed, synchronous). Returns
    [(dumped, truncated)] byte counts: [truncated > 0] means the image did
    not fit the swap partition and only a prefix was written. Best effort:
    skipped entirely — [(0, length image)] — if the superblock is
    unreadable (the volume is lost anyway). *)

val parse_registry :
  image:bytes -> layout:Rio_mem.Layout.t -> Registry.parse_result

val verify_entries : image:bytes -> Registry.entry list -> verify

val restore_metadata :
  disk:Rio_disk.Disk.t -> image:bytes -> Registry.entry list -> int * int
(** Write every [Meta_buffer] entry's page from the image to its disk
    sectors (synchronous). Returns [(restored, skipped)]. *)

val restore_data :
  fs:Rio_fs.Fs.t -> image:bytes -> Registry.entry list -> int * int
(** Replay every [Data_buffer] entry through {!Rio_fs.Fs.write_by_ino}.
    Returns [(restored, failed)]. *)

val perform :
  mem:Rio_mem.Phys_mem.t ->
  disk:Rio_disk.Disk.t ->
  layout:Rio_mem.Layout.t ->
  engine:Rio_sim.Engine.t ->
  reboot:(unit -> Rio_fs.Fs.t) ->
  report
(** The full sequence. [reboot] is called after the metadata restore and
    fsck; it must warm-boot the kernel {e on the same physical memory} and
    return a freshly mounted Rio file system.

    When {!Rio_util.Fastpath.on} (the default), the crash image is a
    copy-on-write snapshot rather than a full dump, and the swap dump
    streams through a reused buffer with an all-zero-page shortcut —
    every simulated disk write (and hence simulated time, disk state and
    the report) is identical to the reference path. *)
