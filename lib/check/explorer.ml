module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types
module Phys_mem = Rio_mem.Phys_mem
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Trace = Rio_obs.Trace
module Forensics = Rio_obs.Forensics
module Pool = Rio_parallel.Pool
module Run = Rio_harness.Run
module World = Rio_world.World
module Cov = Rio_cov.Cov
module Json = Rio_util.Json
module Sched = Rio_task.Sched
module Task = Rio_task.Task

type spec = {
  label : string;
  protection : bool;
  shadow : bool;
  registry : bool;
  policy : Fs.policy;
  backend : Rio_disk.Backend.kind;
  wb_unordered : bool;
  cold : bool;
  expect_safe : bool;
}

let rio_prot =
  {
    label = "rio-prot";
    protection = true;
    shadow = true;
    registry = true;
    policy = Fs.Rio_policy;
    backend = Rio_disk.Backend.Scsi;
    wb_unordered = false;
    cold = false;
    expect_safe = true;
  }

let rio_noprot = { rio_prot with label = "rio-noprot"; protection = false }
let shadow_off = { rio_prot with label = "shadow-off"; shadow = false; expect_safe = false }

let registry_off =
  { rio_prot with label = "registry-off"; registry = false; expect_safe = false }

let rio_idle = { rio_prot with label = "rio-idle"; policy = Fs.Rio_idle }

let wb_cold = { rio_prot with label = "wb-cold"; policy = Fs.Rio_idle; cold = true }

let wb_order =
  {
    rio_prot with
    label = "wb-order";
    policy = Fs.Rio_idle;
    cold = true;
    wb_unordered = true;
    expect_safe = false;
  }

let matrix_specs = [ rio_prot; rio_noprot; shadow_off; registry_off; rio_idle ]
let fuzz_specs = matrix_specs @ [ wb_cold; wb_order ]

type violation = {
  ordinal : int;
  label : string;
  problems : string list;
  narrative : string list;
}

type scenario_result = {
  slug : string;
  name : string;
  crash_points : int;
  violations : violation list;
}

type report = {
  spec : spec;
  scenarios : scenario_result list;
  coverage : Cov.t option;
}

(* ---------------- one trial ---------------- *)

let make_rio ~spec kernel =
  ignore
    (Rio_cache.create ~shadow:spec.shadow ~registry:spec.registry ~mem:(Kernel.mem kernel)
       ~layout:(Kernel.layout kernel) ~mmu:(Kernel.mmu kernel) ~engine:(Kernel.engine kernel)
       ~costs:(Kernel.costs kernel) ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:spec.protection ~dev:1 ()
      : Rio_cache.t)

type outcome = Completed | Crashed of string list

type trial = {
  trial_labels : string list;
  outcome : outcome;
  crasher : string option;  (** Which task's boundary tripped (multi only). *)
}

(* ---------------- world templates ---------------- *)

(* Trials rent a frozen {!World} per (spec, seed, scenario) and rewind it
   in O(dirty pages) instead of rebooting; see the fuzzer's cache for the
   full rationale. The scenario's [setup] is part of the template (it is
   trip-independent), so a trip pass costs only the armed [op] plus the
   restore. Traced replays and [--reference] build from scratch. *)

let build_world ~obs ~spec ~seed =
  World.create ~obs ~protection:spec.protection ~shadow:spec.shadow ~registry:spec.registry
    ~policy:spec.policy ~backend:spec.backend ~wb_unordered:spec.wb_unordered ~seed ()

let attach_probe ~obs w =
  let probe = Boundary.create ~mem:(World.mem w) ~obs () in
  Boundary.instrument_hooks probe (World.hooks w);
  Boundary.instrument_disk probe (World.disk w);
  probe

type tpl = { tw : World.t; tprobe : Boundary.t }

(* One run touches every scenario of one (spec, seed): all of
   [Scenario.all] plus the multis must fit, or the counting pass evicts
   the template every job needs right back. *)
let cache_cap = 8

let caches = Domain.DLS.new_key (fun () : (string, tpl) Hashtbl.t -> Hashtbl.create 8)

let template ~(spec : spec) ~seed ~slug ~setup =
  let c = Domain.DLS.get caches in
  let key =
    Printf.sprintf "%s@%s/%d/%s" spec.label (Rio_disk.Backend.to_string spec.backend) seed slug
  in
  let e =
    match Hashtbl.find_opt c key with
    | Some e -> e
    | None ->
      if Hashtbl.length c >= cache_cap then begin
        Hashtbl.iter
          (fun _ e ->
            Boundary.drop_capture e.tprobe;
            World.dispose e.tw)
          c;
        Hashtbl.reset c
      end;
      let w = build_world ~obs:Trace.null ~spec ~seed in
      let probe = attach_probe ~obs:Trace.null w in
      setup (World.fs w);
      World.on_restore w (fun () -> Boundary.drop_capture probe);
      World.freeze w;
      let e = { tw = w; tprobe = probe } in
      Hashtbl.replace c key e;
      e
  in
  (* Restore at trial START: an exception escaping one trial can never
     poison the next renter. *)
  ignore (World.restore e.tw : int);
  e

(* Restore the captured crash image over memory, warm-reboot on the
   surviving DRAM, and run [check] against the remounted file system. *)
let crash_audit ~spec w probe ~check =
  let engine = World.engine w in
  let kernel = World.kernel w in
  assert (Boundary.has_crash_image probe);
  Fs.crash (World.fs w);
  Boundary.restore_crash_image probe;
  let recovered = ref None in
  ignore
    (Warm_reboot.perform ~mem:(World.mem w) ~disk:(World.disk w) ~layout:(World.layout w)
       ~engine
       ~reboot:(fun () ->
         let kernel2 =
           Kernel.boot_warm ~engine ~costs:(World.costs w) (World.config w)
             ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
         in
         make_rio ~spec kernel2;
         let fs2 = Kernel.mount kernel2 ~policy:spec.policy in
         recovered := Some fs2;
         fs2)
      : Warm_reboot.report);
  let fs2 = match !recovered with Some f -> f | None -> assert false in
  try check fs2 with Fs_types.Fs_error m -> [ "recovery check raised: " ^ m ]

(* Run [scenario] on an already-set-up world with the probe armed at
   [trip] ([-1] = count only), and — if the probe fired — audit the
   recovery. Every trial is a pure function of (spec, seed, scenario,
   trip), which is what lets the schedule shard across domains. *)
let trial_body ~spec w probe (scenario : Scenario.t) ~trip =
  Boundary.arm probe ~trip_at:trip;
  let crashed =
    match scenario.Scenario.op ~vista_hook:(Boundary.vista_event probe) (World.fs w) with
    | () -> false
    | exception Boundary.Crash_here -> true
  in
  Boundary.disarm probe;
  let trial_labels = Boundary.labels probe in
  if not crashed then { trial_labels; outcome = Completed; crasher = None }
  else begin
    let problems = crash_audit ~spec w probe ~check:scenario.Scenario.check in
    { trial_labels; outcome = Crashed problems; crasher = None }
  end

let run_trial ?(obs = Trace.null) ~spec ~seed scenario ~trip =
  if (not (Trace.enabled obs)) && World.templates_on () then begin
    let e =
      template ~spec ~seed ~slug:scenario.Scenario.slug ~setup:scenario.Scenario.setup
    in
    trial_body ~spec e.tw e.tprobe scenario ~trip
  end
  else begin
    let w = build_world ~obs ~spec ~seed in
    let probe = attach_probe ~obs w in
    scenario.Scenario.setup (World.fs w);
    Fun.protect
      ~finally:(fun () ->
        Boundary.drop_capture probe;
        World.dispose w)
      (fun () -> trial_body ~spec w probe scenario ~trip)
  end

(* The multi-task trial: same cycle, but the scenario's task bodies run
   as scheduler fibers under a seeded interleaving, with every boundary
   a preemption point and every scheduler event a boundary. The trial is
   a pure function of (spec, seed, scenario, sched_seed, trip): the trip
   replay follows the identical interleaving up to the crash. One
   template serves every (sched_seed, trip) of a multi scenario — the
   interleaving is attempt state, not world state. *)
let trial_multi_body ~spec w probe (m : Scenario.multi) ~sched_seed ~trip =
  let fs = World.fs w in
  let sched = Sched.create ~seed:sched_seed in
  Sched.set_on_point sched (Boundary.point probe);
  Boundary.set_on_emit probe (fun _ -> Sched.preempt sched);
  List.iteri
    (fun i body ->
      let th = Task.make ~id:i ~name:(Printf.sprintf "t%d" i) in
      Sched.spawn sched th (fun task -> body sched task fs))
    m.Scenario.m_tasks;
  Boundary.arm probe ~trip_at:trip;
  let crashed =
    match Sched.run sched with
    | () -> false
    | exception Boundary.Crash_here -> true
  in
  Boundary.disarm probe;
  let crasher = Option.map Task.name (Sched.crashed sched) in
  let trial_labels = Boundary.labels probe in
  if not crashed then { trial_labels; outcome = Completed; crasher = None }
  else begin
    let problems = crash_audit ~spec w probe ~check:m.Scenario.m_check in
    { trial_labels; outcome = Crashed problems; crasher }
  end

let run_trial_multi ?(obs = Trace.null) ~spec ~seed ~sched_seed (m : Scenario.multi) ~trip =
  if (not (Trace.enabled obs)) && World.templates_on () then begin
    let e = template ~spec ~seed ~slug:m.Scenario.m_slug ~setup:m.Scenario.m_setup in
    trial_multi_body ~spec e.tw e.tprobe m ~sched_seed ~trip
  end
  else begin
    let w = build_world ~obs ~spec ~seed in
    let probe = attach_probe ~obs w in
    m.Scenario.m_setup (World.fs w);
    Fun.protect
      ~finally:(fun () ->
        Boundary.drop_capture probe;
        World.dispose w)
      (fun () -> trial_multi_body ~spec w probe m ~sched_seed ~trip)
  end

(* ---------------- the exhaustive run ---------------- *)

let resolve_scenarios only =
  match only with
  | None -> Scenario.all
  | Some slugs ->
    List.map
      (fun slug ->
        match Scenario.find slug with
        | Some s -> s
        | None -> invalid_arg ("rio_check: unknown scenario slug " ^ slug))
      slugs

(* A schedule job: one boundary enumeration to explore. Single-task
   scenarios contribute one job each; with [interleave = n] every
   multi-task scenario contributes n jobs, one per scheduler seed, the
   slug suffixed "#i<j>" so each interleaving reports separately. *)
type job =
  | Single of Scenario.t
  | Multi of Scenario.multi * int * int  (* scenario, index, sched seed *)

let job_slug = function
  | Single sc -> sc.Scenario.slug
  | Multi (m, j, _) -> Printf.sprintf "%s#i%d" m.Scenario.m_slug j

let job_name = function
  | Single sc -> sc.Scenario.name
  | Multi (m, j, _) -> Printf.sprintf "%s (interleaving %d)" m.Scenario.m_name j

let run_job ?obs ~spec ~seed job ~trip =
  match job with
  | Single sc -> run_trial ?obs ~spec ~seed sc ~trip
  | Multi (m, _, sched_seed) -> run_trial_multi ?obs ~spec ~seed ~sched_seed m ~trip

let run ?(spec = rio_prot) ?only ?(interleave = 0) (cfg : Run.config) =
  let scenarios = resolve_scenarios only in
  let jobs =
    List.map (fun sc -> Single sc) scenarios
    @
    if interleave <= 0 then []
    else
      List.concat_map
        (fun m ->
          List.init interleave (fun j -> Multi (m, j, (cfg.Run.seed * 0x10001) + j)))
        Scenario.multis
  in
  (* Counting pass: same seed(s), never trips — yields the boundary order
     the trip passes then replay point by point. *)
  let counted =
    List.map
      (fun job -> (job, (run_job ~spec ~seed:cfg.Run.seed job ~trip:(-1)).trial_labels))
      jobs
  in
  let tasks =
    List.concat_map (fun (job, labels) -> List.mapi (fun i l -> (job, i, l)) labels) counted
  in
  let report_done = Run.reporter cfg ~total:(List.length tasks) in
  let results =
    Pool.map_list ~domains:cfg.Run.domains
      (fun (job, trip, label) ->
        let t = run_job ~spec ~seed:cfg.Run.seed job ~trip in
        let cov_outcome, problems =
          match t.outcome with
          | Crashed [] -> (Cov.Survived, [])
          | Crashed problems -> (Cov.Violated, problems)
          | Completed ->
            ( Cov.Unreached,
              [ Printf.sprintf "crash point %d (%s) was not reached on replay" trip label ]
            )
        in
        let narrative =
          if problems = [] then []
          else begin
            (* Counterexample: replay the identical trial with the flight
               recorder live and distill the narrative. *)
            let obs = Run.recorder cfg () in
            ignore (run_job ~obs ~spec ~seed:cfg.Run.seed job ~trip : trial);
            Forensics.narrative (Forensics.summarize obs)
          end
        in
        report_done ~label:(job_slug job) ~detail:label;
        let role =
          match job with
          | Single _ -> "solo"
          | Multi _ -> ( match t.crasher with Some _ -> "crasher" | None -> "solo")
        in
        (job_slug job, { ordinal = trip; label; problems; narrative }, cov_outcome, role))
      tasks
  in
  let coverage =
    if not cfg.Run.coverage then None
    else begin
      (* Results arrive in task (schedule) order at any [-j], so this fold
         is deterministic: the map renders byte-identically. *)
      let cov = Cov.create () in
      List.iter (fun (_, labels) -> Cov.note_schedule cov ~labels) counted;
      List.iter
        (fun (slug, v, outcome, role) ->
          Cov.record cov ~task:role ~cls:(Cov.label_class v.label) ~op:slug
            ~ordinal:v.ordinal outcome)
        results;
      Some cov
    end
  in
  let scenarios =
    List.map
      (fun (job, labels) ->
        {
          slug = job_slug job;
          name = job_name job;
          crash_points = List.length labels;
          violations =
            List.filter_map
              (fun (slug, v, _, _) ->
                if slug = job_slug job && v.problems <> [] then Some v else None)
              results;
        })
      counted
  in
  { spec; scenarios; coverage }

let crash_points r = List.fold_left (fun acc s -> acc + s.crash_points) 0 r.scenarios

let violation_count r =
  List.fold_left (fun acc s -> acc + List.length s.violations) 0 r.scenarios

(* ---------------- rendering ---------------- *)

let spec_line (spec : spec) =
  Printf.sprintf "%s (protection %s, shadow %s, registry %s, backend %s)" spec.label
    (if spec.protection then "on" else "off")
    (if spec.shadow then "on" else "off")
    (if spec.registry then "on" else "off")
    (Rio_disk.Backend.to_string spec.backend)

let render_violation buf ~slug v =
  Buffer.add_string buf
    (Printf.sprintf "\ncounterexample: %s @ crash point %d (%s)\n" slug v.ordinal v.label);
  List.iter (fun p -> Buffer.add_string buf ("  problem: " ^ p ^ "\n")) v.problems;
  if v.narrative <> [] then begin
    Buffer.add_string buf "  trace:\n";
    List.iter (fun l -> Buffer.add_string buf ("    | " ^ l ^ "\n")) v.narrative
  end

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("crash-schedule check: " ^ spec_line r.spec ^ "\n");
  Buffer.add_string buf (Printf.sprintf "  %-10s %12s  %s\n" "scenario" "crash points" "violations");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %12d  %d\n" s.slug s.crash_points (List.length s.violations)))
    r.scenarios;
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %12d  %d\n" "total" (crash_points r) (violation_count r));
  List.iter
    (fun s -> List.iter (fun v -> render_violation buf ~slug:s.slug v) s.violations)
    r.scenarios;
  Buffer.contents buf

(* ---------------- machine-readable reports ---------------- *)

let spec_json (spec : spec) =
  Json.Obj
    [
      ("label", Json.Str spec.label);
      ("protection", Json.Bool spec.protection);
      ("shadow", Json.Bool spec.shadow);
      ("registry", Json.Bool spec.registry);
      ("policy", Json.Str (Fs.policy_name spec.policy));
      ("backend", Json.Str (Rio_disk.Backend.to_string spec.backend));
      ("wb_unordered", Json.Bool spec.wb_unordered);
      ("cold", Json.Bool spec.cold);
      ("expect_safe", Json.Bool spec.expect_safe);
    ]

let violation_json v =
  Json.Obj
    [
      ("ordinal", Json.Int v.ordinal);
      ("label", Json.Str v.label);
      ("problems", Json.Arr (List.map (fun p -> Json.Str p) v.problems));
    ]

let report_json r =
  Json.Obj
    ([
       ("spec", spec_json r.spec);
       ( "scenarios",
         Json.Arr
           (List.map
              (fun s ->
                Json.Obj
                  [
                    ("slug", Json.Str s.slug);
                    ("crash_points", Json.Int s.crash_points);
                    ("violations", Json.Int (List.length s.violations));
                    ("counterexamples", Json.Arr (List.map violation_json s.violations));
                  ])
              r.scenarios) );
       ("crash_points", Json.Int (crash_points r));
       ("violations", Json.Int (violation_count r));
     ]
    @
    match r.coverage with
    | Some cov -> [ ("coverage", Cov.to_json cov) ]
    | None -> [])

(* ---------------- the ablation matrix ---------------- *)

type matrix_entry = { entry_report : report; ok : bool }

let run_matrix ?(specs = matrix_specs) ?only (cfg : Run.config) =
  List.map
    (fun spec ->
      let entry_report = run ~spec ?only cfg in
      let safe = violation_count entry_report = 0 in
      { entry_report; ok = safe = spec.expect_safe })
    specs

let matrix_ok entries = List.for_all (fun e -> e.ok) entries

let matrix_json entries =
  Json.Arr
    (List.map
       (fun e ->
         Json.Obj [ ("ok", Json.Bool e.ok); ("report", report_json e.entry_report) ])
       entries)

let render_matrix entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "crash-schedule matrix: the checker must catch the unsafe ablations\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %12s %11s  %-9s %s\n" "configuration" "crash points" "violations"
       "expected" "verdict");
  List.iter
    (fun e ->
      let r = e.entry_report in
      let expected = if r.spec.expect_safe then "safe" else "unsafe" in
      let verdict =
        match (e.ok, r.spec.expect_safe) with
        | true, true -> "ok"
        | true, false -> "ok (caught)"
        | false, true -> "MISMATCH: violations in a safe configuration"
        | false, false -> "MISMATCH: known-unsafe configuration not flagged"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %12d %11d  %-9s %s\n" r.spec.label (crash_points r)
           (violation_count r) expected verdict))
    entries;
  (* One counterexample per caught-unsafe configuration: the narrative is
     the evidence that the catch is real. *)
  List.iter
    (fun e ->
      let r = e.entry_report in
      if not r.spec.expect_safe then
        let first =
          List.find_map
            (fun s ->
              match s.violations with [] -> None | v :: _ -> Some (s.slug, v))
            r.scenarios
        in
        match first with
        | Some (slug, v) ->
          Buffer.add_string buf (Printf.sprintf "\n[%s]" r.spec.label);
          render_violation buf ~slug v
        | None -> ())
    entries;
  Buffer.contents buf
