lib/vm/page_table.ml: Array Pte
