(* Tests for the file-system substrate: on-disk formats, block caches, the
   VFS API, write policies, the journal, and fsck. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Page_alloc = Rio_mem.Page_alloc
module Disk = Rio_disk.Disk
module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types
module Ondisk = Rio_fs.Ondisk
module Hooks = Rio_fs.Hooks
module Journal = Rio_fs.Journal
module Fsck = Rio_fs.Fsck
module Block_cache = Rio_fs.Block_cache
module Pattern = Rio_util.Pattern

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

type env = {
  engine : Engine.t;
  mem : Phys_mem.t;
  disk : Disk.t;
  meta_alloc : Page_alloc.t;
  pool_alloc : Page_alloc.t;
  hooks : Hooks.t;
}

let make_env () =
  let engine = Engine.create () in
  let layout = Layout.create Layout.default_config in
  let mem = Phys_mem.create ~bytes_total:Layout.default_config.Layout.total_bytes in
  let disk = Disk.create ~engine ~costs:Costs.default ~sectors:(64 * 1024) ~seed:3 () in
  let geom = Fs.default_geometry ~disk_sectors:(64 * 1024) ~mem_bytes:(Phys_mem.size mem) in
  Fs.mkfs ~disk geom;
  {
    engine;
    mem;
    disk;
    meta_alloc = Page_alloc.create ~region:(Layout.region layout Layout.Buffer_cache);
    pool_alloc = Page_alloc.create ~region:(Layout.region layout Layout.Page_pool);
    hooks = Hooks.defaults ~mem;
  }

let mount env policy =
  Fs.mount ~engine:env.engine ~costs:Costs.default ~mem:env.mem ~meta_alloc:env.meta_alloc
    ~pool_alloc:env.pool_alloc ~disk:env.disk ~policy ~hooks:env.hooks ~wb_unordered:false

let with_fs policy f =
  let env = make_env () in
  f env (mount env policy)

(* Fresh caches over the same (crashed) disk: a cold reboot. *)
let make_env_on env =
  let layout = Layout.create Layout.default_config in
  let mem = Phys_mem.create ~bytes_total:Layout.default_config.Layout.total_bytes in
  {
    env with
    mem;
    meta_alloc = Page_alloc.create ~region:(Layout.region layout Layout.Buffer_cache);
    pool_alloc = Page_alloc.create ~region:(Layout.region layout Layout.Page_pool);
    hooks = Hooks.defaults ~mem;
  }


(* ---------------- on-disk formats ---------------- *)

let test_superblock_roundtrip () =
  let env = make_env () in
  let sb = Ondisk.read_superblock (Disk.peek env.disk ~sector:0) in
  let back = Ondisk.read_superblock (Ondisk.write_superblock sb) in
  check Alcotest.bool "roundtrip" true (sb = back)

let test_superblock_bad_magic () =
  Alcotest.check_raises "bad magic"
    (Fs_types.Fs_error "superblock: bad magic 0") (fun () ->
      ignore (Ondisk.read_superblock (Bytes.make 512 '\000')))

let test_inode_roundtrip () =
  let inode = Ondisk.empty_inode Fs_types.Regular in
  inode.Ondisk.size <- 12345;
  inode.Ondisk.nlink <- 2;
  inode.Ondisk.mtime <- 999;
  inode.Ondisk.blocks.(0) <- 7;
  inode.Ondisk.blocks.(95) <- 42;
  let b = Bytes.make Ondisk.inode_bytes '\000' in
  Ondisk.write_inode inode b ~pos:0;
  let back = Ondisk.read_inode b ~pos:0 in
  check Alcotest.int "size" 12345 back.Ondisk.size;
  check Alcotest.int "block 0" 7 back.Ondisk.blocks.(0);
  check Alcotest.int "block 95" 42 back.Ondisk.blocks.(95)

let test_inode_bad_tag () =
  let b = Bytes.make Ondisk.inode_bytes '\000' in
  Bytes.set b 0 '\009';
  Alcotest.check_raises "bad tag" (Fs_types.Fs_error "inode: invalid type tag 9") (fun () ->
      ignore (Ondisk.read_inode b ~pos:0))

let test_free_inode_detection () =
  let b = Ondisk.free_inode_image () in
  check Alcotest.bool "free" true (Ondisk.inode_is_free b ~pos:0)

let test_dir_pack_unpack () =
  let entries = [ ("alpha", 3); ("beta.c", 7); ("a-long-ish-name.ml", 42) ] in
  let b = Ondisk.dir_pack entries in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "roundtrip" entries
    (Ondisk.dir_unpack b ~pos:0 ~len:(Bytes.length b))

let test_dir_corrupt_name () =
  let b = Ondisk.dir_pack [ ("ok", 1) ] in
  Bytes.set b 5 '\000' (* zap a name byte to a control character *);
  (match Ondisk.dir_unpack b ~pos:0 ~len:(Bytes.length b) with
  | _ -> Alcotest.fail "expected corruption to be detected"
  | exception Fs_types.Fs_error _ -> ())

let prop_dir_roundtrip =
  let name_gen = QCheck.Gen.(map (fun s -> "f" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 20))) in
  QCheck.Test.make ~name:"directory entries roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20)
              (pair (make name_gen) (int_range 1 100000)))
    (fun entries ->
      (* Deduplicate names (directories cannot hold duplicates). *)
      let entries =
        List.fold_left
          (fun acc (n, i) -> if List.mem_assoc n acc then acc else (n, i) :: acc)
          [] entries
        |> List.rev
      in
      let b = Ondisk.dir_pack entries in
      Ondisk.dir_unpack b ~pos:0 ~len:(Bytes.length b) = entries)

(* ---------------- basic file operations ---------------- *)

let test_create_read_write () =
  with_fs Fs.Ufs_default (fun _ fs ->
      let fd = Fs.create fs "/hello.txt" in
      Fs.write fs fd (Bytes.of_string "hello");
      Fs.close fs fd;
      check Alcotest.bytes "read back" (Bytes.of_string "hello") (Fs.read_file fs "/hello.txt"))

let test_multi_block_file () =
  with_fs Fs.Ufs_default (fun _ fs ->
      let data = Pattern.fill ~seed:1 ~len:50_000 in
      Fs.write_file fs "/big" data;
      check Alcotest.bytes "multi-block roundtrip" data (Fs.read_file fs "/big"))

let test_pwrite_pread () =
  with_fs Fs.Ufs_default (fun _ fs ->
      let fd = Fs.create fs "/f" in
      Fs.pwrite fs fd ~offset:0 (Bytes.of_string "aaaaaaaaaa");
      Fs.pwrite fs fd ~offset:3 (Bytes.of_string "XYZ");
      check Alcotest.bytes "overwrite" (Bytes.of_string "aaaXYZaaaa")
        (Fs.pread fs fd ~offset:0 ~len:10);
      check Alcotest.bytes "offset read" (Bytes.of_string "XYZ") (Fs.pread fs fd ~offset:3 ~len:3);
      Fs.close fs fd)

let test_hole_reads_zero () =
  with_fs Fs.Ufs_default (fun _ fs ->
      let fd = Fs.create fs "/sparse" in
      Fs.pwrite fs fd ~offset:20_000 (Bytes.of_string "end");
      check Alcotest.int "size includes hole" 20_003 (Fs.fd_size fs fd);
      let hole = Fs.pread fs fd ~offset:100 ~len:16 in
      check Alcotest.bytes "hole is zeros" (Bytes.make 16 '\000') hole;
      Fs.close fs fd)

let test_short_read_at_eof () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/f" (Bytes.of_string "abc");
      let fd = Fs.open_file fs "/f" in
      check Alcotest.int "short read" 3 (Bytes.length (Fs.read fs fd ~len:100));
      check Alcotest.int "at eof empty" 0 (Bytes.length (Fs.read fs fd ~len:100));
      Fs.close fs fd)

let test_cursor_semantics () =
  with_fs Fs.Ufs_default (fun _ fs ->
      let fd = Fs.create fs "/f" in
      Fs.write fs fd (Bytes.of_string "one");
      Fs.write fs fd (Bytes.of_string "two");
      Fs.seek fs fd 0;
      check Alcotest.bytes "sequential writes" (Bytes.of_string "onetwo") (Fs.read fs fd ~len:6);
      Fs.close fs fd)

let test_create_truncates () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/f" (Bytes.of_string "a long first version");
      Fs.write_file fs "/f" (Bytes.of_string "short");
      check Alcotest.bytes "truncated" (Bytes.of_string "short") (Fs.read_file fs "/f"))

let test_max_file_size () =
  with_fs Fs.Ufs_default (fun _ fs ->
      let fd = Fs.create fs "/huge" in
      Alcotest.check_raises "too big"
        (Fs_types.Fs_error "write: file would exceed maximum size") (fun () ->
          Fs.pwrite fs fd ~offset:(96 * 8192) (Bytes.of_string "x")))

let test_missing_file () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Alcotest.check_raises "no such file"
        (Fs_types.Fs_error "/nope: no such file or directory") (fun () ->
          ignore (Fs.open_file fs "/nope")))

(* ---------------- namespace ---------------- *)

let test_mkdir_readdir () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.mkdir fs "/a";
      Fs.mkdir fs "/a/b";
      Fs.write_file fs "/a/f1" (Bytes.of_string "1");
      Fs.write_file fs "/a/f2" (Bytes.of_string "2");
      check (Alcotest.list Alcotest.string) "sorted entries" [ "b"; "f1"; "f2" ]
        (Fs.readdir fs "/a");
      check (Alcotest.list Alcotest.string) "root" [ "a" ] (Fs.readdir fs "/"))

let test_unlink () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/f" (Bytes.of_string "x");
      Fs.unlink fs "/f";
      check Alcotest.bool "gone" false (Fs.exists fs "/f"))

let test_rmdir_refuses_nonempty () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.mkdir fs "/d";
      Fs.write_file fs "/d/f" (Bytes.of_string "x");
      Alcotest.check_raises "not empty" (Fs_types.Fs_error "/d: directory not empty") (fun () ->
          Fs.rmdir fs "/d");
      Fs.unlink fs "/d/f";
      Fs.rmdir fs "/d";
      check Alcotest.bool "gone" false (Fs.exists fs "/d"))

let test_rename () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.mkdir fs "/d";
      Fs.write_file fs "/f" (Bytes.of_string "move me");
      Fs.rename fs "/f" "/d/g";
      check Alcotest.bool "source gone" false (Fs.exists fs "/f");
      check Alcotest.bytes "moved" (Bytes.of_string "move me") (Fs.read_file fs "/d/g"))

let test_rename_replaces () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/a" (Bytes.of_string "new");
      Fs.write_file fs "/b" (Bytes.of_string "old");
      Fs.rename fs "/a" "/b";
      check Alcotest.bytes "replaced" (Bytes.of_string "new") (Fs.read_file fs "/b"))

let test_stat () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/f" (Bytes.of_string "12345");
      let st = Fs.stat fs "/f" in
      check Alcotest.int "size" 5 st.Fs.st_size;
      check Alcotest.bool "regular" true (st.Fs.st_ftype = Fs_types.Regular);
      let std = Fs.stat fs "/" in
      check Alcotest.bool "root is dir" true (std.Fs.st_ftype = Fs_types.Directory))

let test_many_files_in_dir () =
  (* Force directory growth past one block. *)
  with_fs Fs.Ufs_delayed (fun _ fs ->
      Fs.mkdir fs "/many";
      for i = 1 to 900 do
        Fs.write_file fs (Printf.sprintf "/many/file%04d" i) (Bytes.of_string "x")
      done;
      check Alcotest.int "all listed" 900 (List.length (Fs.readdir fs "/many"));
      check Alcotest.bytes "sample readable" (Bytes.of_string "x")
        (Fs.read_file fs "/many/file0456"))

let test_statfs () =
  with_fs Fs.Ufs_delayed (fun _ fs ->
      (* Prime the root directory's block so it doesn't skew the counts. *)
      Fs.write_file fs "/primer" (Bytes.of_string "x");
      let before = Fs.statfs fs in
      check Alcotest.bool "some blocks free" true (before.Fs.blocks_free > 100);
      Fs.write_file fs "/f" (Pattern.fill ~seed:8 ~len:(5 * 8192));
      let after = Fs.statfs fs in
      check Alcotest.int "five blocks consumed" (before.Fs.blocks_free - 5) after.Fs.blocks_free;
      check Alcotest.int "one inode consumed" (before.Fs.inodes_free - 1) after.Fs.inodes_free;
      Fs.unlink fs "/f";
      let freed = Fs.statfs fs in
      check Alcotest.int "blocks returned" before.Fs.blocks_free freed.Fs.blocks_free;
      check Alcotest.int "inode returned" before.Fs.inodes_free freed.Fs.inodes_free)

(* ---------------- symlinks ---------------- *)

let test_symlink_follow () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.mkdir fs "/real";
      Fs.write_file fs "/real/data" (Bytes.of_string "through the link");
      Fs.symlink fs ~target:"/real/data" "/link";
      check Alcotest.bytes "open follows" (Bytes.of_string "through the link")
        (Fs.read_file fs "/link");
      check Alcotest.string "readlink" "/real/data" (Fs.readlink fs "/link");
      check Alcotest.bool "stat follows" true
        ((Fs.stat fs "/link").Fs.st_ftype = Fs_types.Regular);
      check Alcotest.bool "lstat does not" true
        ((Fs.lstat fs "/link").Fs.st_ftype = Fs_types.Symlink))

let test_symlink_relative () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.mkdir fs "/d";
      Fs.write_file fs "/d/target" (Bytes.of_string "rel");
      Fs.symlink fs ~target:"target" "/d/rel-link";
      check Alcotest.bytes "relative target resolves in link's dir" (Bytes.of_string "rel")
        (Fs.read_file fs "/d/rel-link"))

let test_symlink_to_directory () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.mkdir fs "/docs";
      Fs.write_file fs "/docs/a" (Bytes.of_string "via dir link");
      Fs.symlink fs ~target:"/docs" "/d-link";
      check Alcotest.bytes "intermediate symlink" (Bytes.of_string "via dir link")
        (Fs.read_file fs "/d-link/a"))

let test_symlink_loop_detected () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.symlink fs ~target:"/b" "/a";
      Fs.symlink fs ~target:"/a" "/b";
      Alcotest.check_raises "loop"
        (Fs_types.Fs_error "/a: too many levels of symbolic links") (fun () ->
          ignore (Fs.read_file fs "/a")))

let test_symlink_dangling () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.symlink fs ~target:"/nowhere" "/dangling";
      check Alcotest.string "readlink works" "/nowhere" (Fs.readlink fs "/dangling");
      Alcotest.check_raises "follow fails"
        (Fs_types.Fs_error "/dangling: no such file or directory") (fun () ->
          ignore (Fs.read_file fs "/dangling")))

let test_symlink_unlink_removes_link_only () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/t" (Bytes.of_string "kept");
      Fs.symlink fs ~target:"/t" "/l";
      Fs.unlink fs "/l";
      check Alcotest.bool "link gone" false (Fs.exists fs "/l");
      check Alcotest.bytes "target kept" (Bytes.of_string "kept") (Fs.read_file fs "/t"))

let test_symlink_survives_remount () =
  let env = make_env () in
  let fs = mount env Fs.Ufs_default in
  Fs.write_file fs "/t" (Bytes.of_string "x");
  Fs.symlink fs ~target:"/t" "/l";
  Fs.unmount fs;
  let fs2 = mount (make_env_on env) Fs.Ufs_default in
  check Alcotest.string "target persisted" "/t" (Fs.readlink fs2 "/l")

(* ---------------- hard links ---------------- *)

let test_link_shares_content () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/orig" (Bytes.of_string "shared bytes");
      Fs.link fs "/orig" "/alias";
      check Alcotest.bytes "alias reads same" (Bytes.of_string "shared bytes")
        (Fs.read_file fs "/alias");
      check Alcotest.int "nlink 2" 2 (Fs.stat fs "/orig").Fs.st_nlink;
      check Alcotest.int "same inode" (Fs.stat fs "/orig").Fs.st_ino
        (Fs.stat fs "/alias").Fs.st_ino;
      (* Writes through one name are visible through the other. *)
      let fd = Fs.open_file fs "/alias" in
      Fs.pwrite fs fd ~offset:0 (Bytes.of_string "SHARED");
      Fs.close fs fd;
      check Alcotest.bytes "visible via orig" (Bytes.of_string "SHARED bytes")
        (Fs.read_file fs "/orig"))

let test_unlink_one_of_two () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/a" (Bytes.of_string "keep");
      Fs.link fs "/a" "/b";
      Fs.unlink fs "/a";
      check Alcotest.bool "a gone" false (Fs.exists fs "/a");
      check Alcotest.bytes "b keeps the data" (Bytes.of_string "keep") (Fs.read_file fs "/b");
      check Alcotest.int "nlink back to 1" 1 (Fs.stat fs "/b").Fs.st_nlink;
      Fs.unlink fs "/b";
      check Alcotest.bool "b gone too" false (Fs.exists fs "/b"))

let test_link_to_directory_rejected () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.mkdir fs "/d";
      Alcotest.check_raises "no dir hard links"
        (Fs_types.Fs_error "/d2: hard links to directories are not allowed") (fun () ->
          Fs.link fs "/d" "/d2"))

let test_links_survive_remount () =
  let env = make_env () in
  let fs = mount env Fs.Ufs_default in
  Fs.write_file fs "/x" (Bytes.of_string "linked");
  Fs.link fs "/x" "/y";
  Fs.unmount fs;
  let fs2 = mount (make_env_on env) Fs.Ufs_default in
  check Alcotest.int "same ino after remount" (Fs.stat fs2 "/x").Fs.st_ino
    (Fs.stat fs2 "/y").Fs.st_ino;
  check Alcotest.int "nlink persisted" 2 (Fs.stat fs2 "/x").Fs.st_nlink

let test_fsck_corrects_nlink () =
  let env = make_env () in
  let fs = mount env Fs.Wt_write in
  Fs.write_file fs "/n" (Bytes.of_string "z");
  let ino = (Fs.stat fs "/n").Fs.st_ino in
  Fs.unmount fs;
  (* Corrupt the on-disk link count. *)
  let sb = Ondisk.read_superblock (Disk.peek env.disk ~sector:0) in
  let sector = Ondisk.inode_sector sb ino in
  let raw = Disk.peek env.disk ~sector in
  let inode = Ondisk.read_inode raw ~pos:0 in
  inode.Ondisk.nlink <- 9;
  Ondisk.write_inode inode raw ~pos:0;
  Disk.poke env.disk ~sector raw;
  let report = Fsck.run ~disk:env.disk in
  check Alcotest.bool "nlink repaired" true
    (List.exists
       (fun r ->
         let has_sub needle hay =
           let n = String.length needle and h = String.length hay in
           let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
           go 0
         in
         has_sub "link count" r)
       report.Fsck.repairs)

(* ---------------- truncate ---------------- *)

let test_truncate_shrink () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/f" (Pattern.fill ~seed:3 ~len:30_000);
      Fs.truncate fs "/f" 10_000;
      let got = Fs.read_file fs "/f" in
      check Alcotest.int "size" 10_000 (Bytes.length got);
      check Alcotest.bytes "prefix intact" (Pattern.fill ~seed:3 ~len:10_000) got)

let test_truncate_extend_is_hole () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/f" (Bytes.of_string "abc");
      Fs.truncate fs "/f" 100;
      let got = Fs.read_file fs "/f" in
      check Alcotest.int "extended" 100 (Bytes.length got);
      check Alcotest.string "prefix" "abc" (Bytes.sub_string got 0 3);
      check Alcotest.int "hole is zero" 0 (Char.code (Bytes.get got 50)))

let test_truncate_then_extend_zeros () =
  with_fs Fs.Ufs_default (fun _ fs ->
      Fs.write_file fs "/f" (Bytes.make 5000 'x');
      Fs.truncate fs "/f" 1000;
      Fs.truncate fs "/f" 5000;
      let got = Fs.read_file fs "/f" in
      check Alcotest.int "old bytes not resurrected" 0 (Char.code (Bytes.get got 3000)))

let test_truncate_frees_blocks () =
  with_fs Fs.Ufs_delayed (fun _ fs ->
      Fs.write_file fs "/f" (Pattern.fill ~seed:4 ~len:(10 * 8192));
      let st = Fs.stat fs "/f" in
      check Alcotest.int "10 blocks" (10 * 8192) st.Fs.st_size;
      Fs.truncate fs "/f" 8192;
      (* The freed blocks are reusable: fill the disk-worth again. *)
      Fs.write_file fs "/g" (Pattern.fill ~seed:5 ~len:(9 * 8192));
      check Alcotest.bytes "no interference" (Pattern.fill ~seed:4 ~len:8192)
        (Fs.read_file fs "/f"))

(* ---------------- persistence and policies ---------------- *)

let test_persistence_after_unmount () =
  let env = make_env () in
  let fs = mount env Fs.Ufs_default in
  Fs.write_file fs "/p" (Bytes.of_string "persists");
  Fs.unmount fs;
  let fs2 = mount env Fs.Ufs_default in
  check Alcotest.bytes "survives remount" (Bytes.of_string "persists") (Fs.read_file fs2 "/p")

let test_mfs_never_touches_disk () =
  let env = make_env () in
  Disk.reset_stats env.disk;
  let fs = mount env Fs.Mfs in
  Fs.write_file fs "/m" (Pattern.fill ~seed:2 ~len:30_000);
  ignore (Fs.read_file fs "/m");
  Fs.sync fs;
  let s = Disk.stats env.disk in
  (* Mount reads the superblock once; nothing else. *)
  check Alcotest.int "no writes" 0 s.Disk.writes;
  check Alcotest.bool "at most the superblock read" true (s.Disk.reads <= 1)

let test_rio_no_reliability_writes () =
  let env = make_env () in
  let fs = mount env Fs.Rio_policy in
  Disk.reset_stats env.disk;
  Fs.write_file fs "/r" (Pattern.fill ~seed:3 ~len:30_000);
  let fd = Fs.open_file fs "/r" in
  Fs.fsync fs fd (* must return immediately *);
  Fs.close fs fd;
  Fs.sync fs (* must also be a no-op *);
  check Alcotest.int "zero disk writes" 0 (Disk.stats env.disk).Disk.writes

let test_wt_write_synchronous () =
  let env = make_env () in
  let fs = mount env Fs.Wt_write in
  Disk.reset_stats env.disk;
  Fs.write_file fs "/w" (Bytes.of_string "sync me");
  check Alcotest.bool "data hit the disk during write" true
    ((Disk.stats env.disk).Disk.writes > 0);
  check Alcotest.int "nothing pending" 0 (Disk.pending_writes env.disk)

let test_delayed_writes_nothing_until_daemon () =
  let env = make_env () in
  let fs = mount env Fs.Ufs_delayed in
  Disk.reset_stats env.disk;
  Fs.write_file fs "/d" (Pattern.fill ~seed:4 ~len:20_000);
  check Alcotest.int "no writes yet" 0 (Disk.stats env.disk).Disk.writes;
  ignore (Fs.update_daemon_flush fs);
  Disk.drain env.disk;
  check Alcotest.bool "daemon flushed" true ((Disk.stats env.disk).Disk.writes > 0)

let test_update_daemon_fires_on_schedule () =
  let env = make_env () in
  let fs = mount env Fs.Ufs_delayed in
  Fs.write_file fs "/d" (Bytes.of_string "dirty");
  Disk.reset_stats env.disk;
  Engine.advance_by env.engine (Rio_util.Units.sec 31);
  Disk.drain env.disk;
  check Alcotest.bool "30s daemon wrote" true ((Disk.stats env.disk).Disk.writes > 0)

let test_crash_loses_delayed_data () =
  let env = make_env () in
  let fs = mount env Fs.Ufs_delayed in
  Fs.write_file fs "/lost" (Bytes.of_string "never flushed");
  Fs.crash fs;
  ignore (Fsck.run ~disk:env.disk);
  let fs2 = mount (make_env_on env) Fs.Ufs_delayed in
  check Alcotest.bool "file did not survive" false (Fs.exists fs2 "/lost")

let test_wt_write_survives_crash () =
  let env = make_env () in
  let fs = mount env Fs.Wt_write in
  Fs.write_file fs "/kept" (Bytes.of_string "synchronous data");
  Fs.crash fs;
  ignore (Fsck.run ~disk:env.disk);
  let fs2 = mount (make_env_on env) Fs.Wt_write in
  check Alcotest.bytes "write-through survives" (Bytes.of_string "synchronous data")
    (Fs.read_file fs2 "/kept")

let test_rio_idle_daemon_trickles () =
  let env = make_env () in
  let fs = mount env Fs.Rio_idle in
  Disk.reset_stats env.disk;
  Fs.write_file fs "/i" (Pattern.fill ~seed:5 ~len:40_000);
  (* The idle daemon pushes dirty blocks out in the background... *)
  Engine.advance_by env.engine (Rio_util.Units.sec 31);
  Disk.drain env.disk;
  check Alcotest.bool "idle write-back happened" true ((Disk.stats env.disk).Disk.writes > 0);
  (* ...and sync is a durability barrier: dirty blocks ride the
     write-behind pipeline and the barrier drains it. *)
  Fs.write_file fs "/j" (Pattern.fill ~seed:6 ~len:40_000);
  let before = (Disk.stats env.disk).Disk.writes in
  Fs.sync fs;
  check Alcotest.bool "sync flushed through write-behind" true
    ((Disk.stats env.disk).Disk.writes > before)

let test_eviction_under_pressure () =
  (* A tiny pool forces eviction write-back and re-read. *)
  let env = make_env () in
  let fs = mount env Fs.Ufs_default in
  (* Exhaust most of the pool with foreign allocations. *)
  let hold = ref [] in
  let pool_total = Page_alloc.total_pages env.pool_alloc in
  for _ = 1 to pool_total - 8 do
    match Page_alloc.alloc env.pool_alloc with
    | Some p -> hold := p :: !hold
    | None -> ()
  done;
  let data = Pattern.fill ~seed:9 ~len:(20 * 8192) in
  Fs.write_file fs "/pressure" data;
  check Alcotest.bytes "survives eviction" data (Fs.read_file fs "/pressure");
  check Alcotest.bool "evictions happened" true
    ((Block_cache.stats (Fs.data_cache fs)).Block_cache.evictions > 0)

(* Equivalence: absent crashes, every write policy must produce identical
   file-system contents — policies may only differ in WHEN bytes reach the
   disk, never in what a read returns. *)
let test_policy_equivalence () =
  List.iter
    (fun policy ->
      let env = make_env () in
      let fs = mount env policy in
      let mt =
        Rio_workload.Memtest.create
          { Rio_workload.Memtest.default_config with Rio_workload.Memtest.seed = 77 }
      in
      for _ = 1 to 120 do
        Rio_workload.Memtest.step mt ~fs ()
      done;
      check
        (Alcotest.list Alcotest.string)
        (Fs.policy_name policy ^ " matches the model")
        []
        (List.map Rio_workload.Memtest.discrepancy_to_string
           (Rio_workload.Memtest.compare_with_fs mt fs ~exempt:[])))
    Fs.all_policies

(* ---------------- block cache (direct) ---------------- *)

let cache_fixture () =
  let env = make_env () in
  let cache =
    Block_cache.create ~name:"test-cache" ~mem:env.mem ~disk:env.disk ~alloc:env.pool_alloc
      ~hooks:env.hooks
      ~sector_of_blkno:(fun b -> 2048 + (b * Fs_types.sectors_per_block))
      ~backed:true
  in
  (env, cache)

let test_cache_hit_miss () =
  let _, cache = cache_fixture () in
  let e1 = Block_cache.get cache ~blkno:5 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  let e2 = Block_cache.get cache ~blkno:5 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  check Alcotest.bool "same entry" true (e1 == e2);
  let s = Block_cache.stats cache in
  check Alcotest.int "one miss" 1 s.Block_cache.misses;
  check Alcotest.int "one hit" 1 s.Block_cache.hits

let test_cache_fill_from_disk () =
  let env, cache = cache_fixture () in
  let sector = 2048 + (3 * Fs_types.sectors_per_block) in
  Disk.poke env.disk ~sector (Bytes.of_string "from-disk!");
  let e = Block_cache.get cache ~blkno:3 ~owner:Fs_types.Meta ~fill:Block_cache.From_disk in
  check Alcotest.string "filled" "from-disk!"
    (Bytes.sub_string (Phys_mem.blit_out env.mem e.Block_cache.paddr ~len:10) 0 10)

let test_cache_write_back_roundtrip () =
  let env, cache = cache_fixture () in
  let e = Block_cache.get cache ~blkno:7 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  Phys_mem.blit_in env.mem e.Block_cache.paddr (Bytes.of_string "dirty page");
  Block_cache.mark_dirty cache e;
  check Alcotest.int "dirty counted" 1 (Block_cache.dirty_count cache);
  Block_cache.write_back cache e ~sync:true;
  check Alcotest.int "clean after write-back" 0 (Block_cache.dirty_count cache);
  let sector = 2048 + (7 * Fs_types.sectors_per_block) in
  check Alcotest.string "on disk" "dirty page"
    (Bytes.sub_string (Disk.peek env.disk ~sector) 0 10)

let test_cache_lru_eviction_prefers_clean () =
  let env, cache = cache_fixture () in
  (* Exhaust the pool so the next get must evict. *)
  let hold = ref [] in
  (try
     while true do
       match Page_alloc.alloc env.pool_alloc with
       | Some p -> hold := p :: !hold
       | None -> raise Exit
     done
   with Exit -> ());
  (* Give the cache three pages back. *)
  List.iteri (fun i p -> if i < 3 then Page_alloc.free env.pool_alloc p) !hold;
  let e0 = Block_cache.get cache ~blkno:0 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  let _e1 = Block_cache.get cache ~blkno:1 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  let _e2 = Block_cache.get cache ~blkno:2 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  Block_cache.mark_dirty cache e0 (* oldest but dirty: spared if possible *);
  let _e3 = Block_cache.get cache ~blkno:3 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  check Alcotest.bool "dirty block survived" true (Block_cache.lookup cache ~blkno:0 <> None);
  check Alcotest.bool "a clean one was evicted" true
    (Block_cache.lookup cache ~blkno:1 = None || Block_cache.lookup cache ~blkno:2 = None)

let test_cache_pinned_never_evicted () =
  let env, cache = cache_fixture () in
  let hold = ref [] in
  (try
     while true do
       match Page_alloc.alloc env.pool_alloc with
       | Some p -> hold := p :: !hold
       | None -> raise Exit
     done
   with Exit -> ());
  List.iteri (fun i p -> if i < 2 then Page_alloc.free env.pool_alloc p) !hold;
  let pinned = Block_cache.get cache ~blkno:0 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  pinned.Block_cache.pinned <- true;
  let _ = Block_cache.get cache ~blkno:1 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  let _ = Block_cache.get cache ~blkno:2 ~owner:Fs_types.Meta ~fill:Block_cache.Zero in
  check Alcotest.bool "pinned stays" true (Block_cache.lookup cache ~blkno:0 <> None)

let test_cache_note_map_hook () =
  let env = make_env () in
  let mapped = ref [] in
  env.hooks.Rio_fs.Hooks.note_map <-
    (fun ~paddr:_ ~blkno ~owner:_ ~valid:_ -> mapped := blkno :: !mapped);
  let cache =
    Block_cache.create ~name:"hooked" ~mem:env.mem ~disk:env.disk ~alloc:env.pool_alloc
      ~hooks:env.hooks
      ~sector_of_blkno:(fun b -> 2048 + (b * Fs_types.sectors_per_block))
      ~backed:true
  in
  ignore (Block_cache.get cache ~blkno:9 ~owner:Fs_types.Meta ~fill:Block_cache.Zero);
  check (Alcotest.list Alcotest.int) "announced" [ 9 ] !mapped

(* ---------------- journal ---------------- *)

let test_journal_replay () =
  let engine = Engine.create () in
  let disk = Disk.create ~engine ~costs:Costs.default ~sectors:4096 ~seed:1 () in
  let j = Journal.create ~disk ~start_sector:100 ~sectors:200 in
  Journal.append j ~sector:1000 (Bytes.of_string "metadata-update-1");
  Journal.append j ~sector:1001 (Bytes.of_string "metadata-update-2");
  Journal.flush_group j;
  Disk.drain disk;
  let applied = Journal.replay ~disk ~start_sector:100 ~sectors:200 in
  check Alcotest.int "both records" 2 applied;
  check Alcotest.string "home sector updated" "metadata-update-1"
    (Bytes.sub_string (Disk.peek disk ~sector:1000) 0 17)

let test_journal_ignores_garbage () =
  let engine = Engine.create () in
  let disk = Disk.create ~engine ~costs:Costs.default ~sectors:4096 ~seed:1 () in
  Disk.poke disk ~sector:100 (Bytes.of_string "not a journal record");
  check Alcotest.int "no records" 0 (Journal.replay ~disk ~start_sector:100 ~sectors:200)

let test_journal_crc_guards () =
  let engine = Engine.create () in
  let disk = Disk.create ~engine ~costs:Costs.default ~sectors:4096 ~seed:1 () in
  let j = Journal.create ~disk ~start_sector:100 ~sectors:200 in
  Journal.append j ~sector:1000 (Bytes.of_string "will be torn");
  Journal.flush_group j;
  Disk.drain disk;
  (* Corrupt a payload byte: the CRC must reject the record. *)
  let s = Disk.peek disk ~sector:100 in
  Bytes.set s 20 'X';
  Disk.poke disk ~sector:100 s;
  check Alcotest.int "rejected" 0 (Journal.replay ~disk ~start_sector:100 ~sectors:200)

(* ---------------- fsck ---------------- *)

let crashed_disk_with damage =
  let env = make_env () in
  let fs = mount env Fs.Wt_write in
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/a" (Bytes.of_string "aaa");
  Fs.write_file fs "/d/b" (Bytes.of_string "bbb");
  Fs.unmount fs;
  damage env.disk;
  env

let test_fsck_clean () =
  let env = crashed_disk_with (fun _ -> ()) in
  let report = Fsck.run ~disk:env.disk in
  check Alcotest.bool "clean" true (Fsck.clean report)

let test_fsck_undecodable_inode () =
  let env =
    crashed_disk_with (fun disk ->
        let sb = Ondisk.read_superblock (Disk.peek disk ~sector:0) in
        (* Trash inode 2's type tag. *)
        let s = Disk.peek disk ~sector:(Ondisk.inode_sector sb 2) in
        Bytes.set_int32_le s 0 99l;
        Disk.poke disk ~sector:(Ondisk.inode_sector sb 2) s)
  in
  let report = Fsck.run ~disk:env.disk in
  check Alcotest.bool "repaired" true (List.length report.Fsck.repairs > 0);
  check Alcotest.bool "recoverable" false report.Fsck.unrecoverable;
  (* And a second run is clean. *)
  check Alcotest.bool "idempotent" true (Fsck.clean (Fsck.run ~disk:env.disk))

let test_fsck_bad_block_pointer () =
  let env =
    crashed_disk_with (fun disk ->
        let sb = Ondisk.read_superblock (Disk.peek disk ~sector:0) in
        let sector = Ondisk.inode_sector sb 2 in
        let s = Disk.peek disk ~sector in
        let inode = Ondisk.read_inode s ~pos:0 in
        inode.Ondisk.blocks.(0) <- 999_999;
        Ondisk.write_inode inode s ~pos:0;
        Disk.poke disk ~sector s)
  in
  let report = Fsck.run ~disk:env.disk in
  check Alcotest.bool "pointer cleared" true
    (List.exists (fun r -> String.length r > 0) report.Fsck.repairs)

let test_fsck_corrupt_superblock () =
  let env = crashed_disk_with (fun disk -> Disk.poke disk ~sector:0 (Bytes.make 512 'X')) in
  let report = Fsck.run ~disk:env.disk in
  check Alcotest.bool "unrecoverable" true report.Fsck.unrecoverable

let test_fsck_bitmap_rebuild () =
  let env =
    crashed_disk_with (fun disk ->
        let sb = Ondisk.read_superblock (Disk.peek disk ~sector:0) in
        (* Claim a pile of blocks that nobody owns. *)
        Disk.poke disk ~sector:sb.Ondisk.bbitmap_start (Bytes.make 512 '\255'))
  in
  let report = Fsck.run ~disk:env.disk in
  check Alcotest.bool "bitmap corrected" true
    (List.exists
       (fun r -> String.length r >= 12 && String.sub r 0 12 = "block bitmap")
       report.Fsck.repairs)

let test_fsck_torn_directory_block () =
  (* A shadow-page flip torn mid-flight: the head sectors of /d's directory
     block (where its entries live) carry garbage while the tail survived.
     Fsck must repair without declaring the volume unrecoverable, and data
     outside the torn block must read back exactly. *)
  let env = make_env () in
  let fs = mount env Fs.Wt_write in
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/a" (Bytes.of_string "aaa");
  Fs.write_file fs "/d/b" (Bytes.of_string "bbb");
  Fs.write_file fs "/keep" (Bytes.of_string "keep me");
  Fs.unmount fs;
  let disk = env.disk in
  let read_inode_at ino =
    let sb = Ondisk.read_superblock (Disk.peek disk ~sector:0) in
    (sb, Ondisk.read_inode (Disk.peek disk ~sector:(Ondisk.inode_sector sb ino)) ~pos:0)
  in
  let sb, root = read_inode_at Fs_types.root_ino in
  let root_data = Bytes.create Fs_types.block_bytes in
  for i = 0 to Fs_types.sectors_per_block - 1 do
    Bytes.blit
      (Disk.peek disk ~sector:(Ondisk.data_sector sb (root.Ondisk.blocks.(0) - 1) + i))
      0 root_data (i * 512) 512
  done;
  let d_ino =
    match List.assoc_opt "d" (Ondisk.dir_unpack root_data ~pos:0 ~len:root.Ondisk.size) with
    | Some ino -> ino
    | None -> Alcotest.fail "/d missing from root directory"
  in
  let _, d = read_inode_at d_ino in
  let d_sector = Ondisk.data_sector sb (d.Ondisk.blocks.(0) - 1) in
  for i = 0 to (Fs_types.sectors_per_block / 2) - 1 do
    Disk.poke disk ~sector:(d_sector + i) (Bytes.make 512 '\xAB')
  done;
  let report = Fsck.run ~disk in
  check Alcotest.bool "recoverable" false report.Fsck.unrecoverable;
  check Alcotest.bool "repairs reported" true (List.length report.Fsck.repairs > 0);
  check Alcotest.bool "idempotent" true (Fsck.clean (Fsck.run ~disk));
  let fs2 = mount (make_env_on env) Fs.Ufs_default in
  ignore (Fs.readdir fs2 "/d");
  check Alcotest.bytes "untorn data intact" (Bytes.of_string "keep me") (Fs.read_file fs2 "/keep")

let test_fsck_preserves_good_data () =
  let env = crashed_disk_with (fun _ -> ()) in
  ignore (Fsck.run ~disk:env.disk);
  let fs2 = mount (make_env_on env) Fs.Ufs_default in
  check Alcotest.bytes "data intact" (Bytes.of_string "aaa") (Fs.read_file fs2 "/d/a")

let () =
  Alcotest.run "rio_fs"
    [
      ( "ondisk",
        [
          Alcotest.test_case "superblock roundtrip" `Quick test_superblock_roundtrip;
          Alcotest.test_case "superblock bad magic" `Quick test_superblock_bad_magic;
          Alcotest.test_case "inode roundtrip" `Quick test_inode_roundtrip;
          Alcotest.test_case "inode bad tag" `Quick test_inode_bad_tag;
          Alcotest.test_case "free inode" `Quick test_free_inode_detection;
          Alcotest.test_case "dir pack/unpack" `Quick test_dir_pack_unpack;
          Alcotest.test_case "dir corrupt name" `Quick test_dir_corrupt_name;
          qtest prop_dir_roundtrip;
        ] );
      ( "files",
        [
          Alcotest.test_case "create/read/write" `Quick test_create_read_write;
          Alcotest.test_case "multi-block" `Quick test_multi_block_file;
          Alcotest.test_case "pwrite/pread" `Quick test_pwrite_pread;
          Alcotest.test_case "holes" `Quick test_hole_reads_zero;
          Alcotest.test_case "short read" `Quick test_short_read_at_eof;
          Alcotest.test_case "cursor" `Quick test_cursor_semantics;
          Alcotest.test_case "create truncates" `Quick test_create_truncates;
          Alcotest.test_case "max file size" `Quick test_max_file_size;
          Alcotest.test_case "missing file" `Quick test_missing_file;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "mkdir/readdir" `Quick test_mkdir_readdir;
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "rmdir nonempty" `Quick test_rmdir_refuses_nonempty;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "rename replaces" `Quick test_rename_replaces;
          Alcotest.test_case "stat" `Quick test_stat;
          Alcotest.test_case "many files per dir" `Quick test_many_files_in_dir;
        ] );
      ("statfs", [ Alcotest.test_case "accounting" `Quick test_statfs ]);
      ( "symlinks",
        [
          Alcotest.test_case "follow" `Quick test_symlink_follow;
          Alcotest.test_case "relative target" `Quick test_symlink_relative;
          Alcotest.test_case "directory link" `Quick test_symlink_to_directory;
          Alcotest.test_case "loop detected" `Quick test_symlink_loop_detected;
          Alcotest.test_case "dangling" `Quick test_symlink_dangling;
          Alcotest.test_case "unlink removes link" `Quick test_symlink_unlink_removes_link_only;
          Alcotest.test_case "survives remount" `Quick test_symlink_survives_remount;
        ] );
      ( "hard_links",
        [
          Alcotest.test_case "shares content" `Quick test_link_shares_content;
          Alcotest.test_case "unlink one of two" `Quick test_unlink_one_of_two;
          Alcotest.test_case "no dir links" `Quick test_link_to_directory_rejected;
          Alcotest.test_case "survives remount" `Quick test_links_survive_remount;
          Alcotest.test_case "fsck corrects nlink" `Quick test_fsck_corrects_nlink;
        ] );
      ( "truncate",
        [
          Alcotest.test_case "shrink" `Quick test_truncate_shrink;
          Alcotest.test_case "extend is hole" `Quick test_truncate_extend_is_hole;
          Alcotest.test_case "no resurrection" `Quick test_truncate_then_extend_zeros;
          Alcotest.test_case "frees blocks" `Quick test_truncate_frees_blocks;
        ] );
      ( "policies",
        [
          Alcotest.test_case "persistence" `Quick test_persistence_after_unmount;
          Alcotest.test_case "MFS no disk" `Quick test_mfs_never_touches_disk;
          Alcotest.test_case "Rio no reliability writes" `Quick test_rio_no_reliability_writes;
          Alcotest.test_case "wt-write synchronous" `Quick test_wt_write_synchronous;
          Alcotest.test_case "delayed until daemon" `Quick test_delayed_writes_nothing_until_daemon;
          Alcotest.test_case "daemon schedule" `Quick test_update_daemon_fires_on_schedule;
          Alcotest.test_case "crash loses delayed" `Quick test_crash_loses_delayed_data;
          Alcotest.test_case "rio-idle trickles" `Quick test_rio_idle_daemon_trickles;
          Alcotest.test_case "wt survives crash" `Quick test_wt_write_survives_crash;
          Alcotest.test_case "eviction" `Quick test_eviction_under_pressure;
          Alcotest.test_case "policy equivalence" `Slow test_policy_equivalence;
        ] );
      ( "block_cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "fill from disk" `Quick test_cache_fill_from_disk;
          Alcotest.test_case "write-back roundtrip" `Quick test_cache_write_back_roundtrip;
          Alcotest.test_case "LRU prefers clean" `Quick test_cache_lru_eviction_prefers_clean;
          Alcotest.test_case "pinned never evicted" `Quick test_cache_pinned_never_evicted;
          Alcotest.test_case "note_map hook" `Quick test_cache_note_map_hook;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay" `Quick test_journal_replay;
          Alcotest.test_case "garbage ignored" `Quick test_journal_ignores_garbage;
          Alcotest.test_case "crc guards" `Quick test_journal_crc_guards;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "clean volume" `Quick test_fsck_clean;
          Alcotest.test_case "undecodable inode" `Quick test_fsck_undecodable_inode;
          Alcotest.test_case "bad block pointer" `Quick test_fsck_bad_block_pointer;
          Alcotest.test_case "corrupt superblock" `Quick test_fsck_corrupt_superblock;
          Alcotest.test_case "bitmap rebuild" `Quick test_fsck_bitmap_rebuild;
          Alcotest.test_case "torn directory block" `Quick test_fsck_torn_directory_block;
          Alcotest.test_case "preserves good data" `Quick test_fsck_preserves_good_data;
        ] );
    ]
