bin/riobench.ml: Arg Cmd Cmdliner Format List Printf Rio_fault Rio_harness Rio_util Rio_workload Term
