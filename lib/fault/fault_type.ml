type t =
  | Kernel_text
  | Kernel_heap
  | Kernel_stack
  | Destination_reg
  | Source_reg
  | Delete_branch
  | Delete_instruction
  | Initialization
  | Pointer
  | Allocation
  | Copy_overrun
  | Off_by_one
  | Synchronization

let all =
  [
    Kernel_text;
    Kernel_heap;
    Kernel_stack;
    Destination_reg;
    Source_reg;
    Delete_branch;
    Delete_instruction;
    Initialization;
    Pointer;
    Allocation;
    Copy_overrun;
    Off_by_one;
    Synchronization;
  ]

(* Stable 0-based Table 1 index. Seed derivation depends on these values
   (Reliability.cell_seed), so they must never be renumbered — append new
   fault types at the end. *)
let id = function
  | Kernel_text -> 0
  | Kernel_heap -> 1
  | Kernel_stack -> 2
  | Destination_reg -> 3
  | Source_reg -> 4
  | Delete_branch -> 5
  | Delete_instruction -> 6
  | Initialization -> 7
  | Pointer -> 8
  | Allocation -> 9
  | Copy_overrun -> 10
  | Off_by_one -> 11
  | Synchronization -> 12

type category = Bit_flip | Low_level | High_level

let category = function
  | Kernel_text | Kernel_heap | Kernel_stack -> Bit_flip
  | Destination_reg | Source_reg | Delete_branch | Delete_instruction -> Low_level
  | Initialization | Pointer | Allocation | Copy_overrun | Off_by_one | Synchronization ->
    High_level

let name = function
  | Kernel_text -> "kernel text"
  | Kernel_heap -> "kernel heap"
  | Kernel_stack -> "kernel stack"
  | Destination_reg -> "destination reg."
  | Source_reg -> "source reg."
  | Delete_branch -> "delete branch"
  | Delete_instruction -> "delete random inst."
  | Initialization -> "initialization"
  | Pointer -> "pointer"
  | Allocation -> "allocation"
  | Copy_overrun -> "copy overrun"
  | Off_by_one -> "off-by-one"
  | Synchronization -> "synchronization"

let of_name s = List.find_opt (fun t -> name t = s) all

(* Filename- and JSON-friendly identifier. *)
let slug = function
  | Kernel_text -> "kernel-text"
  | Kernel_heap -> "kernel-heap"
  | Kernel_stack -> "kernel-stack"
  | Destination_reg -> "destination-reg"
  | Source_reg -> "source-reg"
  | Delete_branch -> "delete-branch"
  | Delete_instruction -> "delete-instruction"
  | Initialization -> "initialization"
  | Pointer -> "pointer"
  | Allocation -> "allocation"
  | Copy_overrun -> "copy-overrun"
  | Off_by_one -> "off-by-one"
  | Synchronization -> "synchronization"

let of_slug s = List.find_opt (fun t -> slug t = s) all

let category_name = function
  | Bit_flip -> "bit flips"
  | Low_level -> "low-level software"
  | High_level -> "high-level software"
