lib/fs/fs.mli: Block_cache Fs_types Hooks Ondisk Rio_disk Rio_mem Rio_sim
