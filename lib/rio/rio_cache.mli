(** The Rio file cache: hook-level integration of registry, protection,
    checksums, and shadow-paged metadata atomicity.

    Create one of these against a mounted-to-be file system's {!Rio_fs.Hooks}
    record and every file-cache page becomes registered, checksummed, and
    (when protection is on) write-protected except inside legitimate write
    windows — §2.1–§2.3 of the paper. *)

type t

type stats = {
  checksum_updates : int;
  shadow_updates : int;
  protection_toggles : int;
  protection_traps : int;
      (** Write-protection faults the MMU raised — illegal stores that Rio's
          protection actually stopped. *)
  registered_pages : int;
  registry_updates : int;
  checksum_mismatches : int;
      (** Cumulative mismatches found by {!verify_all_checksums}. *)
}

val create :
  ?shadow:bool ->
  ?registry:bool ->
  mem:Rio_mem.Phys_mem.t ->
  layout:Rio_mem.Layout.t ->
  mmu:Rio_vm.Mmu.t ->
  engine:Rio_sim.Engine.t ->
  costs:Rio_sim.Costs.t ->
  hooks:Rio_fs.Hooks.t ->
  pool_alloc:Rio_mem.Page_alloc.t ->
  protection:bool ->
  dev:int ->
  unit ->
  t
(** Zeroes and takes ownership of the registry region, reserves a shadow
    page from the pool, installs the five instrumentation hooks (leaving
    [copy_in]/[copy_out] — the kernel's — untouched), and, when
    [protection] is on, maps KSEG through the TLB and write-protects the
    registry itself.

    The two ablation knobs exist for {!Rio_check}'s self-test (the checker
    must catch known-unsafe configurations): [shadow = false] disables the
    §2.3 shadow copy, so metadata mutations run in place and a mid-update
    crash can leave (or tear) a half-written page; [registry = false]
    disables registry maintenance entirely, so a warm reboot finds nothing
    to restore. Both default to [true] — the real Rio. *)

val registry : t -> Registry.t

val protect : t -> Protect.t

val protection_enabled : t -> bool

val stats : t -> stats

val verify_all_checksums : t -> int
(** Recompute and compare every registered buffer's checksum right now;
    returns the number of mismatches (0 in a healthy system — used by
    tests and the online scrubber example). *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the registry index, protection-toggle counter, shadow state,
    and the cost counters. Registry slot bytes rewind with the memory
    snapshot; PTE bits with the MMU checkpoint. *)

val restore : t -> checkpoint -> unit

