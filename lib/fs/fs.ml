open Fs_types
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Phys_mem = Rio_mem.Phys_mem
module Page_alloc = Rio_mem.Page_alloc
module Disk = Rio_disk.Disk

type policy =
  | Mfs
  | Ufs_default
  | Ufs_delayed
  | Wt_close
  | Wt_write
  | Advfs
  | Rio_policy
  | Rio_idle

let policy_name = function
  | Mfs -> "memory-fs"
  | Ufs_default -> "ufs"
  | Ufs_delayed -> "ufs-delayed"
  | Wt_close -> "wt-close"
  | Wt_write -> "wt-write"
  | Advfs -> "advfs"
  | Rio_policy -> "rio"
  | Rio_idle -> "rio-idle"

let all_policies =
  [ Mfs; Ufs_delayed; Advfs; Ufs_default; Wt_close; Wt_write; Rio_policy; Rio_idle ]

type geometry = {
  total_sectors : int;
  inode_count : int;
  swap_sectors : int;
  journal_sectors : int;
}

let align16 n = (n + 15) / 16 * 16

let default_geometry ~disk_sectors ~mem_bytes =
  let swap_sectors = align16 ((mem_bytes + 511) / 512) in
  let journal_sectors = align16 2048 in
  (* One inode per data block: source trees are mostly small files. *)
  let data_guess = max 1 ((disk_sectors - swap_sectors - journal_sectors) / sectors_per_block) in
  { total_sectors = disk_sectors; inode_count = max 64 data_guess; swap_sectors;
    journal_sectors }

(* Compute the full on-disk layout from a geometry. *)
let layout_of_geometry g =
  let bitmap_sectors_for bits = (bits + (8 * 512) - 1) / (8 * 512) in
  let swap_start = 16 in
  let journal_start = swap_start + g.swap_sectors in
  let ibitmap_start = journal_start + g.journal_sectors in
  let ibitmap_sectors = bitmap_sectors_for g.inode_count in
  let bbitmap_start = ibitmap_start + ibitmap_sectors in
  (* Pessimistic bitmap sizing: every remaining sector could be data. *)
  let bbitmap_sectors = bitmap_sectors_for (g.total_sectors / sectors_per_block) in
  let itable_start = bbitmap_start + bbitmap_sectors in
  let data_start = align16 (itable_start + g.inode_count) in
  if data_start >= g.total_sectors then err "mkfs: disk too small for geometry";
  let data_blocks = (g.total_sectors - data_start) / sectors_per_block in
  if data_blocks < 1 then err "mkfs: no room for data blocks";
  {
    Ondisk.total_sectors = g.total_sectors;
    inode_count = g.inode_count;
    swap_start;
    swap_sectors = g.swap_sectors;
    journal_start;
    journal_sectors = g.journal_sectors;
    ibitmap_start;
    ibitmap_sectors;
    bbitmap_start;
    bbitmap_sectors;
    itable_start;
    data_start;
    data_blocks;
    clean = true;
  }

let mkfs ~disk g =
  let sb = layout_of_geometry g in
  if sb.Ondisk.total_sectors > Disk.capacity_sectors disk then
    err "mkfs: geometry exceeds disk capacity";
  Disk.poke disk ~sector:Ondisk.superblock_sector (Ondisk.write_superblock sb);
  let zero = Bytes.make Disk.sector_bytes '\000' in
  for s = sb.Ondisk.ibitmap_start to sb.Ondisk.itable_start + sb.Ondisk.inode_count - 1 do
    Disk.poke disk ~sector:s zero
  done;
  (* Root: inode 1, an empty directory. *)
  let ibm = Bytes.make Disk.sector_bytes '\000' in
  Bytes.set ibm 0 '\001';
  Disk.poke disk ~sector:sb.Ondisk.ibitmap_start ibm;
  let root = Ondisk.empty_inode Directory in
  root.Ondisk.nlink <- 1;
  let img = Bytes.make Ondisk.inode_bytes '\000' in
  Ondisk.write_inode root img ~pos:0;
  Disk.poke disk ~sector:(Ondisk.inode_sector sb root_ino) img

(* ------------------------------------------------------------------ *)

type fd = int

type fd_state = {
  fd_ino : int;
  mutable pos : int;
  mutable last_end : int; (* end offset of the previous write (sequentiality) *)
  mutable pending : int; (* dirty bytes since the last cluster flush *)
}

type stat = {
  st_ino : int;
  st_ftype : Fs_types.ftype;
  st_size : int;
  st_nlink : int;
  st_mtime : int;
}

type meta_class = Class_inode | Class_dir | Class_bitmap | Class_super

(* One decoded directory block: the entries in on-disk order, the bytes
   they occupy (the append offset for new entries), and a name→inode
   index over them. Validated against the (paddr, page version) of the
   cached page — versions are monotonic and never reset, so a hit can
   only mean byte-identical content. Purely a host-side decode cache:
   simulated time and on-page bytes are untouched. *)
type dir_block = {
  db_paddr : int;
  db_ver : int;
  db_entries : (string * int) list;
  db_used : int;
  db_index : (string, int) Hashtbl.t;
}

type t = {
  engine : Engine.t;
  costs : Costs.t;
  mem : Phys_mem.t;
  disk : Disk.t;
  policy : policy;
  hooks : Hooks.t;
  sb : Ondisk.superblock;
  meta : Block_cache.t;
  data : Block_cache.t;
  journal : Journal.t option;
  wb : Write_behind.t option;
  icache : (int, Ondisk.inode) Hashtbl.t;
  dir_cache : (int, dir_block) Hashtbl.t;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  mutable ialloc_hint : int;
  mutable balloc_hint : int;
  (* Free-slot counters shadowing the allocation bitmaps: exhaustion
     errors fire before any bitmap scan, and the scans themselves are
     guaranteed to terminate on a free slot. *)
  mutable free_inodes : int;
  mutable free_blocks : int;
  mutable daemon : Engine.handle option;
  mutable daemon_due : int; (* absolute due time of the pending daemon pass *)
  mutable alive : bool;
}

let engine t = t.engine
let policy t = t.policy
let hooks t = t.hooks
let superblock t = t.sb
let disk t = t.disk
let meta_cache t = t.meta
let data_cache t = t.data
let write_behind t = t.wb

let charge t us = Engine.advance_by t.engine us
let charge_syscall t = charge t t.costs.Costs.syscall_overhead
let charge_copy t bytes = charge t (Costs.copy_time t.costs bytes)

(* ---------------- metadata access ---------------- *)

let sector_page_base sector = sector - (sector mod sectors_per_block)

let meta_get t ~sector ~pin =
  let base = sector_page_base sector in
  let entry = Block_cache.get t.meta ~blkno:base ~owner:Meta ~fill:Block_cache.From_disk in
  if pin then entry.Block_cache.pinned <- true;
  entry

(* Address of [sector]'s bytes inside its cached page. *)
let meta_addr (entry : Block_cache.entry) sector =
  entry.Block_cache.paddr + ((sector mod sectors_per_block) * Disk.sector_bytes)

let journal_payload t ~sector ~len =
  let entry = meta_get t ~sector ~pin:false in
  Phys_mem.blit_out t.mem (meta_addr entry sector) ~len

(* Apply the policy's durability rule after a metadata mutation covering
   [len] bytes starting at [sector] (within one page). *)
let policy_meta_write t ~cls ~sector ~len =
  let entry = meta_get t ~sector ~pin:false in
  match t.policy with
  | Mfs | Rio_policy | Rio_idle | Ufs_delayed -> ()
  | Ufs_default | Wt_close | Wt_write ->
    (match cls with
    | Class_inode | Class_dir ->
      (* The synchronous metadata updates that dominate UFS's cost. *)
      Block_cache.write_back t.meta entry ~sync:true
    | Class_bitmap | Class_super -> ())
  | Advfs ->
    (match (t.journal, cls) with
    | Some j, (Class_inode | Class_dir | Class_super) ->
      Journal.append j ~sector (journal_payload t ~sector ~len)
    | Some _, Class_bitmap | None, _ -> ())

(* Mutate [len] metadata bytes at [sector]. [mutate] receives the physical
   address of the sector's bytes. *)
let meta_update t ~cls ~sector ~len mutate =
  let entry = meta_get t ~sector ~pin:(cls = Class_bitmap || cls = Class_super) in
  let addr = meta_addr entry sector in
  t.hooks.Hooks.open_write ~paddr:entry.Block_cache.paddr;
  (* Only critical metadata (inodes, directories, the superblock) gets the
     atomicity wrapper; allocation bitmaps are rebuilt by fsck anyway. *)
  (match cls with
  | Class_inode | Class_dir | Class_super ->
    t.hooks.Hooks.metadata_update ~paddr:entry.Block_cache.paddr (fun () -> mutate addr)
  | Class_bitmap -> mutate addr);
  t.hooks.Hooks.close_write ~paddr:entry.Block_cache.paddr;
  Block_cache.mark_dirty t.meta entry;
  policy_meta_write t ~cls ~sector ~len

(* ---------------- bitmaps ---------------- *)

let bitmap_sector ~start idx = start + (idx / (8 * 512))

let bitmap_get t ~start idx =
  let sector = bitmap_sector ~start idx in
  let entry = meta_get t ~sector ~pin:true in
  let byte = Phys_mem.read_u8 t.mem (meta_addr entry sector + (idx / 8 mod 512)) in
  byte land (1 lsl (idx mod 8)) <> 0

let bitmap_set t ~start idx v =
  let sector = bitmap_sector ~start idx in
  meta_update t ~cls:Class_bitmap ~sector ~len:Disk.sector_bytes (fun addr ->
      let pos = addr + (idx / 8 mod 512) in
      let byte = Phys_mem.read_u8 t.mem pos in
      let mask = 1 lsl (idx mod 8) in
      Phys_mem.write_u8 t.mem pos (if v then byte lor mask else byte land lnot mask))

(* The free counter fails the exhausted case immediately; with at least
   one free slot the wrapped scan from the hint must terminate, so the
   [tried] guard of the old code is no longer load-bearing (kept as a
   defensive stop against a counter/bitmap mismatch). *)
let ialloc t =
  if t.free_inodes = 0 then err "out of inodes";
  let n = t.sb.Ondisk.inode_count in
  let rec scan tried idx =
    if tried >= n then err "out of inodes"
    else if not (bitmap_get t ~start:t.sb.Ondisk.ibitmap_start idx) then begin
      bitmap_set t ~start:t.sb.Ondisk.ibitmap_start idx true;
      t.ialloc_hint <- (idx + 1) mod n;
      t.free_inodes <- t.free_inodes - 1;
      idx + 1
    end
    else scan (tried + 1) ((idx + 1) mod n)
  in
  scan 0 t.ialloc_hint

let ifree t ino =
  bitmap_set t ~start:t.sb.Ondisk.ibitmap_start (ino - 1) false;
  t.free_inodes <- t.free_inodes + 1

let balloc t =
  if t.free_blocks = 0 then err "disk full: no free data blocks";
  let n = t.sb.Ondisk.data_blocks in
  let rec scan tried idx =
    if tried >= n then err "disk full: no free data blocks"
    else if not (bitmap_get t ~start:t.sb.Ondisk.bbitmap_start idx) then begin
      bitmap_set t ~start:t.sb.Ondisk.bbitmap_start idx true;
      t.balloc_hint <- (idx + 1) mod n;
      t.free_blocks <- t.free_blocks - 1;
      idx
    end
    else scan (tried + 1) ((idx + 1) mod n)
  in
  scan 0 t.balloc_hint

let bfree t blkno =
  bitmap_set t ~start:t.sb.Ondisk.bbitmap_start blkno false;
  t.free_blocks <- t.free_blocks + 1

(* ---------------- inodes ---------------- *)

let iget t ino =
  match Hashtbl.find_opt t.icache ino with
  | Some inode -> inode
  | None ->
    let sector = Ondisk.inode_sector t.sb ino in
    let entry = meta_get t ~sector ~pin:false in
    let raw = Phys_mem.blit_out t.mem (meta_addr entry sector) ~len:Ondisk.inode_bytes in
    if Ondisk.inode_is_free raw ~pos:0 then err "inode %d is free" ino;
    let inode = Ondisk.read_inode raw ~pos:0 in
    Hashtbl.replace t.icache ino inode;
    inode

(* Serialize an in-core inode into its metadata page. [structural] selects
   the synchronous-update class; pure timestamp/size bumps are delayed even
   under UFS. *)
let iupdate t ino inode ~structural =
  let sector = Ondisk.inode_sector t.sb ino in
  let cls = if structural then Class_inode else Class_bitmap in
  meta_update t ~cls ~sector ~len:Ondisk.inode_bytes (fun addr ->
      let img = Bytes.make Ondisk.inode_bytes '\000' in
      Ondisk.write_inode inode img ~pos:0;
      Phys_mem.blit_in t.mem addr img)

let iclear t ino =
  (* Scrubbing the freed inode slot is deferred like the bitmaps; the
     directory-entry removal is the synchronous commit point of a delete. *)
  let sector = Ondisk.inode_sector t.sb ino in
  Hashtbl.remove t.icache ino;
  meta_update t ~cls:Class_bitmap ~sector ~len:Ondisk.inode_bytes (fun addr ->
      Phys_mem.blit_in t.mem addr (Ondisk.free_inode_image ()))

(* ---------------- directories ---------------- *)

(* Directory data blocks live in the data area but are cached in the buffer
   cache (keyed by absolute sector base), as on the paper's platform. *)
let dir_block_sector t blkno = Ondisk.data_sector t.sb blkno

let dir_index_of entries =
  let tbl = Hashtbl.create (max 16 (List.length entries * 2)) in
  List.iter (fun (name, ino) -> Hashtbl.replace tbl name ino) entries;
  tbl

let dir_used_of entries =
  List.fold_left (fun acc (n, _) -> acc + Ondisk.dir_entry_bytes n) 0 entries

(* Install decoded block state in the cache against the page's current
   version — called right after a mutation so the next read pays neither
   an 8 KB decode nor an index rebuild beyond the one done here. *)
let dir_cache_put t blkno ~paddr entries =
  let ver = Phys_mem.page_version t.mem (paddr / Phys_mem.page_size) in
  Hashtbl.replace t.dir_cache blkno
    {
      db_paddr = paddr;
      db_ver = ver;
      db_entries = entries;
      db_used = dir_used_of entries;
      db_index = dir_index_of entries;
    }

let dir_read_block t blkno =
  let sector = dir_block_sector t blkno in
  let entry = meta_get t ~sector ~pin:false in
  let paddr = entry.Block_cache.paddr in
  let ver = Phys_mem.page_version t.mem (paddr / Phys_mem.page_size) in
  match Hashtbl.find_opt t.dir_cache blkno with
  | Some db when db.db_paddr = paddr && db.db_ver = ver -> db
  | _ ->
    let raw = Phys_mem.blit_out t.mem paddr ~len:block_bytes in
    let entries = Ondisk.dir_unpack raw ~pos:0 ~len:block_bytes in
    let db =
      {
        db_paddr = paddr;
        db_ver = ver;
        db_entries = entries;
        db_used = dir_used_of entries;
        db_index = dir_index_of entries;
      }
    in
    Hashtbl.replace t.dir_cache blkno db;
    db

(* Full repack: the removal/compaction path. The insert path appends in
   place instead (see [dir_append_block]). *)
let dir_write_block t blkno entries =
  let sector = dir_block_sector t blkno in
  let paddr = ref 0 in
  meta_update t ~cls:Class_dir ~sector ~len:block_bytes (fun addr ->
      paddr := addr;
      Phys_mem.blit_in t.mem addr (Ondisk.dir_pack entries));
  dir_cache_put t blkno ~paddr:!paddr entries

(* Append one entry at the block's current end offset: [u32 ino][u8 len]
   [name]. The bytes past the last entry are zero (freshly allocated
   blocks are zero-filled and the repack path zeroes the tail), so the
   zero-inode terminator after the appended entry is already in place —
   one small write instead of a full read-decode-append-rewrite cycle. *)
let dir_append_block t blkno db name ino =
  let sector = dir_block_sector t blkno in
  let elen = Ondisk.dir_entry_bytes name in
  let img = Bytes.make elen '\000' in
  Bytes.set_int32_le img 0 (Int32.of_int ino);
  Bytes.set img 4 (Char.chr (String.length name));
  Bytes.blit_string name 0 img 5 (String.length name);
  let paddr = ref 0 in
  meta_update t ~cls:Class_dir ~sector ~len:block_bytes (fun addr ->
      paddr := addr;
      Phys_mem.blit_in t.mem (addr + db.db_used) img);
  (* Incremental cache refresh: extend the existing index in place. *)
  Hashtbl.replace db.db_index name ino;
  let ver = Phys_mem.page_version t.mem (!paddr / Phys_mem.page_size) in
  Hashtbl.replace t.dir_cache blkno
    {
      db_paddr = !paddr;
      db_ver = ver;
      db_entries = db.db_entries @ [ (name, ino) ];
      db_used = db.db_used + elen;
      db_index = db.db_index;
    }

let dir_blocks inode =
  let nblocks = (inode.Ondisk.size + block_bytes - 1) / block_bytes in
  let rec collect bi acc =
    if bi >= nblocks || bi >= ndirect then List.rev acc
    else begin
      let ptr = inode.Ondisk.blocks.(bi) in
      collect (bi + 1) (if ptr = 0 then acc else (bi, ptr - 1) :: acc)
    end
  in
  collect 0 []

let dir_entries t inode =
  List.concat_map (fun (_, blkno) -> (dir_read_block t blkno).db_entries) (dir_blocks inode)

let dir_find t inode name =
  let rec scan = function
    | [] -> None
    | (_, blkno) :: rest ->
      (match Hashtbl.find_opt (dir_read_block t blkno).db_index name with
      | Some ino -> Some ino
      | None -> scan rest)
  in
  scan (dir_blocks inode)

let dir_add t dirino name ino =
  let dir = iget t dirino in
  let elen = Ondisk.dir_entry_bytes name in
  let rec place = function
    | (_, blkno) :: rest ->
      let db = dir_read_block t blkno in
      if db.db_used + elen <= Ondisk.dir_block_capacity then
        dir_append_block t blkno db name ino
      else place rest
    | [] ->
      (* Grow the directory by one block. *)
      let bi = dir.Ondisk.size / block_bytes in
      if bi >= ndirect then err "directory full";
      let blkno = balloc t in
      dir.Ondisk.blocks.(bi) <- blkno + 1;
      dir.Ondisk.size <- dir.Ondisk.size + block_bytes;
      dir.Ondisk.mtime <- Engine.now t.engine;
      iupdate t dirino dir ~structural:true;
      dir_write_block t blkno [ (name, ino) ]
  in
  place (dir_blocks dir)

let dir_remove t dirino name =
  let dir = iget t dirino in
  let rec scan = function
    | [] -> err "no such directory entry %S" name
    | (_, blkno) :: rest ->
      let db = dir_read_block t blkno in
      if Hashtbl.mem db.db_index name then
        dir_write_block t blkno (List.remove_assoc name db.db_entries)
      else scan rest
  in
  scan (dir_blocks dir)

(* ---------------- data blocks ---------------- *)

let data_owner ino bi = Data { ino; offset = bi * block_bytes }

(* Fetch the cache page for file block [bi], allocating a disk block if
   [alloc]. Returns [None] for a hole when not allocating. *)
let data_block t ino inode bi ~alloc ~fill =
  if bi >= ndirect then err "file too large (inode %d)" ino;
  let ptr = inode.Ondisk.blocks.(bi) in
  if ptr = 0 then begin
    if not alloc then None
    else begin
      let blkno = balloc t in
      inode.Ondisk.blocks.(bi) <- blkno + 1;
      Some
        (Block_cache.get t.data ~blkno ~owner:(data_owner ino bi) ~fill:Block_cache.Zero, true)
    end
  end
  else
    Some (Block_cache.get t.data ~blkno:(ptr - 1) ~owner:(data_owner ino bi) ~fill, false)

let flush_file_data t ino ~sync =
  let only (e : Block_cache.entry) =
    match e.Block_cache.owner with Data d -> d.ino = ino | Meta -> false
  in
  ignore (Block_cache.flush_dirty t.data ~sync ~only ())

let fsync_inode t ino =
  let sector = Ondisk.inode_sector t.sb ino in
  let entry = meta_get t ~sector ~pin:false in
  if entry.Block_cache.dirty then Block_cache.write_back t.meta entry ~sync:true

let read_ino_data t ino ~offset ~len =
  let inode = iget t ino in
  let size = inode.Ondisk.size in
  let len = max 0 (min len (size - offset)) in
  let out = Bytes.make len '\000' in
  if len > 0 then begin
    charge_copy t len;
    let pos = ref 0 in
    while !pos < len do
      let off = offset + !pos in
      let bi = off / block_bytes in
      let in_block = off mod block_bytes in
      let chunk = min (len - !pos) (block_bytes - in_block) in
      (match data_block t ino inode bi ~alloc:false ~fill:Block_cache.From_disk with
      | Some (entry, _) ->
        t.hooks.Hooks.copy_out ~paddr:(entry.Block_cache.paddr + in_block) out !pos ~len:chunk
      | None -> () (* hole reads as zeros *));
      pos := !pos + chunk
    done
  end;
  out

(* ---------------- path resolution ---------------- *)

let split_path path =
  List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let max_symlink_depth = 8

(* Walk path components from [ino], following symbolic links (absolute
   targets restart at the root; relative targets resolve against the
   symlink's directory). *)
let rec namei_walk t ~path ~depth ino components =
  match components with
  | [] -> ino
  | name :: rest ->
    let inode = iget t ino in
    if inode.Ondisk.ftype <> Directory then err "%s: not a directory" path
    else begin
      match dir_find t inode name with
      | None -> err "%s: no such file or directory" path
      | Some child ->
        let cinode = iget t child in
        (match cinode.Ondisk.ftype with
        | Symlink ->
          if depth >= max_symlink_depth then
            err "%s: too many levels of symbolic links" path;
          let target =
            Bytes.to_string (read_ino_data t child ~offset:0 ~len:cinode.Ondisk.size)
          in
          charge t t.costs.Costs.namei_cost;
          let tcomps = split_path target in
          let start =
            if String.length target > 0 && target.[0] = '/' then root_ino else ino
          in
          namei_walk t ~path ~depth:(depth + 1) start (tcomps @ rest)
        | Regular | Directory -> namei_walk t ~path ~depth child rest)
    end

let namei t path =
  let components = split_path path in
  charge t (t.costs.Costs.namei_cost * max 1 (List.length components));
  namei_walk t ~path ~depth:0 root_ino components

let namei_parent t path =
  match List.rev (split_path path) with
  | [] -> err "%s: invalid path" path
  | base :: rev_dir ->
    let dir_path = "/" ^ String.concat "/" (List.rev rev_dir) in
    (namei t dir_path, base)

(* ---------------- fd bookkeeping ---------------- *)

let get_fd t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some state -> state
  | None -> err "bad file descriptor %d" fd

let fresh_fd t ino =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd { fd_ino = ino; pos = 0; last_end = 0; pending = 0 };
  fd

(* ---------------- update daemon ---------------- *)

(* Flush the caches' dirty blocks through the write-behind pipeline when
   one is mounted — staging, adjacent-sector coalescing, group commit,
   with every ordering point announced via [Hooks.wb_event] — and fall
   back to direct asynchronous write-backs otherwise. Returns the number
   of blocks written back. *)
let wb_flush_caches ?(meta = true) t =
  match t.wb with
  | Some wb ->
    let via = Write_behind.stage wb in
    let n = Block_cache.flush_dirty ~via t.data ~sync:false () in
    let n = if meta then n + Block_cache.flush_dirty ~via t.meta ~sync:false () else n in
    ignore (Write_behind.flush wb);
    n
  | None ->
    let n = Block_cache.flush_dirty t.data ~sync:false () in
    if meta then n + Block_cache.flush_dirty t.meta ~sync:false () else n

let update_daemon_flush t =
  match t.policy with
  | Mfs | Rio_policy -> 0
  | Ufs_default | Ufs_delayed | Wt_close | Wt_write | Rio_idle ->
    (* Rio_idle: the paper's future-work variant — reliability does not
       need these writes (memory is safe), but trickling dirty blocks out
       during idle periods keeps later evictions from stalling. *)
    wb_flush_caches t
  | Advfs ->
    (* Metadata goes through the journal; only file data rides the
       write-behind pipeline. The journal checkpoint's own metadata flush
       stays direct (it must land at the blocks' home sectors). *)
    let n = wb_flush_caches ~meta:false t in
    (match t.journal with Some j -> Journal.checkpoint j | None -> ());
    n

let rec schedule_daemon_at t ~time =
  t.daemon_due <- time;
  t.daemon <-
    Some
      (Engine.schedule_at t.engine ~time (fun _ ->
           if t.alive then begin
             ignore (update_daemon_flush t);
             schedule_daemon t
           end))

and schedule_daemon t =
  schedule_daemon_at t ~time:(Engine.now t.engine + t.costs.Costs.update_interval)

(* ---------------- mount / unmount / crash ---------------- *)

let mount ~engine ~costs ~mem ~meta_alloc ~pool_alloc ~disk ~policy ~hooks ~wb_unordered =
  let sb =
    let raw = Disk.read_sync disk ~sector:Ondisk.superblock_sector ~count:1 in
    Ondisk.read_superblock raw
  in
  let backed = policy <> Mfs in
  let meta =
    Block_cache.create ~name:"buffer-cache" ~mem ~disk ~alloc:meta_alloc ~hooks
      ~sector_of_blkno:(fun base -> base)
      ~backed
  in
  let data =
    Block_cache.create ~name:"ubc" ~mem ~disk ~alloc:pool_alloc ~hooks
      ~sector_of_blkno:(fun blkno -> Ondisk.data_sector sb blkno)
      ~backed
  in
  let journal =
    if policy = Advfs then
      Some
        (Journal.create ~disk ~start_sector:sb.Ondisk.journal_start
           ~sectors:sb.Ondisk.journal_sectors)
    else None
  in
  let wb = if backed then Some (Write_behind.create ~disk ~hooks ~unordered:wb_unordered) else None in
  let t =
    {
      engine;
      costs;
      mem;
      disk;
      policy;
      hooks;
      sb;
      meta;
      data;
      journal;
      wb;
      icache = Hashtbl.create 64;
      dir_cache = Hashtbl.create 64;
      fds = Hashtbl.create 16;
      next_fd = 3;
      ialloc_hint = 0;
      balloc_hint = 0;
      free_inodes = 0;
      free_blocks = 0;
      daemon = None;
      daemon_due = 0;
      alive = true;
    }
  in
  (match journal with
  | Some j ->
    Journal.set_on_checkpoint j (fun () -> ignore (Block_cache.flush_dirty t.meta ~sync:false ()));
    Journal.set_on_event j (fun ~label -> t.hooks.Hooks.wb_event ~label)
  | None -> ());
  if policy = Mfs then begin
    (* A memory file system starts empty: materialize the inode bitmap and
       an empty root directory in the (disk-less) cache. *)
    bitmap_set t ~start:sb.Ondisk.ibitmap_start (root_ino - 1) true;
    let root = Ondisk.empty_inode Directory in
    root.Ondisk.nlink <- 1;
    Hashtbl.replace t.icache root_ino root;
    iupdate t root_ino root ~structural:true
  end;
  (* Seed the free counters from the allocation bitmaps (a sector or two,
     already faulted into the pinned buffer-cache pages). *)
  let count_free ~start n =
    let free = ref 0 in
    for i = 0 to n - 1 do
      if not (bitmap_get t ~start i) then incr free
    done;
    !free
  in
  t.free_inodes <- count_free ~start:sb.Ondisk.ibitmap_start sb.Ondisk.inode_count;
  t.free_blocks <- count_free ~start:sb.Ondisk.bbitmap_start sb.Ondisk.data_blocks;
  (match policy with
  | Mfs | Rio_policy -> ()
  | Ufs_default | Ufs_delayed | Wt_close | Wt_write | Advfs | Rio_idle -> schedule_daemon t);
  (* Mark the volume dirty-mounted so an unclean shutdown is detectable. *)
  meta_update t ~cls:Class_super ~sector:Ondisk.superblock_sector ~len:Disk.sector_bytes
    (fun addr ->
      Phys_mem.blit_in t.mem addr (Ondisk.write_superblock { sb with Ondisk.clean = false }));
  (match policy with
  | Mfs -> ()
  | Ufs_default | Ufs_delayed | Wt_close | Wt_write | Advfs | Rio_policy | Rio_idle ->
    let entry = meta_get t ~sector:Ondisk.superblock_sector ~pin:true in
    Block_cache.write_back t.meta entry ~sync:true);
  t

let stop_daemon t =
  (match t.daemon with Some h -> Engine.cancel t.engine h | None -> ());
  t.daemon <- None;
  t.alive <- false

let remount_cold t =
  (* Flush everything, then drop the caches — the state after unmount +
     mount, without tearing down the daemon. *)
  ignore (Block_cache.flush_dirty t.data ~sync:false ());
  ignore (Block_cache.flush_dirty t.meta ~sync:false ());
  if t.policy <> Mfs then Disk.drain t.disk;
  Block_cache.drop_all t.data;
  Block_cache.drop_all t.meta;
  Hashtbl.reset t.icache

let sync t =
  charge_syscall t;
  match t.policy with
  | Rio_policy | Mfs -> () (* Rio: sync returns immediately (§2.3). *)
  | Rio_idle | Ufs_default | Ufs_delayed | Wt_close | Wt_write | Advfs ->
    (* Rio_idle honors sync as a durability barrier: idle-trickled blocks
       ride the write-behind pipeline and the barrier drains it, so the
       cold-recovery contract ("synced data survives without warm reboot")
       is checkable against the pipeline's orderings. *)
    ignore (wb_flush_caches t);
    Disk.drain t.disk

let unmount t =
  (* Administrative shutdown: even Rio writes everything back (§2.3 provides
     an administrator switch for exactly this). *)
  ignore (Block_cache.flush_dirty t.data ~sync:false ());
  ignore (Block_cache.flush_dirty t.meta ~sync:false ());
  if t.policy <> Mfs then Disk.drain t.disk;
  if t.policy <> Mfs then
    Disk.poke t.disk ~sector:Ondisk.superblock_sector
      (Ondisk.write_superblock { t.sb with Ondisk.clean = true });
  stop_daemon t

let crash t =
  Disk.crash t.disk;
  stop_daemon t

(* ---------------- file operations ---------------- *)

let do_creat t path =
  let dirino, base = namei_parent t path in
  let dir = iget t dirino in
  if dir.Ondisk.ftype <> Directory then err "%s: parent not a directory" path;
  match dir_find t dir base with
  | Some existing ->
    let inode = iget t existing in
    if inode.Ondisk.ftype <> Regular then err "%s: exists and is a directory" path;
    (* Truncate. *)
    Array.iteri
      (fun i ptr ->
        if ptr <> 0 then begin
          Block_cache.invalidate t.data ~blkno:(ptr - 1);
          bfree t (ptr - 1);
          inode.Ondisk.blocks.(i) <- 0
        end)
      inode.Ondisk.blocks;
    inode.Ondisk.size <- 0;
    inode.Ondisk.mtime <- Engine.now t.engine;
    iupdate t existing inode ~structural:true;
    existing
  | None ->
    let ino = ialloc t in
    let inode = Ondisk.empty_inode Regular in
    inode.Ondisk.nlink <- 1;
    inode.Ondisk.mtime <- Engine.now t.engine;
    Hashtbl.replace t.icache ino inode;
    iupdate t ino inode ~structural:true;
    dir_add t dirino base ino;
    ino

let create t path =
  charge_syscall t;
  fresh_fd t (do_creat t path)

let open_file t path =
  charge_syscall t;
  let ino = namei t path in
  let inode = iget t ino in
  if inode.Ondisk.ftype <> Regular then err "%s: not a regular file" path;
  fresh_fd t ino

let fd_size t fd =
  let state = get_fd t fd in
  (iget t state.fd_ino).Ondisk.size

let fd_ino t fd = (get_fd t fd).fd_ino

let seek t fd pos =
  let state = get_fd t fd in
  if pos < 0 then err "seek: negative offset";
  state.pos <- pos

let do_pwrite t state ~offset data =
  let ino = state.fd_ino in
  let inode = iget t ino in
  (* Symlink targets are written through this path by [symlink]; public
     file descriptors can only reach regular files. *)
  if inode.Ondisk.ftype = Directory then err "write: not a regular file";
  let len = Bytes.length data in
  if len = 0 then ()
  else begin
    if offset + len > ndirect * block_bytes then err "write: file would exceed maximum size";
    charge_copy t len;
    let old_size = inode.Ondisk.size in
    let new_size = max old_size (offset + len) in
    let structural = ref false in
    let pos = ref 0 in
    while !pos < len do
      let off = offset + !pos in
      let bi = off / block_bytes in
      let in_block = off mod block_bytes in
      let chunk = min (len - !pos) (block_bytes - in_block) in
      let whole = in_block = 0 && (chunk = block_bytes || off + chunk >= old_size) in
      let fill = if whole then Block_cache.Zero else Block_cache.From_disk in
      (match data_block t ino inode bi ~alloc:true ~fill with
      | Some (entry, fresh) ->
        if fresh then structural := true;
        let paddr = entry.Block_cache.paddr + in_block in
        t.hooks.Hooks.open_write ~paddr:entry.Block_cache.paddr;
        t.hooks.Hooks.copy_in data !pos ~paddr ~len:chunk;
        t.hooks.Hooks.close_write ~paddr:entry.Block_cache.paddr;
        Block_cache.mark_dirty t.data entry;
        let valid = min block_bytes (new_size - (bi * block_bytes)) in
        Block_cache.set_valid t.data entry valid
      | None -> assert false);
      pos := !pos + chunk
    done;
    inode.Ondisk.size <- new_size;
    inode.Ondisk.mtime <- Engine.now t.engine;
    (* Block-allocation pointer updates are asynchronous in UFS (only
       namespace operations are synchronous, Ganger94); [structural] is
       noted but does not force a synchronous inode write here. *)
    ignore !structural;
    iupdate t ino inode ~structural:false;
    (* Per-policy data durability. *)
    (match t.policy with
    | Wt_write ->
      flush_file_data t ino ~sync:true;
      fsync_inode t ino
    | Ufs_default | Wt_close | Advfs ->
      let sequential = offset = state.last_end in
      state.pending <- state.pending + len;
      if (not sequential) || state.pending >= 64 * 1024 then begin
        flush_file_data t ino ~sync:false;
        state.pending <- 0
      end
    | Mfs | Ufs_delayed | Rio_policy | Rio_idle -> ());
    state.last_end <- offset + len
  end

let pwrite t fd ~offset data =
  charge_syscall t;
  do_pwrite t (get_fd t fd) ~offset data

let write t fd data =
  charge_syscall t;
  let state = get_fd t fd in
  do_pwrite t state ~offset:state.pos data;
  state.pos <- state.pos + Bytes.length data

let do_pread t state ~offset ~len = read_ino_data t state.fd_ino ~offset ~len

let pread t fd ~offset ~len =
  charge_syscall t;
  do_pread t (get_fd t fd) ~offset ~len

let read t fd ~len =
  charge_syscall t;
  let state = get_fd t fd in
  let out = do_pread t state ~offset:state.pos ~len in
  state.pos <- state.pos + Bytes.length out;
  out

let fsync t fd =
  charge_syscall t;
  let state = get_fd t fd in
  match t.policy with
  | Rio_policy | Rio_idle | Mfs -> () (* fsync returns immediately (§2.3). *)
  | Ufs_default | Ufs_delayed | Wt_close | Wt_write | Advfs ->
    flush_file_data t state.fd_ino ~sync:true;
    fsync_inode t state.fd_ino

let close t fd =
  charge_syscall t;
  let state = get_fd t fd in
  (match t.policy with
  | Wt_close ->
    flush_file_data t state.fd_ino ~sync:true;
    fsync_inode t state.fd_ino
  | Ufs_default | Advfs ->
    (* BSD-style: delayed partial blocks go out (asynchronously) at close. *)
    flush_file_data t state.fd_ino ~sync:false
  | Mfs | Ufs_delayed | Wt_write | Rio_policy | Rio_idle -> ());
  Hashtbl.remove t.fds fd

(* ---------------- namespace operations ---------------- *)

let mkdir t path =
  charge_syscall t;
  let dirino, base = namei_parent t path in
  let dir = iget t dirino in
  if dir.Ondisk.ftype <> Directory then err "%s: parent not a directory" path;
  if dir_find t dir base <> None then err "%s: already exists" path;
  let ino = ialloc t in
  let inode = Ondisk.empty_inode Directory in
  inode.Ondisk.nlink <- 1;
  inode.Ondisk.mtime <- Engine.now t.engine;
  Hashtbl.replace t.icache ino inode;
  iupdate t ino inode ~structural:true;
  dir_add t dirino base ino

let free_file_blocks t inode =
  Array.iteri
    (fun i ptr ->
      if ptr <> 0 then begin
        Block_cache.invalidate t.data ~blkno:(ptr - 1);
        bfree t (ptr - 1);
        inode.Ondisk.blocks.(i) <- 0
      end)
    inode.Ondisk.blocks

let free_dir_blocks t inode =
  Array.iteri
    (fun i ptr ->
      if ptr <> 0 then begin
        Block_cache.invalidate t.meta ~blkno:(sector_page_base (dir_block_sector t (ptr - 1)));
        bfree t (ptr - 1);
        inode.Ondisk.blocks.(i) <- 0
      end)
    inode.Ondisk.blocks

let link t existing path =
  charge_syscall t;
  let ino = namei t existing in
  let inode = iget t ino in
  if inode.Ondisk.ftype = Directory then err "%s: hard links to directories are not allowed" path;
  let dirino, base = namei_parent t path in
  let dir = iget t dirino in
  if dir.Ondisk.ftype <> Directory then err "%s: parent not a directory" path;
  if dir_find t dir base <> None then err "%s: already exists" path;
  inode.Ondisk.nlink <- inode.Ondisk.nlink + 1;
  iupdate t ino inode ~structural:true;
  dir_add t dirino base ino

let unlink t path =
  charge_syscall t;
  let dirino, base = namei_parent t path in
  let dir = iget t dirino in
  let ino =
    match dir_find t dir base with
    | Some ino -> ino
    | None -> err "%s: no such file" path
  in
  let inode = iget t ino in
  if inode.Ondisk.ftype = Directory then err "%s: is a directory (use rmdir)" path;
  dir_remove t dirino base;
  if inode.Ondisk.nlink > 1 then begin
    (* Other links remain: just drop the reference. *)
    inode.Ondisk.nlink <- inode.Ondisk.nlink - 1;
    iupdate t ino inode ~structural:true
  end
  else begin
    free_file_blocks t inode;
    iclear t ino;
    ifree t ino
  end

let rmdir t path =
  charge_syscall t;
  let dirino, base = namei_parent t path in
  let dir = iget t dirino in
  let ino =
    match dir_find t dir base with
    | Some ino -> ino
    | None -> err "%s: no such directory" path
  in
  let inode = iget t ino in
  if inode.Ondisk.ftype <> Directory then err "%s: not a directory" path;
  if dir_entries t inode <> [] then err "%s: directory not empty" path;
  dir_remove t dirino base;
  free_dir_blocks t inode;
  iclear t ino;
  ifree t ino

let rename t src dst =
  charge_syscall t;
  let sdir, sbase = namei_parent t src in
  let ino =
    match dir_find t (iget t sdir) sbase with
    | Some ino -> ino
    | None -> err "%s: no such file" src
  in
  let ddir, dbase = namei_parent t dst in
  (match dir_find t (iget t ddir) dbase with
  | Some existing ->
    let einode = iget t existing in
    if einode.Ondisk.ftype = Directory then err "%s: target exists and is a directory" dst;
    dir_remove t ddir dbase;
    if einode.Ondisk.nlink > 1 then begin
      einode.Ondisk.nlink <- einode.Ondisk.nlink - 1;
      iupdate t existing einode ~structural:true
    end
    else begin
      free_file_blocks t einode;
      iclear t existing;
      ifree t existing
    end
  | None -> ());
  (* Crash atomicity: when source and destination share a directory and the
     renamed entry's block can absorb the name change, removal and insertion
     collapse into ONE block rewrite — a single shadow-wrapped metadata
     update, so a crash anywhere leaves either the old name or the new one.
     Otherwise insert before removing, so the file is reachable under at
     least one name at every intermediate point. *)
  let combined =
    sdir = ddir
    &&
    let rec try_blocks = function
      | [] -> false
      | (_, blkno) :: rest ->
        let db = dir_read_block t blkno in
        if not (Hashtbl.mem db.db_index sbase) then try_blocks rest
        else begin
          let kept = List.remove_assoc sbase db.db_entries in
          let used = db.db_used - Ondisk.dir_entry_bytes sbase in
          used + Ondisk.dir_entry_bytes dbase <= Ondisk.dir_block_capacity
          && begin
               dir_write_block t blkno (kept @ [ (dbase, ino) ]);
               true
             end
        end
    in
    try_blocks (dir_blocks (iget t sdir))
  in
  if not combined then begin
    dir_add t ddir dbase ino;
    dir_remove t sdir sbase
  end

let readdir t path =
  charge_syscall t;
  let ino = namei t path in
  let inode = iget t ino in
  if inode.Ondisk.ftype <> Directory then err "%s: not a directory" path;
  List.sort compare (List.map fst (dir_entries t inode))

let stat t path =
  charge_syscall t;
  let ino = namei t path in
  let inode = iget t ino in
  {
    st_ino = ino;
    st_ftype = inode.Ondisk.ftype;
    st_size = inode.Ondisk.size;
    st_nlink = inode.Ondisk.nlink;
    st_mtime = inode.Ondisk.mtime;
  }

let exists t path =
  match namei t path with
  | _ -> true
  | exception Fs_error _ -> false

let read_file t path =
  let fd = open_file t path in
  let size = fd_size t fd in
  let data = pread t fd ~offset:0 ~len:size in
  close t fd;
  data

let write_file t path data =
  let fd = create t path in
  write t fd data;
  close t fd

(* ---------------- statfs ---------------- *)

type fs_stats = {
  blocks_total : int;
  blocks_free : int;
  inodes_total : int;
  inodes_free : int;
}

let statfs t =
  charge_syscall t;
  let free_bits ~start n =
    let free = ref 0 in
    for i = 0 to n - 1 do
      if not (bitmap_get t ~start i) then incr free
    done;
    !free
  in
  {
    blocks_total = t.sb.Ondisk.data_blocks;
    blocks_free = free_bits ~start:t.sb.Ondisk.bbitmap_start t.sb.Ondisk.data_blocks;
    inodes_total = t.sb.Ondisk.inode_count;
    inodes_free = free_bits ~start:t.sb.Ondisk.ibitmap_start t.sb.Ondisk.inode_count;
  }

(* ---------------- symbolic links ---------------- *)

let symlink t ~target path =
  charge_syscall t;
  if String.length target = 0 || String.length target > ndirect * block_bytes then
    err "symlink: invalid target length";
  let dirino, base = namei_parent t path in
  let dir = iget t dirino in
  if dir.Ondisk.ftype <> Directory then err "%s: parent not a directory" path;
  if dir_find t dir base <> None then err "%s: already exists" path;
  let ino = ialloc t in
  let inode = Ondisk.empty_inode Symlink in
  inode.Ondisk.nlink <- 1;
  inode.Ondisk.mtime <- Engine.now t.engine;
  Hashtbl.replace t.icache ino inode;
  iupdate t ino inode ~structural:true;
  dir_add t dirino base ino;
  (* The target string is the link's data (stored like file content, read
     through the cache as the paper's symlinks are). *)
  let state = { fd_ino = ino; pos = 0; last_end = 0; pending = 0 } in
  do_pwrite t state ~offset:0 (Bytes.of_string target)

let readlink t path =
  charge_syscall t;
  let dirino, base = namei_parent t path in
  match dir_find t (iget t dirino) base with
  | None -> err "%s: no such file or directory" path
  | Some ino ->
    let inode = iget t ino in
    if inode.Ondisk.ftype <> Symlink then err "%s: not a symbolic link" path;
    Bytes.to_string (read_ino_data t ino ~offset:0 ~len:inode.Ondisk.size)

let lstat t path =
  charge_syscall t;
  let dirino, base = namei_parent t path in
  match dir_find t (iget t dirino) base with
  | None -> err "%s: no such file or directory" path
  | Some ino ->
    let inode = iget t ino in
    {
      st_ino = ino;
      st_ftype = inode.Ondisk.ftype;
      st_size = inode.Ondisk.size;
      st_nlink = inode.Ondisk.nlink;
      st_mtime = inode.Ondisk.mtime;
    }

(* ---------------- truncate ---------------- *)

let truncate t path new_size =
  charge_syscall t;
  let ino = namei t path in
  let inode = iget t ino in
  if inode.Ondisk.ftype <> Regular then err "%s: not a regular file" path;
  if new_size < 0 || new_size > ndirect * block_bytes then err "truncate: size out of range";
  let old_size = inode.Ondisk.size in
  if new_size <> old_size then begin
    let structural = ref false in
    if new_size < old_size then begin
      (* Free whole blocks beyond the new end. *)
      let keep_blocks = (new_size + block_bytes - 1) / block_bytes in
      Array.iteri
        (fun i ptr ->
          if i >= keep_blocks && ptr <> 0 then begin
            Block_cache.invalidate t.data ~blkno:(ptr - 1);
            bfree t (ptr - 1);
            inode.Ondisk.blocks.(i) <- 0;
            structural := true
          end)
        inode.Ondisk.blocks
    end;
    (* Zero the boundary block's bytes past the kept size so later growth
       reveals zeros, not stale data. *)
    let keep = min new_size old_size in
    let bi = keep / block_bytes in
    let in_block = keep mod block_bytes in
    if in_block > 0 && bi < ndirect && inode.Ondisk.blocks.(bi) <> 0 then begin
      match data_block t ino inode bi ~alloc:false ~fill:Block_cache.From_disk with
      | Some (entry, _) ->
        t.hooks.Hooks.open_write ~paddr:entry.Block_cache.paddr;
        Phys_mem.fill t.mem
          (entry.Block_cache.paddr + in_block)
          ~len:(block_bytes - in_block) '\000';
        t.hooks.Hooks.close_write ~paddr:entry.Block_cache.paddr;
        Block_cache.mark_dirty t.data entry;
        Block_cache.set_valid t.data entry (min block_bytes (new_size - (bi * block_bytes)))
      | None -> ()
    end;
    inode.Ondisk.size <- new_size;
    inode.Ondisk.mtime <- Engine.now t.engine;
    iupdate t ino inode ~structural:!structural;
    match t.policy with
    | Wt_write | Wt_close ->
      flush_file_data t ino ~sync:true;
      fsync_inode t ino
    | Mfs | Ufs_default | Ufs_delayed | Advfs | Rio_policy | Rio_idle -> ()
  end

(* ---------------- warm-reboot restore ---------------- *)

let write_by_ino t ~ino ~offset data =
  let inode = iget t ino in
  if inode.Ondisk.ftype <> Regular then err "write_by_ino: inode %d not a regular file" ino;
  let len = min (Bytes.length data) (max 0 (inode.Ondisk.size - offset)) in
  if len > 0 then begin
    let pos = ref 0 in
    while !pos < len do
      let off = offset + !pos in
      let bi = off / block_bytes in
      let in_block = off mod block_bytes in
      let chunk = min (len - !pos) (block_bytes - in_block) in
      (match data_block t ino inode bi ~alloc:false ~fill:Block_cache.Zero with
      | Some (entry, _) ->
        let paddr = entry.Block_cache.paddr + in_block in
        t.hooks.Hooks.open_write ~paddr:entry.Block_cache.paddr;
        t.hooks.Hooks.copy_in data !pos ~paddr ~len:chunk;
        t.hooks.Hooks.close_write ~paddr:entry.Block_cache.paddr;
        Block_cache.mark_dirty t.data entry;
        let valid = min block_bytes (inode.Ondisk.size - (bi * block_bytes)) in
        Block_cache.set_valid t.data entry valid
      | None -> () (* hole: nothing to restore *));
      pos := !pos + chunk
    done
  end

(* ---------------- world-template rewind ---------------- *)

(* Host-side file-system state frozen with the world template. Simulated
   state (cache pages, on-disk metadata bytes) rewinds with the memory
   snapshot and the disk checkpoint; this captures everything the Fs
   record keeps outside simulated memory: the block-cache population,
   the in-core inode and descriptor tables, allocator hints and free
   counters, and the update daemon's next due time. The directory decode
   cache is NOT captured — it is version-keyed and simply refills. *)
type checkpoint = {
  ck_meta : Block_cache.checkpoint;
  ck_data : Block_cache.checkpoint;
  ck_journal : Journal.state option;
  ck_wb : Write_behind.state option;
  ck_icache : (int * Ondisk.inode) list;
  ck_fds : (int * fd_state) list;
  ck_next_fd : int;
  ck_ialloc_hint : int;
  ck_balloc_hint : int;
  ck_free_inodes : int;
  ck_free_blocks : int;
  ck_daemon : bool;
  ck_daemon_due : int;
}

let copy_inode (i : Ondisk.inode) = { i with Ondisk.blocks = Array.copy i.Ondisk.blocks }

let checkpoint t =
  {
    ck_meta = Block_cache.checkpoint t.meta;
    ck_data = Block_cache.checkpoint t.data;
    ck_journal = Option.map Journal.save t.journal;
    ck_wb = Option.map Write_behind.save t.wb;
    ck_icache = Hashtbl.fold (fun ino i acc -> (ino, copy_inode i) :: acc) t.icache [];
    ck_fds = Hashtbl.fold (fun fd st acc -> (fd, { st with pos = st.pos }) :: acc) t.fds [];
    ck_next_fd = t.next_fd;
    ck_ialloc_hint = t.ialloc_hint;
    ck_balloc_hint = t.balloc_hint;
    ck_free_inodes = t.free_inodes;
    ck_free_blocks = t.free_blocks;
    ck_daemon = t.daemon <> None;
    ck_daemon_due = t.daemon_due;
  }

(* Call after the engine queue has been cleared and rewound: a live
   daemon is re-scheduled at its checkpointed absolute due time. *)
let restore t ck =
  Block_cache.restore t.meta ck.ck_meta;
  Block_cache.restore t.data ck.ck_data;
  (match (t.journal, ck.ck_journal) with
  | Some j, Some s -> Journal.restore j s
  | None, None -> ()
  | _ -> invalid_arg "Fs.restore: journal presence mismatch");
  (match (t.wb, ck.ck_wb) with
  | Some wb, Some s -> Write_behind.restore wb s
  | None, None -> ()
  | _ -> invalid_arg "Fs.restore: write-behind presence mismatch");
  Hashtbl.reset t.icache;
  List.iter (fun (ino, i) -> Hashtbl.replace t.icache ino (copy_inode i)) ck.ck_icache;
  Hashtbl.reset t.dir_cache;
  Hashtbl.reset t.fds;
  List.iter (fun (fd, st) -> Hashtbl.replace t.fds fd { st with pos = st.pos }) ck.ck_fds;
  t.next_fd <- ck.ck_next_fd;
  t.ialloc_hint <- ck.ck_ialloc_hint;
  t.balloc_hint <- ck.ck_balloc_hint;
  t.free_inodes <- ck.ck_free_inodes;
  t.free_blocks <- ck.ck_free_blocks;
  t.alive <- true;
  t.daemon <- None;
  if ck.ck_daemon then schedule_daemon_at t ~time:ck.ck_daemon_due

(* ---------------- the uniform syscall entry ---------------- *)

(* One decoded representation of the whole syscall surface. The checker,
   the fuzzer, and the task scheduler all dispatch through [Syscall.run],
   so "what operation is this, does it mutate, what is it called" is
   answered in exactly one place; the per-op functions below the module
   are kept as thin compatibility wrappers over it. *)

module Syscall = struct
  type call =
    | Creat of string
    | Open of string
    | Close of fd
    | Read of { fd : fd; len : int }
    | Write of { fd : fd; data : bytes }
    | Pread of { fd : fd; offset : int; len : int }
    | Pwrite of { fd : fd; offset : int; data : bytes }
    | Seek of fd * int
    | Fsync of fd
    | Mkdir of string
    | Rmdir of string
    | Link of { existing : string; path : string }
    | Unlink of string
    | Rename of { src : string; dst : string }
    | Readdir of string
    | Stat of string
    | Lstat of string
    | Exists of string
    | Symlink of { target : string; path : string }
    | Readlink of string
    | Truncate of string * int
    | Read_file of string
    | Write_file of { path : string; data : bytes }
    | Sync

  type result =
    | Unit
    | Fd of fd
    | Data of bytes
    | Names of string list
    | Stat_r of stat
    | Bool of bool
    | Path of string

  let name = function
    | Creat _ -> "creat"
    | Open _ -> "open"
    | Close _ -> "close"
    | Read _ -> "read"
    | Write _ -> "write"
    | Pread _ -> "pread"
    | Pwrite _ -> "pwrite"
    | Seek _ -> "seek"
    | Fsync _ -> "fsync"
    | Mkdir _ -> "mkdir"
    | Rmdir _ -> "rmdir"
    | Link _ -> "link"
    | Unlink _ -> "unlink"
    | Rename _ -> "rename"
    | Readdir _ -> "readdir"
    | Stat _ -> "stat"
    | Lstat _ -> "lstat"
    | Exists _ -> "exists"
    | Symlink _ -> "symlink"
    | Readlink _ -> "readlink"
    | Truncate _ -> "truncate"
    | Read_file _ -> "read-file"
    | Write_file _ -> "write-file"
    | Sync -> "sync"

  (* Whether the call can mutate shared file-system state (cache pages,
     inodes, directories, bitmaps). Seek only moves the caller's own
     cursor; Close and Fsync can flush under the write-through policies,
     so they count as mutating. *)
  let mutates = function
    | Read _ | Pread _ | Seek _ | Readdir _ | Stat _ | Lstat _ | Exists _ | Readlink _
    | Read_file _ ->
      false
    | Creat _ | Open _ | Close _ | Write _ | Pwrite _ | Fsync _ | Mkdir _ | Rmdir _ | Link _
    | Unlink _ | Rename _ | Symlink _ | Truncate _ | Write_file _ | Sync ->
      true

  (* [Open] allocates an fd and can trigger cache fills (registry-visible
     page mappings), so it is conservatively mutating. *)

  let run t call =
    match call with
    | Creat path -> Fd (create t path)
    | Open path -> Fd (open_file t path)
    | Close fd ->
      close t fd;
      Unit
    | Read { fd; len } -> Data (read t fd ~len)
    | Write { fd; data } ->
      write t fd data;
      Unit
    | Pread { fd; offset; len } -> Data (pread t fd ~offset ~len)
    | Pwrite { fd; offset; data } ->
      pwrite t fd ~offset data;
      Unit
    | Seek (fd, pos) ->
      seek t fd pos;
      Unit
    | Fsync fd ->
      fsync t fd;
      Unit
    | Mkdir path ->
      mkdir t path;
      Unit
    | Rmdir path ->
      rmdir t path;
      Unit
    | Link { existing; path } ->
      link t existing path;
      Unit
    | Unlink path ->
      unlink t path;
      Unit
    | Rename { src; dst } ->
      rename t src dst;
      Unit
    | Readdir path -> Names (readdir t path)
    | Stat path -> Stat_r (stat t path)
    | Lstat path -> Stat_r (lstat t path)
    | Exists path -> Bool (exists t path)
    | Symlink { target; path } ->
      symlink t ~target path;
      Unit
    | Readlink path -> Path (readlink t path)
    | Truncate (path, size) ->
      truncate t path size;
      Unit
    | Read_file path -> Data (read_file t path)
    | Write_file { path; data } ->
      write_file t path data;
      Unit
    | Sync ->
      sync t;
      Unit

  let fd_exn = function Fd fd -> fd | _ -> err "Syscall: expected an fd result"
  let data_exn = function Data b -> b | _ -> err "Syscall: expected a data result"
  let names_exn = function Names l -> l | _ -> err "Syscall: expected a name-list result"
  let stat_exn = function Stat_r s -> s | _ -> err "Syscall: expected a stat result"
  let bool_exn = function Bool b -> b | _ -> err "Syscall: expected a bool result"
  let path_exn = function Path p -> p | _ -> err "Syscall: expected a path result"
end

(* Compatibility wrappers: the historical per-op surface, now one decoded
   dispatch away from [Syscall.run]. *)

let create t path = Syscall.(fd_exn (run t (Creat path)))
let open_file t path = Syscall.(fd_exn (run t (Open path)))
let close t fd = ignore (Syscall.run t (Syscall.Close fd))
let read t fd ~len = Syscall.(data_exn (run t (Read { fd; len })))
let write t fd data = ignore (Syscall.run t (Syscall.Write { fd; data }))
let pread t fd ~offset ~len = Syscall.(data_exn (run t (Pread { fd; offset; len })))
let pwrite t fd ~offset data = ignore (Syscall.run t (Syscall.Pwrite { fd; offset; data }))
let seek t fd pos = ignore (Syscall.run t (Syscall.Seek (fd, pos)))
let fsync t fd = ignore (Syscall.run t (Syscall.Fsync fd))
let mkdir t path = ignore (Syscall.run t (Syscall.Mkdir path))
let rmdir t path = ignore (Syscall.run t (Syscall.Rmdir path))
let link t existing path = ignore (Syscall.run t (Syscall.Link { existing; path }))
let unlink t path = ignore (Syscall.run t (Syscall.Unlink path))
let rename t src dst = ignore (Syscall.run t (Syscall.Rename { src; dst }))
let readdir t path = Syscall.(names_exn (run t (Readdir path)))
let stat t path = Syscall.(stat_exn (run t (Stat path)))
let lstat t path = Syscall.(stat_exn (run t (Lstat path)))
let exists t path = Syscall.(bool_exn (run t (Exists path)))
let symlink t ~target path = ignore (Syscall.run t (Syscall.Symlink { target; path }))
let readlink t path = Syscall.(path_exn (run t (Readlink path)))
let truncate t path new_size = ignore (Syscall.run t (Syscall.Truncate (path, new_size)))
let read_file t path = Syscall.(data_exn (run t (Read_file path)))
let write_file t path data = ignore (Syscall.run t (Syscall.Write_file { path; data }))
let sync t = ignore (Syscall.run t Syscall.Sync)
