lib/mem/phys_mem.ml: Bytes Char Int32 Int64 Printf Rio_util
