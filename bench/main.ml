(* Bechamel benchmarks: one Test.make per table/figure of the paper, plus
   the ablation micro-benchmarks DESIGN.md calls out.

   Each [table1/*] iteration is one complete crash test (boot, workload,
   inject 20 faults, crash, recover, compare) on the named system; each
   [table2/*] iteration is a scaled-down Table 2 workload cell on the named
   file-system configuration. The [ablation/*] and [micro/*] groups time
   the primitive operations whose costs the paper's prose claims are about.

   After the timings, the harness prints scaled-down reproductions of the
   paper's tables so `dune exec bench/main.exe` shows the shape of the
   results by itself. Use bin/riobench for the full-scale runs. *)

open Bechamel
open Toolkit
module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type
module Performance = Rio_harness.Performance
module Reliability = Rio_harness.Reliability
module Run = Rio_harness.Run
module Ablation = Rio_harness.Ablation
module Kernel = Rio_kernel.Kernel
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Fs = Rio_fs.Fs
module Fsck = Rio_fs.Fsck
module Checksum = Rio_util.Checksum
module Pattern = Rio_util.Pattern

(* ---------------- table 1: one crash test per iteration ---------------- *)

let campaign_config =
  {
    Campaign.default_config with
    Campaign.warmup_steps = 10;
    max_steps = 60;
    memtest_files = 10;
    memtest_file_bytes = 16 * 1024;
    background_andrew = 1;
    andrew_scale = 0.02;
  }

let crash_test system =
  let seed = ref 0 in
  Staged.stage (fun () ->
      incr seed;
      ignore (Campaign.run_one campaign_config system Fault_type.Kernel_text ~seed:!seed))

let table1_tests =
  Test.make_grouped ~name:"table1" ~fmt:"%s/%s"
    [
      Test.make ~name:"disk-based" (crash_test Campaign.Disk_based);
      Test.make ~name:"rio-noprot" (crash_test Campaign.Rio_without_protection);
      Test.make ~name:"rio-prot" (crash_test Campaign.Rio_with_protection);
    ]

(* ---------------- table 2: one workload cell per iteration ---------------- *)

let table2_cell label workload =
  let config = List.find (fun c -> c.Performance.label = label) Performance.configurations in
  let seed = ref 0 in
  Staged.stage (fun () ->
      incr seed;
      ignore (Performance.measure_workload config ~scale:0.02 ~seed:!seed workload))

let table2_tests =
  Test.make_grouped ~name:"table2" ~fmt:"%s/%s"
    [
      Test.make ~name:"mfs-cp-rm" (table2_cell "memory-fs" `Cp_rm);
      Test.make ~name:"ufs-cp-rm" (table2_cell "ufs" `Cp_rm);
      Test.make ~name:"wt-write-cp-rm" (table2_cell "wt-write" `Cp_rm);
      Test.make ~name:"rio-cp-rm" (table2_cell "rio-prot" `Cp_rm);
      Test.make ~name:"rio-sdet" (table2_cell "rio-prot" `Sdet);
      Test.make ~name:"rio-andrew" (table2_cell "rio-prot" `Andrew);
    ]

(* ---------------- ablations ---------------- *)

let protection_iter protection =
  let seed = ref 0 in
  Staged.stage (fun () ->
      incr seed;
      (* The protection-overhead unit: a Rio write-path burst. *)
      let engine = Engine.create () in
      let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed !seed) in
      Kernel.format kernel;
      ignore
        (Rio_core.Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
           ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
           ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ());
      let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
      for i = 0 to 19 do
        Fs.write_file fs (Printf.sprintf "/f%d" i) (Pattern.fill ~seed:i ~len:16_384)
      done)

let ablation_tests =
  let delay_point =
    let seed = ref 0 in
    Staged.stage (fun () ->
        incr seed;
        ignore (Ablation.delay_sweep ~steps:40 ~seed:!seed ()))
  in
  let registry_iter =
    let seed = ref 0 in
    Staged.stage (fun () ->
        incr seed;
        ignore (Ablation.registry_cost ~steps:60 ~seed:!seed ()))
  in
  Test.make_grouped ~name:"ablation" ~fmt:"%s/%s"
    [
      Test.make ~name:"protection-on" (protection_iter true);
      Test.make ~name:"protection-off" (protection_iter false);
      Test.make ~name:"registry" registry_iter;
      Test.make ~name:"delay-sweep" delay_point;
    ]

(* ---------------- micro ---------------- *)

let micro_tests =
  let page = Pattern.fill ~seed:1 ~len:8192 in
  let crc_bench = Staged.stage (fun () -> ignore (Checksum.crc32 page ~pos:0 ~len:8192)) in
  let interpreter_bench =
    let engine = Engine.create () in
    let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 1) in
    Staged.stage (fun () -> Kernel.run_activity kernel)
  in
  let warm_reboot_bench =
    let seed = ref 100 in
    Staged.stage (fun () ->
        incr seed;
        let engine = Engine.create () in
        let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed !seed) in
        Kernel.format kernel;
        ignore
          (Rio_core.Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
             ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
             ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
        let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
        Fs.write_file fs "/f" page;
        Fs.crash fs;
        ignore
          (Rio_core.Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
             ~layout:(Kernel.layout kernel) ~engine
             ~reboot:(fun () ->
               let kernel2 =
                 Kernel.boot_warm ~engine ~costs:Costs.default (Kernel.config_with_seed !seed)
                   ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
               in
               ignore
                 (Rio_core.Rio_cache.create ~mem:(Kernel.mem kernel2)
                    ~layout:(Kernel.layout kernel2) ~mmu:(Kernel.mmu kernel2) ~engine
                    ~costs:Costs.default ~hooks:(Kernel.hooks kernel2)
                    ~pool_alloc:(Kernel.pool_alloc kernel2) ~protection:true ~dev:1 ());
               Kernel.mount kernel2 ~policy:Fs.Rio_policy)))
  in
  let fsck_bench =
    let seed = ref 200 in
    Staged.stage (fun () ->
        incr seed;
        let engine = Engine.create () in
        let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed !seed) in
        Kernel.format kernel;
        let fs = Kernel.mount kernel ~policy:Fs.Wt_write in
        for i = 0 to 9 do
          Fs.write_file fs (Printf.sprintf "/f%d" i) (Bytes.of_string "data")
        done;
        Fs.unmount fs;
        ignore (Fsck.run ~disk:(Kernel.disk kernel)))
  in
  Test.make_grouped ~name:"micro" ~fmt:"%s/%s"
    [
      Test.make ~name:"crc32-8k" crc_bench;
      Test.make ~name:"kernel-activity-burst" interpreter_bench;
      Test.make ~name:"warm-reboot-cycle" warm_reboot_bench;
      Test.make ~name:"fsck" fsck_bench;
    ]

(* ---------------- vista transactions ---------------- *)

let vista_tests =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 9) in
  Kernel.format kernel;
  ignore
    (Rio_core.Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  let store = Rio_txn.Vista.create fs ~path:"/bench-store" ~size:65536 in
  let i = ref 0 in
  let txn_bench =
    Staged.stage (fun () ->
        incr i;
        let t = Rio_txn.Vista.begin_txn store in
        Rio_txn.Vista.write t ~offset:(!i * 64 mod 65000) (Bytes.make 64 'v');
        Rio_txn.Vista.commit t)
  in
  Test.make_grouped ~name:"vista" ~fmt:"%s/%s"
    [ Test.make ~name:"txn-commit-64B" txn_bench ]

(* ---------------- driver ---------------- *)

let run_benchmarks () =
  let all_tests =
    Test.make_grouped ~name:"rio" ~fmt:"%s/%s"
      [ table1_tests; table2_tests; ablation_tests; micro_tests; vista_tests ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-42s %14s\n" "benchmark" "time/iter";
  Printf.printf "%s\n" (String.make 58 '-');
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
      in
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-42s %14s\n" name human)
    (List.sort compare rows)

(* Scaled-down reproductions of the paper's tables, so this executable
   shows the result shape on its own. *)
let print_mini_tables () =
  Printf.printf "\nMini Table 1 (2 crash tests/cell, 3 fault types; see riobench table1):\n";
  let results =
    Reliability.run ~campaign:campaign_config
      ~faults:[ Fault_type.Kernel_text; Fault_type.Copy_overrun; Fault_type.Pointer ]
      { Run.default with Run.trials = 2; seed = 1 }
  in
  print_string (Rio_util.Table.render (Reliability.to_table results));
  Printf.printf "\nMini Table 2 (4%% scale; see riobench table2 for full scale):\n";
  let ms = Performance.run { Run.default with Run.scale = 0.04; seed = 1 } in
  print_string (Rio_util.Table.render (Performance.to_table ms))

let () =
  Printf.printf "Rio reproduction benchmarks (bechamel)\n\n%!";
  run_benchmarks ();
  print_mini_tables ()
