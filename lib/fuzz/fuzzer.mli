(** The randomized crash-schedule fuzzer, with counterexample shrinking.

    The explorer proves the atomicity contracts over every boundary of a
    few fixed scenarios; the fuzzer samples the space the scenarios cannot
    reach — random op {e sequences} over a growing tree, with the crash at
    a random boundary of a random op (stratified by boundary class, so the
    rare metadata/registry/Vista boundaries get sampled as often as the
    plentiful data-store windows). Each trial is a pure function of
    (spec, seed, trial index): generate a program
    ({!Rio_workload.Script.Gen}), count its boundaries with a disarmed
    pass, pick one, re-run tripping there, warm-reboot, and audit
    ({!Program.check}).

    A violating trial is then {e shrunk} — delta debugging over both axes:
    drop ops the failure does not need (re-validating every candidate by
    running it, remapping the crash ordinal into the in-flight op's
    shifted boundary range), and walk the crash ordinal down to the first
    failing boundary. The result is a minimal program + boundary pair,
    replayed once more with the flight recorder live so the report carries
    a {!Rio_obs.Forensics} narrative.

    Trials shard across domains via {!Rio_parallel.Pool} and merge in
    trial order, so {!render} output is byte-identical at any [domains]. *)

exception Invalid_program
(** A (shrunk) sub-program referenced a file an earlier removed op would
    have created. Never escapes {!run}; candidates that raise it are
    simply not failures. *)

(** {1 Single attempts (exposed for tests)} *)

type attempt = {
  boundaries : int;
  labels : string list;  (** Boundary labels in ordinal order. *)
  op_starts : int array;
      (** [op_starts.(k)] = first boundary ordinal of op [k]; length
          [ops + 1], the last entry closing the final op's range. *)
  crashed_during : int option;
  tripped : string option;
  problems : string list;
}

val run_attempt :
  ?obs:Rio_obs.Trace.t ->
  spec:Rio_check.Explorer.spec ->
  seed:int ->
  ops:Rio_workload.Script.Gen.op list ->
  trip:int ->
  unit ->
  attempt
(** Build a fresh world, run [ops], crash at boundary [trip] ([-1] =
    count only), recover and audit. Raises {!Invalid_program} if [ops] is
    not executable in order. *)

val shrink :
  spec:Rio_check.Explorer.spec ->
  world_seed:int ->
  ops:Rio_workload.Script.Gen.op list ->
  ordinal:int ->
  Rio_workload.Script.Gen.op list * int * int * int
(** [(ops', ordinal', in_flight', attempts)] — a locally minimal failing
    (program, boundary) pair, starting from a known-failing one. Budgeted
    (a few hundred candidate runs) and deterministic. *)

(** {1 The fuzz run} *)

type counterexample = {
  trial : int;
  original_ops : int;
  original_ordinal : int;
  ops : Rio_workload.Script.Gen.op list;  (** Shrunk program. *)
  ordinal : int;  (** Shrunk crash boundary. *)
  in_flight : int;  (** Index of the op the crash interrupts. *)
  label : string;  (** The boundary's stable label. *)
  problems : string list;
  narrative : string list;  (** Forensics replay of the minimum. *)
  shrink_attempts : int;  (** Candidate runs the shrinker spent. *)
}

type report = {
  spec : Rio_check.Explorer.spec;
  seed : int;
  trials : int;
  max_ops : int;
  boundaries : int;  (** Summed over trials' full schedules. *)
  violations : int;  (** Trials whose crash broke a contract. *)
  counterexamples : counterexample list;
      (** The first [shrink_limit] violations (trial order), shrunk. *)
  coverage : Rio_cov.Cov.t option;
      (** The campaign's crash-space coverage map ([config.coverage]).
          With coverage on, trials run in fixed rounds and the still-unhit
          boundary classes steer the next round's stratified crash pick —
          deterministic feedback, byte-identical at any [domains]. *)
}

val default_max_ops : int

val run :
  ?spec:Rio_check.Explorer.spec ->
  ?max_ops:int ->
  ?shrink_limit:int ->
  Rio_harness.Run.config ->
  report
(** [config.trials] random programs of [1..max_ops] ops each, seeded from
    [config.seed]; [scale] and [trace_dir] are unused. [config.coverage]
    turns on the coverage map and the unhit-class feedback loop. *)

val render : report -> string
(** Deterministic plain text: a summary head plus one block per shrunk
    counterexample (program listing, crash boundary, problems, trace). *)

val report_json : report -> Rio_util.Json.t
(** Machine-readable report (spec, totals, shrunk counterexamples,
    coverage when collected). Deterministic: byte-identical at any
    [domains]. *)

(** {1 The ablation matrix} *)

type matrix_entry = { entry_report : report; ok : bool }

val max_repro_ops : int
(** A caught ablation only counts if some counterexample shrank to at most
    this many ops (6) — the catch must come with a readable repro. *)

val run_matrix :
  ?specs:Rio_check.Explorer.spec list ->
  ?max_ops:int ->
  ?shrink_limit:int ->
  Rio_harness.Run.config ->
  matrix_entry list
(** Fuzz each spec with the same config. Safe specs must fuzz clean;
    unsafe specs must be caught {e and} shrunk (see {!max_repro_ops}). *)

val matrix_ok : matrix_entry list -> bool

val matrix_json : matrix_entry list -> Rio_util.Json.t
(** One entry per configuration: its verdict plus {!report_json}. *)

val render_matrix : matrix_entry list -> string
