lib/workload/memtest.mli: Rio_fs
