let default_domains () = Domain.recommended_domain_count ()

let map ?(domains = 1) ?(chunk = 1) f items =
  let n = Array.length items in
  let domains = max 1 (min domains n) in
  let chunk = max 1 chunk in
  if domains <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First failure wins; set once, checked by every worker between
       chunks so the pool drains quickly after an error. *)
    let error = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n || Atomic.get error <> None then continue := false
        else
          let stop = min n (start + chunk) in
          let i = ref start in
          while !continue && !i < stop do
            (match f items.(!i) with
            | v -> results.(!i) <- Some v
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set error None (Some (e, bt)));
              continue := false);
            incr i
          done
      done
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?domains ?chunk f items =
  Array.to_list (map ?domains ?chunk f (Array.of_list items))

let sink f =
  let m = Mutex.create () in
  fun x ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
