(* Tests for the flight recorder (Rio_obs): ring semantics, metrics,
   exporters, forensics, and campaign determinism of the trace output. *)

module Trace = Rio_obs.Trace
module Export = Rio_obs.Export
module Forensics = Rio_obs.Forensics
module Json = Rio_util.Json
module Stats = Rio_util.Stats
module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type
module Reliability = Rio_harness.Reliability

let check = Alcotest.check

(* ---------------- ring buffer ---------------- *)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit t Trace.Harness (Trace.Mark (string_of_int i))
  done;
  check Alcotest.int "total" 10 (Trace.total t);
  check Alcotest.int "dropped" 6 (Trace.dropped t);
  let marks =
    List.map
      (fun e -> match e.Trace.kind with Trace.Mark s -> s | _ -> "?")
      (Trace.events t)
  in
  check Alcotest.(list string) "oldest-first, last 4 retained" [ "7"; "8"; "9"; "10" ]
    marks

let test_ring_capacity_zero () =
  let t = Trace.create ~capacity:0 () in
  let c = Trace.counter t "c" in
  for _ = 1 to 5 do
    Trace.emit t Trace.Rio (Trace.Mark "x");
    Trace.incr c
  done;
  check Alcotest.int "no events retained" 0 (List.length (Trace.events t));
  check Alcotest.int "all counted as dropped" 5 (Trace.dropped t);
  check Alcotest.int "metrics still live" 5 (Trace.counter_value c)

let test_null_recorder () =
  check Alcotest.bool "null disabled" false (Trace.enabled Trace.null);
  let c = Trace.counter Trace.null "dead" in
  Trace.incr c;
  Trace.emit Trace.null Trace.Kernel (Trace.Mark "ignored");
  check Alcotest.int "dead counter" 0 (Trace.counter_value c);
  check Alcotest.int "no events" 0 (Trace.total Trace.null);
  let s = Trace.snapshot Trace.null in
  check Alcotest.bool "empty snapshot" true
    (s.Trace.counters = [] && s.Trace.histograms = [])

let test_clock_stamps () =
  let t = Trace.create () in
  let now = ref 0 in
  Trace.set_clock t (fun () -> !now);
  now := 42;
  Trace.emit t Trace.Disk (Trace.Mark "a");
  now := 99;
  Trace.emit t Trace.Disk (Trace.Mark "b");
  match Trace.events t with
  | [ a; b ] ->
    check Alcotest.int "first stamp" 42 a.Trace.ts_us;
    check Alcotest.int "second stamp" 99 b.Trace.ts_us
  | _ -> Alcotest.fail "expected two events"

(* ---------------- metrics ---------------- *)

let test_histogram_percentile_matches_stats () =
  let t = Trace.create () in
  let h = Trace.histogram t "lat" in
  let values = [ 12; 5; 99; 41; 7; 63; 28; 3; 77; 50 ] in
  List.iter (Trace.observe h) values;
  let ints = Trace.histogram_values h in
  let floats = Array.map float_of_int ints in
  List.iter
    (fun p ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "p%.0f" p)
        (Stats.percentile floats p) (Trace.percentile ints p))
    [ 0.; 25.; 50.; 90.; 99.; 100. ]

let test_merge_snapshots () =
  let mk cs hs = { Trace.counters = cs; histograms = hs } in
  let merged =
    Trace.merge_snapshots
      [
        mk [ ("a", 1); ("b", 2) ] [ ("h", [| 1; 2 |]) ];
        mk [ ("b", 3); ("c", 4) ] [ ("h", [| 3 |]); ("g", [| 9 |]) ];
      ]
  in
  check
    Alcotest.(list (pair string int))
    "counters summed, first-seen order"
    [ ("a", 1); ("b", 5); ("c", 4) ]
    merged.Trace.counters;
  check
    Alcotest.(list (pair string (array int)))
    "histograms concatenated"
    [ ("h", [| 1; 2; 3 |]); ("g", [| 9 |]) ]
    merged.Trace.histograms

(* ---------------- JSON emitter / parser ---------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("a", Json.Arr [ Json.Int 1; Json.Str "x"; Json.Arr [] ]);
        ("o", Json.Obj [ ("nested", Json.Bool false) ]);
      ]
  in
  (match Json.parse (Json.to_string doc) with
  | Ok parsed -> check Alcotest.bool "compact roundtrip" true (parsed = doc)
  | Error e -> Alcotest.fail e);
  match Json.parse (Json.pretty doc) with
  | Ok parsed -> check Alcotest.bool "pretty roundtrip" true (parsed = doc)
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

(* ---------------- exporters ---------------- *)

let populated_recorder () =
  let t = Trace.create () in
  let now = ref 0 in
  Trace.set_clock t (fun () -> !now);
  Trace.emit t Trace.Fault (Trace.Fault_injected { fault = "pointer"; site = "k_bcopy+3" });
  now := 10;
  Trace.emit t Trace.Kernel (Trace.Wild_store { paddr = 0x1000; width = 8; region = "buffer_cache" });
  now := 20;
  Trace.emit t Trace.Disk
    (Trace.Disk_request { sector = 4; sectors = 16; write = true; sync = false; issued_us = 12; done_us = 20 });
  Trace.emit t Trace.Rio (Trace.Phase { name = "warm-reboot: fsck"; start_us = 20; end_us = 30 });
  Trace.incr (Trace.counter t "k");
  Trace.observe (Trace.histogram t "h") 7;
  t

let test_chrome_export_parses () =
  let t = populated_recorder () in
  let doc = Export.chrome_json ~meta:[ ("seed", Json.Int 7) ] t in
  match Json.parse (Json.pretty doc) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    check Alcotest.bool "roundtrip" true (parsed = doc);
    let events = Option.value ~default:Json.Null (Json.member "traceEvents" parsed) in
    let cats =
      List.filter_map (fun e ->
          match Json.member "cat" e with Some (Json.Str c) -> Some c | _ -> None)
        (Json.to_list events)
    in
    List.iter
      (fun c -> check Alcotest.bool ("has cat " ^ c) true (List.mem c cats))
      [ "fault"; "kernel"; "disk"; "rio" ];
    check Alcotest.bool "meta passed through" true
      (Json.member "seed" parsed = Some (Json.Int 7))

let test_jsonl_lines_all_parse () =
  let t = populated_recorder () in
  let lines = Export.jsonl_lines ~header:(Json.Obj [ ("seed", Json.Int 7) ]) t in
  check Alcotest.bool "header + 4 events + metrics + recorder" true
    (List.length lines = 7);
  List.iter
    (fun l -> match Json.parse l with Ok _ -> () | Error e -> Alcotest.failf "%s: %s" l e)
    lines

(* ---------------- forensics ---------------- *)

let test_forensics_summary () =
  let t = populated_recorder () in
  let f = Forensics.summarize t in
  check Alcotest.int "injections" 1 (List.length f.Forensics.injections);
  (match f.Forensics.first_wild_store with
  | Some (ts, paddr, region) ->
    check Alcotest.int "wild ts" 10 ts;
    check Alcotest.int "wild paddr" 0x1000 paddr;
    check Alcotest.string "wild region" "buffer_cache" region
  | None -> Alcotest.fail "expected a wild store");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let text = String.concat "\n" (Forensics.narrative f) in
  check Alcotest.bool "narrative names fault" true
    (contains text "pointer" && contains text "k_bcopy")

(* ---------------- campaign trace determinism ---------------- *)

let quick_config =
  {
    Campaign.default_config with
    Campaign.warmup_steps = 6;
    max_steps = 60;
    memtest_files = 4;
    memtest_file_bytes = 6 * 1024;
    background_andrew = 1;
    andrew_scale = 0.02;
  }

let test_same_seed_same_trace () =
  let run () =
    let obs = Trace.create () in
    let o =
      Campaign.run_one ~obs quick_config Campaign.Rio_without_protection
        Fault_type.Kernel_text ~seed:3
    in
    (o.Campaign.discarded, Export.jsonl_lines obs)
  in
  let d1, l1 = run () and d2, l2 = run () in
  check Alcotest.bool "same verdict" d1 d2;
  check Alcotest.(list string) "byte-identical trace" l1 l2

let test_trace_dir_parallel_identical () =
  let dir jobs =
    let d = Filename.temp_file "riotrace" "" in
    Sys.remove d;
    let _ =
      Reliability.run ~campaign:quick_config
        ~systems:[ Campaign.Rio_without_protection ]
        ~faults:[ Fault_type.Kernel_text; Fault_type.Pointer ]
        {
          Rio_harness.Run.default with
          Rio_harness.Run.trials = 1;
          seed = 5;
          domains = jobs;
          trace_dir = Some d;
        }
    in
    let files = Array.to_list (Sys.readdir d) in
    let contents =
      List.map
        (fun f ->
          let ic = open_in_bin (Filename.concat d f) in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          (f, s))
        (List.sort compare files)
    in
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Sys.rmdir d;
    contents
  in
  let serial = dir 1 and parallel = dir 4 in
  check Alcotest.(list (pair string string)) "trace files byte-identical -j1 vs -j4"
    serial parallel

let () =
  Alcotest.run "rio_obs"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps newest" `Quick test_ring_wraparound;
          Alcotest.test_case "capacity 0 is metrics-only" `Quick test_ring_capacity_zero;
          Alcotest.test_case "null recorder is inert" `Quick test_null_recorder;
          Alcotest.test_case "events stamped from clock" `Quick test_clock_stamps;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentile matches Stats" `Quick
            test_histogram_percentile_matches_stats;
          Alcotest.test_case "merge sums and concatenates" `Quick test_merge_snapshots;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick test_json_parse_errors;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace parses" `Quick test_chrome_export_parses;
          Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_all_parse;
        ] );
      ( "forensics",
        [ Alcotest.test_case "summary finds the chain" `Quick test_forensics_summary ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Slow test_same_seed_same_trace;
          Alcotest.test_case "trace dir identical at -j1/-j4" `Slow
            test_trace_dir_parallel_identical;
        ] );
    ]
