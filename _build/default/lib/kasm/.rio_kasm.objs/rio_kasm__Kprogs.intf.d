lib/kasm/kprogs.mli: Asm
