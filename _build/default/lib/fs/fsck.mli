(** File-system consistency check and repair.

    Runs against the committed (post-crash) disk image before remount: after
    the registry-driven metadata restore in Rio's warm reboot (§2.2, "so
    that the file system is intact before being checked for consistency by
    fsck"), and directly after the crash for the disk-based baselines.

    Repairs mirror classic fsck: undecodable inodes are freed, out-of-range
    and doubly-claimed block pointers are cleared, corrupt directory blocks
    are truncated, entries to dead inodes are dropped, unreachable inodes
    are freed, and the allocation bitmaps are rebuilt from the surviving
    inodes. *)

type report = {
  repairs : string list;  (** One line per repair, deterministic order. *)
  unrecoverable : bool;
      (** The superblock itself was unusable; the volume is lost. *)
}

val run : disk:Rio_disk.Disk.t -> report

val clean : report -> bool
(** No repairs and recoverable. *)

val pp_report : Format.formatter -> report -> unit
