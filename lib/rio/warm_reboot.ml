module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Disk = Rio_disk.Disk
module Engine = Rio_sim.Engine
module Fs = Rio_fs.Fs
module Fsck = Rio_fs.Fsck
module Ondisk = Rio_fs.Ondisk

type verify = {
  intact : int;
  mismatched : int;
  changing : int;
}

type report = {
  registry_entries : int;
  corrupt_registry_slots : int;
  swap_dumped_bytes : int;
  swap_truncated_bytes : int;
  meta_restored : int;
  meta_skipped : int;
  data_restored : int;
  data_failed : int;
  meta_verify : verify;
  data_verify : verify;
  fsck : Fsck.report;
  duration_us : int;
}

let capture mem = Phys_mem.dump mem

(* The crash-time memory image the recovery reads from. The reference
   path materializes the full dump; the fast path reads through a
   copy-on-write snapshot — O(1) to take, and recovery's own writes
   (registry scrub, buffer restores, the warm kernel boot) COW at most
   the pages they touch. Both serve byte-identical contents. *)
type view =
  | Full_image of bytes
  | Snap_view of { vmem : Phys_mem.t; snap : Phys_mem.snapshot }

let view_size = function
  | Full_image b -> Bytes.length b
  | Snap_view { vmem; _ } -> Phys_mem.size vmem

let view_sub v pos len =
  match v with
  | Full_image b -> Bytes.sub b pos len
  | Snap_view { vmem; snap } -> Phys_mem.snap_blit_out vmem snap pos ~len

let view_crc v pos ~len =
  match v with
  | Full_image b -> Rio_util.Checksum.crc32 b ~pos ~len
  | Snap_view { vmem; snap } -> Phys_mem.snap_checksum_range vmem snap pos ~len

let read_superblock_opt disk =
  match Ondisk.read_superblock (Disk.peek disk ~sector:Ondisk.superblock_sector) with
  | sb -> Some sb
  | exception Rio_fs.Fs_types.Fs_error _ -> None

let dump_chunk = 128 * 1024

(* Whether every page overlapping [pos, pos+n) was provably all-zero at
   snapshot time (never written, not COW-saved) — such chunks can be
   written from a shared zero buffer without reading the view. *)
let chunk_is_zero vmem snap pos n =
  let first = pos / Phys_mem.page_size and last = (pos + n - 1) / Phys_mem.page_size in
  let rec go pfn = pfn > last || (Phys_mem.snap_page_is_zero vmem snap pfn && go (pfn + 1)) in
  go first

let dump_to_swap_view ~disk ~view =
  match read_superblock_opt disk with
  | None -> (0, view_size view)
  | Some sb ->
    let swap_bytes = sb.Ondisk.swap_sectors * Disk.sector_bytes in
    let len = min (view_size view) swap_bytes in
    (* Stream in 128 KB synchronous chunks — one long sequential write.
       Every chunk is written on both paths (same sectors, same lengths,
       same simulated time); the fast path reuses one scratch buffer, and
       chunks the snapshot proves are all-zero skip both the read and the
       payload entirely ({!Disk.write_zeros_sync} has identical timing,
       events, and statistics to a zero-buffer [write_sync]). *)
    let buf = Bytes.create (min dump_chunk (max 1 len)) in
    let pos = ref 0 in
    while !pos < len do
      let n = min dump_chunk (len - !pos) in
      let sector = sb.Ondisk.swap_start + (!pos / Disk.sector_bytes) in
      (match view with
      | Snap_view { vmem; snap } when n = dump_chunk && chunk_is_zero vmem snap !pos n ->
        Disk.write_zeros_sync disk ~sector ~count:(n / Disk.sector_bytes)
      | _ ->
        let b = if n = Bytes.length buf then buf else Bytes.create n in
        (match view with
        | Full_image image -> Bytes.blit image !pos b 0 n
        | Snap_view { vmem; snap } -> Phys_mem.snap_blit_into vmem snap !pos b ~pos:0 ~len:n);
        Disk.write_sync disk ~sector b);
      pos := !pos + n
    done;
    (len, view_size view - len)

let dump_to_swap ~disk ~image = dump_to_swap_view ~disk ~view:(Full_image image)

let parse_registry_view ~view ~layout =
  let region = Layout.region layout Layout.Registry in
  match view with
  | Full_image image -> Registry.parse_image ~image ~region ~mem_bytes:(Bytes.length image)
  | Snap_view { vmem; snap } ->
    let slice = Phys_mem.snap_blit_out vmem snap region.Layout.base ~len:region.Layout.bytes in
    Registry.parse_slice ~slice ~region ~mem_bytes:(Phys_mem.size vmem)

let parse_registry ~image ~layout = parse_registry_view ~view:(Full_image image) ~layout

(* Read from the entry's current pointer: mid-shadow-update entries point
   at the consistent pre-image (§2.3). *)
let entry_in_view view (e : Registry.entry) =
  e.Registry.paddr + e.Registry.size <= view_size view

let entry_image_view view (e : Registry.entry) =
  if entry_in_view view e then Some (view_sub view e.Registry.paddr e.Registry.size) else None

let verify_entries_view ~view entries =
  List.fold_left
    (fun acc (e : Registry.entry) ->
      if e.Registry.changing then { acc with changing = acc.changing + 1 }
      else if not (entry_in_view view e) then { acc with mismatched = acc.mismatched + 1 }
      else
        let actual = view_crc view e.Registry.paddr ~len:e.Registry.size in
        if actual = e.Registry.checksum then { acc with intact = acc.intact + 1 }
        else { acc with mismatched = acc.mismatched + 1 })
    { intact = 0; mismatched = 0; changing = 0 }
    entries

let verify_entries ~image entries = verify_entries_view ~view:(Full_image image) entries

let split_entries entries =
  List.partition (fun (e : Registry.entry) -> e.Registry.kind = Registry.Meta_buffer) entries

let restore_metadata_view ~disk ~view entries =
  let sb = read_superblock_opt disk in
  let restored = ref 0 and skipped = ref 0 in
  List.iter
    (fun (e : Registry.entry) ->
      (* Metadata blkno is an absolute sector base; validate it against the
         device and keep it away from the superblock itself. *)
      let plausible =
        e.Registry.blkno > 0
        && e.Registry.blkno + Rio_fs.Fs_types.sectors_per_block <= Disk.capacity_sectors disk
        && (match sb with
           | Some sb -> e.Registry.blkno >= sb.Ondisk.ibitmap_start
           | None -> true)
      in
      match entry_image_view view e with
      | Some bytes when plausible ->
        Disk.write_sync disk ~sector:e.Registry.blkno bytes;
        incr restored
      | Some _ | None -> incr skipped)
    entries;
  (!restored, !skipped)

let restore_metadata ~disk ~image entries =
  restore_metadata_view ~disk ~view:(Full_image image) entries

let restore_data_view ~fs ~view entries =
  let restored = ref 0 and failed = ref 0 in
  List.iter
    (fun (e : Registry.entry) ->
      match entry_image_view view e with
      | None -> incr failed
      | Some bytes ->
        (match Fs.write_by_ino fs ~ino:e.Registry.ino ~offset:e.Registry.offset bytes with
        | () -> incr restored
        | exception Rio_fs.Fs_types.Fs_error _ -> incr failed))
    entries;
  (!restored, !failed)

let restore_data ~fs ~image entries = restore_data_view ~fs ~view:(Full_image image) entries

let perform ~mem ~disk ~layout ~engine ~reboot =
  (* The fast/reference choice rides the global {!Rio_util.Fastpath} knob
     (set once, before any domains spawn) so the nine call sites need no
     plumbing; both paths produce byte-identical recoveries. *)
  let fast = Rio_util.Fastpath.on () in
  let module Trace = Rio_obs.Trace in
  let obs = Engine.obs engine in
  let phase name f =
    if Trace.enabled obs then begin
      let start_us = Engine.now engine in
      let r = f () in
      Trace.emit obs Trace.Rio
        (Trace.Phase { name; start_us; end_us = Engine.now engine });
      r
    end
    else f ()
  in
  let t0 = Engine.now engine in
  let view =
    phase "warm-reboot: capture" (fun () ->
        if fast then Snap_view { vmem = mem; snap = Phys_mem.snapshot mem }
        else Full_image (capture mem))
  in
  Fun.protect
    ~finally:(fun () ->
      match view with
      | Snap_view { vmem; snap } -> Phys_mem.release vmem snap
      | Full_image _ -> ())
    (fun () ->
      let swap_dumped_bytes, swap_truncated_bytes =
        phase "warm-reboot: dump to swap" (fun () -> dump_to_swap_view ~disk ~view)
      in
      if Trace.enabled obs then
        Trace.emit obs Trace.Rio
          (Trace.Swap_dump { dumped = swap_dumped_bytes; truncated = swap_truncated_bytes });
      let parsed =
        phase "warm-reboot: parse registry" (fun () -> parse_registry_view ~view ~layout)
      in
      let meta_entries, data_entries = split_entries parsed.Registry.entries in
      let meta_verify, data_verify =
        phase "warm-reboot: verify checksums" (fun () ->
            (verify_entries_view ~view meta_entries, verify_entries_view ~view data_entries))
      in
      let meta_restored, meta_skipped =
        phase "warm-reboot: restore metadata" (fun () ->
            restore_metadata_view ~disk ~view meta_entries)
      in
      let fsck = phase "warm-reboot: fsck" (fun () -> Fsck.run ~disk) in
      let fs = phase "warm-reboot: reboot" (fun () -> reboot ()) in
      let data_restored, data_failed =
        phase "warm-reboot: restore data" (fun () ->
            if fsck.Fsck.unrecoverable then (0, List.length data_entries)
            else restore_data_view ~fs ~view data_entries)
      in
      {
        registry_entries = List.length parsed.Registry.entries;
        corrupt_registry_slots = parsed.Registry.corrupt_slots;
        swap_dumped_bytes;
        swap_truncated_bytes;
        meta_restored;
        meta_skipped;
        data_restored;
        data_failed;
        meta_verify;
        data_verify;
        fsck;
        duration_us = Engine.now engine - t0;
      })
