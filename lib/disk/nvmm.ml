(* A battery-backed / NVMM-style persistence tier with append-log
   semantics (NVCache-style): writes land in a persistent log at memory
   speed, so service time is flat — a fixed setup cost plus a byte-rate
   transfer — with no seeks and no rotation. The timing constants are
   deliberately local to this backend; they are not part of the shared
   {!Rio_sim.Costs} vocabulary, which describes the mechanical disk.

   Tear model: an interrupted log append is torn at cache-line
   granularity. The store-buffer line (64 B) holding the front of the
   in-flight data reaches the log; the rest of the sector keeps its old
   contents. No garbage is ever invented — battery-backed SRAM fails
   clean, it does not scribble. *)

let sector_bytes = Store.sector_bytes

let setup_us = 1 (* per-request controller/doorbell overhead *)

let bytes_per_us = 2048 (* sustained append bandwidth: ~2 GB/s *)

let cache_line = 64

type t = {
  mutable log_tail : int; (* sectors ever appended — the log write pointer *)
}

let create () = { log_tail = 0 }

(* Flat latency: position-independent, so the front-end's seek counter
   never moves for this backend. *)
let service t ~sector:(_ : int) ~count =
  t.log_tail <- t.log_tail + count;
  setup_us + ((count * sector_bytes) + bytes_per_us - 1) / bytes_per_us

let log_tail t = t.log_tail

(* First cache line of the new data is durable, the old suffix survives. *)
let tear (_ : t) ~old_sector ~data ~pos =
  let b = Bytes.copy old_sector in
  Bytes.blit data pos b 0 cache_line;
  b

type state = { s_log_tail : int }

let state t = { s_log_tail = t.log_tail }

let set_state t s = t.log_tail <- s.s_log_tail
