type 'a entry = {
  time : int;
  seq : int;
  id : int;
  payload : 'a;
}

type handle = int

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
  mutable next_id : int;
  cancelled : (int, unit) Hashtbl.t;
  mutable live : int;
}

let create () =
  { heap = [||]; size = 0; next_seq = 0; next_id = 0; cancelled = Hashtbl.create 16; live = 0 }

let is_empty t = t.live = 0

let length t = t.live

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && entry_lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let new_cap = max 16 (cap * 2) in
    (* The dummy element is never read: size guards all accesses. *)
    let dummy = t.heap.(0) in
    let heap = Array.make new_cap dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let push t ~time payload =
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry = { time; seq = t.next_seq; id; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  t.live <- t.live + 1;
  id

let cancel t handle =
  if not (Hashtbl.mem t.cancelled handle) then begin
    Hashtbl.replace t.cancelled handle ();
    t.live <- max 0 (t.live - 1)
  end

let remove_min t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  top

(* Drop cancelled entries sitting at the top of the heap. *)
let rec skim t =
  if t.size > 0 then begin
    let top = t.heap.(0) in
    if Hashtbl.mem t.cancelled top.id then begin
      ignore (remove_min t);
      Hashtbl.remove t.cancelled top.id;
      skim t
    end
  end

let peek_time t =
  skim t;
  if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  skim t;
  if t.size = 0 then None
  else begin
    let e = remove_min t in
    t.live <- t.live - 1;
    Some (e.time, e.payload)
  end

let pop_until t ~time =
  skim t;
  if t.size = 0 || t.heap.(0).time > time then None else pop t

let clear t =
  t.size <- 0;
  t.live <- 0;
  Hashtbl.reset t.cancelled
