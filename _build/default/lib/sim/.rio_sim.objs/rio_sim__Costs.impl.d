lib/sim/costs.ml: Format Rio_util
