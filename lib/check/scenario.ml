module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types
module Vista = Rio_txn.Vista
module Pattern = Rio_util.Pattern

type t = {
  name : string;
  slug : string;
  setup : Rio_fs.Fs.t -> unit;
  op : vista_hook:(Rio_txn.Vista.event -> unit) -> Rio_fs.Fs.t -> unit;
  check : Rio_fs.Fs.t -> string list;
}

(* ---------------- shared pre-state ---------------- *)

(* An innocent bystander in the same directory (and so, for the rename
   scenario, the same directory block) as the files under test: crash
   recovery must never touch it. *)
let keep_path = "/check/keep"
let keep_seed = 0x5eed
let keep_len = 2000

let setup_base fs =
  Fs.mkdir fs "/check";
  Fs.write_file fs keep_path (Pattern.fill ~seed:keep_seed ~len:keep_len)

let check_keep fs acc =
  if not (Fs.exists fs keep_path) then (keep_path ^ " (bystander) vanished") :: acc
  else
    let b = Fs.read_file fs keep_path in
    if Bytes.equal b (Pattern.fill ~seed:keep_seed ~len:keep_len) then acc
    else (keep_path ^ " (bystander) corrupted") :: acc

let check_listable fs acc =
  match Fs.readdir fs "/check" with
  | (_ : string list) -> acc
  | exception Fs_types.Fs_error m -> ("/check unreadable after recovery: " ^ m) :: acc

(* Bytes must come from [expect] or be zero (an unwritten hole). *)
let check_prefix_or_zero fs path ~expect acc =
  let b = Fs.read_file fs path in
  let n = Bytes.length b in
  if n > Bytes.length expect then
    Printf.sprintf "%s has impossible size %d (wrote %d)" path n (Bytes.length expect) :: acc
  else begin
    let bad = ref None in
    for i = n - 1 downto 0 do
      let c = Bytes.get b i in
      if c <> Bytes.get expect i && c <> '\000' then bad := Some i
    done;
    match !bad with
    | Some i -> Printf.sprintf "%s byte %d is neither the written pattern nor zero" path i :: acc
    | None -> acc
  end

(* ---------------- creat ---------------- *)

let creat_seed = 0xc4ea
let creat_len = 600

let creat =
  {
    name = "create a file and write 600 bytes";
    slug = "creat";
    setup = setup_base;
    op =
      (fun ~vista_hook:_ fs ->
        let fd = Fs.create fs "/check/f" in
        Fs.write fs fd (Pattern.fill ~seed:creat_seed ~len:creat_len);
        Fs.close fs fd);
    check =
      (fun fs ->
        let acc = check_keep fs (check_listable fs []) in
        let acc =
          if not (Fs.exists fs "/check/f") then acc
          else
            check_prefix_or_zero fs "/check/f"
              ~expect:(Pattern.fill ~seed:creat_seed ~len:creat_len)
              acc
        in
        List.rev acc);
  }

(* ---------------- write (overwrite in place) ---------------- *)

let write_old_seed = 0xa11c
let write_new_seed = 0xb0b5
let write_len = 12000 (* two blocks, so per-block store windows interleave *)

let write =
  {
    name = "overwrite 12000 bytes of an existing file";
    slug = "write";
    setup =
      (fun fs ->
        setup_base fs;
        Fs.write_file fs "/check/g" (Pattern.fill ~seed:write_old_seed ~len:write_len));
    op =
      (fun ~vista_hook:_ fs ->
        let fd = Fs.open_file fs "/check/g" in
        Fs.pwrite fs fd ~offset:0 (Pattern.fill ~seed:write_new_seed ~len:write_len);
        Fs.close fs fd);
    check =
      (fun fs ->
        let acc = check_keep fs (check_listable fs []) in
        let acc =
          if not (Fs.exists fs "/check/g") then "/check/g vanished (was never removed)" :: acc
          else begin
            let b = Fs.read_file fs "/check/g" in
            if Bytes.length b <> write_len then
              Printf.sprintf "/check/g size %d, expected %d" (Bytes.length b) write_len :: acc
            else begin
              let old_b = Pattern.fill ~seed:write_old_seed ~len:write_len in
              let new_b = Pattern.fill ~seed:write_new_seed ~len:write_len in
              let bad = ref None in
              for i = write_len - 1 downto 0 do
                let c = Bytes.get b i in
                if c <> Bytes.get old_b i && c <> Bytes.get new_b i then bad := Some i
              done;
              match !bad with
              | Some i ->
                Printf.sprintf "/check/g byte %d is neither the old nor the new pattern" i
                :: acc
              | None -> acc
            end
          end
        in
        List.rev acc);
  }

(* ---------------- rename ---------------- *)

let rename_seed = 0x5c5c
let rename_len = 800

let rename =
  {
    name = "rename within one directory";
    slug = "rename";
    setup =
      (fun fs ->
        setup_base fs;
        Fs.write_file fs "/check/src" (Pattern.fill ~seed:rename_seed ~len:rename_len));
    op = (fun ~vista_hook:_ fs -> Fs.rename fs "/check/src" "/check/dst");
    check =
      (fun fs ->
        let acc = check_keep fs (check_listable fs []) in
        let s = Fs.exists fs "/check/src" and d = Fs.exists fs "/check/dst" in
        let acc =
          if (not s) && not d then
            "rename victim lost: neither /check/src nor /check/dst resolves" :: acc
          else if s && d then
            "rename intermediate state exposed: both /check/src and /check/dst exist" :: acc
          else acc
        in
        let expect = Pattern.fill ~seed:rename_seed ~len:rename_len in
        let check_content path acc =
          if not (Fs.exists fs path) then acc
          else
            let b = Fs.read_file fs path in
            if Bytes.equal b expect then acc else (path ^ " contents corrupted by rename") :: acc
        in
        List.rev (check_content "/check/dst" (check_content "/check/src" acc)));
  }

(* ---------------- vista ---------------- *)

let ledger_path = "/check/ledger"
let vista_old_seed = 0x01d0
let vista_new_seed = 0x0e11
let vista_len = 512

let vista =
  {
    name = "Vista transaction: two writes and a commit";
    slug = "vista";
    setup =
      (fun fs ->
        setup_base fs;
        let store = Vista.create fs ~path:ledger_path ~size:4096 in
        let txn = Vista.begin_txn store in
        Vista.write txn ~offset:0 (Pattern.fill ~seed:vista_old_seed ~len:vista_len);
        Vista.commit txn);
    op =
      (fun ~vista_hook fs ->
        let store = Vista.open_existing fs ~path:ledger_path in
        Vista.set_observer store vista_hook;
        let txn = Vista.begin_txn store in
        let half = vista_len / 2 in
        Vista.write txn ~offset:0 (Pattern.fill_at ~seed:vista_new_seed ~offset:0 ~len:half);
        Vista.write txn ~offset:half
          (Pattern.fill_at ~seed:vista_new_seed ~offset:half ~len:(vista_len - half));
        Vista.commit txn);
    check =
      (fun fs ->
        let acc = check_keep fs (check_listable fs []) in
        let acc =
          if not (Fs.exists fs ledger_path) then (ledger_path ^ " vanished") :: acc
          else begin
            ignore (Vista.recover fs ~path:ledger_path);
            let store = Vista.open_existing fs ~path:ledger_path in
            let b = Vista.read store ~offset:0 ~len:vista_len in
            let old_b = Pattern.fill ~seed:vista_old_seed ~len:vista_len in
            let new_b = Pattern.fill ~seed:vista_new_seed ~len:vista_len in
            let acc =
              if Bytes.equal b old_b || Bytes.equal b new_b then acc
              else "vista atomicity violated: ledger is neither old nor new state" :: acc
            in
            let log = ledger_path ^ ".undo" in
            if Fs.exists fs log && (Fs.stat fs log).Fs.st_size <> 0 then
              "vista recover left a non-empty undo log" :: acc
            else acc
          end
        in
        List.rev acc);
  }

(* ---------------- sync (write-behind barrier) ---------------- *)

let sync_seed = 0x59c5
let sync_len = 9000 (* two blocks: the barrier stages a multi-segment batch *)

(* The op is the durability barrier itself: under a policy whose sync
   flushes (Rio_idle and the disk-based ones), the crash points are the
   write-behind pipeline's wb-queue/wb-flush/wb-commit windows; under
   plain Rio sync returns immediately and the scenario contributes no
   points. The file was fully written before arming, so recovery owes its
   exact contents whatever the pipeline was doing. *)
let sync_barrier =
  {
    name = "sync an already-written file through the write-behind pipeline";
    slug = "sync";
    setup =
      (fun fs ->
        setup_base fs;
        Fs.write_file fs "/check/s" (Pattern.fill ~seed:sync_seed ~len:sync_len));
    op = (fun ~vista_hook:_ fs -> Fs.sync fs);
    check =
      (fun fs ->
        let acc = check_keep fs (check_listable fs []) in
        let acc =
          if not (Fs.exists fs "/check/s") then "/check/s vanished across sync" :: acc
          else if
            Bytes.equal (Fs.read_file fs "/check/s") (Pattern.fill ~seed:sync_seed ~len:sync_len)
          then acc
          else "/check/s corrupted across sync" :: acc
        in
        List.rev acc);
  }

let all = [ creat; write; rename; vista; sync_barrier ]
let find slug = List.find_opt (fun s -> s.slug = slug) all

(* ---------------- multi-task scenarios ---------------- *)

module Sched = Rio_task.Sched
module Syscall = Fs.Syscall

(* A multi-task scenario: one body per task, each issuing its steps
   through the task-scoped syscall entry (locking on — these scripts
   assert the SAFE protocol under interleaving). The check must be
   interleaving-independent: it may assume nothing about which task got
   how far, only the per-op atomicity contracts. *)
type multi = {
  m_name : string;
  m_slug : string;
  m_setup : Rio_fs.Fs.t -> unit;
  m_tasks : (Rio_task.Sched.t -> Rio_task.Task.t -> Rio_fs.Fs.t -> unit) list;
  m_check : Rio_fs.Fs.t -> string list;
}

let tt_seed = 0x77aa
let tt_len = 12000 (* two blocks, so per-block store windows interleave *)

let two_task =
  let sys sched task fs call = ignore (Sched.syscall sched ~locking:true task fs call) in
  {
    m_name = "two tasks: chunked create vs rename + mkdir";
    m_slug = "two-task";
    m_setup =
      (fun fs ->
        setup_base fs;
        Fs.mkdir fs "/check/ta";
        Fs.mkdir fs "/check/tb";
        Fs.write_file fs "/check/tb/g" (Pattern.fill ~seed:rename_seed ~len:rename_len));
    m_tasks =
      [
        (fun sched task fs ->
          let fd =
            Syscall.fd_exn (Sched.syscall sched ~locking:true task fs (Syscall.Creat "/check/ta/f"))
          in
          let half = tt_len / 2 in
          sys sched task fs
            (Syscall.Pwrite
               { fd; offset = 0; data = Pattern.fill_at ~seed:tt_seed ~offset:0 ~len:half });
          sys sched task fs
            (Syscall.Pwrite
               {
                 fd;
                 offset = half;
                 data = Pattern.fill_at ~seed:tt_seed ~offset:half ~len:(tt_len - half);
               });
          sys sched task fs (Syscall.Close fd));
        (fun sched task fs ->
          sys sched task fs (Syscall.Rename { src = "/check/tb/g"; dst = "/check/tb/h" });
          sys sched task fs (Syscall.Mkdir "/check/tb/d"));
      ];
    m_check =
      (fun fs ->
        let acc = check_keep fs (check_listable fs []) in
        (* Task t0's file: absent, or a prefix-or-zero of its stream. *)
        let acc =
          if not (Fs.exists fs "/check/ta/f") then acc
          else
            check_prefix_or_zero fs "/check/ta/f"
              ~expect:(Pattern.fill ~seed:tt_seed ~len:tt_len)
              acc
        in
        (* Task t1's rename: exactly one name, intact contents. *)
        let s = Fs.exists fs "/check/tb/g" and d = Fs.exists fs "/check/tb/h" in
        let acc =
          if (not s) && not d then
            "rename victim lost: neither /check/tb/g nor /check/tb/h resolves" :: acc
          else if s && d then
            "rename intermediate state exposed: both /check/tb/g and /check/tb/h exist" :: acc
          else acc
        in
        let expect = Pattern.fill ~seed:rename_seed ~len:rename_len in
        let content path acc =
          if not (Fs.exists fs path) then acc
          else if Bytes.equal (Fs.read_file fs path) expect then acc
          else (path ^ " contents corrupted") :: acc
        in
        let acc = content "/check/tb/h" (content "/check/tb/g" acc) in
        (* Task t1's mkdir: absent, or present and listable. *)
        let acc =
          if not (Fs.exists fs "/check/tb/d") then acc
          else
            match Fs.readdir fs "/check/tb/d" with
            | (_ : string list) -> acc
            | exception Fs_types.Fs_error m -> ("/check/tb/d unreadable: " ^ m) :: acc
        in
        List.rev acc);
  }

let multis = [ two_task ]
let find_multi slug = List.find_opt (fun m -> m.m_slug = slug) multis
