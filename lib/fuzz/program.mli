(** Fuzz programs: executing generated op sequences and auditing their
    post-crash contracts.

    The explorer ({!Rio_check.Explorer}) checks a handful of hand-written
    scenarios exhaustively; the fuzzer instead runs {e random} programs
    ({!Rio_workload.Script.Gen}) against the same boundary probe. This
    module is the program side of that: a fixed setup (a bystander file
    and a Vista store planted under [/fuzz]), an executor that issues each
    generated op the way real programs do (chunked store windows), and the
    recovery audit that knows what each op owes after a crash:

    - completed ops: their whole effect, exactly;
    - the in-flight op: atomic-or-absent metadata, prefix-durable data
      (unwritten tail bytes may read back zero, never garbage; overwritten
      windows read old-or-new per byte);
    - everything else (the bystander, other files, directories): exact;
    - the Vista store: exactly the last committed transaction, or the
      in-flight one (old-or-new), with an empty undo log after
      {!Rio_txn.Vista.recover}. *)

val root : string
(** ["/fuzz"] — the directory every program grows under. *)

val keep_path : string
(** The bystander file planted by {!setup}; no generated op touches it. *)

val ledger_path : string
(** The Vista store {!setup} plants (undo log at [ledger_path ^ ".undo"]). *)

val gen_spec : Rio_workload.Script.Gen.spec
(** The generator spec the fuzzer uses (rooted at {!root}). *)

type world = { fs : Rio_fs.Fs.t; store : Rio_txn.Vista.t }

val setup : Rio_fs.Fs.t -> world
(** Plant the root directory, the bystander file, and the Vista store
    (one committed transaction). Run before arming the probe. *)

val exec : world -> Rio_workload.Script.Gen.op -> unit
(** Execute one op. Raises {!Rio_fs.Fs_types.Fs_error} when the op is
    invalid against the current tree (shrunk sub-programs only; generated
    programs are valid by construction). *)

val check : Rio_fs.Fs.t -> ops:Rio_workload.Script.Gen.op list -> in_flight:int -> string list
(** Audit a recovered file system against the model of [ops], where the
    crash interrupted [ops.(in_flight)]. Returns human-readable problems;
    [[]] means every contract held. Runs {!Rio_txn.Vista.recover} as part
    of the audit (the store check needs a recovered store). *)

val check_cold :
  Rio_fs.Fs.t -> ops:Rio_workload.Script.Gen.op list -> in_flight:int -> string list
(** The cold-recovery contract: the crash was recovered {e without} a warm
    reboot (memory lost, fsck + remount only), so only data a completed
    [Sync] barrier pushed out is owed. Files fully established before the
    last completed sync and untouched by later ops must read back exact.
    Lenient where the backend's tear model can legitimately bite (missing
    file, size mismatch); a size-correct file with wrong bytes — metadata
    durable, data not — is a violation. [[]] when no sync completed. *)

(** {1 The multi-task world}

    Each task owns a disjoint subtree [/fuzz/t<i>] with its own Vista
    ledger, so every task's expected state stays exact under any
    interleaving; what the tasks share — and what the interleaving
    fuzzer stresses — is the machinery underneath the namespace: block
    caches, allocation bitmaps, shared inode sectors, the Rio registry,
    and the shadow page. *)

val task_root : int -> string
(** [/fuzz/t<i>] — task [i]'s subtree. *)

val task_ledger : int -> string
(** Task [i]'s Vista store path. *)

val task_gen_spec : int -> Rio_workload.Script.Gen.spec
(** Generator spec for task [i] (rooted at {!task_root}[ i]). *)

type tworld = { tfs : Rio_fs.Fs.t; stores : Rio_txn.Vista.t array }

val setup_tasks : Rio_fs.Fs.t -> tasks:int -> tworld
(** Plant the root, the shared bystander file, and one subtree + Vista
    store per task. Run before arming the probe. *)

val exec_task :
  Rio_task.Sched.t ->
  locking:bool ->
  task:Rio_task.Task.t ->
  tworld ->
  store:Rio_txn.Vista.t ->
  Rio_workload.Script.Gen.op ->
  unit
(** Execute one op as [task] through {!Rio_task.Sched.syscall}: paths
    made cwd-relative (the fiber chdirs into its subtree), fds routed
    through the task's descriptor table, and — when [locking] — mutating
    calls hold the ownership lock (a Vista transaction holds it across
    the whole transaction). [locking:false] is the lost-update ablation. *)

(** How far one task's program got when the crash hit. *)
type progress =
  | Completed of int
      (** the first [n] ops ran to completion; the rest never started *)
  | Interrupted of int  (** ops [0..k-1] completed; op [k] was in flight *)

val check_tasks :
  Rio_fs.Fs.t ->
  progs:Rio_workload.Script.Gen.op list array ->
  progress:progress array ->
  string list
(** Audit a recovered multi-task file system: the shared bystander once,
    then each task's subtree against its own model and {!progress}. Any
    task caught mid-op is [Interrupted] (the crasher, and bystanders whose
    op the scheduler had suspended); tasks between ops are [Completed].
    Problems are tagged ["t<i>: "] with the owning task. *)
