(** Simulated physical memory.

    One flat byte array divided into 8 KB pages (the Digital Unix page size
    the paper's registry is keyed to). Physical addresses are byte offsets.

    Crash semantics are the heart of Rio: [reset] models a warm reboot (the
    machine resets but DRAM keeps its contents, as the DEC Alpha allows,
    paper §5) and is a no-op on the data; [power_cycle] models a cold boot
    and scrubs everything. [dump] / [restore_dump] support the warm-reboot
    crash dump to the swap partition (§2.2).

    The write path additionally maintains a per-page monotonic version
    counter and a dirty bitmap, and feeds copy-on-write {!snapshot}s: the
    fast data path keys its decoded-instruction and checksum caches on
    page versions, sweeps only dirty pages, and captures crash images in
    O(pages dirtied) instead of O(memory). *)

type t

type paddr = int
(** A physical byte address. *)

val page_size : int
(** 8192 bytes. *)

val create : bytes_total:int -> t
(** [create ~bytes_total] makes zeroed memory; the size is rounded up to a
    whole number of pages. The backing buffer may be recycled from an
    earlier {!retire} of the same size. *)

val retire : t -> unit
(** End-of-trial teardown: re-zero the dirty pages (O(dirty)) and park the
    backing buffer for reuse by the next same-size [create]. The memory
    must not be used afterwards. Raises [Invalid_argument] if a snapshot
    is still active. *)

val size : t -> int
(** Total bytes. *)

val page_count : t -> int

val page_base : int -> paddr
(** [page_base pfn] is the first address of physical frame [pfn]. *)

val pfn_of_addr : paddr -> int
(** Physical frame number containing an address. *)

val in_range : t -> paddr -> len:int -> bool
(** Whether [\[addr, addr+len)] lies inside memory. *)

(** {1 Access}

    All accessors raise [Invalid_argument] on out-of-range addresses —
    callers (the MMU) are expected to have validated addresses; the kernel
    model maps such violations to machine checks. *)

val read_u8 : t -> paddr -> int
val write_u8 : t -> paddr -> int -> unit

val read_u32 : t -> paddr -> int
(** Little-endian, result in [\[0, 2^32)]. *)

val write_u32 : t -> paddr -> int -> unit

val read_u64 : t -> paddr -> int
(** Little-endian, truncated to OCaml's 63-bit int (addresses and kernel
    integers in this model all fit). *)

val write_u64 : t -> paddr -> int -> unit

val blit_in : t -> paddr -> bytes -> unit
(** Copy bytes into memory at an address. *)

val blit_from : t -> paddr -> bytes -> pos:int -> len:int -> unit
(** [blit_from t addr src ~pos ~len] copies [src\[pos, pos+len)] into
    memory at [addr] without the intermediate [Bytes.sub] that
    [blit_in] callers would need. *)

val blit_out : t -> paddr -> len:int -> bytes
(** Copy a range of memory out (allocates). *)

val blit_into : t -> paddr -> bytes -> pos:int -> len:int -> unit
(** [blit_into t addr dst ~pos ~len] copies memory [\[addr, addr+len)]
    into [dst] at [pos] — the non-allocating [blit_out]. *)

val blit_within : t -> src:paddr -> dst:paddr -> len:int -> unit
(** memmove semantics within simulated memory. *)

val fill : t -> paddr -> len:int -> char -> unit

val checksum_range : t -> paddr -> len:int -> int
(** CRC-32 of the range, used by the Rio checksum guard. Single-page
    ranges are memoized on (addr, len, page version), so re-verifying an
    unchanged page is O(1). *)

(** {1 Page versions and the dirty bitmap}

    Every mutation bumps the version of each page it touches. Versions are
    never reset — a [power_cycle] bumps them too — so (page, version) is a
    sound cache key for page contents, and version 0 means the page still
    holds its created zeroes. *)

val page_version : t -> int -> int
(** Mutation counter of frame [pfn]. *)

val is_dirty : t -> int -> bool
(** Whether frame [pfn] has ever been written. *)

val dirty_count : t -> int
(** Number of dirty pages. *)

val iter_dirty : t -> (int -> unit) -> unit
(** Apply to each dirty frame number in ascending order. *)

(** {1 Fault-injection hooks} *)

val flip_bit : t -> paddr -> bit:int -> unit
(** Flip bit [bit] (0-7) of the byte at [addr]. *)

(** {1 Crash and reboot semantics} *)

val reset : t -> unit
(** Warm reset: contents survive (no-op on data). *)

val power_cycle : t -> unit
(** Cold boot: all bytes zeroed (and all pages marked dirty — their
    contents changed). *)

val dump : t -> bytes
(** A full copy of memory — the §2.2 crash dump taken early in the warm
    reboot, before VM initialization can touch anything. *)

val restore_dump : t -> bytes -> unit
(** Overwrite memory from a dump of the same size. *)

(** {1 Copy-on-write snapshots}

    A snapshot freezes the current contents in O(1): subsequent writes
    save the 8 KB pre-image of each page they first touch. Reading
    through the snapshot serves saved pages from the pre-images and
    untouched pages from live memory; {!restore} writes the pre-images
    back, returning memory to its snapshot-time state in O(pages dirtied
    since the snapshot). Snapshots of the same memory may overlap in
    time; each is independent. *)

type snapshot

val snapshot : t -> snapshot
(** Freeze the current contents. *)

val release : t -> snapshot -> unit
(** Stop tracking writes for this snapshot (its saved pages remain
    readable but no longer grow). Restoring a released snapshot is a
    programming error. *)

val restore : t -> snapshot -> unit
(** Write the pre-images back: memory returns to its snapshot-time
    contents. The snapshot is released in the process. *)

val restore_keep : t -> snapshot -> int
(** Write the pre-images back like {!restore}, but keep the snapshot
    active with an emptied save table — the same frozen contents can be
    restored again and again (the world-template trial loop). Returns
    the number of pages restored (the dirt since the last restore). *)

val snap_saved_pages : snapshot -> int
(** How many pages the copy-on-write machinery has saved so far. *)

val snap_blit_into : t -> snapshot -> paddr -> bytes -> pos:int -> len:int -> unit
(** Read a range as it was at snapshot time into a caller buffer. *)

val snap_blit_out : t -> snapshot -> paddr -> len:int -> bytes
(** Allocating variant of {!snap_blit_into}. *)

val snap_page_is_zero : t -> snapshot -> int -> bool
(** Whether frame [pfn] was provably all-zero at snapshot time (never
    written before the snapshot and not saved since). *)

val snap_checksum_range : t -> snapshot -> paddr -> len:int -> int
(** CRC-32 of a range as it was at snapshot time; hits the single-page
    memo when the range is untouched since the snapshot. *)

val unsafe_raw : t -> bytes
(** The underlying storage, exposed for the interpreted CPU's hot path and
    for checksumming; mutating it bypasses the version/dirty/snapshot
    bookkeeping — callers must not write through it while a snapshot is
    active or a page version is cached. *)

