examples/database_commit.ml: Bytes Char Printf Rio_core Rio_fs Rio_kernel Rio_sim Rio_util
