(** Small descriptive-statistics helpers for experiment reports. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for arrays of length < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Requires a non-empty array. Does not mutate [xs]. *)

val median : float array -> float

val min_max : float array -> float * float
(** Requires a non-empty array. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or [nan] when [b = 0]. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Requires a non-empty array. *)

val pp_summary : Format.formatter -> summary -> unit

val binomial_rate : int -> int -> float
(** [binomial_rate k n] is the observed rate [k/n] (0 when [n=0]). *)

val wilson_interval : int -> int -> float * float
(** [wilson_interval k n] is the 95% Wilson score interval for a binomial
    proportion with [k] successes out of [n] trials — used to put error bars
    on the corruption rates of Table 1. Returns [(0., 1.)] when [n = 0]. *)
