(** Workload scripts: flat operation streams executed against a file
    system.

    Operations are chunked the way real programs issue them (open, a
    sequence of 8 KB writes, close) because the write policies of Table 2
    key off exactly that structure — write-through-on-write pays per chunk,
    write-through-on-close per file. [Cpu] burns simulated computation time
    (the Andrew benchmark's compile phase). *)

type op =
  | Mkdir of string
  | Open_write of string  (** create/truncate and make current. *)
  | Open_read of string
  | Write_chunk of bytes
  | Read_chunk of int
  | Close
  | Fsync
  | Unlink of string
  | Rmdir of string
  | Stat of string
  | Rename of string * string
  | Read_whole of string
  | Cpu of int  (** µs of pure computation. *)

val chunk_size : int
(** 8192 — the stdio-ish buffer size scripts write in. *)

val write_file_ops : string -> seed:int -> len:int -> op list
(** open, chunked pattern writes, close. *)

type runner
(** Execution state for one script (current fd etc.). *)

val runner : op list -> runner

val finished : runner -> bool

val step : runner -> Rio_fs.Fs.t -> bool
(** Execute the next operation; [false] when the script is done. *)

val run_all : runner -> Rio_fs.Fs.t -> unit

val interleave : runner list -> Rio_fs.Fs.t -> unit
(** Round-robin the runners until all finish — Sdet's concurrent scripts,
    the reliability experiment's four Andrew instances. *)

val interleave_with : runner list -> Rio_fs.Fs.t -> every:int -> (unit -> unit) -> unit
(** Like {!interleave}, calling a callback every [every] operations (the
    crash campaign interposes kernel activity there). *)

val ops_total : runner -> int
val ops_done : runner -> int

(** {1 Workload characterization} *)

type stats = {
  operations : int;
  opens_write : int;
  opens_read : int;
  bytes_written : int;
  bytes_read_chunked : int;
  whole_file_reads : int;
  mkdirs : int;
  unlinks : int;
  rmdirs : int;
  stats_calls : int;
  renames : int;
  fsyncs : int;
  cpu_us : int;
}

val describe : op list -> stats
(** Static op-mix summary of a script — what makes Sdet metadata-heavy and
    Andrew CPU-heavy is visible right here. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Random program generation}

    Higher-level, self-describing operations for the crash fuzzer: each
    carries everything needed to recompute its expected effect (pattern
    seeds and lengths), so a reference model of the file tree can be folded
    from the op list alone. The fuzzer owns execution (including Vista
    transactions); this module owns the shapes, the generator, and the
    model. *)

module Gen : sig
  type op =
    | Creat of { path : string; seed : int; len : int }
        (** Create a fresh file and write [len] pattern bytes in
            {!chunk_size} windows. *)
    | Append of { path : string; seed : int; len : int }
        (** Extend an existing file with a fresh pattern stream. *)
    | Overwrite of { path : string; offset : int; seed : int; len : int }
        (** Rewrite [\[offset, offset+len)] of an existing file in place. *)
    | Mkdir of string
    | Unlink of string
    | Rename of { src : string; dst : string }  (** [dst] is always fresh. *)
    | Vista_txn of { seed : int }
        (** Transactionally rewrite the whole Vista store with pattern
            [seed] (two writes, one commit). *)
    | Sync
        (** A [Fs.sync] durability barrier — everything written before it
            must survive even a cold (no-warm-reboot) recovery. *)

  type spec = {
    root : string;  (** Existing directory the program grows under. *)
    max_len : int;  (** Max bytes per creat/append/overwrite. *)
    max_dirs : int;  (** Directory-count cap (root included). *)
    vista : bool;  (** Whether to emit [Vista_txn] ops. *)
    sync : bool;  (** Whether to emit [Sync] ops (default spec: off, so
                      fixed-seed programs elsewhere stay stable). *)
  }

  val default_spec : root:string -> spec

  val generate : prng:Rio_util.Prng.t -> spec -> ops:int -> op list
  (** [ops] weighted-random operations over a growing tree, every one valid
      when executed in order starting from an empty [spec.root]. Pure in
      the prng state: equal streams yield equal programs. *)

  val generate_tasks :
    prng:Rio_util.Prng.t -> spec_of:(int -> spec) -> ops_per_task:int -> int -> op list list
  (** [generate_tasks ~prng ~spec_of ~ops_per_task n]: one program per
      task, task [i] over [spec_of i] (disjoint roots, so every task's
      expected state stays exact under any interleaving), each with
      [1..ops_per_task] ops. Pure in the prng state. *)

  val kind : op -> string
  (** The op's stable kind name ("creat", "append", "overwrite", "mkdir",
      "unlink", "rename", "vista-txn", "sync") — the operation axis of
      crash-space coverage maps. *)

  val describe : op -> string
  (** One human-readable line, e.g. ["creat /fuzz/f0 (1234 B, seed 0x5a)"]. *)

  (** The reference model: fold ops to the expected file tree. *)
  module Model : sig
    type t = {
      files : (string, bytes) Hashtbl.t;  (** path -> expected contents *)
      mutable dirs : string list;  (** in creation order, root first *)
      mutable vista : int option;  (** last committed transaction seed *)
    }

    val create : root:string -> t
    val copy : t -> t

    val apply : t -> op -> unit
    (** Raises [Not_found] when the op references a file the model does not
        have — how the shrinker detects an invalid sub-program. *)

    val after : root:string -> op list -> t

    val sorted_files : t -> (string * bytes) list
    (** Deterministic iteration order for checking. *)
  end
end
