module Phys_mem = Rio_mem.Phys_mem

type line = {
  addr : int;
  word : int;
  instr : Isa.t option;
}

let disassemble mem ~addr ~words =
  List.init words (fun i ->
      let a = addr + (i * Isa.word_bytes) in
      let word = Phys_mem.read_u32 mem a in
      { addr = a; word; instr = Isa.decode word })

let pp_line ppf l =
  Format.fprintf ppf "%06x: %08x  %s" l.addr l.word
    (match l.instr with Some i -> Isa.to_string i | None -> "<illegal>")

let pp_range ppf lines =
  List.iter (fun l -> Format.fprintf ppf "%a@." pp_line l) lines

let diff ~before ~after ~base ~words =
  let changed = ref [] in
  for i = words - 1 downto 0 do
    let a = base + (i * Isa.word_bytes) in
    let old_word = Int32.to_int (Bytes.get_int32_le before (i * Isa.word_bytes)) land 0xFFFF_FFFF in
    let new_word = Phys_mem.read_u32 after a in
    if old_word <> new_word then
      changed := { addr = a; word = new_word; instr = Isa.decode new_word } :: !changed
  done;
  !changed
