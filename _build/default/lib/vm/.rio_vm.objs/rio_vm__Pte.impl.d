lib/vm/pte.ml: Format
