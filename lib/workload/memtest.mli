(** memTest: the repeatable corruption-detecting workload (§3.2).

    "memTest generates a repeatable stream of file and directory creations,
    deletions, reads, and writes ... Actions and data in memTest are
    controlled by a pseudo-random number generator. After each step, memTest
    records its progress in a status file ... After the system crashes, we
    ... run memTest until it reaches the point when the system crashed. This
    reconstructs the correct contents of the test directory at the time of
    the crash, and we then compare."

    Here the generator doubles as the model: every step mutates an in-OCaml
    model of the directory tree and (when attached) the file system, drawing
    identical PRNG streams either way. Replaying [steps] steps with no file
    system reconstructs the expected state exactly. The campaign's record of
    completed steps is the "status file". *)

type config = {
  seed : int;
  dir : string;  (** Test directory (created by {!create} when attached). *)
  max_files : int;
  max_file_bytes : int;
  fsync_every_write : bool;
      (** The disk-based baseline: fsync after every write, giving
          write-through semantics (§3.3). *)
}

val default_config : config
(** seed 11, "/memtest", 48 files up to 64 KB, no fsync. *)

type t

val create : config -> t

val steps_done : t -> int

val live_mismatches : t -> int
(** Read-and-verify steps that saw wrong data while the system was still
    running. *)

val step : t -> ?fs:Rio_fs.Fs.t -> unit -> unit
(** One workload step. With [fs], applies to both model and file system;
    without, model only (replay). May raise the file system's errors — a
    crash mid-step leaves the model at the pre-step state, which is exactly
    what reconstruction needs. *)

val replay : config -> steps:int -> t
(** Reconstruct the model after [steps] completed steps. *)

val touched_by_next_step : t -> string list
(** Paths the {e next} step would touch — the in-flight operation at crash
    time, exempt from the post-crash comparison. Does not advance [t]. *)

val loss_between : earlier:t -> later:t -> int * int
(** [(files, bytes)] that rolling the [later] state back to the [earlier]
    checkpoint would lose — the cost of checkpoint-grained recovery
    (Phoenix, §6 of the paper). *)

val loss_against_fs : t -> Rio_fs.Fs.t -> int * int
(** [(files_affected, bytes_lost)] against the model — the delayed-write
    loss metric of the delay-sweep ablation. *)

type discrepancy =
  | Missing_file of string
  | Extra_file of string
  | Content_mismatch of string
  | Missing_dir of string
  | Extra_dir of string
  | Unreadable of string * string  (** path, error *)

val compare_with_fs : t -> Rio_fs.Fs.t -> exempt:string list -> discrepancy list
(** Walk the model and the file system and report every difference outside
    the exempt set. Empty = no corruption. *)

val discrepancy_to_string : discrepancy -> string

val file_count : t -> int

val total_model_bytes : t -> int

