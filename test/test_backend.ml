(* Backend-parametric tests: every test group below runs once per
   persistence backend ([Rio_disk.Backend.all]), so a third tier added
   later is covered the day it compiles. Shared properties (checkpoint
   byte-identity, deterministic tears, nonzero-bitmap invariant, FS
   parity) are asserted for each backend; the tear and timing models —
   the only places the backends are *allowed* to differ — get
   per-backend assertions, plus cross-backend comparisons that pin the
   differences down (NVMM is flat and seekless, SCSI pays mechanics). *)

module Backend = Rio_disk.Backend
module Disk = Rio_disk.Disk
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module World = Rio_world.World
module Fs = Rio_fs.Fs
module Pattern = Rio_util.Pattern
module Explorer = Rio_check.Explorer
module Fuzzer = Rio_fuzz.Fuzzer
module Run = Rio_harness.Run

let check = Alcotest.check

let fresh ?(seed = 5) backend =
  let engine = Engine.create () in
  (engine, Disk.create ~backend ~engine ~costs:Costs.default ~sectors:4096 ~seed ())

let sector_of_char c = Bytes.make Disk.sector_bytes c

(* Plant old contents, start an 8-sector async write of 'N', crash while
   the request is in flight, and return (old, new, torn) for the sector
   under the head. The committed prefix and untouched suffix are checked
   here so the per-backend tests only reason about the torn sector. *)
let crash_mid_write backend ~advance_us =
  let engine, d = fresh backend in
  let old_of i = sector_of_char (Char.chr (Char.code 'a' + i)) in
  for i = 0 to 7 do
    Disk.poke d ~sector:(100 + i) (old_of i)
  done;
  Disk.write_async d ~sector:100 (Bytes.make (8 * Disk.sector_bytes) 'N');
  Engine.advance_by engine advance_us;
  Disk.crash d;
  Disk.check_invariant d;
  (* Find the tear: the first sector that is neither fully-new nor the
     old contents is the one the head was on. *)
  let torn = ref None in
  for i = 0 to 7 do
    let got = Disk.peek d ~sector:(100 + i) in
    let is_new = Bytes.equal got (sector_of_char 'N') in
    let is_old = Bytes.equal got (old_of i) in
    match !torn with
    | None ->
      if not (is_new || is_old) then torn := Some (i, got)
      else if is_old then
        (* Old before any tear means the write never reached here and
           never will: everything after must be old too. *)
        torn := Some (-1, got)
    | Some (t, _) when t >= 0 ->
      check Alcotest.bool
        (Printf.sprintf "%s: sector %d after the tear keeps old contents"
           (Backend.to_string backend) i)
        true is_old
    | Some _ -> ()
  done;
  match !torn with
  | Some (i, got) when i >= 0 -> (old_of i, sector_of_char 'N', got)
  | _ ->
    Alcotest.failf "%s: crash at +%dus produced no torn sector"
      (Backend.to_string backend) advance_us

(* In-flight window: SCSI needs a seek + some transfer time to be mid-
   request; NVMM completes 8 sectors in 3us, so crash 1us in. *)
let mid_write_advance = function
  | Backend.Scsi -> Costs.default.Costs.disk_seek_us + 2_000
  | Backend.Nvmm -> 1

(* ---------------- shared properties, per backend ---------------- *)

let test_tear_deterministic backend () =
  let run () =
    let _, _, torn = crash_mid_write backend ~advance_us:(mid_write_advance backend) in
    torn
  in
  check Alcotest.bytes "same seed, same crash point, same torn bytes" (run ()) (run ())

let test_checkpoint_restore backend () =
  let engine, d = fresh backend in
  Disk.write_sync d ~sector:8 (sector_of_char 'k');
  Disk.write_sync d ~sector:2000 (sector_of_char 'k');
  let ck = Disk.checkpoint d in
  let frozen = List.map (fun s -> Disk.peek d ~sector:s) [ 0; 8; 9; 2000 ] in
  (* Dirty the platter every way we can: overwrite, extend, tear. *)
  Disk.write_sync d ~sector:8 (sector_of_char 'x');
  Disk.write_sync d ~sector:9 (sector_of_char 'x');
  Disk.write_async d ~sector:2000 (Bytes.make (4 * Disk.sector_bytes) 'x');
  Engine.advance_by engine (mid_write_advance backend);
  Disk.crash d;
  Disk.restore d ck;
  Disk.check_invariant d;
  List.iter2
    (fun s before ->
      check Alcotest.bytes
        (Printf.sprintf "sector %d byte-identical after restore" s)
        before
        (Disk.peek d ~sector:s))
    [ 0; 8; 9; 2000 ] frozen;
  (* The mechanism state rewound too: a replayed crash tears identically. *)
  let replay () =
    Disk.write_async d ~sector:2000 (Bytes.make (4 * Disk.sector_bytes) 'x');
    Engine.advance_by engine (mid_write_advance backend);
    Disk.crash d;
    let got = Disk.peek d ~sector:2000 in
    Disk.restore d ck;
    got
  in
  check Alcotest.bytes "restored mechanism replays the same tear" (replay ()) (replay ())

let test_fs_workload backend () =
  (* The file system neither knows nor cares which tier is underneath:
     the same workload must produce the same contents. The cross-backend
     comparison is below; here each backend must at least round-trip. *)
  let w = World.create ~backend ~seed:11 () in
  let fs = World.fs w in
  let payload = Pattern.fill ~seed:0x5eed ~len:9000 in
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/a" payload;
  Fs.write_file fs "/d/b" (Pattern.fill ~seed:2 ~len:300);
  Fs.rename fs "/d/b" "/d/c";
  Fs.sync fs;
  check Alcotest.bytes "payload round-trips" payload (Fs.read_file fs "/d/a");
  check Alcotest.bool "rename visible" true (Fs.exists fs "/d/c");
  Disk.check_invariant (World.disk w);
  World.dispose w

(* ---------------- the tear models ---------------- *)

let test_scsi_tear_is_garbage () =
  let old_s, new_s, torn = crash_mid_write Backend.Scsi ~advance_us:(mid_write_advance Backend.Scsi) in
  check Alcotest.bool "torn sector is not the old contents" false (Bytes.equal torn old_s);
  check Alcotest.bool "torn sector is not the new contents" false (Bytes.equal torn new_s);
  (* Garbage, not a clean splice: no 64-byte-aligned prefix of new data. *)
  check Alcotest.bool "not a cache-line splice either" false
    (Bytes.equal (Bytes.sub torn 0 64) (Bytes.sub new_s 0 64)
    && Bytes.equal (Bytes.sub torn 64 (Disk.sector_bytes - 64))
         (Bytes.sub old_s 64 (Disk.sector_bytes - 64)))

let test_nvmm_tear_is_cache_line () =
  let old_s, new_s, torn = crash_mid_write Backend.Nvmm ~advance_us:(mid_write_advance Backend.Nvmm) in
  check Alcotest.bytes "first 64 B line holds the new data" (Bytes.sub new_s 0 64)
    (Bytes.sub torn 0 64);
  check Alcotest.bytes "old suffix survives — no invented garbage"
    (Bytes.sub old_s 64 (Disk.sector_bytes - 64))
    (Bytes.sub torn 64 (Disk.sector_bytes - 64))

(* ---------------- the timing models ---------------- *)

let test_nvmm_flat_and_fast () =
  let timed backend writes =
    let engine, d = fresh backend in
    List.map
      (fun s ->
        let t0 = Engine.now engine in
        Disk.write_sync d ~sector:s (sector_of_char 'w');
        (Engine.now engine - t0, d))
      writes
  in
  (* Same far-seeking write pattern on both tiers. *)
  let pattern = [ 0; 2000; 100; 3900 ] in
  let scsi = timed Backend.Scsi pattern and nvmm = timed Backend.Nvmm pattern in
  let total l = List.fold_left (fun a (t, _) -> a + t) 0 l in
  check Alcotest.bool "NVMM is at least 100x faster on a seeky pattern" true
    (100 * total nvmm < total scsi);
  (* Flat: position-independent service time, and the seek counter never
     moves. *)
  (match nvmm with
  | (t0, d) :: rest ->
    List.iter
      (fun (t, _) -> check Alcotest.int "every NVMM write costs the same" t0 t)
      rest;
    check Alcotest.int "NVMM never seeks" 0 (Disk.stats d).Disk.seeks
  | [] -> assert false);
  (* SCSI is position-dependent: the same list of writes does *not* cost
     a constant amount. *)
  (match scsi with
  | (t0, d) :: rest ->
    check Alcotest.bool "SCSI cost varies with position" true
      (List.exists (fun (t, _) -> t <> t0) rest);
    check Alcotest.bool "SCSI seeks" true ((Disk.stats d).Disk.seeks > 0)
  | [] -> assert false)

(* ---------------- FS-visible parity across backends ---------------- *)

let test_cross_backend_parity () =
  (* Identical workload on each tier: byte-identical file contents and
     directory listings. Timing differs wildly (that is the point of the
     tier); data must not. *)
  let run backend =
    let w = World.create ~backend ~seed:23 () in
    let fs = World.fs w in
    Fs.mkdir fs "/p";
    Fs.write_file fs "/p/big" (Pattern.fill ~seed:7 ~len:30_000);
    Fs.write_file fs "/p/small" (Pattern.fill ~seed:8 ~len:100);
    Fs.write_file fs "/p/gone" (Pattern.fill ~seed:9 ~len:512);
    Fs.unlink fs "/p/gone";
    Fs.sync fs;
    let files = List.sort compare (Fs.readdir fs "/p") in
    let contents = List.map (fun f -> Fs.read_file fs ("/p/" ^ f)) files in
    let now = Engine.now (World.engine w) in
    World.dispose w;
    (files, contents, now)
  in
  let results = List.map (fun b -> (b, run b)) Backend.all in
  match results with
  | (_, (files0, contents0, now0)) :: rest ->
    List.iter
      (fun (b, (files, contents, now)) ->
        check (Alcotest.list Alcotest.string)
          (Backend.to_string b ^ ": same namespace")
          files0 files;
        List.iter2
          (fun c0 c ->
            check Alcotest.bytes (Backend.to_string b ^ ": same contents") c0 c)
          contents0 contents;
        if b <> Backend.Scsi then
          check Alcotest.bool
            (Backend.to_string b ^ ": finished earlier than SCSI")
            true (now < now0))
      rest
  | [] -> assert false

(* ---------------- the fuzzer across backends ---------------- *)

let cfg ?(trials = 4) () = { Run.default with Run.seed = 1; trials; domains = 2 }

let test_rio_prot_clean_on backend () =
  let r = Fuzzer.run ~spec:{ Explorer.rio_prot with Explorer.backend } (cfg ()) in
  check Alcotest.int
    (Backend.to_string backend ^ ": rio-prot fuzzes clean")
    0 r.Fuzzer.violations

let test_wb_order_caught_and_shrunk () =
  (* The planted write-behind ordering bug (wb-order ablation) rides the
     NVMM-backed update daemon; seed 1 trips it on trial 0. The fuzzer
     must both catch it and shrink the repro below the readability cap. *)
  let r = Fuzzer.run ~spec:Explorer.wb_order (cfg ~trials:2 ()) in
  if r.Fuzzer.violations = 0 then
    Alcotest.fail "wb-order planted ablation was not caught";
  match r.Fuzzer.counterexamples with
  | [] -> Alcotest.fail "wb-order violations were not shrunk"
  | c :: _ ->
    check Alcotest.bool "repro within the readability cap" true
      (List.length c.Fuzzer.ops <= Fuzzer.max_repro_ops);
    check Alcotest.bool "shrunk repro keeps its problems" true (c.Fuzzer.problems <> [])

let () =
  let per_backend name f =
    List.map
      (fun b ->
        Alcotest.test_case (Printf.sprintf "%s (%s)" name (Backend.to_string b)) `Quick (f b))
      Backend.all
  in
  Alcotest.run "rio_backend"
    [
      ( "shared",
        per_backend "deterministic tear" test_tear_deterministic
        @ per_backend "checkpoint/restore byte-identity" test_checkpoint_restore
        @ per_backend "fs workload round-trips" test_fs_workload );
      ( "tear models",
        [
          Alcotest.test_case "scsi: torn sector is garbage" `Quick test_scsi_tear_is_garbage;
          Alcotest.test_case "nvmm: cache-line splice, no garbage" `Quick
            test_nvmm_tear_is_cache_line;
        ] );
      ("timing models", [ Alcotest.test_case "nvmm flat and fast" `Quick test_nvmm_flat_and_fast ]);
      ("parity", [ Alcotest.test_case "same workload, same bytes" `Quick test_cross_backend_parity ]);
      ( "fuzz",
        List.map
          (fun b ->
            Alcotest.test_case
              (Printf.sprintf "rio-prot clean (%s)" (Backend.to_string b))
              `Slow (test_rio_prot_clean_on b))
          Backend.all
        @ [
            Alcotest.test_case "wb-order planted ablation caught and shrunk" `Slow
              test_wb_order_caught_and_shrunk;
          ] );
    ]
