(** The deterministic, seeded task scheduler.

    Tasks are cooperative effect fibers; the scheduler switches between
    them only at {e protocol boundaries} — the same points
    [Rio_check.Boundary] enumerates as crash points (registry updates,
    store windows, shadow flips, disk completions, Vista steps), plus
    the lock events below. At each preemption point one PRNG draw picks
    uniformly among the runnable tasks, so the whole interleaving is a
    pure function of the seed: same seed, same schedule, byte-identical
    campaigns at any [-j N].

    Wiring with a probe (what the fuzzer/explorer do):
    {[
      Sched.set_on_point sched (Boundary.point probe);
      Boundary.set_on_emit probe (fun _ -> Sched.preempt sched)
    ]}
    makes every boundary a preemption point and every lock event a crash
    point. *)

type t

val create : seed:int -> t

val set_on_point : t -> (string -> unit) -> unit
(** Where the scheduler publishes its own boundaries (lock protocol,
    syscall attribution). Wire to [Rio_check.Boundary.point]. *)

val spawn : t -> Task.t -> (Task.t -> unit) -> unit
(** Queue a task body. Only before {!run}. *)

val run : t -> unit
(** Run every spawned task to completion under seeded interleaving.
    A fiber exception (the checker's [Crash_here], an [Fs_error] under
    an unsafe ablation) records {!crashed} and propagates; suspended
    sibling fibers are dropped — sound, because the crash capture
    happens before the unwind and recovery restores memory from it.
    Raises [Fs_error] on deadlock (impossible with the single built-in
    lock). *)

val preempt : t -> unit
(** Offer a context switch at the current point. No-op outside a
    running fiber, so probe wiring stays safe during setup/recovery. *)

val current : t -> Task.t option
val switches : t -> int
(** Context-switch count (scheduling decisions taken). *)

val trace : t -> string list
(** Task names in the order they were scheduled — the interleaving
    fingerprint the determinism tests compare. *)

val crashed : t -> Task.t option
(** The task whose fiber raised during {!run}, if any. *)

(** {1 The ownership lock}

    A single reentrant lock ([key = "fs"]) models conservative
    block-level ownership of the shared metadata paths: registry
    updates, allocation bitmaps, shared inode sectors, and the Rio
    shadow page are only mutated while holding it. Acquire, contended
    wait, and release each emit a boundary ("task-acquire fs t0", ...),
    so lock hand-offs are both crash points and preemption points. *)

val acquire : t -> key:string -> unit
val release : t -> key:string -> unit
val with_lock : t -> key:string -> (unit -> 'a) -> 'a
val holder : t -> key:string -> Task.t option

val fs_lock : string
(** The well-known key serializing mutating file-system syscalls. *)

(** {1 The task-scoped syscall entry} *)

val syscall :
  t -> locking:bool -> Task.t -> Rio_fs.Fs.t -> Rio_fs.Fs.Syscall.call -> Rio_fs.Fs.Syscall.result
(** Execute one decoded syscall as [task]: resolves paths against the
    task's cwd, emits a "task-call <name> <task>" attribution boundary,
    and — for mutating calls, when [locking] — holds {!fs_lock} across
    the call. [locking:false] is the planted lost-update ablation
    (registry/metadata updates without block ownership) the interleaving
    fuzzer must catch. *)
