module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Trace = Rio_obs.Trace

let sector_bytes = 512

type stats = {
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  seeks : int;
  busy_us : int;
}

type request = {
  req_sector : int;
  data : bytes; (* whole sectors *)
  start_time : int;
  completion_time : int;
  handle : Engine.handle;
}

type t = {
  engine : Engine.t;
  obs : Trace.t;
  c_requests : Trace.counter;
  h_latency : Trace.histogram;
  costs : Costs.t;
  sectors : int;
  store : (int, bytes) Hashtbl.t;
  nonzero : Bytes.t;
      (* Bit per sector, a conservative superset of the store's keys: set
         when a sector gains an entry, cleared only when a zero-write
         drops it. Lets {!write_zeros_sync} prove whole ranges already
         read as zeros in O(count/8) instead of a probe per sector. *)
  prng : Rio_util.Prng.t;
  mutable head : int; (* next sector position of the head *)
  mutable busy_until : int;
  mutable pending : request list; (* FIFO order: oldest first *)
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seeks : int;
  mutable busy_us : int;
  mutable on_complete : sector:int -> count:int -> write:bool -> unit;
}

let no_complete ~sector:(_ : int) ~count:(_ : int) ~write:(_ : bool) = ()

let create ~engine ~costs ~sectors ~seed =
  let obs = Engine.obs engine in
  {
    engine;
    obs;
    c_requests = Trace.counter obs "disk.requests";
    h_latency = Trace.histogram obs "disk.request_latency_us";
    costs;
    sectors;
    store = Hashtbl.create 4096;
    nonzero = Bytes.make ((sectors + 7) / 8) '\000';
    prng = Rio_util.Prng.create ~seed;
    head = 0;
    busy_until = 0;
    pending = [];
    reads = 0;
    writes = 0;
    sectors_read = 0;
    sectors_written = 0;
    seeks = 0;
    busy_us = 0;
    on_complete = no_complete;
  }

let set_on_complete t f = t.on_complete <- f

let capacity_sectors t = t.sectors

let engine t = t.engine

let check_range t sector count =
  if sector < 0 || count < 0 || sector + count > t.sectors then
    invalid_arg
      (Printf.sprintf "Disk: sectors [%d,+%d) outside capacity %d" sector count t.sectors)

let peek t ~sector =
  check_range t sector 1;
  match Hashtbl.find_opt t.store sector with
  | Some b -> Bytes.copy b
  | None -> Bytes.make sector_bytes '\000'

(* Absent sectors read as zeros, so an all-zero write to an absent sector
   needs no entry — this keeps the 16 MB swap dump from materializing a
   store entry per untouched memory page. *)
let sector_is_zero src pos =
  let rec go i = i >= sector_bytes || (Bytes.get_int64_le src (pos + i) = 0L && go (i + 8)) in
  go 0

let mark_nonzero t sector =
  let i = sector lsr 3 in
  Bytes.unsafe_set t.nonzero i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.nonzero i) lor (1 lsl (sector land 7))))

let clear_nonzero t sector =
  let i = sector lsr 3 in
  Bytes.unsafe_set t.nonzero i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.nonzero i) land lnot (1 lsl (sector land 7))))

(* Commit one sector from [src] at byte offset [pos], reusing the stored
   buffer when the sector already exists (no one outside this module holds
   a reference to stored bytes — peek/read_sync copy out). *)
let commit_from t sector src pos =
  match Hashtbl.find_opt t.store sector with
  | Some dst -> Bytes.blit src pos dst 0 sector_bytes
  | None ->
    if not (sector_is_zero src pos) then begin
      let b = Bytes.create sector_bytes in
      Bytes.blit src pos b 0 sector_bytes;
      Hashtbl.replace t.store sector b;
      mark_nonzero t sector
    end

(* Make [count] sectors read as zeros: drop any store entries in the
   range. The bitmap turns the common case — a range with no entries at
   all — into a walk over [count/8] bytes, no hashing. *)
let commit_zeros t sector count =
  let last = sector + count - 1 in
  for i = sector lsr 3 to last lsr 3 do
    let byte = Char.code (Bytes.unsafe_get t.nonzero i) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then begin
          let s = (i lsl 3) lor bit in
          if s >= sector && s <= last then begin
            Hashtbl.remove t.store s;
            clear_nonzero t s
          end
        end
      done
  done

let commit_sector t sector (b : bytes) =
  assert (Bytes.length b = sector_bytes);
  commit_from t sector b 0

let poke t ~sector b =
  check_range t sector 1;
  if Bytes.length b > sector_bytes then invalid_arg "Disk.poke: more than one sector";
  let padded = Bytes.make sector_bytes '\000' in
  Bytes.blit b 0 padded 0 (Bytes.length b);
  commit_sector t sector padded

let pad_to_sectors data =
  let n = (Bytes.length data + sector_bytes - 1) / sector_bytes in
  if Bytes.length data = n * sector_bytes then (data, n)
  else begin
    let padded = Bytes.make (n * sector_bytes) '\000' in
    Bytes.blit data 0 padded 0 (Bytes.length data);
    (padded, n)
  end

(* Service time for a request at [sector] given the head position: seek plus
   rotation unless the request continues where the head stopped. *)
let service_time t sector count =
  let positioning =
    if sector = t.head then 0 (* sequential: the head is already there *)
    else if sector >= t.head - count && sector < t.head then begin
      (* Rewriting a sector just written: wait one full revolution. *)
      2 * t.costs.Costs.disk_rotation_us
    end
    else begin
      t.seeks <- t.seeks + 1;
      t.costs.Costs.disk_seek_us + t.costs.Costs.disk_rotation_us
    end
  in
  positioning + Costs.transfer_time t.costs (count * sector_bytes)

let commit_request t r =
  let count = Bytes.length r.data / sector_bytes in
  for i = 0 to count - 1 do
    commit_from t (r.req_sector + i) r.data (i * sector_bytes)
  done;
  t.pending <- List.filter (fun p -> p != r) t.pending;
  t.on_complete ~sector:r.req_sector ~count ~write:true

(* Begin a request: compute its service window and move the head/busy
   markers. Returns (start, completion). *)
let schedule_request t sector count =
  let start = max (Engine.now t.engine) t.busy_until in
  let service = service_time t sector count in
  let completion = start + service in
  t.busy_until <- completion;
  t.head <- sector + count;
  t.busy_us <- t.busy_us + service;
  (start, completion)

(* Latency as seen by the issuer: queueing delay plus service time. *)
let note_request t ~sector ~count ~write ~sync ~issued ~completion =
  if Trace.enabled t.obs then begin
    Trace.incr t.c_requests;
    Trace.observe t.h_latency (completion - issued);
    Trace.emit t.obs Trace.Disk
      (Trace.Disk_request
         { sector; sectors = count; write; sync; issued_us = issued; done_us = completion })
  end

let read_sync t ~sector ~count =
  check_range t sector count;
  let issued = Engine.now t.engine in
  let _, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:false ~sync:true ~issued ~completion;
  Engine.advance_to t.engine completion;
  t.reads <- t.reads + 1;
  t.sectors_read <- t.sectors_read + count;
  t.on_complete ~sector ~count ~write:false;
  let out = Bytes.create (count * sector_bytes) in
  for i = 0 to count - 1 do
    let b =
      match Hashtbl.find_opt t.store (sector + i) with
      | Some b -> b
      | None -> Bytes.make sector_bytes '\000'
    in
    Bytes.blit b 0 out (i * sector_bytes) sector_bytes
  done;
  out

let write_sync t ~sector data =
  let data, count = pad_to_sectors data in
  check_range t sector count;
  let issued = Engine.now t.engine in
  let _, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:true ~sync:true ~issued ~completion;
  Engine.advance_to t.engine completion;
  t.writes <- t.writes + 1;
  t.sectors_written <- t.sectors_written + count;
  for i = 0 to count - 1 do
    commit_from t (sector + i) data (i * sector_bytes)
  done;
  t.on_complete ~sector ~count ~write:true

(* Write [count] sectors of zeros without materializing a payload buffer.
   Simulated behaviour is identical to [write_sync] with an all-zero
   buffer of the same length — same schedule, same trace events, same
   counters, same completion callback — only the host-side commit
   differs: instead of probing the store per sector it sweeps the
   [nonzero] bitmap and drops whatever entries the range still holds.
   The swap dump uses this for the (typically vast) all-zero stretches
   of the memory image. *)
let write_zeros_sync t ~sector ~count =
  check_range t sector count;
  let issued = Engine.now t.engine in
  let _, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:true ~sync:true ~issued ~completion;
  Engine.advance_to t.engine completion;
  t.writes <- t.writes + 1;
  t.sectors_written <- t.sectors_written + count;
  commit_zeros t sector count;
  t.on_complete ~sector ~count ~write:true

let max_queue_depth = 32

let write_async t ~sector data =
  let data, count = pad_to_sectors data in
  check_range t sector count;
  (* A bounded queue: a heavy asynchronous writer eventually runs at disk
     speed, as on a real system. *)
  while List.length t.pending >= max_queue_depth do
    match t.pending with
    | oldest :: _ -> Engine.advance_to t.engine oldest.completion_time
    | [] -> ()
  done;
  let issued = Engine.now t.engine in
  let start, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:true ~sync:false ~issued ~completion;
  t.writes <- t.writes + 1;
  t.sectors_written <- t.sectors_written + count;
  let rec request =
    lazy
      {
        req_sector = sector;
        data;
        start_time = start;
        completion_time = completion;
        handle =
          Engine.schedule_at t.engine ~time:completion (fun _ ->
              commit_request t (Lazy.force request));
      }
  in
  t.pending <- t.pending @ [ Lazy.force request ]

let drain t =
  Engine.advance_to t.engine t.busy_until;
  (* Events at exactly [busy_until] have fired; a non-empty pending list
     would mean a commit event landed beyond busy_until, which cannot
     happen. *)
  assert (t.pending = [])

let pending_writes t = List.length t.pending

let crash t =
  let now = Engine.now t.engine in
  List.iter
    (fun r ->
      Engine.cancel t.engine r.handle;
      if r.start_time <= now then begin
        (* In-flight: commit the sectors already behind the head, tear the
           one under it. *)
        let count = Bytes.length r.data / sector_bytes in
        let window = r.completion_time - r.start_time in
        let frac =
          if window <= 0 then 0.
          else float_of_int (now - r.start_time) /. float_of_int window
        in
        let committed = int_of_float (frac *. float_of_int count) in
        for i = 0 to min committed count - 1 do
          commit_from t (r.req_sector + i) r.data (i * sector_bytes)
        done;
        if committed < count then
          commit_sector t (r.req_sector + committed)
            (Rio_util.Prng.bytes t.prng sector_bytes)
      end)
    t.pending;
  t.pending <- [];
  t.busy_until <- Engine.now t.engine

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    sectors_read = t.sectors_read;
    sectors_written = t.sectors_written;
    seeks = t.seeks;
    busy_us = t.busy_us;
  }

(* ---- world-template rewind ----

   The checkpoint deep-copies the store (taken post-mount it holds only a
   handful of sectors) and remembers the head/geometry markers, the
   statistics, and the tear-pattern PRNG state — [crash] draws torn-sector
   bytes from that stream, so a restored world must replay the identical
   tears. Pending requests cannot be checkpointed (their completion events
   live in the engine queue, which the world restore clears); freeze only
   with the queue drained. *)

type checkpoint = {
  ck_store : (int, bytes) Hashtbl.t;
  ck_prng : int64;
  ck_head : int;
  ck_busy_until : int;
  ck_stats : stats;
}

let checkpoint t =
  assert (t.pending = []);
  let ck_store = Hashtbl.create (max 16 (Hashtbl.length t.store * 2)) in
  Hashtbl.iter (fun s b -> Hashtbl.replace ck_store s (Bytes.copy b)) t.store;
  {
    ck_store;
    ck_prng = Rio_util.Prng.state t.prng;
    ck_head = t.head;
    ck_busy_until = t.busy_until;
    ck_stats = stats t;
  }

let restore t ck =
  Hashtbl.reset t.store;
  Bytes.fill t.nonzero 0 (Bytes.length t.nonzero) '\000';
  Hashtbl.iter
    (fun s b ->
      Hashtbl.replace t.store s (Bytes.copy b);
      mark_nonzero t s)
    ck.ck_store;
  Rio_util.Prng.set_state t.prng ck.ck_prng;
  t.head <- ck.ck_head;
  t.busy_until <- ck.ck_busy_until;
  t.pending <- [];
  t.reads <- ck.ck_stats.reads;
  t.writes <- ck.ck_stats.writes;
  t.sectors_read <- ck.ck_stats.sectors_read;
  t.sectors_written <- ck.ck_stats.sectors_written;
  t.seeks <- ck.ck_stats.seeks;
  t.busy_us <- ck.ck_stats.busy_us

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.sectors_read <- 0;
  t.sectors_written <- 0;
  t.seeks <- 0;
  t.busy_us <- 0

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d (%d sect) writes=%d (%d sect) seeks=%d busy=%a" s.reads
    s.sectors_read s.writes s.sectors_written s.seeks Rio_util.Units.pp_usec s.busy_us
