(** The simulated kernel's instruction set.

    A small 64-bit RISC with fixed 32-bit instruction words. The encoding
    matters: the paper's fault injection flips bits in kernel text and
    mutates instruction fields (change source/destination register, delete a
    branch, delete a random instruction — §3.1), so instructions must
    round-trip through a binary format in which a single flipped bit yields
    either a different well-formed instruction or an illegal one, exactly as
    on the Alpha.

    Encoding (little-endian word): [op:6 | rd:5 | rs1:5 | rs2:5 | imm11:11].
    I-format instructions read a 16-bit signed immediate from the low 16
    bits ([rs2:5|imm11:11] combined).

    Register conventions: [r0] is hard-wired zero; [r30] is the stack
    pointer; [r31] is the link register. *)

type reg = int
(** Register number in [\[0, 31\]]. *)

type t =
  | Nop
  | Halt
  | Add of reg * reg * reg  (** [Add (rd, rs1, rs2)]: rd <- rs1 + rs2 *)
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Sll of reg * reg * reg  (** shift amount = low 6 bits of rs2's value *)
  | Srl of reg * reg * reg
  | Mul of reg * reg * reg
  | Slt of reg * reg * reg  (** rd <- rs1 < rs2 (signed) *)
  | Addi of reg * reg * int  (** [Addi (rd, rs1, imm16)] *)
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Slti of reg * reg * int
  | Lui of reg * int  (** rd <- imm16 lsl 16 *)
  | Kseg of reg * reg
      (** rd <- kseg_base + rs1: materialize a physical (TLB-bypassing)
          alias, the Alpha KSEG addressing mode. *)
  | Ld of reg * reg * int  (** [Ld (rd, rs1, imm)]: rd <- mem64\[rs1+imm\] *)
  | St of reg * reg * int  (** [St (rd, rs1, imm)]: mem64\[rs1+imm\] <- rd *)
  | Ldw of reg * reg * int  (** 32-bit load, zero-extended *)
  | Stw of reg * reg * int
  | Ldb of reg * reg * int  (** byte load, zero-extended *)
  | Stb of reg * reg * int
  | Beq of reg * reg * int
      (** [Beq (ra, rb, off)]: branch to pc + 4*off when equal. *)
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Jmp of int  (** pc-relative unconditional jump, word offset. *)
  | Jal of reg * int  (** rd <- return address; jump pc-relative. *)
  | Jr of reg  (** pc <- rs1 *)
  | Assert_nz of reg * int
      (** [Assert_nz (rs1, msg)]: kernel consistency check — panic with
          message id [msg] when rs1 = 0. These model the "multitude of
          consistency checks present in a production operating system"
          (§3.3). *)

val encode : t -> int
(** 32-bit instruction word. *)

val decode : int -> t option
(** [None] for illegal instruction words. *)

val word_bytes : int
(** 4. *)

val is_store : t -> bool
val is_branch : t -> bool
(** Branches and jumps (used by the delete-branch fault). *)

val reads : t -> reg list
(** Source registers (used by pointer/register-corruption faults). *)

val writes : t -> reg option
(** Destination register, if any. *)

val with_rd : t -> reg -> t
(** Replace the destination register where the instruction has one
    (identity otherwise) — the "destination reg" fault. *)

val with_rs1 : t -> reg -> t
(** Replace the first source register where present — the "source reg"
    fault. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
