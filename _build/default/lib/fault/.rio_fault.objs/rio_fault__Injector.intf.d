lib/fault/injector.mli: Fault_type Rio_cpu Rio_kernel Rio_util
