type t = {
  mutable clock : int;
  queue : (t -> unit) Event_queue.t;
}

type handle = Event_queue.handle

let create () = { clock = 0; queue = Event_queue.create () }

let now t = t.clock

let schedule_at t ~time f = Event_queue.push t.queue ~time:(max time t.clock) f

let schedule_after t ~delay f =
  assert (delay >= 0);
  Event_queue.push t.queue ~time:(t.clock + delay) f

let cancel t handle = Event_queue.cancel t.queue handle

let fire_due t target =
  let rec loop () =
    match Event_queue.pop_until t.queue ~time:target with
    | None -> ()
    | Some (time, f) ->
      t.clock <- max t.clock time;
      f t;
      loop ()
  in
  loop ()

let advance_to t target =
  if target > t.clock then begin
    fire_due t target;
    t.clock <- max t.clock target
  end

let advance_by t delta =
  assert (delta >= 0);
  advance_to t (t.clock + delta)

let run_next t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- max t.clock time;
    f t;
    true

let run_until_idle t = while run_next t do () done

let pending t = Event_queue.length t.queue
