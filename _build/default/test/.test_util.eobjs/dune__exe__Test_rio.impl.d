test/test_rio.ml: Alcotest Bytes List Option QCheck QCheck_alcotest Rio_core Rio_cpu Rio_disk Rio_fs Rio_kernel Rio_mem Rio_sim Rio_util Rio_vm
