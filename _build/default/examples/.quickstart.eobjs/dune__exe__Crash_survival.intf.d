examples/crash_survival.mli:
