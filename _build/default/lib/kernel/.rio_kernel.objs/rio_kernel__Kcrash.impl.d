lib/kernel/kcrash.ml: Format Printexc Printf Rio_cpu Rio_kasm Rio_util
