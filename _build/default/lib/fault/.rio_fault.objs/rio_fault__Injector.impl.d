lib/fault/injector.ml: Fault_type List Rio_cpu Rio_kasm Rio_kernel Rio_mem Rio_util
