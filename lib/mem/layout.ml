type region_kind =
  | Kernel_text
  | Kernel_heap
  | Kernel_stack
  | Page_tables
  | Registry
  | Buffer_cache
  | Page_pool

type region = {
  kind : region_kind;
  base : Phys_mem.paddr;
  bytes : int;
}

type config = {
  total_bytes : int;
  text_bytes : int;
  heap_bytes : int;
  stack_bytes : int;
  page_table_bytes : int;
  buffer_cache_bytes : int;
}

type t = {
  config : config;
  ordered : region list;
  (* Per-page region kind (regions are page-aligned): [kind_of_addr] on
     the interpreted-store path is one array read instead of a region
     scan. The [Some kind] cells are shared per region. *)
  by_page : region_kind option array;
}

let kb n = n * 1024
let mb n = n * 1024 * 1024

let default_config =
  {
    total_bytes = mb 16;
    text_bytes = kb 256;
    heap_bytes = mb 1;
    stack_bytes = kb 64;
    page_table_bytes = kb 256;
    buffer_cache_bytes = mb 1;
  }

let paper_config =
  {
    total_bytes = mb 128;
    text_bytes = mb 2;
    heap_bytes = mb 8;
    stack_bytes = kb 256;
    page_table_bytes = mb 2;
    buffer_cache_bytes = mb 16;
  }

let page_size = Phys_mem.page_size

let round_up_page n = (n + page_size - 1) / page_size * page_size

let registry_entry_bytes = 40

let create config =
  let cursor = ref 0 in
  let place kind bytes =
    let bytes = round_up_page bytes in
    let r = { kind; base = !cursor; bytes } in
    cursor := !cursor + bytes;
    r
  in
  let text = place Kernel_text config.text_bytes in
  let heap = place Kernel_heap config.heap_bytes in
  let stack = place Kernel_stack config.stack_bytes in
  let page_tables = place Page_tables config.page_table_bytes in
  (* Registry capacity must cover every buffer-cache and page-pool page.
     Size it against the pessimistic assumption that everything after it is
     file cache -- a slight over-allocation, never an under-allocation. *)
  let after_registry =
    config.total_bytes - !cursor - round_up_page config.buffer_cache_bytes
  in
  let fc_pages_max =
    (round_up_page config.buffer_cache_bytes / page_size) + (max 0 after_registry / page_size)
  in
  let registry = place Registry (max page_size (fc_pages_max * registry_entry_bytes)) in
  let buffer_cache = place Buffer_cache config.buffer_cache_bytes in
  let pool_bytes = (config.total_bytes - !cursor) / page_size * page_size in
  if pool_bytes < page_size then
    invalid_arg "Layout.create: fixed regions leave no room for the UBC";
  let pool = place Page_pool pool_bytes in
  let ordered = [ text; heap; stack; page_tables; registry; buffer_cache; pool ] in
  let by_page = Array.make ((config.total_bytes + page_size - 1) / page_size) None in
  List.iter
    (fun r ->
      let some = Some r.kind in
      for p = r.base / page_size to (r.base + r.bytes - 1) / page_size do
        if p < Array.length by_page then by_page.(p) <- some
      done)
    ordered;
  { config; ordered; by_page }

let region t kind =
  match List.find_opt (fun r -> r.kind = kind) t.ordered with
  | Some r -> r
  | None -> assert false

let regions t = t.ordered

let contains r addr = addr >= r.base && addr < r.base + r.bytes

let kind_of_addr t addr =
  let p = addr / page_size in
  if addr >= 0 && p < Array.length t.by_page then Array.unsafe_get t.by_page p else None

let file_cache_pages t =
  ((region t Buffer_cache).bytes + (region t Page_pool).bytes) / page_size

let region_kind_name = function
  | Kernel_text -> "kernel-text"
  | Kernel_heap -> "kernel-heap"
  | Kernel_stack -> "kernel-stack"
  | Page_tables -> "page-tables"
  | Registry -> "registry"
  | Buffer_cache -> "buffer-cache"
  | Page_pool -> "page-pool"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %#10x .. %#10x (%a)@ " (region_kind_name r.kind) r.base
        (r.base + r.bytes) Rio_util.Units.pp_bytes r.bytes)
    t.ordered;
  Format.fprintf ppf "@]"
