lib/harness/vista_experiment.ml: Bytes Int64 List Rio_core Rio_fault Rio_fs Rio_kernel Rio_sim Rio_txn Rio_util
