module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types

type t = {
  id : int;
  name : string;
  mutable cwd : string;
  (* Task-local descriptor table: small integers private to this task,
     mapped onto the kernel's fds. Two tasks can both hold "fd 3" and
     mean different files. *)
  fds : (int, Fs.fd) Hashtbl.t;
  mutable next_fd : int;
}

let make ~id ~name = { id; name; cwd = "/"; fds = Hashtbl.create 8; next_fd = 3 }

let id t = t.id
let name t = t.name
let cwd t = t.cwd

(* Minimal path resolution: absolute paths pass through; relative paths
   are joined to the task's cwd. No "."/".." handling — the harness
   never generates them. *)
let resolve t path =
  if path = "" then Fs_types.err "task %s: empty path" t.name
  else if path.[0] = '/' then path
  else if t.cwd = "/" then "/" ^ path
  else t.cwd ^ "/" ^ path

let chdir t path = t.cwd <- resolve t path

let install_fd t gfd =
  let n = t.next_fd in
  t.next_fd <- n + 1;
  Hashtbl.replace t.fds n gfd;
  n

let global_fd t n =
  match Hashtbl.find_opt t.fds n with
  | Some gfd -> gfd
  | None -> Fs_types.err "task %s: fd %d is not open in this task" t.name n

let release_fd t n = Hashtbl.remove t.fds n
let open_fds t = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.fds [])

(* Rewrite a decoded syscall's paths through the task's cwd. Fd-carrying
   calls pass through untouched: their fds are already kernel fds (the
   task-local indirection is [install_fd]/[global_fd] at the call site). *)
let resolve_call t (call : Fs.Syscall.call) : Fs.Syscall.call =
  let r p = resolve t p in
  match call with
  | Creat p -> Creat (r p)
  | Open p -> Open (r p)
  | Mkdir p -> Mkdir (r p)
  | Rmdir p -> Rmdir (r p)
  | Link { existing; path } -> Link { existing = r existing; path = r path }
  | Unlink p -> Unlink (r p)
  | Rename { src; dst } -> Rename { src = r src; dst = r dst }
  | Readdir p -> Readdir (r p)
  | Stat p -> Stat (r p)
  | Lstat p -> Lstat (r p)
  | Exists p -> Exists (r p)
  | Symlink { target; path } -> Symlink { target; path = r path }
  | Readlink p -> Readlink (r p)
  | Truncate (p, n) -> Truncate (r p, n)
  | Read_file p -> Read_file (r p)
  | Write_file { path; data } -> Write_file { path = r path; data }
  | Close _ | Read _ | Write _ | Pread _ | Pwrite _ | Seek _ | Fsync _ | Sync -> call
