(** The flight recorder: typed trace events in a bounded ring buffer, plus
    a metrics registry (monotonic counters and sim-time histograms).

    The paper had to treat the crashed OS as a black box (footnote 2 —
    corruption could only be counted after recovery, never watched as it
    happened). The simulator interprets every kernel store, MMU check, and
    disk transfer, so each subsystem can narrate what it does into a
    per-trial recorder; after the trial, the ring holds the last
    [capacity] events — enough to reconstruct the fault → wild store →
    corruption chain.

    One recorder per trial. Trials are isolated (own engine, kernel, disk,
    PRNG), so recorders need no locking and campaigns stay deterministic
    at any [-j N]; per-trial artifacts are merged in seed order.

    {!null} is the default sink everywhere: a shared, permanently disabled
    recorder. Instrumentation points guard with {!enabled}, so when
    tracing is off the cost is one physical-equality branch. *)

(** Which layer emitted an event (the Chrome-trace "thread"). *)
type subsystem = Engine | Disk | Vm | Rio | Fault | Kernel | Fs | Harness

val subsystem_name : subsystem -> string

(** The event taxonomy. Spans carry their own [start_us]/[end_us] in
    simulated microseconds; instants use the record timestamp only. *)
type kind =
  | Dispatch of { due_us : int; end_us : int; queue_depth : int }
      (** Engine popped and ran one scheduled callback (span). *)
  | Clock of { advances : int }
      (** Periodic clock-advance counter sample (every 4096 advances). *)
  | Disk_request of {
      sector : int;
      sectors : int;
      write : bool;
      sync : bool;
      issued_us : int;
      done_us : int;
    }  (** One disk request, issue to completion (span). *)
  | Protection_trap of { paddr : int }
      (** MMU refused a store to a write-protected page. *)
  | Protection_toggle of { paddr : int; writable : bool }
      (** Rio flipped a PTE write bit (and shot down the TLB entry). *)
  | Fault_injected of { fault : string; site : string }
      (** The injector applied one fault instance at [site]. *)
  | Wild_store of { paddr : int; width : int; region : string }
      (** Post-injection store into a file-cache page the kernel does not
          own — direct corruption caught in the act. *)
  | Registry_update of { paddr : int; ino : int; size : int }
      (** Rio registered/updated a file-cache page in the registry. *)
  | Checksum_mismatch of { paddr : int; expected : int; actual : int }
      (** A registered buffer's content no longer matches its checksum. *)
  | Shadow_flip of { paddr : int; engaged : bool }
      (** Metadata shadow copy engaged (true) or atomically flipped back. *)
  | Activity of { name : string; start_us : int; end_us : int }
      (** One interpreted kernel routine ran (span). *)
  | Crash of { message : string; during : string }
  | Crash_flush of { data : int; meta : int }
      (** The non-Rio panic path pushed [data] + [meta] dirty buffers to
          disk while crashing — the propagation channel forensics uses to
          attribute corruption that reached the platter during the panic. *)
  | Phase of { name : string; start_us : int; end_us : int }
      (** A named span: warm-reboot steps (dump, registry, fsck, sweep). *)
  | Swap_dump of { dumped : int; truncated : int }
      (** The warm reboot's memory dump reached swap: [dumped] bytes
          written, [truncated] bytes that did not fit the swap partition. *)
  | Mark of string  (** Free-form instant annotation. *)

val kind_label : kind -> string
(** Stable lowercase tag ("disk_request", "wild_store", ...). *)

type event = { ts_us : int; sub : subsystem; kind : kind }

type t
(** A recorder: ring buffer + metrics registry + clock. *)

val null : t
(** The shared disabled recorder. {!emit} and every metric update on it
    are no-ops; {!enabled} is [false] only for this value. *)

val default_capacity : int
(** 65536 — what {!create} uses when no capacity is given. *)

val max_capacity : int
(** The largest ring a recorder will allocate (2^22 events); campaign
    config layers ({!Rio_harness.Run}) clamp requests into
    [\[0, max_capacity\]] and report the clamp. *)

val max_bucket_edges : int
(** The most histogram bucket edges {!snapshot_json} accepts (64);
    config layers truncate longer edge lists and report it. *)

val create : ?capacity:int -> unit -> t
(** A live recorder holding the most recent [capacity] (default
    {!default_capacity}) events. [capacity = 0] records no events
    (metrics only — the cheap way to roll campaign counters up without
    paying for a ring). *)

val enabled : t -> bool

val set_clock : t -> (unit -> int) -> unit
(** Install the simulated-time source (normally the engine's clock; done
    automatically by [Engine.create ~obs]). *)

val now : t -> int

val emit : t -> subsystem -> kind -> unit
(** Append an event stamped with the current simulated time. When the
    ring is full the oldest event is overwritten ({!dropped} counts). *)

val events : t -> event list
(** Retained events, oldest first. *)

val total : t -> int
(** Events ever emitted (retained + dropped). *)

val dropped : t -> int

val capacity : t -> int

(** {1 Metrics}

    Handles are resolved once (by name) at instrumentation-setup time so
    the per-update cost is a branch and an increment. Handles from {!null}
    are permanently dead. *)

type counter
type histogram

val counter : t -> string -> counter
(** Find-or-create a monotonic counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val histogram : t -> string -> histogram
(** Find-or-create a histogram of integer observations (typically
    simulated-time durations in microseconds). *)

val observe : histogram -> int -> unit
val histogram_values : histogram -> int array
(** Raw observations in arrival order. *)

val percentile : int array -> float -> float
(** Exact percentile of the observations, interpolated the same way as
    {!Rio_util.Stats.percentile}. *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;  (** Registration order. *)
  histograms : (string * int array) list;  (** Raw values, arrival order. *)
}

val snapshot : t -> snapshot

val merge_snapshots : snapshot list -> snapshot
(** Sum counters, concatenate histogram observations, preserving
    first-seen name order — merge per-trial snapshots in seed order for a
    deterministic campaign aggregate. *)

val snapshot_json : ?bucket_edges:int array -> snapshot -> Rio_util.Json.t
(** Counters verbatim; histograms summarized (n, min, mean, p50, p90,
    p99, max). With [bucket_edges] (sorted ascending), each histogram
    additionally carries cumulative-style bucket counts: observations
    [<= e1], [(e1, e2]], ..., [> ek] — the campaign-configurable
    replacement for the summary-only compile-time default. *)
