(* Tests for the discrete-event engine and event queue. *)

module Event_queue = Rio_sim.Event_queue
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- event queue ---------------- *)

let test_queue_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:30 "c");
  ignore (Event_queue.push q ~time:10 "a");
  ignore (Event_queue.push q ~time:20 "b");
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "first" (Some (10, "a"))
    (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "second" (Some (20, "b"))
    (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "third" (Some (30, "c"))
    (Event_queue.pop q);
  check Alcotest.bool "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:5 "first");
  ignore (Event_queue.push q ~time:5 "second");
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "insertion order"
    (Some (5, "first")) (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "then second"
    (Some (5, "second")) (Event_queue.pop q)

let test_queue_cancel () =
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:1 "dead" in
  ignore (Event_queue.push q ~time:2 "alive");
  Event_queue.cancel q h;
  check Alcotest.int "length counts live" 1 (Event_queue.length q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "skips cancelled"
    (Some (2, "alive")) (Event_queue.pop q)

let test_queue_cancel_idempotent () =
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:1 () in
  Event_queue.cancel q h;
  Event_queue.cancel q h;
  check Alcotest.int "not double counted" 0 (Event_queue.length q)

let test_queue_pop_until () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:10 "early");
  ignore (Event_queue.push q ~time:100 "late");
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "due event"
    (Some (10, "early"))
    (Event_queue.pop_until q ~time:50);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "future stays" None
    (Event_queue.pop_until q ~time:50)

let prop_queue_sorted =
  QCheck.Test.make ~name:"pops come out time-sorted" ~count:200
    QCheck.(list (int_range 0 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.push q ~time:t ())) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

(* ---------------- engine ---------------- *)

let test_engine_advance_fires () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule_at e ~time:50 (fun _ -> fired := 50 :: !fired));
  ignore (Engine.schedule_at e ~time:150 (fun _ -> fired := 150 :: !fired));
  Engine.advance_by e 100;
  check (Alcotest.list Alcotest.int) "only due events" [ 50 ] (List.rev !fired);
  check Alcotest.int "clock" 100 (Engine.now e);
  Engine.advance_to e 200;
  check (Alcotest.list Alcotest.int) "all events" [ 50; 150 ] (List.rev !fired)

let test_engine_event_sees_own_time () =
  let e = Engine.create () in
  let seen = ref (-1) in
  ignore (Engine.schedule_at e ~time:42 (fun e -> seen := Engine.now e));
  Engine.advance_by e 100;
  check Alcotest.int "clock at event time inside callback" 42 !seen

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_after e ~delay:10 (fun _ -> fired := true) in
  Engine.cancel e h;
  Engine.advance_by e 100;
  check Alcotest.bool "cancelled never fires" false !fired

let test_engine_reschedule_inside_event () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    if !count < 5 then ignore (Engine.schedule_after engine ~delay:10 tick)
  in
  ignore (Engine.schedule_after e ~delay:10 tick);
  Engine.advance_by e 1000;
  check Alcotest.int "periodic self-rescheduling" 5 !count

let test_engine_past_schedule_fires_now () =
  let e = Engine.create () in
  Engine.advance_by e 100;
  let fired = ref false in
  ignore (Engine.schedule_at e ~time:10 (fun _ -> fired := true));
  Engine.advance_by e 1;
  check Alcotest.bool "past event fires on next advance" true !fired

let test_engine_run_until_idle () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~time:500 (fun _ -> ()));
  ignore (Engine.schedule_at e ~time:900 (fun _ -> ()));
  Engine.run_until_idle e;
  check Alcotest.int "clock jumped to last event" 900 (Engine.now e);
  check Alcotest.int "no pending" 0 (Engine.pending e)

let prop_advance_monotonic =
  QCheck.Test.make ~name:"clock is monotonic under advances" ~count:100
    QCheck.(list (int_range 0 100))
    (fun deltas ->
      let e = Engine.create () in
      List.for_all
        (fun d ->
          let before = Engine.now e in
          Engine.advance_by e d;
          Engine.now e = before + d)
        deltas)

(* ---------------- costs ---------------- *)

let test_costs_transfer () =
  let c = Costs.default in
  check Alcotest.bool "transfer time positive" true (Costs.transfer_time c 8192 > 0);
  check Alcotest.int "zero bytes zero time" 0 (Costs.transfer_time c 0);
  check Alcotest.bool "copy slower than page copy" true
    (Costs.copy_time c 8192 > Costs.page_copy_time c 8192)

let test_costs_checksum_linear () =
  let c = Costs.default in
  check Alcotest.int "double bytes double time" (2 * Costs.checksum_time c 10_000)
    (Costs.checksum_time c 20_000)

let () =
  Alcotest.run "rio_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_order;
          Alcotest.test_case "FIFO on ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_queue_cancel_idempotent;
          Alcotest.test_case "pop_until" `Quick test_queue_pop_until;
          qtest prop_queue_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "advance fires due events" `Quick test_engine_advance_fires;
          Alcotest.test_case "event sees own time" `Quick test_engine_event_sees_own_time;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "reschedule inside event" `Quick test_engine_reschedule_inside_event;
          Alcotest.test_case "past schedule" `Quick test_engine_past_schedule_fires_now;
          Alcotest.test_case "run_until_idle" `Quick test_engine_run_until_idle;
          qtest prop_advance_monotonic;
        ] );
      ( "costs",
        [
          Alcotest.test_case "transfer and copy" `Quick test_costs_transfer;
          Alcotest.test_case "checksum linear" `Quick test_costs_checksum_linear;
        ] );
    ]
