(** Rio's protection mechanism (§2.1).

    Write-protects file-cache pages through the page table, and — crucially
    on the Alpha — sets the ABOX control-register bit so KSEG physical
    addresses are mapped {e through} the TLB instead of bypassing it.
    Without that bit, the bulk of the file cache (the physically-addressed
    UBC) would be wide open to wild stores no matter what the PTEs say.

    Each protect/unprotect charges the PTE flip + TLB shootdown cost; the
    counters feed the protection-overhead ablation, and
    [code_patching_overhead] models the §2.1 alternative for CPUs that
    cannot force KSEG through the TLB (measured at 20–50% slower in the
    paper). *)

type t

val create :
  mmu:Rio_vm.Mmu.t ->
  engine:Rio_sim.Engine.t ->
  costs:Rio_sim.Costs.t ->
  enabled:bool ->
  t
(** When [enabled], flips the ABOX bit immediately. *)

val enabled : t -> bool

val protect_page : t -> paddr:int -> unit
(** Clear the page's write bit and shoot down its TLB entry. No-op when
    disabled. *)

val unprotect_page : t -> paddr:int -> unit

val protect_region : t -> region:Rio_mem.Layout.region -> unit
(** Protect every page of a region (the registry at startup). *)

val toggles : t -> int
(** Number of protect/unprotect operations performed. *)

val restore_toggles : t -> int -> unit
(** World-template rewind of the toggle counter (the PTE/ABOX state
    rewinds with the MMU checkpoint). *)

val code_patching_overhead : costs:Rio_sim.Costs.t -> stores:int -> Rio_util.Units.usec
(** CPU time the code-patching alternative would add for a run that
    executed [stores] kernel store instructions: one inserted check per
    store. *)
