module Fs = Rio_fs.Fs
module Engine = Rio_sim.Engine

type op =
  | Mkdir of string
  | Open_write of string
  | Open_read of string
  | Write_chunk of bytes
  | Read_chunk of int
  | Close
  | Fsync
  | Unlink of string
  | Rmdir of string
  | Stat of string
  | Rename of string * string
  | Read_whole of string
  | Cpu of int

let chunk_size = 8192

let write_file_ops path ~seed ~len =
  let rec chunks offset acc =
    if offset >= len then List.rev acc
    else begin
      let n = min chunk_size (len - offset) in
      chunks (offset + n) (Write_chunk (Rio_util.Pattern.fill_at ~seed ~offset ~len:n) :: acc)
    end
  in
  (Open_write path :: chunks 0 []) @ [ Close ]

type runner = {
  ops : op array;
  mutable next : int;
  mutable fd : Fs.fd option;
}

let runner ops = { ops = Array.of_list ops; next = 0; fd = None }

let finished r = r.next >= Array.length r.ops

let ops_total r = Array.length r.ops
let ops_done r = r.next

let current_fd r =
  match r.fd with
  | Some fd -> fd
  | None -> Rio_fs.Fs_types.err "script: no open file"

let exec r fs op =
  match op with
  | Mkdir path -> Fs.mkdir fs path
  | Open_write path -> r.fd <- Some (Fs.create fs path)
  | Open_read path -> r.fd <- Some (Fs.open_file fs path)
  | Write_chunk data -> Fs.write fs (current_fd r) data
  | Read_chunk len -> ignore (Fs.read fs (current_fd r) ~len)
  | Close ->
    Fs.close fs (current_fd r);
    r.fd <- None
  | Fsync -> Fs.fsync fs (current_fd r)
  | Unlink path -> Fs.unlink fs path
  | Rmdir path -> Fs.rmdir fs path
  | Stat path -> ignore (Fs.stat fs path)
  | Rename (src, dst) -> Fs.rename fs src dst
  | Read_whole path -> ignore (Fs.read_file fs path)
  | Cpu us -> Engine.advance_by (Fs.engine fs) us

let step r fs =
  if finished r then false
  else begin
    let op = r.ops.(r.next) in
    r.next <- r.next + 1;
    exec r fs op;
    true
  end

let run_all r fs = while step r fs do () done

let interleave_with runners fs ~every callback =
  let count = ref 0 in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun r ->
        if step r fs then begin
          progressed := true;
          incr count;
          if !count mod every = 0 then callback ()
        end)
      runners
  done

let interleave runners fs = interleave_with runners fs ~every:max_int (fun () -> ())

type stats = {
  operations : int;
  opens_write : int;
  opens_read : int;
  bytes_written : int;
  bytes_read_chunked : int;
  whole_file_reads : int;
  mkdirs : int;
  unlinks : int;
  rmdirs : int;
  stats_calls : int;
  renames : int;
  fsyncs : int;
  cpu_us : int;
}

let describe ops =
  List.fold_left
    (fun acc op ->
      let acc = { acc with operations = acc.operations + 1 } in
      match op with
      | Mkdir _ -> { acc with mkdirs = acc.mkdirs + 1 }
      | Open_write _ -> { acc with opens_write = acc.opens_write + 1 }
      | Open_read _ -> { acc with opens_read = acc.opens_read + 1 }
      | Write_chunk b -> { acc with bytes_written = acc.bytes_written + Bytes.length b }
      | Read_chunk n -> { acc with bytes_read_chunked = acc.bytes_read_chunked + n }
      | Read_whole _ -> { acc with whole_file_reads = acc.whole_file_reads + 1 }
      | Unlink _ -> { acc with unlinks = acc.unlinks + 1 }
      | Rmdir _ -> { acc with rmdirs = acc.rmdirs + 1 }
      | Stat _ -> { acc with stats_calls = acc.stats_calls + 1 }
      | Rename (_, _) -> { acc with renames = acc.renames + 1 }
      | Fsync -> { acc with fsyncs = acc.fsyncs + 1 }
      | Cpu us -> { acc with cpu_us = acc.cpu_us + us }
      | Close -> acc)
    {
      operations = 0;
      opens_write = 0;
      opens_read = 0;
      bytes_written = 0;
      bytes_read_chunked = 0;
      whole_file_reads = 0;
      mkdirs = 0;
      unlinks = 0;
      rmdirs = 0;
      stats_calls = 0;
      renames = 0;
      fsyncs = 0;
      cpu_us = 0;
    }
    ops

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>%d ops: %d creates, %d opens, %a written, %d whole-file reads,@ %d mkdir, %d unlink, %d rmdir, %d stat, %d rename, %a CPU@]"
    s.operations s.opens_write s.opens_read Rio_util.Units.pp_bytes s.bytes_written
    s.whole_file_reads s.mkdirs s.unlinks s.rmdirs s.stats_calls s.renames
    Rio_util.Units.pp_usec s.cpu_us
