type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next t =
  (* Mask to 62 bits so the result is a non-negative OCaml int on 64-bit. *)
  Int64.to_int (Int64.logand (next64 t) 0x3FFF_FFFF_FFFF_FFFFL)

let int t bound =
  assert (bound > 0);
  next t mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t bound =
  let x = next t in
  bound *. (float_of_int x /. 0x4000_0000_0000_0000.)

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_weighted t arr =
  let total = Array.fold_left (fun acc (_, w) -> acc +. Float.max w 0.) 0. arr in
  assert (total > 0.);
  let target = float t total in
  let n = Array.length arr in
  let rec scan i acc =
    if i = n - 1 then fst arr.(i)
    else
      let acc = acc +. Float.max (snd arr.(i)) 0. in
      if target < acc then fst arr.(i) else scan (i + 1) acc
  in
  scan 0 0.

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let split t =
  let seed = next t in
  { state = mix (Int64.of_int seed) }

let state t = t.state
let set_state t s = t.state <- s
