examples/crash_survival.ml: List Printf Rio_fault
