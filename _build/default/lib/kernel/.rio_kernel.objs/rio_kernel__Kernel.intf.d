lib/kernel/kernel.mli: Kcrash Kheap Rio_cpu Rio_disk Rio_fs Rio_kasm Rio_mem Rio_sim Rio_util Rio_vm
