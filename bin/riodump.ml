(* riodump — post-mortem inspector for a crashed Rio system.

   Boots a Rio machine, runs a workload, injects faults of a chosen type,
   runs to the crash, then performs the forensics a kernel developer would
   do on the dump: which kernel-text words were mutated (disassembled),
   what the registry looked like in raw memory, and which buffers fail
   their checksums. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Kcrash = Rio_kernel.Kcrash
module Fs = Rio_fs.Fs
module Layout = Rio_mem.Layout
module Phys_mem = Rio_mem.Phys_mem
module Disasm = Rio_cpu.Disasm
module Asm = Rio_kasm.Asm
module Kprogs = Rio_kasm.Kprogs
module Registry = Rio_core.Registry
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Injector = Rio_fault.Injector
module Fault_type = Rio_fault.Fault_type
module Memtest = Rio_workload.Memtest
open Cmdliner

let say fmt = Printf.printf (fmt ^^ "\n%!")

let run fault_name seed protection =
  let fault =
    match Fault_type.of_name fault_name with
    | Some f -> f
    | None ->
      Printf.eprintf "unknown fault type %S; one of:\n" fault_name;
      List.iter (fun f -> Printf.eprintf "  %s\n" (Fault_type.name f)) Fault_type.all;
      exit 2
  in
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  ignore
    (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ());
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  let layout = Kernel.layout kernel in
  let text = Layout.region layout Layout.Kernel_text in
  let program = (Kernel.kprogs kernel).Kprogs.program in
  let text_words = Asm.instruction_count program in
  let pristine = Phys_mem.blit_out (Kernel.mem kernel) text.Layout.base ~len:(text_words * 4) in

  (* Workload, injection, crash. *)
  let mt = Memtest.create { Memtest.default_config with Memtest.seed } in
  let crash = ref None in
  (try
     for _ = 1 to 40 do
       Memtest.step mt ~fs ();
       Kernel.run_activity kernel
     done;
     Injector.inject_many kernel
       ~prng:(Rio_util.Prng.create ~seed:(seed lxor 0xFA17))
       fault ~count:20;
     for _ = 1 to 400 do
       Memtest.step mt ~fs ();
       Kernel.run_activity kernel;
       Kernel.run_activity kernel
     done
   with
  | Kcrash.Crashed info -> crash := Some info
  | Rio_fs.Fs_types.Fs_error msg ->
    crash :=
      Some { Kcrash.cause = Kcrash.Panic msg; during = "file system"; at_us = Engine.now engine });

  say "=== riodump: post-mortem of a %s run (seed %d, protection %s) ===" fault_name seed
    (if protection then "on" else "off");
  say "";
  (match !crash with
  | Some info ->
    Kernel.crash_system kernel info;
    say "console: %s" (Kcrash.message_of info);
    say "crashed at %s during %s" (Format.asprintf "%a" Rio_util.Units.pp_usec info.Kcrash.at_us)
      info.Kcrash.during
  | None -> say "system survived the watchdog window (run discarded); dumping anyway");
  say "";

  say "--- memory layout ---";
  Format.printf "%a@." Layout.pp layout;

  say "--- injected kernel-text mutations (pristine vs dump) ---";
  let mutations =
    Disasm.diff ~before:pristine ~after:(Kernel.mem kernel) ~base:text.Layout.base
      ~words:text_words
  in
  if mutations = [] then say "(none — the faults were not text mutations)"
  else begin
    List.iter (fun l -> Format.printf "  %a@." Disasm.pp_line l) mutations;
    say "  (%d word(s) mutated)" (List.length mutations)
  end;
  say "";

  say "--- registry, parsed from the raw memory image ---";
  let image = Warm_reboot.capture (Kernel.mem kernel) in
  let parsed = Warm_reboot.parse_registry ~image ~layout in
  let metas, datas =
    List.partition (fun e -> e.Registry.kind = Registry.Meta_buffer) parsed.Registry.entries
  in
  say "%d entries (%d metadata, %d data), %d corrupt slots"
    (List.length parsed.Registry.entries)
    (List.length metas) (List.length datas) parsed.Registry.corrupt_slots;
  List.iteri
    (fun i e ->
      if i < 12 then
        say "  page %#x  %s  ino=%d off=%d size=%d blkno=%d%s" e.Registry.home_paddr
          (match e.Registry.kind with Registry.Meta_buffer -> "meta" | Registry.Data_buffer -> "data")
          e.Registry.ino e.Registry.offset e.Registry.size e.Registry.blkno
          (if e.Registry.changing then " CHANGING" else ""))
    parsed.Registry.entries;
  if List.length parsed.Registry.entries > 12 then
    say "  ... (%d more)" (List.length parsed.Registry.entries - 12);
  say "";

  say "--- checksum verification of the dumped buffers ---";
  let v_meta = Warm_reboot.verify_entries ~image metas in
  let v_data = Warm_reboot.verify_entries ~image datas in
  say "metadata: %d intact, %d MISMATCHED, %d mid-write" v_meta.Warm_reboot.intact
    v_meta.Warm_reboot.mismatched v_meta.Warm_reboot.changing;
  say "data:     %d intact, %d MISMATCHED, %d mid-write" v_data.Warm_reboot.intact
    v_data.Warm_reboot.mismatched v_data.Warm_reboot.changing;
  say "";
  say "(a mismatch here is direct corruption the warm reboot would carry over;"
  ;
  say " memTest's reconstruction is the final arbiter — see riobench table1)"

let fault_arg =
  Arg.(
    value
    & opt string "copy overrun"
    & info [ "fault" ] ~docv:"FAULT" ~doc:"Fault type to inject (a Table 1 row label).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let protection_arg =
  Arg.(value & flag & info [ "protection" ] ~doc:"Enable Rio's protection (default off).")

let cmd =
  let doc = "Inspect a crashed Rio system: text mutations, registry, checksums." in
  Cmd.v (Cmd.info "riodump" ~version:"1.0" ~doc)
    Term.(const run $ fault_arg $ seed_arg $ protection_arg)

let () = exit (Cmd.eval cmd)
