lib/workload/andrew.mli: Rio_fs Script
