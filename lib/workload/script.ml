module Fs = Rio_fs.Fs
module Engine = Rio_sim.Engine

type op =
  | Mkdir of string
  | Open_write of string
  | Open_read of string
  | Write_chunk of bytes
  | Read_chunk of int
  | Close
  | Fsync
  | Unlink of string
  | Rmdir of string
  | Stat of string
  | Rename of string * string
  | Read_whole of string
  | Cpu of int

let chunk_size = 8192

let write_file_ops path ~seed ~len =
  let rec chunks offset acc =
    if offset >= len then List.rev acc
    else begin
      let n = min chunk_size (len - offset) in
      chunks (offset + n) (Write_chunk (Rio_util.Pattern.fill_at ~seed ~offset ~len:n) :: acc)
    end
  in
  (Open_write path :: chunks 0 []) @ [ Close ]

type runner = {
  ops : op array;
  mutable next : int;
  mutable fd : Fs.fd option;
}

let runner ops = { ops = Array.of_list ops; next = 0; fd = None }

let finished r = r.next >= Array.length r.ops

let ops_total r = Array.length r.ops
let ops_done r = r.next

let current_fd r =
  match r.fd with
  | Some fd -> fd
  | None -> Rio_fs.Fs_types.err "script: no open file"

(* Script steps decode to the uniform syscall representation: one
   dispatch point shared with the checker, fuzzer, and task scheduler. *)
let exec r fs op =
  let sys call = Fs.Syscall.run fs call in
  match op with
  | Mkdir path -> ignore (sys (Fs.Syscall.Mkdir path))
  | Open_write path -> r.fd <- Some (Fs.Syscall.fd_exn (sys (Fs.Syscall.Creat path)))
  | Open_read path -> r.fd <- Some (Fs.Syscall.fd_exn (sys (Fs.Syscall.Open path)))
  | Write_chunk data -> ignore (sys (Fs.Syscall.Write { fd = current_fd r; data }))
  | Read_chunk len -> ignore (sys (Fs.Syscall.Read { fd = current_fd r; len }))
  | Close ->
    ignore (sys (Fs.Syscall.Close (current_fd r)));
    r.fd <- None
  | Fsync -> ignore (sys (Fs.Syscall.Fsync (current_fd r)))
  | Unlink path -> ignore (sys (Fs.Syscall.Unlink path))
  | Rmdir path -> ignore (sys (Fs.Syscall.Rmdir path))
  | Stat path -> ignore (sys (Fs.Syscall.Stat path))
  | Rename (src, dst) -> ignore (sys (Fs.Syscall.Rename { src; dst }))
  | Read_whole path -> ignore (sys (Fs.Syscall.Read_file path))
  | Cpu us -> Engine.advance_by (Fs.engine fs) us

let step r fs =
  if finished r then false
  else begin
    let op = r.ops.(r.next) in
    r.next <- r.next + 1;
    exec r fs op;
    true
  end

let run_all r fs = while step r fs do () done

let interleave_with runners fs ~every callback =
  let count = ref 0 in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun r ->
        if step r fs then begin
          progressed := true;
          incr count;
          if !count mod every = 0 then callback ()
        end)
      runners
  done

let interleave runners fs = interleave_with runners fs ~every:max_int (fun () -> ())

type stats = {
  operations : int;
  opens_write : int;
  opens_read : int;
  bytes_written : int;
  bytes_read_chunked : int;
  whole_file_reads : int;
  mkdirs : int;
  unlinks : int;
  rmdirs : int;
  stats_calls : int;
  renames : int;
  fsyncs : int;
  cpu_us : int;
}

let describe ops =
  List.fold_left
    (fun acc op ->
      let acc = { acc with operations = acc.operations + 1 } in
      match op with
      | Mkdir _ -> { acc with mkdirs = acc.mkdirs + 1 }
      | Open_write _ -> { acc with opens_write = acc.opens_write + 1 }
      | Open_read _ -> { acc with opens_read = acc.opens_read + 1 }
      | Write_chunk b -> { acc with bytes_written = acc.bytes_written + Bytes.length b }
      | Read_chunk n -> { acc with bytes_read_chunked = acc.bytes_read_chunked + n }
      | Read_whole _ -> { acc with whole_file_reads = acc.whole_file_reads + 1 }
      | Unlink _ -> { acc with unlinks = acc.unlinks + 1 }
      | Rmdir _ -> { acc with rmdirs = acc.rmdirs + 1 }
      | Stat _ -> { acc with stats_calls = acc.stats_calls + 1 }
      | Rename (_, _) -> { acc with renames = acc.renames + 1 }
      | Fsync -> { acc with fsyncs = acc.fsyncs + 1 }
      | Cpu us -> { acc with cpu_us = acc.cpu_us + us }
      | Close -> acc)
    {
      operations = 0;
      opens_write = 0;
      opens_read = 0;
      bytes_written = 0;
      bytes_read_chunked = 0;
      whole_file_reads = 0;
      mkdirs = 0;
      unlinks = 0;
      rmdirs = 0;
      stats_calls = 0;
      renames = 0;
      fsyncs = 0;
      cpu_us = 0;
    }
    ops

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>%d ops: %d creates, %d opens, %a written, %d whole-file reads,@ %d mkdir, %d unlink, %d rmdir, %d stat, %d rename, %a CPU@]"
    s.operations s.opens_write s.opens_read Rio_util.Units.pp_bytes s.bytes_written
    s.whole_file_reads s.mkdirs s.unlinks s.rmdirs s.stats_calls s.renames
    Rio_util.Units.pp_usec s.cpu_us

(* ---------------- random program generation ---------------- *)

module Gen = struct
  module Prng = Rio_util.Prng
  module Pattern = Rio_util.Pattern

  type op =
    | Creat of { path : string; seed : int; len : int }
    | Append of { path : string; seed : int; len : int }
    | Overwrite of { path : string; offset : int; seed : int; len : int }
    | Mkdir of string
    | Unlink of string
    | Rename of { src : string; dst : string }
    | Vista_txn of { seed : int }
    | Sync

  type spec = { root : string; max_len : int; max_dirs : int; vista : bool; sync : bool }

  let default_spec ~root = { root; max_len = 6000; max_dirs = 4; vista = true; sync = false }

  let kind = function
    | Creat _ -> "creat"
    | Append _ -> "append"
    | Overwrite _ -> "overwrite"
    | Mkdir _ -> "mkdir"
    | Unlink _ -> "unlink"
    | Rename _ -> "rename"
    | Vista_txn _ -> "vista-txn"
    | Sync -> "sync"

  let describe = function
    | Creat { path; seed; len } -> Printf.sprintf "creat %s (%d B, seed %#x)" path len seed
    | Append { path; seed; len } -> Printf.sprintf "append %s (+%d B, seed %#x)" path len seed
    | Overwrite { path; offset; seed; len } ->
      Printf.sprintf "overwrite %s [%d,%d) (seed %#x)" path offset (offset + len) seed
    | Mkdir path -> "mkdir " ^ path
    | Unlink path -> "unlink " ^ path
    | Rename { src; dst } -> Printf.sprintf "rename %s -> %s" src dst
    | Vista_txn { seed } -> Printf.sprintf "vista-txn (seed %#x)" seed
    | Sync -> "sync"

  (* Generation walks the same growing tree the program will build, so
     every emitted op is valid when executed in order from an empty root:
     creat/rename targets are fresh names, append/overwrite/unlink/rename
     sources exist, mkdir parents exist. *)
  let generate ~prng spec ~ops =
    let dirs = ref [ spec.root ] in
    let files = ref [] (* (path, current length), newest first *) in
    let next_file = ref 0 and next_dir = ref 0 in
    let fresh_file_name () =
      let n = !next_file in
      incr next_file;
      Printf.sprintf "f%d" n
    in
    let pick xs = List.nth xs (Prng.int prng (List.length xs)) in
    let seed () = Prng.int prng 0x1000000 in
    let gen_one () =
      let writable = List.filter (fun (_, len) -> len > 0) !files in
      let cands =
        [ (`Creat, 3.0) ]
        @ (if !files <> [] then [ (`Append, 1.5); (`Unlink, 1.0); (`Rename, 1.0) ] else [])
        @ (if writable <> [] then [ (`Overwrite, 1.5) ] else [])
        @ (if List.length !dirs < spec.max_dirs then [ (`Mkdir, 1.0) ] else [])
        @ (if spec.vista then [ (`Vista, 0.8) ] else [])
        @ if spec.sync && !files <> [] then [ (`Sync, 1.5) ] else []
      in
      match Prng.choose_weighted prng (Array.of_list cands) with
      | `Creat ->
        let path = Filename.concat (pick !dirs) (fresh_file_name ()) in
        let len = 1 + Prng.int prng spec.max_len in
        files := (path, len) :: !files;
        Creat { path; seed = seed (); len }
      | `Append ->
        let path, old_len = pick !files in
        let len = 1 + Prng.int prng spec.max_len in
        files := (path, old_len + len) :: List.remove_assoc path !files;
        Append { path; seed = seed (); len }
      | `Overwrite ->
        let path, flen = pick writable in
        let offset = Prng.int prng flen in
        let len = 1 + Prng.int prng (flen - offset) in
        Overwrite { path; offset; seed = seed (); len }
      | `Mkdir ->
        let path = Filename.concat (pick !dirs) (Printf.sprintf "d%d" !next_dir) in
        incr next_dir;
        dirs := !dirs @ [ path ];
        Mkdir path
      | `Unlink ->
        let path, _ = pick !files in
        files := List.remove_assoc path !files;
        Unlink path
      | `Rename ->
        let src, len = pick !files in
        let dst = Filename.concat (pick !dirs) (fresh_file_name ()) in
        files := (dst, len) :: List.remove_assoc src !files;
        Rename { src; dst }
      | `Vista -> Vista_txn { seed = seed () }
      | `Sync -> Sync
    in
    List.init ops (fun _ -> gen_one ())

  (* A multi-task program: one independent op list per task, each over
     its own subtree ([spec_of i] names disjoint roots), sized and
     seeded by draws from the master prng. Disjoint subtrees keep every
     task's expected state exact under any interleaving — the sharing
     under test is the cache/registry/shadow machinery underneath the
     namespace, not the namespace itself. *)
  let generate_tasks ~prng ~spec_of ~ops_per_task tasks =
    List.init tasks (fun i ->
        let sub_seed = Prng.int prng 0x40000000 in
        let n = 1 + Prng.int prng ops_per_task in
        generate ~prng:(Prng.create ~seed:sub_seed) (spec_of i) ~ops:n)

  (* The reference model: expected post-state of a program prefix. Raises
     [Not_found] when the prefix is not self-contained (an op uses a file a
     removed op would have created) — the shrinker treats that as an
     invalid candidate. *)
  module Model = struct
    type t = {
      files : (string, bytes) Hashtbl.t;
      mutable dirs : string list;
      mutable vista : int option;  (** Seed of the last committed transaction. *)
    }

    let create ~root = { files = Hashtbl.create 16; dirs = [ root ]; vista = None }

    let copy t = { files = Hashtbl.copy t.files; dirs = t.dirs; vista = t.vista }

    let find t path =
      match Hashtbl.find_opt t.files path with Some b -> b | None -> raise Not_found

    let apply t = function
      | Creat { path; seed; len } -> Hashtbl.replace t.files path (Pattern.fill ~seed ~len)
      | Append { path; seed; len } ->
        Hashtbl.replace t.files path (Bytes.cat (find t path) (Pattern.fill ~seed ~len))
      | Overwrite { path; offset; seed; len } ->
        let b = Bytes.copy (find t path) in
        Bytes.blit (Pattern.fill ~seed ~len) 0 b offset len;
        Hashtbl.replace t.files path b
      | Mkdir path -> t.dirs <- t.dirs @ [ path ]
      | Unlink path ->
        if not (Hashtbl.mem t.files path) then raise Not_found;
        Hashtbl.remove t.files path
      | Rename { src; dst } ->
        let b = find t src in
        Hashtbl.remove t.files src;
        Hashtbl.replace t.files dst b
      | Vista_txn { seed } -> t.vista <- Some seed
      | Sync -> ()

    let after ~root ops =
      let t = create ~root in
      List.iter (apply t) ops;
      t

    let sorted_files t =
      List.sort compare (Hashtbl.fold (fun path b acc -> (path, b) :: acc) t.files [])
  end
end
