type t = {
  completed : int;
  total : int;
  label : string;
  detail : string;
}

let render ?eta_s t =
  let eta =
    match eta_s with
    | Some e when t.completed < t.total && e >= 0.5 -> Printf.sprintf " eta %.0fs" e
    | Some _ | None -> ""
  in
  let detail = if t.detail = "" then "" else " | " ^ t.detail in
  Printf.sprintf "[%d/%d] %s%s%s" t.completed t.total t.label eta detail
