(* "We plan to ... perform a similar fault-injection experiment on a
   database system" (paper, conclusions). The authors' follow-up was Rio
   Vista: transactions whose only machinery is a tiny undo log, because Rio
   already made every memory write permanent.

   This example runs a bank on Vista: transfers between accounts are
   transactions; the OS crashes in the middle of one (after the debit,
   before the credit); the warm reboot plus Vista's recovery puts every
   cent back.

   Run with: dune exec examples/bank_transfer.exe *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Vista = Rio_txn.Vista

let say fmt = Printf.printf (fmt ^^ "\n%!")

let accounts = [| "alice"; "bob"; "carol"; "dave" |]

let slot i = i * 8

let balance store i =
  Int64.to_int (Bytes.get_int64_le (Vista.read store ~offset:(slot i) ~len:8) 0)

let set_balance txn i v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Vista.write txn ~offset:(slot i) b

let print_balances store =
  Array.iteri (fun i name -> say "   %-6s: %4d" name (balance store i)) accounts;
  let total = Array.mapi (fun i _ -> balance store i) accounts |> Array.fold_left ( + ) 0 in
  say "   %-6s: %4d" "TOTAL" total

let () =
  say "== A bank on Vista: free transactions over the Rio file cache ==";
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 7) in
  Kernel.format kernel;
  ignore
    (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  let store = Vista.create fs ~path:"/bank" ~size:4096 in

  say "";
  say "1. Fund the accounts (one committed transaction).";
  let t = Vista.begin_txn store in
  Array.iteri (fun i _ -> set_balance t i 250) accounts;
  Vista.commit t;
  print_balances store;

  say "";
  say "2. A normal transfer: alice -> bob, 100.";
  let t = Vista.begin_txn store in
  set_balance t 0 (balance store 0 - 100);
  set_balance t 1 (balance store 1 + 100);
  Vista.commit t;
  print_balances store;

  say "";
  say "3. Another transfer: carol -> dave, 200... but the OS crashes right";
  say "   after the debit, before the credit. No commit, no sync, nothing.";
  let t = Vista.begin_txn store in
  set_balance t 2 (balance store 2 - 200);
  (* --- CRASH --- *)
  Fs.crash fs;
  say "   (crash!)";

  say "";
  say "4. Warm reboot, then Vista recovery rolls the half-done transfer back.";
  let fs_ref = ref None in
  ignore
    (Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
       ~layout:(Kernel.layout kernel) ~engine
       ~reboot:(fun () ->
         let kernel2 =
           Kernel.boot_warm ~engine ~costs:Costs.default (Kernel.config_with_seed 7)
             ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
         in
         ignore
           (Rio_cache.create ~mem:(Kernel.mem kernel2) ~layout:(Kernel.layout kernel2)
              ~mmu:(Kernel.mmu kernel2) ~engine ~costs:Costs.default
              ~hooks:(Kernel.hooks kernel2) ~pool_alloc:(Kernel.pool_alloc kernel2)
              ~protection:true ~dev:1 ());
         let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
         fs_ref := Some fs2;
         fs2));
  let fs2 = Option.get !fs_ref in
  let rolled = Vista.recover fs2 ~path:"/bank" in
  say "   -> %d undo record(s) applied" rolled;
  let store2 = Vista.open_existing fs2 ~path:"/bank" in
  print_balances store2;

  say "";
  say "Every committed transfer survived; the interrupted one vanished";
  say "atomically. Notice what was NOT needed: no fsync, no redo log, no";
  say "group commit — Rio's memory already was the stable store. That is";
  say "\"free transactions\" (Rio Vista, SOSP 1997)."
