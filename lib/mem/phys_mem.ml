type snapshot = {
  owner_id : int;
  (* pfn -> the page's bytes as they were at snapshot time. Filled lazily
     by the first post-snapshot write to each page (copy-on-write). *)
  saved : (int, bytes) Hashtbl.t;
  mutable active : bool;
}

type t = {
  data : bytes;
  id : int;
  (* Per-page monotonic mutation counter. Never reset (a power cycle bumps
     it rather than zeroing), so any cache keyed by (page, version) — the
     CPU's decoded-instruction cache, the checksum memo below — can never
     alias two different contents of the same page. Version 0 means the
     page has never been written and still holds its created zeroes. *)
  version : int array;
  mutable dirty_pages : int;
  mutable snaps : snapshot list;
  (* Single-page checksum memo: checksum_range is re-asked for the same
     (addr, len) by warm-reboot verification and Rio's checksum audit;
     the version key makes reuse exact. *)
  crc_addr : int array;
  crc_len : int array;
  crc_ver : int array;
  crc_val : int array;
  (* Incremental-update scratch carried between [incr_pre] (before a
     write mutates the bytes) and [incr_commit] (after): see the
     write-path bookkeeping section. *)
  mutable incr_state : int;
  mutable incr_lo : int;
  mutable incr_hi : int;
  mutable incr_acc : int;
}

type paddr = int

let page_size = 8192

let next_id = ref 0

(* Retired memory images by size class. A campaign boots a fresh
   multi-megabyte world per trial; allocating (and zeroing) that image
   each time dominates boot and keeps the major GC busy. [retire] re-zeroes
   only the dirty pages — O(dirty), tracked by the version array — and
   parks the buffer here; [create] then hands out an already-zeroed image.
   Shared across domains under the lock; capped so idle buffers do not pile
   up past what a parallel campaign can actually have in flight. *)
let pool : (int, bytes list ref) Hashtbl.t = Hashtbl.create 4
let pool_lock = Mutex.create ()
let pool_cap = 16

let pool_take len =
  Mutex.protect pool_lock (fun () ->
      match Hashtbl.find_opt pool len with
      | Some ({ contents = b :: rest } as l) ->
        l := rest;
        Some b
      | _ -> None)

let pool_put b =
  Mutex.protect pool_lock (fun () ->
      let key = Bytes.length b in
      match Hashtbl.find_opt pool key with
      | Some l -> if List.length !l < pool_cap then l := b :: !l
      | None -> Hashtbl.add pool key (ref [ b ]))

let create ~bytes_total =
  let pages = max 1 ((bytes_total + page_size - 1) / page_size) in
  incr next_id;
  let len = pages * page_size in
  let data = match pool_take len with Some b -> b | None -> Bytes.make len '\000' in
  {
    data;
    id = !next_id;
    version = Array.make pages 0;
    dirty_pages = 0;
    snaps = [];
    crc_addr = Array.make pages (-1);
    crc_len = Array.make pages (-1);
    crc_ver = Array.make pages (-1);
    crc_val = Array.make pages 0;
    incr_state = 0;
    incr_lo = 0;
    incr_hi = 0;
    incr_acc = 0;
  }

let size t = Bytes.length t.data

let page_count t = size t / page_size

let page_base pfn = pfn * page_size

let pfn_of_addr addr = addr / page_size

let in_range t addr ~len = addr >= 0 && len >= 0 && addr + len <= size t

let check t addr len =
  if not (in_range t addr ~len) then
    invalid_arg (Printf.sprintf "Phys_mem: access [%#x,+%d) outside %#x bytes" addr len (size t))

(* ---------------- write-path bookkeeping ---------------- *)

let cow_save t pfn =
  List.iter
    (fun s ->
      if s.active && not (Hashtbl.mem s.saved pfn) then
        Hashtbl.add s.saved pfn (Bytes.sub t.data (pfn * page_size) page_size))
    t.snaps

(* Called before every mutation of page [pfn]: bump the version (decode and
   checksum caches key on it), mark the page dirty, and save the pre-image
   into any active snapshot that has not seen this page yet. *)
let touch_page t pfn =
  let v = Array.unsafe_get t.version pfn in
  if v = 0 then t.dirty_pages <- t.dirty_pages + 1;
  Array.unsafe_set t.version pfn (v + 1);
  match t.snaps with [] -> () | _ -> cow_save t pfn

let touch_range t addr len =
  if len > 0 then
    for pfn = addr / page_size to (addr + len - 1) / page_size do
      touch_page t pfn
    done

(* ---- incremental checksum maintenance ----

   [checksum_range] memoizes one (addr, len, version) checksum per
   page. A write normally invalidates it (the version bumps), so the
   next checksum re-reads the whole range — the dominant cost of the
   file cache's close-write audit. For small single-page writes to a
   page whose memo is fresh, we instead keep the memo true across the
   write: CRC-32 is linear over GF(2), so

     crc(new) = crc(old) xor shift (raw (old xor new)) trailing

   where raw is the register contribution of the changed bytes and
   the shift accounts for the unchanged tail. [incr_pre] runs before
   the bytes change (capturing the old range's raw CRC), [incr_commit]
   after — the resulting memo value is bit-identical to a full
   recompute, merely cheaper. Large writes fall back to the normal
   invalidate-and-recompute path. *)

let incr_threshold = 2048

let incr_pre t addr len =
  if len > 0 && len <= incr_threshold then begin
    let pfn = addr / page_size in
    if
      (addr + len - 1) / page_size = pfn
      && Array.unsafe_get t.crc_ver pfn = Array.unsafe_get t.version pfn
      && Array.unsafe_get t.crc_len pfn >= 0
    then begin
      let a0 = Array.unsafe_get t.crc_addr pfn in
      let b0 = a0 + Array.unsafe_get t.crc_len pfn in
      let a = if addr > a0 then addr else a0 in
      let b = if addr + len < b0 then addr + len else b0 in
      if a >= b then begin
        (* Write entirely outside the memoized range: value unchanged. *)
        t.incr_state <- 1;
        t.incr_lo <- pfn
      end
      else begin
        t.incr_state <- 2;
        t.incr_lo <- a;
        t.incr_hi <- b;
        t.incr_acc <- Rio_util.Checksum.crc32_raw t.data ~pos:a ~len:(b - a)
      end
    end
  end

let incr_commit t =
  match t.incr_state with
  | 0 -> ()
  | 1 ->
    let pfn = t.incr_lo in
    Array.unsafe_set t.crc_ver pfn (Array.unsafe_get t.version pfn);
    t.incr_state <- 0
  | _ ->
    let pfn = t.incr_lo / page_size in
    let raw_new = Rio_util.Checksum.crc32_raw t.data ~pos:t.incr_lo ~len:(t.incr_hi - t.incr_lo) in
    let tail = Array.unsafe_get t.crc_addr pfn + Array.unsafe_get t.crc_len pfn - t.incr_hi in
    Array.unsafe_set t.crc_val pfn
      (Array.unsafe_get t.crc_val pfn
      lxor Rio_util.Checksum.shift_zeros (t.incr_acc lxor raw_new) ~zeros:tail);
    Array.unsafe_set t.crc_ver pfn (Array.unsafe_get t.version pfn);
    t.incr_state <- 0

let page_version t pfn = t.version.(pfn)

(* ---------------- dirty-page bitmap ---------------- *)

let is_dirty t pfn = t.version.(pfn) > 0

let dirty_count t = t.dirty_pages

let iter_dirty t f =
  for pfn = 0 to page_count t - 1 do
    if Array.unsafe_get t.version pfn > 0 then f pfn
  done

(* ---------------- access ---------------- *)

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let write_u8 t addr v =
  check t addr 1;
  incr_pre t addr 1;
  touch_page t (addr / page_size);
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF));
  incr_commit t

let read_u32 t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFF_FFFF

let write_u32 t addr v =
  check t addr 4;
  incr_pre t addr 4;
  touch_range t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int v);
  incr_commit t

let read_u64 t addr =
  check t addr 8;
  Int64.to_int (Bytes.get_int64_le t.data addr)

let write_u64 t addr v =
  check t addr 8;
  incr_pre t addr 8;
  touch_range t addr 8;
  Bytes.set_int64_le t.data addr (Int64.of_int v);
  incr_commit t

let blit_in t addr b =
  check t addr (Bytes.length b);
  incr_pre t addr (Bytes.length b);
  touch_range t addr (Bytes.length b);
  Bytes.blit b 0 t.data addr (Bytes.length b);
  incr_commit t

let blit_from t addr src ~pos ~len =
  check t addr len;
  incr_pre t addr len;
  touch_range t addr len;
  Bytes.blit src pos t.data addr len;
  incr_commit t

let blit_out t addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let blit_into t addr dst ~pos ~len =
  check t addr len;
  Bytes.blit t.data addr dst pos len

let blit_within t ~src ~dst ~len =
  check t src len;
  check t dst len;
  incr_pre t dst len;
  touch_range t dst len;
  Bytes.blit t.data src t.data dst len;
  incr_commit t

let fill t addr ~len c =
  check t addr len;
  incr_pre t addr len;
  touch_range t addr len;
  Bytes.fill t.data addr len c;
  incr_commit t

let checksum_range t addr ~len =
  check t addr len;
  let pfn = addr / page_size in
  if len > 0 && (addr + len - 1) / page_size = pfn then begin
    (* Within one page: memoized on (addr, len, page version). *)
    let ver = Array.unsafe_get t.version pfn in
    if
      Array.unsafe_get t.crc_addr pfn = addr
      && Array.unsafe_get t.crc_len pfn = len
      && Array.unsafe_get t.crc_ver pfn = ver
    then Array.unsafe_get t.crc_val pfn
    else begin
      let v = Rio_util.Checksum.crc32 t.data ~pos:addr ~len in
      Array.unsafe_set t.crc_addr pfn addr;
      Array.unsafe_set t.crc_len pfn len;
      Array.unsafe_set t.crc_ver pfn ver;
      Array.unsafe_set t.crc_val pfn v;
      v
    end
  end
  else Rio_util.Checksum.crc32 t.data ~pos:addr ~len

let flip_bit t addr ~bit =
  assert (bit >= 0 && bit < 8);
  write_u8 t addr (read_u8 t addr lxor (1 lsl bit))

let reset _t = ()

let power_cycle t =
  touch_range t 0 (Bytes.length t.data);
  Bytes.fill t.data 0 (Bytes.length t.data) '\000'

let dump t = Bytes.copy t.data

let restore_dump t d =
  if Bytes.length d <> Bytes.length t.data then
    invalid_arg "Phys_mem.restore_dump: size mismatch";
  touch_range t 0 (Bytes.length d);
  Bytes.blit d 0 t.data 0 (Bytes.length d)

let unsafe_raw t = t.data

(* End-of-trial teardown: zero the dirty pages and return the buffer to
   the pool for the next [create] of the same size. The memory must not be
   used afterwards — the buffer will be handed to a different [t]. *)
let retire t =
  (match t.snaps with
  | [] -> ()
  | _ -> invalid_arg "Phys_mem.retire: snapshot still active");
  for pfn = 0 to page_count t - 1 do
    if Array.unsafe_get t.version pfn > 0 then
      Bytes.fill t.data (pfn * page_size) page_size '\000'
  done;
  pool_put t.data

(* ---------------- copy-on-write snapshots ---------------- *)

let snapshot t =
  let s = { owner_id = t.id; saved = Hashtbl.create 64; active = true } in
  t.snaps <- s :: t.snaps;
  s

let release t s =
  s.active <- false;
  t.snaps <- List.filter (fun s' -> s' != s) t.snaps

let check_owner t s fn =
  if s.owner_id <> t.id then invalid_arg ("Phys_mem." ^ fn ^ ": snapshot from another memory")

let restore t s =
  check_owner t s "restore";
  (* Detach first so writing the pre-images back does not COW into the
     snapshot we are reading from. *)
  release t s;
  Hashtbl.iter
    (fun pfn pre ->
      let addr = pfn * page_size in
      touch_page t pfn;
      Bytes.blit pre 0 t.data addr page_size)
    s.saved

(* Rewind to the snapshot's contents WITHOUT consuming it: write the
   pre-images back, clear the snapshot's saved table so it begins
   accumulating dirt afresh, and leave it active — the world-template
   restore that runs between trials. The snapshot is deactivated while
   the pre-images blit back so the writes do not COW into the table being
   drained (other overlapping active snapshots still get their saves).
   Returns the number of pages restored. *)
let restore_keep t s =
  check_owner t s "restore_keep";
  s.active <- false;
  let n = Hashtbl.length s.saved in
  Hashtbl.iter
    (fun pfn pre ->
      touch_page t pfn;
      Bytes.blit pre 0 t.data (pfn * page_size) page_size)
    s.saved;
  Hashtbl.reset s.saved;
  s.active <- true;
  n

let snap_saved_pages s = Hashtbl.length s.saved

(* Read [len] bytes at [addr] as they were at snapshot time: saved pages
   come from the snapshot, untouched pages from live memory. *)
let snap_blit_into t s addr dst ~pos ~len =
  check_owner t s "snap_blit_into";
  check t addr len;
  let p = ref pos and a = ref addr and remaining = ref len in
  while !remaining > 0 do
    let pfn = !a / page_size in
    let off = !a mod page_size in
    let n = min !remaining (page_size - off) in
    (match Hashtbl.find_opt s.saved pfn with
    | Some pre -> Bytes.blit pre off dst !p n
    | None -> Bytes.blit t.data !a dst !p n);
    p := !p + n;
    a := !a + n;
    remaining := !remaining - n
  done

let snap_blit_out t s addr ~len =
  let b = Bytes.create len in
  snap_blit_into t s addr b ~pos:0 ~len;
  b

(* Whether the snapshot-time content of page [pfn] is known to be all
   zeroes: the page had never been written at snapshot time and has not
   been COW-saved since (version 0 pages still hold their created
   zeroes). *)
let snap_page_is_zero t s pfn =
  check_owner t s "snap_page_is_zero";
  (not (Hashtbl.mem s.saved pfn)) && t.version.(pfn) = 0

let snap_checksum_range t s addr ~len =
  check_owner t s "snap_checksum_range";
  check t addr len;
  let lo = addr / page_size and hi = (addr + len - 1) / page_size in
  let any_saved = ref false in
  for pfn = lo to hi do
    if Hashtbl.mem s.saved pfn then any_saved := true
  done;
  if not !any_saved then
    (* Untouched since the snapshot: live memory is the snapshot content,
       and the single-page memo applies. *)
    checksum_range t addr ~len
  else begin
    let b = snap_blit_out t s addr ~len in
    Rio_util.Checksum.crc32 b ~pos:0 ~len
  end
