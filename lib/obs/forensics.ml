type t = {
  injections : (int * string * string) list;
  first_wild_store : (int * int * string) option;
  wild_stores : int;
  first_protection_trap : (int * int) option;
  protection_traps : int;
  checksum_mismatches : int;
  crash : (int * string * string) option;
  crash_flush : (int * int * int) option;
  phases : (string * int * int) list;
  swap_dump : (int * int * int) option;
  snapshot : Trace.snapshot;
}

let summarize recorder =
  let injections = ref [] in
  let first_wild = ref None in
  let wild = ref 0 in
  let first_trap = ref None in
  let traps = ref 0 in
  let mismatches = ref 0 in
  let crash = ref None in
  let crash_flush = ref None in
  let phases = ref [] in
  let swap_dump = ref None in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Fault_injected { fault; site } ->
        injections := (e.Trace.ts_us, fault, site) :: !injections
      | Trace.Wild_store { paddr; region; _ } ->
        incr wild;
        if !first_wild = None then first_wild := Some (e.Trace.ts_us, paddr, region)
      | Trace.Protection_trap { paddr } ->
        incr traps;
        if !first_trap = None then first_trap := Some (e.Trace.ts_us, paddr)
      | Trace.Checksum_mismatch _ -> incr mismatches
      | Trace.Crash { message; during } ->
        if !crash = None then crash := Some (e.Trace.ts_us, message, during)
      | Trace.Crash_flush { data; meta } ->
        if !crash_flush = None then crash_flush := Some (e.Trace.ts_us, data, meta)
      | Trace.Phase { name; start_us; end_us } -> phases := (name, start_us, end_us) :: !phases
      | Trace.Swap_dump { dumped; truncated } ->
        swap_dump := Some (e.Trace.ts_us, dumped, truncated)
      | Trace.Dispatch _ | Trace.Clock _ | Trace.Disk_request _ | Trace.Protection_toggle _
      | Trace.Registry_update _ | Trace.Shadow_flip _ | Trace.Activity _ | Trace.Mark _ -> ())
    (Trace.events recorder);
  {
    injections = List.rev !injections;
    first_wild_store = !first_wild;
    wild_stores = !wild;
    first_protection_trap = !first_trap;
    protection_traps = !traps;
    checksum_mismatches = !mismatches;
    crash = !crash;
    crash_flush = !crash_flush;
    phases = List.rev !phases;
    swap_dump = !swap_dump;
    snapshot = Trace.snapshot recorder;
  }

let us ts = Format.asprintf "%a" Rio_util.Units.pp_usec ts

let narrative t =
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  (match t.injections with
  | [] -> add "no fault injections recorded"
  | (ts0, fault, site) :: rest ->
    add "t=%s  injected %d x '%s' fault(s); first site: %s" (us ts0)
      (1 + List.length rest) fault site;
    (match rest with
    | [] -> ()
    | _ ->
      let sites = List.filteri (fun i _ -> i < 3) rest in
      List.iter (fun (ts, _, s) -> add "t=%s    ... then %s" (us ts) s) sites;
      if List.length rest > 3 then add "          ... and %d more site(s)" (List.length rest - 3)));
  (match t.first_wild_store with
  | Some (ts, paddr, region) ->
    add "t=%s  FIRST WILD STORE into the file cache: paddr %#x (%s); %d wild store(s) total"
      (us ts) paddr region t.wild_stores
  | None ->
    if t.wild_stores > 0 then add "%d wild store(s) (first not retained in ring)" t.wild_stores
    else add "no wild stores reached the file cache");
  (match t.first_protection_trap with
  | Some (ts, paddr) ->
    add "t=%s  rio protection TRAPPED an illegal store at paddr %#x (%d trap(s) total)" (us ts)
      paddr t.protection_traps
  | None -> ());
  (match t.crash with
  | Some (ts, message, during) -> add "t=%s  CRASH during %s: %s" (us ts) during message
  | None -> add "no crash recorded (run discarded)");
  (match t.crash_flush with
  | Some (ts, data, meta) when data + meta > 0 ->
    add "t=%s  panic path PUSHED %d data + %d meta dirty buffer(s) to disk while crashing" (us ts)
      data meta
  | Some _ | None -> ());
  List.iter
    (fun (name, start_us, end_us) ->
      add "t=%s  recovery phase '%s' (%s)" (us start_us) name (us (end_us - start_us)))
    t.phases;
  (match t.swap_dump with
  | Some (ts, dumped, truncated) when truncated > 0 ->
    add "t=%s  swap dump TRUNCATED: %s written, %s did not fit the swap partition" (us ts)
      (Format.asprintf "%a" Rio_util.Units.pp_bytes dumped)
      (Format.asprintf "%a" Rio_util.Units.pp_bytes truncated)
  | Some _ | None -> ());
  if t.checksum_mismatches > 0 then
    add "checksums caught %d corrupted buffer(s) during verification" t.checksum_mismatches;
  List.rev !lines
