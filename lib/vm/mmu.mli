(** The memory-management unit: address translation with KSEG semantics.

    Two classes of kernel addresses exist, as on the DEC Alpha (§2.1):

    - {b Mapped} addresses (below [kseg_base]) are translated through the
      page table; invalid pages fault and write-protected pages trap on
      stores. Identity mapping: virtual page n = physical frame n.
    - {b KSEG} addresses ([kseg_base + phys]) address physical memory
      directly. By default they {e bypass} the TLB and all protection — the
      hole that makes the UBC corruptible. Rio's protection flips the ABOX
      control-register bit ([set_kseg_through_tlb true]) so KSEG accesses are
      mapped through the page table and respect write-protection, at
      essentially no cost. *)

type t

type access = Read | Write | Exec

type fault =
  | Unmapped of int  (** Invalid or out-of-range translation (illegal address). *)
  | Write_protected of int
      (** Store to a page whose PTE denies writes — Rio's protection trap. *)

type result = Ok of Rio_mem.Phys_mem.paddr | Fault of fault

val kseg_base : int
(** 2^40 — well above any mapped virtual address in this model. *)

val kseg_addr : Rio_mem.Phys_mem.paddr -> int
(** The KSEG alias of a physical address. *)

val is_kseg : int -> bool

val create : ?obs:Rio_obs.Trace.t -> mem_pages:int -> tlb_entries:int -> unit -> t
(** [obs] (default {!Rio_obs.Trace.null}) receives a [Protection_trap] event
    and a ["vm.protection_traps"] counter tick for every write-protection
    fault. *)

val page_table : t -> Page_table.t

val tlb : t -> Tlb.t

val kseg_through_tlb : t -> bool

val set_kseg_through_tlb : t -> bool -> unit
(** The ABOX CPU-control-register bit: when on, KSEG addresses translate
    through the page table (protection applies); when off, they bypass it. *)

val translate : t -> vaddr:int -> access:access -> result
(** Translate one byte address. Accesses that span pages must be translated
    per page by the caller (the CPU splits them). *)

(** {2 Allocation-free translation}

    [translate] boxes its result; the CPU's inner loop runs millions of
    translations per simulated routine, so it uses the unboxed variant:
    a non-negative return is the physical address, and the negative codes
    below name the fault. Side effects (fault counters, the protection
    trap trace event, TLB accounting) are identical — [translate] is a
    wrapper over [translate_code]. *)

val code_unmapped : int
(** -1 *)

val code_write_protected : int
(** -2 *)

val translate_code : t -> vaddr:int -> access:access -> int

val fault_vaddr : t -> int -> int
(** [fault_vaddr t vaddr] is the address a fault on [vaddr] reports (the
    payload [translate] would box): KSEG addresses routed through the TLB
    fault on the stripped physical address, everything else on the input
    address. *)

val protection_faults : t -> int
(** Count of [Write_protected] faults returned so far. *)

val unmapped_faults : t -> int

val reset_stats : t -> unit

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture per-page valid/writable bits, the TLB, the ABOX bit, and the
    fault counters. *)

val restore : t -> checkpoint -> unit

val pp_fault : Format.formatter -> fault -> unit
