type t = {
  base : Phys_mem.paddr;
  pages : int;
  used : Bytes.t; (* one byte per page: '\000' free, '\001' used *)
  mutable free_count : int;
  mutable hint : int; (* lowest index that might be free *)
}

let create ~region:(r : Layout.region) =
  let pages = r.bytes / Phys_mem.page_size in
  { base = r.base; pages; used = Bytes.make pages '\000'; free_count = pages; hint = 0 }

let total_pages t = t.pages

let free_pages t = t.free_count

let index_of t addr =
  if addr < t.base || addr >= t.base + (t.pages * Phys_mem.page_size) then
    invalid_arg "Page_alloc: address outside region";
  if (addr - t.base) mod Phys_mem.page_size <> 0 then
    invalid_arg "Page_alloc: address not page-aligned";
  (addr - t.base) / Phys_mem.page_size

let alloc t =
  if t.free_count = 0 then None
  else begin
    let i = ref t.hint in
    while !i < t.pages && Bytes.get t.used !i = '\001' do
      incr i
    done;
    if !i >= t.pages then begin
      (* hint overshot: rescan from 0 *)
      i := 0;
      while Bytes.get t.used !i = '\001' do
        incr i
      done
    end;
    Bytes.set t.used !i '\001';
    t.free_count <- t.free_count - 1;
    t.hint <- !i + 1;
    Some (t.base + (!i * Phys_mem.page_size))
  end

let free t addr =
  let i = index_of t addr in
  if Bytes.get t.used i = '\000' then invalid_arg "Page_alloc.free: double free";
  Bytes.set t.used i '\000';
  t.free_count <- t.free_count + 1;
  if i < t.hint then t.hint <- i

let is_allocated t addr = Bytes.get t.used (index_of t addr) = '\001'

let iter_allocated t f =
  for i = 0 to t.pages - 1 do
    if Bytes.get t.used i = '\001' then f (t.base + (i * Phys_mem.page_size))
  done

let reset t =
  Bytes.fill t.used 0 t.pages '\000';
  t.free_count <- t.pages;
  t.hint <- 0

type checkpoint = { ck_used : Bytes.t; ck_free : int; ck_hint : int }

let checkpoint t = { ck_used = Bytes.copy t.used; ck_free = t.free_count; ck_hint = t.hint }

let restore t ck =
  Bytes.blit ck.ck_used 0 t.used 0 t.pages;
  t.free_count <- ck.ck_free;
  t.hint <- ck.ck_hint
