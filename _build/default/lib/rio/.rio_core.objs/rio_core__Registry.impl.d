lib/rio/registry.ml: Bytes Char Hashtbl Int32 Int64 List Rio_fs Rio_mem
