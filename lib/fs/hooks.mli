(** Instrumentation points where Rio (and the kernel model) plug into the
    file system.

    The file system is written against these hooks with no knowledge of Rio:
    [open_write]/[close_write] bracket every legitimate modification of a
    file-cache page (Rio unprotects/reprotects and maintains checksums and
    the registry's "changing" flag); [note_map]/[note_unmap] track which
    physical page holds which block (Rio's registry, §2.2);
    [metadata_update] wraps metadata mutations (Rio makes them atomic via a
    shadow page, §2.3); [copy_in]/[copy_out] are the kernel bcopy data path
    (the fault injector arms copy overruns there). *)

type t = {
  mutable note_map :
    paddr:int -> blkno:int -> owner:Fs_types.owner -> valid:int -> unit;
      (** A physical page now holds block [blkno]; [valid] bytes are
          meaningful. Called again on owner/valid changes. *)
  mutable note_unmap : paddr:int -> unit;
      (** The page no longer caches a block (eviction, file deletion). *)
  mutable open_write : paddr:int -> unit;
      (** The kernel is about to write this page legitimately. *)
  mutable close_write : paddr:int -> unit;
      (** The legitimate write completed. *)
  mutable metadata_update : paddr:int -> (unit -> unit) -> unit;
      (** Run a metadata mutation against the page ([open_write]/[close_write]
          are the caller's job; this hook only adds atomicity). *)
  mutable copy_in : bytes -> int -> paddr:int -> len:int -> unit;
      (** Kernel bcopy: user buffer slice into physical memory. *)
  mutable copy_out : paddr:int -> bytes -> int -> len:int -> unit;
      (** Kernel bcopy: physical memory into a user buffer prefix. *)
  mutable wb_event : label:string -> unit;
      (** An ordering point inside the write-behind pipeline fired:
          "wb-queue ..." (a dirty block staged), "wb-flush ..." (a
          coalesced segment issued to the backend), "wb-commit ..." (a
          batch or journal group commit handed off). The crash-schedule
          checker turns each into a crash point. *)
}

val defaults : mem:Rio_mem.Phys_mem.t -> t
(** No-op instrumentation; copies go straight to memory. *)
