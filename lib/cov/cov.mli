(** Crash-space coverage accounting for check and fuzz campaigns.

    The checker proves contracts over every boundary of a few scripted
    scenarios; the fuzzer samples random programs. Neither says, by
    itself, which slices of the crash space a whole {e campaign} actually
    exercised — whether 10^6 trials ever landed a crash in a shadow-flip
    meta window during a rename, say. This module is the accounting
    layer: each trial contributes a compact signature (which boundary
    classes its schedule enumerated, and — if it crashed — the cell it
    crashed in), signatures merge deterministically in seed order, and
    the merged map renders as a heatmap ({!Heatmap}) and as machine
    JSON.

    A {e cell} of the crash space is the tuple

    - boundary {e label class} — the stable prefix of a
      {!Rio_check.Boundary} label before its first space ("store-torn",
      "registry-update", "vista-commit-start", ...);
    - {e operation kind} — what was in flight at the crash (a fuzz op
      kind like "rename" or a checker scenario slug like "vista");
    - {e task role} — whose crash it was in a multi-task schedule:
      ["solo"], ["crasher"], or ["bystander"];
    - {e crash-ordinal bucket} — the boundary's ordinal in its schedule,
      power-of-two bucketed, so "early in the op" and "deep inside a
      long store sequence" are distinguishable without unbounded axes.

    Merging is pure bookkeeping (sums), so any merge order that is
    itself deterministic — such as {!Rio_parallel.Pool}'s seed-order
    result lists — yields byte-identical reports at any [-j N]. *)

(** What the audited recovery said about one crash trial. *)
type outcome =
  | Survived  (** All contracts held after warm reboot. *)
  | Violated  (** At least one contract was broken. *)
  | Unreached  (** The trip ordinal was never reached on replay. *)

val outcome_name : outcome -> string

val label_class : string -> string
(** The boundary label's class: the prefix before the first space
    (["store-torn p0x4000/lo"] -> ["store-torn"]); the whole label when
    it has no space (["vista-commit-start"]). The same classing the
    fuzzer's stratified sampler uses. *)

val buckets : int
(** Number of crash-ordinal buckets (power-of-two ranges, last open). *)

val bucket_of_ordinal : int -> int
(** [0 -> 0], [1 -> 1], [2..3 -> 2], [4..7 -> 3], ... capped at
    [buckets - 1]. *)

val bucket_name : int -> string
(** ["0"], ["1"], ["2-3"], ..., ["256+"]. *)

type t
(** A mutable coverage accumulator. One per trial (as a signature) or
    one per campaign (as the merged map) — same type, merged with
    {!merge}. *)

val create : unit -> t

(** {1 Recording} *)

val note_schedule : t -> labels:string list -> unit
(** Credit one trial's full boundary schedule: counts one schedule,
    tallies every label's class as enumerated. The denominator of
    coverage. *)

val record : t -> ?task:string -> cls:string -> op:string -> ordinal:int -> outcome -> unit
(** Credit one crash trial: the cell [(cls, op, task, bucket ordinal)]
    gains one tally of [outcome]. The numerator of coverage. [task]
    (default ["solo"]) is the task role axis: ["solo"] for single-task
    campaigns, ["crasher"] for the task whose op tripped the boundary,
    ["bystander"] for another task caught with an op in flight. *)

val add_shrink : t -> int -> unit
(** Credit shrink-budget usage (candidate replays one counterexample
    cost). *)

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** Fold [t]'s tallies into [into]. Sums only, so any deterministic
    fold order gives a deterministic result. *)

val merge_list : t list -> t
(** A fresh accumulator holding the left-to-right merge of the list. *)

(** {1 Reading} *)

val schedules : t -> int
val crash_trials : t -> int
val violations : t -> int
val unreached : t -> int
val boundaries_enumerated : t -> int
val shrink_attempts : t -> int

val classes : t -> string list
(** Every label class seen (enumerated or crashed-in), sorted. *)

val ops : t -> string list
(** Every operation kind recorded, sorted. *)

val tasks : t -> string list
(** Every task role recorded, sorted (["solo"], or
    ["bystander"]/["crasher"] in multi-task campaigns). *)

val enumerated_of_class : t -> string -> int
(** Boundaries of this class enumerated across all schedules. *)

val crashed_of_class : t -> string -> int
val violated_of_class : t -> string -> int

val cell_count : t -> cls:string -> op:string -> bucket:int -> int
(** Crash trials recorded in one cell (all outcomes). *)

val cell_by_op : t -> cls:string -> op:string -> int
(** Crash trials for a (class, op kind) pair, summed over buckets. *)

val cell_by_bucket : t -> cls:string -> bucket:int -> int
(** Crash trials for a (class, bucket) pair, summed over op kinds. *)

val cell_by_task : t -> cls:string -> task:string -> int
(** Crash trials for a (class, task role) pair. *)

val unhit_classes : t -> string list
(** Classes that were enumerated in some schedule but never crashed
    into — the cells a campaign claims nothing about. Sorted. The
    fuzzer's feedback hook biases its stratified sampler toward these. *)

val to_json : t -> Rio_util.Json.t
(** Deterministic machine-readable map: totals, per-class tallies,
    every non-empty cell (sorted by class, op, bucket), and the unhit
    class list. Contains no wall-clock fields, so equal campaigns
    produce byte-identical documents at any [-j N]. *)
