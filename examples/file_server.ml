(* The departmental file server from the paper's conclusions: "we have
   installed a departmental file server using the Rio file cache ... this
   file server stores our kernel source tree, this paper, and the authors'
   mail."

   This example runs that server through a week of simulated activity with
   repeated operating-system crashes (one every simulated "day"), doing a
   warm reboot each time, and audits the full file set after every
   recovery.

   Run with: dune exec examples/file_server.exe *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Memtest = Rio_workload.Memtest
module Units = Rio_util.Units

let say fmt = Printf.printf (fmt ^^ "\n%!")

type server = {
  engine : Engine.t;
  mutable kernel : Kernel.t;
  mutable fs : Fs.t;
  mutable crashes_survived : int;
}

let boot_server () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 2026) in
  Kernel.format kernel;
  ignore
    (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  { engine; kernel; fs; crashes_survived = 0 }

let crash_and_recover server =
  Fs.crash server.fs;
  let report =
    Warm_reboot.perform ~mem:(Kernel.mem server.kernel) ~disk:(Kernel.disk server.kernel)
      ~layout:(Kernel.layout server.kernel) ~engine:server.engine
      ~reboot:(fun () ->
        let kernel2 =
          Kernel.boot_warm ~engine:server.engine ~costs:Costs.default
            (Kernel.config_with_seed 2026) ~mem:(Kernel.mem server.kernel)
            ~disk:(Kernel.disk server.kernel)
        in
        ignore
          (Rio_cache.create ~mem:(Kernel.mem kernel2) ~layout:(Kernel.layout kernel2)
             ~mmu:(Kernel.mmu kernel2) ~engine:server.engine ~costs:Costs.default
             ~hooks:(Kernel.hooks kernel2) ~pool_alloc:(Kernel.pool_alloc kernel2)
             ~protection:true ~dev:1 ());
        let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
        server.kernel <- kernel2;
        server.fs <- fs2;
        fs2)
  in
  server.crashes_survived <- server.crashes_survived + 1;
  report

let () =
  say "== Departmental file server on Rio: a week with daily OS crashes ==";
  say "";
  let server = boot_server () in
  (* The server's precious long-term contents. *)
  Fs.mkdir server.fs "/server";
  Fs.mkdir server.fs "/server/kernel-src";
  Fs.mkdir server.fs "/server/mail";
  let precious =
    [
      ("/server/kernel-src/vfs.c", Rio_util.Pattern.fill ~seed:1 ~len:60_000);
      ("/server/kernel-src/ufs.c", Rio_util.Pattern.fill ~seed:2 ~len:48_000);
      ("/server/rio-paper.tex", Rio_util.Pattern.fill ~seed:3 ~len:90_000);
      ("/server/mail/inbox", Rio_util.Pattern.fill ~seed:4 ~len:30_000);
    ]
  in
  List.iter (fun (p, d) -> Fs.write_file server.fs p d) precious;
  say "stored %d long-term files (%d KB total)" (List.length precious)
    (List.fold_left (fun a (_, d) -> a + Bytes.length d) 0 precious / 1024);
  say "";
  (* Day-to-day churn is a memTest-style stream in its own directory. *)
  let mt =
    Memtest.create
      { Memtest.default_config with Memtest.seed = 31; dir = "/server/scratch"; max_files = 20 }
  in
  for day = 1 to 7 do
    (* A day of user activity... *)
    for _ = 1 to 120 do
      Memtest.step mt ~fs:server.fs ();
      Kernel.run_activity server.kernel
    done;
    Engine.advance_by server.engine (Units.minutes 10);
    (* ...then the OS crashes (buggy driver, say). *)
    let report = crash_and_recover server in
    (* Audit everything. *)
    let precious_ok =
      List.for_all (fun (p, d) -> Bytes.equal d (Fs.read_file server.fs p)) precious
    in
    let scratch_discrepancies =
      Memtest.compare_with_fs mt server.fs ~exempt:(Memtest.touched_by_next_step mt)
    in
    say "day %d: crash #%d | restored %4d buffers in %s | long-term files: %s | scratch: %s"
      day server.crashes_survived
      (report.Warm_reboot.meta_restored + report.Warm_reboot.data_restored)
      (Format.asprintf "%a" Units.pp_usec report.Warm_reboot.duration_us)
      (if precious_ok then "all intact" else "CORRUPTED")
      (if scratch_discrepancies = [] then "intact" else "CORRUPTED")
  done;
  say "";
  say "%d crashes, zero data loss, zero fsync calls. \"Among other things," server.crashes_survived;
  say "this file server stores our kernel source tree, this paper, and the";
  say "authors' mail.\" (paper, conclusions)"
