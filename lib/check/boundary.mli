(** Crash boundaries: the persistence points the checker enumerates.

    The paper's campaign (§3.1) {e samples} crash times; the probe instead
    names every boundary a crash could land on during one scripted
    operation — each buffer-cache store window, each registry update, each
    shadow-page flip, each disk-request completion, and each Vista
    undo-log step — and can deterministically crash {e at} boundary [i].

    A probe is armed only around the scripted operation. While armed,
    every boundary gets an ordinal (0, 1, 2, ...) and a stable label; the
    counting pass records them all, and a trip pass re-runs the identical
    seed and raises {!Crash_here} at the chosen ordinal, after capturing
    the physical-memory image {e as the crash would leave it}. The capture
    happens before the exception unwinds, so cleanup code on the unwind
    path (Rio's shadow-disengage [Fun.protect], for one) cannot launder
    the crash state: the explorer restores the captured image over memory
    before running warm reboot + fsck.

    Torn boundaries model a power loss in the middle of the store
    sequence: the captured image gets the target page's changed bytes
    half-applied (the [/lo] variant keeps the first half of the changes,
    [/hi] the second half). Metadata pages get torn variants inside the
    shadow window (where the home page is really being mutated); data
    pages get them at the close of a [copy_in] write window. *)

exception Crash_here
(** The modelled crash. Raised by an armed probe at its trip ordinal;
    the machine state of record is the capture ({!restore_crash_image}),
    not live memory. *)

type t

val create : ?fast:bool -> mem:Rio_mem.Phys_mem.t -> obs:Rio_obs.Trace.t -> unit -> t
(** A disarmed probe. When [obs] is live, every boundary hit while armed
    is also emitted as a [Mark] event (for counterexample narratives).

    [fast] (default {!Rio_util.Fastpath.on}) selects the capture
    representation: a copy-on-write {!Rio_mem.Phys_mem.snapshot} (O(1) at
    the trip, O(pages dirtied afterwards) to restore) instead of a full
    memory dump. Byte-for-byte the same restored state either way. *)

val arm : t -> trip_at:int -> unit
(** Start numbering boundaries from 0. [trip_at = -1] counts without ever
    crashing; [trip_at = i] captures and raises at ordinal [i]. *)

val disarm : t -> unit
(** Stop emitting boundaries (recovery and checking run disarmed). *)

val emitted : t -> int
(** Boundaries numbered so far in this arming — read between operations to
    attribute ordinal ranges to the operation that produced them (the
    fuzzer's in-flight-operation map). *)

val labels : t -> string list
(** Labels of the boundaries seen while armed, in ordinal order. *)

val has_crash_image : t -> bool
(** Whether a boundary tripped and its capture is still held. *)

val restore_crash_image : t -> unit
(** Put physical memory into the state captured at the tripped boundary
    (with any torn-page composition already applied) — the moral
    equivalent of [Phys_mem.restore_dump mem (dump-at-trip)], in O(pages
    dirtied since the trip) on the fast path. Raises [Invalid_argument]
    if nothing tripped. The fast capture is consumed: a second restore of
    the same trip raises. *)

val tripped_label : t -> string option

val drop_capture : t -> unit
(** Release an unconsumed trip capture (its copy-on-write snapshot pins
    pre-images in the page table until released). {!arm} does this
    implicitly; call it when disposing of a world whose last attempt
    tripped but never restored — e.g. on the [Invalid_program] unwind. *)

val point : t -> string -> unit
(** Emit one externally-defined boundary: it joins the ordinal stream
    exactly like a hook-emitted one (counted, labelled, crashable). The
    task scheduler uses this for its lock-protocol events
    ("task-acquire", "task-wait", "task-release", "task-call" labels),
    which makes lock hand-offs both preemption points and crash points. *)

val set_on_emit : t -> (string -> unit) -> unit
(** Install a callback fired after every {e counted, non-tripping}
    boundary while armed (never at the trip: {!Crash_here} is raised
    first). The scheduler's preemption hook: with
    [set_on_emit probe (fun _ -> Sched.preempt sched)] every protocol
    boundary becomes a deterministic interleaving point. *)

val instrument_hooks : t -> Rio_fs.Hooks.t -> unit
(** Wrap the (already Rio-installed) file-system hooks so that store
    windows, registry updates, and shadow-wrapped metadata mutations emit
    boundaries. Call after {!Rio_core.Rio_cache.create}. *)

val instrument_disk : t -> Rio_disk.Disk.t -> unit
(** Emit a boundary at every disk-request completion. *)

val vista_event : t -> Rio_txn.Vista.event -> unit
(** A {!Rio_txn.Vista.set_observer} observer that turns each transaction
    protocol step into a boundary. *)
