lib/rio/rio_cache.ml: Fun Protect Registry Rio_fs Rio_mem Rio_sim Rio_util
