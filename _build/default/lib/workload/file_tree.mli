(** Synthetic source-tree generator.

    Stands in for the Digital Unix source tree (cp+rm's 40 MB) and the
    Andrew benchmark's source hierarchy, which we cannot ship. Shapes match
    early-90s source trees: a few levels of nested directories, many small
    files with a long tail (sizes drawn from a clipped geometric mix). *)

type spec = {
  seed : int;
  root : string;
  total_bytes : int;  (** Target aggregate file size. *)
  files_per_dir : int;
  dirs_per_level : int;
  depth : int;
}

val default : root:string -> total_bytes:int -> spec

type t = {
  dirs : string list;  (** Creation order (parents first). *)
  files : (string * int * int) list;  (** (path, content seed, size). *)
}

val generate : spec -> t

val total_bytes : t -> int

val create_ops : t -> Script.op list
(** mkdir + write every file (the untimed setup, or the timed copy
    destination). *)

val copy_ops : t -> src_root:string -> dst_root:string -> Script.op list
(** Read each file from under [src_root] and write it under [dst_root] —
    the timed half of cp+rm. *)

val remove_ops : t -> Script.op list
(** Unlink every file, rmdir every directory (leaves first). *)

val rebase : t -> src_root:string -> dst_root:string -> t
(** The same tree rooted elsewhere. *)
