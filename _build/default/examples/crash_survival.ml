(* Crash survival under fault injection: the paper's §3 experiment in
   miniature. We inject the most dangerous fault type — kernel bcopy copy
   overruns — into three systems and watch who saves the data.

   Run with: dune exec examples/crash_survival.exe *)

module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type

let say fmt = Printf.printf (fmt ^^ "\n%!")

let config =
  {
    Campaign.default_config with
    Campaign.warmup_steps = 30;
    max_steps = 300;
    memtest_files = 16;
    memtest_file_bytes = 24 * 1024;
  }

(* Run crash tests until [target] of them actually crash (discarded runs —
   where the faults never manifested — do not count, §3.1). *)
let run_system system ~target =
  let crashes = ref 0 and corrupt = ref 0 and traps = ref 0 and discarded = ref 0 in
  let seed = ref 0 in
  while !crashes < target && !seed < 150 do
    incr seed;
    let o = Campaign.run_one config system Fault_type.Copy_overrun ~seed:!seed in
    if o.Campaign.discarded then incr discarded
    else begin
      incr crashes;
      if o.Campaign.corrupted then incr corrupt;
      if o.Campaign.protection_trap then incr traps
    end
  done;
  (!crashes, !corrupt, !traps, !discarded)

let () =
  say "== Crash survival under copy-overrun fault injection ==";
  say "";
  say "Each run: boot, run memTest + background Andrew, inject 20 copy-overrun";
  say "faults into the kernel bcopy path, run until the system crashes (or";
  say "discard), recover, and compare every byte against the reconstructed";
  say "expected state (the paper's §3 methodology).";
  say "";
  List.iter
    (fun system ->
      let crashes, corrupt, traps, discarded = run_system system ~target:8 in
      say "%-28s: %2d crashes, %2d discarded | corrupted runs: %d | protection traps: %d"
        (Campaign.system_name system) crashes discarded corrupt traps)
    Campaign.all_systems;
  say "";
  say "What to look for (cf. Table 1):";
  say "  - the write-through disk system corrupts rarely (its data is on disk);";
  say "  - Rio WITHOUT protection corrupts a little more often: wild stores";
  say "    land in the file cache and the warm reboot faithfully restores the";
  say "    corrupted bytes (checksums catch most of it);";
  say "  - Rio WITH protection usually converts the overrun into an immediate";
  say "    protection trap: the system halts before the damage is done."
