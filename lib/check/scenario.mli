(** The scripted operations the checker crashes at every boundary of.

    Each scenario is a tiny three-act script against a freshly formatted
    Rio file system: [setup] builds the pre-state (always including an
    innocent-bystander file whose corruption any scenario flags), [op] is
    the operation under test — the only part run with the probe armed —
    and [check] audits the recovered file system and returns violation
    messages (empty = this crash point is safe).

    Checks encode the crash-consistency contract, not exact outcomes: a
    created file may exist or not, but its bytes must come from the write
    (or be zero); a renamed file must be reachable under exactly one of
    its names with intact contents; a Vista ledger must be entirely the
    old or entirely the new committed state with an empty undo log. *)

type t = {
  name : string;  (** Human description for reports. *)
  slug : string;  (** Stable id used by [--scenario] and test output. *)
  setup : Rio_fs.Fs.t -> unit;
  op : vista_hook:(Rio_txn.Vista.event -> unit) -> Rio_fs.Fs.t -> unit;
      (** The probed operation. [vista_hook] must be installed as the
          observer on any Vista store the scenario opens. *)
  check : Rio_fs.Fs.t -> string list;  (** Violations found post-recovery. *)
}

val all : t list
(** creat, write, rename, vista — in that (report) order. *)

val find : string -> t option
(** Look up by slug. *)
