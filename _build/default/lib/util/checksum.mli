(** Block checksums used by the Rio corruption detector.

    The paper (§3.2) maintains a checksum of each memory block in the file
    cache; unintentional stores leave the checksum inconsistent. We provide
    CRC-32 (IEEE 802.3 polynomial, table-driven) as the primary detector and
    Fletcher-32 as a cheaper alternative for the cost ablation. *)

val crc32 : ?init:int -> bytes -> pos:int -> len:int -> int
(** [crc32 b ~pos ~len] is the CRC-32 of the slice. [init] continues a prior
    checksum (default the standard [0] seed, pre/post-inverted
    internally). Result fits in 32 bits. *)

val crc32_string : string -> int
(** CRC-32 of a whole string. *)

val fletcher32 : bytes -> pos:int -> len:int -> int
(** Fletcher-32 over the slice, treating bytes as 8-bit words. *)

type algorithm = Crc32 | Fletcher32

val compute : algorithm -> bytes -> pos:int -> len:int -> int
(** Dispatch on the algorithm. *)

val algorithm_name : algorithm -> string
