lib/rio/rio_cache.mli: Protect Registry Rio_fs Rio_mem Rio_sim Rio_vm
