type slot = { mutable vpn : int } (* -1 = empty *)

type t = {
  slots : slot array;
  mask : int;
  mutable hits : int;
  mutable misses : int;
  mutable shootdowns : int;
}

let create ~entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Tlb.create: entries must be a positive power of two";
  {
    slots = Array.init entries (fun _ -> { vpn = -1 });
    mask = entries - 1;
    hits = 0;
    misses = 0;
    shootdowns = 0;
  }

let access t ~vpn _pte =
  let slot = t.slots.(vpn land t.mask) in
  if slot.vpn = vpn then t.hits <- t.hits + 1
  else begin
    t.misses <- t.misses + 1;
    slot.vpn <- vpn
  end

let shootdown t ~vpn =
  let slot = t.slots.(vpn land t.mask) in
  if slot.vpn = vpn then begin
    slot.vpn <- -1;
    t.shootdowns <- t.shootdowns + 1
  end

let flush t = Array.iter (fun s -> s.vpn <- -1) t.slots

let hits t = t.hits
let misses t = t.misses
let shootdowns t = t.shootdowns

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.shootdowns <- 0

(* ---- world-template rewind ---- *)

type checkpoint = {
  ck_vpns : int array;
  ck_hits : int;
  ck_misses : int;
  ck_shootdowns : int;
}

let checkpoint t =
  { ck_vpns = Array.map (fun s -> s.vpn) t.slots;
    ck_hits = t.hits; ck_misses = t.misses; ck_shootdowns = t.shootdowns }

let restore t ck =
  Array.iteri (fun i s -> s.vpn <- ck.ck_vpns.(i)) t.slots;
  t.hits <- ck.ck_hits;
  t.misses <- ck.ck_misses;
  t.shootdowns <- ck.ck_shootdowns
