type config = {
  seed : int;
  trials : int;
  scale : float;
  domains : int;
  trace_dir : string option;
  progress : Progress.t -> unit;
}

let default =
  {
    seed = 1;
    trials = 50;
    scale = 1.0;
    domains = 1;
    trace_dir = None;
    progress = (fun (_ : Progress.t) -> ());
  }

let progress_sink cfg =
  if cfg.domains > 1 then Rio_parallel.Pool.sink cfg.progress else cfg.progress

let reporter cfg ~total =
  let completed = Atomic.make 0 in
  let sink = progress_sink cfg in
  fun ~label ~detail ->
    let c = 1 + Atomic.fetch_and_add completed 1 in
    sink { Progress.completed = c; total; label; detail }
