(** Deterministic pseudo-random number generator (SplitMix64).

    Every experiment in this repository is seeded, so any crash test or
    workload run can be replayed bit-for-bit — the property memTest relies on
    to reconstruct the expected file-system contents after a crash
    (paper §3.2). The generator is self-contained (no dependence on the
    stdlib [Random] state) so library users cannot perturb experiments. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val bool : t -> bool
(** A fair coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniform element. Requires [arr] non-empty. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** [choose_weighted t arr] picks an element with probability proportional to
    its weight. Requires at least one strictly positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t]. Used to give each subsystem its own stream so adding
    draws in one subsystem does not shift another's. *)

val state : t -> int64
(** The raw generator state, for checkpoint/rewind. *)

val set_state : t -> int64 -> unit
(** Rewind the generator to a previously captured {!state}. *)
