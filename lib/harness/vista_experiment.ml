module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Kcrash = Rio_kernel.Kcrash
module Fs = Rio_fs.Fs
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Vista = Rio_txn.Vista
module Injector = Rio_fault.Injector
module Fault_type = Rio_fault.Fault_type
module Prng = Rio_util.Prng

type outcome = {
  discarded : bool;
  crashed_during_txn : bool;
  transfers_committed : int;
  undo_records_recovered : int;
  total_expected : int;
  total_found : int;
  atomic : bool;
}

type summary = {
  crashes : int;
  attempts : int;
  violations : int;
  recovered_transactions : int;
}

let accounts = 16
let funding = 10_000
let slot i = i * 8

let balance store i =
  Int64.to_int (Bytes.get_int64_le (Vista.read store ~offset:(slot i) ~len:8) 0)

let set_balance txn i v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Vista.write txn ~offset:(slot i) b

let total store =
  let sum = ref 0 in
  for i = 0 to accounts - 1 do
    sum := !sum + balance store i
  done;
  !sum

let make_rio kernel ~protection =
  ignore
    (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine:(Kernel.engine kernel) ~costs:(Kernel.costs kernel)
       ~hooks:(Kernel.hooks kernel) ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ())

let run_one fault ~protection ~seed =
  let engine = Engine.create () in
  let costs = Costs.default in
  let kcfg = Kernel.config_with_seed seed in
  let kernel = Kernel.boot ~engine ~costs kcfg in
  Kernel.format kernel;
  make_rio kernel ~protection;
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  let store = Vista.create fs ~path:"/ledger" ~size:4096 in
  (* Fund the bank in one committed transaction. *)
  let t0 = Vista.begin_txn store in
  set_balance t0 0 funding;
  Vista.commit t0;
  let prng = Prng.create ~seed:(seed lxor 0xAC1D) in
  let committed = ref 0 in
  let in_txn = ref false in
  (* One banking step: a transfer transaction plus kernel activity. *)
  let step () =
    let t = Vista.begin_txn store in
    in_txn := true;
    let a = Prng.int prng accounts and b = Prng.int prng accounts in
    let amount = 1 + Prng.int prng 20 in
    set_balance t a (balance store a - amount);
    Kernel.run_activity kernel;
    set_balance t b (balance store b + amount);
    Vista.commit t;
    in_txn := false;
    incr committed;
    Kernel.run_activity kernel
  in
  let crash = ref None in
  (try
     for _ = 1 to 40 do
       step ()
     done;
     Injector.inject_many kernel ~prng:(Prng.create ~seed:(seed lxor 0xFA17)) fault ~count:20;
     for _ = 1 to 400 do
       step ()
     done
   with
  | Kcrash.Crashed info -> crash := Some info
  | Rio_fs.Fs_types.Fs_error msg ->
    crash :=
      Some { Kcrash.cause = Kcrash.Panic msg; during = "database"; at_us = Engine.now engine });
  match !crash with
  | None ->
    {
      discarded = true;
      crashed_during_txn = false;
      transfers_committed = !committed;
      undo_records_recovered = 0;
      total_expected = funding;
      total_found = funding;
      atomic = true;
    }
  | Some info ->
    Kernel.crash_system kernel info;
    let fs_ref = ref None in
    ignore
      (Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
         ~layout:(Kernel.layout kernel) ~engine
         ~reboot:(fun () ->
           let kernel2 =
             Kernel.boot_warm ~engine ~costs kcfg ~mem:(Kernel.mem kernel)
               ~disk:(Kernel.disk kernel)
           in
           make_rio kernel2 ~protection;
           let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
           fs_ref := Some fs2;
           fs2));
    let fs2 = match !fs_ref with Some f -> f | None -> assert false in
    (match Vista.recover fs2 ~path:"/ledger" with
    | rolled ->
      let store2 = Vista.open_existing fs2 ~path:"/ledger" in
      let found = total store2 in
      {
        discarded = false;
        crashed_during_txn = !in_txn;
        transfers_committed = !committed;
        undo_records_recovered = rolled;
        total_expected = funding;
        total_found = found;
        atomic = found = funding;
      }
    | exception Rio_fs.Fs_types.Fs_error _ ->
      (* Recovery itself failed (e.g. the ledger file was destroyed):
         definitely not atomic. *)
      {
        discarded = false;
        crashed_during_txn = !in_txn;
        transfers_committed = !committed;
        undo_records_recovered = 0;
        total_expected = funding;
        total_found = -1;
        atomic = false;
      })

let run ?(fault = Fault_type.Copy_overrun) ~protection (cfg : Run.config) =
  let crashes = cfg.Run.trials in
  let seed_base = cfg.Run.seed in
  let done_ = ref 0
  and attempts = ref 0
  and violations = ref 0
  and recovered = ref 0 in
  while !done_ < crashes && !attempts < crashes * 30 do
    incr attempts;
    let o = run_one fault ~protection ~seed:(seed_base + !attempts) in
    if not o.discarded then begin
      incr done_;
      if not o.atomic then incr violations;
      if o.undo_records_recovered > 0 then incr recovered
    end
  done;
  { crashes = !done_; attempts = !attempts; violations = !violations;
    recovered_transactions = !recovered }

let summary_table rows =
  let t =
    Rio_util.Table.create
      ~columns:
        [
          ("Fault / system", Rio_util.Table.Left);
          ("Crashes", Rio_util.Table.Right);
          ("Rolled-back txns", Rio_util.Table.Right);
          ("Ledger violations", Rio_util.Table.Right);
        ]
  in
  List.iter
    (fun (label, (s : summary)) ->
      Rio_util.Table.add_row t
        [
          label;
          string_of_int s.crashes;
          string_of_int s.recovered_transactions;
          string_of_int s.violations;
        ])
    rows;
  t
