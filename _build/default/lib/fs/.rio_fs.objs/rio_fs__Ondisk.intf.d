lib/fs/ondisk.mli: Fs_types
