let table1_total_crashes_per_system = 650

(* Row-level cells reconstructed from a degraded copy of Table 1; the
   column totals (7 / 10 / 4 of 650) and the qualitative facts — copy
   overrun is the dominant corruptor without protection; most cells are
   blank — are exact from the text. *)
let table1_corruptions =
  [
    ("kernel text", (2, 1, 0));
    ("kernel heap", (1, 1, 0));
    ("kernel stack", (0, 1, 1));
    ("destination reg.", (0, 0, 0));
    ("source reg.", (2, 0, 0));
    ("delete branch", (0, 1, 0));
    ("delete random inst.", (0, 0, 1));
    ("initialization", (1, 0, 0));
    ("pointer", (0, 1, 0));
    ("allocation", (0, 0, 1));
    ("copy overrun", (1, 4, 1));
    ("off-by-one", (0, 1, 0));
    ("synchronization", (0, 0, 0));
  ]

let table1_totals = (7, 10, 4)

let protection_trap_invocations = (6, 2)

type perf_row = {
  label : string;
  cp_rm : float;
  cp : float;
  rm : float;
  sdet : float;
  andrew : float;
}

let table2 =
  [
    { label = "memory-fs"; cp_rm = 21.; cp = 15.; rm = 6.; sdet = 43.; andrew = 13. };
    { label = "ufs-delayed"; cp_rm = 81.; cp = 76.; rm = 5.; sdet = 47.; andrew = 13. };
    { label = "advfs"; cp_rm = 125.; cp = 110.; rm = 15.; sdet = 132.; andrew = 16. };
    { label = "ufs"; cp_rm = 332.; cp = 245.; rm = 87.; sdet = 401.; andrew = 23. };
    { label = "wt-close"; cp_rm = 394.; cp = 274.; rm = 120.; sdet = 699.; andrew = 49. };
    { label = "wt-write"; cp_rm = 539.; cp = 419.; rm = 120.; sdet = 910.; andrew = 178. };
    { label = "rio-noprot"; cp_rm = 24.; cp = 18.; rm = 6.; sdet = 42.; andrew = 12. };
    { label = "rio-prot"; cp_rm = 25.; cp = 18.; rm = 7.; sdet = 42.; andrew = 13. };
  ]

let table2_row label = List.find_opt (fun r -> r.label = label) table2

let mttf_disk_years = 15.
let mttf_rio_noprot_years = 11.
let crash_interval_months = 2.
