let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))

let percentile xs p =
  assert (Array.length xs > 0);
  assert (p >= 0. && p <= 100.);
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: a total order even when NaN
     slips in (NaN sorts first, so upper percentiles stay meaningful). *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float rank in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (mn, mx) x -> (Float.min mn x, Float.max mx x))
    (xs.(0), xs.(0))
    xs

let ratio a b = if b = 0. then Float.nan else a /. b

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  let mn, mx = min_max xs in
  { n = Array.length xs; mean = mean xs; stddev = stddev xs; min = mn; max = mx; median = median xs }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n s.mean s.stddev s.min
    s.median s.max

let binomial_rate k n = if n = 0 then 0. else float_of_int k /. float_of_int n

let wilson_interval k n =
  if n = 0 then (0., 1.)
  else
    let z = 1.96 in
    let nf = float_of_int n in
    let p = float_of_int k /. nf in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. nf) in
    let center = (p +. (z2 /. (2. *. nf))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1. -. p) /. nf) +. (z2 /. (4. *. nf *. nf)))
    in
    (Float.max 0. (center -. half), Float.min 1. (center +. half))
