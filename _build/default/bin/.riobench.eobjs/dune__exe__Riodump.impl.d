bin/riodump.ml: Arg Cmd Cmdliner Format List Printf Rio_core Rio_cpu Rio_fault Rio_fs Rio_kasm Rio_kernel Rio_mem Rio_sim Rio_util Rio_workload Term
