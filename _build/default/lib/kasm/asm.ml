module Isa = Rio_cpu.Isa

type item =
  | Fixed of Isa.t
  | Branch_to of (int -> Isa.t) * int (* build from word offset; label id *)

type t = {
  mutable items : item list; (* reversed *)
  mutable count : int;
  mutable labels : (int * string * int option) list; (* id, name, bound word index *)
  mutable next_label : int;
  mutable globals : (string * int) list; (* name, word index *)
}

type label = int

let create () = { items = []; count = 0; labels = []; next_label = 0; globals = [] }

let fresh_label t name =
  let id = t.next_label in
  t.next_label <- id + 1;
  t.labels <- (id, name, None) :: t.labels;
  id

let label_info t id =
  match List.find_opt (fun (i, _, _) -> i = id) t.labels with
  | Some info -> info
  | None -> failwith "Asm: unknown label"

let bind t id =
  let _, name, bound = label_info t id in
  (match bound with
  | Some _ -> failwith (Printf.sprintf "Asm: label %s bound twice" name)
  | None -> ());
  t.labels <- List.map (fun (i, n, b) -> if i = id then (i, n, Some t.count) else (i, n, b)) t.labels

let here t = t.count * Isa.word_bytes

let push t item =
  t.items <- item :: t.items;
  t.count <- t.count + 1

let emit t instr = push t (Fixed instr)

let beq t a b lbl = push t (Branch_to ((fun off -> Isa.Beq (a, b, off)), lbl))
let bne t a b lbl = push t (Branch_to ((fun off -> Isa.Bne (a, b, off)), lbl))
let blt t a b lbl = push t (Branch_to ((fun off -> Isa.Blt (a, b, off)), lbl))
let bge t a b lbl = push t (Branch_to ((fun off -> Isa.Bge (a, b, off)), lbl))
let jmp t lbl = push t (Branch_to ((fun off -> Isa.Jmp off), lbl))
let jal t lbl = push t (Branch_to ((fun off -> Isa.Jal (Rio_cpu.Machine.ra_reg, off)), lbl))

let li t rd v =
  if v < 0 then begin
    if v < -32768 then failwith "Asm.li: negative immediate out of range";
    emit t (Isa.Addi (rd, 0, v))
  end
  else if v <= 0xFFFF then
    (* Ori with r0 keeps 16-bit constants to one instruction. *)
    emit t (Isa.Ori (rd, 0, v))
  else if v <= 0xFFFF_FFFF then begin
    emit t (Isa.Lui (rd, (v lsr 16) land 0xFFFF));
    if v land 0xFFFF <> 0 then emit t (Isa.Ori (rd, rd, v land 0xFFFF))
  end
  else failwith "Asm.li: immediate wider than 32 bits"

let mv t rd rs = emit t (Isa.Or (rd, rs, 0))

let ret t = emit t (Isa.Jr Rio_cpu.Machine.ra_reg)

let halt t = emit t Isa.Halt

let nop t = emit t Isa.Nop

let global t name = t.globals <- (name, t.count) :: t.globals

type program = {
  origin : int;
  code : bytes;
  symbols : (string * int) list;
}

let assemble t ~origin =
  let items = Array.of_list (List.rev t.items) in
  let resolve id =
    let _, name, bound = label_info t id in
    match bound with
    | Some idx -> idx
    | None -> failwith (Printf.sprintf "Asm: unbound label %s" name)
  in
  let code = Bytes.create (Array.length items * Isa.word_bytes) in
  Array.iteri
    (fun idx item ->
      let instr =
        match item with
        | Fixed i -> i
        | Branch_to (build, lbl) ->
          let target = resolve lbl in
          let off = target - idx in
          if off < -32768 || off > 32767 then failwith "Asm: branch offset overflow";
          build off
      in
      Bytes.set_int32_le code (idx * Isa.word_bytes) (Int32.of_int (Isa.encode instr)))
    items;
  let symbols =
    List.rev_map (fun (name, idx) -> (name, origin + (idx * Isa.word_bytes))) t.globals
  in
  { origin; code; symbols }

let load program mem = Rio_mem.Phys_mem.blit_in mem program.origin program.code

let symbol program name = List.assoc name program.symbols

let instruction_count program = Bytes.length program.code / Isa.word_bytes
