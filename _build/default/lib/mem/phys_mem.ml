type t = { data : bytes }

type paddr = int

let page_size = 8192

let create ~bytes_total =
  let pages = (bytes_total + page_size - 1) / page_size in
  { data = Bytes.make (max 1 pages * page_size) '\000' }

let size t = Bytes.length t.data

let page_count t = size t / page_size

let page_base pfn = pfn * page_size

let pfn_of_addr addr = addr / page_size

let in_range t addr ~len = addr >= 0 && len >= 0 && addr + len <= size t

let check t addr len =
  if not (in_range t addr ~len) then
    invalid_arg (Printf.sprintf "Phys_mem: access [%#x,+%d) outside %#x bytes" addr len (size t))

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let write_u8 t addr v =
  check t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let read_u32 t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFF_FFFF

let write_u32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int v)

let read_u64 t addr =
  check t addr 8;
  Int64.to_int (Bytes.get_int64_le t.data addr)

let write_u64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr (Int64.of_int v)

let blit_in t addr b =
  check t addr (Bytes.length b);
  Bytes.blit b 0 t.data addr (Bytes.length b)

let blit_out t addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let blit_within t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.data src t.data dst len

let fill t addr ~len c =
  check t addr len;
  Bytes.fill t.data addr len c

let checksum_range t addr ~len =
  check t addr len;
  Rio_util.Checksum.crc32 t.data ~pos:addr ~len

let flip_bit t addr ~bit =
  assert (bit >= 0 && bit < 8);
  write_u8 t addr (read_u8 t addr lxor (1 lsl bit))

let reset _t = ()

let power_cycle t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'

let dump t = Bytes.copy t.data

let restore_dump t d =
  if Bytes.length d <> Bytes.length t.data then
    invalid_arg "Phys_mem.restore_dump: size mismatch";
  Bytes.blit d 0 t.data 0 (Bytes.length d)

let unsafe_raw t = t.data
