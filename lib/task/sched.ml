module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types
module Prng = Rio_util.Prng

(* The deterministic task scheduler.

   Tasks run as effect fibers. The scheduler never preempts on its own
   clock: the only context switches happen at [preempt] (wired by the
   checker/fuzzer to every Rio_check.Boundary emission) and at the lock
   protocol's wait points. Between two boundaries a task therefore runs
   atomically — which is exactly the memory model the crash checker
   already assumes, since every boundary is a protocol-consistent point.
   Interleaving schedules are a pure function of the seed: at each
   preemption point exactly one PRNG draw picks uniformly among the
   runnable tasks. *)

type _ Effect.t += Yield : unit Effect.t
type _ Effect.t += Block : string -> unit Effect.t

type tstate =
  | Fresh of (Task.t -> unit)
  | Ready of (unit, unit) Effect.Deep.continuation
  | Blocked of string * (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type tcb = { task : Task.t; mutable state : tstate }

(* One ownership lock: conservative block-cache-granularity ownership,
   modelled as a single reentrant lock over the shared metadata paths
   (registry, bitmaps, inode sectors, the shadow page). *)
type lock = { mutable holder : int; mutable depth : int }

type t = {
  prng : Prng.t;
  mutable spawned : tcb list;  (* reverse spawn order, until [run] *)
  mutable tcbs : tcb array;
  mutable current : int;  (* running tcb index; -1 outside any fiber *)
  mutable active : bool;
  mutable on_point : string -> unit;
  locks : (string, lock) Hashtbl.t;
  mutable switches : int;
  mutable trace_rev : string list;
  mutable crashed : Task.t option;  (* the task whose fiber raised *)
}

let create ~seed =
  {
    prng = Prng.create ~seed;
    spawned = [];
    tcbs = [||];
    current = -1;
    active = false;
    on_point = ignore;
    locks = Hashtbl.create 4;
    switches = 0;
    trace_rev = [];
    crashed = None;
  }

let set_on_point t f = t.on_point <- f

let spawn t task body =
  if t.active then invalid_arg "Rio_task.Sched.spawn: scheduler is running";
  t.spawned <- { task; state = Fresh body } :: t.spawned

let current t =
  if t.active && t.current >= 0 then Some t.tcbs.(t.current).task else None

let switches t = t.switches
let trace t = List.rev t.trace_rev
let crashed t = t.crashed

(* Suspend the running fiber and let the scheduler pick again. A no-op
   outside a running fiber (setup, recovery, and the scheduler's own
   bookkeeping all run on the main stack). *)
let preempt t = if t.active && t.current >= 0 then Effect.perform Yield

(* ---------------- the run loop ----------------

   Handler shape: when a fiber suspends (Yield/Block) the handler body
   runs on the scheduler's stack and tail-calls into the next runnable
   fiber; each such entry stays on the native stack until everything
   scheduled after it completes, so depth is bounded by the number of
   context switches in one run — fine for boundary-driven schedules.
   A fiber exception (Crash_here, Fs_error) records the crashing task
   and propagates out of [run]; suspended sibling fibers are dropped,
   which is sound because the crash capture happened before unwind and
   recovery restores memory from the capture. *)

let run t =
  if t.active then invalid_arg "Rio_task.Sched.run: already running";
  let tcbs = Array.of_list (List.rev t.spawned) in
  t.spawned <- [];
  t.tcbs <- tcbs;
  let n = Array.length tcbs in
  let finished = ref 0 in
  t.active <- true;
  let cleanup () =
    t.active <- false;
    t.current <- -1
  in
  let rec enter i =
    let tcb = tcbs.(i) in
    t.switches <- t.switches + 1;
    t.trace_rev <- Task.name tcb.task :: t.trace_rev;
    t.current <- i;
    match tcb.state with
    | Fresh body ->
      tcb.state <- Running;
      Effect.Deep.match_with
        (fun () -> body tcb.task)
        ()
        {
          retc =
            (fun () ->
              tcb.state <- Finished;
              incr finished;
              t.current <- -1;
              schedule ());
          exnc =
            (fun e ->
              tcb.state <- Finished;
              if t.crashed = None then t.crashed <- Some tcb.task;
              raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    tcb.state <- Ready k;
                    t.current <- -1;
                    schedule ())
              | Block key ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    tcb.state <- Blocked (key, k);
                    t.current <- -1;
                    schedule ())
              | _ -> None);
        }
    | Ready k ->
      tcb.state <- Running;
      Effect.Deep.continue k ()
    | Running | Blocked _ | Finished -> assert false
  and schedule () =
    if !finished < n then begin
      let cands = ref [] in
      for i = n - 1 downto 0 do
        match tcbs.(i).state with
        | Fresh _ | Ready _ -> cands := i :: !cands
        | Running | Blocked _ | Finished -> ()
      done;
      match !cands with
      | [] ->
        cleanup ();
        Fs_types.err "Rio_task.Sched: deadlock (every live task is blocked)"
      | cands -> enter (List.nth cands (Prng.int t.prng (List.length cands)))
    end
  in
  (try if n > 0 then schedule () with e -> cleanup (); raise e);
  cleanup ()

(* ---------------- the ownership lock ---------------- *)

let lock_of t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
    let l = { holder = -1; depth = 0 } in
    Hashtbl.replace t.locks key l;
    l

let point t label =
  t.on_point label;
  preempt t

let task_label t verb key =
  let who = match current t with Some task -> Task.name task | None -> "?" in
  Printf.sprintf "%s %s %s" verb key who

(* Lock events are boundaries ([point]): acquisition and release are
   both crash points and preemption points, so the explored schedules
   cover "crash while holding" and "hand-off races" alike. Reentrant
   per task; waiters block on the scheduler and are woken in task order
   at release. Outside a scheduled run locking is moot (single caller)
   and these are no-ops. *)
let rec acquire t ~key =
  if t.active && t.current >= 0 then begin
    let l = lock_of t key in
    if l.holder = t.current then l.depth <- l.depth + 1
    else if l.holder < 0 then begin
      l.holder <- t.current;
      l.depth <- 1;
      point t (task_label t "task-acquire" key)
    end
    else begin
      point t (task_label t "task-wait" key);
      (* The wait boundary yielded: the holder may have released (and
         even finished) meanwhile, and release's wake-up scan only sees
         tasks already Blocked — blocking now would sleep forever. Only
         block if the lock is still held; either way re-contend. *)
      if l.holder >= 0 && l.holder <> t.current then Effect.perform (Block key);
      acquire t ~key
    end
  end

let release t ~key =
  if t.active && t.current >= 0 then begin
    let l = lock_of t key in
    if l.holder <> t.current then
      Fs_types.err "Rio_task.Sched: release of %s by a non-holder" key;
    l.depth <- l.depth - 1;
    if l.depth = 0 then begin
      l.holder <- -1;
      Array.iter
        (fun tcb ->
          match tcb.state with
          | Blocked (k, cont) when k = key -> tcb.state <- Ready cont
          | _ -> ())
        t.tcbs;
      point t (task_label t "task-release" key)
    end
  end

let holder t ~key =
  match Hashtbl.find_opt t.locks key with
  | Some l when l.holder >= 0 && t.active -> Some t.tcbs.(l.holder).task
  | _ -> None

(* No release-on-unwind: an exception inside the critical section is a
   modelled crash (or an interleaving bug under ablation) and the run is
   abandoned — releasing would emit boundaries during unwind and let
   bystander fibers run after the crash capture. *)
let with_lock t ~key f =
  acquire t ~key;
  let r = f () in
  release t ~key;
  r

(* ---------------- the task-scoped syscall entry ---------------- *)

let fs_lock = "fs"

let syscall t ~locking task fs call =
  let call = Task.resolve_call task call in
  point t (Printf.sprintf "task-call %s %s" (Fs.Syscall.name call) (Task.name task));
  if locking && Fs.Syscall.mutates call then
    with_lock t ~key:fs_lock (fun () -> Fs.Syscall.run fs call)
  else begin
    let r = Fs.Syscall.run fs call in
    preempt t;
    r
  end
