lib/sim/engine.mli: Event_queue Rio_util
