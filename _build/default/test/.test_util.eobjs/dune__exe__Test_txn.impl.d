test/test_txn.ml: Alcotest Bytes Int64 List Printf Rio_core Rio_disk Rio_fs Rio_kernel Rio_sim Rio_txn Rio_util
