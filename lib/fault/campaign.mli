(** One crash test, end to end (§3): boot, warm up the workload, inject 20
    faults, run until the system crashes (or discard), recover, and measure
    corruption.

    Three systems are compared, as in Table 1:

    - {b Disk_based}: default UFS with memTest calling fsync after every
      write — write-through reliability, no Rio.
    - {b Rio_without_protection}: reliability disk writes off, warm reboot
      only.
    - {b Rio_with_protection}: plus VM write-protection of the file cache
      and KSEG-through-TLB. *)

type system =
  | Disk_based
  | Rio_without_protection
  | Rio_with_protection

val all_systems : system list

val system_name : system -> string

val system_slug : system -> string
(** Filename-friendly identifier ("rio-prot"), used for trace files. *)

type config = {
  warmup_steps : int;  (** memTest steps before injection. *)
  max_steps : int;  (** memTest steps after injection before discarding. *)
  faults_per_run : int;  (** 20, as in the paper. *)
  activity_per_step : int;  (** Kernel activity bursts interleaved per step. *)
  memtest_files : int;
  memtest_file_bytes : int;
  background_andrew : int;  (** Concurrent Andrew instances (paper: 4). *)
  andrew_scale : float;
  kernel_config : Rio_kernel.Kernel.config;
}

val default_config : config
(** Scaled for thousands of runs: 40 warmup steps, 260-step watchdog
    window, 2 activity bursts per step, 2 background Andrews at 3% scale. *)

type outcome = {
  discarded : bool;  (** Never crashed inside the watchdog window. *)
  crash : Rio_kernel.Kcrash.info option;
  crash_message : string option;  (** Console-message string (diversity counting). *)
  protection_trap : bool;
      (** The crash {e was} Rio's protection stopping an illegal store. *)
  corrupted : bool;  (** Any post-recovery discrepancy — Table 1's cell. *)
  corrupt_paths : int;  (** Distinct files/directories affected. *)
  discrepancies : string list;
  checksum_detected : bool;  (** Rio's checksums flagged direct corruption. *)
  changing_buffers : int;  (** Buffers unverifiable because mid-write. *)
  static_files_ok : bool;  (** The untouched twin files still match. *)
  memtest_steps : int;
  sim_time_us : int;
  registry_corrupt_slots : int;
  wild_filecache_stores : int;
      (** Post-injection stores by interpreted kernel code into file-cache
          pages the kernel does not own — direct corruption observed in the
          act. The paper treated the system as a black box (footnote 2);
          the simulator can watch the propagation directly. *)
  injected_at_us : int;  (** Simulated time of fault injection. *)
  forensics : Rio_obs.Forensics.t option;
      (** Present when the trial ran with a live recorder ([?obs]): the
          distilled injection → wild store → crash → recovery chain. *)
}

val run_one : ?obs:Rio_obs.Trace.t -> config -> system -> Fault_type.t -> seed:int -> outcome
(** Fully deterministic in [seed]. When [obs] is a live recorder (one per
    trial — recorders are single-trial, not thread-safe), every subsystem
    traces into it and the outcome carries a forensic summary. *)

val pp_outcome : Format.formatter -> outcome -> unit
