(** World templates: snapshot/restore trial setup.

    Every crash trial needs the same pristine post-mount world — engine,
    booted kernel, formatted disk, Rio cache, mounted file system. The
    campaign used to rebuild it from scratch for every attempt (~ms of
    mkfs + mount each time). A {e template} builds it once per
    [(spec, seed)] per domain, freezes it with the O(1) copy-on-write
    {!Rio_mem.Phys_mem.snapshot}, and between attempts rewinds in
    O(dirty pages): the memory snapshot covers every byte of simulated
    RAM, and per-module checkpoints cover the host-side mutable state
    (PRNG cursors, event queue, caches, fd tables, fault bookkeeping).

    Restores happen at attempt {e start}, not end — an exception escaping
    one attempt can never poison the next. Nothing leaks across attempts:
    not PRNG state, not trace rings, not probe captures (clients register
    {!on_restore} hooks for host state the world cannot see, e.g. Vista
    log cursors).

    A restored world is byte-for-byte the world a fresh build produces —
    the [--reference] mode ({!set_use_templates}[ false]) exists to prove
    it on demand. *)

type t

val create :
  ?obs:Rio_obs.Trace.t ->
  ?config:Rio_kernel.Kernel.config ->
  ?rio:bool ->
  ?protection:bool ->
  ?shadow:bool ->
  ?registry:bool ->
  ?policy:Rio_fs.Fs.policy ->
  ?backend:Rio_disk.Backend.kind ->
  ?wb_unordered:bool ->
  seed:int ->
  unit ->
  t
(** Build the pristine world: engine, [Kernel.boot] with
    [config_with_seed seed] (or [config] with [seed] spliced in — the
    harness's paper-scale machines), format, [Rio_cache.create] (with the
    given protection/shadow/registry toggles), mount. [~rio:false] skips
    the Rio cache entirely — a disk-based world ({!rio} then raises).
    [backend] selects the persistence backend (spliced into the kernel
    config over whatever [config] says); [wb_unordered] plants the
    write-behind ordering bug (see {!Rio_fs.Fs.mount}). Defaults: null
    trace, everything on, [Rio_policy], SCSI backend, ordered. *)

(** {1 Accessors} *)

val seed : t -> int
val config : t -> Rio_kernel.Kernel.config
val costs : t -> Rio_sim.Costs.t
val engine : t -> Rio_sim.Engine.t
val kernel : t -> Rio_kernel.Kernel.t

val rio : t -> Rio_core.Rio_cache.t
(** Raises [Invalid_argument] on a [~rio:false] world. *)

val fs : t -> Rio_fs.Fs.t
val mem : t -> Rio_mem.Phys_mem.t
val disk : t -> Rio_disk.Disk.t
val hooks : t -> Rio_fs.Hooks.t
val layout : t -> Rio_mem.Layout.t

(** {1 Template lifecycle} *)

val freeze : t -> unit
(** Take the memory snapshot and all host-side checkpoints. Call once,
    after any client setup that should be part of the template (probe
    installation, payload files). Raises [Invalid_argument] if already
    frozen. *)

val frozen : t -> bool

val on_restore : t -> (unit -> unit) -> unit
(** Register a host-side reset hook, run (in registration order) at the
    {e start} of every {!restore}, before any state rewinds. For client
    state the world cannot see: probe captures, Vista cursors. *)

val restore : t -> int
(** Rewind everything to the frozen template; returns the number of
    dirty pages blitted back. The snapshot is kept — restore again as
    many times as needed. Raises [Invalid_argument] if not frozen. *)

val restores : t -> int
(** Total {!restore} calls on this world (microbench bookkeeping). *)

val pages_restored : t -> int
(** Total dirty pages blitted back across all restores. *)

val dispose : t -> unit
(** Release the template snapshot (if any) and retire the world's
    physical memory (asserts no leaked snapshots — a leak here means a
    probe capture was never dropped). *)

(** {1 Global template toggle} *)

val set_use_templates : bool -> unit
(** [false] = reference mode: clients build every trial world from
    scratch. Set once, before any worker domain spawns. *)

val templates_on : unit -> bool
