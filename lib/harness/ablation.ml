module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Layout = Rio_mem.Layout
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Fsck = Rio_fs.Fsck
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Cp_rm = Rio_workload.Cp_rm
module Memtest = Rio_workload.Memtest
module Machine = Rio_cpu.Machine
module Table = Rio_util.Table
module Units = Rio_util.Units
module Pool = Rio_parallel.Pool

(* Each ablation point boots its own engine and kernel from its seed, so
   a sweep's points are independent tasks for the domain pool; [domains]
   defaults to 1 (today's serial path) and merged results keep the sweep's
   presentation order, making parallel output byte-identical. *)

(* ---------------- protection overhead ---------------- *)

type protection_result = {
  noprot_s : float;
  prot_s : float;
  overhead_pct : float;
  toggles : int;
  checksum_updates : int;
  shadow_updates : int;
}

let rio_system ~costs ~protection ~seed =
  let engine = Engine.create () in
  let kcfg =
    {
      Kernel.default_config with
      Kernel.layout_config = Layout.paper_config;
      disk_sectors = 640 * 1024;
      seed;
    }
  in
  let kernel = Kernel.boot ~engine ~costs kcfg in
  Kernel.format kernel;
  let rio =
    Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
      ~mmu:(Kernel.mmu kernel) ~engine ~costs ~hooks:(Kernel.hooks kernel)
      ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ()
  in
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  (engine, fs, rio)

let cp_rm_time ~protection ~scale ~seed =
  let engine, fs, rio = rio_system ~costs:Costs.default ~protection ~seed in
  let w = Cp_rm.create ~total_bytes:(int_of_float (scale *. 40e6)) () in
  Cp_rm.setup w fs;
  let t0 = Engine.now engine in
  Cp_rm.run_cp w fs;
  Cp_rm.run_rm w fs;
  (Units.sec_of_usec (Engine.now engine - t0), Rio_cache.stats rio)

let protection_overhead ?(scale = 0.5) ?(domains = 1) ~seed () =
  match Pool.map_list ~domains (fun protection -> cp_rm_time ~protection ~scale ~seed) [ false; true ] with
  | [ (noprot_s, _); (prot_s, stats) ] ->
  {
    noprot_s;
    prot_s;
    overhead_pct = 100. *. ((prot_s /. noprot_s) -. 1.);
    toggles = stats.Rio_cache.protection_toggles;
    checksum_updates = stats.Rio_cache.checksum_updates;
    shadow_updates = stats.Rio_cache.shadow_updates;
  }
  | _ -> assert false

let protection_table r =
  let t = Table.create ~columns:[ ("Quantity", Table.Left); ("Value", Table.Right) ] in
  Table.add_row t [ "cp+rm without protection (s)"; Printf.sprintf "%.2f" r.noprot_s ];
  Table.add_row t [ "cp+rm with protection (s)"; Printf.sprintf "%.2f" r.prot_s ];
  Table.add_row t [ "overhead (paper: ~0-4%)"; Printf.sprintf "%.2f%%" r.overhead_pct ];
  Table.add_row t [ "protect/unprotect operations"; string_of_int r.toggles ];
  Table.add_row t [ "checksum updates"; string_of_int r.checksum_updates ];
  Table.add_row t [ "shadow-page metadata updates"; string_of_int r.shadow_updates ];
  t

(* ---------------- code patching ---------------- *)

type code_patching_result = {
  store_density : float;
  checked_fraction : float;
  check_instructions : int;
  slowdown_pct : float;
}

let code_patching ~seed () =
  (* Measure the dynamic store density of the kernel corpus by running
     activity bursts on a healthy kernel. *)
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  ignore fs;
  for _ = 1 to 400 do
    Kernel.run_activity kernel
  done;
  let m = Kernel.machine kernel in
  let density =
    float_of_int (Machine.stores_retired m) /. float_of_int (Machine.instructions_retired m)
  in
  (* Wahbe-style sandboxing after optimization: roughly half the stores
     still need the inserted check, each a ~5-instruction sequence
     (materialize the segment bounds, two compares, two branches, and the
     register spill/reload around them). *)
  let checked_fraction = 0.5 in
  let check_instructions = 8 in
  {
    store_density = density;
    checked_fraction;
    check_instructions;
    slowdown_pct =
      100. *. density *. checked_fraction *. float_of_int check_instructions;
  }

let code_patching_table r =
  let t = Table.create ~columns:[ ("Quantity", Table.Left); ("Value", Table.Right) ] in
  Table.add_row t [ "dynamic store density"; Printf.sprintf "%.3f stores/instr" r.store_density ];
  Table.add_row t [ "stores still checked"; Printf.sprintf "%.0f%%" (100. *. r.checked_fraction) ];
  Table.add_row t [ "instructions per check"; string_of_int r.check_instructions ];
  Table.add_row t
    [ "modeled slowdown (paper: 20-50%)"; Printf.sprintf "%.0f%%" r.slowdown_pct ];
  t

(* ---------------- registry cost ---------------- *)

type registry_result = {
  registry_updates : int;
  bytes_per_page : int;
  space_overhead_pct : float;
  time_overhead_pct : float;
}

let registry_cost ?(steps = 400) ~seed () =
  let costs = Costs.default in
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  let rio =
    Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
      ~mmu:(Kernel.mmu kernel) ~engine ~costs ~hooks:(Kernel.hooks kernel)
      ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ()
  in
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  let mt = Memtest.create { Memtest.default_config with Memtest.seed } in
  let t0 = Engine.now engine in
  for _ = 1 to steps do
    Memtest.step mt ~fs ()
  done;
  let run_us = Engine.now engine - t0 in
  let stats = Rio_cache.stats rio in
  let registry_us =
    float_of_int stats.Rio_cache.registry_updates *. costs.Costs.registry_update_us
  in
  {
    registry_updates = stats.Rio_cache.registry_updates;
    bytes_per_page = Rio_core.Registry.entry_bytes;
    space_overhead_pct =
      100. *. float_of_int Rio_core.Registry.entry_bytes
      /. float_of_int Rio_mem.Phys_mem.page_size;
    time_overhead_pct = 100. *. registry_us /. float_of_int (max 1 run_us);
  }

let registry_table r =
  let t = Table.create ~columns:[ ("Quantity", Table.Left); ("Value", Table.Right) ] in
  Table.add_row t [ "registry updates under memTest"; string_of_int r.registry_updates ];
  Table.add_row t [ "bytes per 8 KB page (paper: 40)"; string_of_int r.bytes_per_page ];
  Table.add_row t [ "space overhead"; Printf.sprintf "%.2f%%" r.space_overhead_pct ];
  Table.add_row t [ "time overhead"; Printf.sprintf "%.3f%%" r.time_overhead_pct ];
  t

(* ---------------- idle write-back (Rio_idle, §2.3 future work) ------- *)

type idle_writeback_result = {
  rio_s : float;
  rio_idle_s : float;
  rio_evictions : int;
  rio_idle_evictions : int;
  rio_idle_daemon_writes : int;
}

(* Churn far more data than the page pool holds: plain Rio must write dirty
   victims synchronously at eviction time; Rio_idle trickled them out
   already and evicts clean pages. *)
let idle_writeback ?(domains = 1) ~seed () =
  let run policy =
    let costs = { Costs.default with Costs.update_interval = Units.sec 1 } in
    let engine = Engine.create () in
    let kcfg = { (Kernel.config_with_seed seed) with Kernel.disk_sectors = 160 * 1024 } in
    let kernel = Kernel.boot ~engine ~costs kcfg in
    Kernel.format kernel;
    ignore
      (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
         ~mmu:(Kernel.mmu kernel) ~engine ~costs ~hooks:(Kernel.hooks kernel)
         ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
    let fs = Kernel.mount kernel ~policy in
    let t0 = Engine.now engine in
    let chunk = Rio_util.Pattern.fill ~seed ~len:(256 * 1024) in
    for i = 0 to 89 do
      (* Accumulate ~22 MB of live files through an ~11 MB pool: once the
         pool fills, every new write must evict. Think time between bursts
         is the daemon's idle room. *)
      Fs.write_file fs (Printf.sprintf "/churn%d" i) chunk;
      Engine.advance_by engine (Units.msec 300)
    done;
    let stats = Rio_fs.Block_cache.stats (Fs.data_cache fs) in
    (Units.sec_of_usec (Engine.now engine - t0), stats)
  in
  match Pool.map_list ~domains run [ Fs.Rio_policy; Fs.Rio_idle ] with
  | [ (rio_s, rio_stats); (rio_idle_s, idle_stats) ] ->
    {
      rio_s;
      rio_idle_s;
      rio_evictions = rio_stats.Rio_fs.Block_cache.evictions;
      rio_idle_evictions = idle_stats.Rio_fs.Block_cache.evictions;
      rio_idle_daemon_writes = idle_stats.Rio_fs.Block_cache.writebacks;
    }
  | _ -> assert false

let idle_writeback_table r =
  let t = Table.create ~columns:[ ("Quantity", Table.Left); ("Value", Table.Right) ] in
  Table.add_row t [ "rio (no idle write-back), churn run (s)"; Printf.sprintf "%.2f" r.rio_s ];
  Table.add_row t [ "rio-idle, same run (s)"; Printf.sprintf "%.2f" r.rio_idle_s ];
  Table.add_row t [ "evictions (rio)"; string_of_int r.rio_evictions ];
  Table.add_row t [ "evictions (rio-idle)"; string_of_int r.rio_idle_evictions ];
  Table.add_row t [ "daemon write-backs (rio-idle)"; string_of_int r.rio_idle_daemon_writes ];
  t

(* ---------------- debit/credit protection overhead (§6) ---------------- *)

type debit_credit_result = {
  noprot_txn_us : float;
  prot_txn_us : float;
  overhead_pct : float;
}

(* Sullivan & Stonebraker measured their "expose page" protection at 7%
   overhead on a debit/credit benchmark; the paper argues Rio's is lower
   because protection toggles happen in-kernel and are amortized over
   8 KB writes. Reproduce the comparison on Vista transactions. *)
let debit_credit ?(transactions = 600) ?(domains = 1) ~seed () =
  let run protection =
    let engine = Engine.create () in
    let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
    Kernel.format kernel;
    ignore
      (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
         ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
         ~pool_alloc:(Kernel.pool_alloc kernel) ~protection ~dev:1 ());
    let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
    let store = Rio_txn.Vista.create fs ~path:"/tpc" ~size:(64 * 1024) in
    let prng = Rio_util.Prng.create ~seed in
    let t0 = Engine.now engine in
    for _ = 1 to transactions do
      let txn = Rio_txn.Vista.begin_txn store in
      let a = Rio_util.Prng.int prng 512 and b = Rio_util.Prng.int prng 512 in
      let record = Rio_util.Prng.bytes prng 100 in
      Rio_txn.Vista.write txn ~offset:(a * 100) record;
      Rio_txn.Vista.write txn ~offset:(b * 100) record;
      Rio_txn.Vista.commit txn
    done;
    float_of_int (Engine.now engine - t0) /. float_of_int transactions
  in
  match Pool.map_list ~domains run [ false; true ] with
  | [ noprot_txn_us; prot_txn_us ] ->
    { noprot_txn_us; prot_txn_us; overhead_pct = 100. *. ((prot_txn_us /. noprot_txn_us) -. 1.) }
  | _ -> assert false

let debit_credit_table r =
  let t = Table.create ~columns:[ ("Quantity", Table.Left); ("Value", Table.Right) ] in
  Table.add_row t [ "txn latency w/o protection"; Printf.sprintf "%.1f us" r.noprot_txn_us ];
  Table.add_row t [ "txn latency w/ protection"; Printf.sprintf "%.1f us" r.prot_txn_us ];
  Table.add_row t
    [ "overhead (Sullivan-Stonebraker: 7%)"; Printf.sprintf "%.1f%%" r.overhead_pct ];
  t

(* ---------------- Phoenix-style checkpointing (related work, §6) ------ *)

type phoenix_point = {
  scheme : string;
  run_s : float;
  lost_bytes : int;
  lost_files : int;
  checkpoints : int;
}

(* Phoenix (Gait 1990) keeps a write-protected checkpoint of the in-memory
   file system and recovers to it: writes since the last checkpoint are
   lost, and each checkpoint pays a copy-on-write pass over the pages
   dirtied in the interval. Rio makes every write permanent. Same
   editing-session workload for both. *)
let phoenix_comparison ?(steps = 283) ?(domains = 1) ~seed () =
  let session interval_opt =
    let costs = Costs.default in
    let engine = Engine.create () in
    let kernel = Kernel.boot ~engine ~costs (Kernel.config_with_seed seed) in
    Kernel.format kernel;
    ignore
      (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
         ~mmu:(Kernel.mmu kernel) ~engine ~costs ~hooks:(Kernel.hooks kernel)
         ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
    let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
    let config = { Memtest.default_config with Memtest.seed } in
    let mt = Memtest.create config in
    let checkpoints = ref 0 in
    let checkpoint_steps = ref 0 in
    let dirty_bytes_since = ref 0 in
    let t0 = Engine.now engine in
    let next_checkpoint = ref (Engine.now engine) in
    (match interval_opt with Some i -> next_checkpoint := Engine.now engine + i | None -> ());
    for step = 1 to steps do
      let before = Memtest.total_model_bytes mt in
      Memtest.step mt ~fs ();
      dirty_bytes_since := !dirty_bytes_since + abs (Memtest.total_model_bytes mt - before);
      Engine.advance_by engine (Units.msec 200);
      match interval_opt with
      | Some interval when Engine.now engine >= !next_checkpoint ->
        (* Checkpoint: copy-on-write pass over everything dirtied since the
           last one (approximated by the byte churn). *)
        incr checkpoints;
        checkpoint_steps := step;
        Engine.advance_by engine (Costs.page_copy_time costs (max 8192 !dirty_bytes_since));
        dirty_bytes_since := 0;
        next_checkpoint := Engine.now engine + interval
      | Some _ | None -> ()
    done;
    let run_s = Units.sec_of_usec (Engine.now engine - t0) in
    (* Crash. Phoenix recovers to the checkpoint; Rio warm-reboots to the
       instant of the crash. *)
    match interval_opt with
    | None -> (run_s, 0, 0, 0)
    | Some _ ->
      let at_checkpoint = Memtest.replay config ~steps:!checkpoint_steps in
      let files, bytes = Memtest.loss_between ~earlier:at_checkpoint ~later:mt in
      (run_s, files, bytes, !checkpoints)
  in
  let mk (scheme, interval) =
    let run_s, lost_files, lost_bytes, checkpoints = session interval in
    { scheme; run_s; lost_bytes; lost_files; checkpoints }
  in
  Pool.map_list ~domains mk
    [
      ("phoenix, 5s checkpoints", Some (Units.sec 5));
      ("phoenix, 30s checkpoints", Some (Units.sec 30));
      ("rio (every write permanent)", None);
    ]

let phoenix_table points =
  let t =
    Table.create
      ~columns:
        [
          ("Recovery scheme", Table.Left);
          ("Runtime (s)", Table.Right);
          ("Checkpoints", Table.Right);
          ("Lost files", Table.Right);
          ("Lost bytes", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.scheme;
          Printf.sprintf "%.2f" p.run_s;
          string_of_int p.checkpoints;
          string_of_int p.lost_files;
          string_of_int p.lost_bytes;
        ])
    points;
  t

(* ---------------- modern-disk sensitivity ---------------- *)

type disk_sensitivity = {
  era : string;
  wt_write_s : float;
  rio_s : float;
  ratio : float;
}

(* How much of Rio's performance win is the 1990s disk? Rerun the
   write-through comparison with a modern drive's parameters. *)
let modern_disk_sensitivity ?(domains = 1) ~seed () =
  let cell (costs, label) =
    let run policy rio =
      let engine = Engine.create () in
      let kcfg =
        {
          Kernel.default_config with
          Kernel.layout_config = Layout.paper_config;
          disk_sectors = 640 * 1024;
          seed;
        }
      in
      let kernel = Kernel.boot ~engine ~costs kcfg in
      Kernel.format kernel;
      if rio then
        ignore
          (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
             ~mmu:(Kernel.mmu kernel) ~engine ~costs ~hooks:(Kernel.hooks kernel)
             ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
      let fs = Kernel.mount kernel ~policy in
      let w = Cp_rm.create ~total_bytes:(int_of_float (0.15 *. 40e6)) () in
      Cp_rm.setup w fs;
      Fs.sync fs;
      let t0 = Engine.now engine in
      Cp_rm.run_cp w fs;
      Cp_rm.run_rm w fs;
      Units.sec_of_usec (Engine.now engine - t0)
    in
    let wt = run Fs.Wt_write false in
    let rio = run Fs.Rio_policy true in
    { era = label; wt_write_s = wt; rio_s = rio; ratio = wt /. rio }
  in
  Pool.map_list ~domains cell
    [ (Costs.default, "1996 SCSI disk"); (Costs.fast_disk, "modern disk") ]

let disk_sensitivity_table points =
  let t =
    Table.create
      ~columns:
        [
          ("Disk era", Table.Left);
          ("wt-write cp+rm (s)", Table.Right);
          ("rio cp+rm (s)", Table.Right);
          ("rio speedup", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.era;
          Printf.sprintf "%.1f" p.wt_write_s;
          Printf.sprintf "%.1f" p.rio_s;
          Printf.sprintf "%.1fx" p.ratio;
        ])
    points;
  t

(* ---------------- delay sweep ---------------- *)

type delay_point = {
  delay : Units.usec option;
  label : string;
  run_s : float;
  lost_bytes : int;
  lost_files : int;
}

let delayed_point ~interval ~steps ~seed =
  let costs = { Costs.default with Costs.update_interval = interval } in
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  let fs = Kernel.mount kernel ~policy:Fs.Ufs_delayed in
  let mt = Memtest.create { Memtest.default_config with Memtest.seed } in
  let t0 = Engine.now engine in
  for _ = 1 to steps do
    Memtest.step mt ~fs ();
    (* Think time between operations: the session spans minutes of
       simulated time, so the update interval actually matters. *)
    Engine.advance_by engine (Units.msec 500)
  done;
  let run_s = Units.sec_of_usec (Engine.now engine - t0) in
  (* Crash, recover from disk alone, and count the damage. *)
  Fs.crash fs;
  ignore (Fsck.run ~disk:(Kernel.disk kernel));
  let kernel2 =
    Kernel.boot_on_disk ~engine ~costs (Kernel.config_with_seed seed)
      ~disk:(Kernel.disk kernel)
  in
  let fs2 = Kernel.mount kernel2 ~policy:Fs.Ufs_delayed in
  let lost_files, lost_bytes = Memtest.loss_against_fs mt fs2 in
  { delay = Some interval; label = ""; run_s; lost_bytes; lost_files }

let rio_point ~steps ~seed =
  let costs = Costs.default in
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  ignore
    (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine ~costs ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  let mt = Memtest.create { Memtest.default_config with Memtest.seed } in
  let t0 = Engine.now engine in
  for _ = 1 to steps do
    Memtest.step mt ~fs ();
    Engine.advance_by engine (Units.msec 500)
  done;
  let run_s = Units.sec_of_usec (Engine.now engine - t0) in
  (* Crash and warm-reboot: memory carries everything over. *)
  (match Kernel.fs kernel with Some f -> Fs.crash f | None -> ());
  let fs_ref = ref None in
  let _report =
    Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
      ~layout:(Kernel.layout kernel) ~engine
      ~reboot:(fun () ->
        let kernel2 =
          Kernel.boot_warm ~engine ~costs (Kernel.config_with_seed seed)
            ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
        in
        ignore
          (Rio_cache.create ~mem:(Kernel.mem kernel2) ~layout:(Kernel.layout kernel2)
             ~mmu:(Kernel.mmu kernel2) ~engine ~costs ~hooks:(Kernel.hooks kernel2)
             ~pool_alloc:(Kernel.pool_alloc kernel2) ~protection:true ~dev:1 ());
        let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
        fs_ref := Some fs2;
        fs2)
  in
  let fs2 = match !fs_ref with Some f -> f | None -> assert false in
  let lost_files, lost_bytes = Memtest.loss_against_fs mt fs2 in
  { delay = None; label = "rio (warm reboot)"; run_s; lost_bytes; lost_files }

let delay_sweep ?(steps = 400) ?(domains = 1) ~seed () =
  let intervals = [ Units.sec 1; Units.sec 5; Units.sec 15; Units.sec 30; Units.sec 120 ] in
  Pool.map_list ~domains
    (function
      | Some interval ->
        let p = delayed_point ~interval ~steps ~seed in
        { p with label = Format.asprintf "delay %a" Units.pp_usec interval }
      | None -> rio_point ~steps ~seed)
    (List.map (fun i -> Some i) intervals @ [ None ])

let delay_table points =
  let t =
    Table.create
      ~columns:
        [
          ("Write policy", Table.Left);
          ("Runtime (s)", Table.Right);
          ("Lost files", Table.Right);
          ("Lost bytes", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.label;
          Printf.sprintf "%.2f" p.run_s;
          string_of_int p.lost_files;
          string_of_int p.lost_bytes;
        ])
    points;
  t

(* ---------------- the bundled entry point ---------------- *)

type results = {
  protection : protection_result;
  patching : code_patching_result;
  registry : registry_result;
  delay : delay_point list;
  idle : idle_writeback_result;
  disk : disk_sensitivity list;
  phoenix : phoenix_point list;
  debit : debit_credit_result;
}

let run (cfg : Run.config) =
  let seed = cfg.Run.seed in
  let domains = cfg.Run.domains in
  let report = Run.reporter cfg ~total:8 in
  let step label detail v =
    report ~label ~detail;
    v
  in
  (* The write-heavy protection ablation keeps its historical half-size
     workload; config.scale multiplies it. *)
  let protection =
    step "protection" "cp+rm under both Rio modes"
      (protection_overhead ~scale:(0.5 *. cfg.Run.scale) ~domains ~seed ())
  in
  let patching = step "code-patching" "store density model" (code_patching ~seed ()) in
  let registry = step "registry" "memTest bookkeeping" (registry_cost ~seed ()) in
  let delay = step "delay-sweep" "delayed-write spectrum" (delay_sweep ~domains ~seed ()) in
  let idle = step "idle-writeback" "§2.3 future work" (idle_writeback ~domains ~seed ()) in
  let disk =
    step "disk-speed" "1996 vs modern" (modern_disk_sensitivity ~domains ~seed ())
  in
  let phoenix =
    step "phoenix" "checkpointing comparison" (phoenix_comparison ~domains ~seed ())
  in
  let debit = step "debit-credit" "§6 comparison" (debit_credit ~domains ~seed ()) in
  { protection; patching; registry; delay; idle; disk; phoenix; debit }
