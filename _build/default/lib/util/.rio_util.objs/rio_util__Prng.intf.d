lib/util/prng.mli:
