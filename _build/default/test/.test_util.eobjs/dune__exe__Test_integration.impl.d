test/test_integration.ml: Alcotest Bytes Hashtbl List Printf Rio_core Rio_fault Rio_fs Rio_kernel Rio_sim Rio_util Rio_workload
