(** The paper's published numbers, for paper-vs-measured reports. *)

(** {1 Table 1 (reliability)} *)

val table1_total_crashes_per_system : int
(** 650. *)

val table1_corruptions : (string * (int * int * int)) list
(** Fault-type row label -> (disk-based, rio w/o protection, rio w/
    protection) corruption counts out of 50 runs each. Reconstructed from
    Table 1; rows the paper leaves blank are 0. *)

val table1_totals : int * int * int
(** (7, 10, 4) of 650 each. *)

val protection_trap_invocations : int * int
(** 8 total: (6 copy overrun, 2 initialization) — §3.3. *)

(** {1 Table 2 (performance, seconds)} *)

type perf_row = {
  label : string;
  cp_rm : float;  (** total seconds *)
  cp : float;
  rm : float;
  sdet : float;
  andrew : float;
}

val table2 : perf_row list
(** All eight systems, in the paper's order. *)

val table2_row : string -> perf_row option

(** {1 §3.3 MTTF projection} *)

val mttf_disk_years : float
(** 15. *)

val mttf_rio_noprot_years : float
(** 11. *)

val crash_interval_months : float
(** 2 — "a system that crashes once every two months". *)
