lib/fs/fs_types.mli:
