module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Trace = Rio_obs.Trace

let sector_bytes = Store.sector_bytes

type stats = {
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  seeks : int;
  busy_us : int;
}

type request = {
  req_sector : int;
  data : bytes; (* whole sectors *)
  start_time : int;
  completion_time : int;
  handle : Engine.handle;
}

(* The backend mechanism: timing + tear semantics. Everything else — the
   sector store, the FIFO queue, statistics, trace events, completion
   callbacks, checkpoint/restore — is shared by this front-end, so the two
   models stay comparable request-for-request. *)
type mech =
  | Scsi_m of Scsi.t
  | Nvmm_m of Nvmm.t

type t = {
  engine : Engine.t;
  obs : Trace.t;
  c_requests : Trace.counter;
  h_latency : Trace.histogram;
  costs : Costs.t;
  store : Store.t;
  mech : mech;
  mutable busy_until : int;
  mutable pending : request list; (* FIFO order: oldest first *)
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable seeks : int;
  mutable busy_us : int;
  mutable on_complete : sector:int -> count:int -> write:bool -> unit;
}

let no_complete ~sector:(_ : int) ~count:(_ : int) ~write:(_ : bool) = ()

let create ?(backend = Backend.Scsi) ~engine ~costs ~sectors ~seed () =
  let obs = Engine.obs engine in
  {
    engine;
    obs;
    c_requests = Trace.counter obs "disk.requests";
    h_latency = Trace.histogram obs "disk.request_latency_us";
    costs;
    store = Store.create ~sectors;
    mech =
      (match backend with
      | Backend.Scsi -> Scsi_m (Scsi.create ~seed)
      | Backend.Nvmm -> Nvmm_m (Nvmm.create ()));
    busy_until = 0;
    pending = [];
    reads = 0;
    writes = 0;
    sectors_read = 0;
    sectors_written = 0;
    seeks = 0;
    busy_us = 0;
    on_complete = no_complete;
  }

let backend t =
  match t.mech with
  | Scsi_m _ -> Backend.Scsi
  | Nvmm_m _ -> Backend.Nvmm

let set_on_complete t f = t.on_complete <- f

let capacity_sectors t = Store.capacity t.store

let engine t = t.engine

let check_range t sector count =
  if sector < 0 || count < 0 || sector + count > Store.capacity t.store then
    invalid_arg
      (Printf.sprintf "Disk: sectors [%d,+%d) outside capacity %d" sector count
         (Store.capacity t.store))

let peek t ~sector =
  check_range t sector 1;
  Store.peek t.store ~sector

let check_invariant t = Store.check_invariant t.store

let commit_sector t sector (b : bytes) =
  assert (Bytes.length b = sector_bytes);
  Store.commit_from t.store ~sector b ~pos:0

let poke t ~sector b =
  check_range t sector 1;
  if Bytes.length b > sector_bytes then invalid_arg "Disk.poke: more than one sector";
  let padded = Bytes.make sector_bytes '\000' in
  Bytes.blit b 0 padded 0 (Bytes.length b);
  commit_sector t sector padded

let pad_to_sectors data =
  let n = (Bytes.length data + sector_bytes - 1) / sector_bytes in
  if Bytes.length data = n * sector_bytes then (data, n)
  else begin
    let padded = Bytes.make (n * sector_bytes) '\000' in
    Bytes.blit data 0 padded 0 (Bytes.length data);
    (padded, n)
  end

let service_time t sector count =
  match t.mech with
  | Scsi_m m ->
    let service, seeked = Scsi.service m ~costs:t.costs ~sector ~count in
    if seeked then t.seeks <- t.seeks + 1;
    service
  | Nvmm_m m -> Nvmm.service m ~sector ~count

(* The torn sector's contents when a crash catches a request mid-write:
   each backend documents its own model. *)
let torn_sector t ~sector ~data ~pos =
  let old_sector = Store.peek t.store ~sector in
  match t.mech with
  | Scsi_m m -> Scsi.tear m ~old_sector ~data ~pos
  | Nvmm_m m -> Nvmm.tear m ~old_sector ~data ~pos

let commit_request t r =
  let count = Bytes.length r.data / sector_bytes in
  for i = 0 to count - 1 do
    Store.commit_from t.store ~sector:(r.req_sector + i) r.data ~pos:(i * sector_bytes)
  done;
  t.pending <- List.filter (fun p -> p != r) t.pending;
  t.on_complete ~sector:r.req_sector ~count ~write:true

(* Begin a request: compute its service window and move the busy marker.
   Returns (start, completion). *)
let schedule_request t sector count =
  let start = max (Engine.now t.engine) t.busy_until in
  let service = service_time t sector count in
  let completion = start + service in
  t.busy_until <- completion;
  t.busy_us <- t.busy_us + service;
  (start, completion)

(* Latency as seen by the issuer: queueing delay plus service time. *)
let note_request t ~sector ~count ~write ~sync ~issued ~completion =
  if Trace.enabled t.obs then begin
    Trace.incr t.c_requests;
    Trace.observe t.h_latency (completion - issued);
    Trace.emit t.obs Trace.Disk
      (Trace.Disk_request
         { sector; sectors = count; write; sync; issued_us = issued; done_us = completion })
  end

let read_sync t ~sector ~count =
  check_range t sector count;
  let issued = Engine.now t.engine in
  let _, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:false ~sync:true ~issued ~completion;
  Engine.advance_to t.engine completion;
  t.reads <- t.reads + 1;
  t.sectors_read <- t.sectors_read + count;
  t.on_complete ~sector ~count ~write:false;
  let out = Bytes.create (count * sector_bytes) in
  for i = 0 to count - 1 do
    Store.blit_to t.store ~sector:(sector + i) out ~pos:(i * sector_bytes)
  done;
  out

let write_sync t ~sector data =
  let data, count = pad_to_sectors data in
  check_range t sector count;
  let issued = Engine.now t.engine in
  let _, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:true ~sync:true ~issued ~completion;
  Engine.advance_to t.engine completion;
  t.writes <- t.writes + 1;
  t.sectors_written <- t.sectors_written + count;
  for i = 0 to count - 1 do
    Store.commit_from t.store ~sector:(sector + i) data ~pos:(i * sector_bytes)
  done;
  t.on_complete ~sector ~count ~write:true

(* Write [count] sectors of zeros without materializing a payload buffer.
   Simulated behaviour is identical to [write_sync] with an all-zero
   buffer of the same length — same schedule, same trace events, same
   counters, same completion callback — only the host-side commit
   differs: instead of probing the store per sector it sweeps the
   [nonzero] bitmap and drops whatever entries the range still holds.
   The swap dump uses this for the (typically vast) all-zero stretches
   of the memory image. *)
let write_zeros_sync t ~sector ~count =
  check_range t sector count;
  let issued = Engine.now t.engine in
  let _, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:true ~sync:true ~issued ~completion;
  Engine.advance_to t.engine completion;
  t.writes <- t.writes + 1;
  t.sectors_written <- t.sectors_written + count;
  Store.commit_zeros t.store ~sector ~count;
  t.on_complete ~sector ~count ~write:true

let max_queue_depth = 32

let write_async t ~sector data =
  let data, count = pad_to_sectors data in
  check_range t sector count;
  (* A bounded queue: a heavy asynchronous writer eventually runs at disk
     speed, as on a real system. *)
  while List.length t.pending >= max_queue_depth do
    match t.pending with
    | oldest :: _ -> Engine.advance_to t.engine oldest.completion_time
    | [] -> ()
  done;
  let issued = Engine.now t.engine in
  let start, completion = schedule_request t sector count in
  note_request t ~sector ~count ~write:true ~sync:false ~issued ~completion;
  t.writes <- t.writes + 1;
  t.sectors_written <- t.sectors_written + count;
  let rec request =
    lazy
      {
        req_sector = sector;
        data;
        start_time = start;
        completion_time = completion;
        handle =
          Engine.schedule_at t.engine ~time:completion (fun _ ->
              commit_request t (Lazy.force request));
      }
  in
  t.pending <- t.pending @ [ Lazy.force request ]

let drain t =
  Engine.advance_to t.engine t.busy_until;
  (* Events at exactly [busy_until] have fired; a non-empty pending list
     would mean a commit event landed beyond busy_until, which cannot
     happen. *)
  assert (t.pending = [])

let pending_writes t = List.length t.pending

let crash t =
  let now = Engine.now t.engine in
  List.iter
    (fun r ->
      Engine.cancel t.engine r.handle;
      if r.start_time <= now then begin
        (* In-flight: commit the sectors already behind the write point,
           tear the one being written. *)
        let count = Bytes.length r.data / sector_bytes in
        let window = r.completion_time - r.start_time in
        let frac =
          if window <= 0 then 0.
          else float_of_int (now - r.start_time) /. float_of_int window
        in
        let committed = int_of_float (frac *. float_of_int count) in
        for i = 0 to min committed count - 1 do
          Store.commit_from t.store ~sector:(r.req_sector + i) r.data ~pos:(i * sector_bytes)
        done;
        if committed < count then begin
          let sector = r.req_sector + committed in
          commit_sector t sector
            (torn_sector t ~sector ~data:r.data ~pos:(committed * sector_bytes))
        end
      end)
    t.pending;
  t.pending <- [];
  t.busy_until <- Engine.now t.engine

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    sectors_read = t.sectors_read;
    sectors_written = t.sectors_written;
    seeks = t.seeks;
    busy_us = t.busy_us;
  }

(* ---- world-template rewind ----

   The checkpoint deep-copies the store (taken post-mount it holds only a
   handful of sectors) and remembers the backend mechanism state (head
   position and tear-pattern PRNG for SCSI, log tail for NVMM — [crash]
   draws torn-sector bytes from the SCSI stream, so a restored world must
   replay the identical tears) plus the statistics. Pending requests
   cannot be checkpointed (their completion events live in the engine
   queue, which the world restore clears); freeze only with the queue
   drained — a non-empty queue here is a caller bug, not a condition to
   paper over. *)

type mech_state =
  | Scsi_s of Scsi.state
  | Nvmm_s of Nvmm.state

type checkpoint = {
  ck_store : Store.state;
  ck_mech : mech_state;
  ck_busy_until : int;
  ck_stats : stats;
}

let checkpoint t =
  if t.pending <> [] then
    invalid_arg
      (Printf.sprintf
         "Disk.checkpoint: request queue not empty (%d async write(s) still queued); drain first"
         (List.length t.pending));
  {
    ck_store = Store.checkpoint t.store;
    ck_mech =
      (match t.mech with
      | Scsi_m m -> Scsi_s (Scsi.state m)
      | Nvmm_m m -> Nvmm_s (Nvmm.state m));
    ck_busy_until = t.busy_until;
    ck_stats = stats t;
  }

let restore t ck =
  Store.restore t.store ck.ck_store;
  (match (t.mech, ck.ck_mech) with
  | Scsi_m m, Scsi_s s -> Scsi.set_state m s
  | Nvmm_m m, Nvmm_s s -> Nvmm.set_state m s
  | (Scsi_m _ | Nvmm_m _), _ ->
    invalid_arg "Disk.restore: checkpoint was taken on a different backend");
  t.busy_until <- ck.ck_busy_until;
  t.pending <- [];
  t.reads <- ck.ck_stats.reads;
  t.writes <- ck.ck_stats.writes;
  t.sectors_read <- ck.ck_stats.sectors_read;
  t.sectors_written <- ck.ck_stats.sectors_written;
  t.seeks <- ck.ck_stats.seeks;
  t.busy_us <- ck.ck_stats.busy_us

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.sectors_read <- 0;
  t.sectors_written <- 0;
  t.seeks <- 0;
  t.busy_us <- 0

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d (%d sect) writes=%d (%d sect) seeks=%d busy=%a" s.reads
    s.sectors_read s.writes s.sectors_written s.seeks Rio_util.Units.pp_usec s.busy_us
