lib/vm/tlb.mli: Pte
