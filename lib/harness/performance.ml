module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Layout = Rio_mem.Layout
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Rio_cache = Rio_core.Rio_cache
module Cp_rm = Rio_workload.Cp_rm
module Sdet = Rio_workload.Sdet
module Andrew = Rio_workload.Andrew
module Table = Rio_util.Table
module Units = Rio_util.Units
module Pool = Rio_parallel.Pool
module World = Rio_world.World

type configuration = {
  label : string;
  policy : Fs.policy;
  rio_protection : bool option;
}

let configurations =
  [
    { label = "memory-fs"; policy = Fs.Mfs; rio_protection = None };
    { label = "ufs-delayed"; policy = Fs.Ufs_delayed; rio_protection = None };
    { label = "advfs"; policy = Fs.Advfs; rio_protection = None };
    { label = "ufs"; policy = Fs.Ufs_default; rio_protection = None };
    { label = "wt-close"; policy = Fs.Wt_close; rio_protection = None };
    { label = "wt-write"; policy = Fs.Wt_write; rio_protection = None };
    { label = "rio-noprot"; policy = Fs.Rio_policy; rio_protection = Some false };
    { label = "rio-prot"; policy = Fs.Rio_policy; rio_protection = Some true };
  ]

type measurement = {
  config_label : string;
  cp_s : float;
  rm_s : float;
  sdet_s : float;
  andrew_s : float;
}

(* A fresh paper-scale machine: 128 MB of memory, a disk big enough for the
   40 MB tree twice plus swap covering memory. Built through the same
   [World] path the campaign engines template; these cells measure
   *simulated* time over minutes-long workloads, so there is nothing to
   amortize — each one is a fresh build, recycled after the run. *)
let fresh_system ?(backend = Rio_disk.Backend.Scsi) config ~seed =
  let kcfg =
    {
      Kernel.default_config with
      Kernel.layout_config = Layout.paper_config;
      disk_sectors = 640 * 1024 (* 320 MB *);
      seed;
    }
  in
  World.create ~config:kcfg
    ~rio:(config.rio_protection <> None)
    ~protection:(config.rio_protection = Some true)
    ~policy:config.policy ~backend ~seed ()

let seconds engine t0 = Units.sec_of_usec (Engine.now engine - t0)

let measure_workload ?backend config ~scale ~seed workload =
  let w = fresh_system ?backend config ~seed in
  let engine = World.engine w and fs = World.fs w in
  Fun.protect ~finally:(fun () -> World.dispose w) @@ fun () ->
  match workload with
  | `Cp_rm ->
    let w = Cp_rm.create ~total_bytes:(int_of_float (scale *. 40e6)) () in
    Cp_rm.setup w fs;
    Fs.sync fs;
    (* Disk-backed systems start the timed run cold (the paper's tree was
       not sitting in the file cache); memory-resident systems (MFS, Rio)
       by construction keep it in memory. *)
    (match config.policy with
    | Fs.Mfs | Fs.Rio_policy | Fs.Rio_idle -> ()
    | Fs.Ufs_default | Fs.Ufs_delayed | Fs.Wt_close | Fs.Wt_write | Fs.Advfs ->
      Fs.remount_cold fs);
    let t0 = Engine.now engine in
    Cp_rm.run_cp w fs;
    let t_cp = Engine.now engine in
    Cp_rm.run_rm w fs;
    let t_rm = Engine.now engine in
    (Units.sec_of_usec (t_cp - t0), Units.sec_of_usec (t_rm - t_cp))
  | `Sdet ->
    let w =
      Sdet.create ~scripts:5 ~ops_per_script:(max 20 (int_of_float (scale *. 1200.))) ()
    in
    let t0 = Engine.now engine in
    Sdet.run w fs;
    (seconds engine t0, 0.)
  | `Andrew ->
    let w = Andrew.create ~scale () in
    let t0 = Engine.now engine in
    Andrew.run w fs;
    (seconds engine t0, 0.)

let run ?only (cfg : Run.config) =
  let scale = cfg.Run.scale in
  let seed = cfg.Run.seed in
  let selected =
    match only with
    | None -> configurations
    | Some labels -> List.filter (fun c -> List.mem c.label labels) configurations
  in
  let report = Run.reporter cfg ~total:(List.length selected) in
  (* Each (configuration, workload) cell boots a fresh machine from [seed]
     alone, so a configuration's three measurements form one independent
     task; results come back in Table 2 row order either way. *)
  Pool.map_list ~domains:cfg.Run.domains
    (fun config ->
      let backend = cfg.Run.backend in
      let cp_s, rm_s = measure_workload ~backend config ~scale ~seed `Cp_rm in
      let sdet_s, _ = measure_workload ~backend config ~scale ~seed `Sdet in
      let andrew_s, _ = measure_workload ~backend config ~scale ~seed `Andrew in
      report ~label:config.label
        ~detail:
          (Printf.sprintf "cp+rm %.0fs (%.0f+%.0f)  sdet %.0fs  andrew %.0fs" (cp_s +. rm_s)
             cp_s rm_s sdet_s andrew_s);
      { config_label = config.label; cp_s; rm_s; sdet_s; andrew_s })
    selected

let to_table measurements =
  let table =
    Table.create
      ~columns:
        [
          ("System", Table.Left);
          ("cp+rm (s)", Table.Right);
          ("Sdet (s)", Table.Right);
          ("Andrew (s)", Table.Right);
        ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          m.config_label;
          Printf.sprintf "%.0f (%.0f+%.0f)" (m.cp_s +. m.rm_s) m.cp_s m.rm_s;
          Printf.sprintf "%.0f" m.sdet_s;
          Printf.sprintf "%.0f" m.andrew_s;
        ])
    measurements;
  table

let find measurements label =
  List.find_opt (fun m -> m.config_label = label) measurements

let speedup measurements ~num ~den =
  match (find measurements num, find measurements den) with
  | Some a, Some b ->
    [
      (a.cp_s +. a.rm_s) /. (b.cp_s +. b.rm_s);
      a.sdet_s /. b.sdet_s;
      a.andrew_s /. b.andrew_s;
    ]
  | _ -> []

let comparison_table measurements =
  let table =
    Table.create
      ~columns:
        [
          ("System", Table.Left);
          ("paper cp+rm", Table.Right);
          ("ours cp+rm", Table.Right);
          ("paper Sdet", Table.Right);
          ("ours Sdet", Table.Right);
          ("paper Andrew", Table.Right);
          ("ours Andrew", Table.Right);
        ]
  in
  List.iter
    (fun m ->
      match Paper_data.table2_row m.config_label with
      | None -> ()
      | Some p ->
        Table.add_row table
          [
            m.config_label;
            Printf.sprintf "%.0f" p.Paper_data.cp_rm;
            Printf.sprintf "%.0f" (m.cp_s +. m.rm_s);
            Printf.sprintf "%.0f" p.Paper_data.sdet;
            Printf.sprintf "%.0f" m.sdet_s;
            Printf.sprintf "%.0f" p.Paper_data.andrew;
            Printf.sprintf "%.0f" m.andrew_s;
          ])
    measurements;
  let ratio_row label num den paper_lo paper_hi =
    match speedup measurements ~num ~den with
    | [] -> ()
    | ratios ->
      let lo, hi = Rio_util.Stats.min_max (Array.of_list ratios) in
      Table.add_row table
        [
          label;
          Printf.sprintf "%.0f-%.0fx" paper_lo paper_hi;
          Printf.sprintf "%.1f-%.1fx" lo hi;
          ""; ""; ""; "";
        ]
  in
  Table.add_separator table;
  ratio_row "rio vs write-through" "wt-write" "rio-prot" 4. 22.;
  ratio_row "rio vs ufs" "ufs" "rio-prot" 2. 14.;
  ratio_row "rio vs ufs-delayed" "ufs-delayed" "rio-prot" 1. 3.;
  table
