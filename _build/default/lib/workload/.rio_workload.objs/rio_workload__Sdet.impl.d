lib/workload/sdet.ml: List Printf Rio_util Script
