lib/fault/fault_type.mli:
