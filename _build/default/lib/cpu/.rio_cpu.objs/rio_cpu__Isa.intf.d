lib/cpu/isa.mli: Format
