(** The synthetic kernel-routine corpus.

    These routines are the interpreted "kernel activity" of the crash tests:
    short procedures doing representative monolithic-kernel work — buffer
    copies, free-list surgery, allocation bitmaps, lock words, counters,
    pointer chasing, ring buffers — peppered with [Assert_nz] consistency
    checks, mirroring the sanity checks that made the paper's Digital Unix
    stop soon after an injected fault (§3.3: 59 distinct consistency
    messages). Fault injection mutates this text; the routines then execute
    over the same physical memory that holds the file cache.

    Calling convention: arguments in r1..r5, result in r1, temporaries
    r6..r15, stack pointer r30, link register r31. The kernel dispatcher
    sets r31 to {!halt_pad_symbol} so a routine's return halts the machine
    cleanly. *)

type arg_spec =
  | Copy  (** (src, dst, len-bytes) *)
  | Zero  (** (dst, len) *)
  | Checksum  (** (src, len) *)
  | List_insert  (** (head-addr, node-addr) *)
  | List_remove  (** (head-addr) *)
  | Bitmap_alloc  (** (bitmap-addr, nbytes) *)
  | Lock_acquire  (** (lock-addr) *)
  | Lock_release  (** (lock-addr) *)
  | Counter_bump  (** (counter-addr, limit) *)
  | Ptr_chase  (** (head-addr, max-steps) *)
  | Queue_put  (** (ring-base, index-addr, value, capacity) *)
  | Mem_scan  (** (addr, len) *)
  | Word_copy  (** (src, dst, len-words) — the kernel's hot bcopy path *)
  | Compound
      (** (src, dst, len-bytes) — copy-then-checksum through nested calls,
          spilling to the kernel stack (the stack-fault target). *)
  | Dlist_insert  (** (head-addr, node-addr) — doubly-linked push with back-pointer check. *)
  | Hash_insert  (** (table, key-node, buckets) — chain into a hash bucket. *)

type routine = {
  name : string;
  entry : int;  (** Virtual address of the entry point. *)
  spec : arg_spec;
}

type t = {
  program : Asm.program;
  routines : routine list;
  halt_pad : int;  (** Address of the return pad ([Halt]). *)
}

val build : origin:int -> t
(** Assemble the corpus at [origin] (the base of the kernel-text region). *)

val halt_pad_symbol : string

val message_text : int -> string
(** Human-readable text for a consistency-panic message id. *)

val message_count : int
(** Number of distinct consistency messages in the corpus. *)

val find : t -> string -> routine
(** Lookup by name. Raises [Not_found]. *)
