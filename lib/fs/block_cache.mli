(** A write-back cache of file-system blocks over physical pages.

    Instantiated twice, as on the paper's platform (§2): once over the
    buffer-cache region for metadata (the traditional Unix buffer cache) and
    once over the shared page pool for regular file data (the UBC). Each
    cached block occupies one physical page; the page's bytes are the
    authoritative copy while cached, which is exactly why crashes can
    corrupt them and why Rio must protect them.

    Eviction is LRU and writes dirty victims synchronously first — the
    "only when the cache overflows" write that even Rio performs (§2.3). *)

type entry = {
  blkno : int;  (** Data-area block number, or a negative meta key. *)
  paddr : int;  (** Backing physical page. *)
  mutable dirty : bool;
  mutable owner : Fs_types.owner;
  mutable valid : int;  (** Meaningful bytes in the page. *)
  mutable tick : int;  (** LRU clock. *)
  mutable pinned : bool;  (** Exempt from eviction (superblock, bitmaps). *)
}

type fill = Zero | From_disk

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  fills : int;
}

type t

val create :
  name:string ->
  mem:Rio_mem.Phys_mem.t ->
  disk:Rio_disk.Disk.t ->
  alloc:Rio_mem.Page_alloc.t ->
  hooks:Hooks.t ->
  sector_of_blkno:(int -> int) ->
  backed:bool ->
  t
(** [backed:false] (the Memory File System) never touches the disk: dirty
    pages are not written back and eviction of dirty pages reports
    out-of-space instead. *)

val get : t -> blkno:int -> owner:Fs_types.owner -> fill:fill -> entry
(** Find or install the block. A miss allocates a page (evicting if
    necessary) and fills it per [fill]. Raises {!Fs_types.Fs_error} when no
    page can be obtained. *)

val lookup : t -> blkno:int -> entry option

val mark_dirty : t -> entry -> unit

val set_valid : t -> entry -> int -> unit
(** Update the meaningful-byte count (re-announces the mapping). *)

val write_back : ?via:(sector:int -> bytes -> unit) -> t -> entry -> sync:bool -> unit
(** Write the page to its disk block ([sync] advances the clock to
    completion; async queues it). Clears [dirty]. No-op when unbacked.
    When [via] is given and [sync] is false the payload is handed to it
    instead of {!Rio_disk.Disk.write_async} — the write-behind pipeline's
    staging entry point. *)

val flush_dirty :
  ?via:(sector:int -> bytes -> unit) -> t -> sync:bool -> ?only:(entry -> bool) -> unit -> int
(** Write back all dirty (matching) entries in block order; returns how
    many. Returns without scanning the table when {!dirty_count} is zero.
    [via] as in {!write_back}: asynchronous write-backs are staged into
    the write-behind pipeline instead of issued directly. *)

val invalidate : t -> blkno:int -> unit
(** Drop a block (deleted file), freeing its page without write-back. *)

val drop_all : t -> unit
(** Discard everything (unmount without sync — crash path). *)

val iter : t -> (entry -> unit) -> unit

val dirty_count : t -> int
(** Dirty entries currently in the table. O(1): maintained as entries are
    dirtied, written back, and removed. *)

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Deep-copy the host-side cache state (population, dirty bits, LRU
    ticks, statistics). Page contents rewind with the memory snapshot. *)

val restore : t -> checkpoint -> unit
(** Rewind the cache to a checkpoint of the same instance. *)
