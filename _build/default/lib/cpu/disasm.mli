(** A small disassembler over simulated memory.

    Used by the crash-dump inspector to render kernel text — including the
    mutations fault injection left behind — and by tests to eyeball
    assembled routines. *)

type line = {
  addr : int;
  word : int;
  instr : Isa.t option;  (** [None] = undecodable word. *)
}

val disassemble :
  Rio_mem.Phys_mem.t -> addr:int -> words:int -> line list
(** Decode [words] consecutive instruction words starting at [addr]. *)

val pp_line : Format.formatter -> line -> unit
(** ["0001a0: 00442083  add r1, r2, r3"] style. *)

val pp_range : Format.formatter -> line list -> unit

val diff :
  before:bytes -> after:Rio_mem.Phys_mem.t -> base:int -> words:int -> line list
(** Lines whose instruction word differs between a pristine text image and
    current memory — the injected mutations. [before] is the byte image of
    the text region; [base] its load address. *)
