lib/rio/warm_reboot.mli: Registry Rio_disk Rio_fs Rio_mem Rio_sim
