(** Persistence-backend selection.

    A backend bundles a timing model and a crash/tear model behind the one
    {!Disk} front-end: requests, queueing, statistics, completion callbacks
    and the sector store are shared; only service times and what a torn
    sector looks like differ. *)

type kind =
  | Scsi  (** The early-90s SCSI model: seek + rotation + transfer, torn sectors filled with garbage. *)
  | Nvmm
      (** A battery-backed / NVMM-style append-log tier: near-zero flat latency,
          no seeks, and a cache-line tear model — a torn sector keeps its old
          contents except for the first 64-byte line of the new data. *)

val all : kind list

val to_string : kind -> string
(** ["scsi"] / ["nvmm"] — stable CLI and JSON names. *)

val of_string : string -> kind option

val pp : Format.formatter -> kind -> unit
