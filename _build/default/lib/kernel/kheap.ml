module Phys_mem = Rio_mem.Phys_mem

type t = {
  mem : Phys_mem.t;
  base : int;
}

let node_size = 64
let node_count = 256
let chase_count = 128
let bitmap_bytes = 256
let ring_capacity = 64

let free_head_addr t = t.base
let chase_head_addr t = t.base + 8
let ring_index_addr t = t.base + 16
let lock_addr t i =
  assert (i >= 0 && i < 8);
  t.base + 24 + i
let counter_addr t i =
  assert (i >= 0 && i < 8);
  t.base + 64 + (i * 8)
let bitmap_addr t = t.base + 128
let ring_base_addr t = t.base + 512
let dlist_head_addr t = t.base + 384
let dlist_count = 32
let hash_buckets = 64

let scratch_bytes = 8192

(* The copy scratch area sits immediately below the node arena so that a
   bcopy overrun starting in scratch spills into live free-list nodes —
   the adjacency that makes copy overruns dangerous in real kernels. *)
let scratch_addr t = t.base + 1024
let node_arena t = scratch_addr t + scratch_bytes
let node_addr t i =
  assert (i >= 0 && i < node_count);
  node_arena t + (i * node_size)
let chase_arena t = node_arena t + (node_count * node_size)
let chase_addr t i =
  assert (i >= 0 && i < chase_count);
  chase_arena t + (i * node_size)

let hash_table_addr t = chase_arena t + (chase_count * node_size)
let hash_key_addr t i =
  assert (i >= 0 && i < hash_buckets);
  hash_table_addr t + (hash_buckets * 8) + (i * node_size)
let dlist_node_addr t i =
  assert (i >= 0 && i < dlist_count);
  hash_key_addr t 0 + (hash_buckets * node_size) + (i * node_size)

let read_word t addr = Phys_mem.read_u64 t.mem addr
let write_word t addr v = Phys_mem.write_u64 t.mem addr v

let reset_dlist t =
  write_word t (dlist_head_addr t) 0;
  for i = 0 to dlist_count - 1 do
    write_word t (dlist_node_addr t i) 0;
    write_word t (dlist_node_addr t i + 8) 0
  done

let reinit t =
  (* Free list: nodes linked 0 -> 1 -> ... -> n-1 -> null. *)
  for i = 0 to node_count - 1 do
    let next = if i = node_count - 1 then 0 else node_addr t (i + 1) in
    write_word t (node_addr t i) next
  done;
  write_word t (free_head_addr t) (node_addr t 0);
  (* Chase chain: a second arena of linked nodes ending in null. *)
  for i = 0 to chase_count - 1 do
    let next = if i = chase_count - 1 then 0 else chase_addr t (i + 1) in
    write_word t (chase_addr t i) next
  done;
  write_word t (chase_head_addr t) (chase_addr t 0);
  write_word t (ring_index_addr t) 0;
  for i = 0 to 7 do
    Phys_mem.write_u8 t.mem (lock_addr t i) 0
  done;
  for i = 0 to 7 do
    write_word t (counter_addr t i) 0
  done;
  Phys_mem.fill t.mem (bitmap_addr t) ~len:bitmap_bytes '\000';
  Phys_mem.fill t.mem (ring_base_addr t) ~len:(ring_capacity * 8) '\000';
  reset_dlist t;
  Phys_mem.fill t.mem (hash_table_addr t) ~len:(hash_buckets * 8) '\000';
  for i = 0 to hash_buckets - 1 do
    write_word t (hash_key_addr t i) 0
  done

let init ~mem ~region =
  let needed =
    1024 + scratch_bytes
    + ((node_count + chase_count + hash_buckets + dlist_count) * node_size)
    + (hash_buckets * 8)
  in
  if region.Rio_mem.Layout.bytes < needed then
    invalid_arg "Kheap.init: kernel heap region too small";
  let t = { mem; base = region.Rio_mem.Layout.base } in
  reinit t;
  t

let native_list_insert t ~node =
  let head = read_word t (free_head_addr t) in
  write_word t node head;
  write_word t (free_head_addr t) node

let reset_bitmap t = Phys_mem.fill t.mem (bitmap_addr t) ~len:bitmap_bytes '\000'

let reset_counters t =
  for i = 0 to 7 do
    write_word t (counter_addr t i) 0
  done
