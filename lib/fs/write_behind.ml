(* The asynchronous write-behind pipeline between the caches and the
   backend (NVCache-style): dirty blocks are STAGED into a FIFO queue,
   adjacent-sector runs are COALESCED into single segments, and a FLUSH
   issues the batch to the backend as asynchronous writes, closed by a
   group-commit hand-off. Each ordering point is announced through
   {!Hooks.t.wb_event} ("wb-queue" / "wb-flush" / "wb-commit" labels) so
   the crash-schedule explorer and fuzzer can crash inside the windows —
   the crash-vulnerable orderings live exactly between these events.

   [unordered] is a PLANTED ablation: a flush with two or more coalesced
   segments holds the first one back for the next batch (issuing the rest
   "out of order"), modelling a pipeline that reorders around its oldest
   staged segment. A sync that returns after such a flush has NOT made
   the held segment durable — the cold-recovery fuzz contract catches
   this as lost synced data. *)

module Disk = Rio_disk.Disk

type seg = {
  ws_sector : int;
  ws_data : bytes; (* whole sectors *)
}

type t = {
  disk : Disk.t;
  hooks : Hooks.t;
  unordered : bool;
  mutable queue : seg list; (* newest first; staging order = reversed *)
  mutable held : seg list; (* ablation only: carried over to the next flush *)
  mutable staged : int;
  mutable segments : int;
  mutable batches : int;
}

let create ~disk ~hooks ~unordered =
  { disk; hooks; unordered; queue = []; held = []; staged = 0; segments = 0; batches = 0 }

let unordered t = t.unordered

let stage t ~sector data =
  let count = (Bytes.length data + Disk.sector_bytes - 1) / Disk.sector_bytes in
  t.hooks.Hooks.wb_event ~label:(Printf.sprintf "wb-queue s%d x%d" sector count);
  t.queue <- { ws_sector = sector; ws_data = data } :: t.queue;
  t.staged <- t.staged + 1

(* Merge adjacent-sector runs, preserving staging order. The caches flush
   in block order, so sequential file data arrives as mergeable runs. *)
let coalesce segs =
  let flush_run acc = function
    | [] -> acc
    | [ s ] -> s :: acc
    | run ->
      let run = List.rev run in
      let total = List.fold_left (fun n s -> n + Bytes.length s.ws_data) 0 run in
      let data = Bytes.create total in
      let pos = ref 0 in
      List.iter
        (fun s ->
          Bytes.blit s.ws_data 0 data !pos (Bytes.length s.ws_data);
          pos := !pos + Bytes.length s.ws_data)
        run;
      { ws_sector = (List.hd run).ws_sector; ws_data = data } :: acc
  in
  let acc, run =
    List.fold_left
      (fun (acc, run) s ->
        match run with
        | prev :: _
          when prev.ws_sector + (Bytes.length prev.ws_data / Disk.sector_bytes) = s.ws_sector
          -> (acc, s :: run)
        | _ -> (flush_run acc run, [ s ]))
      ([], []) segs
  in
  List.rev (flush_run acc run)

let pending t = List.length t.queue + List.length t.held

let flush t =
  let staged = List.rev t.queue in
  t.queue <- [];
  let segs = t.held @ coalesce staged in
  t.held <- [];
  match segs with
  | [] -> 0
  | segs ->
    let to_write =
      if t.unordered && List.length segs >= 2 then begin
        (* PLANTED BUG (ablation): reorder around the oldest segment by
           holding it for the next batch. Nothing re-issues it if the
           system crashes first — or if the next flush holds it again. *)
        t.held <- [ List.hd segs ];
        List.tl segs
      end
      else segs
    in
    List.iter
      (fun s ->
        let count = Bytes.length s.ws_data / Disk.sector_bytes in
        t.hooks.Hooks.wb_event ~label:(Printf.sprintf "wb-flush s%d x%d" s.ws_sector count);
        Disk.write_async t.disk ~sector:s.ws_sector s.ws_data)
      to_write;
    let n = List.length to_write in
    t.hooks.Hooks.wb_event ~label:(Printf.sprintf "wb-commit batch n%d" n);
    t.segments <- t.segments + n;
    t.batches <- t.batches + 1;
    n

(* ---- world-template rewind ---- *)

type state = {
  st_queue : seg list;
  st_held : seg list;
  st_staged : int;
  st_segments : int;
  st_batches : int;
}

let copy_seg s = { s with ws_data = Bytes.copy s.ws_data }

let save t =
  {
    st_queue = List.map copy_seg t.queue;
    st_held = List.map copy_seg t.held;
    st_staged = t.staged;
    st_segments = t.segments;
    st_batches = t.batches;
  }

let restore t st =
  t.queue <- List.map copy_seg st.st_queue;
  t.held <- List.map copy_seg st.st_held;
  t.staged <- st.st_staged;
  t.segments <- st.st_segments;
  t.batches <- st.st_batches
