(* World templates: a restored world must be indistinguishable from a
   freshly built one. The mechanics tests exercise freeze/restore
   directly; the equivalence tests drive the real campaign engines down
   both paths — template-restored attempts (the default) and from-scratch
   builds (the --reference mode) — and demand identical attempt records
   and explorer reports, crashes and warm reboots included. *)

module World = Rio_world.World
module Fs = Rio_fs.Fs
module Engine = Rio_sim.Engine
module Pattern = Rio_util.Pattern
module Prng = Rio_util.Prng
module Gen = Rio_workload.Script.Gen
module Fuzzer = Rio_fuzz.Fuzzer
module Program = Rio_fuzz.Program
module Explorer = Rio_check.Explorer
module Run = Rio_harness.Run

let check = Alcotest.check

(* Templates default to on; every test leaves the knob the way it found
   it, even on failure. *)
let with_templates b f =
  World.set_use_templates b;
  Fun.protect ~finally:(fun () -> World.set_use_templates true) f

(* ---------------- freeze/restore mechanics ---------------- *)

let test_freeze_restore_mechanics () =
  let w = World.create ~seed:42 () in
  let fs = World.fs w in
  Fs.write_file fs "/keep" (Pattern.fill ~seed:1 ~len:9000);
  World.freeze w;
  let t0 = Engine.now (World.engine w) in
  let keep = Fs.read_file fs "/keep" in
  for round = 1 to 3 do
    (* Dirty the file system, the clock, and the namespace... *)
    Fs.write_file fs "/keep" (Pattern.fill ~seed:(100 + round) ~len:4000);
    Fs.mkdir fs "/junk";
    Fs.write_file fs "/junk/f" (Pattern.fill ~seed:round ~len:2000);
    (* ...and rewind. *)
    let pages = World.restore w in
    check Alcotest.bool (Printf.sprintf "round %d blitted dirty pages" round) true
      (pages > 0);
    check Alcotest.int "clock rewound" t0 (Engine.now (World.engine w));
    check Alcotest.bool "file content rewound" true
      (Bytes.equal keep (Fs.read_file fs "/keep"));
    check Alcotest.bool "created subtree gone" true
      (match Fs.read_file fs "/junk/f" with
      | _ -> false
      | exception Rio_fs.Fs_types.Fs_error _ -> true)
  done;
  check Alcotest.int "restore counter" 3 (World.restores w);
  check Alcotest.bool "pages accounted" true (World.pages_restored w > 0);
  World.dispose w

let test_on_restore_hooks () =
  let w = World.create ~seed:7 () in
  let log = ref [] in
  World.on_restore w (fun () -> log := "a" :: !log);
  World.on_restore w (fun () -> log := "b" :: !log);
  World.freeze w;
  ignore (World.restore w : int);
  ignore (World.restore w : int);
  check
    (Alcotest.list Alcotest.string)
    "hooks run in registration order, every restore" [ "a"; "b"; "a"; "b" ]
    (List.rev !log);
  World.dispose w

let test_freeze_restore_guards () =
  let w = World.create ~seed:9 () in
  check Alcotest.bool "restore before freeze raises" true
    (match World.restore w with
    | _ -> false
    | exception Invalid_argument _ -> true);
  World.freeze w;
  check Alcotest.bool "double freeze raises" true
    (match World.freeze w with
    | () -> false
    | exception Invalid_argument _ -> true);
  World.dispose w

(* ---------------- fuzz attempts: template = fresh ---------------- *)

let gen_ops ~seed ~nops =
  let prng = Prng.create ~seed in
  Gen.generate ~prng Program.gen_spec ~ops:nops

(* A counting pass plus crashes at the first, middle, and last boundary
   of the schedule — each crash attempt runs the full trip + warm reboot
   + audit pipeline. *)
let pick_trips boundaries =
  if boundaries = 0 then []
  else List.sort_uniq compare [ 0; boundaries / 2; boundaries - 1 ]

let check_attempt what (a : Fuzzer.attempt) (b : Fuzzer.attempt) =
  if a <> b then
    Alcotest.failf
      "%s: attempt records differ (boundaries %d vs %d, %d vs %d problems, tripped %s vs %s)"
      what a.Fuzzer.boundaries b.Fuzzer.boundaries
      (List.length a.Fuzzer.problems)
      (List.length b.Fuzzer.problems)
      (Option.value ~default:"-" a.Fuzzer.tripped)
      (Option.value ~default:"-" b.Fuzzer.tripped)

let test_fuzz_attempts_match_fresh () =
  List.iter
    (fun (world_seed, prog_seed) ->
      List.iter
        (fun (spec : Explorer.spec) ->
          let ops = gen_ops ~seed:prog_seed ~nops:6 in
          let attempt trip = Fuzzer.run_attempt ~spec ~seed:world_seed ~ops ~trip () in
          (* Reference records from scratch-built worlds. *)
          let fresh_count, fresh_trips =
            with_templates false @@ fun () ->
            let c = attempt (-1) in
            (c, List.map (fun t -> (t, attempt t)) (pick_trips c.Fuzzer.boundaries))
          in
          (* Template path, two rounds: round 1 builds and freezes the
             template (first use of this (spec, seed)), round 2 runs
             entirely on restores of it. Both must reproduce the fresh
             records exactly. *)
          with_templates true @@ fun () ->
          for round = 1 to 2 do
            let tag trip =
              Printf.sprintf "%s seed %d/%d trip %d round %d" spec.Explorer.label
                world_seed prog_seed trip round
            in
            check_attempt (tag (-1)) fresh_count (attempt (-1));
            List.iter (fun (t, fresh) -> check_attempt (tag t) fresh (attempt t)) fresh_trips
          done)
        [ Explorer.rio_prot; Explorer.rio_noprot ])
    [ (3, 103); (11, 211) ]

(* ---------------- explorer reports: template = fresh ---------------- *)

let test_explorer_report_matches_fresh () =
  let cfg = { Run.default with Run.seed = 5; domains = 1 } in
  let go () =
    Explorer.run ~spec:Explorer.rio_prot ~only:[ "creat"; "rename" ] ~interleave:1 cfg
  in
  let fresh = with_templates false go in
  let tpl1 = with_templates true go in
  let tpl2 = with_templates true go in
  check Alcotest.bool "template report = fresh report" true (tpl1 = fresh);
  check Alcotest.bool "second template report identical (pure restores)" true (tpl2 = fresh);
  check Alcotest.string "rendered text identical" (Explorer.render fresh)
    (Explorer.render tpl1)

let () =
  Alcotest.run "world"
    [
      ( "mechanics",
        [
          Alcotest.test_case "freeze/restore rewinds fs, clock, namespace" `Quick
            test_freeze_restore_mechanics;
          Alcotest.test_case "on_restore hooks" `Quick test_on_restore_hooks;
          Alcotest.test_case "freeze/restore guards" `Quick test_freeze_restore_guards;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fuzz attempts: template = fresh (incl. crashes)" `Slow
            test_fuzz_attempts_match_fresh;
          Alcotest.test_case "explorer report: template = fresh" `Slow
            test_explorer_report_matches_fresh;
        ] );
    ]
