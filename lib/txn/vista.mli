(** Vista: free transactions over the Rio file cache.

    The paper closes by promising "a similar fault-injection experiment on a
    database system"; the authors' follow-up was Rio Vista (Lowell & Chen,
    SOSP 1997), a 720-line transaction library whose entire recoverability
    story is Rio's: because every memory write to the file cache is already
    as permanent as disk, a transaction system needs {e no redo log, no
    flushes, no forces} — only a small undo log to roll back uncommitted
    transactions after a crash.

    This module is that design over our [Rio_fs]: a fixed-size persistent
    region backed by a file, plus an undo log in a sibling file. The
    write-ahead discipline is the whole protocol:

    + [write] first appends the {e old} bytes to the undo log (instantly
      permanent under the Rio policy), then updates the data in place;
    + [commit] clears the undo log — one tiny write is the commit point;
    + [abort] rolls back from the in-memory undo list and clears the log;
    + {!recover} (after a warm reboot) replays any surviving undo records
      {e backwards}, erasing every half-done transaction.

    Each undo record carries a CRC: a record torn by the crash is by
    construction one whose data write never happened, so it is skipped.

    One transaction may be open at a time (Vista was single-threaded too). *)

type t
(** An open persistent store. *)

type txn
(** An open transaction on a store. *)

(** Protocol boundaries, in the order they occur inside {!write} and
    {!commit}. {!Rio_check} crashes at each of them; the mid-commit and
    write-ahead-window tests interrupt specific ones. *)
type event =
  | Undo_append of { offset : int; len : int }
      (** The old image reached the undo log; the data write has {e not}
          happened yet (the write-ahead window). *)
  | Data_write of { offset : int; len : int }
      (** The in-place data write completed (transaction still open). *)
  | Commit_start  (** About to clear the undo log — the commit point. *)
  | Committed  (** The log is cleared; the transaction is durable. *)

val set_observer : t -> (event -> unit) -> unit
(** Install a protocol observer (default: ignore). The observer runs
    synchronously at each boundary and may raise — that is exactly how the
    crash-schedule checker models a crash {e at} the boundary. *)

val create : Rio_fs.Fs.t -> path:string -> size:int -> t
(** Create (or truncate) the store's data file (zero-filled, [size] bytes)
    and an empty undo log at [path ^ ".undo"]. *)

val open_existing : Rio_fs.Fs.t -> path:string -> t
(** Open a store created earlier. Raises {!Rio_fs.Fs_types.Fs_error} if
    absent. Call {!recover} first after a crash. *)

val recover : Rio_fs.Fs.t -> path:string -> int
(** Roll back any uncommitted transaction left by a crash: apply surviving
    undo records newest-first, then clear the log. Returns the number of
    records applied (0 = the crash did not interrupt a transaction). *)

val size : t -> int

val path : t -> string

(** {1 Reads (always allowed)} *)

val read : t -> offset:int -> len:int -> bytes

(** {1 Transactions} *)

val begin_txn : t -> txn
(** Raises {!Rio_fs.Fs_types.Fs_error} if a transaction is already open. *)

val write : txn -> offset:int -> bytes -> unit
(** Transactional update: logs the old contents, then writes the new. *)

val read_txn : txn -> offset:int -> len:int -> bytes
(** Read through the transaction (sees its own writes — they are in
    place). *)

val commit : txn -> unit
(** Make the transaction's effects permanent (they already are, in Rio's
    sense — this just discards the undo information). *)

val abort : txn -> unit
(** Undo every [write] of this transaction and discard it. *)

val in_txn : t -> bool

(** {1 Introspection} *)

val undo_records_logged : t -> int
(** Total undo records appended over the store's lifetime (cost metric:
    this is ALL the logging a Rio transaction needs). *)

(** {1 World-template rewind} *)

type state

val save : t -> state
(** Capture the log cursor and transaction flag. The store's file contents
    rewind with the file-system checkpoint; the fds stay valid because the
    descriptor table is rewound, not rebuilt. *)

val restore : t -> state -> unit
(** Rewind to a {!save} of the same store. Drops any installed observer
    (they are installed per attempt). *)
