lib/util/pattern.ml: Bytes Char
