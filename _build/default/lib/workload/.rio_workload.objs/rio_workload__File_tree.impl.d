lib/workload/file_tree.ml: List Printf Rio_util Script String
