module Json = Rio_util.Json

type subsystem = Engine | Disk | Vm | Rio | Fault | Kernel | Fs | Harness

let subsystem_name = function
  | Engine -> "engine"
  | Disk -> "disk"
  | Vm -> "vm"
  | Rio -> "rio"
  | Fault -> "fault"
  | Kernel -> "kernel"
  | Fs -> "fs"
  | Harness -> "harness"

type kind =
  | Dispatch of { due_us : int; end_us : int; queue_depth : int }
  | Clock of { advances : int }
  | Disk_request of {
      sector : int;
      sectors : int;
      write : bool;
      sync : bool;
      issued_us : int;
      done_us : int;
    }
  | Protection_trap of { paddr : int }
  | Protection_toggle of { paddr : int; writable : bool }
  | Fault_injected of { fault : string; site : string }
  | Wild_store of { paddr : int; width : int; region : string }
  | Registry_update of { paddr : int; ino : int; size : int }
  | Checksum_mismatch of { paddr : int; expected : int; actual : int }
  | Shadow_flip of { paddr : int; engaged : bool }
  | Activity of { name : string; start_us : int; end_us : int }
  | Crash of { message : string; during : string }
  | Crash_flush of { data : int; meta : int }
  | Phase of { name : string; start_us : int; end_us : int }
  | Swap_dump of { dumped : int; truncated : int }
  | Mark of string

let kind_label = function
  | Dispatch _ -> "dispatch"
  | Clock _ -> "clock"
  | Disk_request _ -> "disk_request"
  | Protection_trap _ -> "protection_trap"
  | Protection_toggle _ -> "protection_toggle"
  | Fault_injected _ -> "fault_injected"
  | Wild_store _ -> "wild_store"
  | Registry_update _ -> "registry_update"
  | Checksum_mismatch _ -> "checksum_mismatch"
  | Shadow_flip _ -> "shadow_flip"
  | Activity _ -> "activity"
  | Crash _ -> "crash"
  | Crash_flush _ -> "crash_flush"
  | Phase _ -> "phase"
  | Swap_dump _ -> "swap_dump"
  | Mark _ -> "mark"

type event = { ts_us : int; sub : subsystem; kind : kind }

type counter = { cname : string; mutable count : int; c_live : bool }

type histogram = {
  hname : string;
  mutable data : int array;
  mutable n : int;
  h_live : bool;
}

type t = {
  cap : int;
  ring : event option array;
  mutable head : int;  (* next write position *)
  mutable stored : int;
  mutable total : int;
  mutable clock : unit -> int;
  mutable counters : counter list;  (* reverse registration order *)
  mutable histograms : histogram list;
  live : bool;
}

let null =
  {
    cap = 0;
    ring = [||];
    head = 0;
    stored = 0;
    total = 0;
    clock = (fun () -> 0);
    counters = [];
    histograms = [];
    live = false;
  }

let default_capacity = 65536
let max_capacity = 1 lsl 22
let max_bucket_edges = 64

let create ?(capacity = default_capacity) () =
  {
    cap = capacity;
    ring = Array.make capacity None;
    head = 0;
    stored = 0;
    total = 0;
    clock = (fun () -> 0);
    counters = [];
    histograms = [];
    live = true;
  }

let enabled t = t.live

let set_clock t f = if t.live then t.clock <- f

let now t = t.clock ()

let emit t sub kind =
  if t.live then begin
    t.total <- t.total + 1;
    if t.cap > 0 then begin
      t.ring.(t.head) <- Some { ts_us = t.clock (); sub; kind };
      t.head <- (t.head + 1) mod t.cap;
      if t.stored < t.cap then t.stored <- t.stored + 1
    end
  end

let events t =
  if t.stored = 0 then []
  else begin
    let first = (t.head - t.stored + t.cap) mod t.cap in
    List.init t.stored (fun i ->
        match t.ring.((first + i) mod t.cap) with
        | Some e -> e
        | None -> assert false)
  end

let total t = t.total

let dropped t = t.total - t.stored

let capacity t = t.cap

(* ---------------- metrics ---------------- *)

let counter t name =
  if not t.live then { cname = name; count = 0; c_live = false }
  else
    match List.find_opt (fun c -> c.cname = name) t.counters with
    | Some c -> c
    | None ->
      let c = { cname = name; count = 0; c_live = true } in
      t.counters <- c :: t.counters;
      c

let incr ?(by = 1) c = if c.c_live then c.count <- c.count + by

let counter_value c = c.count

let histogram t name =
  if not t.live then { hname = name; data = [||]; n = 0; h_live = false }
  else
    match List.find_opt (fun h -> h.hname = name) t.histograms with
    | Some h -> h
    | None ->
      let h = { hname = name; data = Array.make 64 0; n = 0; h_live = true } in
      t.histograms <- h :: t.histograms;
      h

let observe h v =
  if h.h_live then begin
    if h.n = Array.length h.data then begin
      let bigger = Array.make (2 * max 1 h.n) 0 in
      Array.blit h.data 0 bigger 0 h.n;
      h.data <- bigger
    end;
    h.data.(h.n) <- v;
    h.n <- h.n + 1
  end

let histogram_values h = Array.sub h.data 0 h.n

let percentile values p =
  Rio_util.Stats.percentile (Array.map float_of_int values) p

(* ---------------- snapshots ---------------- *)

type snapshot = {
  counters : (string * int) list;
  histograms : (string * int array) list;
}

let snapshot (t : t) =
  {
    counters = List.rev_map (fun c -> (c.cname, c.count)) t.counters;
    histograms = List.rev_map (fun h -> (h.hname, histogram_values h)) t.histograms;
  }

let merge_snapshots snaps =
  (* Fold in list order so the aggregate is deterministic: names appear in
     first-seen order, counters sum, histogram observations concatenate. *)
  let merge_assoc combine acc entries =
    List.fold_left
      (fun acc (name, v) ->
        match List.assoc_opt name acc with
        | Some prev -> List.map (fun (n, x) -> if n = name then (n, combine prev v) else (n, x)) acc
        | None -> acc @ [ (name, v) ])
      acc entries
  in
  List.fold_left
    (fun acc s ->
      {
        counters = merge_assoc ( + ) acc.counters s.counters;
        histograms = merge_assoc (fun a b -> Array.append a b) acc.histograms s.histograms;
      })
    { counters = []; histograms = [] }
    snaps

(* Counts per bucket for sorted [edges]: <= e1, (e1, e2], ..., > ek. *)
let bucket_counts ~edges values =
  let k = Array.length edges in
  let counts = Array.make (k + 1) 0 in
  Array.iter
    (fun v ->
      let rec find i = if i >= k || v <= edges.(i) then i else find (i + 1) in
      let i = find 0 in
      counts.(i) <- counts.(i) + 1)
    values;
  counts

let snapshot_json ?bucket_edges s =
  let buckets_json values =
    match bucket_edges with
    | None -> []
    | Some edges ->
      let counts = bucket_counts ~edges values in
      let bucket i n =
        Json.Obj
          [
            ( "le",
              if i < Array.length edges then Json.Int edges.(i) else Json.Str "+inf" );
            ("n", Json.Int n);
          ]
      in
      [ ("buckets", Json.Arr (Array.to_list (Array.mapi bucket counts))) ]
  in
  let hist_json (name, values) =
    if Array.length values = 0 then (name, Json.Obj [ ("n", Json.Int 0) ])
    else
      let fl = Array.map float_of_int values in
      let mn, mx = Rio_util.Stats.min_max fl in
      ( name,
        Json.Obj
          ([
             ("n", Json.Int (Array.length values));
             ("min", Json.Float mn);
             ("mean", Json.Float (Rio_util.Stats.mean fl));
             ("p50", Json.Float (Rio_util.Stats.percentile fl 50.));
             ("p90", Json.Float (Rio_util.Stats.percentile fl 90.));
             ("p99", Json.Float (Rio_util.Stats.percentile fl 99.));
             ("max", Json.Float mx);
           ]
          @ buckets_json values) )
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("histograms", Json.Obj (List.map hist_json s.histograms));
    ]
